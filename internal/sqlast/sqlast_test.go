package sqlast

import (
	"testing"
)

func TestExprRendering(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Null(), "NULL"},
		{IntLit(-3), "-3"},
		{TextLit("it's"), "'it''s'"},
		{BoolLit(true), "TRUE"},
		{&ColumnRef{Table: "t", Column: "c"}, "t.c"},
		{&ColumnRef{Column: "c"}, "c"},
		{&Unary{Op: UMinus, X: IntLit(-2000)}, "(- -2000)"},
		{&Unary{Op: UNot, X: BoolLit(false)}, "(NOT FALSE)"},
		{&Unary{Op: UBitNot, X: IntLit(1)}, "(~ 1)"},
		{&Binary{Op: OpNullSafeEq, L: IntLit(1), R: Null()}, "(1 <=> NULL)"},
		{&Binary{Op: OpIsDistinct, L: IntLit(1), R: IntLit(2)}, "(1 IS DISTINCT FROM 2)"},
		{&Func{Name: "COUNT", Star: true}, "COUNT(*)"},
		{&Func{Name: "COUNT", Distinct: true, Args: []Expr{IntLit(1)}}, "COUNT(DISTINCT 1)"},
		{&Func{Name: "PI"}, "PI()"},
		{&Case{Whens: []When{{Cond: BoolLit(true), Then: IntLit(1)}}, Else: IntLit(2)},
			"(CASE WHEN TRUE THEN 1 ELSE 2 END)"},
		{&Case{Operand: IntLit(3), Whens: []When{{Cond: IntLit(3), Then: TextLit("x")}}},
			"(CASE 3 WHEN 3 THEN 'x' END)"},
		{&Cast{X: IntLit(1), To: TypeText}, "CAST(1 AS TEXT)"},
		{&Between{X: IntLit(2), Lo: IntLit(1), Hi: IntLit(3), Not: true},
			"(2 NOT BETWEEN 1 AND 3)"},
		{&InList{X: IntLit(1), List: []Expr{IntLit(2), Null()}}, "(1 IN (2, NULL))"},
		{&IsNull{X: IntLit(1), Not: true}, "(1 IS NOT NULL)"},
		{&IsBool{X: BoolLit(true), Val: false, Not: true}, "(TRUE IS NOT FALSE)"},
		{&Like{X: TextLit("a"), Pattern: TextLit("%"), Kind: LikeGlob, Not: true},
			"('a' NOT GLOB '%')"},
	}
	for _, c := range cases {
		if got := c.e.SQL(); got != c.want {
			t.Errorf("SQL() = %q, want %q", got, c.want)
		}
	}
}

func TestTypeNames(t *testing.T) {
	if TypeInt.String() != "INTEGER" || TypeText.String() != "TEXT" ||
		TypeBool.String() != "BOOLEAN" || TypeUnknown.String() != "UNKNOWN" {
		t.Fatal("type spellings broken")
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := &Select{
		Items: []SelectItem{{Expr: &Binary{Op: OpAdd, L: IntLit(1), R: IntLit(2)}}},
		From: []FromItem{
			{Ref: &TableName{Name: "t"}},
			{Ref: &DerivedTable{
				Select: &Select{Items: []SelectItem{{Star: true}},
					From: []FromItem{{Ref: &TableName{Name: "u"}}}},
				Alias: "d",
			}, Join: JoinLeft, On: BoolLit(true)},
		},
		Where: &IsNull{X: &ColumnRef{Column: "c"}},
	}
	before := orig.SQL()
	cl := CloneSelect(orig)
	if cl.SQL() != before {
		t.Fatal("clone must render identically")
	}
	// Mutate the clone everywhere reachable.
	cl.Items[0].Expr.(*Binary).L = IntLit(99)
	cl.From[0].Ref.(*TableName).Name = "zzz"
	cl.From[1].On = BoolLit(false)
	cl.Where = nil
	if orig.SQL() != before {
		t.Fatal("mutating the clone changed the original")
	}
}

func TestCloneStmtKinds(t *testing.T) {
	stmts := []Stmt{
		&CreateTable{Name: "t", Columns: []ColumnDef{{Name: "c", Type: TypeInt}}},
		&CreateIndex{Name: "i", Table: "t", Columns: []string{"c"}, Where: BoolLit(true)},
		&CreateView{Name: "v", Select: &Select{Items: []SelectItem{{Expr: IntLit(1)}}}},
		&Insert{Table: "t", Columns: []string{"c"}, Rows: [][]Expr{{IntLit(1)}}},
		&Update{Table: "t", Sets: []Assignment{{Column: "c", Value: IntLit(2)}}, Where: BoolLit(true)},
		&Delete{Table: "t", Where: BoolLit(false)},
		&AlterTable{Table: "t", AddColumn: &ColumnDef{Name: "d", Type: TypeText}},
		&DropTable{Name: "t"},
		&DropView{Name: "v"},
		&Analyze{Table: "t"},
		&Refresh{Table: "t"},
	}
	for _, st := range stmts {
		cl := CloneStmt(st)
		if cl.SQL() != st.SQL() {
			t.Errorf("clone of %T renders differently", st)
		}
		if cl == st {
			t.Errorf("clone of %T is the same pointer", st)
		}
	}
}

func TestWalkExprVisitsEverything(t *testing.T) {
	e := &Binary{
		Op: OpAnd,
		L: &InList{X: &ColumnRef{Column: "a"},
			List: []Expr{IntLit(1), &Func{Name: "ABS", Args: []Expr{IntLit(-1)}}}},
		R: &Exists{Select: &Select{
			Items: []SelectItem{{Expr: IntLit(5)}},
			From:  []FromItem{{Ref: &TableName{Name: "t"}}},
			Where: &IsNull{X: &ColumnRef{Column: "b"}},
		}},
	}
	count := 0
	WalkExpr(e, func(Expr) bool { count++; return true })
	// Binary, InList, ColumnRef a, IntLit 1, Func, IntLit -1, Exists,
	// IntLit 5 (projection), IsNull, ColumnRef b.
	if count != 10 {
		t.Fatalf("visited %d nodes, want 10", count)
	}
	// Pruning stops descent.
	count = 0
	WalkExpr(e, func(x Expr) bool {
		count++
		_, isIn := x.(*InList)
		return !isIn
	})
	if count != 6 { // Binary, InList, Exists, IntLit 5, IsNull, ColumnRef b
		t.Fatalf("pruned walk visited %d nodes, want 6", count)
	}
}

func TestSelectRenderingClauses(t *testing.T) {
	lim := int64(5)
	off := int64(2)
	sel := &Select{
		Distinct: true,
		Items:    []SelectItem{{Expr: &ColumnRef{Column: "a"}, Alias: "x"}},
		From: []FromItem{
			{Ref: &TableName{Name: "t", Alias: "p"}},
			{Ref: &TableName{Name: "u"}, Join: JoinComma},
			{Ref: &TableName{Name: "w"}, Join: JoinNatural},
		},
		Where:   BoolLit(true),
		GroupBy: []Expr{&ColumnRef{Column: "a"}},
		Having:  BoolLit(false),
		OrderBy: []OrderItem{{Expr: &ColumnRef{Column: "a"}, Desc: true}},
		Limit:   &lim,
		Offset:  &off,
	}
	want := "SELECT DISTINCT a AS x FROM t AS p, u NATURAL JOIN w WHERE TRUE " +
		"GROUP BY a HAVING FALSE ORDER BY a DESC LIMIT 5 OFFSET 2"
	if got := sel.SQL(); got != want {
		t.Fatalf("got  %q\nwant %q", got, want)
	}
}

func TestEqualExprAndStmt(t *testing.T) {
	a := &Binary{Op: OpAdd, L: IntLit(1), R: IntLit(2)}
	b := &Binary{Op: OpAdd, L: IntLit(1), R: IntLit(2)}
	c := &Binary{Op: OpSub, L: IntLit(1), R: IntLit(2)}
	if !EqualExpr(a, b) || EqualExpr(a, c) {
		t.Fatal("EqualExpr broken")
	}
	if !EqualExpr(nil, nil) || EqualExpr(a, nil) {
		t.Fatal("EqualExpr nil handling broken")
	}
	if !EqualStmt(&DropTable{Name: "t"}, &DropTable{Name: "t"}) {
		t.Fatal("EqualStmt broken")
	}
}
