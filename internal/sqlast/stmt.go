package sqlast

import (
	"strconv"
	"strings"
)

// Stmt is implemented by all statement nodes.
type Stmt interface {
	stmtNode()
	// SQL renders the statement as deterministic SQL text (no trailing ';').
	SQL() string
}

// ColumnDef defines one column in CREATE TABLE / ALTER TABLE ADD COLUMN.
type ColumnDef struct {
	Name       string
	Type       Type
	NotNull    bool
	Unique     bool
	PrimaryKey bool // rendered as a table-level PRIMARY KEY (name) constraint
}

// SQL renders the column definition without the PRIMARY KEY constraint
// (which is table-level).
func (c *ColumnDef) SQL() string {
	s := c.Name + " " + c.Type.String()
	if c.NotNull {
		s += " NOT NULL"
	}
	if c.Unique {
		s += " UNIQUE"
	}
	return s
}

// CreateTable is CREATE TABLE name (cols..., [PRIMARY KEY (...)]).
type CreateTable struct {
	Name        string
	Columns     []ColumnDef
	IfNotExists bool
}

func (c *CreateTable) stmtNode() {}

// SQL renders the CREATE TABLE statement.
func (c *CreateTable) SQL() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	if c.IfNotExists {
		sb.WriteString("IF NOT EXISTS ")
	}
	sb.WriteString(c.Name)
	sb.WriteString(" (")
	var pk []string
	for i, col := range c.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(col.SQL())
		if col.PrimaryKey {
			pk = append(pk, col.Name)
		}
	}
	if len(pk) > 0 {
		sb.WriteString(", PRIMARY KEY (")
		sb.WriteString(strings.Join(pk, ", "))
		sb.WriteByte(')')
	}
	sb.WriteByte(')')
	return sb.String()
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (cols) [WHERE pred].
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
	Where   Expr // partial index predicate, nil if absent
}

func (c *CreateIndex) stmtNode() {}

// SQL renders the CREATE INDEX statement.
func (c *CreateIndex) SQL() string {
	var sb strings.Builder
	sb.WriteString("CREATE ")
	if c.Unique {
		sb.WriteString("UNIQUE ")
	}
	sb.WriteString("INDEX ")
	sb.WriteString(c.Name)
	sb.WriteString(" ON ")
	sb.WriteString(c.Table)
	sb.WriteString(" (")
	sb.WriteString(strings.Join(c.Columns, ", "))
	sb.WriteByte(')')
	if c.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(c.Where.SQL())
	}
	return sb.String()
}

// CreateView is CREATE VIEW name [(cols)] AS select.
type CreateView struct {
	Name    string
	Columns []string // optional explicit column names
	Select  *Select
}

func (c *CreateView) stmtNode() {}

// SQL renders the CREATE VIEW statement.
func (c *CreateView) SQL() string {
	var sb strings.Builder
	sb.WriteString("CREATE VIEW ")
	sb.WriteString(c.Name)
	if len(c.Columns) > 0 {
		sb.WriteString(" (")
		sb.WriteString(strings.Join(c.Columns, ", "))
		sb.WriteByte(')')
	}
	sb.WriteString(" AS ")
	sb.WriteString(c.Select.SQL())
	return sb.String()
}

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table    string
	Columns  []string
	Rows     [][]Expr
	OrIgnore bool // INSERT OR IGNORE (SQLite-family conflict handling)
}

func (i *Insert) stmtNode() {}

// SQL renders the INSERT statement.
func (i *Insert) SQL() string {
	var sb strings.Builder
	sb.WriteString("INSERT ")
	if i.OrIgnore {
		sb.WriteString("OR IGNORE ")
	}
	sb.WriteString("INTO ")
	sb.WriteString(i.Table)
	if len(i.Columns) > 0 {
		sb.WriteString(" (")
		sb.WriteString(strings.Join(i.Columns, ", "))
		sb.WriteByte(')')
	}
	sb.WriteString(" VALUES ")
	for r, row := range i.Rows {
		if r > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('(')
		for c, e := range row {
			if c > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.SQL())
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// Assignment is one SET col = expr clause of UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is UPDATE table SET ... [WHERE pred].
type Update struct {
	Table string
	Sets  []Assignment
	Where Expr
}

func (u *Update) stmtNode() {}

// SQL renders the UPDATE statement.
func (u *Update) SQL() string {
	var sb strings.Builder
	sb.WriteString("UPDATE ")
	sb.WriteString(u.Table)
	sb.WriteString(" SET ")
	for i, a := range u.Sets {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Column)
		sb.WriteString(" = ")
		sb.WriteString(a.Value.SQL())
	}
	if u.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(u.Where.SQL())
	}
	return sb.String()
}

// Delete is DELETE FROM table [WHERE pred].
type Delete struct {
	Table string
	Where Expr
}

func (d *Delete) stmtNode() {}

// SQL renders the DELETE statement.
func (d *Delete) SQL() string {
	s := "DELETE FROM " + d.Table
	if d.Where != nil {
		s += " WHERE " + d.Where.SQL()
	}
	return s
}

// AlterTable is ALTER TABLE t ADD COLUMN def | DROP COLUMN name.
type AlterTable struct {
	Table      string
	AddColumn  *ColumnDef // exactly one of AddColumn/DropColumn is set
	DropColumn string
}

func (a *AlterTable) stmtNode() {}

// SQL renders the ALTER TABLE statement.
func (a *AlterTable) SQL() string {
	if a.AddColumn != nil {
		return "ALTER TABLE " + a.Table + " ADD COLUMN " + a.AddColumn.SQL()
	}
	return "ALTER TABLE " + a.Table + " DROP COLUMN " + a.DropColumn
}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name string
}

func (d *DropTable) stmtNode() {}

// SQL renders the DROP TABLE statement.
func (d *DropTable) SQL() string { return "DROP TABLE " + d.Name }

// DropView is DROP VIEW name.
type DropView struct {
	Name string
}

func (d *DropView) stmtNode() {}

// SQL renders the DROP VIEW statement.
func (d *DropView) SQL() string { return "DROP VIEW " + d.Name }

// DropIndex is DROP INDEX name: tears down the index's ordered store.
type DropIndex struct {
	Name string
}

func (d *DropIndex) stmtNode() {}

// SQL renders the DROP INDEX statement.
func (d *DropIndex) SQL() string { return "DROP INDEX " + d.Name }

// Reindex is REINDEX [name]: rebuilds one index (or, with no name, every
// index) from its table's visible rows — the natural repair for stale
// index entries.
type Reindex struct {
	Name string // optional; empty rebuilds all indexes
}

func (r *Reindex) stmtNode() {}

// SQL renders the REINDEX statement.
func (r *Reindex) SQL() string {
	if r.Name == "" {
		return "REINDEX"
	}
	return "REINDEX " + r.Name
}

// Analyze is ANALYZE [table]: collects planner statistics.
type Analyze struct {
	Table string // optional
}

func (a *Analyze) stmtNode() {}

// SQL renders the ANALYZE statement.
func (a *Analyze) SQL() string {
	if a.Table != "" {
		return "ANALYZE " + a.Table
	}
	return "ANALYZE"
}

// Refresh is REFRESH TABLE name — the CrateDB-style statement that makes
// inserted data visible to subsequent queries (paper §6, "Manual effort").
type Refresh struct {
	Table string
}

func (r *Refresh) stmtNode() {}

// SQL renders the REFRESH TABLE statement.
func (r *Refresh) SQL() string { return "REFRESH TABLE " + r.Table }

// SelectItem is one projection of a SELECT: either * or expr [AS alias].
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// SQL renders the projection item.
func (s *SelectItem) SQL() string {
	if s.Star {
		return "*"
	}
	out := s.Expr.SQL()
	if s.Alias != "" {
		out += " AS " + s.Alias
	}
	return out
}

// JoinType enumerates join clauses. JoinNone marks the first FROM item
// (no join keyword).
type JoinType int

// Join types (paper Appendix A.1: six types of join are supported).
const (
	JoinNone  JoinType = iota
	JoinComma          // FROM a, b
	JoinInner
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
	JoinNatural // NATURAL JOIN (inner, shared columns)
)

// String returns the SQL spelling of the join keyword.
func (j JoinType) String() string {
	switch j {
	case JoinComma:
		return ","
	case JoinInner:
		return "INNER JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	case JoinFull:
		return "FULL JOIN"
	case JoinCross:
		return "CROSS JOIN"
	case JoinNatural:
		return "NATURAL JOIN"
	default:
		return ""
	}
}

// TableRef is a table source in FROM: a named table/view or a derived table.
type TableRef interface {
	tableRefNode()
	// SQL renders the table reference.
	SQL() string
	// RefName returns the name the source is addressable by (alias or name).
	RefName() string
}

// TableName references a table or view by name with an optional alias.
type TableName struct {
	Name  string
	Alias string
}

func (t *TableName) tableRefNode() {}

// SQL renders the table reference.
func (t *TableName) SQL() string {
	if t.Alias != "" {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

// RefName returns the alias if present, else the table name.
func (t *TableName) RefName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// DerivedTable is a subquery in FROM: (SELECT ...) AS alias.
type DerivedTable struct {
	Select *Select
	Alias  string
}

func (d *DerivedTable) tableRefNode() {}

// SQL renders the derived table.
func (d *DerivedTable) SQL() string {
	return "(" + d.Select.SQL() + ") AS " + d.Alias
}

// RefName returns the mandatory alias.
func (d *DerivedTable) RefName() string { return d.Alias }

// FromItem is one element of the FROM clause. The first item has
// Join == JoinNone; subsequent items carry their join type and ON clause.
type FromItem struct {
	Ref  TableRef
	Join JoinType
	On   Expr // nil for comma/cross/natural joins
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SetOp is a compound-query operator.
type SetOp int

// Set operators. Non-ALL operators use set semantics (duplicates
// removed); UNION ALL keeps the multiset.
const (
	SetNone SetOp = iota
	SetUnion
	SetUnionAll
	SetIntersect
	SetExcept
)

// String returns the SQL spelling of the set operator.
func (op SetOp) String() string {
	switch op {
	case SetUnion:
		return "UNION"
	case SetUnionAll:
		return "UNION ALL"
	case SetIntersect:
		return "INTERSECT"
	case SetExcept:
		return "EXCEPT"
	default:
		return ""
	}
}

// CompoundPart is one arm of a compound query: OP SELECT ...
type CompoundPart struct {
	Op     SetOp
	Select *Select
}

// Select is a SELECT statement (also usable as a subquery). ORDER BY,
// LIMIT, and OFFSET apply to the whole compound query when Compound is
// non-empty.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem // empty means SELECT without FROM
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	Compound []CompoundPart
	OrderBy  []OrderItem
	Limit    *int64
	Offset   *int64
}

func (s *Select) stmtNode() {}
func (s *Select) exprNode() {} // a bare Select never appears as Expr; Subquery wraps it

// SQL renders the SELECT statement.
func (s *Select) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(s.Items[i].SQL())
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, f := range s.From {
			if i == 0 {
				sb.WriteString(f.Ref.SQL())
				continue
			}
			if f.Join == JoinComma {
				sb.WriteString(", ")
			} else {
				sb.WriteByte(' ')
				sb.WriteString(f.Join.String())
				sb.WriteByte(' ')
			}
			sb.WriteString(f.Ref.SQL())
			if f.On != nil {
				sb.WriteString(" ON ")
				sb.WriteString(f.On.SQL())
			}
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.SQL())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(s.Having.SQL())
	}
	for _, part := range s.Compound {
		sb.WriteByte(' ')
		sb.WriteString(part.Op.String())
		sb.WriteByte(' ')
		sb.WriteString(part.Select.SQL())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.SQL())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.FormatInt(*s.Limit, 10))
	}
	if s.Offset != nil {
		sb.WriteString(" OFFSET ")
		sb.WriteString(strconv.FormatInt(*s.Offset, 10))
	}
	return sb.String()
}
