package sqlast

// WalkExpr calls fn for e and every sub-expression of e, pre-order.
// If fn returns false the children of the current node are skipped.
// Subqueries are descended into (their WHERE/ON/projection expressions).
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil {
		return
	}
	if !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Literal, *ColumnRef:
	case *Unary:
		WalkExpr(x.X, fn)
	case *Binary:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *Func:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *Case:
		WalkExpr(x.Operand, fn)
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(x.Else, fn)
	case *Cast:
		WalkExpr(x.X, fn)
	case *Between:
		WalkExpr(x.X, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *InList:
		WalkExpr(x.X, fn)
		for _, e := range x.List {
			WalkExpr(e, fn)
		}
	case *IsNull:
		WalkExpr(x.X, fn)
	case *IsBool:
		WalkExpr(x.X, fn)
	case *Like:
		WalkExpr(x.X, fn)
		WalkExpr(x.Pattern, fn)
	case *Subquery:
		WalkSelectExprs(x.Select, fn)
	case *Exists:
		WalkSelectExprs(x.Select, fn)
	}
}

// WalkSelectExprs walks every expression appearing in a SELECT, including
// nested derived tables and subqueries.
func WalkSelectExprs(s *Select, fn func(Expr) bool) {
	if s == nil {
		return
	}
	for i := range s.Items {
		WalkExpr(s.Items[i].Expr, fn)
	}
	for _, f := range s.From {
		if d, ok := f.Ref.(*DerivedTable); ok {
			WalkSelectExprs(d.Select, fn)
		}
		WalkExpr(f.On, fn)
	}
	WalkExpr(s.Where, fn)
	for _, g := range s.GroupBy {
		WalkExpr(g, fn)
	}
	WalkExpr(s.Having, fn)
	for _, part := range s.Compound {
		WalkSelectExprs(part.Select, fn)
	}
	for _, o := range s.OrderBy {
		WalkExpr(o.Expr, fn)
	}
}

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Literal:
		c := *x
		return &c
	case *ColumnRef:
		c := *x
		return &c
	case *Unary:
		return &Unary{Op: x.Op, X: CloneExpr(x.X)}
	case *Binary:
		return &Binary{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *Func:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = CloneExpr(a)
		}
		return &Func{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}
	case *Case:
		whens := make([]When, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = When{Cond: CloneExpr(w.Cond), Then: CloneExpr(w.Then)}
		}
		return &Case{Operand: CloneExpr(x.Operand), Whens: whens, Else: CloneExpr(x.Else)}
	case *Cast:
		return &Cast{X: CloneExpr(x.X), To: x.To}
	case *Between:
		return &Between{X: CloneExpr(x.X), Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi), Not: x.Not}
	case *InList:
		list := make([]Expr, len(x.List))
		for i, e := range x.List {
			list[i] = CloneExpr(e)
		}
		return &InList{X: CloneExpr(x.X), List: list, Not: x.Not}
	case *IsNull:
		return &IsNull{X: CloneExpr(x.X), Not: x.Not}
	case *IsBool:
		return &IsBool{X: CloneExpr(x.X), Val: x.Val, Not: x.Not}
	case *Like:
		return &Like{X: CloneExpr(x.X), Pattern: CloneExpr(x.Pattern), Kind: x.Kind, Not: x.Not}
	case *Subquery:
		return &Subquery{Select: CloneSelect(x.Select)}
	case *Exists:
		return &Exists{Select: CloneSelect(x.Select), Not: x.Not}
	default:
		return e
	}
}

// CloneSelect returns a deep copy of s.
func CloneSelect(s *Select) *Select {
	if s == nil {
		return nil
	}
	c := &Select{Distinct: s.Distinct}
	c.Items = make([]SelectItem, len(s.Items))
	for i, it := range s.Items {
		c.Items[i] = SelectItem{Star: it.Star, Expr: CloneExpr(it.Expr), Alias: it.Alias}
	}
	c.From = make([]FromItem, len(s.From))
	for i, f := range s.From {
		var ref TableRef
		switch r := f.Ref.(type) {
		case *TableName:
			cp := *r
			ref = &cp
		case *DerivedTable:
			ref = &DerivedTable{Select: CloneSelect(r.Select), Alias: r.Alias}
		}
		c.From[i] = FromItem{Ref: ref, Join: f.Join, On: CloneExpr(f.On)}
	}
	c.Where = CloneExpr(s.Where)
	c.GroupBy = make([]Expr, len(s.GroupBy))
	for i, g := range s.GroupBy {
		c.GroupBy[i] = CloneExpr(g)
	}
	if len(s.GroupBy) == 0 {
		c.GroupBy = nil
	}
	c.Having = CloneExpr(s.Having)
	for _, part := range s.Compound {
		c.Compound = append(c.Compound, CompoundPart{Op: part.Op, Select: CloneSelect(part.Select)})
	}
	if len(s.OrderBy) > 0 {
		c.OrderBy = make([]OrderItem, len(s.OrderBy))
		for i, o := range s.OrderBy {
			c.OrderBy[i] = OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc}
		}
	}
	if s.Limit != nil {
		v := *s.Limit
		c.Limit = &v
	}
	if s.Offset != nil {
		v := *s.Offset
		c.Offset = &v
	}
	return c
}

// CloneStmt returns a deep copy of st.
func CloneStmt(st Stmt) Stmt {
	switch x := st.(type) {
	case *Select:
		return CloneSelect(x)
	case *CreateTable:
		c := *x
		c.Columns = append([]ColumnDef(nil), x.Columns...)
		return &c
	case *CreateIndex:
		c := *x
		c.Columns = append([]string(nil), x.Columns...)
		c.Where = CloneExpr(x.Where)
		return &c
	case *CreateView:
		c := *x
		c.Columns = append([]string(nil), x.Columns...)
		c.Select = CloneSelect(x.Select)
		return &c
	case *Insert:
		c := *x
		c.Columns = append([]string(nil), x.Columns...)
		c.Rows = make([][]Expr, len(x.Rows))
		for i, row := range x.Rows {
			c.Rows[i] = make([]Expr, len(row))
			for j, e := range row {
				c.Rows[i][j] = CloneExpr(e)
			}
		}
		return &c
	case *Update:
		c := *x
		c.Sets = make([]Assignment, len(x.Sets))
		for i, a := range x.Sets {
			c.Sets[i] = Assignment{Column: a.Column, Value: CloneExpr(a.Value)}
		}
		c.Where = CloneExpr(x.Where)
		return &c
	case *Delete:
		c := *x
		c.Where = CloneExpr(x.Where)
		return &c
	case *AlterTable:
		c := *x
		if x.AddColumn != nil {
			col := *x.AddColumn
			c.AddColumn = &col
		}
		return &c
	case *DropTable:
		c := *x
		return &c
	case *DropView:
		c := *x
		return &c
	case *DropIndex:
		c := *x
		return &c
	case *Reindex:
		c := *x
		return &c
	case *Analyze:
		c := *x
		return &c
	case *Refresh:
		c := *x
		return &c
	default:
		return st
	}
}

// EqualExpr reports structural equality of two expressions. It is used by
// parser round-trip tests and by the reducer to detect fixpoints; rendered
// SQL is deterministic, so comparing rendered text is equivalent.
func EqualExpr(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.SQL() == b.SQL()
}

// EqualStmt reports structural equality of two statements.
func EqualStmt(a, b Stmt) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.SQL() == b.SQL()
}
