// Package sqlast defines the SQL abstract syntax tree shared by the
// adaptive generator, the parser, the engine, and the reducer.
//
// Every node renders to deterministic SQL text via SQL(). Expressions are
// fully parenthesized on rendering, so rendered text round-trips through
// internal/sqlparse without precedence ambiguity.
package sqlast

import (
	"strconv"
	"strings"
)

// Type is a SQL data type name. The platform supports the paper's three
// data types: INTEGER, TEXT, and BOOLEAN (Appendix A.1).
type Type int

// Supported data types.
const (
	TypeUnknown Type = iota
	TypeInt
	TypeText
	TypeBool
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOLEAN"
	default:
		return "UNKNOWN"
	}
}

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	// SQL renders the expression as deterministic SQL text.
	SQL() string
}

// LitKind distinguishes literal constants.
type LitKind int

// Literal kinds.
const (
	LitNull LitKind = iota
	LitInt
	LitText
	LitBool
)

// Literal is a constant: NULL, an integer, a string, or a boolean.
type Literal struct {
	Kind LitKind
	Int  int64
	Text string
	Bool bool
}

// Null, True and False are shared literal constructors.
func Null() *Literal          { return &Literal{Kind: LitNull} }
func IntLit(v int64) *Literal { return &Literal{Kind: LitInt, Int: v} }
func TextLit(s string) *Literal {
	return &Literal{Kind: LitText, Text: s}
}
func BoolLit(b bool) *Literal { return &Literal{Kind: LitBool, Bool: b} }

func (l *Literal) exprNode() {}

// SQL renders the literal. Strings use single quotes with ” escaping.
func (l *Literal) SQL() string {
	switch l.Kind {
	case LitNull:
		return "NULL"
	case LitInt:
		return strconv.FormatInt(l.Int, 10)
	case LitText:
		return "'" + strings.ReplaceAll(l.Text, "'", "''") + "'"
	case LitBool:
		if l.Bool {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "NULL"
	}
}

// ColumnRef references a column, optionally qualified by table (or alias).
type ColumnRef struct {
	Table  string // optional qualifier
	Column string
}

func (c *ColumnRef) exprNode() {}

// SQL renders the (optionally qualified) column reference.
func (c *ColumnRef) SQL() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// UnaryOp enumerates prefix operators.
type UnaryOp int

// Unary operators.
const (
	UMinus  UnaryOp = iota // -x
	UPlus                  // +x
	UBitNot                // ~x
	UNot                   // NOT x
)

// String returns the SQL spelling of the operator.
func (op UnaryOp) String() string {
	switch op {
	case UMinus:
		return "-"
	case UPlus:
		return "+"
	case UBitNot:
		return "~"
	case UNot:
		return "NOT"
	default:
		return "?"
	}
}

// Unary applies a prefix operator to an operand.
type Unary struct {
	Op UnaryOp
	X  Expr
}

func (u *Unary) exprNode() {}

// SQL renders the unary expression fully parenthesized. A space follows
// the operator so that "-(-2000)" cannot render as the line comment
// "--2000".
func (u *Unary) SQL() string {
	if u.Op == UNot {
		return "(NOT " + u.X.SQL() + ")"
	}
	return "(" + u.Op.String() + " " + u.X.SQL() + ")"
}

// BinaryOp enumerates infix operators.
type BinaryOp int

// Binary operators.
const (
	OpAdd           BinaryOp = iota // +
	OpSub                           // -
	OpMul                           // *
	OpDiv                           // /
	OpMod                           // %
	OpConcat                        // ||
	OpBitAnd                        // &
	OpBitOr                         // |
	OpBitXor                        // ^
	OpShl                           // <<
	OpShr                           // >>
	OpEq                            // =
	OpNeq                           // !=
	OpNeq2                          // <>
	OpLt                            // <
	OpLe                            // <=
	OpGt                            // >
	OpGe                            // >=
	OpNullSafeEq                    // <=> (MySQL-family null-safe equality)
	OpAnd                           // AND
	OpOr                            // OR
	OpXor                           // XOR (logical)
	OpIsDistinct                    // IS DISTINCT FROM
	OpIsNotDistinct                 // IS NOT DISTINCT FROM
)

// String returns the SQL spelling of the operator.
func (op BinaryOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpConcat:
		return "||"
	case OpBitAnd:
		return "&"
	case OpBitOr:
		return "|"
	case OpBitXor:
		return "^"
	case OpShl:
		return "<<"
	case OpShr:
		return ">>"
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpNeq2:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpNullSafeEq:
		return "<=>"
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpXor:
		return "XOR"
	case OpIsDistinct:
		return "IS DISTINCT FROM"
	case OpIsNotDistinct:
		return "IS NOT DISTINCT FROM"
	default:
		return "?"
	}
}

// IsComparison reports whether the operator yields a boolean from two
// comparable operands.
func (op BinaryOp) IsComparison() bool {
	switch op {
	case OpEq, OpNeq, OpNeq2, OpLt, OpLe, OpGt, OpGe, OpNullSafeEq,
		OpIsDistinct, OpIsNotDistinct:
		return true
	}
	return false
}

// IsLogical reports whether the operator combines booleans.
func (op BinaryOp) IsLogical() bool {
	return op == OpAnd || op == OpOr || op == OpXor
}

// IsArithmetic reports whether the operator is numeric (incl. bitwise).
func (op BinaryOp) IsArithmetic() bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpBitAnd, OpBitOr, OpBitXor,
		OpShl, OpShr:
		return true
	}
	return false
}

// Binary applies an infix operator.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

func (b *Binary) exprNode() {}

// SQL renders the binary expression fully parenthesized.
func (b *Binary) SQL() string {
	return "(" + b.L.SQL() + " " + b.Op.String() + " " + b.R.SQL() + ")"
}

// Func is a scalar or aggregate function call.
type Func struct {
	Name     string // upper-case function name
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

func (f *Func) exprNode() {}

// SQL renders the call.
func (f *Func) SQL() string {
	var sb strings.Builder
	sb.WriteString(f.Name)
	sb.WriteByte('(')
	if f.Star {
		sb.WriteByte('*')
	} else {
		if f.Distinct {
			sb.WriteString("DISTINCT ")
		}
		for i, a := range f.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.SQL())
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// When is one WHEN ... THEN ... arm of a CASE expression.
type When struct {
	Cond Expr
	Then Expr
}

// Case is a CASE expression, with or without an operand.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr // nil if absent
}

func (c *Case) exprNode() {}

// SQL renders the CASE expression.
func (c *Case) SQL() string {
	var sb strings.Builder
	sb.WriteString("(CASE")
	if c.Operand != nil {
		sb.WriteByte(' ')
		sb.WriteString(c.Operand.SQL())
	}
	for _, w := range c.Whens {
		sb.WriteString(" WHEN ")
		sb.WriteString(w.Cond.SQL())
		sb.WriteString(" THEN ")
		sb.WriteString(w.Then.SQL())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE ")
		sb.WriteString(c.Else.SQL())
	}
	sb.WriteString(" END)")
	return sb.String()
}

// Cast converts an expression to a type.
type Cast struct {
	X  Expr
	To Type
}

func (c *Cast) exprNode() {}

// SQL renders the CAST expression.
func (c *Cast) SQL() string {
	return "CAST(" + c.X.SQL() + " AS " + c.To.String() + ")"
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

func (b *Between) exprNode() {}

// SQL renders the BETWEEN expression.
func (b *Between) SQL() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return "(" + b.X.SQL() + " " + not + "BETWEEN " + b.Lo.SQL() +
		" AND " + b.Hi.SQL() + ")"
}

// InList is x [NOT] IN (e1, e2, ...).
type InList struct {
	X    Expr
	List []Expr
	Not  bool
}

func (in *InList) exprNode() {}

// SQL renders the IN expression.
func (in *InList) SQL() string {
	var sb strings.Builder
	sb.WriteByte('(')
	sb.WriteString(in.X.SQL())
	if in.Not {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	for i, e := range in.List {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(e.SQL())
	}
	sb.WriteString("))")
	return sb.String()
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

func (i *IsNull) exprNode() {}

// SQL renders the IS NULL test.
func (i *IsNull) SQL() string {
	if i.Not {
		return "(" + i.X.SQL() + " IS NOT NULL)"
	}
	return "(" + i.X.SQL() + " IS NULL)"
}

// IsBool is x IS [NOT] TRUE/FALSE.
type IsBool struct {
	X   Expr
	Val bool
	Not bool
}

func (i *IsBool) exprNode() {}

// SQL renders the IS TRUE/FALSE test.
func (i *IsBool) SQL() string {
	s := "(" + i.X.SQL() + " IS "
	if i.Not {
		s += "NOT "
	}
	if i.Val {
		s += "TRUE)"
	} else {
		s += "FALSE)"
	}
	return s
}

// LikeKind distinguishes pattern-matching operators.
type LikeKind int

// Pattern-matching operators.
const (
	LikeLike LikeKind = iota // LIKE: % and _ wildcards, case-insensitive ASCII
	LikeGlob                 // GLOB: * and ? wildcards, case-sensitive
)

// Like is x [NOT] LIKE/GLOB pattern.
type Like struct {
	X, Pattern Expr
	Kind       LikeKind
	Not        bool
}

func (l *Like) exprNode() {}

// SQL renders the pattern-matching expression.
func (l *Like) SQL() string {
	op := "LIKE"
	if l.Kind == LikeGlob {
		op = "GLOB"
	}
	if l.Not {
		op = "NOT " + op
	}
	return "(" + l.X.SQL() + " " + op + " " + l.Pattern.SQL() + ")"
}

// Subquery is a scalar subquery: (SELECT ...) used as an expression.
type Subquery struct {
	Select *Select
}

func (s *Subquery) exprNode() {}

// SQL renders the scalar subquery.
func (s *Subquery) SQL() string { return "(" + s.Select.SQL() + ")" }

// Exists is [NOT] EXISTS (SELECT ...).
type Exists struct {
	Select *Select
	Not    bool
}

func (e *Exists) exprNode() {}

// SQL renders the EXISTS expression.
func (e *Exists) SQL() string {
	if e.Not {
		return "(NOT EXISTS (" + e.Select.SQL() + "))"
	}
	return "(EXISTS (" + e.Select.SQL() + "))"
}
