package faults

import (
	"fmt"
	"sort"
)

// spec is a compact catalogue entry; IDs are assigned per dialect.
type spec struct {
	class Class
	kind  Kind
	param string
	desc  string
}

// catalog lists the injected faults per dialect. The distribution follows
// the *shape* of the paper's Table 2 at roughly half scale for the
// bug-heavy systems (Umbra > MonetDB > CrateDB ≈ Dolt > Firebird ≈ DuckDB
// ≈ Virtuoso > …), with the small counts kept exact. The logic:other
// ratio is ≈72:28, matching the paper's 140:56.
//
// SQLite's three faults are modeled on the paper's two case-study bugs
// (Listings 2 and 3) plus one type-affinity defect.
var catalog = map[string][]spec{
	"sqlite": {
		{Logic, FuncCmpNumeric, "REPLACE", "REPLACE returns an intermediate object compared numerically (paper Listing 2; hidden ~10 years)"},
		{Logic, JoinOnToWhere, "RIGHT JOIN", "query flattener moves a RIGHT JOIN ON term into WHERE (paper Listing 3)"},
		{Logic, CmpMixedText, ">", "affinity defect: INT>TEXT compares textually under index lookup"},
	},
	"mysql": {
		{Logic, CmpNullTrue, "<>", "<> with NULL operand keeps the row in the optimized filter"},
		{Logic, FuncCmpNumeric, "LOWER", "LOWER result constant-folded to a numeric comparison"},
	},
	"mariadb": {
		{Logic, CmpNullEqTrue, "<=", "NULL<=NULL evaluates TRUE in the range optimizer"},
		{Logic, FuncWrongVal, "UPPER", "UPPER value perturbed when folded into an index probe"},
		{Error, UniqueIndexFalseConflict, "", "multi-column unique index checks only the leading key column, raising spurious duplicate-key errors"},
	},
	"percona": {
		{Logic, NotElim, ">=", "NOT(a>=b) rewritten to a<=b, double-counting equal keys"},
		{Logic, NotInNullTrue, "", "NOT IN with NULL element yields TRUE instead of NULL"},
	},
	"tidb": {
		{Logic, CmpMixedText, "<", "INT<TEXT compared textually after constant propagation"},
		{Logic, NotElim, "<=", "NOT(a<=b) rewritten to a>=b, double-counting equal keys"},
		{Crash, CrashOnFeature, "~", "bitwise inversion crashes the executor (cf. paper §6 TiDB '~' bug)"},
		{Logic, IndexRangeBoundary, ">=", "index range scan treats >= as an exclusive lower bound, dropping boundary keys"},
		{Logic, CompositeProbePrefixSkip, "", "composite index probe marks the trailing range condition as consumed by the access path without applying it"},
		{Logic, PrefixSpanTruncate, "", "composite index probed through a partial key prefix loses the last entry of the prefix span (short upper fencepost)"},
	},
	"dolt": {
		{Logic, CmpNullTrue, "=", "= with NULL operand keeps the row in the optimized filter"},
		{Logic, CmpMixedText, "<=", "INT<=TEXT compared textually in storage iterator"},
		{Logic, NotElim, "!=", "NOT(a!=b) rewritten to a<b"},
		{Logic, FuncCmpNumeric, "REPLACE", "REPLACE result compared numerically against TEXT key"},
		{Logic, FuncWrongVal, "INSTR", "INSTR off-by-one when folded into a filter"},
		{Logic, JoinOnToWhere, "LEFT JOIN", "LEFT JOIN ON term flattened into WHERE"},
		{Logic, NotInNullTrue, "", "NOT IN with NULL element yields TRUE instead of NULL"},
		{Logic, CaseNullTrue, "", "CASE takes a branch whose WHEN condition is NULL"},
		{Crash, CrashOnFeature, "XOR", "logical XOR crashes the analyzer"},
		{Crash, CrashOnFeature, "&", "bitwise AND crashes the expression compiler"},
		{Crash, CrashOnDeepExpr, "", "deeply nested expressions overflow the analyzer stack"},
		{Error, InternalErrorOnFeature, "COALESCE", "COALESCE raises an internal error during folding"},
		{Error, InternalErrorOnFeature, "OFFSET", "OFFSET raises an internal iterator error"},
		{Perf, PerfOnFeature, "LIKE", "LIKE falls back to a quadratic scan"},
		{Logic, JoinIndexResidual, "", "lookup-join executor drops the non-key ON filters for index-probed rows"},
		{Logic, CompositeProbePrefixSkip, "", "composite index lookup returns the whole equality-prefix span and skips re-checking the trailing range filter"},
	},
	"vitess": {
		{Logic, CmpNullTrue, ">=", ">= with NULL operand keeps the row after query routing"},
		{Logic, NotInNullTrue, "", "NOT IN with NULL element yields TRUE on scatter queries"},
	},
	"cubrid": {
		{Logic, NotElim, "=", "NOT(a=b) rewritten to a<b"},
	},
	"cratedb": {
		{Logic, CmpNullTrue, "=", "= with NULL operand keeps the row in the optimized filter"},
		{Logic, CmpNullTrue, "<", "< with NULL operand keeps the row in the optimized filter"},
		{Logic, CmpNullEqTrue, ">=", "NULL>=NULL evaluates TRUE"},
		{Logic, CmpNullEqTrue, "<>", "NULL<>NULL evaluates TRUE"},
		{Logic, NotElim, "<=", "NOT(a<=b) rewritten to a>=b"},
		{Logic, FuncCmpNumeric, "REPLACE", "REPLACE result compared numerically against TEXT column"},
		{Logic, FuncWrongVal, "ABS", "ABS folded with sign error in filters"},
		{Logic, FuncWrongVal, "LENGTH", "LENGTH off-by-one when folded into filters"},
		{Logic, JoinOnToWhere, "LEFT JOIN", "LEFT JOIN ON term flattened into WHERE"},
		{Logic, JoinOnToWhere, "RIGHT JOIN", "RIGHT JOIN ON term flattened into WHERE"},
		{Logic, NotInNullTrue, "", "NOT IN with NULL element yields TRUE"},
		{Logic, BetweenExclusive, "", "BETWEEN treated as exclusive range"},
		{Logic, CaseNullTrue, "", "CASE takes a branch whose WHEN condition is NULL"},
		{Logic, DistinctFromNull, "", "IS DISTINCT FROM treats two NULLs as distinct"},
	},
	"umbra": {
		{Logic, CmpNullTrue, "!=", "!= with NULL operand keeps the row"},
		{Logic, CmpNullTrue, ">", "> with NULL operand keeps the row"},
		{Logic, CmpNullEqTrue, "=", "NULL=NULL evaluates TRUE in codegen"},
		{Logic, CmpNullEqTrue, "<", "NULL<NULL evaluates TRUE in codegen"},
		{Logic, NotElim, "<", "NOT(a<b) rewritten to a>b, dropping equal keys"},
		{Logic, NotElim, ">=", "NOT(a>=b) rewritten to a<=b"},
		{Logic, FuncCmpNumeric, "LOWER", "LOWER result compared numerically"},
		{Logic, FuncCmpNumeric, "TRIM", "TRIM result compared numerically"},
		{Logic, FuncWrongVal, "COALESCE", "COALESCE folded to the wrong argument in filters"},
		{Logic, FuncWrongVal, "SUBSTR", "SUBSTR window shifted when folded into filters"},
		{Logic, JoinOnToWhere, "LEFT JOIN", "LEFT JOIN ON term flattened into WHERE"},
		{Logic, JoinOnToWhere, "FULL JOIN", "FULL JOIN degraded to inner join under WHERE"},
		{Logic, NotInNullTrue, "", "NOT IN with NULL element yields TRUE"},
		{Logic, BetweenExclusive, "", "BETWEEN treated as exclusive range"},
		{Logic, LikeUnderscore, "", "LIKE '_' wildcard fails to match"},
		{Logic, CaseNullTrue, "", "CASE takes a branch whose WHEN condition is NULL"},
		{Crash, CrashOnFeature, "~", "bitwise inversion crashes codegen"},
		{Crash, CrashOnFeature, "<<", "left shift crashes codegen"},
		{Crash, CrashOnDeepExpr, "", "deeply nested expressions crash the compiler"},
		{Error, InternalErrorOnFeature, "NULLIF", "NULLIF raises an internal error"},
		{Error, InternalErrorOnFeature, ">>", "right shift raises an internal error"},
		{Error, InternalErrorOnFeature, "HAVING", "HAVING raises an internal error"},
		{Error, InternalErrorOnFeature, "HEX", "HEX raises an internal error"},
		{Perf, PerfOnFeature, "DISTINCT", "DISTINCT falls off the hash-aggregation fast path"},
		{Logic, IndexRangeBoundary, "<=", "index range scan treats <= as an exclusive upper bound, dropping boundary keys"},
		{Logic, JoinIndexResidual, "", "index-nested-loop join treats the probe equality as the whole ON condition, skipping residual conjuncts"},
		{Logic, CompositeSpanBoundary, "", "composite index span computes its trailing strict range with an off-by-one, dropping the boundary-adjacent key"},
		{Logic, JoinPermConjDrop, "", "join reorderer drops a relocated ON conjunct when the permuted order defers it past its original step"},
	},
	"monetdb": {
		{Logic, CmpNullTrue, "<=", "<= with NULL operand keeps the row"},
		{Logic, CmpNullEqTrue, "!=", "NULL!=NULL evaluates TRUE"},
		{Logic, NotElim, "=", "NOT(a=b) rewritten to a<b"},
		{Logic, FuncCmpNumeric, "UPPER", "UPPER result compared numerically"},
		{Logic, FuncWrongVal, "SIGN", "SIGN folded with inverted sign in filters"},
		{Logic, JoinOnToWhere, "RIGHT JOIN", "RIGHT JOIN ON term flattened into WHERE"},
		{Logic, NotInNullTrue, "", "NOT IN with NULL element yields TRUE"},
		{Logic, BetweenExclusive, "", "BETWEEN treated as exclusive range"},
		{Logic, CaseNullTrue, "", "CASE takes a branch whose WHEN condition is NULL"},
		{Logic, LikeUnderscore, "", "LIKE '_' wildcard fails to match"},
		{Logic, PartialIndexScan, "", "partial index scan drops rows outside the index predicate"},
		{Logic, UnionAllDedup, "", "UNION ALL removes duplicates as if it were UNION"},
		{Crash, CrashOnFeature, "%", "modulo crashes the MAL interpreter"},
		{Crash, CrashOnFeature, "GROUP BY", "GROUP BY crashes the relational algebra rewriter"},
		{Crash, CrashOnDeepExpr, "", "deeply nested expressions crash the parser stack"},
		{Error, InternalErrorOnFeature, "MOD", "MOD raises an internal error"},
		{Error, InternalErrorOnFeature, "CREATE VIEW", "view creation intermittently raises an internal error"},
		{Error, InternalErrorOnFeature, "<<", "left shift raises an internal error"},
		{Perf, PerfOnFeature, "IN", "IN list probes fall back to nested scans"},
		{Logic, StaleIndexAfterUpdate, "", "UPDATE skips secondary-index maintenance, leaving stale index entries behind"},
		{Logic, CompositeSpanBoundary, "", "multi-column index range scan loses the edge key of the trailing strict range (fencepost in the span computation)"},
		{Logic, PrefixSpanTruncate, "", "multi-column index scanned under a shorter key prefix than it was chosen for drops the final matching entry"},
		{Logic, CoveringIndexProjSwap, "", "index-only projection reads the first two key columns of a multi-column index through a transposed column map"},
	},
	"firebird": {
		{Logic, CmpNullEqTrue, "=", "NULL=NULL evaluates TRUE"},
		{Logic, NotElim, "<", "NOT(a<b) rewritten to a>b"},
		{Logic, FuncWrongVal, "TRIM", "TRIM result perturbed when folded into filters"},
		{Logic, BetweenExclusive, "", "BETWEEN treated as exclusive range"},
		{Logic, JoinOnToWhere, "LEFT JOIN", "LEFT JOIN ON term flattened into WHERE"},
		{Error, InternalErrorOnFeature, "SUBSTR", "SUBSTR raises an internal error"},
	},
	"duckdb": {
		{Logic, CmpNullTrue, ">=", ">= with NULL operand keeps the row in the vectorized filter"},
		{Logic, JoinOnToWhere, "FULL JOIN", "FULL JOIN degraded to inner join under WHERE"},
		{Logic, CaseNullTrue, "", "CASE takes a branch whose WHEN condition is NULL"},
		{Logic, UnionAllDedup, "", "UNION ALL removes duplicates in the vectorized concatenation"},
		{Crash, CrashOnFeature, "<<", "left shift crashes the vector executor"},
		{Error, InternalErrorOnFeature, "HEX", "HEX raises an internal error"},
		{Logic, VecCompareNullTrue, "=", "vectorized = kernel leaves the selection bit set for NULL lanes"},
		{Logic, BatchTailDrop, "", "scan filter zeroes the selection bitmap's final partial 64-lane word, dropping the last batch's rows"},
	},
	"virtuoso": {
		{Logic, CmpNullEqTrue, "<=", "NULL<=NULL evaluates TRUE"},
		{Logic, NotElim, ">", "NOT(a>b) rewritten to a<b"},
		{Logic, NotInNullTrue, "", "NOT IN with NULL element yields TRUE"},
		{Logic, LikeUnderscore, "", "LIKE '_' wildcard fails to match"},
		{Crash, CrashOnFeature, "~", "bitwise inversion crashes the server"},
	},
	"cedardb": {
		{Logic, CmpNullTrue, "<", "< with NULL operand keeps the row"},
		{Crash, CrashOnFeature, "FULL JOIN", "FULL JOIN crashes the compiler"},
		{Crash, CrashOnDeepExpr, "", "deeply nested expressions crash codegen"},
		{Error, InternalErrorOnFeature, "NULLIF", "NULLIF raises an internal error"},
	},
	"h2": {
		{Logic, DistinctFromNull, "", "IS DISTINCT FROM treats two NULLs as distinct"},
		{Error, InternalErrorOnFeature, ">>", "right shift raises an internal error"},
	},
	"oracle": {
		{Logic, BetweenExclusive, "", "BETWEEN treated as exclusive range"},
	},
	"risingwave": {
		{Logic, CmpNullTrue, "!=", "!= with NULL operand keeps the row in the stream filter"},
		{Logic, JoinOnToWhere, "LEFT JOIN", "LEFT JOIN ON term flattened into WHERE"},
		{Logic, CaseNullTrue, "", "CASE takes a branch whose WHEN condition is NULL"},
		{Crash, CrashOnFeature, ">>", "right shift crashes the stream executor"},
	},
	"postgresql": nil, // clean reference system (used for Tables 3–4)

	// panicdb is a synthetic containment-validation profile, not one of
	// the paper's Table 2 systems (it is deliberately absent from
	// dialect.PaperDBMSs, keeping the catalogue totals intact). Its
	// faults panic the harness *process* instead of returning errors:
	// seeded campaigns over it are the ground truth that proves the
	// campaign's recovery boundaries contain, attribute, and reduce
	// panics with zero false positives.
	//lint:allow faultsite panicdb is the synthetic containment-validation profile: deliberately unregistered, built ad hoc by the robustness tests
	"panicdb": {
		{Crash, PanicOnCompositeRebuild, "", "rebuilding a multi-column index overruns the key arena and panics the process (Go panic, not a simulated crash)"},
		{Crash, PanicOnProbeStep, "", "the index-nested-loop probe step dereferences a detached ordered-store entry and panics the process"},
	},
}

// ForDialect returns the injected faults of a dialect (nil for a clean
// system or unknown name). IDs are assigned deterministically as
// "<dialect>-<n>".
func ForDialect(name string) []Fault {
	specs, ok := catalog[name]
	if !ok || len(specs) == 0 {
		return nil
	}
	out := make([]Fault, len(specs))
	for i, sp := range specs {
		out[i] = Fault{
			ID:          fmt.Sprintf("%s-%d", name, i+1),
			Dialect:     name,
			Class:       sp.class,
			Kind:        sp.kind,
			Param:       sp.param,
			Description: sp.desc,
		}
	}
	return out
}

// Dialects returns the dialect names present in the catalogue, sorted.
func Dialects() []string {
	out := make([]string, 0, len(catalog))
	for name := range catalog {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CountByClass tallies a fault list by class.
func CountByClass(list []Fault) map[Class]int {
	m := map[Class]int{}
	for _, f := range list {
		m[f.Class]++
	}
	return m
}
