package faults

import "testing"

func TestSetIndexing(t *testing.T) {
	s := NewSet([]Fault{
		{ID: "a", Kind: CmpNullTrue, Param: "="},
		{ID: "b", Kind: CmpNullEqTrue, Param: "<"},
		{ID: "c", Kind: CmpMixedText, Param: ">"},
		{ID: "d", Kind: FuncCmpNumeric, Param: "REPLACE"},
		{ID: "e", Kind: FuncWrongVal, Param: "ABS"},
		{ID: "f", Kind: NotElim, Param: "<="},
		{ID: "g", Kind: JoinOnToWhere, Param: "LEFT JOIN"},
		{ID: "h", Kind: NotInNullTrue},
		{ID: "i", Kind: BetweenExclusive},
		{ID: "j", Kind: LikeUnderscore},
		{ID: "k", Kind: CaseNullTrue},
		{ID: "l", Kind: DistinctFromNull},
		{ID: "m", Kind: PartialIndexScan},
		{ID: "n", Kind: CrashOnFeature, Param: "XOR"},
		{ID: "o", Kind: CrashOnDeepExpr},
		{ID: "p", Kind: InternalErrorOnFeature, Param: "HEX"},
		{ID: "q", Kind: PerfOnFeature, Param: "IN"},
		{ID: "r", Kind: StaleIndexAfterUpdate},
		{ID: "s", Kind: IndexRangeBoundary, Param: "<="},
		{ID: "t", Kind: UniqueIndexFalseConflict},
		{ID: "u", Kind: CompositeSpanBoundary},
		{ID: "v", Kind: CompositeProbePrefixSkip},
		{ID: "w", Kind: PrefixSpanTruncate},
		{ID: "x", Kind: VecCompareNullTrue, Param: "="},
		{ID: "y", Kind: CoveringIndexProjSwap},
		{ID: "z", Kind: BatchTailDrop},
	})
	if s.Len() != 26 {
		t.Fatalf("Len = %d", s.Len())
	}
	if f := s.CmpNullTrue("="); f == nil || f.ID != "a" {
		t.Error("CmpNullTrue lookup failed")
	}
	if s.CmpNullTrue("<") != nil {
		t.Error("CmpNullTrue must be keyed by operator")
	}
	if f := s.CmpNullEq("<"); f == nil || f.ID != "b" {
		t.Error("CmpNullEq lookup failed")
	}
	if f := s.CmpMixed(">"); f == nil || f.ID != "c" {
		t.Error("CmpMixed lookup failed")
	}
	if f := s.FuncCmp("REPLACE"); f == nil || f.ID != "d" {
		t.Error("FuncCmp lookup failed")
	}
	if f := s.FuncWrong("ABS"); f == nil || f.ID != "e" {
		t.Error("FuncWrong lookup failed")
	}
	if f := s.NotElim("<="); f == nil || f.ID != "f" {
		t.Error("NotElim lookup failed")
	}
	if f := s.JoinFlatten("LEFT JOIN"); f == nil || f.ID != "g" {
		t.Error("JoinFlatten lookup failed")
	}
	for name, f := range map[string]*Fault{
		"NotInNull":    s.NotInNull(),
		"Between":      s.Between(),
		"Like":         s.Like(),
		"CaseNull":     s.CaseNull(),
		"DistinctFrom": s.DistinctFrom(),
		"PartialIndex": s.PartialIndex(),
		"StaleIndex":   s.StaleIndex(),
		"UniqueFalse":  s.UniqueConflict(),
		"CompBound":    s.CompositeBoundary(),
		"CompPrefix":   s.CompositePrefixSkip(),
		"PrefixTrunc":  s.PrefixTruncate(),
		"CrashDeep":    s.CrashDeep(),
		"CoveringSwap": s.CoveringSwap(),
		"BatchTail":    s.BatchTail(),
	} {
		if f == nil {
			t.Errorf("%s lookup failed", name)
		}
	}
	if f := s.CrashFeature("XOR"); f == nil || f.ID != "n" {
		t.Error("CrashFeature lookup failed")
	}
	if f := s.ErrFeature("HEX"); f == nil || f.ID != "p" {
		t.Error("ErrFeature lookup failed")
	}
	if f := s.PerfFeature("IN"); f == nil || f.ID != "q" {
		t.Error("PerfFeature lookup failed")
	}
	if f := s.RangeBoundary("<="); f == nil || f.ID != "s" {
		t.Error("RangeBoundary lookup failed")
	}
	if s.RangeBoundary(">=") != nil {
		t.Error("RangeBoundary must be keyed by operator")
	}
	if f := s.VecNull("="); f == nil || f.ID != "x" {
		t.Error("VecNull lookup failed")
	}
	if s.VecNull("<") != nil {
		t.Error("VecNull must be keyed by operator")
	}
}

func TestNilSetIsNoop(t *testing.T) {
	var s *Set
	if s.Len() != 0 || s.All() != nil {
		t.Error("nil set must be empty")
	}
	if s.CmpNullTrue("=") != nil || s.Between() != nil ||
		s.CrashFeature("X") != nil || s.CrashDeep() != nil {
		t.Error("nil set lookups must return nil")
	}
}

func TestForDialectIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range Dialects() {
		for _, f := range ForDialect(name) {
			if seen[f.ID] {
				t.Fatalf("duplicate fault ID %q", f.ID)
			}
			seen[f.ID] = true
			if f.Dialect != name {
				t.Fatalf("fault %s has wrong dialect %q", f.ID, f.Dialect)
			}
		}
	}
	if ForDialect("unknown-system") != nil {
		t.Error("unknown dialects must have no faults")
	}
}

func TestCountByClass(t *testing.T) {
	counts := CountByClass(ForDialect("umbra"))
	if counts[Logic] != 20 {
		t.Errorf("umbra logic faults = %d, want 20", counts[Logic])
	}
	if counts[Crash]+counts[Error]+counts[Perf] != 8 {
		t.Errorf("umbra other faults = %d, want 8",
			counts[Crash]+counts[Error]+counts[Perf])
	}
	if ClassName := Logic.String(); ClassName != "logic" {
		t.Errorf("class label = %q", ClassName)
	}
}

// TestSQLiteFaultsMatchPaperCaseStudies: the SQLite catalogue models the
// paper's two listings.
func TestSQLiteFaultsMatchPaperCaseStudies(t *testing.T) {
	s := NewSet(ForDialect("sqlite"))
	if s.FuncCmp("REPLACE") == nil {
		t.Error("sqlite must carry the REPLACE fault (paper Listing 2)")
	}
	if s.JoinFlatten("RIGHT JOIN") == nil {
		t.Error("sqlite must carry the flattener fault (paper Listing 3)")
	}
}

// TestPanicProfileKinds pins the synthetic panicdb containment profile:
// its catalogue must carry exactly the two process-panic mechanisms
// (PanicOnCompositeRebuild and PanicOnProbeStep) that the campaign's
// recovery-boundary acceptance tests rely on, resolvable through the
// Set accessors the engine uses to arm them.
func TestPanicProfileKinds(t *testing.T) {
	s := NewSet(ForDialect("panicdb"))
	if s.Len() != 2 {
		t.Fatalf("panicdb carries %d faults, want 2", s.Len())
	}
	rebuild := s.PanicRebuild()
	if rebuild == nil || rebuild.Kind != PanicOnCompositeRebuild {
		t.Errorf("PanicRebuild() = %+v, want kind PanicOnCompositeRebuild", rebuild)
	}
	probe := s.PanicProbe()
	if probe == nil || probe.Kind != PanicOnProbeStep {
		t.Errorf("PanicProbe() = %+v, want kind PanicOnProbeStep", probe)
	}
	for _, f := range s.All() {
		if f.Class != Crash {
			t.Errorf("panicdb fault %s has class %v, want Crash", f.ID, f.Class)
		}
	}
}
