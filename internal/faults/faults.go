// Package faults defines the injected-bug catalogue that stands in for
// the real, unknown bugs the paper found in 18 production DBMSs.
//
// Each fault is a small, realistic defect wired into the engine's
// *optimized* evaluation path (top-level filter predicates, optimizer
// rewrites, index scans) — the same places where real logic bugs hide and
// the reason the TLP and NoREC oracles can detect them. Crash and
// internal-error faults model the paper's "other bugs" category.
//
// Every logic mechanism flips a filter-root predicate between TRUE and
// not-TRUE (or perturbs a value feeding such a predicate): a defect that
// merely turns NULL into FALSE at a WHERE root is semantically invisible,
// because WHERE drops non-TRUE rows either way.
//
// Fault IDs are ground truth: the engine records which faults a query
// triggered, and the evaluation harness uses the IDs to count *unique*
// bugs (the paper used fix commits for this). The tester itself — the
// generator, oracles, and prioritizer — never sees fault IDs.
package faults

// Class categorizes a fault by user-visible symptom, mirroring the
// paper's bug classes in Table 2 and §6.
type Class int

// Fault classes.
const (
	Logic Class = iota // silent wrong result (detected by TLP/NoREC)
	Crash              // simulated server crash
	Error              // unexpected internal error
	Perf               // performance cliff
)

// String returns a short class label.
func (c Class) String() string {
	switch c {
	case Logic:
		return "logic"
	case Crash:
		return "crash"
	case Error:
		return "error"
	case Perf:
		return "perf"
	default:
		return "?"
	}
}

// Kind is the defect mechanism, interpreted by the engine.
type Kind int

// Fault mechanisms. "Filter root" means a top-level conjunct of a WHERE
// clause in the optimized path — the position where real DBMSs apply
// special-case rewrites and index selection, and therefore where a defect
// makes the optimized result diverge from the reference semantics.
const (
	// CmpNullTrue: a filter-root comparison with operator Param whose
	// result is NULL is treated as TRUE (row kept).
	CmpNullTrue Kind = iota
	// CmpNullEqTrue: a filter-root comparison with operator Param whose
	// operands are both NULL yields TRUE ("NULL equals NULL" defect).
	CmpNullEqTrue
	// CmpMixedText: a filter-root comparison with operator Param between a
	// numeric and a TEXT operand compares textually instead of using
	// storage-class order (dynamic-typing dialects only).
	CmpMixedText
	// FuncCmpNumeric: a filter-root comparison against the result of
	// function Param compares numerically even for TEXT operands — the
	// shape of the SQLite REPLACE bug (paper Listing 2).
	FuncCmpNumeric
	// FuncWrongVal: function Param, when it appears under a filter-root
	// comparison, returns a perturbed value for non-NULL inputs (an
	// index-constant-folding defect).
	FuncWrongVal
	// JoinOnToWhere: when a WHERE clause is present, the flattener
	// degrades outer join Param ("LEFT JOIN"/"RIGHT JOIN"/"FULL JOIN") to
	// an inner join, losing NULL-extended rows — the shape of the SQLite
	// subquery bug (paper Listing 3).
	JoinOnToWhere
	// NotElim: the rewrite NOT (a Param b) at a filter root uses a wrong
	// complement operator (e.g. NOT (a < b) => (a > b), losing equality).
	NotElim
	// NotInNullTrue: a filter-root NOT IN whose list contains NULL yields
	// TRUE instead of NULL when no listed element matches.
	NotInNullTrue
	// BetweenExclusive: a filter-root BETWEEN treats its bounds as
	// exclusive.
	BetweenExclusive
	// LikeUnderscore: a filter-root LIKE fails to match the '_' wildcard.
	LikeUnderscore
	// CaseNullTrue: a filter-root CASE treats a NULL WHEN condition as
	// TRUE (takes the wrong branch).
	CaseNullTrue
	// DistinctFromNull: a filter-root IS DISTINCT FROM treats two NULLs
	// as distinct (returns TRUE instead of FALSE).
	DistinctFromNull
	// PartialIndexScan: an equality filter on the leading column of a
	// *partial* index uses the index without re-checking rows outside the
	// index predicate, silently dropping them.
	PartialIndexScan
	// StaleIndexAfterUpdate: UPDATE skips secondary-index maintenance, so
	// later index probes return the pre-update rows (or miss the updated
	// ones) — the classic stale-entry corruption.
	StaleIndexAfterUpdate
	// IndexRangeBoundary: an index range scan with the inclusive operator
	// Param ("<=" or ">=") excludes the boundary keys, losing the rows
	// equal to the bound (an off-by-one in the span computation).
	IndexRangeBoundary
	// UniqueIndexFalseConflict: the uniqueness check of a multi-column
	// unique index compares only the leading key column, raising spurious
	// duplicate-key errors for rows that differ in a later column.
	UniqueIndexFalseConflict
	// CompositeSpanBoundary: the trailing strict range (< or >) of a
	// composite index span — an equality prefix plus a range on the next
	// key column — is computed with an off-by-one fencepost, dropping the
	// boundary-adjacent entry (the last entry for <, the first for >).
	// Disjoint from IndexRangeBoundary, which perturbs the inclusive
	// operators.
	CompositeSpanBoundary
	// CompositeProbePrefixSkip: a composite probe matches on its equality
	// prefix but treats the trailing range conjunct as already applied —
	// the whole prefix span comes back and the executor skips re-checking
	// the conjunct, so prefix-matching rows that fail the range appear in
	// the result (an extra-row defect, observable to TLP and PlanDiff).
	CompositeProbePrefixSkip
	// PrefixSpanTruncate: a composite index probed through an equality
	// prefix strictly shorter than its key — a whole-prefix span with no
	// trailing range — computes its upper fencepost one entry short,
	// dropping the span's last row. The cost-based planner reaches such a
	// span only when the query constrains a leading subset of the key;
	// plan forcing (composite-vs-leading PrefixWidth caps) reaches it for
	// fully constrained queries too, where the auto plan and the full
	// scan agree — the defect class the legacy index-on/off plan pair
	// cannot distinguish and the enumerated PlanDiff plan space can.
	PrefixSpanTruncate
	// JoinIndexResidual: the index-nested-loop join executor treats the
	// equality probe conjunct as covering the entire ON condition,
	// skipping the residual ON conjuncts for probed rows — extra join
	// rows appear whenever a residual conjunct would have rejected a
	// probed pair. Because the join plan is a function of FROM/ON alone,
	// every query of a TLP or NoREC case sees the same extra rows; the
	// defect is observable only to a plan-diffing oracle.
	JoinIndexResidual
	// UnionAllDedup: UNION ALL incorrectly removes duplicate rows, as if
	// it were UNION (a classic set-operation defect).
	UnionAllDedup
	// CrashOnFeature: any executed statement containing feature Param (an
	// operator spelling, function name, join keyword, or statement
	// keyword) crashes the server.
	CrashOnFeature
	// CrashOnDeepExpr: expressions nested deeper than 6 crash the server.
	CrashOnDeepExpr
	// InternalErrorOnFeature: feature Param triggers an internal error
	// ("unexpected error" bug class).
	InternalErrorOnFeature
	// PerfOnFeature: feature Param makes the executor fall off a
	// performance cliff (cost multiplied; detected by the campaign's cost
	// watchdog).
	PerfOnFeature
	// PanicOnCompositeRebuild: building or rebuilding a multi-column
	// index through CREATE INDEX or REINDEX panics the *process* — a Go
	// runtime panic, not a simulated ErrCrash — modeling the
	// memory-safety class of bug that kills the harness itself and that
	// only the campaign's recovery boundaries can survive. The engine
	// triggers the fault (ground truth) immediately before panicking, at
	// a point where no catalog state has mutated, so a Restart()ed
	// instance stays consistent.
	PanicOnCompositeRebuild
	// PanicOnProbeStep: the index-nested-loop join probe step panics the
	// process (read-only SELECT path, so recovered state is consistent).
	// Triggered before the panic, like PanicOnCompositeRebuild.
	PanicOnProbeStep
	// VecCompareNullTrue: the vectorized comparison kernel for operator
	// Param leaves a lane's selection bit *set* when the comparison
	// yields NULL — the SIMD-style "three-valued logic collapsed to a
	// bitmap" defect class vectorized executors grow. Applies wherever
	// the filter vectorizes a column-op-literal conjunct (SELECT WHERE
	// and DML collection alike, so the defect is plan-independent);
	// non-vectorizable conjuncts fall back to scalar evaluation and are
	// unaffected.
	VecCompareNullTrue
	// CoveringIndexProjSwap: a covering-index projection — one served
	// straight from the ordered index entries without touching heap
	// rows — reads its first two key columns through a transposed
	// column map, serving leads[1] where leads[0] was asked and vice
	// versa (an index-content/layout corruption only the covering path
	// can express). Queries on single-column indexes, non-covering
	// plans, and rows whose two lead columns happen to hold equal
	// values are unaffected.
	CoveringIndexProjSwap
	// BatchTailDrop: the batch filter's selection bitmap allocates in
	// 64-lane words, and a candidate stream longer than one word whose
	// length is not a multiple of 64 has its final partial word zeroed
	// before evaluation — the rows of the last partial batch silently
	// vanish. Streams of at most 64 rows (or an exact multiple) are
	// unaffected, so small tables mask the defect. SELECT filtering
	// only: DML collection orders mutations row-at-a-time.
	BatchTailDrop
	// JoinPermConjDrop: the join reorderer drops an ON conjunct that a
	// join-order permutation re-attached at a later step than it
	// originally joined under — the step evaluates only the conjuncts
	// that stayed put, so candidate pairs the relocated conjunct would
	// have rejected leak into the result. The auto plan and the plain
	// two-relation swap relocate nothing, so the defect is observable
	// only when a plan-diffing oracle forces a deeper permutation of a
	// 3+-relation inner-join chain.
	JoinPermConjDrop
)

// Fault is one injected defect.
type Fault struct {
	ID          string // unique, e.g. "sqlite-1"
	Dialect     string // dialect the fault is injected into
	Class       Class
	Kind        Kind
	Param       string // operator spelling / function name / join or feature keyword
	Description string
}

// Set is the runtime view of a dialect's faults, indexed for the engine's
// hot paths. A nil *Set disables injection entirely.
type Set struct {
	all []Fault

	cmpNullTrue  map[string]*Fault // by comparison operator spelling
	cmpNullEq    map[string]*Fault
	cmpMixed     map[string]*Fault
	funcCmp      map[string]*Fault // by function name
	funcWrong    map[string]*Fault
	notElim      map[string]*Fault // by inner comparison operator
	joinFlatten  map[string]*Fault // by join keyword
	notInNull    *Fault
	between      *Fault
	like         *Fault
	caseNull     *Fault
	distinctFrom *Fault
	partialIndex *Fault
	staleIndex   *Fault
	rangeBound   map[string]*Fault // by inclusive comparison operator
	uniqueFalse  *Fault
	compBound    *Fault
	compPrefix   *Fault
	prefixTrunc  *Fault
	joinResidual *Fault
	unionDedup   *Fault
	crashFeature map[string]*Fault
	crashDeep    *Fault
	errFeature   map[string]*Fault
	perfFeature  map[string]*Fault
	panicRebuild *Fault
	panicProbe   *Fault
	vecNull      map[string]*Fault // by comparison operator spelling
	coverSwap    *Fault
	batchTail    *Fault
	permDrop     *Fault
}

// NewSet indexes a fault list.
func NewSet(list []Fault) *Set {
	s := &Set{
		all:          append([]Fault(nil), list...),
		cmpNullTrue:  map[string]*Fault{},
		cmpNullEq:    map[string]*Fault{},
		cmpMixed:     map[string]*Fault{},
		funcCmp:      map[string]*Fault{},
		funcWrong:    map[string]*Fault{},
		notElim:      map[string]*Fault{},
		joinFlatten:  map[string]*Fault{},
		rangeBound:   map[string]*Fault{},
		crashFeature: map[string]*Fault{},
		errFeature:   map[string]*Fault{},
		perfFeature:  map[string]*Fault{},
		vecNull:      map[string]*Fault{},
	}
	for i := range s.all {
		f := &s.all[i]
		switch f.Kind {
		case CmpNullTrue:
			s.cmpNullTrue[f.Param] = f
		case CmpNullEqTrue:
			s.cmpNullEq[f.Param] = f
		case CmpMixedText:
			s.cmpMixed[f.Param] = f
		case FuncCmpNumeric:
			s.funcCmp[f.Param] = f
		case FuncWrongVal:
			s.funcWrong[f.Param] = f
		case NotElim:
			s.notElim[f.Param] = f
		case JoinOnToWhere:
			s.joinFlatten[f.Param] = f
		case NotInNullTrue:
			s.notInNull = f
		case BetweenExclusive:
			s.between = f
		case LikeUnderscore:
			s.like = f
		case CaseNullTrue:
			s.caseNull = f
		case DistinctFromNull:
			s.distinctFrom = f
		case PartialIndexScan:
			s.partialIndex = f
		case StaleIndexAfterUpdate:
			s.staleIndex = f
		case IndexRangeBoundary:
			s.rangeBound[f.Param] = f
		case UniqueIndexFalseConflict:
			s.uniqueFalse = f
		case CompositeSpanBoundary:
			s.compBound = f
		case CompositeProbePrefixSkip:
			s.compPrefix = f
		case PrefixSpanTruncate:
			s.prefixTrunc = f
		case JoinIndexResidual:
			s.joinResidual = f
		case UnionAllDedup:
			s.unionDedup = f
		case CrashOnFeature:
			s.crashFeature[f.Param] = f
		case CrashOnDeepExpr:
			s.crashDeep = f
		case InternalErrorOnFeature:
			s.errFeature[f.Param] = f
		case PerfOnFeature:
			s.perfFeature[f.Param] = f
		case PanicOnCompositeRebuild:
			s.panicRebuild = f
		case PanicOnProbeStep:
			s.panicProbe = f
		case VecCompareNullTrue:
			s.vecNull[f.Param] = f
		case CoveringIndexProjSwap:
			s.coverSwap = f
		case BatchTailDrop:
			s.batchTail = f
		case JoinPermConjDrop:
			s.permDrop = f
		}
	}
	return s
}

// All returns the fault list.
func (s *Set) All() []Fault {
	if s == nil {
		return nil
	}
	return s.all
}

// Len returns the number of faults.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.all)
}

// CmpNullTrue returns the NULL-as-TRUE fault for a comparison operator.
func (s *Set) CmpNullTrue(op string) *Fault {
	if s == nil {
		return nil
	}
	return s.cmpNullTrue[op]
}

// CmpNullEq returns the NULL-equals-NULL fault for a comparison operator.
func (s *Set) CmpNullEq(op string) *Fault {
	if s == nil {
		return nil
	}
	return s.cmpNullEq[op]
}

// CmpMixed returns the mixed-type textual-comparison fault for an operator.
func (s *Set) CmpMixed(op string) *Fault {
	if s == nil {
		return nil
	}
	return s.cmpMixed[op]
}

// FuncCmp returns the FuncCmpNumeric fault targeting function name.
func (s *Set) FuncCmp(name string) *Fault {
	if s == nil {
		return nil
	}
	return s.funcCmp[name]
}

// FuncWrong returns the FuncWrongVal fault targeting function name.
func (s *Set) FuncWrong(name string) *Fault {
	if s == nil {
		return nil
	}
	return s.funcWrong[name]
}

// NotElim returns the NOT-elimination fault for an inner operator.
func (s *Set) NotElim(op string) *Fault {
	if s == nil {
		return nil
	}
	return s.notElim[op]
}

// JoinFlatten returns the ON→WHERE flattener fault for a join keyword.
func (s *Set) JoinFlatten(join string) *Fault {
	if s == nil {
		return nil
	}
	return s.joinFlatten[join]
}

// NotInNull returns the NOT-IN-with-NULL fault, if any.
func (s *Set) NotInNull() *Fault {
	if s == nil {
		return nil
	}
	return s.notInNull
}

// Between returns the exclusive-BETWEEN fault, if any.
func (s *Set) Between() *Fault {
	if s == nil {
		return nil
	}
	return s.between
}

// Like returns the LIKE-underscore fault, if any.
func (s *Set) Like() *Fault {
	if s == nil {
		return nil
	}
	return s.like
}

// CaseNull returns the CASE-null-condition fault, if any.
func (s *Set) CaseNull() *Fault {
	if s == nil {
		return nil
	}
	return s.caseNull
}

// DistinctFrom returns the IS DISTINCT FROM fault, if any.
func (s *Set) DistinctFrom() *Fault {
	if s == nil {
		return nil
	}
	return s.distinctFrom
}

// PartialIndex returns the partial-index-scan fault, if any.
func (s *Set) PartialIndex() *Fault {
	if s == nil {
		return nil
	}
	return s.partialIndex
}

// StaleIndex returns the stale-index-after-UPDATE fault, if any.
func (s *Set) StaleIndex() *Fault {
	if s == nil {
		return nil
	}
	return s.staleIndex
}

// RangeBoundary returns the index range off-by-one fault for an
// inclusive comparison operator ("<=" or ">=").
func (s *Set) RangeBoundary(op string) *Fault {
	if s == nil {
		return nil
	}
	return s.rangeBound[op]
}

// UniqueConflict returns the unique-index false-conflict fault, if any.
func (s *Set) UniqueConflict() *Fault {
	if s == nil {
		return nil
	}
	return s.uniqueFalse
}

// HasPlanFaults reports whether the set carries any access-path-planner
// fault (PartialIndexScan, StaleIndexAfterUpdate, IndexRangeBoundary,
// CompositeSpanBoundary, CompositeProbePrefixSkip, PrefixSpanTruncate,
// JoinPermConjDrop). The engine pins its planner scratch buffers before
// running their ground-truth checks, whose clean re-evaluation may
// re-enter the planner.
func (s *Set) HasPlanFaults() bool {
	if s == nil {
		return false
	}
	return s.partialIndex != nil || s.staleIndex != nil || s.compBound != nil ||
		s.compPrefix != nil || s.prefixTrunc != nil || s.permDrop != nil ||
		len(s.rangeBound) > 0
}

// CompositeBoundary returns the composite-span off-by-one fault, if any.
func (s *Set) CompositeBoundary() *Fault {
	if s == nil {
		return nil
	}
	return s.compBound
}

// CompositePrefixSkip returns the composite-probe trailing-conjunct-skip
// fault, if any.
func (s *Set) CompositePrefixSkip() *Fault {
	if s == nil {
		return nil
	}
	return s.compPrefix
}

// PrefixTruncate returns the short-prefix span-truncation fault, if any.
func (s *Set) PrefixTruncate() *Fault {
	if s == nil {
		return nil
	}
	return s.prefixTrunc
}

// JoinResidual returns the index-nested-loop residual-skip fault, if
// any.
func (s *Set) JoinResidual() *Fault {
	if s == nil {
		return nil
	}
	return s.joinResidual
}

// UnionDedup returns the UNION ALL dedup fault, if any.
func (s *Set) UnionDedup() *Fault {
	if s == nil {
		return nil
	}
	return s.unionDedup
}

// CrashFeature returns the crash fault for a feature keyword.
func (s *Set) CrashFeature(feature string) *Fault {
	if s == nil {
		return nil
	}
	return s.crashFeature[feature]
}

// CrashDeep returns the deep-expression crash fault, if any.
func (s *Set) CrashDeep() *Fault {
	if s == nil {
		return nil
	}
	return s.crashDeep
}

// ErrFeature returns the internal-error fault for a feature keyword.
func (s *Set) ErrFeature(feature string) *Fault {
	if s == nil {
		return nil
	}
	return s.errFeature[feature]
}

// PerfFeature returns the performance fault for a feature keyword.
func (s *Set) PerfFeature(feature string) *Fault {
	if s == nil {
		return nil
	}
	return s.perfFeature[feature]
}

// PanicRebuild returns the composite-index-rebuild panic fault, if any.
func (s *Set) PanicRebuild() *Fault {
	if s == nil {
		return nil
	}
	return s.panicRebuild
}

// PanicProbe returns the join-probe-step panic fault, if any.
func (s *Set) PanicProbe() *Fault {
	if s == nil {
		return nil
	}
	return s.panicProbe
}

// VecNull returns the vectorized NULL-lane fault for a comparison
// operator spelling.
func (s *Set) VecNull(op string) *Fault {
	if s == nil {
		return nil
	}
	return s.vecNull[op]
}

// CoveringSwap returns the covering-projection column-transposition
// fault, if any.
func (s *Set) CoveringSwap() *Fault {
	if s == nil {
		return nil
	}
	return s.coverSwap
}

// BatchTail returns the partial-batch bitmap-drop fault, if any.
func (s *Set) BatchTail() *Fault {
	if s == nil {
		return nil
	}
	return s.batchTail
}

// PermConjDrop returns the join-reorderer conjunct-drop fault, if any.
func (s *Set) PermConjDrop() *Fault {
	if s == nil {
		return nil
	}
	return s.permDrop
}
