// Package baseline provides the stand-in for SQLancer's hand-written
// per-DBMS generators (the paper's main point of comparison).
//
// A baseline generator differs from the adaptive one in exactly the ways
// the paper describes:
//
//   - It knows the dialect's feature matrix perfectly (an expert wrote
//     it), so it never emits a syntactically unsupported feature — the
//     counterpart of SQLancer's ~3.7 kLOC of per-DBMS generator code
//     (Figure 1).
//   - It knows the dialect's typing discipline, so on statically typed
//     systems it generates type-correct statements.
//   - It also generates the dialect's *specific* functions, which the
//     adaptive grammar lacks (Figure 7's baseline-only Venn regions and
//     Table 3's coverage edge) — including complex, failure-prone ones
//     (the paper attributes SQLancer's low PostgreSQL validity rate to
//     exactly those dialect-specific features' runtime complexity).
package baseline

import (
	"sqlancerpp/internal/core/campaign"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/feature"
)

// Policy answers feature-support queries from the dialect's ground-truth
// matrix instead of learned feedback.
type Policy struct {
	d *dialect.Dialect
}

// NewPolicy builds the dialect-truth policy.
func NewPolicy(d *dialect.Dialect) *Policy { return &Policy{d: d} }

// Supported consults the dialect's feature matrix. Composite per-argument
// type features (FN#i=TYPE) are reported supported only for the declared
// type on static dialects — the expert-written generator does not probe
// the type system.
func (p *Policy) Supported(f string) bool {
	if f == feature.PropImplicitCast {
		// The baseline generator never experiments with implicit casts on
		// statically typed systems.
		return p.d.TypeSystem == dialect.Dynamic
	}
	if i := indexByte(f, '#'); i > 0 {
		// Composite FN#arg=TYPE feature: supported iff the function is.
		return p.d.SupportsFunction(f[:i])
	}
	if p.d.SupportsStatement(f) || p.d.SupportsClause(f) ||
		p.d.SupportsOperator(f) || p.d.SupportsFunction(f) ||
		p.d.SupportsType(f) {
		return true
	}
	return false
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// ExtraFunctions returns the dialect-specific functions outside the
// universal grammar that the baseline generator additionally knows.
func ExtraFunctions(d *dialect.Dialect) []string {
	universal := map[string]bool{}
	for _, f := range feature.Functions {
		universal[f] = true
	}
	for _, f := range feature.Aggregates {
		universal[f] = true
	}
	var out []string
	for _, f := range d.FunctionList() {
		if !universal[f] {
			out = append(out, f)
		}
	}
	return out
}

// Configure fills a campaign config with the baseline generator setup
// for a dialect.
func Configure(cfg campaign.Config, d *dialect.Dialect) campaign.Config {
	cfg.Dialect = d
	cfg.Mode = campaign.Baseline
	cfg.Policy = NewPolicy(d)
	cfg.ExtraFunctions = ExtraFunctions(d)
	cfg.TypeCorrect = d.TypeSystem == dialect.Static
	// The hand-written generators exercise complex, failure-prone
	// dialect constructs without learning to avoid them (the paper's
	// explanation for SQLancer's 25.1% validity on PostgreSQL).
	cfg.RiskyProb = 0.35
	// Mature hand-written generators emit complex expressions from the
	// start — no shallow warm-up phase.
	cfg.StartDepth = 3
	cfg.MaxDepth = 3
	return cfg
}
