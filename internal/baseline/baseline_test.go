package baseline

import (
	"testing"

	"sqlancerpp/internal/core/campaign"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/feature"
)

func TestPolicyMatchesDialectTruth(t *testing.T) {
	d := dialect.MustGet("postgresql")
	p := NewPolicy(d)
	if p.Supported("<=>") {
		t.Error("baseline policy must reject <=> on postgresql")
	}
	if !p.Supported("=") || !p.Supported("ABS") ||
		!p.Supported(feature.StmtCreateTable) || !p.Supported(feature.JoinLeft) {
		t.Error("baseline policy must accept supported features")
	}
	if !p.Supported("GREATEST") {
		t.Error("baseline policy must know dialect extras")
	}
	if p.Supported(feature.PropImplicitCast) {
		t.Error("type-correct baseline must not experiment with implicit casts on a static dialect")
	}
	my := NewPolicy(dialect.MustGet("mysql"))
	if !my.Supported(feature.PropImplicitCast) {
		t.Error("dynamic dialects coerce, so the baseline may mix types")
	}
	// Composite FN#arg=TYPE features follow the function's support.
	if !p.Supported("ABS#1=INTEGER") {
		t.Error("composite feature of a supported function must pass")
	}
	if p.Supported("GCD#1=INTEGER") != p.Supported("GCD") {
		t.Error("composite features must track their function")
	}
}

func TestExtraFunctionsDisjointFromUniversal(t *testing.T) {
	universal := map[string]bool{}
	for _, f := range feature.Functions {
		universal[f] = true
	}
	for _, name := range dialect.Names() {
		for _, fn := range ExtraFunctions(dialect.MustGet(name)) {
			if universal[fn] {
				t.Errorf("%s: extra function %q is already universal", name, fn)
			}
		}
	}
	// The comparison systems must have extras (Figure 7's baseline-only
	// regions).
	for _, name := range []string{"sqlite", "postgresql", "duckdb"} {
		if len(ExtraFunctions(dialect.MustGet(name))) == 0 {
			t.Errorf("%s: baseline generator needs dialect-specific extras", name)
		}
	}
}

func TestConfigure(t *testing.T) {
	d := dialect.MustGet("postgresql")
	cfg := Configure(campaign.Config{TestCases: 10}, d)
	if cfg.Mode != campaign.Baseline || cfg.Policy == nil || !cfg.TypeCorrect {
		t.Fatal("Configure must set baseline mode, policy, and typing discipline")
	}
	if cfg.RiskyProb == 0 || cfg.StartDepth != 3 {
		t.Fatal("Configure must set the failure-prone expert-generator profile")
	}
	dyn := Configure(campaign.Config{}, dialect.MustGet("sqlite"))
	if dyn.TypeCorrect {
		t.Fatal("dynamic dialects do not need type-correct generation")
	}
}

// TestBaselineCampaignZeroFalsePositives runs the baseline generator end
// to end on a clean system.
func TestBaselineCampaignZeroFalsePositives(t *testing.T) {
	d := dialect.MustGet("postgresql")
	cfg := Configure(campaign.Config{TestCases: 500, Seed: 5}, d)
	r, err := campaign.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected != 0 {
		t.Fatalf("baseline campaign on clean postgresql reported %d bugs", rep.Detected)
	}
	if rep.ValidCases == 0 {
		t.Fatal("baseline campaign made no progress")
	}
}
