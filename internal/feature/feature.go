// Package feature defines the canonical names of SQL features.
//
// A feature (paper §3, "SQL features") is an element or property of the
// query language expected to be either supported or unsupported by a
// given DBMS: a statement, a clause or keyword, an operator, a function,
// a data type, or an abstract property. The same names are used by the
// dialect feature matrices, the adaptive generator's feature sets, the
// engine's feature scanner, and the fault catalogue's trigger parameters.
package feature

import "strconv"

// Statement features (paper Table 6: 6 statements; we additionally expose
// the DML/DDL extensions UPDATE, DELETE, ALTER TABLE, DROP, and REFRESH).
const (
	StmtCreateTable = "CREATE TABLE"
	StmtCreateIndex = "CREATE INDEX"
	StmtCreateView  = "CREATE VIEW"
	StmtInsert      = "INSERT"
	StmtAnalyze     = "ANALYZE"
	StmtSelect      = "SELECT"
	StmtUpdate      = "UPDATE"
	StmtDelete      = "DELETE"
	StmtAlterTable  = "ALTER TABLE"
	StmtDropTable   = "DROP TABLE"
	StmtDropView    = "DROP VIEW"
	StmtDropIndex   = "DROP INDEX"
	StmtReindex     = "REINDEX"
	StmtRefresh     = "REFRESH TABLE"
)

// Clause and keyword features.
const (
	ClauseWhere     = "WHERE"
	JoinComma       = "COMMA JOIN"
	JoinInner       = "INNER JOIN"
	JoinLeft        = "LEFT JOIN"
	JoinRight       = "RIGHT JOIN"
	JoinFull        = "FULL JOIN"
	JoinCross       = "CROSS JOIN"
	JoinNatural     = "NATURAL JOIN"
	Subquery        = "SUBQUERY"
	DerivedTable    = "DERIVED TABLE"
	Distinct        = "DISTINCT"
	GroupBy         = "GROUP BY"
	Having          = "HAVING"
	OrderBy         = "ORDER BY"
	Limit           = "LIMIT"
	Offset          = "OFFSET"
	UniqueIndex     = "UNIQUE INDEX"
	PartialIndex    = "PARTIAL INDEX"
	CompositeIndex  = "COMPOSITE INDEX"
	PrimaryKey      = "PRIMARY KEY"
	NotNullColumn   = "NOT NULL"
	UniqueColumn    = "UNIQUE COLUMN"
	InsertOrIgnore  = "INSERT OR IGNORE"
	InsertMultiRow  = "MULTI-ROW INSERT"
	ViewColumnNames = "VIEW COLUMN NAMES"
	Union           = "UNION"
	UnionAll        = "UNION ALL"
	Intersect       = "INTERSECT"
	Except          = "EXCEPT"
)

// SetOps lists the compound-query features.
var SetOps = []string{Union, UnionAll, Intersect, Except}

// Expression-form features (operators that are not simple spellings).
const (
	ExprCase     = "CASE"
	ExprCast     = "CAST"
	ExprIn       = "IN"
	ExprNotIn    = "NOT IN"
	ExprBetween  = "BETWEEN"
	ExprLike     = "LIKE"
	ExprGlob     = "GLOB"
	ExprExists   = "EXISTS"
	ExprIsNull   = "IS NULL"
	ExprIsBool   = "IS TRUE"
	ExprNot      = "NOT"
	ExprAggr     = "AGGREGATE"
	ExprConstant = "CONSTANT"
	ExprColumn   = "COLUMN"
)

// Abstract properties (paper Appendix A.1).
const (
	PropDynamicTypes = "DYNAMIC TYPES"
	PropImplicitCast = "IMPLICIT CAST"
)

// Data type features.
const (
	TypeInteger = "INTEGER"
	TypeText    = "TEXT"
	TypeBoolean = "BOOLEAN"
)

// FuncArg returns the composite data-type feature for a function argument,
// e.g. FuncArg("SIN", 1, "INTEGER") == "SIN#1=INTEGER" — the paper's
// SIN1INT (Appendix A.1: fine-grained features that learn expected types).
func FuncArg(fn string, pos int, typ string) string {
	return fn + "#" + strconv.Itoa(pos) + "=" + typ
}

// IndexWidth returns the fine-grained feature for an index's column
// count, e.g. IndexWidth(3) == "CREATE INDEX#3". Per-dialect
// column-count limits reject wide indexes at validation, so the
// adaptive generator learns each dialect's cap through these, without
// condemning CREATE INDEX or COMPOSITE INDEX as a whole.
func IndexWidth(n int) string {
	return StmtCreateIndex + "#" + strconv.Itoa(n)
}

// Statements lists the statement features of the adaptive grammar in
// generation order. The first six are the paper's core statements.
var Statements = []string{
	StmtCreateTable, StmtCreateIndex, StmtCreateView, StmtInsert,
	StmtAnalyze, StmtSelect, StmtUpdate, StmtDelete, StmtAlterTable,
	StmtRefresh,
}

// Joins lists join-clause features (paper: six types of join).
var Joins = []string{
	JoinComma, JoinInner, JoinLeft, JoinRight, JoinFull, JoinCross,
	JoinNatural,
}

// Clauses lists the clause/keyword features tracked by the generator.
var Clauses = []string{
	ClauseWhere, JoinComma, JoinInner, JoinLeft, JoinRight, JoinFull,
	JoinCross, JoinNatural, Subquery, DerivedTable, Distinct, GroupBy,
	Having, OrderBy, Limit, Offset, UniqueIndex, PartialIndex,
	CompositeIndex, InsertOrIgnore, InsertMultiRow, Union, UnionAll,
	Intersect, Except,
}

// BinaryOperators lists the universal grammar's binary operator
// spellings. Together with the unary operators and expression forms below
// this yields the paper's 47 operator features.
var BinaryOperators = []string{
	"+", "-", "*", "/", "%",
	"||",
	"&", "|", "^", "<<", ">>",
	"=", "!=", "<>", "<", "<=", ">", ">=", "<=>",
	"AND", "OR", "XOR",
	"IS DISTINCT FROM", "IS NOT DISTINCT FROM",
}

// UnaryOperators lists prefix operator spellings. Unary minus and NOT
// share spellings with their binary counterparts; the generator tracks
// them under the same feature, as the paper's features are spellings.
var UnaryOperators = []string{"-", "+", "~", "NOT"}

// ExprForms lists the non-spelling operator features.
var ExprForms = []string{
	ExprCase, ExprCast, ExprIn, ExprNotIn, ExprBetween, ExprLike,
	ExprGlob, ExprExists, ExprIsNull, ExprIsBool, Subquery,
}

// Comparison operator spellings usable as fault parameters.
var ComparisonOperators = []string{"=", "!=", "<>", "<", "<=", ">", ">=", "<=>"}

// Functions lists the universal grammar's 58 scalar functions
// (paper Table 6: 58 functions).
var Functions = []string{
	// numeric (fixed-point: trig/log results scaled by 1000)
	"ABS", "SIGN", "MOD", "ROUND", "CEIL", "FLOOR", "SQRT", "POWER", "POW",
	"EXP", "LN", "LOG", "LOG10", "LOG2", "SIN", "COS", "TAN", "COT",
	"ASIN", "ACOS", "ATAN", "ATAN2", "DEGREES", "RADIANS", "PI", "TRUNC",
	"GCD", "LCM",
	// string
	"LENGTH", "CHAR_LENGTH", "BIT_LENGTH", "OCTET_LENGTH", "LOWER",
	"UPPER", "TRIM", "LTRIM", "RTRIM", "REPLACE", "SUBSTR", "INSTR",
	"HEX", "QUOTE", "ASCII", "CHR", "UNICODE", "SPACE", "REVERSE",
	"INITCAP", "STRPOS", "SPLIT_PART", "TRANSLATE", "LPAD", "RPAD",
	// conditional / null handling / misc
	"NULLIF", "COALESCE", "IFNULL", "IIF", "TYPEOF",
}

// Aggregates lists aggregate functions (available to the generator for
// non-oracle queries; oracle base queries avoid them, as TLP's row
// partitioning applies to plain multisets).
var Aggregates = []string{"COUNT", "SUM", "AVG", "MIN", "MAX"}

// AllOperatorCount returns the number of operator features in the
// universal grammar (for the Table 6 harness).
func AllOperatorCount() int {
	// Binary spellings + unary ~ (the only unary spelling not shared with
	// a binary one) + expression forms.
	return len(BinaryOperators) + 1 + len(ExprForms)
}
