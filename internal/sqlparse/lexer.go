// Package sqlparse implements a lexer and recursive-descent parser for the
// SQL subset used by the platform. The engine ingests SQL as text — as a
// real DBMS would — so every statement produced by the generator makes a
// full round trip through rendering and parsing.
package sqlparse

import (
	"fmt"
	"strings"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokString
	TokOp    // operator or punctuation
	TokError // lexer error; Text holds the message
)

// Token is one lexical token. Keywords are upper-cased in Text.
type Token struct {
	Kind TokKind
	Text string
	Pos  int // byte offset in the input
}

// keywords recognized by the lexer (upper-case).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"DISTINCT": true, "AS": true, "ON": true, "AND": true, "OR": true,
	"NOT": true, "XOR": true, "NULL": true, "TRUE": true, "FALSE": true,
	"IS": true, "IN": true, "BETWEEN": true, "LIKE": true, "GLOB": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"CAST": true, "EXISTS": true, "CREATE": true, "TABLE": true,
	"INDEX": true, "VIEW": true, "UNIQUE": true, "PRIMARY": true,
	"KEY": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "ALTER": true,
	"ADD": true, "DROP": true, "COLUMN": true, "ANALYZE": true,
	"REFRESH": true, "REINDEX": true, "JOIN": true, "INNER": true, "LEFT": true,
	"RIGHT": true, "FULL": true, "CROSS": true, "NATURAL": true,
	"OUTER": true, "DESC": true, "ASC": true, "INTEGER": true, "INT": true,
	"TEXT": true, "VARCHAR": true, "BOOLEAN": true, "BOOL": true,
	"IF": true, "EXIST": true, "DISTINCTFROM": true, "IGNORE": true,
	"UNION": true, "INTERSECT": true, "EXCEPT": true, "ALL": true,
	"DEFAULT": true,
}

// Lexer tokenizes SQL text.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token.
func (l *Lexer) Next() Token {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isDigit(c):
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		return Token{Kind: TokInt, Text: l.src[start:l.pos], Pos: start}
	case c == '\'':
		return l.lexString(start)
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return Token{Kind: TokKeyword, Text: upper, Pos: start}
		}
		return Token{Kind: TokIdent, Text: word, Pos: start}
	default:
		return l.lexOp(start)
	}
}

func (l *Lexer) lexString(start int) Token {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: sb.String(), Pos: start}
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{Kind: TokError, Text: "unterminated string literal", Pos: start}
}

// multi-character operators, longest first.
var multiOps = []string{"<=>", "<<", ">>", "<=", ">=", "!=", "<>", "||", "=="}

func (l *Lexer) lexOp(start int) Token {
	rest := l.src[l.pos:]
	for _, op := range multiOps {
		if strings.HasPrefix(rest, op) {
			l.pos += len(op)
			return Token{Kind: TokOp, Text: op, Pos: start}
		}
	}
	c := l.src[l.pos]
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '=', '<', '>',
		'(', ')', ',', '.', ';':
		l.pos++
		return Token{Kind: TokOp, Text: string(c), Pos: start}
	}
	l.pos++
	return Token{Kind: TokError, Text: fmt.Sprintf("unexpected character %q", c), Pos: start}
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
