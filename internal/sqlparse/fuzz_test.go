package sqlparse_test

import (
	"testing"

	"sqlancerpp/internal/core/gen"
	"sqlancerpp/internal/sqlparse"
)

// FuzzParse asserts the parser's two robustness contracts on arbitrary
// input: it never panics (the campaign's containment boundary should
// only ever fire on injected panic faults, not on parser defects), and
// the statement cache is transparent — a cached parse renders to exactly
// the same SQL as a fresh parse, and invalid input fails through the
// cache just as it fails without it.
//
// Without -fuzz the seed corpus runs as an ordinary test, so tier-1
// keeps exercising these properties on every build.
func FuzzParse(f *testing.F) {
	// Handwritten seeds cover the syntactic edges the mutator should
	// start from; generator output covers realistic campaign SQL.
	for _, s := range []string{
		"SELECT 1",
		"CREATE TABLE t0 (c0 INTEGER, c1 TEXT, c2 BOOLEAN)",
		"SELECT c0 FROM t0 JOIN t1 ON t0.c0 = t1.c0 WHERE (c1 AND NOT c0) OR c0 IS NULL",
		"INSERT INTO t0 (c0) VALUES (1), (NULL)",
		"SELECT * FROM t0 WHERE c0 IN (SELECT c1 FROM t1) ORDER BY c0 DESC LIMIT 3",
		"CREATE INDEX i0 ON t0 (c0, c1)",
		"UPDATE t0 SET c0 = c0 + 1 WHERE c1 LIKE '%x%'",
		"SELECT COUNT(*) FROM t0 GROUP BY c1 HAVING COUNT(*) > 1",
		"SELECT 1 UNION SELECT 2 EXCEPT SELECT 3",
		"REINDEX",
		"((((",
		"SELECT 'unterminated",
		"SELECT -- comment\n1",
		"",
		"\x00\xff",
	} {
		f.Add(s)
	}
	g := gen.New(gen.Config{Seed: 1, Policy: gen.AllowAll{}})
	for i := 0; i < 32; i++ {
		f.Add(g.GenSetup().SQL)
	}
	for i := 0; i < 32; i++ {
		if st := g.GenQuery(); st != nil {
			f.Add(st.SQL)
		}
	}

	cache := sqlparse.NewCache(64)
	f.Fuzz(func(t *testing.T, src string) {
		fresh, err := sqlparse.Parse(src)
		cached, cerr := cache.Parse(src)
		if (err == nil) != (cerr == nil) {
			t.Fatalf("fresh parse err = %v but cached parse err = %v", err, cerr)
		}
		if err != nil {
			return
		}
		hit, herr := cache.Parse(src) // second lookup is a cache hit
		if herr != nil {
			t.Fatalf("cache hit failed: %v", herr)
		}
		freshSQL := fresh.SQL()
		if got := cached.SQL(); got != freshSQL {
			t.Fatalf("cached parse renders %q, fresh parse %q", got, freshSQL)
		}
		if got := hit.SQL(); got != freshSQL {
			t.Fatalf("cache-hit parse renders %q, fresh parse %q", got, freshSQL)
		}
	})
}
