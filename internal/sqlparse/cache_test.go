package sqlparse

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitReturnsSharedAST(t *testing.T) {
	c := NewCache(8)
	const q = "SELECT c0 FROM t0 WHERE c0 > 1"
	a, err := c.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("second Parse of identical text returned a different AST")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	if a.SQL() != b.SQL() {
		t.Fatalf("cached AST renders %q, want %q", b.SQL(), a.SQL())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	q := func(i int) string { return fmt.Sprintf("SELECT %d", i) }
	for i := 0; i < 3; i++ {
		if _, err := c.Parse(q(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// q(0) was evicted; parsing it again must be a miss.
	if _, err := c.Parse(q(0)); err != nil {
		t.Fatal(err)
	}
	_, misses := c.Stats()
	if misses != 4 {
		t.Fatalf("misses = %d, want 4 (eviction forces a re-parse)", misses)
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 2; i++ {
		if _, err := c.Parse("SELEKT nonsense"); err == nil {
			t.Fatal("expected a syntax error")
		}
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after two failed parses, want 0", c.Len())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := fmt.Sprintf("SELECT %d", i%40)
				st, err := c.Parse(q)
				if err != nil {
					t.Error(err)
					return
				}
				if st.SQL() != q {
					t.Errorf("got %q, want %q", st.SQL(), q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
}

func TestNilCacheFallsThrough(t *testing.T) {
	var c *Cache
	if _, err := c.Parse("SELECT 1"); err != nil {
		t.Fatal(err)
	}
}
