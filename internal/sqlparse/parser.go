package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"sqlancerpp/internal/sqlast"
)

// SyntaxError describes a parse failure with its byte position.
type SyntaxError struct {
	Msg string
	Pos int
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at offset %d: %s", e.Pos, e.Msg)
}

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	lex  *Lexer
	tok  Token // current token
	peek *Token
}

// Parse parses a single SQL statement (an optional trailing ';' is allowed).
func Parse(src string) (sqlast.Stmt, error) {
	p := &Parser{lex: NewLexer(src)}
	p.advance()
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokOp && p.tok.Text == ";" {
		p.advance()
	}
	if p.tok.Kind != TokEOF {
		return nil, p.errf("unexpected trailing input %q", p.tok.Text)
	}
	return st, nil
}

// ParseExpr parses a standalone expression (used by tests and the reducer).
func ParseExpr(src string) (sqlast.Expr, error) {
	p := &Parser{lex: NewLexer(src)}
	p.advance()
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, p.errf("unexpected trailing input %q", p.tok.Text)
	}
	return e, nil
}

func (p *Parser) advance() {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return
	}
	p.tok = p.lex.Next()
}

func (p *Parser) peekTok() Token {
	if p.peek == nil {
		t := p.lex.Next()
		p.peek = &t
	}
	return *p.peek
}

func (p *Parser) errf(format string, args ...any) error {
	return &SyntaxError{Msg: fmt.Sprintf(format, args...), Pos: p.tok.Pos}
}

func (p *Parser) isKw(kw string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Text == kw
}

func (p *Parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %q", kw, p.tok.Text)
	}
	return nil
}

func (p *Parser) isOp(op string) bool {
	return p.tok.Kind == TokOp && p.tok.Text == op
}

func (p *Parser) acceptOp(op string) bool {
	if p.isOp(op) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %q", op, p.tok.Text)
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	if p.tok.Kind != TokIdent {
		return "", p.errf("expected identifier, found %q", p.tok.Text)
	}
	name := p.tok.Text
	p.advance()
	return name, nil
}

func (p *Parser) parseStmt() (sqlast.Stmt, error) {
	switch {
	case p.isKw("SELECT"):
		return p.parseSelect()
	case p.isKw("CREATE"):
		return p.parseCreate()
	case p.isKw("INSERT"):
		return p.parseInsert()
	case p.isKw("UPDATE"):
		return p.parseUpdate()
	case p.isKw("DELETE"):
		return p.parseDelete()
	case p.isKw("ALTER"):
		return p.parseAlter()
	case p.isKw("DROP"):
		return p.parseDrop()
	case p.isKw("ANALYZE"):
		p.advance()
		a := &sqlast.Analyze{}
		if p.tok.Kind == TokIdent {
			a.Table = p.tok.Text
			p.advance()
		}
		return a, nil
	case p.isKw("REFRESH"):
		p.advance()
		if err := p.expectKw("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &sqlast.Refresh{Table: name}, nil
	case p.isKw("REINDEX"):
		p.advance()
		r := &sqlast.Reindex{}
		if p.tok.Kind == TokIdent {
			r.Name = p.tok.Text
			p.advance()
		}
		return r, nil
	default:
		return nil, p.errf("unexpected statement start %q", p.tok.Text)
	}
}

func (p *Parser) parseCreate() (sqlast.Stmt, error) {
	p.advance() // CREATE
	unique := p.acceptKw("UNIQUE")
	switch {
	case p.isKw("TABLE"):
		if unique {
			return nil, p.errf("UNIQUE is not valid before TABLE")
		}
		return p.parseCreateTable()
	case p.isKw("INDEX"):
		return p.parseCreateIndex(unique)
	case p.isKw("VIEW"):
		if unique {
			return nil, p.errf("UNIQUE is not valid before VIEW")
		}
		return p.parseCreateView()
	default:
		return nil, p.errf("expected TABLE, INDEX, or VIEW after CREATE")
	}
}

func (p *Parser) parseType() (sqlast.Type, error) {
	if p.tok.Kind != TokKeyword {
		return sqlast.TypeUnknown, p.errf("expected type name, found %q", p.tok.Text)
	}
	var t sqlast.Type
	switch p.tok.Text {
	case "INTEGER", "INT":
		t = sqlast.TypeInt
	case "TEXT", "VARCHAR":
		t = sqlast.TypeText
	case "BOOLEAN", "BOOL":
		t = sqlast.TypeBool
	default:
		return sqlast.TypeUnknown, p.errf("unknown type %q", p.tok.Text)
	}
	p.advance()
	return t, nil
}

func (p *Parser) parseCreateTable() (sqlast.Stmt, error) {
	p.advance() // TABLE
	ct := &sqlast.CreateTable{}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if !p.acceptKw("EXISTS") {
			return nil, p.errf("expected EXISTS")
		}
		ct.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ct.Name = name
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	pkCols := map[string]bool{}
	for {
		if p.isKw("PRIMARY") {
			p.advance()
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				pkCols[strings.ToLower(col)] = true
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		} else {
			col := sqlast.ColumnDef{}
			col.Name, err = p.expectIdent()
			if err != nil {
				return nil, err
			}
			col.Type, err = p.parseType()
			if err != nil {
				return nil, err
			}
			for {
				if p.acceptKw("NOT") {
					if !p.acceptKw("NULL") {
						return nil, p.errf("expected NULL after NOT")
					}
					col.NotNull = true
				} else if p.acceptKw("UNIQUE") {
					col.Unique = true
				} else if p.acceptKw("PRIMARY") {
					if err := p.expectKw("KEY"); err != nil {
						return nil, err
					}
					col.PrimaryKey = true
				} else {
					break
				}
			}
			ct.Columns = append(ct.Columns, col)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	for i := range ct.Columns {
		if pkCols[strings.ToLower(ct.Columns[i].Name)] {
			ct.Columns[i].PrimaryKey = true
		}
	}
	return ct, nil
}

func (p *Parser) parseCreateIndex(unique bool) (sqlast.Stmt, error) {
	p.advance() // INDEX
	ci := &sqlast.CreateIndex{Unique: unique}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ci.Name = name
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	ci.Table, err = p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ci.Columns = append(ci.Columns, col)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if p.acceptKw("WHERE") {
		ci.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return ci, nil
}

func (p *Parser) parseCreateView() (sqlast.Stmt, error) {
	p.advance() // VIEW
	cv := &sqlast.CreateView{}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cv.Name = name
	if p.acceptOp("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			cv.Columns = append(cv.Columns, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	cv.Select, err = p.parseSelect()
	if err != nil {
		return nil, err
	}
	return cv, nil
}

func (p *Parser) parseInsert() (sqlast.Stmt, error) {
	p.advance() // INSERT
	ins := &sqlast.Insert{}
	if p.acceptKw("OR") {
		if !p.acceptKw("IGNORE") {
			return nil, p.errf("expected IGNORE after OR")
		}
		ins.OrIgnore = true
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins.Table = name
	if p.acceptOp("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []sqlast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (sqlast.Stmt, error) {
	p.advance() // UPDATE
	up := &sqlast.Update{}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	up.Table = name
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Sets = append(up.Sets, sqlast.Assignment{Column: col, Value: val})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		up.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return up, nil
}

func (p *Parser) parseDelete() (sqlast.Stmt, error) {
	p.advance() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &sqlast.Delete{Table: name}
	if p.acceptKw("WHERE") {
		del.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return del, nil
}

func (p *Parser) parseAlter() (sqlast.Stmt, error) {
	p.advance() // ALTER
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	at := &sqlast.AlterTable{Table: name}
	switch {
	case p.acceptKw("ADD"):
		p.acceptKw("COLUMN") // optional
		col := sqlast.ColumnDef{}
		col.Name, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
		col.Type, err = p.parseType()
		if err != nil {
			return nil, err
		}
		for {
			if p.acceptKw("NOT") {
				if !p.acceptKw("NULL") {
					return nil, p.errf("expected NULL after NOT")
				}
				col.NotNull = true
			} else if p.acceptKw("UNIQUE") {
				col.Unique = true
			} else {
				break
			}
		}
		at.AddColumn = &col
	case p.acceptKw("DROP"):
		p.acceptKw("COLUMN") // optional
		at.DropColumn, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("expected ADD or DROP after ALTER TABLE name")
	}
	return at, nil
}

func (p *Parser) parseDrop() (sqlast.Stmt, error) {
	p.advance() // DROP
	switch {
	case p.acceptKw("TABLE"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &sqlast.DropTable{Name: name}, nil
	case p.acceptKw("VIEW"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &sqlast.DropView{Name: name}, nil
	case p.acceptKw("INDEX"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &sqlast.DropIndex{Name: name}, nil
	default:
		return nil, p.errf("expected TABLE, VIEW, or INDEX after DROP")
	}
}

// parseSelect parses a (possibly compound) query: one or more SELECT
// cores joined by set operators, followed by ORDER BY / LIMIT / OFFSET
// applying to the whole.
func (p *Parser) parseSelect() (*sqlast.Select, error) {
	sel, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	for {
		var op sqlast.SetOp
		switch {
		case p.acceptKw("UNION"):
			op = sqlast.SetUnion
			if p.acceptKw("ALL") {
				op = sqlast.SetUnionAll
			}
		case p.acceptKw("INTERSECT"):
			op = sqlast.SetIntersect
		case p.acceptKw("EXCEPT"):
			op = sqlast.SetExcept
		default:
			return p.parseSelectTail(sel)
		}
		arm, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		sel.Compound = append(sel.Compound, sqlast.CompoundPart{Op: op, Select: arm})
	}
}

// parseSelectCore parses one SELECT ... [HAVING ...] block.
func (p *Parser) parseSelectCore() (*sqlast.Select, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	sel := &sqlast.Select{}
	sel.Distinct = p.acceptKw("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		if err := p.parseFrom(sel); err != nil {
			return nil, err
		}
	}
	var err error
	if p.acceptKw("WHERE") {
		sel.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		sel.Having, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return sel, nil
}

// parseSelectTail parses the trailing ORDER BY / LIMIT / OFFSET of a
// (possibly compound) query.
func (p *Parser) parseSelectTail(sel *sqlast.Select) (*sqlast.Select, error) {
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := sqlast.OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		n, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		sel.Limit = &n
	}
	if p.acceptKw("OFFSET") {
		n, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		sel.Offset = &n
	}
	return sel, nil
}

func (p *Parser) expectInt() (int64, error) {
	if p.tok.Kind != TokInt {
		return 0, p.errf("expected integer, found %q", p.tok.Text)
	}
	n, err := strconv.ParseInt(p.tok.Text, 10, 64)
	if err != nil {
		return 0, p.errf("invalid integer %q", p.tok.Text)
	}
	p.advance()
	return n, nil
}

func (p *Parser) parseSelectItem() (sqlast.SelectItem, error) {
	if p.acceptOp("*") {
		return sqlast.SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	item := sqlast.SelectItem{Expr: e}
	if p.acceptKw("AS") {
		item.Alias, err = p.expectIdent()
		if err != nil {
			return sqlast.SelectItem{}, err
		}
	} else if p.tok.Kind == TokIdent {
		item.Alias = p.tok.Text
		p.advance()
	}
	return item, nil
}

func (p *Parser) parseFrom(sel *sqlast.Select) error {
	first, err := p.parseTableRef()
	if err != nil {
		return err
	}
	sel.From = append(sel.From, sqlast.FromItem{Ref: first, Join: sqlast.JoinNone})
	for {
		var jt sqlast.JoinType
		switch {
		case p.acceptOp(","):
			jt = sqlast.JoinComma
		case p.isKw("INNER"), p.isKw("JOIN"):
			p.acceptKw("INNER")
			if err := p.expectKw("JOIN"); err != nil {
				return err
			}
			jt = sqlast.JoinInner
		case p.isKw("LEFT"):
			p.advance()
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return err
			}
			jt = sqlast.JoinLeft
		case p.isKw("RIGHT"):
			p.advance()
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return err
			}
			jt = sqlast.JoinRight
		case p.isKw("FULL"):
			p.advance()
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return err
			}
			jt = sqlast.JoinFull
		case p.isKw("CROSS"):
			p.advance()
			if err := p.expectKw("JOIN"); err != nil {
				return err
			}
			jt = sqlast.JoinCross
		case p.isKw("NATURAL"):
			p.advance()
			if err := p.expectKw("JOIN"); err != nil {
				return err
			}
			jt = sqlast.JoinNatural
		default:
			return nil
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return err
		}
		item := sqlast.FromItem{Ref: ref, Join: jt}
		if p.acceptKw("ON") {
			item.On, err = p.parseExpr()
			if err != nil {
				return err
			}
		}
		sel.From = append(sel.From, item)
	}
}

func (p *Parser) parseTableRef() (sqlast.TableRef, error) {
	if p.isOp("(") {
		p.advance()
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		if !p.acceptKw("AS") {
			// alias is mandatory for derived tables but AS is optional
			if p.tok.Kind != TokIdent {
				return nil, p.errf("derived table requires an alias")
			}
		}
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &sqlast.DerivedTable{Select: sub, Alias: alias}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ref := &sqlast.TableName{Name: name}
	if p.acceptKw("AS") {
		ref.Alias, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	} else if p.tok.Kind == TokIdent {
		ref.Alias = p.tok.Text
		p.advance()
	}
	return ref, nil
}
