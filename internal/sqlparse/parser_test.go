package sqlparse_test

import (
	"strings"
	"testing"

	"sqlancerpp/internal/core/gen"
	"sqlancerpp/internal/sqlparse"
)

// roundtrip parses SQL and expects rendering to reproduce want (or the
// input when want is empty).
func roundtrip(t *testing.T, sql, want string) {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	if want == "" {
		want = sql
	}
	if got := st.SQL(); got != want {
		t.Fatalf("roundtrip %q\n  got  %q\n  want %q", sql, got, want)
	}
}

func TestParseStatements(t *testing.T) {
	// Fixed-point inputs: rendering reproduces the input exactly.
	for _, sql := range []string{
		"CREATE TABLE t0 (c0 INTEGER NOT NULL, c1 TEXT UNIQUE, PRIMARY KEY (c0))",
		"CREATE TABLE IF NOT EXISTS t1 (c0 BOOLEAN)",
		"CREATE UNIQUE INDEX i0 ON t0 (c0, c1) WHERE (c0 > 1)",
		"CREATE VIEW v0 (x) AS SELECT c0 FROM t0",
		"INSERT INTO t0 (c0) VALUES (1), (2)",
		"INSERT OR IGNORE INTO t0 (c0) VALUES (3)",
		"UPDATE t0 SET c0 = 1, c1 = 'x' WHERE (c0 = 2)",
		"DELETE FROM t0 WHERE (c0 IS NULL)",
		"ALTER TABLE t0 ADD COLUMN c2 BOOLEAN",
		"ALTER TABLE t0 DROP COLUMN c2",
		"DROP TABLE t0",
		"DROP VIEW v0",
		"ANALYZE",
		"ANALYZE t0",
		"REFRESH TABLE t0",
		"SELECT * FROM t0",
		"SELECT DISTINCT c0 AS x FROM t0 ORDER BY c0 DESC LIMIT 3 OFFSET 1",
		"SELECT t0.c0 FROM t0 INNER JOIN t1 ON (t0.c0 = t1.c0)",
		"SELECT * FROM t0 LEFT JOIN t1 ON TRUE",
		"SELECT * FROM t0 RIGHT JOIN t1 ON TRUE",
		"SELECT * FROM t0 FULL JOIN t1 ON TRUE",
		"SELECT * FROM t0 CROSS JOIN t1",
		"SELECT * FROM t0 NATURAL JOIN t1",
		"SELECT * FROM t0, t1",
		"SELECT * FROM (SELECT c0 FROM t0) AS sub0",
		"SELECT COUNT(*) FROM t0 GROUP BY c0 HAVING (COUNT(*) > 1)",
		"SELECT COUNT(DISTINCT c0) FROM t0",
		"SELECT c0 FROM t0 UNION SELECT c0 FROM t1",
		"SELECT c0 FROM t0 UNION ALL SELECT c0 FROM t1 ORDER BY c0 LIMIT 2",
		"SELECT c0 FROM t0 INTERSECT SELECT c0 FROM t1 EXCEPT SELECT c0 FROM t0",
		"CREATE VIEW v1 AS SELECT c0 FROM t0 UNION SELECT c0 FROM t1",
	} {
		roundtrip(t, sql, "")
	}
}

func TestParseStatementVariants(t *testing.T) {
	// Inputs that normalize to a canonical rendering.
	roundtrip(t, "SELECT 1;", "SELECT 1")
	roundtrip(t, "select c0 from t0 where c0 = 1 -- trailing comment",
		"SELECT c0 FROM t0 WHERE (c0 = 1)")
	roundtrip(t, "SELECT * FROM t0 AS x", "SELECT * FROM t0 AS x")
	roundtrip(t, "SELECT * FROM t0 x", "SELECT * FROM t0 AS x")
	roundtrip(t, "SELECT c0 x FROM t0", "SELECT c0 AS x FROM t0")
	roundtrip(t, "SELECT * FROM t0 LEFT OUTER JOIN t1 ON TRUE",
		"SELECT * FROM t0 LEFT JOIN t1 ON TRUE")
	roundtrip(t, "CREATE TABLE t (c INT)", "CREATE TABLE t (c INTEGER)")
	roundtrip(t, "CREATE TABLE t (c VARCHAR)", "CREATE TABLE t (c TEXT)")
	roundtrip(t, "CREATE TABLE t (c BOOL)", "CREATE TABLE t (c BOOLEAN)")
	roundtrip(t, "CREATE TABLE t (c INTEGER PRIMARY KEY)",
		"CREATE TABLE t (c INTEGER, PRIMARY KEY (c))")
}

func TestParseExpressions(t *testing.T) {
	for sql, want := range map[string]string{
		"1 + 2 * 3":                     "(1 + (2 * 3))",
		"(1 + 2) * 3":                   "((1 + 2) * 3)",
		"1 < 2 AND 3 >= 2":              "((1 < 2) AND (3 >= 2))",
		"NOT a = b":                     "(NOT (a = b))",
		"a OR b AND c":                  "(a OR (b AND c))",
		"a XOR b":                       "(a XOR b)",
		"x BETWEEN 1 AND 2 + 3":         "(x BETWEEN 1 AND (2 + 3))",
		"x NOT BETWEEN 1 AND 2":         "(x NOT BETWEEN 1 AND 2)",
		"x IN (1, 2)":                   "(x IN (1, 2))",
		"x NOT IN (1)":                  "(x NOT IN (1))",
		"x IS NULL":                     "(x IS NULL)",
		"x IS NOT NULL":                 "(x IS NOT NULL)",
		"x IS TRUE":                     "(x IS TRUE)",
		"x IS NOT FALSE":                "(x IS NOT FALSE)",
		"x IS DISTINCT FROM y":          "(x IS DISTINCT FROM y)",
		"x IS NOT DISTINCT FROM y":      "(x IS NOT DISTINCT FROM y)",
		"x LIKE 'a%'":                   "(x LIKE 'a%')",
		"x NOT GLOB '*'":                "(x NOT GLOB '*')",
		"a <=> b":                       "(a <=> b)",
		"a == b":                        "(a = b)",
		"'it''s'":                       "'it''s'",
		"- - 2000":                      "2000", // folded into one literal
		"~ 5":                           "(~ 5)",
		"'a' || 'b' || 'c'":             "(('a' || 'b') || 'c')",
		"CAST(x AS TEXT)":               "CAST(x AS TEXT)",
		"CASE WHEN a THEN 1 ELSE 2 END": "(CASE WHEN a THEN 1 ELSE 2 END)",
		"CASE x WHEN 1 THEN 'a' END":    "(CASE x WHEN 1 THEN 'a' END)",
		"EXISTS (SELECT 1)":             "(EXISTS (SELECT 1))",
		"NOT EXISTS (SELECT 1)":         "(NOT EXISTS (SELECT 1))",
		"(SELECT MAX(c) FROM t)":        "(SELECT MAX(c) FROM t)",
		"NULLIF(a, b)":                  "NULLIF(a, b)",
		"t.c":                           "t.c",
		"1 & 2 | 3 << 4":                "(((1 & 2) | 3) << 4)",
		"a < b < c":                     "((a < b) < c)", // left-assoc chain
	} {
		e, err := sqlparse.ParseExpr(sql)
		if err != nil {
			t.Errorf("parse expr %q: %v", sql, err)
			continue
		}
		if got := e.SQL(); got != want {
			t.Errorf("expr %q → %q, want %q", sql, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, sql := range []string{
		"",
		"SELEC 1",
		"SELECT",
		"SELECT 1 FROM",
		"SELECT * FROM t0 WHERE",
		"SELECT (1",
		"CREATE TABLE t",
		"CREATE TABLE t ()",
		"CREATE TABLE t (c0 FLOAT)",
		"INSERT INTO t VALUES",
		"UPDATE t SET",
		"SELECT 1 2",
		"SELECT 'unterminated",
		"SELECT * FROM (SELECT 1)", // derived table needs an alias
		"SELECT CASE END",          // CASE needs a WHEN
		"DELETE t",                 // missing FROM
		"CREATE UNIQUE TABLE t (c INTEGER)",
		"SELECT 1 $ 2",
	} {
		if _, err := sqlparse.Parse(sql); err == nil {
			t.Errorf("parse %q: expected error", sql)
		}
	}
}

// TestGeneratorOutputRoundtrips is the workhorse property test: every
// statement the adaptive generator can produce must parse back to
// identical SQL (the engine consumes text, so any asymmetry between
// renderer and parser breaks the platform).
func TestGeneratorOutputRoundtrips(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := gen.New(gen.Config{Seed: seed, StartDepth: 3, MaxDepth: 3, RiskyProb: 0.2})
		for i := 0; i < 40; i++ {
			st := g.GenSetup()
			if st.OnSuccess != nil {
				st.OnSuccess()
			}
			checkRoundtrip(t, st.SQL)
		}
		for i := 0; i < 2500; i++ {
			var sql string
			if i%3 == 0 {
				oc := g.GenOracleCase()
				if oc == nil {
					continue
				}
				sel := oc.Base
				sel.Where = oc.Pred
				sql = sel.SQL()
			} else {
				sql = g.GenQuery().SQL
			}
			checkRoundtrip(t, sql)
		}
	}
}

func checkRoundtrip(t *testing.T, sql string) {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("generated SQL does not parse: %v\n  %s", err, sql)
	}
	if got := st.SQL(); got != sql {
		// Show a trimmed diff position.
		i := 0
		for i < len(got) && i < len(sql) && got[i] == sql[i] {
			i++
		}
		lo := i - 20
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("roundtrip mismatch near %q:\n  in:  %s\n  out: %s",
			sql[lo:min(i+20, len(sql))], sql, got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestLexerTokens(t *testing.T) {
	lex := sqlparse.NewLexer("SELECT c0, 'a''b' <= 42 <=>")
	var kinds []sqlparse.TokKind
	var texts []string
	for {
		tok := lex.Next()
		if tok.Kind == sqlparse.TokEOF {
			break
		}
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "c0", ",", "a'b", "<=", "42", "<=>"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Fatalf("tokens %v, want %v", texts, want)
	}
	if kinds[0] != sqlparse.TokKeyword || kinds[1] != sqlparse.TokIdent ||
		kinds[3] != sqlparse.TokString || kinds[5] != sqlparse.TokInt {
		t.Fatalf("token kinds wrong: %v", kinds)
	}
}
