package sqlparse

import (
	"strconv"
	"strings"

	"sqlancerpp/internal/sqlast"
)

// Expression grammar, loosest to tightest binding:
//
//	OR, XOR  <  AND  <  NOT  <  comparison/IS/IN/BETWEEN/LIKE
//	<  | & ^ << >>  <  + -  <  * / %  <  ||  <  unary - + ~  <  primary
func (p *Parser) parseExpr() (sqlast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (sqlast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		var op sqlast.BinaryOp
		switch {
		case p.acceptKw("OR"):
			op = sqlast.OpOr
		case p.acceptKw("XOR"):
			op = sqlast.OpXor
		default:
			return left, nil
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseAnd() (sqlast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: sqlast.OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (sqlast.Expr, error) {
	if p.isKw("NOT") && !(p.peekTok().Kind == TokKeyword && p.peekTok().Text == "EXISTS") {
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: sqlast.UNot, X: x}, nil
	}
	if p.isKw("NOT") {
		p.advance() // NOT EXISTS
		ex, err := p.parseExists()
		if err != nil {
			return nil, err
		}
		ex.(*sqlast.Exists).Not = true
		return ex, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]sqlast.BinaryOp{
	"=": sqlast.OpEq, "==": sqlast.OpEq, "!=": sqlast.OpNeq,
	"<>": sqlast.OpNeq2, "<": sqlast.OpLt, "<=": sqlast.OpLe,
	">": sqlast.OpGt, ">=": sqlast.OpGe, "<=>": sqlast.OpNullSafeEq,
}

func (p *Parser) parseComparison() (sqlast.Expr, error) {
	left, err := p.parseBitwise()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok.Kind == TokOp {
			if op, ok := cmpOps[p.tok.Text]; ok {
				p.advance()
				right, err := p.parseBitwise()
				if err != nil {
					return nil, err
				}
				left = &sqlast.Binary{Op: op, L: left, R: right}
				continue
			}
			return left, nil
		}
		switch {
		case p.isKw("IS"):
			p.advance()
			left, err = p.parseIsTail(left)
			if err != nil {
				return nil, err
			}
		case p.isKw("IN"):
			p.advance()
			left, err = p.parseInTail(left, false)
			if err != nil {
				return nil, err
			}
		case p.isKw("BETWEEN"):
			p.advance()
			left, err = p.parseBetweenTail(left, false)
			if err != nil {
				return nil, err
			}
		case p.isKw("LIKE"):
			p.advance()
			left, err = p.parseLikeTail(left, sqlast.LikeLike, false)
			if err != nil {
				return nil, err
			}
		case p.isKw("GLOB"):
			p.advance()
			left, err = p.parseLikeTail(left, sqlast.LikeGlob, false)
			if err != nil {
				return nil, err
			}
		case p.isKw("NOT"):
			// x NOT IN / NOT BETWEEN / NOT LIKE / NOT GLOB
			pk := p.peekTok()
			if pk.Kind != TokKeyword {
				return left, nil
			}
			switch pk.Text {
			case "IN":
				p.advance()
				p.advance()
				left, err = p.parseInTail(left, true)
			case "BETWEEN":
				p.advance()
				p.advance()
				left, err = p.parseBetweenTail(left, true)
			case "LIKE":
				p.advance()
				p.advance()
				left, err = p.parseLikeTail(left, sqlast.LikeLike, true)
			case "GLOB":
				p.advance()
				p.advance()
				left, err = p.parseLikeTail(left, sqlast.LikeGlob, true)
			default:
				return left, nil
			}
			if err != nil {
				return nil, err
			}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseIsTail(left sqlast.Expr) (sqlast.Expr, error) {
	not := p.acceptKw("NOT")
	switch {
	case p.acceptKw("NULL"):
		return &sqlast.IsNull{X: left, Not: not}, nil
	case p.acceptKw("TRUE"):
		return &sqlast.IsBool{X: left, Val: true, Not: not}, nil
	case p.acceptKw("FALSE"):
		return &sqlast.IsBool{X: left, Val: false, Not: not}, nil
	case p.tok.Kind == TokIdent && strings.ToUpper(p.tok.Text) == "DISTINCT":
		return nil, p.errf("expected DISTINCT keyword")
	case p.isKw("DISTINCT"):
		p.advance()
		if err := p.expectKw("FROM"); err != nil {
			return nil, err
		}
		right, err := p.parseBitwise()
		if err != nil {
			return nil, err
		}
		op := sqlast.OpIsDistinct
		if not {
			op = sqlast.OpIsNotDistinct
		}
		return &sqlast.Binary{Op: op, L: left, R: right}, nil
	default:
		return nil, p.errf("expected NULL, TRUE, FALSE or DISTINCT FROM after IS")
	}
}

func (p *Parser) parseInTail(left sqlast.Expr, not bool) (sqlast.Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	in := &sqlast.InList{X: left, Not: not}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *Parser) parseBetweenTail(left sqlast.Expr, not bool) (sqlast.Expr, error) {
	lo, err := p.parseBitwise()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseBitwise()
	if err != nil {
		return nil, err
	}
	return &sqlast.Between{X: left, Lo: lo, Hi: hi, Not: not}, nil
}

func (p *Parser) parseLikeTail(left sqlast.Expr, kind sqlast.LikeKind, not bool) (sqlast.Expr, error) {
	pat, err := p.parseBitwise()
	if err != nil {
		return nil, err
	}
	return &sqlast.Like{X: left, Pattern: pat, Kind: kind, Not: not}, nil
}

var bitwiseOps = map[string]sqlast.BinaryOp{
	"|": sqlast.OpBitOr, "&": sqlast.OpBitAnd, "^": sqlast.OpBitXor,
	"<<": sqlast.OpShl, ">>": sqlast.OpShr,
}

func (p *Parser) parseBitwise() (sqlast.Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokOp {
		op, ok := bitwiseOps[p.tok.Text]
		if !ok {
			break
		}
		p.advance()
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAdd() (sqlast.Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokOp && (p.tok.Text == "+" || p.tok.Text == "-") {
		op := sqlast.OpAdd
		if p.tok.Text == "-" {
			op = sqlast.OpSub
		}
		p.advance()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseMul() (sqlast.Expr, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokOp && (p.tok.Text == "*" || p.tok.Text == "/" || p.tok.Text == "%") {
		var op sqlast.BinaryOp
		switch p.tok.Text {
		case "*":
			op = sqlast.OpMul
		case "/":
			op = sqlast.OpDiv
		default:
			op = sqlast.OpMod
		}
		p.advance()
		right, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseConcat() (sqlast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isOp("||") {
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: sqlast.OpConcat, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (sqlast.Expr, error) {
	if p.tok.Kind == TokOp {
		switch p.tok.Text {
		case "-":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			// Fold unary minus into integer literals so "-1" and the
			// renderer's negative literals are one canonical form.
			if lit, ok := x.(*sqlast.Literal); ok && lit.Kind == sqlast.LitInt {
				return sqlast.IntLit(-lit.Int), nil
			}
			return &sqlast.Unary{Op: sqlast.UMinus, X: x}, nil
		case "+":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &sqlast.Unary{Op: sqlast.UPlus, X: x}, nil
		case "~":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &sqlast.Unary{Op: sqlast.UBitNot, X: x}, nil
		}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (sqlast.Expr, error) {
	switch {
	case p.tok.Kind == TokInt:
		n, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid integer %q", p.tok.Text)
		}
		p.advance()
		return sqlast.IntLit(n), nil
	case p.tok.Kind == TokString:
		s := p.tok.Text
		p.advance()
		return sqlast.TextLit(s), nil
	case p.acceptKw("NULL"):
		return sqlast.Null(), nil
	case p.acceptKw("TRUE"):
		return sqlast.BoolLit(true), nil
	case p.acceptKw("FALSE"):
		return sqlast.BoolLit(false), nil
	case p.isKw("CASE"):
		return p.parseCase()
	case p.isKw("CAST"):
		return p.parseCast()
	case p.isKw("EXISTS"):
		return p.parseExists()
	case p.isOp("("):
		pk := p.peekTok()
		if pk.Kind == TokKeyword && pk.Text == "SELECT" {
			p.advance()
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &sqlast.Subquery{Select: sub}, nil
		}
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.tok.Kind == TokIdent:
		name := p.tok.Text
		p.advance()
		if p.isOp("(") {
			return p.parseFuncCall(name)
		}
		if p.acceptOp(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &sqlast.ColumnRef{Table: name, Column: col}, nil
		}
		return &sqlast.ColumnRef{Column: name}, nil
	default:
		return nil, p.errf("unexpected token %q in expression", p.tok.Text)
	}
}

func (p *Parser) parseFuncCall(name string) (sqlast.Expr, error) {
	p.advance() // (
	f := &sqlast.Func{Name: strings.ToUpper(name)}
	if p.acceptOp("*") {
		f.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.acceptKw("DISTINCT") {
		f.Distinct = true
	}
	if p.acceptOp(")") {
		return f, nil
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, a)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *Parser) parseCase() (sqlast.Expr, error) {
	p.advance() // CASE
	c := &sqlast.Case{}
	if !p.isKw("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKw("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, sqlast.When{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseCast() (sqlast.Expr, error) {
	p.advance() // CAST
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.Cast{X: x, To: t}, nil
}

func (p *Parser) parseExists() (sqlast.Expr, error) {
	if err := p.expectKw("EXISTS"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	sub, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.Exists{Select: sub}, nil
}
