package sqlparse

import (
	"container/list"
	"sync"

	"sqlancerpp/internal/sqlast"
)

// Cache is a thread-safe LRU of parsed statements keyed on SQL text.
//
// The layers above the engine re-execute identical text constantly: the
// oracles run variant pairs over the same base query, the reducer replays
// a shrinking statement list on fresh instances, and the cross-DBMS
// experiments execute each bug-inducing case on every target. Caching the
// parse preserves the black-box "SQL text in" contract while removing the
// lexer and parser from those hot paths.
//
// Parse returns the cached AST *shared*: callers must treat it as
// immutable and clone it before execution or modification (the engine
// does this in DB.run).
type Cache struct {
	mu   sync.Mutex
	cap  int
	lru  list.List
	byID map[string]*list.Element

	hits, misses uint64
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	sql  string
	stmt sqlast.Stmt
}

// DefaultCacheSize bounds the process-wide cache; statements are a few
// hundred bytes of AST, so the worst case stays in the low megabytes.
const DefaultCacheSize = 4096

// shared is the process-wide cache used by engine instances.
var shared = NewCache(DefaultCacheSize)

// Shared returns the process-wide statement cache.
func Shared() *Cache { return shared }

// NewCache returns an empty cache holding at most capacity statements.
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache{cap: capacity, byID: make(map[string]*list.Element)}
	return c
}

// Parse returns the shared, immutable AST for src, parsing on a miss.
// Parse errors are returned without being cached (the campaign rarely
// replays syntactically invalid text).
func (c *Cache) Parse(src string) (sqlast.Stmt, error) {
	if c == nil {
		return Parse(src)
	}
	c.mu.Lock()
	if el, ok := c.byID[src]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		st := el.Value.(*cacheEntry).stmt
		c.mu.Unlock()
		return st, nil
	}
	c.misses++
	c.mu.Unlock()

	st, err := Parse(src) // parse outside the lock
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if _, ok := c.byID[src]; !ok { // a concurrent miss may have won
		c.byID[src] = c.lru.PushFront(&cacheEntry{sql: src, stmt: st})
		if c.lru.Len() > c.cap {
			last := c.lru.Back()
			c.lru.Remove(last)
			delete(c.byID, last.Value.(*cacheEntry).sql)
		}
	}
	c.mu.Unlock()
	return st, nil
}

// Len returns the number of cached statements.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns the hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
