package chaos

import (
	"strings"
	"testing"
)

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ";;"} {
		in, err := Parse(spec, 1)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if spec == ";;" {
			// ";;" is a non-empty spec of empty directives: a valid,
			// never-firing injector.
			continue
		}
		if in != nil {
			t.Fatalf("Parse(%q) = %+v, want nil", spec, in)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus-site=1",
		"ckpt-write",
		"ckpt-write=0",
		"ckpt-write=x",
		"ckpt-write=~0",
		"shard-error=-1",
		"shard-error=1x0",
		"shard-error=ax2",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if in.CheckpointFault(CheckpointWrite) {
		t.Error("nil CheckpointFault fired")
	}
	if in.ShardFault(0, 1) != ShardOK {
		t.Error("nil ShardFault fired")
	}
	if in.StallCase(1) {
		t.Error("nil StallCase fired")
	}
	if in.Fired(CheckpointWrite) != 0 || in.Spec() != "" {
		t.Error("nil accessors not zero")
	}
}

func TestCheckpointOrdinals(t *testing.T) {
	in, err := Parse("ckpt-write=1,3", 7)
	if err != nil {
		t.Fatal(err)
	}
	var got []bool
	for i := 0; i < 5; i++ {
		got = append(got, in.CheckpointFault(CheckpointWrite))
	}
	want := []bool{true, false, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("probe %d fired=%v, want %v", i+1, got[i], want[i])
		}
	}
	if in.Fired(CheckpointWrite) != 2 {
		t.Fatalf("Fired = %d, want 2", in.Fired(CheckpointWrite))
	}
	// Independent counters per site.
	if in.CheckpointFault(CheckpointRename) {
		t.Fatal("un-specced site fired")
	}
}

func TestShardRules(t *testing.T) {
	in, err := Parse("shard-error=1x2;shard-panic=3", 7)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1 fails its first two attempts, then recovers.
	if k := in.ShardFault(1, 1); k != ShardFailError {
		t.Fatalf("shard 1 attempt 1: %v", k)
	}
	if k := in.ShardFault(1, 2); k != ShardFailError {
		t.Fatalf("shard 1 attempt 2: %v", k)
	}
	if k := in.ShardFault(1, 3); k != ShardOK {
		t.Fatalf("shard 1 attempt 3: %v", k)
	}
	// Bare index means one failure.
	if k := in.ShardFault(3, 1); k != ShardFailPanic {
		t.Fatalf("shard 3 attempt 1: %v", k)
	}
	if k := in.ShardFault(3, 2); k != ShardOK {
		t.Fatalf("shard 3 attempt 2: %v", k)
	}
	// Untouched shards never fault.
	if k := in.ShardFault(0, 1); k != ShardOK {
		t.Fatalf("shard 0: %v", k)
	}
}

func TestShardPanicOutranksError(t *testing.T) {
	in, err := Parse("shard-error=2x5;shard-panic=2x1", 7)
	if err != nil {
		t.Fatal(err)
	}
	if k := in.ShardFault(2, 1); k != ShardFailPanic {
		t.Fatalf("attempt 1: %v, want panic", k)
	}
	if k := in.ShardFault(2, 2); k != ShardFailError {
		t.Fatalf("attempt 2: %v, want error", k)
	}
}

func TestStallCaseMembership(t *testing.T) {
	in, err := Parse("case-stall=2", 7)
	if err != nil {
		t.Fatal(err)
	}
	// Membership, not a counter: repeated probes of the same ordinal
	// agree, and every runner sees the same answer for its case 2.
	for i := 0; i < 3; i++ {
		if in.StallCase(1) {
			t.Fatal("case 1 stalled")
		}
		if !in.StallCase(2) {
			t.Fatal("case 2 did not stall")
		}
	}
}

func TestSeededRateDeterministic(t *testing.T) {
	firing := func(seed int64) string {
		in, err := Parse("ckpt-write=~3", seed)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if in.CheckpointFault(CheckpointWrite) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a, b := firing(42), firing(42)
	if a != b {
		t.Fatalf("same seed, different firing sets:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "1") {
		t.Fatal("rate ~3 never fired in 64 probes")
	}
	if firing(43) == a {
		t.Fatal("different seeds produced identical firing sets (suspicious hash)")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	const spec = "ckpt-torn=1;shard-error=0x2"
	in, err := Parse(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Spec() != spec {
		t.Fatalf("Spec() = %q, want %q", in.Spec(), spec)
	}
}
