// Package chaos is a seeded, deterministic injection registry for
// *infrastructure* faults — the harness's own failure modes, as opposed
// to the DBMS logic-fault catalogue in internal/faults. A campaign
// supervisor that retries failing shards, salvages corrupt checkpoints,
// and times out hung cases is only trustworthy if every one of those
// recovery paths is provoked on demand; this package is how the tests
// (and the `-chaos` flag) provoke them.
//
// The two fault planes never mix: faults.* simulates bugs in the system
// under test (the campaign must *report* them), chaos.* simulates
// failures of the testing harness itself (the campaign must *survive*
// them, and a chaos run's findings must match a chaos-free run's).
//
// # Injection sites
//
//	ckpt-marshal   checkpoint JSON encoding fails
//	ckpt-write     checkpoint temp-file write fails
//	ckpt-rename    checkpoint commit rename fails
//	ckpt-torn      checkpoint commits torn (truncated) bytes
//	shard-error    a shard attempt fails with an error
//	shard-panic    a shard attempt panics
//	case-stall     an oracle case hangs until the watchdog fires
//
// # Spec grammar
//
// A spec is a ';'-separated list of directives, each "site=args":
//
//   - Checkpoint sites and case-stall take a comma-separated list of
//     1-based probe ordinals ("ckpt-write=1,3" fails the first and third
//     checkpoint writes; "case-stall=5" stalls each runner's fifth
//     oracle case), or "~N" to fire on roughly one in N probes, chosen
//     by a seeded hash so the firing set is a pure function of
//     (seed, site, ordinal) — reproducible, but spread like a fleet's
//     real fault arrivals rather than hand-picked.
//   - Shard sites take a comma-separated list of "SxN" terms: shard S
//     fails its first N attempts ("shard-error=1x2" makes shard 1 fail
//     twice and then succeed — the canonical retry-then-recover case;
//     "shard-panic=0x99" quarantines shard 0 outright).
//
// All probes are keyed by stable identifiers (probe ordinal, shard
// index, attempt number), never by wall-clock or goroutine identity, so
// a chaos campaign fires the same faults at every worker count.
package chaos

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
)

// Site names one infrastructure-fault injection point.
type Site string

// Injection sites.
const (
	CheckpointMarshal Site = "ckpt-marshal"
	CheckpointWrite   Site = "ckpt-write"
	CheckpointRename  Site = "ckpt-rename"
	CheckpointTorn    Site = "ckpt-torn"
	ShardError        Site = "shard-error"
	ShardPanic        Site = "shard-panic"
	CaseStall         Site = "case-stall"
)

// counterSites are the sites addressed by probe ordinal.
var counterSites = map[Site]bool{
	CheckpointMarshal: true,
	CheckpointWrite:   true,
	CheckpointRename:  true,
	CheckpointTorn:    true,
	CaseStall:         true,
}

// ShardFaultKind is the outcome of probing the shard sites for one
// (shard, attempt) pair.
type ShardFaultKind int

// Shard-probe outcomes. Panic outranks error when both rules match the
// same attempt.
const (
	ShardOK ShardFaultKind = iota
	ShardFailError
	ShardFailPanic
)

// shardRule fails the first Times attempts of shard Shard.
type shardRule struct {
	shard, times int
}

// Injector decides, deterministically, which probes of which sites
// fire. The zero of *Injector (nil) is a valid no-op injector: every
// probe method is nil-safe, so callers thread it through unconditionally.
// A non-nil Injector is safe for concurrent use — shard workers probe it
// in parallel.
type Injector struct {
	seed int64
	spec string

	mu sync.Mutex
	// ordinals[site] is the explicit 1-based probe-ordinal firing set.
	ordinals map[Site]map[int]bool
	// rates[site] is the "~N" seeded rate (0 = none).
	rates map[Site]uint64
	// counts[site] is the running probe counter for checkpoint sites.
	counts map[Site]int
	// fired[site] tallies probes that fired (test and report surface).
	fired      map[Site]int
	shardErr   []shardRule
	shardPanic []shardRule
}

// Parse builds an injector from a spec string (see the package comment
// for the grammar). An empty spec returns nil — injection off.
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := &Injector{
		seed:     seed,
		spec:     spec,
		ordinals: map[Site]map[int]bool{},
		rates:    map[Site]uint64{},
		counts:   map[Site]int{},
		fired:    map[Site]int{},
	}
	for _, dir := range strings.Split(spec, ";") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		eq := strings.IndexByte(dir, '=')
		if eq < 0 {
			return nil, fmt.Errorf("chaos: directive %q: want site=args", dir)
		}
		site, args := Site(strings.TrimSpace(dir[:eq])), strings.TrimSpace(dir[eq+1:])
		switch {
		case counterSites[site]:
			if err := in.parseOrdinals(site, args); err != nil {
				return nil, err
			}
		case site == ShardError || site == ShardPanic:
			rules, err := parseShardRules(site, args)
			if err != nil {
				return nil, err
			}
			if site == ShardError {
				in.shardErr = append(in.shardErr, rules...)
			} else {
				in.shardPanic = append(in.shardPanic, rules...)
			}
		default:
			return nil, fmt.Errorf("chaos: unknown site %q", site)
		}
	}
	return in, nil
}

// parseOrdinals parses "1,3,7" or "~N" for a counter-addressed site.
func (in *Injector) parseOrdinals(site Site, args string) error {
	if strings.HasPrefix(args, "~") {
		n, err := strconv.ParseUint(args[1:], 10, 32)
		if err != nil || n == 0 {
			return fmt.Errorf("chaos: %s=%s: want ~N with N >= 1", site, args)
		}
		in.rates[site] = n
		return nil
	}
	set := in.ordinals[site]
	if set == nil {
		set = map[int]bool{}
		in.ordinals[site] = set
	}
	for _, tok := range strings.Split(args, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			return fmt.Errorf("chaos: %s=%s: ordinal %q is not a positive integer", site, args, tok)
		}
		set[n] = true
	}
	return nil
}

// parseShardRules parses "SxN[,SxN...]" (N defaults to 1 for a bare
// shard index).
func parseShardRules(site Site, args string) ([]shardRule, error) {
	var rules []shardRule
	for _, tok := range strings.Split(args, ",") {
		tok = strings.TrimSpace(tok)
		shard, times := tok, "1"
		if x := strings.IndexByte(tok, 'x'); x >= 0 {
			shard, times = tok[:x], tok[x+1:]
		}
		s, err := strconv.Atoi(shard)
		if err != nil || s < 0 {
			return nil, fmt.Errorf("chaos: %s=%s: shard index %q is not a non-negative integer", site, args, shard)
		}
		n, err := strconv.Atoi(times)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("chaos: %s=%s: attempt count %q is not a positive integer", site, args, times)
		}
		rules = append(rules, shardRule{shard: s, times: n})
	}
	return rules, nil
}

// Spec returns the spec the injector was parsed from ("" for nil).
func (in *Injector) Spec() string {
	if in == nil {
		return ""
	}
	return in.spec
}

// CheckpointFault advances site's probe counter and reports whether
// this probe fires. Valid for the four ckpt-* sites.
func (in *Injector) CheckpointFault(site Site) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[site]++
	return in.fires(site, in.counts[site])
}

// ShardFault reports the injected outcome for one attempt (1-based) at
// running one shard. Probes are keyed by (shard, attempt), not by any
// global counter, so concurrent shard workers see the same faults at
// every worker count.
func (in *Injector) ShardFault(shard, attempt int) ShardFaultKind {
	if in == nil {
		return ShardOK
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.shardPanic {
		if r.shard == shard && attempt <= r.times {
			in.fired[ShardPanic]++
			return ShardFailPanic
		}
	}
	for _, r := range in.shardErr {
		if r.shard == shard && attempt <= r.times {
			in.fired[ShardError]++
			return ShardFailError
		}
	}
	return ShardOK
}

// StallCase reports whether the runner-local oracle case with this
// 1-based ordinal stalls. The probe is pure membership — no internal
// counter — so every shard's case N behaves identically regardless of
// scheduling.
func (in *Injector) StallCase(ordinal int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fires(CaseStall, ordinal)
}

// fires decides one (site, ordinal) probe under in.mu.
func (in *Injector) fires(site Site, ordinal int) bool {
	if in.ordinals[site][ordinal] {
		in.fired[site]++
		return true
	}
	if r := in.rates[site]; r > 0 && seededHash(in.seed, site, ordinal)%r == 0 {
		in.fired[site]++
		return true
	}
	return false
}

// Fired returns how many probes of site have fired so far.
func (in *Injector) Fired(site Site) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}

// seededHash is the "~N" rate's firing function: FNV-1a over
// (seed, site, ordinal), so the firing set is reproducible from the
// campaign seed yet uncorrelated across sites and ordinals.
func seededHash(seed int64, site Site, ordinal int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(site))
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(ordinal) >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}
