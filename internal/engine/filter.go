package engine

import (
	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/sqlast"
)

// This file implements the engine's *optimized* filter path: the
// evaluation of WHERE and ON predicates after the optimizer has split
// them into top-level conjuncts. Real DBMSs special-case these filter
// roots (rewrites, index probes, constant folding), and that is where the
// injected logic faults live. The reference path (projection evaluation,
// and every sub-expression below a filter root) is always clean — which
// is precisely why the TLP and NoREC oracles can observe the defects.

// splitAnd flattens a conjunction into its top-level conjuncts. A nil
// out is pre-sized to the exact conjunct count: the split runs on every
// execution of every filtered statement, and the append-growth
// reallocations it would otherwise pay are pure per-execution overhead.
func splitAnd(e sqlast.Expr, out []sqlast.Expr) []sqlast.Expr {
	if out == nil {
		out = make([]sqlast.Expr, 0, countConjs(e))
	}
	if b, ok := e.(*sqlast.Binary); ok && b.Op == sqlast.OpAnd {
		out = splitAnd(b.L, out)
		return splitAnd(b.R, out)
	}
	return append(out, e)
}

func countConjs(e sqlast.Expr) int {
	if b, ok := e.(*sqlast.Binary); ok && b.Op == sqlast.OpAnd {
		return countConjs(b.L) + countConjs(b.R)
	}
	return 1
}

// evalFilterConjs evaluates a predicate as an optimized filter: TRUE
// keeps the row. conjs are the predicate's top-level conjuncts, split
// once per statement (splitAnd); ctx is the caller's reused evaluation
// context, already bound to the current row.
func (s *DB) evalFilterConjs(conjs []sqlast.Expr, ctx *evalCtx) (bool, *Error) {
	s.cov.Hit("filter.eval")
	result := TriTrue
	for _, conj := range conjs {
		t, err := s.evalFilterRoot(conj, ctx)
		if err != nil {
			return false, err
		}
		result = result.And(t)
	}
	s.cov.HitBranch("filter.keep", result == TriTrue)
	return result == TriTrue, nil
}

// wrongComplement maps a comparison operator to the *defective*
// complement the NotElim fault rewrites NOT(a op b) into.
var wrongComplement = map[sqlast.BinaryOp]sqlast.BinaryOp{
	sqlast.OpLt:   sqlast.OpGt, // correct: >=
	sqlast.OpLe:   sqlast.OpGe, // correct: >
	sqlast.OpGt:   sqlast.OpLt, // correct: <=
	sqlast.OpGe:   sqlast.OpLe, // correct: <
	sqlast.OpEq:   sqlast.OpLt, // correct: != (or <>)
	sqlast.OpNeq:  sqlast.OpLt, // correct: =
	sqlast.OpNeq2: sqlast.OpLt, // correct: =
}

// evalFilterRoot evaluates one conjunct with fault hooks applied at its
// root node only.
func (s *DB) evalFilterRoot(e sqlast.Expr, ctx *evalCtx) (Tri, *Error) {
	fs := s.faultSet()
	if fs == nil {
		return ctx.evalTri(e)
	}

	switch root := e.(type) {
	case *sqlast.Binary:
		if root.Op.IsComparison() {
			return s.evalFaultyComparison(ctx, root)
		}

	case *sqlast.Unary:
		if root.Op != sqlast.UNot {
			break
		}
		inner, ok := root.X.(*sqlast.Binary)
		if !ok || !inner.Op.IsComparison() {
			break
		}
		f := fs.NotElim(inner.Op.String())
		if f == nil {
			break
		}
		l, err := ctx.eval(inner.L)
		if err != nil {
			return TriNull, err
		}
		r, err := ctx.eval(inner.R)
		if err != nil {
			return TriNull, err
		}
		ref := ctx.evalCompare(inner.Op, l, r).Not()
		faulty := ctx.evalCompare(wrongComplement[inner.Op], l, r)
		if faulty != ref {
			s.trigger(f)
		}
		return faulty, nil

	case *sqlast.Between:
		f := fs.Between()
		if f == nil {
			break
		}
		ref, err := ctx.evalBetween(root, false)
		if err != nil {
			return TriNull, err
		}
		faulty, err := ctx.evalBetween(root, true)
		if err != nil {
			return TriNull, err
		}
		if faulty != ref {
			s.trigger(f)
		}
		return faulty, nil

	case *sqlast.InList:
		f := fs.NotInNull()
		if f == nil || !root.Not {
			break
		}
		ref, err := ctx.evalIn(root, false)
		if err != nil {
			return TriNull, err
		}
		faulty, err := ctx.evalIn(root, true)
		if err != nil {
			return TriNull, err
		}
		if faulty != ref {
			s.trigger(f)
		}
		return faulty, nil

	case *sqlast.Like:
		f := fs.Like()
		if f == nil || root.Kind != sqlast.LikeLike {
			break
		}
		ref, err := ctx.evalLike(root, false)
		if err != nil {
			return TriNull, err
		}
		faulty, err := ctx.evalLike(root, true)
		if err != nil {
			return TriNull, err
		}
		if faulty != ref {
			s.trigger(f)
		}
		return faulty, nil

	case *sqlast.Case:
		f := fs.CaseNull()
		if f == nil || root.Operand != nil {
			break
		}
		ref, err := ctx.evalCase(root)
		if err != nil {
			return TriNull, err
		}
		faulty, err := ctx.evalCaseNullTrue(root)
		if err != nil {
			return TriNull, err
		}
		rt, ft := truthiness(ref), truthiness(faulty)
		if rt != ft {
			s.trigger(f)
		}
		return ft, nil
	}

	return ctx.evalTri(e)
}

// evalFaultyComparison applies the comparison-root fault hooks:
// FuncCmpNumeric, FuncWrongVal, CmpMixedText, CmpNullEqTrue, CmpNullTrue,
// DistinctFromNull.
func (s *DB) evalFaultyComparison(ctx *evalCtx, root *sqlast.Binary) (Tri, *Error) {
	fs := s.faultSet()
	op := root.Op.String()

	l, err := ctx.eval(root.L)
	if err != nil {
		return TriNull, err
	}
	r, err := ctx.eval(root.R)
	if err != nil {
		return TriNull, err
	}
	ref := ctx.evalCompare(root.Op, l, r)

	// FuncWrongVal: perturb the value of the targeted function call.
	if lf, lok := root.L.(*sqlast.Func); lok {
		if f := fs.FuncWrong(lf.Name); f != nil {
			faulty := ctx.evalCompare(root.Op, perturb(l), r)
			if faulty != ref {
				s.trigger(f)
			}
			return faulty, nil
		}
	}
	if rf, rok := root.R.(*sqlast.Func); rok {
		if f := fs.FuncWrong(rf.Name); f != nil {
			faulty := ctx.evalCompare(root.Op, l, perturb(r))
			if faulty != ref {
				s.trigger(f)
			}
			return faulty, nil
		}
	}

	// FuncCmpNumeric: comparisons against the targeted function's result
	// compare numerically (the REPLACE-bug shape).
	funcCmpFault := func() *faults.Fault {
		if lf, ok := root.L.(*sqlast.Func); ok {
			if f := fs.FuncCmp(lf.Name); f != nil {
				return f
			}
		}
		if rf, ok := root.R.(*sqlast.Func); ok {
			if f := fs.FuncCmp(rf.Name); f != nil {
				return f
			}
		}
		return nil
	}()
	if funcCmpFault != nil && !l.IsNull() && !r.IsNull() {
		faulty := compareInts(root.Op, toInt(l), toInt(r))
		if faulty != ref {
			s.trigger(funcCmpFault)
		}
		return faulty, nil
	}

	// CmpMixedText: mixed numeric/text operands compared textually.
	if f := fs.CmpMixed(op); f != nil && !l.IsNull() && !r.IsNull() &&
		numericKind(l.K) != numericKind(r.K) {
		c := CompareText(l, r)
		faulty := applyCmp(root.Op, c)
		if faulty != ref {
			s.trigger(f)
		}
		return faulty, nil
	}

	// DistinctFromNull: IS DISTINCT FROM treats two NULLs as distinct.
	if root.Op == sqlast.OpIsDistinct && l.IsNull() && r.IsNull() {
		if f := fs.DistinctFrom(); f != nil {
			s.trigger(f)
			return TriTrue, nil
		}
	}

	// CmpNullEqTrue: both operands NULL yields TRUE.
	if l.IsNull() && r.IsNull() {
		if f := fs.CmpNullEq(op); f != nil && ref == TriNull {
			s.trigger(f)
			return TriTrue, nil
		}
	}

	// CmpNullTrue: a NULL comparison result is treated as TRUE.
	if ref == TriNull {
		if f := fs.CmpNullTrue(op); f != nil {
			s.trigger(f)
			return TriTrue, nil
		}
	}

	return ref, nil
}

// compareInts applies a comparison operator to two integers.
func compareInts(op sqlast.BinaryOp, a, b int64) Tri {
	var c int
	switch {
	case a < b:
		c = -1
	case a > b:
		c = 1
	}
	return applyCmp(op, c)
}

// applyCmp converts a three-way comparison result into the operator's
// truth value.
func applyCmp(op sqlast.BinaryOp, c int) Tri {
	switch op {
	case sqlast.OpEq, sqlast.OpNullSafeEq, sqlast.OpIsNotDistinct:
		return TriOf(c == 0)
	case sqlast.OpNeq, sqlast.OpNeq2, sqlast.OpIsDistinct:
		return TriOf(c != 0)
	case sqlast.OpLt:
		return TriOf(c < 0)
	case sqlast.OpLe:
		return TriOf(c <= 0)
	case sqlast.OpGt:
		return TriOf(c > 0)
	default:
		return TriOf(c >= 0)
	}
}

// perturb returns the FuncWrongVal defect's wrong value.
func perturb(v Value) Value {
	switch v.K {
	case KindInt:
		return Int(v.I + 1)
	case KindText:
		return Text(v.S + "x")
	case KindBool:
		return Bool(!v.B)
	default:
		return v
	}
}

// evalCaseNullTrue evaluates a searched CASE treating NULL WHEN
// conditions as TRUE (the CaseNullTrue defect).
func (ctx *evalCtx) evalCaseNullTrue(x *sqlast.Case) (Value, *Error) {
	for i := range x.Whens {
		t, err := ctx.evalTri(x.Whens[i].Cond)
		if err != nil {
			return Null(), err
		}
		if t == TriTrue || t == TriNull {
			return ctx.eval(x.Whens[i].Then)
		}
	}
	if x.Else != nil {
		return ctx.eval(x.Else)
	}
	return Null(), nil
}
