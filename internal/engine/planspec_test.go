package engine

// Unit tests for the PlanSpec plan-control API: serialization round
// trips, per-relation and per-join forcing, prefix-width caps,
// forced-but-inapplicable fallback (degrade to a scan, never an error),
// join-order permutation, and the determinism and shape of
// EnumeratePlans.

import (
	"fmt"
	"strings"
	"testing"

	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/sqlast"
	"sqlancerpp/internal/sqlparse"
)

func TestPlanSpecStringParseRoundTrip(t *testing.T) {
	specs := []PlanSpec{
		{},
		{DisableIndexPaths: true},
		{JoinPerm: []int{1, 0}},
		{JoinPerm: []int{2, 0, 1}},
		{Relations: map[string]RelSpec{"t": {Force: ForceScan}}},
		{Relations: map[string]RelSpec{"t": {Force: ForceIndex, Index: "i0"}}},
		{Relations: map[string]RelSpec{
			"a": {Force: ForceIndex, Index: "iab", PrefixWidth: 1},
			"b": {Force: ForceAuto, PrefixWidth: 2},
		}},
		{Joins: map[int]JoinSpec{0: {ProbeOff: true}, 2: {ProbeOff: true}}},
		{DisableIndexPaths: true, JoinPerm: []int{1, 0},
			Relations: map[string]RelSpec{"t": {Force: ForceScan}},
			Joins:     map[int]JoinSpec{1: {ProbeOff: true}}},
	}
	for _, spec := range specs {
		s := spec.String()
		back, err := ParsePlanSpec(s)
		if err != nil {
			t.Fatalf("ParsePlanSpec(%q): %v", s, err)
		}
		if back.String() != s {
			t.Errorf("round trip %q -> %q", s, back.String())
		}
	}
	if s := (PlanSpec{}).String(); s != "auto" {
		t.Errorf("zero spec renders %q, want auto", s)
	}
	for _, bad := range []string{
		"bogus", "rel:t", "rel:t=index()", "rel:t=magic", "rel:t=scan/w0",
		"join:x=probeoff", "join:1=magic", "join:-1=probeoff",
		"perm:", "perm:0", "perm:0,1", "perm:0,0", "perm:2,0", "perm:1,x",
	} {
		if _, err := ParsePlanSpec(bad); err == nil {
			t.Errorf("ParsePlanSpec(%q) must fail", bad)
		}
	}
	// The legacy "swap" token parses as the two-relation transposition.
	legacy, err := ParsePlanSpec("swap")
	if err != nil {
		t.Fatalf("legacy swap token: %v", err)
	}
	if legacy.String() != "perm:1,0" {
		t.Errorf("legacy swap parses to %q, want perm:1,0", legacy.String())
	}
	// CanonicalPerm trims trailing fixed points and maps identity to nil.
	if p := CanonicalPerm([]int{1, 0, 2, 3}); len(p) != 2 || p[0] != 1 || p[1] != 0 {
		t.Errorf("CanonicalPerm([1 0 2 3]) = %v, want [1 0]", p)
	}
	if p := CanonicalPerm([]int{0, 1, 2}); p != nil {
		t.Errorf("CanonicalPerm(identity) = %v, want nil", p)
	}
}

// planSpecTable builds a 256-row table with a composite index (a, b) and
// a single-column index (a): 16 distinct a-keys times 16 b-values.
func planSpecTable(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER, c TEXT)")
	for i := 0; i < 256; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, %d, 'r%d')", i%16, (i/16)%16, i))
	}
	mustExec(t, db, "CREATE INDEX ia ON t (a)")
	mustExec(t, db, "CREATE INDEX iab ON t (a, b)")
}

func querySpec(t *testing.T, db *DB, spec PlanSpec, q string) (*Result, int64) {
	t.Helper()
	prev := db.PlanSpec()
	db.SetPlanSpec(spec)
	res, err := db.Query(q)
	db.SetPlanSpec(prev)
	if err != nil {
		t.Fatalf("%s under [%s]: %v", q, spec.String(), err)
	}
	return res, db.LastCost()
}

func parseSelectStmt(t *testing.T, q string) *sqlast.Select {
	t.Helper()
	stmt, err := sqlparse.Shared().Parse(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	sel, ok := stmt.(*sqlast.Select)
	if !ok {
		t.Fatalf("%s: not a SELECT", q)
	}
	return sel
}

func multisetOf(res *Result) map[string]int {
	m := map[string]int{}
	for _, r := range res.RenderRows() {
		m[r]++
	}
	return m
}

func equalMultisets(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// TestPlanSpecForcingChangesCostNotRows: every forcing axis must leave
// the result multiset untouched on a clean engine while provably taking
// a different plan (observable through LastCost).
func TestPlanSpecForcingChangesCostNotRows(t *testing.T) {
	db := openPlanDB(t)
	planSpecTable(t, db)
	const q = "SELECT * FROM t WHERE a = 7 AND b = 3"

	base, autoCost := querySpec(t, db, PlanSpec{}, q)
	_, fullCost := querySpec(t, db, PlanSpec{DisableIndexPaths: true}, q)
	// Reference costs: the composite span touches 1/16 of the leading
	// span, which touches 1/16 of the full scan.
	if autoCost*16 > fullCost {
		t.Fatalf("auto plan should use the composite span: cost %d vs full %d", autoCost, fullCost)
	}
	leadCost := autoCost * 16 // 16 rows in the a=7 group vs 1 composite hit
	for _, tc := range []struct {
		spec     PlanSpec
		wantCost int64
	}{
		{PlanSpec{Relations: map[string]RelSpec{"t": {Force: ForceScan}}}, fullCost},
		// Forcing the single-column index probes the whole a=7 group.
		{PlanSpec{Relations: map[string]RelSpec{"t": {Force: ForceIndex, Index: "ia"}}}, leadCost},
		// Width-capping the composite index to its leading column is the
		// same leading-only plan through the other store.
		{PlanSpec{Relations: map[string]RelSpec{"t": {Force: ForceIndex, Index: "iab", PrefixWidth: 1}}}, leadCost},
		// An auto plan under a width cap also degrades to leading-only.
		{PlanSpec{Relations: map[string]RelSpec{"t": {PrefixWidth: 1}}}, leadCost},
	} {
		res, cost := querySpec(t, db, tc.spec, q)
		if !equalMultisets(multisetOf(base), multisetOf(res)) {
			t.Errorf("[%s] changed the result multiset", tc.spec.String())
		}
		if cost != tc.wantCost {
			t.Errorf("[%s] cost = %d, want %d", tc.spec.String(), cost, tc.wantCost)
		}
	}
}

// TestPlanSpecForcedInapplicableDegradesToScan: unknown index names,
// partial indexes, and indexes with no matching sargable conjunct all
// degrade to the full scan — same rows, full-scan cost, no error.
func TestPlanSpecForcedInapplicableDegradesToScan(t *testing.T) {
	db := openPlanDB(t)
	planSpecTable(t, db)
	mustExec(t, db, "CREATE INDEX ipart ON t (a) WHERE b IS NOT NULL")
	const q = "SELECT * FROM t WHERE a = 7 AND b = 3"
	base, _ := querySpec(t, db, PlanSpec{}, q)
	_, fullCost := querySpec(t, db, PlanSpec{DisableIndexPaths: true}, q)

	for _, rs := range []RelSpec{
		{Force: ForceIndex, Index: "nosuch"},
		{Force: ForceIndex, Index: "ipart"}, // partial: never forced
		{Force: ForceIndex, Index: "ic"},    // created below on c: no sargable conjunct
	} {
		if rs.Index == "ic" {
			mustExec(t, db, "CREATE INDEX ic ON t (c)")
		}
		spec := PlanSpec{Relations: map[string]RelSpec{"t": rs}}
		res, cost := querySpec(t, db, spec, q)
		if !equalMultisets(multisetOf(base), multisetOf(res)) {
			t.Errorf("[%s] changed the result multiset", spec.String())
		}
		if cost != fullCost {
			t.Errorf("[%s] cost = %d, want the full scan (%d)", spec.String(), cost, fullCost)
		}
	}

	// DML forcing degrades the same way: an unknown forced index must
	// leave UPDATE on the full scan with identical final state.
	spec := PlanSpec{Relations: map[string]RelSpec{"t": {Force: ForceIndex, Index: "nosuch"}}}
	db.SetPlanSpec(spec)
	if err := db.Exec("UPDATE t SET c = 'hit' WHERE a = 7 AND b = 3"); err != nil {
		t.Fatalf("forced DML must not error: %v", err)
	}
	fullDML := db.LastCost()
	db.SetPlanSpec(PlanSpec{})
	if err := db.Exec("UPDATE t SET c = 'hit' WHERE a = 7 AND b = 3"); err != nil {
		t.Fatal(err)
	}
	if autoDML := db.LastCost(); fullDML <= autoDML*8 {
		t.Errorf("forced-inapplicable DML cost = %d, want full-scan scale (auto %d)", fullDML, autoDML)
	}
	res, err := db.Query("SELECT * FROM t WHERE c = 'hit'")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("forced DML state wrong: %v rows, err %v", len(res.Rows), err)
	}
}

// TestPlanSpecJoinForcing: ProbeOff forces the quadratic loop (same
// multiset, quadratic cost), and SwapInputs takes the other input order
// (observable as the index probe moving to the other relation).
func TestPlanSpecJoinForcing(t *testing.T) {
	db := openPlanDB(t)
	mustExec(t, db, "CREATE TABLE l (x INTEGER, lx TEXT)")
	mustExec(t, db, "CREATE TABLE r (y INTEGER, ry TEXT)")
	for i := 0; i < 8; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO l VALUES (%d, 'l%d')", i, i))
	}
	for i := 0; i < 128; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO r VALUES (%d, 'r%d')", i%8, i))
	}
	mustExec(t, db, "CREATE INDEX iy ON r (y)")

	const q = "SELECT l.lx, r.ry FROM l INNER JOIN r ON l.x = r.y"
	base, probeCost := querySpec(t, db, PlanSpec{}, q)
	_, quadCost := querySpec(t, db, PlanSpec{DisableIndexPaths: true}, q)
	if probeCost*4 >= quadCost {
		t.Fatalf("auto plan should probe: cost %d vs quadratic %d", probeCost, quadCost)
	}
	off, offCost := querySpec(t, db, PlanSpec{Joins: map[int]JoinSpec{0: {ProbeOff: true}}}, q)
	if !equalMultisets(multisetOf(base), multisetOf(off)) {
		t.Error("probeoff changed the join multiset")
	}
	if offCost != quadCost {
		t.Errorf("probeoff cost = %d, want the quadratic %d", offCost, quadCost)
	}
	// ForceScan on the right relation suppresses probing into it too.
	scanR, scanCost := querySpec(t, db,
		PlanSpec{Relations: map[string]RelSpec{"r": {Force: ForceScan}}}, q)
	if !equalMultisets(multisetOf(base), multisetOf(scanR)) || scanCost != quadCost {
		t.Errorf("rel:r=scan: cost %d, want quadratic (%d) with same rows", scanCost, quadCost)
	}

	// A sargable conjunct on r is only probeable when r leads the FROM:
	// the permuted input order makes it the planned relation.
	const qs = "SELECT l.lx, r.ry FROM l INNER JOIN r ON l.x = r.y WHERE r.y = 3"
	noSwap, noSwapCost := querySpec(t, db, PlanSpec{}, qs)
	swap, swapCost := querySpec(t, db, PlanSpec{JoinPerm: []int{1, 0}}, qs)
	if !equalMultisets(multisetOf(noSwap), multisetOf(swap)) {
		t.Error("perm changed the join multiset")
	}
	if swapCost >= noSwapCost {
		t.Errorf("perm must let the r.y probe lead: cost %d vs %d", swapCost, noSwapCost)
	}

	// SELECT * stays permutable: the order-restoring projection keeps the
	// output columns in original relation order while the join runs in
	// permuted order.
	const qstar = "SELECT * FROM l INNER JOIN r ON l.x = r.y"
	starBase, _ := querySpec(t, db, PlanSpec{}, qstar)
	starSwap, _ := querySpec(t, db, PlanSpec{JoinPerm: []int{1, 0}}, qstar)
	if strings.Join(starBase.Columns, ",") != strings.Join(starSwap.Columns, ",") {
		t.Errorf("star projection not order-restored: columns %v vs %v", starBase.Columns, starSwap.Columns)
	}
	if !equalMultisets(multisetOf(starBase), multisetOf(starSwap)) {
		t.Error("permuted star query changed the result")
	}
}

// TestSwapGatedByLaterNaturalJoin: a NATURAL join after the first two
// relations binds its shared columns to the first earlier relation in
// scope order, so swapping the inputs would rebind them — the swap must
// be ignored and the enumerator must not emit it.
func TestSwapGatedByLaterNaturalJoin(t *testing.T) {
	db := openPlanDB(t)
	mustExec(t, db, "CREATE TABLE t0 (x INTEGER, y INTEGER)")
	mustExec(t, db, "CREATE TABLE t1 (x INTEGER, y INTEGER)")
	mustExec(t, db, "CREATE TABLE t2 (x INTEGER)")
	mustExec(t, db, "INSERT INTO t0 VALUES (1, 5)")
	mustExec(t, db, "INSERT INTO t1 VALUES (2, 5)")
	mustExec(t, db, "INSERT INTO t2 VALUES (1), (2)")

	const q = "SELECT t0.x, t1.x, t2.x FROM t0 INNER JOIN t1 ON t0.y = t1.y NATURAL JOIN t2"
	base, _ := querySpec(t, db, PlanSpec{}, q)
	swapped, _ := querySpec(t, db, PlanSpec{JoinPerm: []int{1, 0}}, q)
	if !equalMultisets(multisetOf(base), multisetOf(swapped)) {
		t.Fatalf("perm must be ignored under a later NATURAL join:\nbase: %v\nperm: %v",
			base.RenderRows(), swapped.RenderRows())
	}
	sel := parseSelectStmt(t, q)
	for _, spec := range EnumeratePlans(db, sel) {
		if len(spec.JoinPerm) > 0 {
			t.Fatalf("enumerator emitted an unsafe permutation: %s", spec.String())
		}
	}
}

// TestEnumeratePlansDeterministicAndShaped: enumeration is a pure
// function of (statement, catalog) with the canonical order — the
// planner-off spec first — and covers every forcing axis the statement
// admits.
func TestEnumeratePlansDeterministicAndShaped(t *testing.T) {
	db := openPlanDB(t)
	planSpecTable(t, db)
	mustExec(t, db, "CREATE TABLE r (y INTEGER, ry TEXT)")
	mustExec(t, db, "INSERT INTO r VALUES (3, 'x')")
	mustExec(t, db, "CREATE INDEX iy ON r (y)")

	sel := parseSelectStmt(t, "SELECT t.c, r.ry FROM t INNER JOIN r ON t.a = r.y WHERE t.a = 7 AND t.b = 3")

	render := func(specs []PlanSpec) string {
		var sb strings.Builder
		for _, s := range specs {
			sb.WriteString(s.String())
			sb.WriteString("; ")
		}
		return sb.String()
	}
	first := EnumeratePlans(db, sel)
	second := EnumeratePlans(db, sel)
	if render(first) != render(second) {
		t.Fatalf("enumeration not deterministic:\n%s\n%s", render(first), render(second))
	}
	got := render(first)
	if first[0].String() != "noindex" {
		t.Errorf("plan space must lead with the planner-off spec: %s", got)
	}
	for _, want := range []string{
		"rel:t=scan",
		"rel:t=index(ia)",
		"rel:t=index(iab)",
		"rel:t=index(iab)/w1",
		"join:0=probeoff",
		"perm:1,0",
	} {
		if !strings.Contains(got, want+"; ") {
			t.Errorf("plan space misses %q: %s", want, got)
		}
	}

	// Every enumerated plan is equivalent on the clean engine.
	q := sel.SQL()
	base, _ := querySpec(t, db, PlanSpec{}, q)
	for _, spec := range first {
		res, _ := querySpec(t, db, spec, q)
		if !equalMultisets(multisetOf(base), multisetOf(res)) {
			t.Errorf("enumerated plan [%s] diverges on a clean engine", spec.String())
		}
	}
}

// TestPrefixSpanTruncateInvisibleToLegacyPair is the fault-design check
// behind the acceptance criterion: for a fully constrained composite
// query the auto plan consumes the whole key and agrees with the full
// scan — the legacy index-on/off pair sees nothing — while the
// width-capped forced plan reaches the defective short-prefix span and
// diverges.
func TestPrefixSpanTruncateInvisibleToLegacyPair(t *testing.T) {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = "prefix-trunc-1"
	d.Faults = faults.NewSet([]faults.Fault{{
		ID: "prefix-trunc-1-drop", Dialect: d.Name, Class: faults.Logic,
		Kind: faults.PrefixSpanTruncate,
	}})
	db := Open(d)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	for i := 0; i < 64; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i%8, (i/8)%4))
	}
	mustExec(t, db, "CREATE INDEX iab ON t (a, b)")

	// b = 3 is the maximum b within the a = 7 group, so the short-prefix
	// span's dropped last entry is exactly a matching row.
	const q = "SELECT * FROM t WHERE a = 7 AND b = 3"
	auto, _ := querySpec(t, db, PlanSpec{}, q)
	noidx, _ := querySpec(t, db, PlanSpec{DisableIndexPaths: true}, q)
	if !equalMultisets(multisetOf(auto), multisetOf(noidx)) {
		t.Fatal("legacy pair must agree: the auto plan consumes the full key")
	}
	forcedSpec := PlanSpec{Relations: map[string]RelSpec{
		"t": {Force: ForceIndex, Index: "iab", PrefixWidth: 1}}}
	db.SetPlanSpec(forcedSpec)
	forced, err := db.Query(q)
	db.SetPlanSpec(PlanSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if equalMultisets(multisetOf(auto), multisetOf(forced)) {
		t.Fatal("width-capped forced plan must expose the truncation defect")
	}
	if len(forced.Rows) >= len(auto.Rows) {
		t.Errorf("truncation must drop rows: %d vs %d", len(forced.Rows), len(auto.Rows))
	}
	found := false
	for _, id := range db.TriggeredFaults() {
		if id == "prefix-trunc-1-drop" {
			found = true
		}
	}
	if !found {
		t.Errorf("ground truth not attributed: %v", db.TriggeredFaults())
	}
}
