package engine_test

// Differential property test for the columnar batch executor (batch.go):
// replaying the same statement stream — DDL, DML, and oracle queries,
// with each dialect's full fault catalogue armed — on instances that
// differ only in batch width must produce identical observable behavior
// per statement: the same error (or none), the same result rows in the
// same order, the same executor cost, and the same triggered-fault
// ground truth. Width -1 is the row-at-a-time reference executor, so
// this is the batch executor's soundness argument: campaign reports stay
// byte-identical when -batch changes.

import (
	"fmt"
	"testing"

	"sqlancerpp/internal/core/gen"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/sqlast"
)

// batchWidths spans the reference executor, degenerate single-row
// batches, a width coprime to the candidate streams, the default, and a
// width larger than any generated table.
var batchWidths = []int{-1, 1, 7, 64, 1024}

// stmtObservation captures everything a statement's execution exposes.
type stmtObservation struct {
	errText string
	rows    string
	cost    int64
	faults  string
	crashed bool
}

func observe(db *engine.DB, sql string) (obs stmtObservation) {
	defer func() {
		if p := recover(); p != nil {
			obs.errText = fmt.Sprintf("panic: %v", p)
		}
		obs.cost = db.LastCost()
		obs.faults = fmt.Sprintf("%v", db.TriggeredFaults())
		obs.crashed = db.Crashed()
	}()
	res, err := db.Query(sql)
	if err != nil {
		obs.errText = err.Error()
		return
	}
	if res != nil {
		obs.rows = fmt.Sprintf("%v|%v", res.Columns, res.RenderRows())
	}
	return
}

func TestBatchExecutionMatchesRowAtATime(t *testing.T) {
	for _, name := range dialect.Names() {
		t.Run(name, func(t *testing.T) {
			d := dialect.MustGet(name)
			dbs := make([]*engine.DB, len(batchWidths))
			for i, w := range batchWidths {
				dbs[i] = engine.Open(d, engine.WithBatchSize(w))
			}
			ref := dbs[0]

			compared := 0
			runAll := func(sql string) stmtObservation {
				base := observe(ref, sql)
				for i, db := range dbs[1:] {
					got := observe(db, sql)
					if got != base {
						t.Fatalf("width %d diverged from reference on %q:\nref:   %+v\nbatch: %+v",
							batchWidths[i+1], sql, base, got)
					}
				}
				// A crash fault downs every instance identically; restart
				// them together so the stream keeps making progress.
				if base.crashed {
					for _, db := range dbs {
						db.Restart()
					}
				}
				compared++
				return base
			}

			g := gen.New(gen.Config{Seed: 11, StartDepth: 2, MaxDepth: 3, DepthInterval: 200})
			for i := 0; i < 40; i++ {
				st := g.GenSetup()
				if runAll(st.SQL).errText == "" && st.OnSuccess != nil {
					st.OnSuccess()
				}
			}
			// Index-rich state: single-column and composite indexes give the
			// planner spans to choose and covering projections to serve.
			for ti, tbl := range g.Model().Tables() {
				c0 := tbl.Columns[0].Name
				runAll(fmt.Sprintf("CREATE INDEX bx%d ON %s (%s)", ti, tbl.Name, c0))
				if len(tbl.Columns) > 1 {
					runAll(fmt.Sprintf("CREATE INDEX bc%d ON %s (%s, %s)",
						ti, tbl.Name, c0, tbl.Columns[1].Name))
				}
			}
			for i := 0; i < 250; i++ {
				oc := g.GenOracleCase()
				if oc == nil {
					continue
				}
				sel := sqlast.CloneSelect(oc.Base)
				sel.Where = sqlast.CloneExpr(oc.Pred)
				runAll(sel.SQL())
				// Interleave batched DML collection over the same predicates.
				if i%10 == 0 {
					for _, tbl := range g.Model().Tables() {
						c0 := tbl.Columns[0].Name
						runAll(fmt.Sprintf("UPDATE %s SET %s = %s WHERE %s > 1",
							tbl.Name, c0, c0, c0))
						runAll(fmt.Sprintf("DELETE FROM %s WHERE %s < 0", tbl.Name, c0))
						break
					}
				}
			}
			if compared < 200 {
				t.Fatalf("only %d statements compared — stream starved", compared)
			}
		})
	}
}
