package engine

import (
	"strings"

	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/sqlast"
)

// Covering-index projection: when the planner chose an index probe for a
// single-table SELECT and every column the statement references is part
// of the index key, the projection and ORDER BY keys are served straight
// from the ordered store's entries — an index-only read. No projection
// expression is evaluated, so the serving path charges no evaluation
// cost; the WHERE filter is shared with the heap path unchanged, which
// keeps results, errors, and fault behavior identical between the
// covering and non-covering plans of the same query. That makes
// CoveringOff a pure plan axis: EnumeratePlans yields both variants and
// PlanDiff treats any row divergence between them as a bug.

// coverPlan maps each projection and ORDER BY slot to the table column
// position that serves it. Built once per statement by coveringPlan;
// nil means the heap projection path runs.
type coverPlan struct {
	items []int // projection slot → table column position
	keys  []int // ORDER BY slot → table column position
	// fault is the armed CoveringIndexProjSwap defect (nil when clean):
	// the serving column map reads the first two key columns transposed.
	fault  *faults.Fault
	l0, l1 int
	// touches records whether any served slot reads a transposed column;
	// a swap nothing reads is unobservable and never triggers.
	touches bool
}

// coveringPlan decides whether the statement runs index-only under the
// active plan spec and fault set: it builds the pure slot map, applies
// the CoveringOff plan axis, and arms the CoveringIndexProjSwap defect.
func (s *DB) coveringPlan(sel *sqlast.Select, alias string, t *Table, ix *Index) *coverPlan {
	cp := buildCoverPlan(sel, alias, t, ix)
	if cp == nil {
		return nil
	}
	// The statement is coverable; now the plan spec decides. Hitting the
	// off branch only for coverable statements makes the toggle's effect
	// visible to coverage-guided feedback.
	if s.planSpec.CoveringOff {
		s.cov.Hit("plan.cover.off")
		return nil
	}
	s.cov.Hit("plan.cover")
	if f := s.faultSet().CoveringSwap(); f != nil && len(ix.leads) >= 2 {
		cp.fault = f
		cp.l0, cp.l1 = ix.leads[0], ix.leads[1]
		swap := func(c int) int {
			switch c {
			case cp.l0:
				cp.touches = true
				return cp.l1
			case cp.l1:
				cp.touches = true
				return cp.l0
			}
			return c
		}
		for i, c := range cp.items {
			cp.items[i] = swap(c)
		}
		for i, c := range cp.keys {
			cp.keys[i] = swap(c)
		}
	}
	return cp
}

// buildCoverPlan decides covering eligibility and builds the
// slot→column map. Eligibility is a pure function of the statement and
// the catalog: a single-table non-grouped SELECT whose projection items,
// ORDER BY keys, and WHERE references are all plain columns of the
// chosen index's key (star requires every table column covered), and no
// subquery anywhere in the predicate. Anything else returns nil and the
// heap projection runs — covering degrades, never errors, exactly like
// the other plan forcings. EnumeratePlans calls this statically to
// decide whether the nocover plan axis applies.
func buildCoverPlan(sel *sqlast.Select, alias string, t *Table, ix *Index) *coverPlan {
	if len(sel.GroupBy) > 0 || sel.Having != nil || selHasAggregates(sel) {
		return nil
	}
	cp := &coverPlan{}
	slot := func(e sqlast.Expr) int {
		ref, ok := e.(*sqlast.ColumnRef)
		if !ok {
			return -1
		}
		if ref.Table != "" && !strings.EqualFold(ref.Table, alias) {
			return -1
		}
		c := t.ColumnIndex(ref.Column)
		if c < 0 || !ix.covers(c) {
			return -1
		}
		return c
	}
	for i := range sel.Items {
		item := &sel.Items[i]
		if item.Star {
			for c := range t.Columns {
				if !ix.covers(c) {
					return nil
				}
				cp.items = append(cp.items, c)
			}
			continue
		}
		c := slot(item.Expr)
		if c < 0 {
			return nil
		}
		cp.items = append(cp.items, c)
	}
	for i := range sel.OrderBy {
		c := slot(sel.OrderBy[i].Expr)
		if c < 0 {
			return nil
		}
		cp.keys = append(cp.keys, c)
	}
	if sel.Where != nil && !coveredRefsOnly(sel.Where, alias, t, ix) {
		return nil
	}
	return cp
}

// coveredRefsOnly reports whether every column reference in e is a
// covered column of the single FROM table, with no subquery anywhere (a
// subquery's rows come from outside the index and disqualify the
// index-only read).
func coveredRefsOnly(e sqlast.Expr, alias string, t *Table, ix *Index) bool {
	ok := true
	sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
		switch n := x.(type) {
		case *sqlast.Subquery, *sqlast.Exists:
			ok = false
		case *sqlast.ColumnRef:
			if n.Table != "" && !strings.EqualFold(n.Table, alias) {
				ok = false
			} else if c := t.ColumnIndex(n.Column); c < 0 || !ix.covers(c) {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// coveringProject serves every kept row's projection and sort keys from
// the entry columns the plan mapped — no expression evaluation, no
// per-row allocation (both outputs subslice two exactly-sized backing
// arrays). The CoveringIndexProjSwap defect triggers only when a served
// row actually reads a transposed column and the two transposed values
// render differently: the emitted row then differs from the clean
// engine's, an observable divergence.
func (s *DB) coveringProject(cp *coverPlan, rows []jrow) ([][]Value, [][]Value) {
	s.cov.Hit("exec.proj.covering")
	n := len(rows)
	width := len(cp.items)
	klen := len(cp.keys)
	outRows := make([][]Value, n)
	sortKeys := make([][]Value, n)
	flat := make([]Value, n*width)
	var kflat []Value
	if klen > 0 {
		kflat = make([]Value, n*klen)
	}
	for i, jr := range rows {
		row := jr[0]
		out := flat[i*width : (i+1)*width : (i+1)*width]
		for si, c := range cp.items {
			out[si] = row[c]
		}
		outRows[i] = out
		if klen > 0 {
			keys := kflat[i*klen : (i+1)*klen : (i+1)*klen]
			for si, c := range cp.keys {
				keys[si] = row[c]
			}
			sortKeys[i] = keys
		}
		if cp.fault != nil && cp.touches && row[cp.l0].Render() != row[cp.l1].Render() {
			s.trigger(cp.fault)
		}
	}
	return outRows, sortKeys
}
