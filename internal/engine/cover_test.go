package engine_test

// Unit tests for covering-index projection (cover.go): eligibility, the
// CoveringOff plan axis, its enumeration, the cost advantage of serving
// results from the ordered store, and the CoveringIndexProjSwap defect.

import (
	"testing"

	"sqlancerpp/internal/coverage"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/sqlast"
	"sqlancerpp/internal/sqlparse"
)

func mustParseSelect(t *testing.T, sql string) *sqlast.Select {
	t.Helper()
	stmt, err := sqlparse.Shared().Parse(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	sel, ok := stmt.(*sqlast.Select)
	if !ok {
		t.Fatalf("not a SELECT: %s", sql)
	}
	return sel
}

// coverDB builds an instance with a three-column table and a composite
// index over the first two columns.
func coverDB(t *testing.T, opts ...engine.Option) *engine.DB {
	t.Helper()
	db := engine.Open(dialect.MustGet("sqlite"), opts...)
	mustExec := func(sql string) {
		if err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER)")
	mustExec("CREATE INDEX t_ab ON t (a, b)")
	for i := 0; i < 12; i++ {
		mustExec("INSERT INTO t VALUES (" + itoa(i%4) + ", " + itoa(i) + ", " + itoa(100+i) + ")")
	}
	return db
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestCoveringProjectionEquivalentAndCheaper: a fully covered query
// returns the same rows under the covering and heap-projection plans,
// and the covering plan charges strictly less executor cost (the served
// projection evaluates nothing).
func TestCoveringProjectionEquivalentAndCheaper(t *testing.T) {
	db := coverDB(t, engine.WithoutFaults())
	const q = "SELECT a, b FROM t WHERE a = 2 ORDER BY b"

	covered, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	coverCost := db.LastCost()

	db.SetPlanSpec(engine.PlanSpec{CoveringOff: true})
	heap, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	heapCost := db.LastCost()

	if got, want := covered.RenderRows(), heap.RenderRows(); len(got) != len(want) {
		t.Fatalf("row count diverged: covering %v vs heap %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("row %d diverged: covering %q vs heap %q", i, got[i], want[i])
			}
		}
	}
	if len(covered.Rows) == 0 {
		t.Fatal("query returned no rows; the cost comparison is vacuous")
	}
	if coverCost >= heapCost {
		t.Fatalf("covering cost %d not below heap-projection cost %d", coverCost, heapCost)
	}
}

// TestCoveringIneligibleQueries: statements that reference an uncovered
// column, aggregate, or subquery charge the same cost with and without
// CoveringOff — covering never applied.
func TestCoveringIneligibleQueries(t *testing.T) {
	for _, q := range []string{
		"SELECT a, c FROM t WHERE a = 2",                              // uncovered projection column
		"SELECT a, b FROM t WHERE a = 2 AND c > 0",                    // uncovered WHERE column
		"SELECT MAX(b) FROM t WHERE a = 2",                            // aggregate
		"SELECT a, b FROM t WHERE a = 2 AND EXISTS (SELECT b FROM t)", // subquery predicate
		"SELECT a + 1 FROM t WHERE a = 2",                             // computed projection
		"SELECT a, b FROM t WHERE a = 2 ORDER BY c",                   // uncovered sort key
	} {
		db := coverDB(t, engine.WithoutFaults())
		auto, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		autoCost := db.LastCost()
		db.SetPlanSpec(engine.PlanSpec{CoveringOff: true})
		off, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if db.LastCost() != autoCost {
			t.Errorf("%s: cost changed with CoveringOff (%d vs %d) — covering applied to an ineligible query",
				q, autoCost, db.LastCost())
		}
		if len(auto.RenderRows()) != len(off.RenderRows()) {
			t.Errorf("%s: row count diverged", q)
		}
	}
}

// TestCoveringStarProjection: SELECT * covers only when every table
// column is in the index key (a star projection copies row values
// without evaluation in both serving paths, so the covering hit point —
// not cost — is the observable).
func TestCoveringStarProjection(t *testing.T) {
	servesCovering := func(ddl []string, q string) bool {
		rec := coverage.NewRecorder()
		db := engine.Open(dialect.MustGet("sqlite"),
			engine.WithoutFaults(), engine.WithCoverage(rec))
		for _, sql := range ddl {
			if err := db.Exec(sql); err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
		}
		if _, err := db.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for _, p := range rec.HitPoints() {
			if p == "exec.proj.covering" {
				return true
			}
		}
		return false
	}
	allCovered := []string{
		"CREATE TABLE s (x INTEGER, y INTEGER)",
		"CREATE INDEX s_xy ON s (x, y)",
		"INSERT INTO s VALUES (1, 10), (1, 11), (2, 20), (2, 21), (3, 30)",
	}
	if !servesCovering(allCovered, "SELECT * FROM s WHERE x = 1") {
		t.Error("star over a fully indexed table should serve covering")
	}
	partlyCovered := []string{
		"CREATE TABLE s (x INTEGER, y INTEGER, z INTEGER)",
		"CREATE INDEX s_xy ON s (x, y)",
		"INSERT INTO s VALUES (1, 10, 0), (1, 11, 0), (2, 20, 0), (2, 21, 0), (3, 30, 0)",
	}
	if servesCovering(partlyCovered, "SELECT * FROM s WHERE x = 1") {
		t.Error("star over a partly indexed table must not serve covering")
	}
}

// TestEnumeratePlansNocoverAxis: the plan space includes the nocover
// variant exactly when some probe-matched index could serve the
// statement index-only.
func TestEnumeratePlansNocoverAxis(t *testing.T) {
	db := coverDB(t, engine.WithoutFaults())
	hasNocover := func(sql string) bool {
		sel := mustParseSelect(t, sql)
		for _, spec := range engine.EnumeratePlans(db, sel) {
			if spec.CoveringOff {
				return true
			}
		}
		return false
	}
	if !hasNocover("SELECT a, b FROM t WHERE a = 2") {
		t.Error("covered query: nocover plan missing from enumeration")
	}
	if hasNocover("SELECT a, c FROM t WHERE a = 2") {
		t.Error("uncovered query: nocover plan should not be enumerated")
	}
}

// TestPlanSpecNocoverRoundTrip: the nocover token serializes and parses.
func TestPlanSpecNocoverRoundTrip(t *testing.T) {
	spec := engine.PlanSpec{CoveringOff: true}
	if got := spec.String(); got != "nocover" {
		t.Fatalf("String() = %q, want %q", got, "nocover")
	}
	parsed, err := engine.ParsePlanSpec("nocover")
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.CoveringOff {
		t.Fatal("ParsePlanSpec dropped CoveringOff")
	}
}

// TestCoveringSwapFault: with CoveringIndexProjSwap armed, the covering
// plan serves the first two key columns transposed and records the
// trigger; the nocover plan of the same query is untouched — exactly the
// divergence the PlanDiff oracle diffs.
func TestCoveringSwapFault(t *testing.T) {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = "cover-swap-test"
	d.Faults = faults.NewSet([]faults.Fault{
		{ID: "cover-swap-test-f", Dialect: d.Name, Class: faults.Logic,
			Kind: faults.CoveringIndexProjSwap},
	})
	db := engine.Open(d)
	for _, sql := range []string{
		"CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER)",
		"CREATE INDEX t_ab ON t (a, b)",
		"INSERT INTO t VALUES (1, 10, 100), (1, 11, 101), (2, 20, 200)",
	} {
		if err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	const q = "SELECT a, b FROM t WHERE a = 1"

	swapped, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := swapped.RenderRows(); got[0] != "10|1" || got[1] != "11|1" {
		t.Fatalf("swap not served: got %v", got)
	}
	if f := db.TriggeredFaults(); len(f) != 1 || f[0] != "cover-swap-test-f" {
		t.Fatalf("trigger ground truth = %v", f)
	}

	db.SetPlanSpec(engine.PlanSpec{CoveringOff: true})
	heap, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := heap.RenderRows(); got[0] != "1|10" || got[1] != "1|11" {
		t.Fatalf("nocover plan corrupted: got %v", got)
	}
	if f := db.TriggeredFaults(); len(f) != 0 {
		t.Fatalf("nocover plan triggered %v", f)
	}
}
