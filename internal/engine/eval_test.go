package engine

import (
	"strings"
	"testing"

	"sqlancerpp/internal/dialect"
)

// queryOne runs a single-row, single-column query and returns the value.
func queryOne(t *testing.T, db *DB, sql string) Value {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("query %q: want 1×1 result, got %v", sql, res.RenderRows())
	}
	return res.Rows[0][0]
}

func expectValue(t *testing.T, db *DB, expr, want string) {
	t.Helper()
	got := queryOne(t, db, "SELECT "+expr).Render()
	if got != want {
		t.Errorf("SELECT %s = %s, want %s", expr, got, want)
	}
}

func TestEvalArithmetic(t *testing.T) {
	db := openClean(t, "sqlite")
	cases := map[string]string{
		"1 + 2":       "3",
		"5 - 8":       "-3",
		"4 * 3":       "12",
		"7 / 2":       "3",
		"7 % 3":       "1",
		"1 / 0":       "NULL", // dynamic dialect: NULL
		"5 & 3":       "1",
		"5 | 2":       "7",
		"5 ^ 1":       "4",
		"1 << 4":      "16",
		"16 >> 2":     "4",
		"1 << 200":    "0", // out-of-range shift
		"- 5":         "-5",
		"~ 0":         "-1",
		"NULL + 1":    "NULL",
		"'3x' + 1":    "4", // text coerces via leading integer
		"TRUE + TRUE": "2",
	}
	for expr, want := range cases {
		expectValue(t, db, expr, want)
	}
}

func TestEvalDivZeroStatic(t *testing.T) {
	db := openClean(t, "postgresql")
	mustExec(t, db, "CREATE TABLE t (c INTEGER)")
	mustExec(t, db, "INSERT INTO t (c) VALUES (0)")
	if err := db.Exec("SELECT 1 / c FROM t"); err == nil {
		t.Fatal("static dialect must raise division-by-zero")
	} else if ClassOf(err) != ErrRuntime {
		t.Fatalf("want runtime error, got %v", err)
	}
}

func TestEvalComparisons(t *testing.T) {
	db := openClean(t, "sqlite")
	cases := map[string]string{
		"1 = 1":                          "TRUE",
		"1 = 2":                          "FALSE",
		"1 != 2":                         "TRUE",
		"1 <> 1":                         "FALSE",
		"1 < 2":                          "TRUE",
		"2 <= 2":                         "TRUE",
		"3 > 2":                          "TRUE",
		"1 >= 2":                         "FALSE",
		"NULL = NULL":                    "NULL",
		"NULL = 1":                       "NULL",
		"1 IS DISTINCT FROM NULL":        "TRUE",
		"NULL IS DISTINCT FROM NULL":     "FALSE",
		"NULL IS NOT DISTINCT FROM NULL": "TRUE",
		"1 < 'a'":                        "TRUE", // numeric class orders first
		"'b' > 'a'":                      "TRUE",
	}
	for expr, want := range cases {
		expectValue(t, db, expr, want)
	}
	// <=> is MySQL-family.
	my := openClean(t, "mysql")
	expectValue(t, my, "NULL <=> NULL", "TRUE")
	expectValue(t, my, "NULL <=> 1", "FALSE")
	expectValue(t, my, "2 <=> 2", "TRUE")
}

func TestEvalLogicalAndNullHandling(t *testing.T) {
	db := openClean(t, "sqlite")
	cases := map[string]string{
		"TRUE AND NULL":    "NULL",
		"FALSE AND NULL":   "FALSE",
		"TRUE OR NULL":     "TRUE",
		"FALSE OR NULL":    "NULL",
		"NOT NULL":         "NULL",
		"NULL IS NULL":     "TRUE",
		"1 IS NOT NULL":    "TRUE",
		"NULL IS TRUE":     "FALSE",
		"TRUE IS TRUE":     "TRUE",
		"FALSE IS FALSE":   "TRUE",
		"NULL IS NOT TRUE": "TRUE",
	}
	for expr, want := range cases {
		expectValue(t, db, expr, want)
	}
	my := openClean(t, "mysql")
	expectValue(t, my, "TRUE XOR FALSE", "TRUE")
	expectValue(t, my, "TRUE XOR NULL", "NULL")
}

func TestEvalBetweenInLike(t *testing.T) {
	db := openClean(t, "sqlite")
	cases := map[string]string{
		"2 BETWEEN 1 AND 3":     "TRUE",
		"1 BETWEEN 1 AND 3":     "TRUE", // inclusive bounds
		"3 BETWEEN 1 AND 3":     "TRUE",
		"0 NOT BETWEEN 1 AND 3": "TRUE",
		"NULL BETWEEN 1 AND 3":  "NULL",
		"2 IN (1, 2, 3)":        "TRUE",
		"5 IN (1, 2, 3)":        "FALSE",
		"5 IN (1, NULL)":        "NULL",
		"5 NOT IN (1, NULL)":    "NULL",
		"1 NOT IN (2, 3)":       "TRUE",
		"'abc' LIKE 'a%'":       "TRUE",
		"'abc' LIKE 'A_C'":      "TRUE", // LIKE is case-insensitive
		"'abc' LIKE 'x%'":       "FALSE",
		"'abc' NOT LIKE 'x%'":   "TRUE",
		"NULL LIKE '%'":         "NULL",
		"'abc' GLOB 'a*'":       "TRUE",
		"'abc' GLOB 'A*'":       "FALSE", // GLOB is case-sensitive
		"'abc' GLOB '?b?'":      "TRUE",
	}
	for expr, want := range cases {
		expectValue(t, db, expr, want)
	}
}

func TestEvalCase(t *testing.T) {
	db := openClean(t, "sqlite")
	cases := map[string]string{
		"CASE WHEN TRUE THEN 1 ELSE 2 END":           "1",
		"CASE WHEN FALSE THEN 1 ELSE 2 END":          "2",
		"CASE WHEN NULL THEN 1 ELSE 2 END":           "2", // NULL is not TRUE
		"CASE WHEN FALSE THEN 1 END":                 "NULL",
		"CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END": "'b'",
		"CASE NULL WHEN NULL THEN 'x' ELSE 'y' END":  "'y'", // NULL matches nothing
	}
	for expr, want := range cases {
		expectValue(t, db, expr, want)
	}
}

func TestEvalCast(t *testing.T) {
	db := openClean(t, "sqlite")
	cases := map[string]string{
		"CAST('42' AS INTEGER)":   "42",
		"CAST('42x' AS INTEGER)":  "42", // dynamic: leading-integer
		"CAST(7 AS TEXT)":         "'7'",
		"CAST(TRUE AS INTEGER)":   "1",
		"CAST('true' AS BOOLEAN)": "TRUE",
		"CAST(NULL AS INTEGER)":   "NULL",
	}
	for expr, want := range cases {
		expectValue(t, db, expr, want)
	}
	pg := openClean(t, "postgresql")
	if err := pg.Exec("SELECT CAST('42x' AS INTEGER)"); err == nil {
		t.Fatal("static dialect must reject CAST('42x' AS INTEGER)")
	} else if ClassOf(err) != ErrRuntime {
		t.Fatalf("want runtime error, got %v", err)
	}
	expectValue(t, pg, "CAST('42' AS INTEGER)", "42")
}

func TestEvalStringFunctions(t *testing.T) {
	db := openClean(t, "sqlite")
	cases := map[string]string{
		"LENGTH('abc')":             "3",
		"LOWER('AbC')":              "'abc'",
		"UPPER('AbC')":              "'ABC'",
		"TRIM('  x ')":              "'x'",
		"LTRIM('  x')":              "'x'",
		"RTRIM('x  ')":              "'x'",
		"REPLACE('aXbX', 'X', 'y')": "'ayby'",
		"REPLACE('ab', '', 'y')":    "'ab'", // empty needle is identity
		"SUBSTR('hello', 2, 3)":     "'ell'",
		"SUBSTR('hello', 2)":        "'ello'",
		"SUBSTR('hi', 9)":           "''",
		"INSTR('hello', 'll')":      "3",
		"INSTR('hello', 'z')":       "0",
		"HEX('AB')":                 "'4142'",
		"QUOTE('a''b')":             "''a''b''",
		"NULLIF(1, 1)":              "NULL",
		"NULLIF(1, 2)":              "1",
		"NULLIF(NULL, 1)":           "NULL",
		"COALESCE(NULL, NULL, 3)":   "3",
		"COALESCE(NULL, NULL)":      "NULL",
		"IFNULL(NULL, 5)":           "5",
		"IIF(TRUE, 1, 2)":           "1",
		"IIF(FALSE, 1, 2)":          "2",
		"TYPEOF('x')":               "'text'",
		"TYPEOF(NULL)":              "'null'",
		"UNICODE('A')":              "65",
	}
	for expr, want := range cases {
		expectValue(t, db, expr, want)
	}
}

func TestEvalNumericFunctions(t *testing.T) {
	db := openClean(t, "sqlite")
	cases := map[string]string{
		"ABS(-5)":      "5",
		"SIGN(-9)":     "-1",
		"SIGN(0)":      "0",
		"MOD(7, 3)":    "1",
		"MOD(7, 0)":    "NULL", // dynamic
		"SQRT(16)":     "4",
		"SQRT(-1)":     "NULL", // dynamic
		"POWER(2, 10)": "1024",
		"SIN(0)":       "0",
		"COS(0)":       "1000", // fixed-point ×1000
		"ASIN(1000)":   "1571", // asin(1.0)·1000 ≈ π/2·1000
		"ASIN(2000)":   "NULL", // out of fixed-point domain (dynamic: NULL)
		"PI()":         "3142",
		"LN(1)":        "0",
		"LOG10(100)":   "2000",
		"MIN(3, 1, 2)": "1", // scalar MIN
		"MAX(3, 1, 2)": "3",
		"MIN(3, NULL)": "NULL",
	}
	for expr, want := range cases {
		expectValue(t, db, expr, want)
	}
	// Domain errors on static dialects (the paper's ASIN(2) example).
	pg := openClean(t, "postgresql")
	if err := pg.Exec("SELECT ASIN(2000)"); err == nil {
		t.Fatal("ASIN(2000) must fail on a static dialect")
	}
	expectValue(t, pg, "ASIN(1000)", "1571")
}

func TestEvalScalarSubqueryAndExists(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE t (c INTEGER)")
	mustExec(t, db, "INSERT INTO t (c) VALUES (5), (7)")
	expectValue(t, db, "(SELECT MAX(c) FROM t)", "7")
	expectValue(t, db, "EXISTS (SELECT * FROM t)", "TRUE")
	expectValue(t, db, "EXISTS (SELECT * FROM t WHERE c > 10)", "FALSE")
	expectValue(t, db, "NOT EXISTS (SELECT * FROM t WHERE c > 10)", "TRUE")
	expectValue(t, db, "(SELECT c FROM t WHERE c > 100)", "NULL")
	if err := db.Exec("SELECT (SELECT c FROM t)"); err == nil {
		t.Fatal("multi-row scalar subquery must error")
	}
}

func TestEvalEveryRegisteredFunction(t *testing.T) {
	// Each function must evaluate without panicking for NULL arguments
	// and for benign values (dynamic dialect so coercion always applies).
	// A synthetic dialect enables the full registry.
	d := dialect.MustGet("sqlite").Clone()
	d.Name = "all-functions-test"
	for _, name := range FuncNames() {
		d.Functions[name] = true
	}
	db := Open(d, WithoutFaults())
	for _, name := range FuncNames() {
		def := LookupFunc(name)
		n := def.MinArgs
		args := make([]string, n)
		for i := range args {
			args[i] = "NULL"
		}
		sql := "SELECT " + name + "(" + strings.Join(args, ", ") + ")"
		if n == 0 {
			sql = "SELECT " + name + "()"
		}
		if _, err := db.Query(sql); err != nil {
			t.Errorf("%s with NULL args: %v", name, err)
		}
		for i := range args {
			args[i] = "1"
		}
		sql = "SELECT " + name + "(" + strings.Join(args, ", ") + ")"
		if n == 0 {
			sql = "SELECT " + name + "()"
		}
		if _, err := db.Query(sql); err != nil {
			t.Errorf("%s with 1-args: %v", name, err)
		}
	}
}

func TestEvalConcat(t *testing.T) {
	db := openClean(t, "sqlite")
	expectValue(t, db, "'a' || 'b'", "'ab'")
	expectValue(t, db, "1 || 2", "'12'")
	expectValue(t, db, "NULL || 'x'", "NULL")
}

func TestUnsupportedFunctionPerDialect(t *testing.T) {
	// GCD is absent from the SQLite profile; the engine must reject it as
	// an unsupported feature (not a missing function).
	db := openClean(t, "sqlite")
	err := db.Exec("SELECT GCD(4, 6)")
	if err == nil || ClassOf(err) != ErrUnsupported {
		t.Fatalf("want unsupported GCD on sqlite, got %v", err)
	}
	pg := openClean(t, "postgresql")
	expectValue(t, pg, "GCD(4, 6)", "2")
	if _, err := dialect.Get("postgresql"); err != nil {
		t.Fatal(err)
	}
}
