package engine

import (
	"sort"
	"strings"

	"sqlancerpp/internal/sqlast"
)

// Column is one column of a stored table.
type Column struct {
	Name       string
	Type       sqlast.Type
	NotNull    bool
	Unique     bool
	PrimaryKey bool
}

// Table is an in-memory heap table.
type Table struct {
	Name    string
	Columns []Column
	// Rows holds the visible rows.
	Rows [][]Value
	// Pending holds rows inserted but not yet visible (dialects with
	// RequiresRefresh, e.g. CrateDB, make them visible on REFRESH TABLE).
	Pending [][]Value
	// Analyzed records whether ANALYZE collected statistics.
	Analyzed bool
	// names caches the column-name slice handed to scans; ALTER TABLE
	// invalidates it.
	names []string
	// indexes holds the indexes on this table, sorted by name — the
	// single access path to a table's indexes. The planner and the
	// constraint checker read it on the hot path, where an allocating
	// map iteration over the catalog would be too costly.
	indexes []*Index
}

// colNames returns the column names as a shared slice. Scans and row
// environments hold it read-only; it is rebuilt after schema changes.
func (t *Table) colNames() []string {
	if t.names == nil {
		names := make([]string, len(t.Columns))
		for i := range t.Columns {
			names[i] = t.Columns[i].Name
		}
		t.names = names
	}
	return t.names
}

// findIndex returns the table's index with the given case-insensitive
// name, or nil (PlanSpec forcing resolves index names through it).
func (t *Table) findIndex(name string) *Index {
	for _, ix := range t.indexes {
		if strings.EqualFold(ix.Name, name) {
			return ix
		}
	}
	return nil
}

// ColumnIndex returns the position of a column by case-insensitive name,
// or -1.
func (t *Table) ColumnIndex(name string) int {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// View is a stored view definition.
type View struct {
	Name    string
	Columns []string // output column names
	Types   []sqlast.Type
	Def     *sqlast.Select
}

// Index is a stored (optionally unique, optionally partial) index. It is
// a real access path, not just metadata: entries is an ordered key→row
// store over the full composite key (every indexed column, compared
// lexicographically), maintained incrementally by the DML executors and
// probed by the access-path planner (plan.go).
type Index struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
	Where   sqlast.Expr // partial index predicate, nil if absent

	// leads holds each indexed column's position in the table, in index
	// column order; recomputed when ALTER TABLE rebuilds the index.
	leads []int
	// entries holds one row reference per covered visible row, sorted
	// lexicographically by the composite key (compareForSort order per
	// column: NULLs first), ties in insertion order. The key is not
	// stored: rows are immutable for their lifetime in the store (DML
	// replaces row slices, never mutates them), so entry i's key is
	// entries[i][leads[0]], entries[i][leads[1]], … — and a key span is
	// just a subslice of entries, with no per-query materialization. The
	// row slice is also the identity: the pointer of its first element
	// identifies a live row.
	entries [][]Value
	// stale marks an index whose maintenance was skipped by the
	// StaleIndexAfterUpdate fault; probes on a stale index may return
	// detached pre-update rows.
	stale bool
}

// covers reports whether the table column at position col is part of the
// index key — i.e. whether an index-only (covering) read can serve it
// without touching the heap row. Index keys are at most a handful of
// columns, so the linear scan beats any map.
func (ix *Index) covers(col int) bool {
	for _, l := range ix.leads {
		if l == col {
			return true
		}
	}
	return false
}

// keyCompare lexicographically compares an entry row's composite key
// against the key values in want (len(want) <= len(ix.leads) — a prefix
// comparison when shorter).
func (ix *Index) keyCompare(row []Value, want []Value) int {
	for i := range want {
		if c := compareForSort(row[ix.leads[i]], want[i]); c != 0 {
			return c
		}
	}
	return 0
}

// entryCompare lexicographically compares two entry rows over the full
// composite key.
func (ix *Index) entryCompare(a, b []Value) int {
	for _, l := range ix.leads {
		if c := compareForSort(a[l], b[l]); c != 0 {
			return c
		}
	}
	return 0
}

// database is the catalog plus storage for one DB instance.
type database struct {
	tables  map[string]*Table
	views   map[string]*View
	indexes map[string]*Index
}

func newDatabase() *database {
	return &database{
		tables:  map[string]*Table{},
		views:   map[string]*View{},
		indexes: map[string]*Index{},
	}
}

func key(name string) string { return strings.ToLower(name) }

func (db *database) table(name string) *Table { return db.tables[key(name)] }
func (db *database) view(name string) *View   { return db.views[key(name)] }
func (db *database) index(name string) *Index { return db.indexes[key(name)] }

// relationExists reports whether a table or view with the name exists.
func (db *database) relationExists(name string) bool {
	return db.table(name) != nil || db.view(name) != nil
}

// tableNames returns sorted table names (deterministic iteration).
func (db *database) tableNames() []string {
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// viewNames returns sorted view names.
func (db *database) viewNames() []string {
	out := make([]string, 0, len(db.views))
	for _, v := range db.views {
		out = append(out, v.Name)
	}
	sort.Strings(out)
	return out
}

// attachIndex registers an index in the catalog and on its table,
// keeping the table's index list name-sorted (deterministic planning and
// constraint-check order).
func (db *database) attachIndex(t *Table, ix *Index) {
	db.indexes[key(ix.Name)] = ix
	i := sort.Search(len(t.indexes), func(i int) bool { return t.indexes[i].Name >= ix.Name })
	t.indexes = append(t.indexes, nil)
	copy(t.indexes[i+1:], t.indexes[i:])
	t.indexes[i] = ix
}

// detachIndex removes an index from the catalog and from its table's
// name-sorted list, tearing down the ordered store with it.
func (db *database) detachIndex(ix *Index) {
	delete(db.indexes, key(ix.Name))
	t := db.table(ix.Table)
	if t == nil {
		return
	}
	for i, x := range t.indexes {
		if x == ix {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			return
		}
	}
}

// dropTable removes a table and its indexes.
func (db *database) dropTable(name string) {
	delete(db.tables, key(name))
	for k, ix := range db.indexes {
		if strings.EqualFold(ix.Table, name) {
			delete(db.indexes, k)
		}
	}
}
