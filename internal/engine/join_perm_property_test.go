package engine_test

// Differential property tests for the join-order permutation axis: on a
// fault-free engine, every enumerated permutation spec of a 3- and
// 4-relation inner-join chain must return the canonical order's row
// multiset — including SELECT *, whose output column order the
// order-restoring projection pins to the written relation order — and
// the enumerator must emit the full non-identity permutation group of
// the chain.

import (
	"fmt"
	"strings"
	"testing"

	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/sqlast"
	"sqlancerpp/internal/sqlparse"
)

// buildChainState creates four small relations with overlapping key
// ranges (so joins produce rows without exploding) and an index per
// join column to give the permuted orders distinct probe plans.
func buildChainState(t *testing.T, db *engine.DB) {
	t.Helper()
	exec := func(sql string) {
		if err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	exec("CREATE TABLE p0 (a0 INTEGER, x0 TEXT)")
	exec("CREATE TABLE p1 (a1 INTEGER, b1 INTEGER)")
	exec("CREATE TABLE p2 (b2 INTEGER, c2 INTEGER)")
	exec("CREATE TABLE p3 (c3 INTEGER, x3 TEXT)")
	for i := 0; i < 12; i++ {
		exec(fmt.Sprintf("INSERT INTO p0 VALUES (%d, 'p0r%d')", i%5, i))
		exec(fmt.Sprintf("INSERT INTO p1 VALUES (%d, %d)", i%4, i%6))
		exec(fmt.Sprintf("INSERT INTO p2 VALUES (%d, %d)", i%6, i%3))
		exec(fmt.Sprintf("INSERT INTO p3 VALUES (%d, 'p3r%d')", i%3, i))
	}
	exec("CREATE INDEX ip1 ON p1 (a1)")
	exec("CREATE INDEX ip2 ON p2 (b2)")
	exec("CREATE INDEX ip3 ON p3 (c3)")
}

func parseSel(t *testing.T, q string) *sqlast.Select {
	t.Helper()
	stmt, err := sqlparse.Shared().Parse(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return stmt.(*sqlast.Select)
}

func queryUnder(t *testing.T, db *engine.DB, spec engine.PlanSpec, q string) *engine.Result {
	t.Helper()
	prev := db.PlanSpec()
	db.SetPlanSpec(spec)
	res, err := db.Query(q)
	db.SetPlanSpec(prev)
	if err != nil {
		t.Fatalf("%s under [%s]: %v", q, spec.String(), err)
	}
	return res
}

// factorial-1 permutation counts the enumerator must reach for fully
// permutable chains: 3! - 1 = 5, 4! - 1 = 23.
var wantPermCount = map[int]int{3: 5, 4: 23}

// TestJoinPermutationsMultisetEquivalent: every enumerated permutation
// of 3- and 4-relation inner-join chains (explicit projection and
// SELECT *) agrees with the canonical order on a clean engine, and the
// enumerator emits the complete non-identity permutation group.
func TestJoinPermutationsMultisetEquivalent(t *testing.T) {
	db := engine.Open(dialect.MustGet("sqlite"), engine.WithoutFaults())
	buildChainState(t, db)

	cases := []struct {
		q     string
		nRels int
	}{
		{"SELECT p0.x0, p1.b1, p2.c2 FROM p0 INNER JOIN p1 ON p0.a0 = p1.a1 INNER JOIN p2 ON p1.b1 = p2.b2", 3},
		{"SELECT * FROM p0 INNER JOIN p1 ON p0.a0 = p1.a1 INNER JOIN p2 ON p1.b1 = p2.b2", 3},
		{"SELECT p0.x0, p3.x3 FROM p0 INNER JOIN p1 ON p0.a0 = p1.a1 INNER JOIN p2 ON p1.b1 = p2.b2 INNER JOIN p3 ON p2.c2 = p3.c3", 4},
		{"SELECT * FROM p0 INNER JOIN p1 ON p0.a0 = p1.a1 INNER JOIN p2 ON p1.b1 = p2.b2 INNER JOIN p3 ON p2.c2 = p3.c3 WHERE p0.a0 >= 1", 4},
	}
	for _, tc := range cases {
		sel := parseSel(t, tc.q)
		base := queryUnder(t, db, engine.PlanSpec{}, tc.q)
		baseCols := strings.Join(base.Columns, ",")

		perms := 0
		seen := map[string]bool{}
		for _, spec := range engine.EnumeratePlans(db, sel) {
			if len(spec.JoinPerm) == 0 {
				continue
			}
			perms++
			key := spec.String()
			if seen[key] {
				t.Fatalf("%q: duplicate permutation spec %s", tc.q, key)
			}
			seen[key] = true
			res := queryUnder(t, db, spec, tc.q)
			if got := strings.Join(res.Columns, ","); got != baseCols {
				t.Fatalf("%q under [%s]: columns %q, want %q", tc.q, key, got, baseCols)
			}
			if !sameMultiset(rowMultiset(base), rowMultiset(res)) {
				t.Fatalf("%q under [%s] diverged:\nbase: %v\nperm: %v",
					tc.q, key, base.RenderRows(), res.RenderRows())
			}
		}
		if perms != wantPermCount[tc.nRels] {
			t.Fatalf("%q: enumerator emitted %d permutations, want %d",
				tc.q, perms, wantPermCount[tc.nRels])
		}
		if len(base.Rows) == 0 {
			t.Fatalf("%q: empty baseline — the property is vacuous", tc.q)
		}
	}
}

// TestJoinPermutationGates: permutation must not cross a non-inner join
// boundary — only the maximal inner-like prefix permutes — and ON
// conjuncts referencing unqualified columns or subqueries make the
// chain non-permutable.
func TestJoinPermutationGates(t *testing.T) {
	db := engine.Open(dialect.MustGet("sqlite"), engine.WithoutFaults())
	buildChainState(t, db)

	for _, tc := range []struct {
		q    string
		want int // permutation specs expected from the enumerator
	}{
		// LEFT JOIN caps the inner prefix at two relations: 2! - 1 = 1.
		{"SELECT p0.x0 FROM p0 INNER JOIN p1 ON p0.a0 = p1.a1 LEFT JOIN p2 ON p1.b1 = p2.b2", 1},
		// A subquery inside the prefix ON defeats conjunct relocation.
		{"SELECT p0.x0 FROM p0 INNER JOIN p1 ON p0.a0 = (SELECT MIN(a1) FROM p1) INNER JOIN p2 ON p1.b1 = p2.b2", 0},
	} {
		sel := parseSel(t, tc.q)
		base := queryUnder(t, db, engine.PlanSpec{}, tc.q)
		perms := 0
		for _, spec := range engine.EnumeratePlans(db, sel) {
			if len(spec.JoinPerm) == 0 {
				continue
			}
			perms++
			res := queryUnder(t, db, spec, tc.q)
			if !sameMultiset(rowMultiset(base), rowMultiset(res)) {
				t.Fatalf("%q under [%s] diverged", tc.q, spec.String())
			}
		}
		if perms != tc.want {
			t.Fatalf("%q: %d permutation specs, want %d", tc.q, perms, tc.want)
		}
		// A spec permuting past the safe prefix is ignored, not applied.
		wide := engine.PlanSpec{JoinPerm: []int{2, 0, 1}}
		res := queryUnder(t, db, wide, tc.q)
		if !sameMultiset(rowMultiset(base), rowMultiset(res)) {
			t.Fatalf("%q: out-of-prefix permutation was applied", tc.q)
		}
	}
}
