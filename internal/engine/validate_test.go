package engine

import "testing"

// expectClass asserts that sql fails with the given error class.
func expectClass(t *testing.T, db *DB, sql string, class ErrClass) {
	t.Helper()
	err := db.Exec(sql)
	if err == nil {
		t.Fatalf("%s: expected %v error, got success", sql, class)
	}
	if got := ClassOf(err); got != class {
		t.Fatalf("%s: expected %v error, got %v (%v)", sql, class, got, err)
	}
}

func TestStaticTypingRules(t *testing.T) {
	db := openClean(t, "postgresql")
	mustExec(t, db, "CREATE TABLE t (i INTEGER, s TEXT, b BOOLEAN)")

	// Rejected: type mismatches across every operator family.
	for _, sql := range []string{
		"SELECT i + s FROM t",            // arithmetic over TEXT
		"SELECT i || s FROM t",           // concat over INTEGER
		"SELECT i = s FROM t",            // cross-family comparison
		"SELECT b < s FROM t",            // cross-family comparison
		"SELECT i AND b FROM T",          // logical over INTEGER
		"SELECT NOT i FROM t",            // NOT over INTEGER
		"SELECT - s FROM t",              // unary minus over TEXT
		"SELECT i FROM t WHERE i",        // non-boolean WHERE
		"SELECT i FROM t WHERE s LIKE i", // non-TEXT pattern
		"SELECT i BETWEEN s AND s FROM t",
		"SELECT i IN (s) FROM t",
		"SELECT i IS TRUE FROM t",
		"SELECT CASE WHEN i THEN 1 END FROM t",        // non-boolean WHEN
		"SELECT CASE WHEN b THEN 1 ELSE s END FROM t", // mixed branches
		"SELECT ABS(s) FROM t",                        // wrong argument kind
		"SELECT LOWER(i) FROM t",                      // wrong argument kind
		"UPDATE t SET i = s",                          // assignment mismatch
		"INSERT INTO t (i) VALUES ('x')",              // insert mismatch
		"SELECT MIN(i, s) FROM t",                     // scalar MIN families
		"SELECT i FROM t UNION SELECT s FROM t",       // compound arm types
		"SELECT t2.x FROM (SELECT s AS x FROM t) AS t2 WHERE t2.x > 1",
	} {
		expectClass(t, db, sql, ErrSemantic)
	}

	// Accepted: NULL unifies with every family; CAST converts.
	for _, sql := range []string{
		"SELECT i + NULL FROM t",
		"SELECT s || NULL FROM t",
		"SELECT i = NULL FROM t",
		"SELECT NULLIF(i, NULL) + 1 FROM t",
		"SELECT CAST(s AS INTEGER) + i FROM t",
		"SELECT CAST(i AS TEXT) || s FROM t",
		"SELECT CASE WHEN b THEN i ELSE NULL END FROM t",
		"SELECT COALESCE(NULL, i) + 1 FROM t",
		"SELECT i FROM t WHERE b",
		"SELECT i FROM t WHERE b IS TRUE",
	} {
		mustExec(t, db, sql)
	}
}

func TestDynamicTypingAcceptsEverything(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE t (i INTEGER, s TEXT, b BOOLEAN)")
	for _, sql := range []string{
		"SELECT i + s FROM t",
		"SELECT i || b FROM t",
		"SELECT i = s FROM t",
		"SELECT i FROM t WHERE i",
		"SELECT i FROM t WHERE s",
		"SELECT CASE WHEN i THEN s ELSE b END FROM t",
		"SELECT ABS(s) FROM t",
		"SELECT LOWER(i) FROM t",
		"UPDATE t SET i = s",
		"SELECT i FROM t UNION SELECT s FROM t",
	} {
		mustExec(t, db, sql)
	}
}

func TestNameResolutionErrors(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	for _, sql := range []string{
		"SELECT nope FROM t",
		"SELECT t.nope FROM t",
		"SELECT u.a FROM t",
		"SELECT a FROM nope",
		"INSERT INTO nope (a) VALUES (1)",
		"INSERT INTO t (nope) VALUES (1)",
		"INSERT INTO t (a) VALUES (1, 2)", // arity mismatch
		"UPDATE nope SET a = 1",
		"UPDATE t SET nope = 1",
		"DELETE FROM nope",
		"CREATE INDEX i ON nope (a)",
		"CREATE INDEX i ON t (nope)",
		"DROP TABLE nope",
		"DROP VIEW nope",
		"CREATE TABLE bad (a INTEGER, a TEXT)", // duplicate column
		"SELECT (SELECT a, a FROM t) FROM t",   // multi-column scalar subquery
	} {
		expectClass(t, db, sql, ErrSemantic)
	}
}

func TestUnsupportedFeatureErrors(t *testing.T) {
	// Each dialect rejects exactly its missing features with the
	// ErrUnsupported class (which the feedback loop keys on).
	cases := []struct {
		dialect string
		sql     string
	}{
		{"postgresql", "SELECT 1 WHERE 1 <=> 1"},
		{"postgresql", "SELECT TRUE XOR FALSE"},
		{"postgresql", "SELECT 'a' GLOB '*'"},
		{"mysql", "SELECT 'a' || 'b'"},
		{"mysql", "SELECT 1 IS DISTINCT FROM 2"},
		{"mysql", "SELECT 1 INTERSECT SELECT 2"},
		{"mysql", "SELECT 1 EXCEPT SELECT 2"},
		{"sqlite", "SELECT GCD(4, 6)"},
		{"oracle", "SELECT TRUE"},
		{"oracle", "SELECT 1 ~ 1"},
		{"firebird", "SELECT 1 & 2"},
		{"vitess", "SELECT (SELECT 1)"},
	}
	for _, c := range cases {
		db := openClean(t, c.dialect)
		err := db.Exec(c.sql)
		if err == nil {
			// A few of these fail at parse on some grammars; that also
			// counts as a failed statement, but unsupported is expected.
			t.Errorf("%s on %s: expected error", c.sql, c.dialect)
			continue
		}
		if ClassOf(err) != ErrUnsupported && ClassOf(err) != ErrSyntax {
			t.Errorf("%s on %s: want unsupported, got %v", c.sql, c.dialect, err)
		}
	}
}

func TestOracleDialectRestrictions(t *testing.T) {
	// Oracle (the DBMS) has no BOOLEAN type and no LIMIT in our profile.
	db := openClean(t, "oracle")
	expectClass(t, db, "CREATE TABLE t (b BOOLEAN)", ErrUnsupported)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	expectClass(t, db, "SELECT a FROM t LIMIT 1", ErrUnsupported)
	expectClass(t, db, "ALTER TABLE t ADD COLUMN b BOOLEAN", ErrUnsupported)
}
