package engine

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// FuncDef describes one scalar function: its arity, the argument kinds a
// static dialect requires, its result kind, and its implementation.
//
// Trigonometric and logarithmic functions use fixed-point arithmetic
// (results scaled by 1000) to stay within the platform's three data types
// (INTEGER, TEXT, BOOLEAN); see DESIGN.md's substitution table. Domain
// errors (ASIN(2000), LN(0), SQRT(-1), division inside MOD) behave per
// dialect: statically typed systems raise runtime errors — the paper's
// context-dependent failures — and dynamic systems yield NULL.
type FuncDef struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 means variadic
	// ArgKinds lists required kinds per position for static type checking;
	// KindNull means "any". If shorter than the actual argument list, the
	// last entry repeats.
	ArgKinds []Kind
	// Result is the static result kind; KindNull means "same as first arg".
	Result Kind
	Impl   func(ctx *evalCtx, args []Value) (Value, *Error)
}

// scale is the fixed-point scale for transcendental functions.
const scale = 1000

// funcRegistry holds every function the engine implements (universal
// grammar functions plus dialect-specific extras). It is populated by a
// variable initializer so that it precedes every init() in the package
// (coverage-point registration needs the complete registry).
var funcRegistry = buildFuncRegistry()

func buildFuncRegistry() map[string]*FuncDef {
	regMap = map[string]*FuncDef{}
	registerNumericFuncs()
	registerStringFuncs()
	registerConditionalFuncs()
	registerExtraFuncs()
	return regMap
}

var regMap map[string]*FuncDef

// FuncNames returns all implemented function names, sorted (for tests).
func FuncNames() []string {
	out := make([]string, 0, len(funcRegistry))
	for n := range funcRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LookupFunc returns a function definition by upper-case name.
func LookupFunc(name string) *FuncDef { return funcRegistry[name] }

func reg(d *FuncDef) { regMap[d.Name] = d }

// anyNull returns the index of the first NULL argument, or -1.
func anyNull(args []Value) int {
	for i, a := range args {
		if a.IsNull() {
			return i
		}
	}
	return -1
}

// nullPropagate wraps an implementation so that any NULL argument yields
// NULL (the default SQL behavior for most scalar functions).
func nullPropagate(impl func(ctx *evalCtx, args []Value) (Value, *Error)) func(ctx *evalCtx, args []Value) (Value, *Error) {
	return func(ctx *evalCtx, args []Value) (Value, *Error) {
		if anyNull(args) >= 0 {
			return Null(), nil
		}
		return impl(ctx, args)
	}
}

// domainError yields a runtime error on statically typed dialects and
// NULL on dynamic ones.
func domainError(ctx *evalCtx, fn string) (Value, *Error) {
	if ctx.dialect.MathDomainError {
		return Null(), errf(ErrRuntime, "%s: argument out of domain", fn)
	}
	return Null(), nil
}

func fixed(f float64) Value {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return Null()
	}
	return Int(int64(math.Round(f * scale)))
}

func registerNumericFuncs() {
	ints := []Kind{KindInt}
	reg(&FuncDef{Name: "ABS", MinArgs: 1, MaxArgs: 1, ArgKinds: ints, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			v := toInt(a[0])
			if v < 0 {
				v = -v
			}
			return Int(v), nil
		})})
	reg(&FuncDef{Name: "SIGN", MinArgs: 1, MaxArgs: 1, ArgKinds: ints, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			v := toInt(a[0])
			switch {
			case v > 0:
				return Int(1), nil
			case v < 0:
				return Int(-1), nil
			default:
				return Int(0), nil
			}
		})})
	reg(&FuncDef{Name: "MOD", MinArgs: 2, MaxArgs: 2, ArgKinds: ints, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			d := toInt(a[1])
			if d == 0 {
				if ctx.dialect.DivZeroError {
					return Null(), errf(ErrRuntime, "MOD: division by zero")
				}
				return Null(), nil
			}
			return Int(toInt(a[0]) % d), nil
		})})
	identity := nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
		return Int(toInt(a[0])), nil
	})
	for _, n := range []string{"ROUND", "CEIL", "FLOOR", "TRUNC"} {
		reg(&FuncDef{Name: n, MinArgs: 1, MaxArgs: 1, ArgKinds: ints, Result: KindInt, Impl: identity})
	}
	reg(&FuncDef{Name: "SQRT", MinArgs: 1, MaxArgs: 1, ArgKinds: ints, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			v := toInt(a[0])
			if v < 0 {
				return domainError(ctx, "SQRT")
			}
			return Int(int64(math.Round(math.Sqrt(float64(v))))), nil
		})})
	powImpl := nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
		base, exp := toInt(a[0]), toInt(a[1])
		if exp < 0 {
			return domainError(ctx, "POWER")
		}
		if exp > 62 {
			return domainError(ctx, "POWER")
		}
		var out int64 = 1
		for i := int64(0); i < exp; i++ {
			out *= base // deterministic wraparound on overflow
		}
		return Int(out), nil
	})
	reg(&FuncDef{Name: "POWER", MinArgs: 2, MaxArgs: 2, ArgKinds: ints, Result: KindInt, Impl: powImpl})
	reg(&FuncDef{Name: "POW", MinArgs: 2, MaxArgs: 2, ArgKinds: ints, Result: KindInt, Impl: powImpl})
	reg(&FuncDef{Name: "EXP", MinArgs: 1, MaxArgs: 1, ArgKinds: ints, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			v := toInt(a[0])
			if v > 30 { // e^31 * 1000 would overflow int64
				return domainError(ctx, "EXP")
			}
			return fixed(math.Exp(float64(v))), nil
		})})
	logf := func(name string, f func(float64) float64) {
		reg(&FuncDef{Name: name, MinArgs: 1, MaxArgs: 1, ArgKinds: ints, Result: KindInt,
			Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
				v := toInt(a[0])
				if v <= 0 {
					return domainError(ctx, name)
				}
				return fixed(f(float64(v))), nil
			})})
	}
	logf("LN", math.Log)
	logf("LOG", math.Log)
	logf("LOG10", math.Log10)
	logf("LOG2", math.Log2)
	trig := func(name string, f func(float64) float64) {
		reg(&FuncDef{Name: name, MinArgs: 1, MaxArgs: 1, ArgKinds: ints, Result: KindInt,
			Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
				return fixed(f(float64(toInt(a[0])))), nil
			})})
	}
	trig("SIN", math.Sin)
	trig("COS", math.Cos)
	trig("TAN", math.Tan)
	reg(&FuncDef{Name: "COT", MinArgs: 1, MaxArgs: 1, ArgKinds: ints, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			t := math.Tan(float64(toInt(a[0])))
			if t == 0 {
				return domainError(ctx, "COT")
			}
			return fixed(1 / t), nil
		})})
	arc := func(name string, f func(float64) float64) {
		// Fixed-point domain: |x| <= 1000 represents |x| <= 1.0, so
		// ASIN(1) succeeds while ASIN(2) fails — the paper's §4 example of
		// a context-dependent failure.
		reg(&FuncDef{Name: name, MinArgs: 1, MaxArgs: 1, ArgKinds: ints, Result: KindInt,
			Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
				v := toInt(a[0])
				if v < -scale || v > scale {
					return domainError(ctx, name)
				}
				return fixed(f(float64(v) / scale)), nil
			})})
	}
	arc("ASIN", math.Asin)
	arc("ACOS", math.Acos)
	reg(&FuncDef{Name: "ATAN", MinArgs: 1, MaxArgs: 1, ArgKinds: ints, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			return fixed(math.Atan(float64(toInt(a[0])))), nil
		})})
	reg(&FuncDef{Name: "ATAN2", MinArgs: 2, MaxArgs: 2, ArgKinds: ints, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			return fixed(math.Atan2(float64(toInt(a[0])), float64(toInt(a[1])))), nil
		})})
	reg(&FuncDef{Name: "DEGREES", MinArgs: 1, MaxArgs: 1, ArgKinds: ints, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			return Int(int64(math.Round(float64(toInt(a[0])) * 180 / math.Pi))), nil
		})})
	reg(&FuncDef{Name: "RADIANS", MinArgs: 1, MaxArgs: 1, ArgKinds: ints, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			return Int(int64(math.Round(float64(toInt(a[0])) * math.Pi / 180 * scale))), nil
		})})
	reg(&FuncDef{Name: "PI", MinArgs: 0, MaxArgs: 0, Result: KindInt,
		Impl: func(ctx *evalCtx, a []Value) (Value, *Error) { return Int(3142), nil }})
	gcd := func(a, b int64) int64 {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		for b != 0 {
			a, b = b, a%b
		}
		return a
	}
	reg(&FuncDef{Name: "GCD", MinArgs: 2, MaxArgs: 2, ArgKinds: ints, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			return Int(gcd(toInt(a[0]), toInt(a[1]))), nil
		})})
	reg(&FuncDef{Name: "LCM", MinArgs: 2, MaxArgs: 2, ArgKinds: ints, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			x, y := toInt(a[0]), toInt(a[1])
			g := gcd(x, y)
			if g == 0 {
				return Int(0), nil
			}
			return Int(x / g * y), nil
		})})
}

func registerStringFuncs() {
	texts := []Kind{KindText}
	reg(&FuncDef{Name: "LENGTH", MinArgs: 1, MaxArgs: 1, ArgKinds: texts, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			return Int(int64(len([]rune(toText(a[0]))))), nil
		})})
	reg(&FuncDef{Name: "CHAR_LENGTH", MinArgs: 1, MaxArgs: 1, ArgKinds: texts, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			return Int(int64(len([]rune(toText(a[0]))))), nil
		})})
	reg(&FuncDef{Name: "BIT_LENGTH", MinArgs: 1, MaxArgs: 1, ArgKinds: texts, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			return Int(8 * int64(len(toText(a[0])))), nil
		})})
	reg(&FuncDef{Name: "OCTET_LENGTH", MinArgs: 1, MaxArgs: 1, ArgKinds: texts, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			return Int(int64(len(toText(a[0])))), nil
		})})
	strFn := func(name string, f func(string) string) {
		reg(&FuncDef{Name: name, MinArgs: 1, MaxArgs: 1, ArgKinds: texts, Result: KindText,
			Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
				return Text(f(toText(a[0]))), nil
			})})
	}
	strFn("LOWER", strings.ToLower)
	strFn("UPPER", strings.ToUpper)
	strFn("TRIM", strings.TrimSpace)
	strFn("LTRIM", func(s string) string { return strings.TrimLeft(s, " ") })
	strFn("RTRIM", func(s string) string { return strings.TrimRight(s, " ") })
	strFn("REVERSE", func(s string) string {
		r := []rune(s)
		for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
			r[i], r[j] = r[j], r[i]
		}
		return string(r)
	})
	strFn("INITCAP", func(s string) string {
		var sb strings.Builder
		up := true
		for _, r := range s {
			if up && r >= 'a' && r <= 'z' {
				r -= 32
			} else if !up && r >= 'A' && r <= 'Z' {
				r += 32
			}
			up = r == ' '
			sb.WriteRune(r)
		}
		return sb.String()
	})
	reg(&FuncDef{Name: "REPLACE", MinArgs: 3, MaxArgs: 3, ArgKinds: texts, Result: KindText,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			s, from, to := toText(a[0]), toText(a[1]), toText(a[2])
			if from == "" {
				return Text(s), nil
			}
			return Text(strings.ReplaceAll(s, from, to)), nil
		})})
	reg(&FuncDef{Name: "SUBSTR", MinArgs: 2, MaxArgs: 3,
		ArgKinds: []Kind{KindText, KindInt, KindInt}, Result: KindText,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			r := []rune(toText(a[0]))
			start := toInt(a[1])
			length := int64(len(r))
			if len(a) == 3 {
				length = toInt(a[2])
			}
			if length < 0 {
				length = 0
			}
			// 1-based start; non-positive counts from 1.
			if start < 1 {
				start = 1
			}
			i := start - 1
			if i >= int64(len(r)) {
				return Text(""), nil
			}
			j := i + length
			if j > int64(len(r)) {
				j = int64(len(r))
			}
			return Text(string(r[i:j])), nil
		})})
	instr := nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
		idx := strings.Index(toText(a[0]), toText(a[1]))
		return Int(int64(idx) + 1), nil
	})
	reg(&FuncDef{Name: "INSTR", MinArgs: 2, MaxArgs: 2, ArgKinds: texts, Result: KindInt, Impl: instr})
	reg(&FuncDef{Name: "STRPOS", MinArgs: 2, MaxArgs: 2, ArgKinds: texts, Result: KindInt, Impl: instr})
	reg(&FuncDef{Name: "HEX", MinArgs: 1, MaxArgs: 1, ArgKinds: texts, Result: KindText,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			const digits = "0123456789ABCDEF"
			s := toText(a[0])
			var sb strings.Builder
			for i := 0; i < len(s); i++ {
				sb.WriteByte(digits[s[i]>>4])
				sb.WriteByte(digits[s[i]&0xf])
			}
			return Text(sb.String()), nil
		})})
	reg(&FuncDef{Name: "QUOTE", MinArgs: 1, MaxArgs: 1, ArgKinds: []Kind{KindNull}, Result: KindText,
		Impl: func(ctx *evalCtx, a []Value) (Value, *Error) {
			if a[0].K == KindText {
				return Text("'" + strings.ReplaceAll(a[0].S, "'", "''") + "'"), nil
			}
			return Text(a[0].Render()), nil
		}})
	reg(&FuncDef{Name: "ASCII", MinArgs: 1, MaxArgs: 1, ArgKinds: texts, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			s := toText(a[0])
			if s == "" {
				return Int(0), nil
			}
			return Int(int64(s[0])), nil
		})})
	reg(&FuncDef{Name: "CHR", MinArgs: 1, MaxArgs: 1, ArgKinds: []Kind{KindInt}, Result: KindText,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			v := toInt(a[0])
			if v <= 0 || v > 0x10FFFF {
				return Text(""), nil
			}
			return Text(string(rune(v))), nil
		})})
	reg(&FuncDef{Name: "UNICODE", MinArgs: 1, MaxArgs: 1, ArgKinds: texts, Result: KindInt,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			s := toText(a[0])
			if s == "" {
				return Null(), nil
			}
			return Int(int64([]rune(s)[0])), nil
		})})
	reg(&FuncDef{Name: "SPACE", MinArgs: 1, MaxArgs: 1, ArgKinds: []Kind{KindInt}, Result: KindText,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			n := toInt(a[0])
			if n < 0 {
				n = 0
			}
			if n > 100 {
				n = 100
			}
			return Text(strings.Repeat(" ", int(n))), nil
		})})
	reg(&FuncDef{Name: "SPLIT_PART", MinArgs: 3, MaxArgs: 3,
		ArgKinds: []Kind{KindText, KindText, KindInt}, Result: KindText,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			delim := toText(a[1])
			n := toInt(a[2])
			if delim == "" || n < 1 {
				return Text(""), nil
			}
			parts := strings.Split(toText(a[0]), delim)
			if n > int64(len(parts)) {
				return Text(""), nil
			}
			return Text(parts[n-1]), nil
		})})
	reg(&FuncDef{Name: "TRANSLATE", MinArgs: 3, MaxArgs: 3, ArgKinds: texts, Result: KindText,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			from := []rune(toText(a[1]))
			to := []rune(toText(a[2]))
			var sb strings.Builder
			for _, r := range toText(a[0]) {
				idx := -1
				for i, f := range from {
					if f == r {
						idx = i
						break
					}
				}
				if idx < 0 {
					sb.WriteRune(r)
				} else if idx < len(to) {
					sb.WriteRune(to[idx])
				}
			}
			return Text(sb.String()), nil
		})})
	pad := func(name string, left bool) {
		reg(&FuncDef{Name: name, MinArgs: 2, MaxArgs: 3,
			ArgKinds: []Kind{KindText, KindInt, KindText}, Result: KindText,
			Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
				s := []rune(toText(a[0]))
				n := toInt(a[1])
				if n < 0 {
					n = 0
				}
				if n > 200 {
					n = 200
				}
				p := " "
				if len(a) == 3 {
					p = toText(a[2])
				}
				if int64(len(s)) >= n {
					return Text(string(s[:n])), nil
				}
				if p == "" {
					return Text(string(s)), nil
				}
				fill := []rune(strings.Repeat(p, int(n)))[:n-int64(len(s))]
				if left {
					return Text(string(fill) + string(s)), nil
				}
				return Text(string(s) + string(fill)), nil
			})})
	}
	pad("LPAD", true)
	pad("RPAD", false)
}

func registerConditionalFuncs() {
	reg(&FuncDef{Name: "NULLIF", MinArgs: 2, MaxArgs: 2, ArgKinds: []Kind{KindNull}, Result: KindNull,
		Impl: func(ctx *evalCtx, a []Value) (Value, *Error) {
			if a[0].IsNull() || a[1].IsNull() {
				return a[0], nil
			}
			if numericKind(a[0].K) == numericKind(a[1].K) && Compare(a[0], a[1]) == 0 {
				return Null(), nil
			}
			return a[0], nil
		}})
	coalesce := func(ctx *evalCtx, a []Value) (Value, *Error) {
		for _, v := range a {
			if !v.IsNull() {
				return v, nil
			}
		}
		return Null(), nil
	}
	reg(&FuncDef{Name: "COALESCE", MinArgs: 2, MaxArgs: -1, ArgKinds: []Kind{KindNull}, Result: KindNull, Impl: coalesce})
	reg(&FuncDef{Name: "IFNULL", MinArgs: 2, MaxArgs: 2, ArgKinds: []Kind{KindNull}, Result: KindNull, Impl: coalesce})
	reg(&FuncDef{Name: "IIF", MinArgs: 3, MaxArgs: 3,
		ArgKinds: []Kind{KindBool, KindNull, KindNull}, Result: KindNull,
		Impl: func(ctx *evalCtx, a []Value) (Value, *Error) {
			if truthiness(a[0]) == TriTrue {
				return a[1], nil
			}
			return a[2], nil
		}})
	reg(&FuncDef{Name: "TYPEOF", MinArgs: 1, MaxArgs: 1, ArgKinds: []Kind{KindNull}, Result: KindText,
		Impl: func(ctx *evalCtx, a []Value) (Value, *Error) {
			return Text(strings.ToLower(a[0].K.String())), nil
		}})
}

func registerExtraFuncs() {
	pick := func(name string, want int) { // GREATEST / LEAST
		reg(&FuncDef{Name: name, MinArgs: 2, MaxArgs: -1, ArgKinds: []Kind{KindNull}, Result: KindNull,
			Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
				best := a[0]
				for _, v := range a[1:] {
					if Compare(v, best) == want {
						best = v
					}
				}
				return best, nil
			})})
	}
	pick("GREATEST", 1)
	pick("LEAST", -1)
	reg(&FuncDef{Name: "CONCAT", MinArgs: 1, MaxArgs: -1, ArgKinds: []Kind{KindText}, Result: KindText,
		Impl: func(ctx *evalCtx, a []Value) (Value, *Error) {
			var sb strings.Builder
			for _, v := range a {
				if !v.IsNull() {
					sb.WriteString(toText(v))
				}
			}
			return Text(sb.String()), nil
		}})
	reg(&FuncDef{Name: "CONCAT_WS", MinArgs: 2, MaxArgs: -1, ArgKinds: []Kind{KindText}, Result: KindText,
		Impl: func(ctx *evalCtx, a []Value) (Value, *Error) {
			if a[0].IsNull() {
				return Null(), nil
			}
			sep := toText(a[0])
			parts := make([]string, 0, len(a)-1)
			for _, v := range a[1:] {
				if !v.IsNull() {
					parts = append(parts, toText(v))
				}
			}
			return Text(strings.Join(parts, sep)), nil
		}})
	reg(&FuncDef{Name: "REPEAT", MinArgs: 2, MaxArgs: 2,
		ArgKinds: []Kind{KindText, KindInt}, Result: KindText,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			n := toInt(a[1])
			if n < 0 {
				n = 0
			}
			if n > 50 {
				n = 50
			}
			return Text(strings.Repeat(toText(a[0]), int(n))), nil
		})})
	reg(&FuncDef{Name: "ELT", MinArgs: 2, MaxArgs: -1,
		ArgKinds: []Kind{KindInt, KindText}, Result: KindText,
		Impl: func(ctx *evalCtx, a []Value) (Value, *Error) {
			if a[0].IsNull() {
				return Null(), nil
			}
			n := toInt(a[0])
			if n < 1 || n > int64(len(a)-1) {
				return Null(), nil
			}
			return a[n], nil
		}})
	reg(&FuncDef{Name: "FIELD", MinArgs: 2, MaxArgs: -1, ArgKinds: []Kind{KindNull}, Result: KindInt,
		Impl: func(ctx *evalCtx, a []Value) (Value, *Error) {
			if a[0].IsNull() {
				return Int(0), nil
			}
			for i, v := range a[1:] {
				if !v.IsNull() && Equal(a[0], v) {
					return Int(int64(i) + 1), nil
				}
			}
			return Int(0), nil
		}})
	baseConv := func(name string, base int) {
		reg(&FuncDef{Name: name, MinArgs: 1, MaxArgs: 1, ArgKinds: []Kind{KindInt}, Result: KindText,
			Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
				return Text(strconv.FormatUint(uint64(toInt(a[0])), base)), nil
			})})
	}
	baseConv("BIN", 2)
	baseConv("OCT", 8)
	reg(&FuncDef{Name: "TO_HEX", MinArgs: 1, MaxArgs: 1, ArgKinds: []Kind{KindInt}, Result: KindText,
		Impl: nullPropagate(func(ctx *evalCtx, a []Value) (Value, *Error) {
			return Text(strconv.FormatUint(uint64(toInt(a[0])), 16)), nil
		})})
	reg(&FuncDef{Name: "PRINTF", MinArgs: 1, MaxArgs: -1, ArgKinds: []Kind{KindText, KindNull}, Result: KindText,
		Impl: func(ctx *evalCtx, a []Value) (Value, *Error) {
			if a[0].IsNull() {
				return Null(), nil
			}
			format := toText(a[0])
			var sb strings.Builder
			argi := 1
			for i := 0; i < len(format); i++ {
				c := format[i]
				if c != '%' || i+1 >= len(format) {
					sb.WriteByte(c)
					continue
				}
				i++
				switch format[i] {
				case '%':
					sb.WriteByte('%')
				case 'd':
					if argi < len(a) {
						sb.WriteString(strconv.FormatInt(toInt(a[argi]), 10))
						argi++
					}
				case 's':
					if argi < len(a) {
						sb.WriteString(toText(a[argi]))
						argi++
					}
				default:
					sb.WriteByte(format[i])
				}
			}
			return Text(sb.String()), nil
		}})
	passthrough := func(ctx *evalCtx, a []Value) (Value, *Error) { return a[0], nil }
	reg(&FuncDef{Name: "LIKELY", MinArgs: 1, MaxArgs: 1, ArgKinds: []Kind{KindNull}, Result: KindNull, Impl: passthrough})
	reg(&FuncDef{Name: "UNLIKELY", MinArgs: 1, MaxArgs: 1, ArgKinds: []Kind{KindNull}, Result: KindNull, Impl: passthrough})
}
