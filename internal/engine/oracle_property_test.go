package engine_test

// Property-based soundness tests: on a fault-free engine, the TLP
// partitioning property and the NoREC equivalence are invariants for
// *every* database state and predicate. These tests drive the adaptive
// generator against pristine instances of representative dialects and
// fail on any counterexample — which would be a genuine bug in the
// engine (or generator), exactly the class of defect the oracles exist
// to find.

import (
	"testing"

	"sqlancerpp/internal/core/gen"
	"sqlancerpp/internal/core/oracle"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
)

func propertyRun(t *testing.T, dialectName string, seed int64, cases int) {
	t.Helper()
	d := dialect.MustGet(dialectName)
	g := gen.New(gen.Config{Seed: seed, StartDepth: 2, MaxDepth: 3, DepthInterval: 200})
	db := engine.Open(d, engine.WithoutFaults())
	for i := 0; i < 25; i++ {
		st := g.GenSetup()
		if err := db.Exec(st.SQL); err == nil && st.OnSuccess != nil {
			st.OnSuccess()
		}
	}
	for i := 0; i < cases; i++ {
		oc := g.GenOracleCase()
		if oc == nil {
			continue
		}
		var res oracle.Result
		switch i % 4 {
		case 0:
			res = oracle.TLP(db, oc.Base, oc.Pred)
		case 1:
			res = oracle.NoREC(db, oc.Base, oc.Pred)
		case 2:
			res = oracle.TLPComposed(db, oc.Base, oc.Pred)
		default:
			res = oracle.TLPAggregate(db, oc.Base, oc.Pred, i)
		}
		if res.Outcome == oracle.Bug {
			t.Fatalf("%s: %s reported a bug on a clean engine: %s\nqueries:\n  %s\n  %s",
				dialectName, res.Oracle, res.Detail,
				res.Queries[0], res.Queries[len(res.Queries)-1])
		}
	}
}

func TestTLPNoRECInvariantsDynamic(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		propertyRun(t, "sqlite", seed, 700)
	}
}

func TestTLPNoRECInvariantsStatic(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		propertyRun(t, "postgresql", seed, 700)
	}
}

func TestTLPNoRECInvariantsMySQLFamily(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		propertyRun(t, "mysql", seed, 700)
	}
}

func TestTLPNoRECInvariantsAllPaperDBMSs(t *testing.T) {
	if testing.Short() {
		t.Skip("long soundness sweep")
	}
	for _, name := range dialect.PaperDBMSs {
		propertyRun(t, name, 11, 300)
	}
}

// TestOracleStatementsDeterministic re-executes the same oracle query
// twice and expects identical rows — nondeterminism would break every
// oracle.
func TestOracleStatementsDeterministic(t *testing.T) {
	d := dialect.MustGet("sqlite")
	g := gen.New(gen.Config{Seed: 99, StartDepth: 3, MaxDepth: 3})
	db := engine.Open(d, engine.WithoutFaults())
	for i := 0; i < 25; i++ {
		st := g.GenSetup()
		if err := db.Exec(st.SQL); err == nil && st.OnSuccess != nil {
			st.OnSuccess()
		}
	}
	for i := 0; i < 300; i++ {
		oc := g.GenOracleCase()
		if oc == nil {
			continue
		}
		sel := oc.Base
		sel.Where = oc.Pred
		sql := sel.SQL()
		r1, err1 := db.Query(sql)
		r2, err2 := db.Query(sql)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error for %s: %v vs %v", sql, err1, err2)
		}
		if err1 != nil {
			continue
		}
		a, b := r1.RenderRows(), r2.RenderRows()
		if len(a) != len(b) {
			t.Fatalf("nondeterministic row count for %s", sql)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("nondeterministic row %d for %s: %q vs %q", j, sql, a[j], b[j])
			}
		}
	}
}
