package engine

import (
	"strings"
	"testing"
)

// rowsOf renders query results for compact comparison.
func rowsOf(t *testing.T, db *DB, sql string) []string {
	t.Helper()
	res := mustQuery(t, db, sql)
	return res.RenderRows()
}

func expectRows(t *testing.T, db *DB, sql string, want ...string) {
	t.Helper()
	got := rowsOf(t, db, sql)
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", sql, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %q, want %q", sql, i, got[i], want[i])
		}
	}
}

func joinFixture(t *testing.T) *DB {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE l (a INTEGER)")
	mustExec(t, db, "CREATE TABLE r (b INTEGER)")
	mustExec(t, db, "INSERT INTO l (a) VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO r (b) VALUES (2), (3)")
	return db
}

func TestJoins(t *testing.T) {
	db := joinFixture(t)
	expectRows(t, db, "SELECT * FROM l INNER JOIN r ON l.a = r.b", "2|2")
	expectRows(t, db, "SELECT * FROM l LEFT JOIN r ON l.a = r.b ORDER BY a",
		"1|NULL", "2|2")
	expectRows(t, db, "SELECT * FROM l RIGHT JOIN r ON l.a = r.b ORDER BY b",
		"2|2", "NULL|3")
	expectRows(t, db, "SELECT * FROM l FULL JOIN r ON l.a = r.b ORDER BY a, b",
		"NULL|3", "1|NULL", "2|2")
	expectRows(t, db, "SELECT COUNT(*) FROM l CROSS JOIN r", "4")
	expectRows(t, db, "SELECT COUNT(*) FROM l, r", "4")
	// ON TRUE behaves as a cross join.
	expectRows(t, db, "SELECT COUNT(*) FROM l INNER JOIN r ON TRUE", "4")
}

func TestNaturalJoin(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE x (k INTEGER, v TEXT)")
	mustExec(t, db, "CREATE TABLE y (k INTEGER, w TEXT)")
	mustExec(t, db, "INSERT INTO x (k, v) VALUES (1, 'a'), (2, 'b')")
	mustExec(t, db, "INSERT INTO y (k, w) VALUES (2, 'B'), (3, 'C')")
	expectRows(t, db, "SELECT x.v, y.w FROM x NATURAL JOIN y", "'b'|'B'")
	// No shared columns: behaves as a cross join.
	mustExec(t, db, "CREATE TABLE z (q INTEGER)")
	mustExec(t, db, "INSERT INTO z (q) VALUES (9)")
	expectRows(t, db, "SELECT COUNT(*) FROM x NATURAL JOIN z", "2")
}

func TestDistinctOrderLimit(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE t (c INTEGER)")
	mustExec(t, db, "INSERT INTO t (c) VALUES (3), (1), (3), (NULL), (2)")
	expectRows(t, db, "SELECT DISTINCT c FROM t ORDER BY c", "NULL", "1", "2", "3")
	expectRows(t, db, "SELECT c FROM t ORDER BY c DESC LIMIT 2", "3", "3")
	expectRows(t, db, "SELECT c FROM t ORDER BY c LIMIT 2 OFFSET 1", "1", "2")
	expectRows(t, db, "SELECT c FROM t ORDER BY c LIMIT 0")
	// ORDER BY may reference columns not in the projection.
	mustExec(t, db, "CREATE TABLE u (a INTEGER, b INTEGER)")
	mustExec(t, db, "INSERT INTO u (a, b) VALUES (1, 9), (2, 8)")
	expectRows(t, db, "SELECT a FROM u ORDER BY b", "2", "1")
}

func TestGroupByHavingAggregates(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE t (g INTEGER, v INTEGER)")
	mustExec(t, db, "INSERT INTO t (g, v) VALUES (1, 10), (1, 20), (2, 5), (2, NULL)")
	expectRows(t, db, "SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g ORDER BY g",
		"1|2|30", "2|2|5")
	expectRows(t, db, "SELECT g, COUNT(v) FROM t GROUP BY g ORDER BY g",
		"1|2", "2|1")
	expectRows(t, db, "SELECT g FROM t GROUP BY g HAVING SUM(v) > 10", "1")
	expectRows(t, db, "SELECT MIN(v), MAX(v), AVG(v) FROM t", "5|20|11")
	// Aggregates over an empty relation.
	mustExec(t, db, "CREATE TABLE e (c INTEGER)")
	expectRows(t, db, "SELECT COUNT(*), SUM(c), MIN(c) FROM e", "0|NULL|NULL")
	// COUNT(DISTINCT x).
	expectRows(t, db, "SELECT COUNT(DISTINCT g) FROM t", "2")
	// Aggregates are rejected in WHERE.
	if err := db.Exec("SELECT g FROM t WHERE SUM(v) > 1"); err == nil {
		t.Fatal("aggregate in WHERE must be rejected")
	}
}

func TestViewsAndDerivedTables(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE t (c INTEGER)")
	mustExec(t, db, "INSERT INTO t (c) VALUES (1), (2)")
	mustExec(t, db, "CREATE VIEW v (d) AS SELECT c * 10 FROM t")
	expectRows(t, db, "SELECT d FROM v ORDER BY d", "10", "20")
	expectRows(t, db, "SELECT * FROM (SELECT c FROM t WHERE c > 1) AS sub", "2")
	// Views layered on views.
	mustExec(t, db, "CREATE VIEW w AS SELECT d + 1 AS e FROM v")
	expectRows(t, db, "SELECT e FROM w ORDER BY e", "11", "21")
	// Duplicate names are rejected.
	if err := db.Exec("CREATE VIEW v AS SELECT 1"); err == nil {
		t.Fatal("duplicate view name must be rejected")
	}
	if err := db.Exec("CREATE TABLE v (x INTEGER)"); err == nil {
		t.Fatal("table name colliding with view must be rejected")
	}
	mustExec(t, db, "DROP VIEW w")
	if err := db.Exec("SELECT * FROM w"); err == nil {
		t.Fatal("dropped view must be gone")
	}
}

func TestConstraints(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, u TEXT UNIQUE, n INTEGER NOT NULL)")
	mustExec(t, db, "INSERT INTO t (id, u, n) VALUES (1, 'a', 0)")
	for _, bad := range []string{
		"INSERT INTO t (id, u, n) VALUES (1, 'b', 0)",    // PK dup
		"INSERT INTO t (id, u, n) VALUES (2, 'a', 0)",    // UNIQUE dup
		"INSERT INTO t (id, u, n) VALUES (3, 'c', NULL)", // NOT NULL
		"INSERT INTO t (u, n) VALUES ('d', 0)",           // PK implied NOT NULL
	} {
		err := db.Exec(bad)
		if err == nil || ClassOf(err) != ErrConstraint {
			t.Fatalf("%s: want constraint error, got %v", bad, err)
		}
	}
	// NULLs never conflict on UNIQUE columns.
	mustExec(t, db, "INSERT INTO t (id, u, n) VALUES (2, NULL, 0)")
	mustExec(t, db, "INSERT INTO t (id, u, n) VALUES (3, NULL, 0)")
	// OR IGNORE skips conflicting rows.
	mustExec(t, db, "INSERT OR IGNORE INTO t (id, u, n) VALUES (1, 'x', 0), (4, 'y', 0)")
	expectRows(t, db, "SELECT COUNT(*) FROM t", "4")
	// Multi-row inserts roll back atomically on conflict.
	err := db.Exec("INSERT INTO t (id, u, n) VALUES (5, 'p', 0), (5, 'q', 0)")
	if err == nil {
		t.Fatal("conflict inside one INSERT must fail")
	}
	expectRows(t, db, "SELECT COUNT(*) FROM t", "4")
}

func TestUniqueIndexEnforcement(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 1), (1, 2)")
	// Creating a unique index over duplicate data fails.
	if err := db.Exec("CREATE UNIQUE INDEX i ON t (a)"); err == nil {
		t.Fatal("unique index over duplicates must fail")
	}
	mustExec(t, db, "CREATE UNIQUE INDEX i ON t (a, b)")
	if err := db.Exec("INSERT INTO t (a, b) VALUES (1, 2)"); err == nil {
		t.Fatal("unique index must reject duplicate tuple")
	}
	// Partial unique index only constrains covered rows.
	mustExec(t, db, "CREATE UNIQUE INDEX p ON t (b) WHERE a > 5")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (2, 1)") // not covered
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (6, 9)")
	if err := db.Exec("INSERT INTO t (a, b) VALUES (7, 9)"); err == nil {
		t.Fatal("partial unique index must reject covered duplicate")
	}
}

func TestUpdateDelete(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (3, 'z')")
	mustExec(t, db, "UPDATE t SET b = 'Q' WHERE a >= 2")
	expectRows(t, db, "SELECT b FROM t ORDER BY a", "'x'", "'Q'", "'Q'")
	mustExec(t, db, "UPDATE t SET a = a * 10")
	expectRows(t, db, "SELECT a FROM t ORDER BY a", "10", "20", "30")
	mustExec(t, db, "DELETE FROM t WHERE a = 20")
	expectRows(t, db, "SELECT COUNT(*) FROM t", "2")
	mustExec(t, db, "DELETE FROM t")
	expectRows(t, db, "SELECT COUNT(*) FROM t", "0")
	// UPDATE violating a constraint rolls back entirely.
	mustExec(t, db, "CREATE TABLE u (k INTEGER PRIMARY KEY)")
	mustExec(t, db, "INSERT INTO u (k) VALUES (1), (2)")
	if err := db.Exec("UPDATE u SET k = 9"); err == nil {
		t.Fatal("update creating duplicate PK must fail")
	}
	expectRows(t, db, "SELECT k FROM u ORDER BY k", "1", "2")
}

func TestAlterTable(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1)")
	mustExec(t, db, "ALTER TABLE t ADD COLUMN b TEXT")
	expectRows(t, db, "SELECT * FROM t", "1|NULL")
	// Adding NOT NULL to a non-empty table fails.
	if err := db.Exec("ALTER TABLE t ADD COLUMN c INTEGER NOT NULL"); err == nil {
		t.Fatal("ALTER ADD NOT NULL on non-empty table must fail")
	}
	mustExec(t, db, "ALTER TABLE t DROP COLUMN b")
	expectRows(t, db, "SELECT * FROM t", "1")
	if err := db.Exec("ALTER TABLE t DROP COLUMN a"); err == nil {
		t.Fatal("dropping the only column must fail")
	}
	// Dropping a column used by an index fails.
	mustExec(t, db, "ALTER TABLE t ADD COLUMN d INTEGER")
	mustExec(t, db, "CREATE INDEX i ON t (d)")
	if err := db.Exec("ALTER TABLE t DROP COLUMN d"); err == nil {
		t.Fatal("dropping an indexed column must fail")
	}
}

func TestCorrelatedSubqueries(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE o (k INTEGER)")
	mustExec(t, db, "CREATE TABLE i (k INTEGER)")
	mustExec(t, db, "INSERT INTO o (k) VALUES (1), (2), (3)")
	mustExec(t, db, "INSERT INTO i (k) VALUES (2), (3), (4)")
	expectRows(t, db,
		"SELECT o.k FROM o WHERE EXISTS (SELECT * FROM i WHERE i.k = o.k) ORDER BY o.k",
		"2", "3")
	expectRows(t, db,
		"SELECT o.k FROM o WHERE NOT EXISTS (SELECT * FROM i WHERE i.k = o.k)",
		"1")
}

func TestSelectWithoutFrom(t *testing.T) {
	db := openClean(t, "sqlite")
	expectRows(t, db, "SELECT 1, 'x', TRUE", "1|'x'|TRUE")
	if err := db.Exec("SELECT *"); err == nil {
		t.Fatal("SELECT * without FROM must fail")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE a (c INTEGER)")
	mustExec(t, db, "CREATE TABLE b (c INTEGER)")
	err := db.Exec("SELECT c FROM a, b")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("want ambiguity error, got %v", err)
	}
	mustExec(t, db, "SELECT a.c FROM a, b")
	// Self-join requires an alias.
	if err := db.Exec("SELECT a.c FROM a, a"); err == nil {
		t.Fatal("duplicate alias must be rejected")
	}
	mustExec(t, db, "SELECT s.c FROM a, a AS s")
}

func TestAnalyzeAndDrop(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE t (c INTEGER)")
	mustExec(t, db, "ANALYZE")
	mustExec(t, db, "ANALYZE t")
	if err := db.Exec("ANALYZE nope"); err == nil {
		t.Fatal("ANALYZE of a missing table must fail")
	}
	mustExec(t, db, "CREATE INDEX i ON t (c)")
	mustExec(t, db, "DROP TABLE t")
	if err := db.Exec("SELECT * FROM t"); err == nil {
		t.Fatal("dropped table must be gone")
	}
	// The index died with the table, so its name is reusable.
	mustExec(t, db, "CREATE TABLE t (c INTEGER)")
	mustExec(t, db, "CREATE INDEX i ON t (c)")
}

func TestQueryColumnNames(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	res := mustQuery(t, db, "SELECT a, b AS bee, a + 1 FROM t")
	want := []string{"a", "bee", "col3"}
	if len(res.Columns) != len(want) {
		t.Fatalf("columns %v, want %v", res.Columns, want)
	}
	for i := range want {
		if res.Columns[i] != want[i] {
			t.Fatalf("column %d = %q, want %q", i, res.Columns[i], want[i])
		}
	}
}

func TestCrashedServerNeedsRestart(t *testing.T) {
	// TiDB's "~" crash fault (with injection enabled).
	d := mustDialect(t, "tidb")
	db := Open(d)
	mustExec(t, db, "CREATE TABLE t (c INTEGER)")
	err := db.Exec("SELECT ~ 1")
	if !IsCrash(err) {
		t.Fatalf("want crash, got %v", err)
	}
	if !db.Crashed() {
		t.Fatal("server must be down after a crash")
	}
	if err := db.Exec("SELECT 1"); !IsCrash(err) {
		t.Fatalf("crashed server must refuse statements, got %v", err)
	}
	db.Restart()
	mustExec(t, db, "SELECT 1")
	// Storage survived the restart.
	expectRows(t, db, "SELECT COUNT(*) FROM t", "0")
}
