package engine

import (
	"reflect"
	"testing"

	"sqlancerpp/internal/sqlparse"
)

func scan(t *testing.T, sql string) []string {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return ScanFeatures(st)
}

func TestScanFeatures(t *testing.T) {
	cases := map[string][]string{
		"CREATE TABLE t (a INTEGER NOT NULL, b BOOLEAN, PRIMARY KEY (a))": {
			"BOOLEAN", "CREATE TABLE", "INTEGER", "NOT NULL", "PRIMARY KEY"},
		"CREATE UNIQUE INDEX i ON t (a) WHERE a > 1": {
			">", "COLUMN", "CONSTANT", "CREATE INDEX", "PARTIAL INDEX", "UNIQUE INDEX"},
		"SELECT DISTINCT a FROM t LEFT JOIN u ON TRUE WHERE NULLIF(a, 1) != 2 ORDER BY a LIMIT 1 OFFSET 2": {
			"!=", "BOOLEAN", "COLUMN", "CONSTANT", "DISTINCT", "LEFT JOIN", "LIMIT",
			"NULLIF", "OFFSET", "ORDER BY", "SELECT", "WHERE"},
		"SELECT a FROM t UNION ALL SELECT a FROM u": {
			"COLUMN", "SELECT", "UNION ALL"},
		"INSERT OR IGNORE INTO t (a) VALUES (1), (2)": {
			"CONSTANT", "INSERT", "INSERT OR IGNORE", "MULTI-ROW INSERT"},
		"SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 0": {
			">", "COLUMN", "CONSTANT", "COUNT", "GROUP BY", "HAVING", "SELECT"},
		"REFRESH TABLE t": {"REFRESH TABLE"},
	}
	for sql, want := range cases {
		got := scan(t, sql)
		// COLUMN/CONSTANT markers come from the generator, not the
		// scanner: drop them from the expectation where absent.
		filtered := want[:0:0]
		gotSet := map[string]bool{}
		for _, f := range got {
			gotSet[f] = true
		}
		for _, f := range want {
			if f == "COLUMN" || f == "CONSTANT" {
				continue
			}
			filtered = append(filtered, f)
		}
		for _, f := range filtered {
			if !gotSet[f] {
				t.Errorf("%s: missing feature %q in %v", sql, f, got)
			}
		}
	}
}

func TestScanFeaturesNestedSubquery(t *testing.T) {
	got := scan(t, "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.b GLOB '*')")
	want := map[string]bool{"EXISTS": true, "GLOB": true, "WHERE": true, "SELECT": true}
	gotSet := map[string]bool{}
	for _, f := range got {
		gotSet[f] = true
	}
	for f := range want {
		if !gotSet[f] {
			t.Errorf("missing %q in %v", f, got)
		}
	}
}

func TestExprDepth(t *testing.T) {
	cases := map[string]int{
		"1":                     1,
		"1 + 2":                 2,
		"(1 + 2) * 3":           3,
		"ABS((1 + 2) * 3)":      4,
		"NOT ((1 + 2) * 3 = 4)": 5,
	}
	for sql, want := range cases {
		e, err := sqlparse.ParseExpr(sql)
		if err != nil {
			t.Fatal(err)
		}
		if got := exprDepth(e); got != want {
			t.Errorf("depth(%s) = %d, want %d", sql, got, want)
		}
	}
}

func TestScanDeterministic(t *testing.T) {
	a := scan(t, "SELECT a + 1 FROM t WHERE a IN (1, 2)")
	b := scan(t, "SELECT a + 1 FROM t WHERE a IN (1, 2)")
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ScanFeatures must be deterministic (sorted)")
	}
}
