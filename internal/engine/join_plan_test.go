package engine_test

// Differential tests for the index-nested-loop join path: with faults
// disabled, a join step that probes the right relation's ordered store
// must produce the same row multiset as the quadratic candidate loop,
// over randomized database states and ON shapes — and it must do so
// while touching a fraction of the rows (the cost model's LastCost).

import (
	"fmt"
	"math/rand"
	"testing"

	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/faults"
)

// buildJoinState populates twin instances (INL-enabled and
// planner-suppressed) with two indexed tables whose key columns overlap.
func buildJoinState(t *testing.T, rnd *rand.Rand, dbs ...*engine.DB) {
	t.Helper()
	exec := func(sql string) {
		for _, db := range dbs {
			if err := db.Exec(sql); err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
		}
	}
	exec("CREATE TABLE l (c0 INTEGER, c1 TEXT, c2 INTEGER)")
	exec("CREATE TABLE r (k0 INTEGER, k1 TEXT, k2 INTEGER)")
	for i := 0; i < 40; i++ {
		if rnd.Intn(10) == 0 {
			exec(fmt.Sprintf("INSERT INTO l VALUES (NULL, 'l%d', %d)", i, rnd.Intn(8)))
		} else {
			exec(fmt.Sprintf("INSERT INTO l VALUES (%d, 'l%d', %d)", rnd.Intn(12), i, rnd.Intn(8)))
		}
	}
	for i := 0; i < 160; i++ {
		if rnd.Intn(12) == 0 {
			exec(fmt.Sprintf("INSERT INTO r VALUES (NULL, 'r%d', %d)", i, rnd.Intn(8)))
		} else {
			exec(fmt.Sprintf("INSERT INTO r VALUES (%d, 'r%d', %d)", rnd.Intn(12), i, rnd.Intn(8)))
		}
	}
	exec("CREATE INDEX ik ON r (k0)")
	// Post-index churn exercises the store maintenance the probes rely on.
	exec("UPDATE r SET k0 = 3 WHERE k2 = 5")
	exec("DELETE FROM r WHERE k2 = 7")
}

// TestIndexJoinMatchesQuadratic is the differential acceptance check:
// probe path vs quadratic loop over randomized states, across ON shapes
// with and without residual conjuncts, on clean engines.
func TestIndexJoinMatchesQuadratic(t *testing.T) {
	queries := []string{
		"SELECT * FROM l INNER JOIN r ON l.c0 = r.k0",
		"SELECT * FROM l INNER JOIN r ON r.k0 = l.c0",
		"SELECT * FROM l INNER JOIN r ON l.c0 = r.k0 AND l.c2 < r.k2",
		"SELECT * FROM l INNER JOIN r ON l.c0 = r.k0 AND r.k1 != 'r3'",
		"SELECT l.c1, r.k1 FROM l INNER JOIN r ON l.c0 + 1 = r.k0",
		"SELECT * FROM l INNER JOIN r ON l.c0 = r.k0 WHERE l.c2 >= 2",
		"SELECT * FROM l NATURAL JOIN l AS l2, r WHERE l.c0 = 3",
		"SELECT COUNT(*) FROM l INNER JOIN r ON l.c0 = r.k0 AND l.c2 = r.k2",
		"SELECT * FROM l INNER JOIN r ON l.c0 = r.k0 ORDER BY r.k1",
	}
	for _, seed := range []int64{1, 2, 3} {
		d := dialect.MustGet("sqlite")
		idx := engine.Open(d, engine.WithoutFaults())
		full := engine.Open(d, engine.WithoutFaults(), engine.WithPlanSpec(engine.PlanSpec{DisableIndexPaths: true}))
		buildJoinState(t, rand.New(rand.NewSource(seed)), idx, full)

		for _, q := range queries {
			rA, errA := idx.Query(q)
			costA := idx.LastCost()
			rB, errB := full.Query(q)
			costB := full.LastCost()
			if (errA == nil) != (errB == nil) {
				t.Fatalf("seed %d: status diverged for %q: %v vs %v", seed, q, errA, errB)
			}
			if errA != nil {
				continue
			}
			if !sameMultiset(rowMultiset(rA), rowMultiset(rB)) {
				t.Fatalf("seed %d: INL join diverged from quadratic for %q:\nINL:  %v\nquad: %v",
					seed, q, rA.RenderRows(), rB.RenderRows())
			}
			if costA > costB {
				t.Errorf("seed %d: INL cost %d exceeds quadratic cost %d for %q",
					seed, costA, costB, q)
			}
		}
	}
}

// TestIndexJoinResidualFaultObservable: with the JoinIndexResidual
// fault, a probe-eligible join with a residual ON conjunct emits extra
// rows, triggers ground truth, and diverges from the suppressed plan —
// while a clean residual-free join stays silent.
func TestIndexJoinResidualFaultObservable(t *testing.T) {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = "inl-residual-1"
	d.Faults = faults.NewSet([]faults.Fault{{
		ID: "inl-residual-1-skip", Dialect: d.Name, Class: faults.Logic,
		Kind: faults.JoinIndexResidual,
	}})
	umbra := engine.Open(d)
	exec := func(sql string) {
		if err := umbra.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	exec("CREATE TABLE l (c0 INTEGER, c2 INTEGER)")
	exec("CREATE TABLE r (k0 INTEGER, k2 INTEGER)")
	for i := 0; i < 12; i++ {
		exec(fmt.Sprintf("INSERT INTO l VALUES (%d, %d)", i%4, i%3))
		exec(fmt.Sprintf("INSERT INTO r VALUES (%d, %d)", i%4, i%5))
	}
	exec("CREATE INDEX ik ON r (k0)")

	const q = "SELECT * FROM l INNER JOIN r ON l.c0 = r.k0 AND l.c2 < r.k2"
	faulty, err := umbra.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	triggered := umbra.TriggeredFaults()
	umbra.SetPlanSpec(engine.PlanSpec{DisableIndexPaths: true})
	clean, err := umbra.Query(q)
	umbra.SetPlanSpec(engine.PlanSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if sameMultiset(rowMultiset(faulty), rowMultiset(clean)) {
		t.Fatal("residual-skip fault produced no observable divergence")
	}
	if len(faulty.Rows) <= len(clean.Rows) {
		t.Errorf("residual skip must add rows: %d vs %d", len(faulty.Rows), len(clean.Rows))
	}
	found := false
	for _, id := range triggered {
		if id == "inl-residual-1-skip" {
			found = true
		}
	}
	if !found {
		t.Errorf("fault not triggered: %v", triggered)
	}

	// Residual-free probe: the fault has nothing to skip — no divergence.
	const q2 = "SELECT * FROM l INNER JOIN r ON l.c0 = r.k0"
	a, err := umbra.Query(q2)
	if err != nil {
		t.Fatal(err)
	}
	umbra.SetPlanSpec(engine.PlanSpec{DisableIndexPaths: true})
	b, err := umbra.Query(q2)
	umbra.SetPlanSpec(engine.PlanSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(rowMultiset(a), rowMultiset(b)) {
		t.Fatal("residual-free probe must match the full scan")
	}
}
