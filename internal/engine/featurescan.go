package engine

import (
	"sort"

	"sqlancerpp/internal/feature"
	"sqlancerpp/internal/sqlast"
)

// ScanFeatures returns the canonical feature names appearing in a
// statement: the statement keyword, clause keywords, operator spellings,
// expression forms, and function names. The engine uses it to trigger
// feature-keyed faults; the experiment harness uses it to cross-execute
// bug-inducing cases (Figure 6).
func ScanFeatures(stmt sqlast.Stmt) []string {
	set := map[string]bool{}
	scanStmtFeatures(stmt, set)
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

func scanStmtFeatures(stmt sqlast.Stmt, set map[string]bool) {
	switch st := stmt.(type) {
	case *sqlast.CreateTable:
		set[feature.StmtCreateTable] = true
		for _, c := range st.Columns {
			set[c.Type.String()] = true
			if c.NotNull {
				set[feature.NotNullColumn] = true
			}
			if c.Unique {
				set[feature.UniqueColumn] = true
			}
			if c.PrimaryKey {
				set[feature.PrimaryKey] = true
			}
		}
	case *sqlast.CreateIndex:
		set[feature.StmtCreateIndex] = true
		if st.Unique {
			set[feature.UniqueIndex] = true
		}
		if st.Where != nil {
			set[feature.PartialIndex] = true
			scanExprFeatures(st.Where, set)
		}
	case *sqlast.CreateView:
		set[feature.StmtCreateView] = true
		if len(st.Columns) > 0 {
			set[feature.ViewColumnNames] = true
		}
		scanSelectFeatures(st.Select, set)
	case *sqlast.Insert:
		set[feature.StmtInsert] = true
		if st.OrIgnore {
			set[feature.InsertOrIgnore] = true
		}
		if len(st.Rows) > 1 {
			set[feature.InsertMultiRow] = true
		}
		for _, row := range st.Rows {
			for _, e := range row {
				scanExprFeatures(e, set)
			}
		}
	case *sqlast.Update:
		set[feature.StmtUpdate] = true
		for _, a := range st.Sets {
			scanExprFeatures(a.Value, set)
		}
		if st.Where != nil {
			set[feature.ClauseWhere] = true
			scanExprFeatures(st.Where, set)
		}
	case *sqlast.Delete:
		set[feature.StmtDelete] = true
		if st.Where != nil {
			set[feature.ClauseWhere] = true
			scanExprFeatures(st.Where, set)
		}
	case *sqlast.AlterTable:
		set[feature.StmtAlterTable] = true
	case *sqlast.DropTable:
		set[feature.StmtDropTable] = true
	case *sqlast.DropView:
		set[feature.StmtDropView] = true
	case *sqlast.DropIndex:
		set[feature.StmtDropIndex] = true
	case *sqlast.Reindex:
		set[feature.StmtReindex] = true
	case *sqlast.Analyze:
		set[feature.StmtAnalyze] = true
	case *sqlast.Refresh:
		set[feature.StmtRefresh] = true
	case *sqlast.Select:
		scanSelectFeatures(st, set)
	}
}

func joinFeature(j sqlast.JoinType) string {
	switch j {
	case sqlast.JoinComma:
		return feature.JoinComma
	case sqlast.JoinInner:
		return feature.JoinInner
	case sqlast.JoinLeft:
		return feature.JoinLeft
	case sqlast.JoinRight:
		return feature.JoinRight
	case sqlast.JoinFull:
		return feature.JoinFull
	case sqlast.JoinCross:
		return feature.JoinCross
	case sqlast.JoinNatural:
		return feature.JoinNatural
	default:
		return ""
	}
}

func scanSelectFeatures(sel *sqlast.Select, set map[string]bool) {
	set[feature.StmtSelect] = true
	if sel.Distinct {
		set[feature.Distinct] = true
	}
	for i := range sel.Items {
		scanExprFeatures(sel.Items[i].Expr, set)
	}
	for i, f := range sel.From {
		if i > 0 {
			if jf := joinFeature(f.Join); jf != "" {
				set[jf] = true
			}
		}
		if d, ok := f.Ref.(*sqlast.DerivedTable); ok {
			set[feature.DerivedTable] = true
			scanSelectFeatures(d.Select, set)
		}
		if f.On != nil {
			scanExprFeatures(f.On, set)
		}
	}
	if sel.Where != nil {
		set[feature.ClauseWhere] = true
		scanExprFeatures(sel.Where, set)
	}
	if len(sel.GroupBy) > 0 {
		set[feature.GroupBy] = true
		for _, g := range sel.GroupBy {
			scanExprFeatures(g, set)
		}
	}
	if sel.Having != nil {
		set[feature.Having] = true
		scanExprFeatures(sel.Having, set)
	}
	for _, part := range sel.Compound {
		set[setOpFeature(part.Op)] = true
		scanSelectFeatures(part.Select, set)
	}
	if len(sel.OrderBy) > 0 {
		set[feature.OrderBy] = true
		for _, o := range sel.OrderBy {
			scanExprFeatures(o.Expr, set)
		}
	}
	if sel.Limit != nil {
		set[feature.Limit] = true
	}
	if sel.Offset != nil {
		set[feature.Offset] = true
	}
}

func scanExprFeatures(e sqlast.Expr, set map[string]bool) {
	sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
		switch n := x.(type) {
		case *sqlast.Literal:
			if n.Kind == sqlast.LitBool {
				set[feature.TypeBoolean] = true
			}
		case *sqlast.Unary:
			if n.Op == sqlast.UBitNot {
				set["~"] = true
			} else if n.Op == sqlast.UNot {
				set[feature.ExprNot] = true
			}
		case *sqlast.Binary:
			set[n.Op.String()] = true
		case *sqlast.Func:
			set[n.Name] = true
			if n.Distinct {
				set[feature.Distinct] = true
			}
		case *sqlast.Case:
			set[feature.ExprCase] = true
		case *sqlast.Cast:
			set[feature.ExprCast] = true
		case *sqlast.Between:
			set[feature.ExprBetween] = true
		case *sqlast.InList:
			if n.Not {
				set[feature.ExprNotIn] = true
			} else {
				set[feature.ExprIn] = true
			}
		case *sqlast.IsNull:
			set[feature.ExprIsNull] = true
		case *sqlast.IsBool:
			set[feature.ExprIsBool] = true
		case *sqlast.Like:
			if n.Kind == sqlast.LikeGlob {
				set[feature.ExprGlob] = true
			} else {
				set[feature.ExprLike] = true
			}
		case *sqlast.Subquery:
			set[feature.Subquery] = true
			scanSelectFeatures(n.Select, set)
			return false // already descended
		case *sqlast.Exists:
			set[feature.ExprExists] = true
			scanSelectFeatures(n.Select, set)
			return false
		}
		return true
	})
}

// exprDepth computes the nesting depth of an expression tree.
func exprDepth(e sqlast.Expr) int {
	if e == nil {
		return 0
	}
	max := 0
	bump := func(d int) {
		if d > max {
			max = d
		}
	}
	switch x := e.(type) {
	case *sqlast.Literal, *sqlast.ColumnRef:
		return 1
	case *sqlast.Unary:
		bump(exprDepth(x.X))
	case *sqlast.Binary:
		bump(exprDepth(x.L))
		bump(exprDepth(x.R))
	case *sqlast.Func:
		for _, a := range x.Args {
			bump(exprDepth(a))
		}
	case *sqlast.Case:
		bump(exprDepth(x.Operand))
		for _, w := range x.Whens {
			bump(exprDepth(w.Cond))
			bump(exprDepth(w.Then))
		}
		bump(exprDepth(x.Else))
	case *sqlast.Cast:
		bump(exprDepth(x.X))
	case *sqlast.Between:
		bump(exprDepth(x.X))
		bump(exprDepth(x.Lo))
		bump(exprDepth(x.Hi))
	case *sqlast.InList:
		bump(exprDepth(x.X))
		for _, e := range x.List {
			bump(exprDepth(e))
		}
	case *sqlast.IsNull:
		bump(exprDepth(x.X))
	case *sqlast.IsBool:
		bump(exprDepth(x.X))
	case *sqlast.Like:
		bump(exprDepth(x.X))
		bump(exprDepth(x.Pattern))
	case *sqlast.Subquery:
		bump(maxSelectDepth(x.Select))
	case *sqlast.Exists:
		bump(maxSelectDepth(x.Select))
	}
	return max + 1
}

func maxSelectDepth(sel *sqlast.Select) int {
	max := 0
	sqlast.WalkSelectExprs(sel, func(e sqlast.Expr) bool {
		if d := exprDepth(e); d > max {
			max = d
		}
		return false // exprDepth already descends
	})
	return max
}

// maxExprDepth returns the deepest expression in a statement.
func maxExprDepth(stmt sqlast.Stmt) int {
	max := 0
	bump := func(d int) {
		if d > max {
			max = d
		}
	}
	switch st := stmt.(type) {
	case *sqlast.Select:
		bump(maxSelectDepth(st))
	case *sqlast.CreateView:
		bump(maxSelectDepth(st.Select))
	case *sqlast.CreateIndex:
		bump(exprDepth(st.Where))
	case *sqlast.Insert:
		for _, row := range st.Rows {
			for _, e := range row {
				bump(exprDepth(e))
			}
		}
	case *sqlast.Update:
		for _, a := range st.Sets {
			bump(exprDepth(a.Value))
		}
		bump(exprDepth(st.Where))
	case *sqlast.Delete:
		bump(exprDepth(st.Where))
	}
	return max
}
