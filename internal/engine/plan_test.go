package engine

import (
	"fmt"
	"testing"

	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/faults"
)

func openPlanDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	return Open(dialect.MustGet("sqlite"), append([]Option{WithoutFaults()}, opts...)...)
}

// checkIndexConsistent verifies the ordered-store invariant after DML:
// exactly one entry per covered visible row, composite keys in
// lexicographic order, every entry referencing a live row, and the lead
// positions matching the index's declared columns.
func checkIndexConsistent(t *testing.T, db *DB, name string) {
	t.Helper()
	ix := db.store.index(name)
	if ix == nil {
		t.Fatalf("no such index %q", name)
	}
	tbl := db.store.table(ix.Table)
	if len(ix.leads) != len(ix.Columns) {
		t.Fatalf("index %s: %d lead positions for %d columns", name, len(ix.leads), len(ix.Columns))
	}
	for i, c := range ix.Columns {
		if ix.leads[i] != tbl.ColumnIndex(c) {
			t.Fatalf("index %s: lead %d = %d, want column %q at %d",
				name, i, ix.leads[i], c, tbl.ColumnIndex(c))
		}
	}
	live := map[*Value]bool{}
	want := 0
	for _, row := range tbl.Rows {
		if db.indexCovers(tbl, ix, row) {
			live[&row[0]] = true
			want++
		}
	}
	if len(ix.entries) != want {
		t.Fatalf("index %s: %d entries for %d covered rows", name, len(ix.entries), want)
	}
	seen := map[*Value]bool{}
	for i, e := range ix.entries {
		if !live[&e[0]] {
			t.Fatalf("index %s: entry %d references a detached row %v", name, i, e)
		}
		if seen[&e[0]] {
			t.Fatalf("index %s: duplicate entry for one row", name)
		}
		seen[&e[0]] = true
		if i > 0 && ix.entryCompare(ix.entries[i-1], e) > 0 {
			t.Fatalf("index %s: entries out of key order at %d", name, i)
		}
	}
}

// TestIndexMaintenanceAcrossDML drives the store through every DML path
// that must keep it in sync: INSERT (with NULLs and duplicate keys),
// UPDATE (key change and partial-coverage change), DELETE (filtered and
// unconditional), INSERT OR IGNORE, and ALTER TABLE rebuilds.
func TestIndexMaintenanceAcrossDML(t *testing.T) {
	db := openPlanDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "CREATE INDEX i ON t (a)")
	mustExec(t, db, "CREATE INDEX p ON t (a) WHERE b > 5")
	mustExec(t, db, "CREATE INDEX ic ON t (b, a)") // composite store
	steps := []string{
		"INSERT INTO t (a, b) VALUES (3, 10), (1, 0), (3, 7), (NULL, 9), (2, NULL)",
		"UPDATE t SET a = 5 WHERE a = 3",      // key change
		"UPDATE t SET b = 1 WHERE a = 5",      // coverage change for the partial index
		"DELETE FROM t WHERE a = 1",           // filtered removal
		"INSERT INTO t (a, b) VALUES (7, 99)", // post-delete insert
		"ALTER TABLE t ADD COLUMN c TEXT",     // rebuild (row slices re-allocated)
		"UPDATE t SET c = 'x' WHERE a = 7",
		"DELETE FROM t", // unconditional: stores empty
	}
	for _, sql := range steps {
		mustExec(t, db, sql)
		checkIndexConsistent(t, db, "i")
		checkIndexConsistent(t, db, "p")
		checkIndexConsistent(t, db, "ic")
	}
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 9)")
	checkIndexConsistent(t, db, "i")
	checkIndexConsistent(t, db, "p")
	checkIndexConsistent(t, db, "ic")
}

// TestIndexMaintenanceOnRefresh covers dialects where inserts become
// visible only on REFRESH TABLE: pending rows must enter the store at
// refresh time, not before. (CrateDB itself has no CREATE INDEX, so the
// test re-enables it on a clone to combine both behaviors.)
func TestIndexMaintenanceOnRefresh(t *testing.T) {
	d := dialect.MustGet("cratedb").Clone()
	d.Name = "cratedb-refresh-index-test"
	d.Statements["CREATE INDEX"] = true
	db := Open(d, WithoutFaults())
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "CREATE INDEX i ON t (a)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1), (2)")
	if ix := db.store.index("i"); len(ix.entries) != 0 {
		t.Fatalf("pending rows must not be indexed, got %d entries", len(ix.entries))
	}
	mustExec(t, db, "REFRESH TABLE t")
	checkIndexConsistent(t, db, "i")
	res := mustQuery(t, db, "SELECT * FROM t WHERE a = 2")
	if len(res.Rows) != 1 {
		t.Fatalf("post-refresh probe returned %d rows", len(res.Rows))
	}
}

// populateScanTable loads n rows with a = i % groups (selective keys).
func populateScanTable(t *testing.T, db *DB, n, groups int) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	for i := 0; i < n; i += 8 {
		sql := "INSERT INTO t (a, b) VALUES "
		for j := i; j < i+8 && j < n; j++ {
			if j > i {
				sql += ", "
			}
			sql += fmt.Sprintf("(%d, %d)", j%groups, j)
		}
		mustExec(t, db, sql)
	}
}

// TestIndexPathCostsFewerRows is the cost-model acceptance check: an
// equality probe over a selective index must charge far fewer work units
// than the same query on a full-scan instance, while returning the same
// rows.
func TestIndexPathCostsFewerRows(t *testing.T) {
	idx := openPlanDB(t)
	full := openPlanDB(t, WithPlanSpec(PlanSpec{DisableIndexPaths: true}))
	populateScanTable(t, idx, 256, 64)
	populateScanTable(t, full, 256, 64)
	mustExec(t, idx, "CREATE INDEX i ON t (a)")
	mustExec(t, full, "CREATE INDEX i ON t (a)")

	const q = "SELECT * FROM t WHERE a = 7"
	rIdx := mustQuery(t, idx, q)
	costIdx := idx.LastCost()
	rFull := mustQuery(t, full, q)
	costFull := full.LastCost()

	if len(rIdx.Rows) != 4 || len(rFull.Rows) != 4 {
		t.Fatalf("row counts: indexed %d, full %d, want 4", len(rIdx.Rows), len(rFull.Rows))
	}
	if costIdx*4 > costFull {
		t.Fatalf("index path cost %d not clearly below full scan cost %d", costIdx, costFull)
	}
	// Range probes use the index too.
	mustQuery(t, idx, "SELECT * FROM t WHERE a < 3")
	costRange := idx.LastCost()
	mustQuery(t, full, "SELECT * FROM t WHERE a < 3")
	if fullRange := full.LastCost(); costRange >= fullRange {
		t.Fatalf("range probe cost %d not below full scan %d", costRange, fullRange)
	}
}

// TestIndexPathSkippedWhenNotSelective: a probe spanning the whole table
// must fall back to the full scan (no pointless candidate copy).
func TestIndexPathSkippedWhenNotSelective(t *testing.T) {
	db := openPlanDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "CREATE INDEX i ON t (a)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1), (1), (1)")
	res := mustQuery(t, db, "SELECT * FROM t WHERE a = 1")
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
}

// TestFaultStaleIndexAfterUpdate: with the fault active, UPDATE leaves
// the store untouched, so probes miss the new key and resurrect the
// detached pre-update row — and the ground truth triggers only then.
func TestFaultStaleIndexAfterUpdate(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.StaleIndexAfterUpdate, Class: faults.Logic})
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "CREATE INDEX i ON t (a)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 1), (2, 2), (3, 3), (4, 4), (5, 5)")

	// Before any UPDATE the index is fresh: no trigger on probes.
	res := mustQuery(t, db, "SELECT * FROM t WHERE a = 2")
	if len(res.Rows) != 1 || len(db.TriggeredFaults()) != 0 {
		t.Fatalf("fresh index probe wrong: %d rows, triggered %v", len(res.Rows), db.TriggeredFaults())
	}

	mustExec(t, db, "UPDATE t SET a = 9 WHERE a = 2")

	// Probe for the new key: the stale store has no entry for 9.
	res = mustQuery(t, db, "SELECT * FROM t WHERE a = 9")
	if len(res.Rows) != 0 {
		t.Fatalf("stale index should miss the updated row, got %d rows", len(res.Rows))
	}
	if len(db.TriggeredFaults()) != 1 {
		t.Fatalf("missing-row divergence must trigger, got %v", db.TriggeredFaults())
	}

	// Probe for the old key: the stale entry returns the detached row.
	res = mustQuery(t, db, "SELECT * FROM t WHERE a = 2")
	if len(res.Rows) != 1 || res.RenderRows()[0] != "2|2" {
		t.Fatalf("stale index should resurrect the old row, got %v", res.RenderRows())
	}
	if len(db.TriggeredFaults()) != 1 {
		t.Fatalf("resurrected-row divergence must trigger, got %v", db.TriggeredFaults())
	}

	// An unaffected key probes identically on both paths: no trigger.
	res = mustQuery(t, db, "SELECT * FROM t WHERE a = 4")
	if len(res.Rows) != 1 || len(db.TriggeredFaults()) != 0 {
		t.Fatalf("unaffected probe must stay clean: %d rows, triggered %v",
			len(res.Rows), db.TriggeredFaults())
	}
}

// TestFaultIndexRangeBoundary: <= on an index path behaves like <,
// dropping the boundary keys; < itself and the un-faulted >= stay clean.
func TestFaultIndexRangeBoundary(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.IndexRangeBoundary, Class: faults.Logic, Param: "<="})
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "CREATE INDEX i ON t (a)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (0), (1), (2), (3), (4), (5), (6), (7), (8), (9)")

	res := mustQuery(t, db, "SELECT * FROM t WHERE a <= 3")
	if len(res.Rows) != 3 {
		t.Fatalf("faulty <= should drop the boundary key, got %d rows", len(res.Rows))
	}
	if len(db.TriggeredFaults()) != 1 {
		t.Fatalf("boundary drop must trigger, got %v", db.TriggeredFaults())
	}
	res = mustQuery(t, db, "SELECT * FROM t WHERE a < 3")
	if len(res.Rows) != 3 || len(db.TriggeredFaults()) != 0 {
		t.Fatalf("< must stay clean: %d rows, triggered %v", len(res.Rows), db.TriggeredFaults())
	}
	res = mustQuery(t, db, "SELECT * FROM t WHERE a >= 7")
	if len(res.Rows) != 3 || len(db.TriggeredFaults()) != 0 {
		t.Fatalf(">= is not faulted here: %d rows, triggered %v", len(res.Rows), db.TriggeredFaults())
	}
	// No boundary key present: the spans coincide, no trigger.
	mustExec(t, db, "DELETE FROM t WHERE a = 3")
	res = mustQuery(t, db, "SELECT * FROM t WHERE a <= 3")
	if len(res.Rows) != 3 || len(db.TriggeredFaults()) != 0 {
		t.Fatalf("no boundary key: %d rows, triggered %v", len(res.Rows), db.TriggeredFaults())
	}
}

// TestFaultUniqueIndexFalseConflict: a multi-column unique index that
// compares only its leading key column raises a spurious internal error
// for rows differing in a later column; real conflicts keep reporting
// the ordinary constraint violation.
func TestFaultUniqueIndexFalseConflict(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.UniqueIndexFalseConflict, Class: faults.Error})
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "CREATE UNIQUE INDEX u ON t (a, b)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 1)")

	err := db.Exec("INSERT INTO t (a, b) VALUES (1, 2)")
	if !IsInternal(err) {
		t.Fatalf("want spurious internal error, got %v", err)
	}
	if len(db.TriggeredFaults()) != 1 {
		t.Fatalf("false conflict must trigger, got %v", db.TriggeredFaults())
	}

	mustExec(t, db, "INSERT INTO t (a, b) VALUES (2, 1)") // distinct leading key: fine
	err = db.Exec("INSERT INTO t (a, b) VALUES (2, 1)")   // true duplicate
	if err == nil || IsInternal(err) || IsCrash(err) {
		t.Fatalf("true duplicate must stay a constraint error, got %v", err)
	}
	if len(db.TriggeredFaults()) != 0 {
		t.Fatalf("true duplicate must not trigger, got %v", db.TriggeredFaults())
	}
}

// TestFaultPartialIndexTriggerPrecision: the refit PartialIndexScan
// defect triggers only when an uncovered row would actually have
// survived the full WHERE clause.
func TestFaultPartialIndexTriggerPrecision(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.PartialIndexScan, Class: faults.Logic})
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 10), (1, 0)")
	mustExec(t, db, "CREATE INDEX i ON t (a) WHERE b > 5")

	// The uncovered row (1, 0) passes a = 1: dropped and triggered.
	res := mustQuery(t, db, "SELECT * FROM t WHERE a = 1")
	if len(res.Rows) != 1 || len(db.TriggeredFaults()) != 1 {
		t.Fatalf("uncovered drop: %d rows, triggered %v", len(res.Rows), db.TriggeredFaults())
	}
	// A second conjunct that excludes the uncovered row anyway: the
	// result matches the clean scan, so no trigger.
	res = mustQuery(t, db, "SELECT * FROM t WHERE a = 1 AND b > 5")
	if len(res.Rows) != 1 || len(db.TriggeredFaults()) != 0 {
		t.Fatalf("covered-only result must not trigger: %d rows, triggered %v",
			len(res.Rows), db.TriggeredFaults())
	}
}

// TestIndexPathOrderSensitiveShapes is the regression test for
// order-sensitivity: the index path yields rows in key order, so any
// construct where scan order selects rows or values (LIMIT/OFFSET,
// ORDER BY ties feeding a LIMIT, group representatives, compound
// LIMIT) must stay on the order-preserving full scan — while pure
// aggregates like NoREC's COUNT(*) keep the index path.
func TestIndexPathOrderSensitiveShapes(t *testing.T) {
	idx := openPlanDB(t)
	full := openPlanDB(t, WithPlanSpec(PlanSpec{DisableIndexPaths: true}))
	for _, db := range []*DB{idx, full} {
		mustExec(t, db, "CREATE TABLE t (c0 INTEGER, c1 TEXT)")
		mustExec(t, db, "INSERT INTO t (c0, c1) VALUES (5, 'first'), (3, 'second'), (4, 'third')")
		mustExec(t, db, "CREATE INDEX i ON t (c0)")
	}
	queries := []string{
		"SELECT c1 FROM t WHERE c0 >= 4 LIMIT 1",
		"SELECT (SELECT c1 FROM t WHERE c0 >= 4 LIMIT 1) FROM t",
		"SELECT c1 FROM t WHERE c0 >= 3 ORDER BY 1 = 1 LIMIT 2", // constant keys: all ties
		"SELECT COUNT(*), c0 FROM t WHERE c0 >= 3",              // representative-row projection
		"SELECT c1 FROM t WHERE c0 >= 4 UNION ALL SELECT c1 FROM t WHERE c0 >= 4 LIMIT 2",
	}
	for _, q := range queries {
		a, errA := idx.Query(q)
		b, errB := full.Query(q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: status diverged: %v vs %v", q, errA, errB)
		}
		if errA != nil {
			continue
		}
		ra, rb := a.RenderRows(), b.RenderRows()
		if len(ra) != len(rb) {
			t.Fatalf("%s: %d vs %d rows", q, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%s: row %d diverged: %q vs %q", q, i, ra[i], rb[i])
			}
		}
	}
	// Pure aggregates stay on the index path (NoREC's optimized arm).
	mustQuery(t, idx, "SELECT COUNT(*) FROM t WHERE c0 = 4")
	costIdx := idx.LastCost()
	mustQuery(t, full, "SELECT COUNT(*) FROM t WHERE c0 = 4")
	if costFull := full.LastCost(); costIdx >= costFull {
		t.Fatalf("COUNT(*) probe must keep the index path: cost %d vs %d", costIdx, costFull)
	}
}

// TestValidateCreateIndexDuplicateColumn: the key store is per column
// list; a duplicate column in the list is a semantic error.
func TestValidateCreateIndexDuplicateColumn(t *testing.T) {
	db := openPlanDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	if err := db.Exec("CREATE INDEX i ON t (a, a)"); err == nil {
		t.Fatal("duplicate index column must be rejected")
	}
	mustExec(t, db, "CREATE INDEX i ON t (a, b)")
}
