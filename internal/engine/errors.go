package engine

import "fmt"

// ErrClass categorizes statement failures. The adaptive generator treats
// any non-nil error as "statement failed" (the paper's validity feedback
// does not distinguish error kinds), but the campaign distinguishes
// crashes and internal errors, which are bugs in their own right.
type ErrClass int

// Error classes.
const (
	// ErrSyntax: the statement did not parse.
	ErrSyntax ErrClass = iota
	// ErrUnsupported: the statement uses a feature this dialect lacks.
	ErrUnsupported
	// ErrSemantic: name resolution or (static dialects) type checking
	// failed.
	ErrSemantic
	// ErrConstraint: a PRIMARY KEY / UNIQUE / NOT NULL violation.
	ErrConstraint
	// ErrRuntime: evaluation failed (division by zero, bad cast, math
	// domain error) — the paper's context-dependent failures.
	ErrRuntime
	// ErrCrash: an injected fault crashed the simulated server.
	ErrCrash
	// ErrInternal: an injected fault raised an internal error.
	ErrInternal
	// ErrBudgetExceeded: the statement touched more rows than the
	// instance's deterministic execution budget allows (WithRowBudget).
	// Unlike a wall-clock timeout this is a pure function of the
	// statement and the database state, so budget-exceeded statements
	// fail identically on every replay and at every worker count.
	ErrBudgetExceeded
	// ErrTimeout: the campaign's per-case wall-clock watchdog fired and
	// the cooperative cancel flag (WithCancel) stopped execution at the
	// next row-budget checkpoint. Unlike ErrBudgetExceeded this is NOT
	// deterministic — it depends on host speed — so the campaign reports
	// it as a hang, never as a logic bug, and replays never set the flag.
	ErrTimeout
)

// String returns a short class label.
func (c ErrClass) String() string {
	switch c {
	case ErrSyntax:
		return "syntax"
	case ErrUnsupported:
		return "unsupported"
	case ErrSemantic:
		return "semantic"
	case ErrConstraint:
		return "constraint"
	case ErrRuntime:
		return "runtime"
	case ErrCrash:
		return "crash"
	case ErrInternal:
		return "internal"
	case ErrBudgetExceeded:
		return "budget"
	case ErrTimeout:
		return "timeout"
	default:
		return "?"
	}
}

// Error is the engine's statement failure type.
type Error struct {
	Class   ErrClass
	Msg     string
	Feature string // the offending feature, when known
	FaultID string // ground truth: the injected fault that fired, if any
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Feature != "" {
		return fmt.Sprintf("%s error: %s (feature %q)", e.Class, e.Msg, e.Feature)
	}
	return fmt.Sprintf("%s error: %s", e.Class, e.Msg)
}

func errf(class ErrClass, format string, args ...any) *Error {
	return &Error{Class: class, Msg: fmt.Sprintf(format, args...)}
}

func unsupported(featureName string) *Error {
	return &Error{Class: ErrUnsupported, Msg: "feature not supported", Feature: featureName}
}

// ClassOf returns the error class of err, or ErrSyntax if err is not an
// engine error (parser errors reach callers as *Error already; this is a
// safety net).
func ClassOf(err error) ErrClass {
	if ee, ok := err.(*Error); ok {
		return ee.Class
	}
	return ErrSyntax
}

// IsCrash reports whether err is a simulated crash.
func IsCrash(err error) bool {
	ee, ok := err.(*Error)
	return ok && ee.Class == ErrCrash
}

// IsInternal reports whether err is a simulated internal error.
func IsInternal(err error) bool {
	ee, ok := err.(*Error)
	return ok && ee.Class == ErrInternal
}

// IsBudgetExceeded reports whether err is a rows-touched budget
// exhaustion. The campaign skips such cases (they are neither valid nor
// bugs) and tallies them in Report.BudgetExceeded.
func IsBudgetExceeded(err error) bool {
	ee, ok := err.(*Error)
	return ok && ee.Class == ErrBudgetExceeded
}

// IsTimeout reports whether err is a watchdog cancellation. The campaign
// tallies such cases as hangs (Report.Hangs) and exempts them from
// false-positive accounting — a wall-clock timeout carries no
// ground-truth fault by construction.
func IsTimeout(err error) bool {
	ee, ok := err.(*Error)
	return ok && ee.Class == ErrTimeout
}

// errBudget is the shared budget-exhaustion error: the budget check sits
// on the per-row hot path, so exceeding it must not allocate.
var errBudget = &Error{Class: ErrBudgetExceeded,
	Msg: "execution budget exceeded (rows-touched limit)"}

// errTimeout is the shared watchdog-cancellation error; like errBudget
// it is returned from the per-row hot path and must not allocate.
var errTimeout = &Error{Class: ErrTimeout,
	Msg: "case wall-clock timeout (watchdog canceled execution)"}
