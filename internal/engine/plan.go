package engine

// Access-path planning and index maintenance. Indexes carry a real
// ordered key→row store over their full composite key (catalog.go); the
// DML executors keep it incrementally in sync with the table's visible
// rows, and planIndexAccess chooses between the full scan and an index
// probe for the first FROM relation of a SELECT — combining multiple
// sargable conjuncts into one multi-column span: an equality prefix over
// the index's leading columns plus at most one trailing range (so
// "a = 1 AND b < 5" over an index on (a, b) touches only the rows with
// a = 1 and b < 5).
//
// The candidate set an index probe returns is exactly the set of rows
// whose stored key satisfies the probe conjuncts under the clean
// comparison semantics (evalCompare over Compare order — the same total
// order the entries are sorted by). The WHERE loop still re-evaluates
// every conjunct, fault hooks included, over the candidates, so with
// faults disabled the index path is observationally identical to the
// full scan. The injected index defects (PartialIndexScan,
// IndexRangeBoundary, StaleIndexAfterUpdate, CompositeSpanBoundary)
// perturb the candidate set itself — rows they drop cannot be
// resurrected downstream, which is what makes them visible to TLP and
// NoREC — while CompositeProbePrefixSkip widens it and suppresses the
// trailing conjunct's re-check, adding rows instead.
//
// UPDATE and DELETE collect their mutation sets through the same spans
// (planDMLAccess), but always under clean semantics: mutations must
// follow the reference row flow regardless of injected plan faults, so
// no fault hook applies there and stale stores fall back to the full
// scan.

import (
	"sort"
	"strings"

	"sqlancerpp/internal/sqlast"
)

// ---------------------------------------------------------------------
// Ordered store maintenance
// ---------------------------------------------------------------------

// indexCovers reports whether a row is covered by the index (partial
// predicate TRUE; errors count as uncovered). The composite key itself
// is implicit: it is the row's values at ix.leads.
func (s *DB) indexCovers(t *Table, ix *Index, row []Value) bool {
	if ix.Where != nil {
		env := &rowEnv{rels: []rowRel{tableRowRel(t, row)}}
		tri, err := s.newEvalCtx(env).evalTri(ix.Where)
		if err != nil || tri != TriTrue {
			return false
		}
	}
	return true
}

// buildIndex (re)builds the ordered store from the table's visible rows.
// Entries sort by composite key with ties in table order — the same
// order the incremental path (insert at the end of the equal-key span)
// maintains.
func (s *DB) buildIndex(t *Table, ix *Index) {
	ix.leads = ix.leads[:0]
	for _, c := range ix.Columns {
		ix.leads = append(ix.leads, t.ColumnIndex(c))
	}
	ix.entries = ix.entries[:0]
	ix.stale = false
	for _, row := range t.Rows {
		if s.indexCovers(t, ix, row) {
			ix.entries = append(ix.entries, row)
		}
	}
	sort.SliceStable(ix.entries, func(i, j int) bool {
		return ix.entryCompare(ix.entries[i], ix.entries[j]) < 0
	})
}

// insertEntry adds one row at the end of its equal-key span.
func (ix *Index) insertEntry(row []Value) {
	i := sort.Search(len(ix.entries), func(i int) bool {
		return ix.entryCompare(ix.entries[i], row) > 0
	})
	ix.entries = append(ix.entries, nil)
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = row
}

// removeEntry drops the entry of one row, located by its composite key
// and row identity (the row slice's first element).
func (ix *Index) removeEntry(row []Value) {
	if len(row) == 0 {
		return
	}
	j := sort.Search(len(ix.entries), func(i int) bool {
		return ix.entryCompare(ix.entries[i], row) >= 0
	})
	for ; j < len(ix.entries) && ix.entryCompare(ix.entries[j], row) == 0; j++ {
		if len(ix.entries[j]) > 0 && &ix.entries[j][0] == &row[0] {
			ix.entries = append(ix.entries[:j], ix.entries[j+1:]...)
			return
		}
	}
}

// indexInsertRows adds entries for rows that just became visible
// (INSERT, or REFRESH TABLE flushing pending rows).
func (s *DB) indexInsertRows(t *Table, rows [][]Value) {
	for _, ix := range t.indexes {
		for _, row := range rows {
			if s.indexCovers(t, ix, row) {
				ix.insertEntry(row)
			}
		}
	}
}

// indexRemoveRow drops the entries of one removed row. Coverage is a
// pure function of the row's values, so recomputing it finds the same
// entries the insertion created.
func (s *DB) indexRemoveRow(t *Table, row []Value) {
	for _, ix := range t.indexes {
		if s.indexCovers(t, ix, row) {
			ix.removeEntry(row)
		}
	}
}

// indexUpdateRow swaps the entries of one updated row (remove the old
// row's entries, insert the new row's). With the StaleIndexAfterUpdate
// fault active the maintenance is skipped entirely and every index whose
// entries would have changed is marked stale — later probes on a stale
// index return detached pre-update rows or miss the updated ones.
func (s *DB) indexUpdateRow(t *Table, old, nr []Value, skipMaintenance bool) {
	for _, ix := range t.indexes {
		co := s.indexCovers(t, ix, old)
		cn := s.indexCovers(t, ix, nr)
		if skipMaintenance {
			if co || cn {
				ix.stale = true
			}
			continue
		}
		if co {
			ix.removeEntry(old)
		}
		if cn {
			ix.insertEntry(nr)
		}
	}
}

// indexClear empties every index on a table (unconditional DELETE): an
// empty store is consistent with an empty table, so staleness resets.
func indexClear(t *Table) {
	for _, ix := range t.indexes {
		ix.entries = ix.entries[:0]
		ix.stale = false
	}
}

// ---------------------------------------------------------------------
// Probe extraction and spans
// ---------------------------------------------------------------------

// indexProbe is a normalized sargable conjunct: column op literal.
type indexProbe struct {
	col string
	op  sqlast.BinaryOp
	val Value
}

// flipCmp mirrors a comparison operator for "literal op column" shapes.
func flipCmp(op sqlast.BinaryOp) sqlast.BinaryOp {
	switch op {
	case sqlast.OpLt:
		return sqlast.OpGt
	case sqlast.OpLe:
		return sqlast.OpGe
	case sqlast.OpGt:
		return sqlast.OpLt
	case sqlast.OpGe:
		return sqlast.OpLe
	default: // =, <=>, IS NOT DISTINCT FROM are symmetric
		return op
	}
}

// litValue converts a literal AST node to a runtime value.
func litValue(l *sqlast.Literal) Value {
	switch l.Kind {
	case sqlast.LitNull:
		return Null()
	case sqlast.LitInt:
		return Int(l.Int)
	case sqlast.LitText:
		return Text(l.Text)
	default:
		return Bool(l.Bool)
	}
}

// matchProbe extracts an index probe from one top-level WHERE conjunct
// for the relation (alias, t). It accepts =, <, <=, >, >= and the
// null-safe equality spellings between a column of the relation and a
// literal. The null-safe forms normalize to = only for non-NULL
// literals: over non-NULL keys the two agree, and NULL keys are outside
// every span ("x <=> NULL" would instead select them, so it is not
// sargable here).
func matchProbe(conj sqlast.Expr, alias string, t *Table) (indexProbe, bool) {
	b, ok := conj.(*sqlast.Binary)
	if !ok {
		return indexProbe{}, false
	}
	op := b.Op
	col, okc := b.L.(*sqlast.ColumnRef)
	lit, okl := b.R.(*sqlast.Literal)
	if !okc || !okl {
		col, okc = b.R.(*sqlast.ColumnRef)
		lit, okl = b.L.(*sqlast.Literal)
		if !okc || !okl {
			return indexProbe{}, false
		}
		op = flipCmp(op)
	}
	v := litValue(lit)
	switch op {
	case sqlast.OpEq, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe:
		// With a NULL operand these are never TRUE; the span is empty.
	case sqlast.OpNullSafeEq, sqlast.OpIsNotDistinct:
		if v.IsNull() {
			return indexProbe{}, false
		}
		op = sqlast.OpEq
	default:
		return indexProbe{}, false
	}
	if col.Table != "" && !strings.EqualFold(col.Table, alias) {
		return indexProbe{}, false
	}
	if t.ColumnIndex(col.Column) < 0 {
		return indexProbe{}, false
	}
	return indexProbe{col: col.Column, op: op, val: v}, true
}

// eqSpan returns the half-open entry range [lo, hi) whose composite keys
// start with the equality prefix eq (len(eq) <= len(ix.leads); an empty
// prefix spans every entry). A NULL prefix value yields the empty span:
// an equality probe with a NULL operand is never TRUE, and NULL keys —
// which sort first within their prefix group — fall outside it.
func (ix *Index) eqSpan(eq []Value) (int, int) {
	for _, v := range eq {
		if v.IsNull() {
			return 0, 0
		}
	}
	n := len(ix.entries)
	lo := sort.Search(n, func(i int) bool { return ix.keyCompare(ix.entries[i], eq) >= 0 })
	hi := sort.Search(n, func(i int) bool { return ix.keyCompare(ix.entries[i], eq) > 0 })
	return lo, hi
}

// span returns the half-open entry range whose keys satisfy the
// equality prefix eq AND "column[len(eq)] op val" under the clean
// comparison semantics. Entries sort lexicographically in compareForSort
// order (NULLs first per column), which agrees with Compare on non-NULL
// values — the same order evalCompare uses — so the matching region is
// contiguous within the prefix group and NULL keys fall outside every
// span. With len(eq) == 0 this is the single-column span of PR 2; a
// trailing range on a fully-matched prefix is expressed by the caller as
// op = OpEq via the prefix instead.
func (ix *Index) span(eq []Value, op sqlast.BinaryOp, val Value) (int, int) {
	plo, phi := ix.eqSpan(eq)
	if plo == phi || val.IsNull() {
		return plo, plo
	}
	rc := ix.leads[len(eq)]
	in := ix.entries[plo:phi]
	n := len(in)
	lowerEq := plo + sort.Search(n, func(i int) bool { return compareForSort(in[i][rc], val) >= 0 })
	upperEq := plo + sort.Search(n, func(i int) bool { return compareForSort(in[i][rc], val) > 0 })
	switch op {
	case sqlast.OpEq:
		return lowerEq, upperEq
	case sqlast.OpLt:
		return plo + ix.firstNonNull(in, rc), lowerEq
	case sqlast.OpLe:
		return plo + ix.firstNonNull(in, rc), upperEq
	case sqlast.OpGt:
		return upperEq, phi
	default: // OpGe
		return lowerEq, phi
	}
}

// firstNonNull returns the offset of the first entry whose key column rc
// is non-NULL within an equal-prefix entry group.
func (ix *Index) firstNonNull(in [][]Value, rc int) int {
	return sort.Search(len(in), func(i int) bool { return !in[i][rc].IsNull() })
}

// ---------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------

// indexPlannable reports whether pre-filtering the first FROM relation
// with an index probe preserves the statement's semantics: every
// subsequent join must be inner-like (no NULL extension), so removing a
// left row that fails the probe conjunct can only remove joined rows the
// WHERE clause would have dropped anyway.
func indexPlannable(from []sqlast.FromItem) bool {
	for _, it := range from[1:] {
		switch it.Join {
		case sqlast.JoinComma, sqlast.JoinCross, sqlast.JoinInner, sqlast.JoinNatural:
		default:
			return false
		}
	}
	return true
}

// indexOrderSafe reports whether swapping the first relation's scan
// order can change the statement's result beyond row order. The index
// path yields candidates in key order, not table order — invisible to
// multiset comparison, but observable wherever order leaks into row
// selection or values: LIMIT/OFFSET cut by position (an ORDER BY does
// not neutralize them — the sort is stable, so ties keep scan order),
// and grouped execution evaluates non-aggregate expressions on each
// group's first row.
func indexOrderSafe(sel *sqlast.Select) bool {
	if sel.Limit != nil || sel.Offset != nil {
		return false
	}
	if len(sel.GroupBy) > 0 {
		return false // group representatives are first-row dependent
	}
	if !selHasAggregates(sel) {
		return true // plain select: only the output order changes
	}
	// Global aggregate: one output row, safe iff nothing reads a column
	// (or runs a possibly-correlated subquery) outside an aggregate call
	// — the single group's representative row is scan-order dependent.
	for i := range sel.Items {
		if sel.Items[i].Star || !orderFreeExpr(sel.Items[i].Expr) {
			return false
		}
	}
	for _, o := range sel.OrderBy {
		if !orderFreeExpr(o.Expr) {
			return false
		}
	}
	return sel.Having == nil || orderFreeExpr(sel.Having)
}

// orderFreeExpr reports whether an expression's value over a single
// aggregate group is independent of the scan order: every column
// reference and every subquery sits inside an aggregate call.
func orderFreeExpr(e sqlast.Expr) bool {
	safe := true
	sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
		switch n := x.(type) {
		case *sqlast.Func:
			if isAggregate(n) {
				return false // aggregates fold the whole group: order-free
			}
		case *sqlast.ColumnRef, *sqlast.Subquery, *sqlast.Exists:
			safe = false
		}
		return safe
	})
	return safe
}

// planScratch holds the planner's per-scan scratch buffers, owned by
// the DB instance and reset at every planIndexAccess/planDMLAccess
// entry: the sargable-probe list and the composite-key arena. Probe eq
// prefixes are subslices of the arena, valid until the next planner
// entry — the ground-truth helpers, whose clean re-evaluation can nest
// another planner call (a subquery conjunct), pin their probe first.
type planScratch struct {
	probes  []indexProbe
	conjIdx []int
	keys    []Value
}

// compositeProbe is a planned multi-column index probe: an equality
// prefix over the index's leading columns plus at most one trailing
// range conjunct on the next column.
type compositeProbe struct {
	ix *Index
	// eq holds the equality-prefix values, one per leading index column.
	eq []Value
	// hasRange marks a trailing range conjunct "columns[len(eq)] rangeOp
	// rangeVal"; rangeIdx is its position among the WHERE conjuncts.
	hasRange bool
	rangeOp  sqlast.BinaryOp
	rangeVal Value
	rangeIdx int
}

// rowMatches reports whether a table row satisfies every probe conjunct
// under the clean comparison semantics (ground-truth accounting).
func (p *compositeProbe) rowMatches(ctx *evalCtx, row []Value) bool {
	for i, v := range p.eq {
		if ctx.evalCompare(sqlast.OpEq, row[p.ix.leads[i]], v) != TriTrue {
			return false
		}
	}
	if p.hasRange {
		return ctx.evalCompare(p.rangeOp, row[p.ix.leads[len(p.eq)]], p.rangeVal) == TriTrue
	}
	return true
}

// span returns the probe's clean entry span.
func (p *compositeProbe) span() (int, int) {
	if p.hasRange {
		return p.ix.span(p.eq, p.rangeOp, p.rangeVal)
	}
	return p.ix.eqSpan(p.eq)
}

// extractProbes collects the sargable conjuncts of one scan into the
// instance's scratch buffers (reset here; the previous scan's contents
// are dead by construction — planning completes before any evaluation).
func (s *DB) extractProbes(t *Table, alias string, conjs []sqlast.Expr) ([]indexProbe, []int) {
	probes := s.scratch.probes[:0]
	conjIdx := s.scratch.conjIdx[:0]
	s.scratch.keys = s.scratch.keys[:0]
	for ci, conj := range conjs {
		if probe, ok := matchProbe(conj, alias, t); ok {
			probes = append(probes, probe)
			conjIdx = append(conjIdx, ci)
		}
	}
	s.scratch.probes, s.scratch.conjIdx = probes, conjIdx
	return probes, conjIdx
}

// matchComposite assembles the widest composite probe an index supports
// from the statement's sargable conjuncts: for each leading column in
// order, the first equality conjunct on it extends the prefix; the first
// range conjunct on the column that ends the prefix becomes the trailing
// range. maxEq > 0 caps the equality-prefix width (PlanSpec.PrefixWidth:
// a capped probe consumes fewer key columns, widening the span — the
// dropped conjuncts stay in the WHERE loop, so the capped plan is
// observationally identical on a clean engine). Returns false when no
// conjunct touches the leading column.
func matchComposite(ix *Index, probes []indexProbe, conjIdx []int, arena *[]Value, maxEq int) (compositeProbe, bool) {
	p := compositeProbe{ix: ix, rangeIdx: -1}
	start := len(*arena)
	width := len(ix.Columns)
	if maxEq > 0 && maxEq < width {
		width = maxEq
	}
	eqLen := 0
	for eqLen < width {
		col := ix.Columns[eqLen]
		extended := false
		for i := range probes {
			if probes[i].op == sqlast.OpEq && strings.EqualFold(probes[i].col, col) {
				*arena = append(*arena, probes[i].val)
				eqLen++
				extended = true
				break
			}
		}
		if !extended {
			break
		}
	}
	// A trailing range binds to the key column right after the equality
	// prefix — whether the prefix ended because no equality conjunct
	// matched or because the width cap cut it short.
	if eqLen < len(ix.Columns) {
		col := ix.Columns[eqLen]
		for i := range probes {
			if probes[i].op != sqlast.OpEq && strings.EqualFold(probes[i].col, col) {
				p.hasRange = true
				p.rangeOp = probes[i].op
				p.rangeVal = probes[i].val
				p.rangeIdx = conjIdx[i]
				break
			}
		}
	}
	// An append past the arena's capacity may move the backing array;
	// slicing after the loop keeps the eq prefix pointing at live memory
	// either way (earlier probes keep their values in the old array).
	p.eq = (*arena)[start : start+eqLen : start+eqLen]
	return p, eqLen > 0 || p.hasRange
}

// planIndexAccess chooses an access path for a base-table scan given the
// statement's top-level WHERE conjuncts. It returns the candidate rows
// in key order when an index probe beats the full scan (fewer entries
// than table rows) — the span is a live subslice of the ordered store,
// so the scan itself allocates nothing. The cost model then charges only
// the rows actually touched: the WHERE loop runs over the candidates
// instead of the whole table. skipConj is the WHERE-conjunct position
// the executor must not re-evaluate (-1 normally): the
// CompositeProbePrefixSkip defect treats the trailing range conjunct as
// consumed by the probe while returning the whole equality-prefix span.
func (s *DB) planIndexAccess(t *Table, alias string, conjs []sqlast.Expr) (rows [][]Value, chosen *Index, skipConj int, ok bool) {
	if s.planSpec.DisableIndexPaths || len(t.indexes) == 0 {
		return nil, nil, -1, false
	}
	rel := s.planSpec.relSpec(alias)
	if rel.Force == ForceScan {
		s.cov.Hit("plan.force.scan")
		return nil, nil, -1, false
	}
	fs := s.faultSet()

	// Sargable conjuncts are extracted once per scan, into the instance's
	// reusable scratch buffers.
	probes, conjIdx := s.extractProbes(t, alias, conjs)
	if len(probes) == 0 {
		return nil, nil, -1, false
	}

	// PartialIndexScan defect: an equality probe on the leading column of
	// a *partial* index wrongly uses that index — regardless of cost, and
	// without re-checking the rows its predicate excludes. Auto planning
	// only: a forced plan names its index explicitly, and this defect
	// lives in the index *selection*.
	if f := fs.PartialIndex(); f != nil && rel.Force == ForceAuto {
		for i := range probes {
			if probes[i].op != sqlast.OpEq {
				continue
			}
			for _, ix := range t.indexes {
				if ix.Where == nil || !strings.EqualFold(ix.Columns[0], probes[i].col) {
					continue
				}
				probe := compositeProbe{ix: ix, eq: []Value{probes[i].val}, rangeIdx: -1}
				lo, hi := probe.span()
				rows := ix.entries[lo:hi]
				if s.indexDropObservable(t, &probe, rows, conjs) {
					s.trigger(f)
				}
				return rows, ix, -1, true
			}
		}
	}

	var best compositeProbe
	var bestLo, bestHi int
	if rel.Force == ForceIndex {
		// Forced index: use it regardless of cost. Inapplicable forcing —
		// unknown or partial index, or no sargable conjunct the index can
		// consume — degrades to the full scan, never errors.
		ix := t.findIndex(rel.Index)
		if ix == nil || ix.Where != nil {
			s.cov.Hit("plan.force.fallback")
			return nil, nil, -1, false
		}
		probe, pok := matchComposite(ix, probes, conjIdx, &s.scratch.keys, rel.PrefixWidth)
		if !pok {
			s.cov.Hit("plan.force.fallback")
			return nil, nil, -1, false
		}
		best = probe
		bestLo, bestHi = probe.span()
		s.cov.Hit("plan.force.index")
	} else {
		// Clean planning: the smallest composite span wins (under the
		// spec's prefix-width cap, if any).
		best, bestLo, bestHi, ok = s.bestCompositeSpan(t, probes, conjIdx, false, rel.PrefixWidth)
		if !ok || bestHi-bestLo >= len(t.Rows) {
			return nil, nil, -1, false
		}
	}

	ix := best.ix
	rows = ix.entries[bestLo:bestHi]
	skipConj = -1

	// The fault branches below interleave clean re-evaluation — which can
	// re-enter the planner through a subquery conjunct and overwrite the
	// scratch key arena — with reads of the chosen probe's eq prefix.
	// Give the probe its own backing first (off the clean hot path).
	if fs.HasPlanFaults() && len(best.eq) > 0 {
		best.eq = append([]Value(nil), best.eq...)
	}

	// CompositeProbePrefixSkip defect: the probe matches on the equality
	// prefix but treats the trailing range conjunct as already applied —
	// the whole prefix span comes back and the WHERE loop skips the
	// conjunct, so prefix-matching rows that fail the range appear in the
	// result. Checked first: it subsumes the span the boundary defects
	// would have perturbed.
	if f := fs.CompositePrefixSkip(); f != nil && len(best.eq) > 0 && best.hasRange {
		plo, phi := ix.eqSpan(best.eq)
		if plo != bestLo || phi != bestHi {
			rows = ix.entries[plo:phi]
			skipConj = best.rangeIdx
			if s.prefixSkipObservable(t, &best, conjs) {
				s.trigger(f)
			}
		}
		return rows, ix, skipConj, true
	}

	// IndexRangeBoundary defect: an inclusive range probe excludes its
	// boundary keys (<= behaves like <, >= like >) — in any span position,
	// single-column or trailing.
	if best.hasRange {
		if f := fs.RangeBoundary(best.rangeOp.String()); f != nil &&
			(best.rangeOp == sqlast.OpLe || best.rangeOp == sqlast.OpGe) {
			faultyOp := sqlast.OpLt
			if best.rangeOp == sqlast.OpGe {
				faultyOp = sqlast.OpGt
			}
			flo, fhi := ix.span(best.eq, faultyOp, best.rangeVal)
			if flo != bestLo || fhi != bestHi {
				rows = ix.entries[flo:fhi]
				if s.indexDropObservable(t, &best, rows, conjs) {
					s.trigger(f)
				}
			}
		}
	}

	// CompositeSpanBoundary defect: the trailing strict range of a
	// *composite* span (non-empty equality prefix) is computed with an
	// off-by-one fencepost — the boundary-adjacent entry is dropped (the
	// last entry for <, the first for >). Disjoint from IndexRangeBoundary,
	// which perturbs the inclusive operators.
	if f := fs.CompositeBoundary(); f != nil && len(best.eq) > 0 && best.hasRange &&
		(best.rangeOp == sqlast.OpLt || best.rangeOp == sqlast.OpGt) && bestHi > bestLo {
		flo, fhi := bestLo, bestHi
		if best.rangeOp == sqlast.OpLt {
			fhi--
		} else {
			flo++
		}
		rows = ix.entries[flo:fhi]
		if s.indexDropObservable(t, &best, rows, conjs) {
			s.trigger(f)
		}
	}

	// PrefixSpanTruncate defect: a probe that consumes an equality prefix
	// strictly shorter than the index's composite key — with no trailing
	// range, i.e. a whole-prefix span — computes its upper fencepost one
	// short, dropping the span's last entry. The auto planner reaches such
	// a span only when the query constrains just a leading subset of the
	// key; a width-capped forced plan (composite-vs-leading forcing)
	// reaches it for fully constrained queries too — where the auto plan
	// consumes the full key and the defect is invisible to the legacy
	// index-on/off plan pair.
	if f := fs.PrefixTruncate(); f != nil && !best.hasRange && len(best.eq) > 0 &&
		len(best.eq) < len(ix.Columns) && bestHi > bestLo {
		rows = ix.entries[bestLo : bestHi-1]
		if s.indexDropObservable(t, &best, rows, conjs) {
			s.trigger(f)
		}
	}

	if ix.stale {
		if f := fs.StaleIndex(); f != nil {
			if s.staleProbeDiverges(t, &best, rows) {
				s.trigger(f)
			}
		}
	}
	return rows, ix, skipConj, true
}

// planDMLAccess chooses the candidate mutation set for an UPDATE/DELETE
// WHERE clause: the identity set (row-slice first-element pointers) of
// the best clean composite span over the statement's top-level
// conjuncts. The set is snapshotted out of the ordered store before the
// caller mutates anything — index maintenance rewrites entries
// mid-statement, so the span subslice itself must not outlive planning.
// Clean semantics only: a mutation's row flow must follow the reference
// semantics regardless of injected plan faults, so no fault hook applies
// here, partial indexes are never used, a stale store falls back to the
// full scan, and so does any WHERE whose conjuncts could raise a
// runtime error on a skipped row (rowLocalTotal). Returns false when no
// span beats the full scan.
func (s *DB) planDMLAccess(t *Table, conjs []sqlast.Expr) (map[*Value]bool, bool) {
	if s.planSpec.DisableIndexPaths || len(t.indexes) == 0 || len(conjs) == 0 {
		return nil, false
	}
	rel := s.planSpec.relSpec(t.Name)
	if rel.Force == ForceScan {
		return nil, false
	}
	// Skipping a row skips the full-scan loop's evaluation of every
	// conjunct on it: legal only when no skipped evaluation could have
	// raised a runtime error, or the two plans would diverge in statement
	// status — and thus final table state — on error-raising dialects.
	for _, conj := range conjs {
		if !s.rowLocalTotal(conj) {
			return nil, false
		}
	}
	probes, conjIdx := s.extractProbes(t, t.Name, conjs)
	if len(probes) == 0 {
		return nil, false
	}
	var best compositeProbe
	var bestLo, bestHi int
	if rel.Force == ForceIndex {
		// Forced index, under the same clean-semantics gates as auto DML
		// planning (non-partial, non-stale); anything inapplicable falls
		// back to the full scan.
		ix := t.findIndex(rel.Index)
		if ix == nil || ix.Where != nil || ix.stale {
			return nil, false
		}
		probe, pok := matchComposite(ix, probes, conjIdx, &s.scratch.keys, rel.PrefixWidth)
		if !pok {
			return nil, false
		}
		best = probe
		bestLo, bestHi = probe.span()
	} else {
		var ok bool
		best, bestLo, bestHi, ok = s.bestCompositeSpan(t, probes, conjIdx, true, rel.PrefixWidth)
		if !ok || bestHi-bestLo >= len(t.Rows) {
			return nil, false
		}
	}
	cand := make(map[*Value]bool, bestHi-bestLo)
	for _, row := range best.ix.entries[bestLo:bestHi] {
		if len(row) > 0 {
			cand[&row[0]] = true
		}
	}
	return cand, true
}

// bestCompositeSpan picks the smallest composite span over a table's
// ordinary (non-partial) indexes; ties keep the first index in name
// order. skipStale additionally rejects stale stores — the DML
// planner's fallback rule. maxEq forwards the spec's prefix-width cap.
// ok is false when no index matches a probe.
func (s *DB) bestCompositeSpan(t *Table, probes []indexProbe, conjIdx []int, skipStale bool, maxEq int) (best compositeProbe, lo, hi int, ok bool) {
	bestLen := -1
	for _, ix := range t.indexes {
		if ix.Where != nil || (skipStale && ix.stale) {
			continue
		}
		probe, pok := matchComposite(ix, probes, conjIdx, &s.scratch.keys, maxEq)
		if !pok {
			continue
		}
		plo, phi := probe.span()
		if bestLen < 0 || phi-plo < bestLen {
			best, lo, hi, bestLen = probe, plo, phi, phi-plo
		}
	}
	return best, lo, hi, bestLen >= 0
}

// rowLocalTotal reports whether evaluating an expression over any row
// of one table is guaranteed error-free: no subquery or function call,
// no division or modulo on DivZeroError dialects, no cast on
// CastTextError dialects. Comparisons, logical operators, IS NULL,
// BETWEEN, IN lists, LIKE, CASE, concatenation, and wrap-around integer
// arithmetic are total in this engine.
func (s *DB) rowLocalTotal(e sqlast.Expr) bool {
	ok := true
	sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
		switch n := x.(type) {
		case *sqlast.Func, *sqlast.Subquery, *sqlast.Exists:
			ok = false
		case *sqlast.Cast:
			if s.dialect.CastTextError {
				ok = false
			}
		case *sqlast.Binary:
			if (n.Op == sqlast.OpDiv || n.Op == sqlast.OpMod) && s.dialect.DivZeroError {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// ---------------------------------------------------------------------
// Index-nested-loop join planning
// ---------------------------------------------------------------------

// joinProbe is an index-nested-loop access path for one inner-like join
// step: for every accumulated left row, leftExprs are evaluated once and
// the resulting composite key is binary-searched in ix's ordered store,
// replacing the quadratic candidate loop over the right relation.
// conjIdx holds the positions of the probe conjuncts among the split ON
// conjuncts, one per key column.
type joinProbe struct {
	ix        *Index
	leftExprs []sqlast.Expr
	conjIdx   []int
}

// covers reports whether an ON-conjunct position is consumed by the
// probe's equality key.
func (p *joinProbe) covers(ci int) bool {
	for _, idx := range p.conjIdx {
		if idx == ci {
			return true
		}
	}
	return false
}

// joinEqConj matches one ON conjunct as "right.col = leftExpr" (either
// operand order) for the relation being joined, returning the right
// column name and the left-side key expression.
func joinEqConj(conj sqlast.Expr, rels []matRel, right matRel) (string, sqlast.Expr, bool) {
	b, ok := conj.(*sqlast.Binary)
	if !ok || b.Op != sqlast.OpEq {
		return "", nil, false
	}
	for _, side := range [2][2]sqlast.Expr{{b.L, b.R}, {b.R, b.L}} {
		col, ok := side[0].(*sqlast.ColumnRef)
		if !ok || col.Table == "" || !strings.EqualFold(col.Table, right.alias) {
			continue
		}
		if right.table.ColumnIndex(col.Column) < 0 {
			continue
		}
		if !leftOnlyExpr(side[1], rels) {
			continue
		}
		return col.Column, side[1], true
	}
	return "", nil, false
}

// planJoinProbe chooses an index-nested-loop path for a join step, or
// nil for the quadratic candidate loop. The plan spec gates it first:
// DisableIndexPaths and the step's ProbeOff forcing suppress the probe,
// and so does a ForceScan on the right relation's alias (scanning a
// relation and probing into it are the same access-path choice).
func (s *DB) planJoinProbe(sel *sqlast.Select, rels []matRel, right matRel, conjs []sqlast.Expr, step int) *joinProbe {
	if s.planSpec.DisableIndexPaths {
		return nil
	}
	if s.planSpec.joinProbeOff(step) || s.planSpec.relSpec(right.alias).Force == ForceScan {
		s.cov.Hit("plan.join.probeoff")
		return nil
	}
	return s.matchJoinProbe(sel, rels, right, conjs)
}

// matchJoinProbe is the spec-independent matching half of planJoinProbe
// (the plan enumerator calls it to learn whether a step is
// probe-eligible without consulting the active spec). Each probe
// conjunct must be a plain equality between a column of the (base-table)
// right relation and an expression over the already-joined relations
// only; an index whose leading columns are all matched by such conjuncts
// probes the composite equality span (multi-conjunct ON keys like
// "l.a = r.x AND l.b = r.y" bind a two-column prefix). The longest
// matched prefix wins — ties keep the first index in name order.
// Candidates come out in key order rather than right-table order, so the
// statement must be order-safe (the same gate the base-table planner
// uses); the WHERE and residual-ON evaluation over the candidates is
// unchanged, so with faults disabled the probe path is observationally
// identical to the quadratic loop.
func (s *DB) matchJoinProbe(sel *sqlast.Select, rels []matRel, right matRel, conjs []sqlast.Expr) *joinProbe {
	if right.table == nil || len(right.table.indexes) == 0 || len(conjs) == 0 {
		return nil
	}
	if !indexOrderSafe(sel) {
		return nil
	}
	// Extract the eligible equality conjuncts once per join step.
	var cols []string
	var exprs []sqlast.Expr
	var idxs []int
	for ci, conj := range conjs {
		if col, le, ok := joinEqConj(conj, rels, right); ok {
			cols = append(cols, col)
			exprs = append(exprs, le)
			idxs = append(idxs, ci)
		}
	}
	if len(cols) == 0 {
		return nil
	}
	var best *joinProbe
	for _, ix := range right.table.indexes {
		// A stale store (StaleIndexAfterUpdate) falls back to the
		// quadratic loop: probing it per left row would need a per-key
		// divergence check to keep ground truth precise, and the quadratic
		// loop is clean semantics anyway.
		if ix.Where != nil || ix.stale {
			continue
		}
		probe := &joinProbe{ix: ix}
		for _, col := range ix.Columns {
			found := false
			for i := range cols {
				if strings.EqualFold(cols[i], col) && !probe.covers(idxs[i]) {
					probe.leftExprs = append(probe.leftExprs, exprs[i])
					probe.conjIdx = append(probe.conjIdx, idxs[i])
					found = true
					break
				}
			}
			if !found {
				break
			}
		}
		if len(probe.leftExprs) == 0 {
			continue
		}
		if best == nil || len(probe.leftExprs) > len(best.leftExprs) {
			best = probe
		}
	}
	return best
}

// leftOnlyExpr reports whether an expression can be evaluated over the
// already-joined relations alone: every column reference is qualified
// with an earlier relation's alias, and no subquery appears (a subquery
// could correlate into the probe side).
func leftOnlyExpr(e sqlast.Expr, rels []matRel) bool {
	ok := true
	sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
		switch n := x.(type) {
		case *sqlast.Subquery, *sqlast.Exists:
			ok = false
		case *sqlast.ColumnRef:
			if n.Table == "" {
				ok = false
				return false
			}
			found := false
			for i := range rels {
				if strings.EqualFold(rels[i].alias, n.Table) {
					found = true
					break
				}
			}
			if !found {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// ---------------------------------------------------------------------
// Ground-truth trigger precision
// ---------------------------------------------------------------------

// indexDropObservable reports whether a faulty candidate set loses a row
// the clean full scan would return: some table row satisfies the probe
// and every WHERE conjunct under clean semantics but is absent from the
// candidates. Ground-truth accounting only — its work is excluded from
// the statement cost.
func (s *DB) indexDropObservable(t *Table, probe *compositeProbe, candidates [][]Value, conjs []sqlast.Expr) bool {
	saved := s.cost
	defer func() { s.cost = saved }()
	present := make(map[*Value]bool, len(candidates))
	for _, r := range candidates {
		if len(r) > 0 {
			present[&r[0]] = true
		}
	}
	env := &rowEnv{rels: []rowRel{tableRowRel(t, nil)}}
	ctx := s.newEvalCtx(env)
	for _, row := range t.Rows {
		if len(row) > 0 && present[&row[0]] {
			continue
		}
		if !probe.rowMatches(ctx, row) {
			continue
		}
		env.rels[0].vals = row
		if s.conjsPassCleanly(ctx, conjs, -1) {
			return true
		}
	}
	return false
}

// prefixSkipObservable reports whether the CompositeProbePrefixSkip
// defect adds a row the clean plan would not return: some row of the
// equality-prefix span fails the trailing range conjunct under clean
// semantics while passing every other WHERE conjunct — so it surfaces in
// the result despite the WHERE loop (which skips the trailing conjunct).
// Ground-truth accounting only — its work is excluded from the statement
// cost.
func (s *DB) prefixSkipObservable(t *Table, probe *compositeProbe, conjs []sqlast.Expr) bool {
	saved := s.cost
	defer func() { s.cost = saved }()
	env := &rowEnv{rels: []rowRel{tableRowRel(t, nil)}}
	ctx := s.newEvalCtx(env)
	plo, phi := probe.ix.eqSpan(probe.eq)
	rc := probe.ix.leads[len(probe.eq)]
	for _, row := range probe.ix.entries[plo:phi] {
		if ctx.evalCompare(probe.rangeOp, row[rc], probe.rangeVal) == TriTrue {
			continue // the clean span keeps it too
		}
		env.rels[0].vals = row
		if s.conjsPassCleanly(ctx, conjs, probe.rangeIdx) {
			return true
		}
	}
	return false
}

// conjsPassCleanly evaluates the WHERE conjuncts (except position skip)
// over the row bound in ctx, under clean semantics. A conjunct that
// cannot be evaluated row-locally (it references another join relation
// or an outer scope) cannot refute the row, so it counts as passing —
// triggering too eagerly is safe, missing a trigger on an observable
// divergence would misreport a found bug as a false positive.
func (s *DB) conjsPassCleanly(ctx *evalCtx, conjs []sqlast.Expr, skip int) bool {
	for i, conj := range conjs {
		if i == skip {
			continue
		}
		tri, err := ctx.evalTri(conj)
		if err != nil {
			continue
		}
		if tri != TriTrue {
			return false
		}
	}
	return true
}

// staleProbeDiverges reports whether a probe on a stale index returns a
// row multiset different from what a clean scan of the table would:
// the observable symptom of StaleIndexAfterUpdate. Ground-truth
// accounting only — its work is excluded from the statement cost.
func (s *DB) staleProbeDiverges(t *Table, probe *compositeProbe, candidates [][]Value) bool {
	saved := s.cost
	defer func() { s.cost = saved }()
	counts := make(map[string]int, len(candidates))
	extra := 0
	for _, r := range candidates {
		counts[renderRow(r)]++
		extra++
	}
	ix := probe.ix
	ctx := s.newEvalCtx(nil)
	for _, row := range t.Rows {
		if !s.indexCovers(t, ix, row) || !probe.rowMatches(ctx, row) {
			continue
		}
		k := renderRow(row)
		if counts[k] == 0 {
			return true // the clean scan has a row the probe missed
		}
		counts[k]--
		extra--
	}
	return extra != 0 // the probe returned detached rows
}

// joinResidualRejects reports whether any residual ON conjunct (every
// conjunct the probe's equality key does not cover) rejects the
// currently bound join pair under clean semantics: the observable
// symptom of JoinIndexResidual, which keeps the pair anyway. An
// evaluation error also counts — the clean plan would have surfaced it,
// the faulty plan never evaluates. Ground-truth accounting only — its
// work is excluded from the statement cost.
func (s *DB) joinResidualRejects(ctx *evalCtx, conjs []sqlast.Expr, probe *joinProbe) bool {
	saved := s.cost
	defer func() { s.cost = saved }()
	for i, conj := range conjs {
		if probe.covers(i) {
			continue
		}
		tri, err := ctx.evalTri(conj)
		if err != nil || tri != TriTrue {
			return true
		}
	}
	return false
}
