package engine

// Access-path planning and index maintenance. Indexes carry a real
// ordered key→row store over their leading column (catalog.go); the DML
// executors keep it incrementally in sync with the table's visible rows,
// and planIndexAccess chooses between the full scan and an index probe
// for the first FROM relation of a SELECT.
//
// The candidate set an index probe returns is exactly the set of rows
// whose stored leading-column value satisfies the probe conjunct under
// the clean comparison semantics (evalCompare over Compare order — the
// same total order the entries are sorted by). The WHERE loop still
// re-evaluates every conjunct, fault hooks included, over the candidates,
// so with faults disabled the index path is observationally identical to
// the full scan. The injected index defects (PartialIndexScan,
// IndexRangeBoundary, StaleIndexAfterUpdate) perturb the candidate set
// itself — rows they drop cannot be resurrected downstream, which is what
// makes them visible to TLP and NoREC.

import (
	"sort"
	"strings"

	"sqlancerpp/internal/sqlast"
)

// ---------------------------------------------------------------------
// Ordered store maintenance
// ---------------------------------------------------------------------

// indexKeyOf returns whether a row is covered by the index (partial
// predicate TRUE; errors count as uncovered) and its leading-column key.
func (s *DB) indexKeyOf(t *Table, ix *Index, row []Value) (bool, Value) {
	if ix.Where != nil {
		env := &rowEnv{rels: []rowRel{tableRowRel(t, row)}}
		tri, err := s.newEvalCtx(env).evalTri(ix.Where)
		if err != nil || tri != TriTrue {
			return false, Value{}
		}
	}
	return true, row[ix.lead]
}

// buildIndex (re)builds the ordered store from the table's visible rows.
// Entries sort by key with ties in table order — the same order the
// incremental path (insert at the end of the equal-key span) maintains.
func (s *DB) buildIndex(t *Table, ix *Index) {
	ix.lead = t.ColumnIndex(ix.Columns[0])
	ix.entries = ix.entries[:0]
	ix.stale = false
	for _, row := range t.Rows {
		if covered, key := s.indexKeyOf(t, ix, row); covered {
			ix.entries = append(ix.entries, indexEntry{key: key, row: row})
		}
	}
	sort.SliceStable(ix.entries, func(i, j int) bool {
		return compareForSort(ix.entries[i].key, ix.entries[j].key) < 0
	})
}

// insertEntry adds one entry at the end of its equal-key span.
func (ix *Index) insertEntry(key Value, row []Value) {
	i := sort.Search(len(ix.entries), func(i int) bool {
		return compareForSort(ix.entries[i].key, key) > 0
	})
	ix.entries = append(ix.entries, indexEntry{})
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = indexEntry{key: key, row: row}
}

// removeEntry drops the entry of one row, located by key and row
// identity (the row slice's first element).
func (ix *Index) removeEntry(key Value, row []Value) {
	if len(row) == 0 {
		return
	}
	j := sort.Search(len(ix.entries), func(i int) bool {
		return compareForSort(ix.entries[i].key, key) >= 0
	})
	for ; j < len(ix.entries) && compareForSort(ix.entries[j].key, key) == 0; j++ {
		if len(ix.entries[j].row) > 0 && &ix.entries[j].row[0] == &row[0] {
			ix.entries = append(ix.entries[:j], ix.entries[j+1:]...)
			return
		}
	}
}

// indexInsertRows adds entries for rows that just became visible
// (INSERT, or REFRESH TABLE flushing pending rows).
func (s *DB) indexInsertRows(t *Table, rows [][]Value) {
	for _, ix := range t.indexes {
		for _, row := range rows {
			if covered, key := s.indexKeyOf(t, ix, row); covered {
				ix.insertEntry(key, row)
			}
		}
	}
}

// indexRemoveRow drops the entries of one removed row. Coverage is a
// pure function of the row's values, so recomputing it finds the same
// entries the insertion created.
func (s *DB) indexRemoveRow(t *Table, row []Value) {
	for _, ix := range t.indexes {
		if covered, key := s.indexKeyOf(t, ix, row); covered {
			ix.removeEntry(key, row)
		}
	}
}

// indexUpdateRow swaps the entries of one updated row (remove the old
// row's entries, insert the new row's). With the StaleIndexAfterUpdate
// fault active the maintenance is skipped entirely and every index whose
// entries would have changed is marked stale — later probes on a stale
// index return detached pre-update rows or miss the updated ones.
func (s *DB) indexUpdateRow(t *Table, old, nr []Value, skipMaintenance bool) {
	for _, ix := range t.indexes {
		co, ko := s.indexKeyOf(t, ix, old)
		cn, kn := s.indexKeyOf(t, ix, nr)
		if skipMaintenance {
			if co || cn {
				ix.stale = true
			}
			continue
		}
		if co {
			ix.removeEntry(ko, old)
		}
		if cn {
			ix.insertEntry(kn, nr)
		}
	}
}

// indexClear empties every index on a table (unconditional DELETE): an
// empty store is consistent with an empty table, so staleness resets.
func indexClear(t *Table) {
	for _, ix := range t.indexes {
		ix.entries = ix.entries[:0]
		ix.stale = false
	}
}

// ---------------------------------------------------------------------
// Probe extraction and spans
// ---------------------------------------------------------------------

// indexProbe is a normalized sargable conjunct: column op literal.
type indexProbe struct {
	col string
	op  sqlast.BinaryOp
	val Value
}

// flipCmp mirrors a comparison operator for "literal op column" shapes.
func flipCmp(op sqlast.BinaryOp) sqlast.BinaryOp {
	switch op {
	case sqlast.OpLt:
		return sqlast.OpGt
	case sqlast.OpLe:
		return sqlast.OpGe
	case sqlast.OpGt:
		return sqlast.OpLt
	case sqlast.OpGe:
		return sqlast.OpLe
	default: // =, <=>, IS NOT DISTINCT FROM are symmetric
		return op
	}
}

// litValue converts a literal AST node to a runtime value.
func litValue(l *sqlast.Literal) Value {
	switch l.Kind {
	case sqlast.LitNull:
		return Null()
	case sqlast.LitInt:
		return Int(l.Int)
	case sqlast.LitText:
		return Text(l.Text)
	default:
		return Bool(l.Bool)
	}
}

// matchProbe extracts an index probe from one top-level WHERE conjunct
// for the relation (alias, t). It accepts =, <, <=, >, >= and the
// null-safe equality spellings between a column of the relation and a
// literal. The null-safe forms normalize to = only for non-NULL
// literals: over non-NULL keys the two agree, and NULL keys are outside
// every span ("x <=> NULL" would instead select them, so it is not
// sargable here).
func matchProbe(conj sqlast.Expr, alias string, t *Table) (indexProbe, bool) {
	b, ok := conj.(*sqlast.Binary)
	if !ok {
		return indexProbe{}, false
	}
	op := b.Op
	col, okc := b.L.(*sqlast.ColumnRef)
	lit, okl := b.R.(*sqlast.Literal)
	if !okc || !okl {
		col, okc = b.R.(*sqlast.ColumnRef)
		lit, okl = b.L.(*sqlast.Literal)
		if !okc || !okl {
			return indexProbe{}, false
		}
		op = flipCmp(op)
	}
	v := litValue(lit)
	switch op {
	case sqlast.OpEq, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe:
		// With a NULL operand these are never TRUE; the span is empty.
	case sqlast.OpNullSafeEq, sqlast.OpIsNotDistinct:
		if v.IsNull() {
			return indexProbe{}, false
		}
		op = sqlast.OpEq
	default:
		return indexProbe{}, false
	}
	if col.Table != "" && !strings.EqualFold(col.Table, alias) {
		return indexProbe{}, false
	}
	if t.ColumnIndex(col.Column) < 0 {
		return indexProbe{}, false
	}
	return indexProbe{col: col.Column, op: op, val: v}, true
}

// span returns the half-open entry range [lo, hi) whose keys satisfy
// "key op val" under the clean comparison semantics. Entries sort in
// compareForSort order (NULLs first), which agrees with Compare on
// non-NULL values — the same order evalCompare uses — so the matching
// region is contiguous and NULL keys fall outside every span.
func (ix *Index) span(op sqlast.BinaryOp, val Value) (int, int) {
	n := len(ix.entries)
	if val.IsNull() {
		return 0, 0
	}
	lowerEq := sort.Search(n, func(i int) bool { return compareForSort(ix.entries[i].key, val) >= 0 })
	upperEq := sort.Search(n, func(i int) bool { return compareForSort(ix.entries[i].key, val) > 0 })
	switch op {
	case sqlast.OpEq:
		return lowerEq, upperEq
	case sqlast.OpLt:
		return ix.firstNonNull(), lowerEq
	case sqlast.OpLe:
		return ix.firstNonNull(), upperEq
	case sqlast.OpGt:
		return upperEq, n
	default: // OpGe
		return lowerEq, n
	}
}

// firstNonNull returns the index of the first non-NULL key.
func (ix *Index) firstNonNull() int {
	return sort.Search(len(ix.entries), func(i int) bool { return !ix.entries[i].key.IsNull() })
}

// entryRows extracts the candidate rows of an entry span.
func entryRows(entries []indexEntry) [][]Value {
	rows := make([][]Value, len(entries))
	for i := range entries {
		rows[i] = entries[i].row
	}
	return rows
}

// ---------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------

// indexPlannable reports whether pre-filtering the first FROM relation
// with an index probe preserves the statement's semantics: every
// subsequent join must be inner-like (no NULL extension), so removing a
// left row that fails the probe conjunct can only remove joined rows the
// WHERE clause would have dropped anyway.
func indexPlannable(from []sqlast.FromItem) bool {
	for _, it := range from[1:] {
		switch it.Join {
		case sqlast.JoinComma, sqlast.JoinCross, sqlast.JoinInner, sqlast.JoinNatural:
		default:
			return false
		}
	}
	return true
}

// indexOrderSafe reports whether swapping the first relation's scan
// order can change the statement's result beyond row order. The index
// path yields candidates in key order, not table order — invisible to
// multiset comparison, but observable wherever order leaks into row
// selection or values: LIMIT/OFFSET cut by position (an ORDER BY does
// not neutralize them — the sort is stable, so ties keep scan order),
// and grouped execution evaluates non-aggregate expressions on each
// group's first row.
func indexOrderSafe(sel *sqlast.Select) bool {
	if sel.Limit != nil || sel.Offset != nil {
		return false
	}
	if len(sel.GroupBy) > 0 {
		return false // group representatives are first-row dependent
	}
	if !selHasAggregates(sel) {
		return true // plain select: only the output order changes
	}
	// Global aggregate: one output row, safe iff nothing reads a column
	// (or runs a possibly-correlated subquery) outside an aggregate call
	// — the single group's representative row is scan-order dependent.
	for i := range sel.Items {
		if sel.Items[i].Star || !orderFreeExpr(sel.Items[i].Expr) {
			return false
		}
	}
	for _, o := range sel.OrderBy {
		if !orderFreeExpr(o.Expr) {
			return false
		}
	}
	return sel.Having == nil || orderFreeExpr(sel.Having)
}

// orderFreeExpr reports whether an expression's value over a single
// aggregate group is independent of the scan order: every column
// reference and every subquery sits inside an aggregate call.
func orderFreeExpr(e sqlast.Expr) bool {
	safe := true
	sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
		switch n := x.(type) {
		case *sqlast.Func:
			if isAggregate(n) {
				return false // aggregates fold the whole group: order-free
			}
		case *sqlast.ColumnRef, *sqlast.Subquery, *sqlast.Exists:
			safe = false
		}
		return safe
	})
	return safe
}

// planIndexAccess chooses an access path for a base-table scan given the
// statement's top-level WHERE conjuncts. It returns the candidate rows
// in index order when an index probe beats the full scan (fewer entries
// than table rows). The cost model then charges only the rows actually
// touched: the WHERE loop runs over the candidates instead of the whole
// table.
func (s *DB) planIndexAccess(t *Table, alias string, conjs []sqlast.Expr) ([][]Value, bool) {
	if s.noIndexScan || len(t.indexes) == 0 {
		return nil, false
	}
	fs := s.faultSet()

	// PartialIndexScan defect: an equality probe on the leading column of
	// a *partial* index wrongly uses that index — regardless of cost, and
	// without re-checking the rows its predicate excludes.
	if f := fs.PartialIndex(); f != nil {
		for _, conj := range conjs {
			probe, ok := matchProbe(conj, alias, t)
			if !ok || probe.op != sqlast.OpEq {
				continue
			}
			for _, ix := range t.indexes {
				if ix.Where == nil || !strings.EqualFold(ix.Columns[0], probe.col) {
					continue
				}
				lo, hi := ix.span(probe.op, probe.val)
				rows := entryRows(ix.entries[lo:hi])
				if s.indexDropObservable(t, probe, rows, conjs) {
					s.trigger(f)
				}
				return rows, true
			}
		}
	}

	// Clean planning: ordinary (non-partial) indexes, smallest span wins;
	// ties keep the first candidate in (conjunct, index-name) order.
	var best *Index
	var bestProbe indexProbe
	bestLo, bestHi := 0, 0
	bestLen := -1
	for _, conj := range conjs {
		probe, ok := matchProbe(conj, alias, t)
		if !ok {
			continue
		}
		for _, ix := range t.indexes {
			if ix.Where != nil || !strings.EqualFold(ix.Columns[0], probe.col) {
				continue
			}
			lo, hi := ix.span(probe.op, probe.val)
			if bestLen < 0 || hi-lo < bestLen {
				best, bestProbe, bestLo, bestHi, bestLen = ix, probe, lo, hi, hi-lo
			}
		}
	}
	if best == nil || bestLen >= len(t.Rows) {
		return nil, false
	}

	rows := entryRows(best.entries[bestLo:bestHi])

	// IndexRangeBoundary defect: an inclusive range probe excludes its
	// boundary keys (<= behaves like <, >= like >).
	if f := fs.RangeBoundary(bestProbe.op.String()); f != nil &&
		(bestProbe.op == sqlast.OpLe || bestProbe.op == sqlast.OpGe) {
		faultyOp := sqlast.OpLt
		if bestProbe.op == sqlast.OpGe {
			faultyOp = sqlast.OpGt
		}
		flo, fhi := best.span(faultyOp, bestProbe.val)
		if flo != bestLo || fhi != bestHi {
			rows = entryRows(best.entries[flo:fhi])
			if s.indexDropObservable(t, bestProbe, rows, conjs) {
				s.trigger(f)
			}
		}
	}

	if best.stale {
		if f := fs.StaleIndex(); f != nil {
			if s.staleProbeDiverges(t, best, bestProbe, rows) {
				s.trigger(f)
			}
		}
	}
	return rows, true
}

// ---------------------------------------------------------------------
// Index-nested-loop join planning
// ---------------------------------------------------------------------

// joinProbe is an index-nested-loop access path for one inner-like join
// step: for every accumulated left row, leftExpr is evaluated once and
// the resulting key is binary-searched in ix's ordered store, replacing
// the quadratic candidate loop over the right relation. conjIdx is the
// position of the probe conjunct among the split ON conjuncts.
type joinProbe struct {
	ix       *Index
	leftExpr sqlast.Expr
	conjIdx  int
}

// planJoinProbe chooses an index-nested-loop path for a join step, or
// nil for the quadratic candidate loop. The probe conjunct must be a
// plain equality between a column of the (base-table) right relation
// whose leading-column index is fresh and non-partial, and an
// expression over the already-joined relations only. Candidates come
// out in key order rather than right-table order, so the statement must
// be order-safe (the same gate the base-table planner uses); the WHERE
// and residual-ON evaluation over the candidates is unchanged, so with
// faults disabled the probe path is observationally identical to the
// quadratic loop.
func (s *DB) planJoinProbe(sel *sqlast.Select, rels []matRel, right matRel, conjs []sqlast.Expr) *joinProbe {
	if s.noIndexScan || right.table == nil || len(right.table.indexes) == 0 || len(conjs) == 0 {
		return nil
	}
	if !indexOrderSafe(sel) {
		return nil
	}
	for ci, conj := range conjs {
		b, ok := conj.(*sqlast.Binary)
		if !ok || b.Op != sqlast.OpEq {
			continue
		}
		for _, side := range [2][2]sqlast.Expr{{b.L, b.R}, {b.R, b.L}} {
			col, ok := side[0].(*sqlast.ColumnRef)
			if !ok || col.Table == "" || !strings.EqualFold(col.Table, right.alias) {
				continue
			}
			if right.table.ColumnIndex(col.Column) < 0 {
				continue
			}
			if !leftOnlyExpr(side[1], rels) {
				continue
			}
			for _, ix := range right.table.indexes {
				// A stale store (StaleIndexAfterUpdate) falls back to the
				// quadratic loop: probing it per left row would need a
				// per-key divergence check to keep ground truth precise,
				// and the quadratic loop is clean semantics anyway.
				if ix.Where != nil || ix.stale || !strings.EqualFold(ix.Columns[0], col.Column) {
					continue
				}
				return &joinProbe{ix: ix, leftExpr: side[1], conjIdx: ci}
			}
		}
	}
	return nil
}

// leftOnlyExpr reports whether an expression can be evaluated over the
// already-joined relations alone: every column reference is qualified
// with an earlier relation's alias, and no subquery appears (a subquery
// could correlate into the probe side).
func leftOnlyExpr(e sqlast.Expr, rels []matRel) bool {
	ok := true
	sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
		switch n := x.(type) {
		case *sqlast.Subquery, *sqlast.Exists:
			ok = false
		case *sqlast.ColumnRef:
			if n.Table == "" {
				ok = false
				return false
			}
			found := false
			for i := range rels {
				if strings.EqualFold(rels[i].alias, n.Table) {
					found = true
					break
				}
			}
			if !found {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// ---------------------------------------------------------------------
// Ground-truth trigger precision
// ---------------------------------------------------------------------

// indexDropObservable reports whether a faulty candidate set loses a row
// the clean full scan would return: some table row satisfies the probe
// and every WHERE conjunct under clean semantics but is absent from the
// candidates. Ground-truth accounting only — its work is excluded from
// the statement cost.
func (s *DB) indexDropObservable(t *Table, probe indexProbe, candidates [][]Value, conjs []sqlast.Expr) bool {
	saved := s.cost
	defer func() { s.cost = saved }()
	present := make(map[*Value]bool, len(candidates))
	for _, r := range candidates {
		if len(r) > 0 {
			present[&r[0]] = true
		}
	}
	ci := t.ColumnIndex(probe.col)
	env := &rowEnv{rels: []rowRel{tableRowRel(t, nil)}}
	ctx := s.newEvalCtx(env)
	for _, row := range t.Rows {
		if len(row) > 0 && present[&row[0]] {
			continue
		}
		if ctx.evalCompare(probe.op, row[ci], probe.val) != TriTrue {
			continue
		}
		env.rels[0].vals = row
		pass := true
		for _, conj := range conjs {
			tri, err := ctx.evalTri(conj)
			if err != nil {
				// The conjunct references another join relation (or an
				// outer scope) and cannot be evaluated row-locally; it
				// cannot refute the row, so assume it passes. Triggering
				// too eagerly is safe — missing a trigger on an observable
				// divergence would misreport a found bug as a false
				// positive.
				continue
			}
			if tri != TriTrue {
				pass = false
				break
			}
		}
		if pass {
			return true
		}
	}
	return false
}

// staleProbeDiverges reports whether a probe on a stale index returns a
// row multiset different from what a clean scan of the table would:
// the observable symptom of StaleIndexAfterUpdate. Ground-truth
// accounting only — its work is excluded from the statement cost.
func (s *DB) staleProbeDiverges(t *Table, ix *Index, probe indexProbe, candidates [][]Value) bool {
	saved := s.cost
	defer func() { s.cost = saved }()
	counts := make(map[string]int, len(candidates))
	extra := 0
	for _, r := range candidates {
		counts[renderRow(r)]++
		extra++
	}
	ctx := s.newEvalCtx(nil)
	for _, row := range t.Rows {
		covered, key := s.indexKeyOf(t, ix, row)
		if !covered || ctx.evalCompare(probe.op, key, probe.val) != TriTrue {
			continue
		}
		k := renderRow(row)
		if counts[k] == 0 {
			return true // the clean scan has a row the probe missed
		}
		counts[k]--
		extra--
	}
	return extra != 0 // the probe returned detached rows
}

// joinResidualRejects reports whether any residual ON conjunct (every
// conjunct except the probe's) rejects the currently bound join pair
// under clean semantics: the observable symptom of JoinIndexResidual,
// which keeps the pair anyway. An evaluation error also counts — the
// clean plan would have surfaced it, the faulty plan never evaluates.
// Ground-truth accounting only — its work is excluded from the
// statement cost.
func (s *DB) joinResidualRejects(ctx *evalCtx, conjs []sqlast.Expr, probeIdx int) bool {
	saved := s.cost
	defer func() { s.cost = saved }()
	for i, conj := range conjs {
		if i == probeIdx {
			continue
		}
		tri, err := ctx.evalTri(conj)
		if err != nil || tri != TriTrue {
			return true
		}
	}
	return false
}
