package engine

import (
	"sqlancerpp/internal/coverage"
	"sqlancerpp/internal/feature"
	"sqlancerpp/internal/sqlast"
)

// init registers every coverage point the engine can hit, so that
// coverage percentages have a stable denominator (Table 3's metric).
func init() {
	pts := []string{
		"parse.ok", "parse.error",
		"eval.unary.not", "eval.unary.minus", "eval.unary.plus", "eval.unary.bitnot",
		"eval.case", "eval.between", "eval.in", "eval.like",
		"eval.func.scalar-minmax",
		"eval.cast.INTEGER", "eval.cast.TEXT", "eval.cast.BOOLEAN",
		"filter.eval",
		"exec.select", "exec.scan.table", "exec.scan.view", "exec.scan.derived",
		"exec.scan.index", "exec.join.probe",
		"plan.force.scan", "plan.force.index", "plan.force.fallback",
		"plan.join.probeoff", "plan.swap",
		"exec.distinct", "exec.orderby", "exec.limit", "exec.offset",
		"exec.groupby", "exec.compound",
		"exec.setop.UNION", "exec.setop.UNION ALL",
		"exec.setop.INTERSECT", "exec.setop.EXCEPT",
		"exec.createtable", "exec.createindex", "exec.createview",
		"exec.insert", "exec.insert.ignored", "exec.update", "exec.delete",
		"exec.alter", "exec.droptable", "exec.dropview", "exec.analyze",
		"exec.refresh", "exec.dropindex", "exec.reindex",
	}
	for _, p := range pts {
		coverage.RegisterPoint(p)
	}
	for _, op := range []sqlast.BinaryOp{
		sqlast.OpAdd, sqlast.OpSub, sqlast.OpMul, sqlast.OpDiv, sqlast.OpMod,
		sqlast.OpConcat, sqlast.OpBitAnd, sqlast.OpBitOr, sqlast.OpBitXor,
		sqlast.OpShl, sqlast.OpShr, sqlast.OpEq, sqlast.OpNeq, sqlast.OpNeq2,
		sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe,
		sqlast.OpNullSafeEq, sqlast.OpAnd, sqlast.OpOr, sqlast.OpXor,
		sqlast.OpIsDistinct, sqlast.OpIsNotDistinct,
	} {
		coverage.RegisterPoint("eval.binary." + op.String())
	}
	for _, fn := range FuncNames() {
		coverage.RegisterPoint("eval.func." + fn)
	}
	for _, agg := range feature.Aggregates {
		coverage.RegisterPoint("eval.aggregate." + agg)
	}
	for _, j := range feature.Joins {
		coverage.RegisterPoint("exec.join." + j)
	}
	for _, br := range []string{
		"filter.keep", "case.searched", "agg.empty",
		"constraint.violation", "where.present", "distinct.dup",
		"view.named", "insert.pending",
	} {
		coverage.RegisterBranch(br)
	}
	// Per-operator, per-function, and per-join branches give the
	// coverage metric the granularity of real branch coverage.
	for _, op := range []sqlast.BinaryOp{
		sqlast.OpEq, sqlast.OpNeq, sqlast.OpNeq2, sqlast.OpLt, sqlast.OpLe,
		sqlast.OpGt, sqlast.OpGe, sqlast.OpNullSafeEq, sqlast.OpIsDistinct,
		sqlast.OpIsNotDistinct,
	} {
		coverage.RegisterBranch("cmp.null." + op.String())
	}
	for _, fn := range FuncNames() {
		coverage.RegisterBranch("func.null." + fn)
	}
	for _, j := range feature.Joins {
		coverage.RegisterBranch("join.match." + j)
	}
	for _, agg := range feature.Aggregates {
		coverage.RegisterBranch("agg.distinct." + agg)
	}
}
