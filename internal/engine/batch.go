package engine

import (
	"strings"

	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/sqlast"
)

// This file implements batch-at-a-time filter execution: the scan/filter
// path gathers candidate rows into column vectors and evaluates the
// vectorizable WHERE conjuncts lane-by-lane into a selection bitmap,
// falling back to the scalar fault-hooked evaluator (filter.go) for
// everything else. The contract is strict observational equivalence with
// row-at-a-time execution: per row, each conjunct charges the same cost,
// hits the same coverage points, raises the same errors in the same
// order, and triggers the same faults — at every batch size, which is
// what keeps campaign reports byte-identical when -batch changes.
//
// The equivalence holds because the commit pass (commitFilterRow) stays
// row-major and walks the conjuncts in their original order: vectorized
// conjuncts only *account* their evaluation there (reading the verdict
// precomputed by vectorPass), scalar conjuncts evaluate in place. The
// vector pass itself is pure computation and charges nothing.

// batchWord is the selection bitmap's lane-word width. The BatchTailDrop
// defect is defined in terms of this fixed width — not the configured
// batch size — so the defect's observable behavior does not depend on
// the -batch harness knob.
const batchWord = 64

// maxVecConjs bounds how many conjuncts of one predicate vectorize (the
// per-row flip mask is a uint32); conjuncts past the cap use the scalar
// fallback, which is always semantically equivalent.
const maxVecConjs = 32

// Batch is one batch of filter candidates in columnar form: a gather
// buffer for the current column vector, the selection bitmap the lane
// kernels AND into, and the per-row record of lanes kept only by the
// VecCompareNullTrue defect.
type Batch struct {
	sel  []uint64 // selection bitmap, bit i = row i still passing
	flip []uint32 // per-row bitmask of vec-conjunct indices flipped NULL→TRUE
	col  []Value  // column gather buffer, one vector at a time
}

func (b *Batch) reset(n int) {
	w := (n + batchWord - 1) / batchWord
	if cap(b.sel) < w {
		b.sel = make([]uint64, w)
	}
	b.sel = b.sel[:w]
	for i := range b.sel {
		b.sel[i] = ^uint64(0)
	}
	if cap(b.flip) < n {
		b.flip = make([]uint32, n)
	}
	b.flip = b.flip[:n]
	for i := range b.flip {
		b.flip[i] = 0
	}
	if cap(b.col) < n {
		b.col = make([]Value, n)
	}
	b.col = b.col[:n]
}

func (b *Batch) clear(i int) { b.sel[i>>6] &^= 1 << uint(i&63) }
func (b *Batch) test(i int) bool {
	return b.sel[i>>6]&(1<<uint(i&63)) != 0
}

// vecConj is one vectorizable WHERE conjunct: a bare column compared to
// a literal with a plain comparison operator, resolved against the
// statement's relation list at plan-build time.
type vecConj struct {
	rel, col  int
	op        sqlast.BinaryOp
	lit       Value
	colOnLeft bool
	// fault is the dialect's armed VecCompareNullTrue defect for op, if
	// any: a NULL lane leaves the selection bit set instead of clearing
	// it.
	fault *faults.Fault
}

// laneTri evaluates one lane with the reference comparison semantics.
func (vc *vecConj) laneTri(v Value) Tri {
	if vc.colOnLeft {
		return compareValues(vc.op, v, vc.lit)
	}
	return compareValues(vc.op, vc.lit, v)
}

// filterPlan is one predicate's split between vectorized lanes and
// scalar fallback conjuncts, built once per statement.
type filterPlan struct {
	conjs []sqlast.Expr
	// vec[i] is the index into vecs of conjunct i's lane kernel, or -1
	// when the conjunct evaluates through the scalar fallback.
	vec  []int8
	vecs []vecConj
	// clean mirrors the scalar path's cost/coverage split: with no fault
	// set a comparison root evaluates through evalBinary (three cost
	// units, binary + null-branch coverage); with faults armed it goes
	// through evalFaultyComparison (two cost units, no coverage hits).
	clean bool
}

// buildFilterPlan classifies the predicate's conjuncts against the
// statement's relation list. fs gating: an operator carrying a scalar
// comparison-root fault (CmpNullTrue / CmpNullEqTrue / CmpMixedText)
// never vectorizes — those defects live in the scalar kernel, and the
// lane kernel must not bypass them.
func (s *DB) buildFilterPlan(conjs []sqlast.Expr, rels []matRel) filterPlan {
	p := filterPlan{conjs: conjs, clean: s.faultSet() == nil}
	if len(conjs) == 0 {
		return p
	}
	fs := s.faultSet()
	p.vec = make([]int8, len(conjs))
	for ci, e := range conjs {
		p.vec[ci] = -1
		if len(p.vecs) >= maxVecConjs {
			continue
		}
		if vc, ok := classifyVecConj(e, rels, fs); ok {
			p.vec[ci] = int8(len(p.vecs))
			p.vecs = append(p.vecs, vc)
		}
	}
	return p
}

// vecCmpOp reports whether op is a plain comparison the lane kernel
// implements (the null-safe forms keep their scalar special cases).
func vecCmpOp(op sqlast.BinaryOp) bool {
	switch op {
	case sqlast.OpEq, sqlast.OpNeq, sqlast.OpNeq2,
		sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe:
		return true
	}
	return false
}

// classifyVecConj recognizes column-op-literal conjuncts whose column
// resolves within the statement's own relations (an outer-scope or
// unresolvable reference falls back to the scalar path, which knows how
// to walk enclosing environments). Resolution replicates rowEnv.lookup's
// first-match order over the current relation list.
func classifyVecConj(e sqlast.Expr, rels []matRel, fs *faults.Set) (vecConj, bool) {
	b, ok := e.(*sqlast.Binary)
	if !ok || !vecCmpOp(b.Op) {
		return vecConj{}, false
	}
	var ref *sqlast.ColumnRef
	var lit *sqlast.Literal
	colOnLeft := false
	if cr, cok := b.L.(*sqlast.ColumnRef); cok {
		if lv, lok := b.R.(*sqlast.Literal); lok {
			ref, lit, colOnLeft = cr, lv, true
		}
	}
	if ref == nil {
		if cr, cok := b.R.(*sqlast.ColumnRef); cok {
			if lv, lok := b.L.(*sqlast.Literal); lok {
				ref, lit = cr, lv
			}
		}
	}
	if ref == nil {
		return vecConj{}, false
	}
	ri, ci, found := resolveRef(ref, rels)
	if !found {
		return vecConj{}, false
	}
	if fs != nil {
		op := b.Op.String()
		if fs.CmpNullTrue(op) != nil || fs.CmpNullEq(op) != nil || fs.CmpMixed(op) != nil {
			return vecConj{}, false
		}
	}
	return vecConj{
		rel: ri, col: ci, op: b.Op, lit: litValue(lit),
		colOnLeft: colOnLeft, fault: fs.VecNull(b.Op.String()),
	}, true
}

// resolveRef resolves a column reference against the relation list with
// rowEnv.lookup's first-match order.
func resolveRef(ref *sqlast.ColumnRef, rels []matRel) (rel, col int, ok bool) {
	for ri := range rels {
		if ref.Table != "" && !strings.EqualFold(rels[ri].alias, ref.Table) {
			continue
		}
		for ci, c := range rels[ri].cols {
			if strings.EqualFold(c, ref.Column) {
				return ri, ci, true
			}
		}
	}
	return 0, 0, false
}

// vectorPass gathers each vectorized conjunct's column into the batch
// and runs its lane kernel into the selection bitmap. Pure computation:
// cost, coverage, and fault accounting happen in the commit pass, in
// original conjunct order, so execution is observationally identical to
// row-at-a-time at any batch size.
func (p *filterPlan) vectorPass(b *Batch, rows []jrow, base, n int) {
	b.reset(n)
	for vi := range p.vecs {
		vc := &p.vecs[vi]
		col := b.col[:n]
		for i := 0; i < n; i++ {
			col[i] = rows[base+i][vc.rel][vc.col]
		}
		p.laneKernel(b, vc, uint32(1)<<uint(vi), col)
	}
}

// vectorPassRows is vectorPass over a single-relation row list (the DML
// collection path).
func (p *filterPlan) vectorPassRows(b *Batch, rows [][]Value, base, n int) {
	b.reset(n)
	for vi := range p.vecs {
		vc := &p.vecs[vi]
		col := b.col[:n]
		for i := 0; i < n; i++ {
			col[i] = rows[base+i][vc.col]
		}
		p.laneKernel(b, vc, uint32(1)<<uint(vi), col)
	}
}

// laneKernel applies one conjunct's comparison to a gathered column
// vector. A cleared lane stays cleared (a row already rejected by an
// earlier conjunct cannot be kept, so flips on it are irrelevant).
func (p *filterPlan) laneKernel(b *Batch, vc *vecConj, flipBit uint32, col []Value) {
	for i := range col {
		if !b.test(i) {
			continue
		}
		switch vc.laneTri(col[i]) {
		case TriTrue:
		case TriNull:
			if vc.fault != nil {
				b.flip[i] |= flipBit // the defect leaves the bit set
				continue
			}
			b.clear(i)
		default:
			b.clear(i)
		}
	}
}

// commitFilterRow finishes the filter for the row currently bound in
// ctx's environment: it walks the conjuncts in original order, charging
// each vectorized conjunct exactly what its scalar evaluation would have
// charged (reading the verdict precomputed in b at lane index bi) and
// evaluating scalar conjuncts through the fault-hooked path. A nil b
// evaluates lanes inline — the row-at-a-time reference executor. The
// VecCompareNullTrue defect triggers only when a flipped lane survives
// to a kept row: that row is emitted where the clean engine drops it, an
// observable divergence.
func (s *DB) commitFilterRow(p *filterPlan, b *Batch, bi int, ctx *evalCtx) (bool, *Error) {
	s.cov.Hit("filter.eval")
	vecBit := true
	var flips uint32
	scalarTrue := true
	for ci := range p.conjs {
		vi := -1
		if p.vec != nil {
			vi = int(p.vec[ci])
		}
		if vi < 0 {
			t, err := s.evalFilterRoot(p.conjs[ci], ctx)
			if err != nil {
				return false, err
			}
			if t != TriTrue {
				scalarTrue = false
			}
			continue
		}
		vc := &p.vecs[vi]
		v := ctx.env.rels[vc.rel].vals[vc.col]
		if p.clean {
			// Mirrors evalTri → eval(Binary) on a col-op-lit comparison:
			// three nodes of cost, the binary hit, the null branch.
			s.cost += 3
			k := &binCovKeys[vc.op]
			s.cov.Hit(k.hit)
			s.cov.HitBranch(k.null, v.IsNull() || vc.lit.IsNull())
		} else {
			// Mirrors evalFaultyComparison: operand evaluation only.
			s.cost += 2
		}
		if b == nil {
			switch vc.laneTri(v) {
			case TriTrue:
			case TriNull:
				if vc.fault != nil {
					flips |= uint32(1) << uint(vi)
					continue
				}
				vecBit = false
			default:
				vecBit = false
			}
		}
	}
	if b != nil {
		vecBit = b.test(bi)
		flips = b.flip[bi]
	}
	keep := vecBit && scalarTrue
	s.cov.HitBranch("filter.keep", keep)
	if keep && flips != 0 {
		for vi := range p.vecs {
			if flips&(uint32(1)<<uint(vi)) != 0 {
				s.trigger(p.vecs[vi].fault)
			}
		}
	}
	return keep, nil
}

// filterSelectRows runs a SELECT's WHERE over the candidate stream. The
// batch executor (s.batch > 0) precomputes lane verdicts chunk by chunk;
// the reference executor evaluates lanes inline per row. Both commit
// through commitFilterRow, so results, cost, coverage, errors, budget
// abort points, and fault triggers are identical.
func (s *DB) filterSelectRows(p *filterPlan, rows []jrow, env *rowEnv, ctx *evalCtx) ([]jrow, *Error) {
	// BatchTailDrop defect: a candidate stream longer than one bitmap
	// word whose length is not a word multiple has its final partial
	// word zeroed before evaluation — the tail rows silently vanish,
	// uncharged. Fixed word width: the defect must not vary with the
	// -batch knob.
	if f := s.faultSet().BatchTail(); f != nil {
		if n := len(rows); n > batchWord && n%batchWord != 0 {
			cut := n - n%batchWord
			dropped := rows[cut:]
			rows = rows[:cut]
			if s.batchTailObservable(p.conjs, dropped, env, ctx) {
				s.trigger(f)
			}
		}
	}
	kept := rows[:0:0]
	if s.batch > 0 && len(p.vecs) > 0 {
		var b Batch
		for base := 0; base < len(rows); base += s.batch {
			n := len(rows) - base
			if n > s.batch {
				n = s.batch
			}
			p.vectorPass(&b, rows, base, n)
			for i := 0; i < n; i++ {
				row := rows[base+i]
				env.bindRow(row)
				keep, err := s.commitFilterRow(p, &b, i, ctx)
				if err != nil {
					return nil, err
				}
				if keep {
					kept = append(kept, row)
				}
				if cerr := s.chargeRow(); cerr != nil {
					return nil, cerr
				}
			}
		}
		return kept, nil
	}
	for _, row := range rows {
		env.bindRow(row)
		keep, err := s.commitFilterRow(p, nil, 0, ctx)
		if err != nil {
			return nil, err
		}
		if keep {
			kept = append(kept, row)
		}
		if cerr := s.chargeRow(); cerr != nil {
			return nil, cerr
		}
	}
	return kept, nil
}

// batchTailObservable reports whether dropping the tail rows loses a row
// the clean filter would have kept: some dropped row passes every
// conjunct under clean semantics. An unevaluable conjunct cannot refute
// the row (conjsPassCleanly), so triggering too eagerly is safe.
// Ground-truth accounting only — its work is excluded from the
// statement cost.
func (s *DB) batchTailObservable(conjs []sqlast.Expr, dropped []jrow, env *rowEnv, ctx *evalCtx) bool {
	saved := s.cost
	defer func() { s.cost = saved }()
	for _, row := range dropped {
		env.bindRow(row)
		if s.conjsPassCleanly(ctx, conjs, -1) {
			return true
		}
	}
	return false
}
