package engine

import (
	"testing"

	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/faults"
)

// faultedDB builds a DB whose dialect carries exactly the given faults.
func faultedDB(t *testing.T, base string, fs ...faults.Fault) *DB {
	t.Helper()
	d := dialect.MustGet(base).Clone()
	d.Name = base + "-faulted-test"
	d.Faults = faults.NewSet(fs)
	return Open(d)
}

// tlpCounts runs the base query and the three TLP partitions for pred
// and returns (base rows, partition union rows).
func tlpCounts(t *testing.T, db *DB, base, pred string) (int, int) {
	t.Helper()
	b := mustQuery(t, db, base)
	p1 := mustQuery(t, db, base+" WHERE "+pred)
	p2 := mustQuery(t, db, base+" WHERE NOT ("+pred+")")
	p3 := mustQuery(t, db, base+" WHERE ("+pred+") IS NULL")
	return len(b.Rows), len(p1.Rows) + len(p2.Rows) + len(p3.Rows)
}

func seedRows(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, s TEXT)")
	mustExec(t, db, "INSERT INTO t (a, s) VALUES (1, 'x'), (2, NULL), (NULL, 'y')")
}

func TestFaultCmpNullTrue(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.CmpNullTrue, Class: faults.Logic, Param: "="})
	seedRows(t, db)
	// a = 1 is NULL for the NULL row: the fault keeps it, so the
	// partitions overcount.
	base, union := tlpCounts(t, db, "SELECT * FROM t", "a = 1")
	if union <= base {
		t.Fatalf("CmpNullTrue not visible: base %d, union %d", base, union)
	}
	// TriggeredFaults is per statement: re-run the affected partition.
	mustQuery(t, db, "SELECT * FROM t WHERE a = 1")
	if got := db.TriggeredFaults(); len(got) == 0 {
		t.Fatal("fault not recorded as triggered")
	}
	// The fault only applies at the filter root: projections are clean.
	res := mustQuery(t, db, "SELECT a = 1 FROM t WHERE a IS NULL")
	if !res.Rows[0][0].IsNull() {
		t.Fatal("projection path must stay clean")
	}
}

func TestFaultCmpNullEqTrue(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.CmpNullEqTrue, Class: faults.Logic, Param: "="})
	seedRows(t, db)
	res := mustQuery(t, db, "SELECT * FROM t WHERE NULL = NULL")
	if len(res.Rows) != 3 {
		t.Fatalf("NULL = NULL should (wrongly) keep all rows, got %d", len(res.Rows))
	}
	// Comparisons with only one NULL side stay NULL.
	res = mustQuery(t, db, "SELECT * FROM t WHERE 1 = NULL")
	if len(res.Rows) != 0 {
		t.Fatal("single-NULL comparison must not be affected")
	}
}

func TestFaultCmpMixedText(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.CmpMixedText, Class: faults.Logic, Param: "<"})
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (5)")
	// Reference: 5 < '3' is TRUE (numeric class first). Faulty textual
	// comparison: '5' < '3' is FALSE.
	res := mustQuery(t, db, "SELECT * FROM t WHERE a < '3'")
	if len(res.Rows) != 0 {
		t.Fatal("mixed comparison should (wrongly) compare textually")
	}
	if len(db.TriggeredFaults()) == 0 {
		t.Fatal("fault not recorded")
	}
}

func TestFaultFuncCmpNumeric(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.FuncCmpNumeric, Class: faults.Logic, Param: "REPLACE"})
	mustExec(t, db, "CREATE TABLE t0 (c0 TEXT, PRIMARY KEY (c0))")
	mustExec(t, db, "INSERT INTO t0 (c0) VALUES ('01')")
	// Paper Listing 2's shape: '01' = '1' is textually FALSE but
	// numerically TRUE; both the predicate and its negation now match.
	q1 := mustQuery(t, db, "SELECT * FROM t0 WHERE t0.c0 = REPLACE('1', ' ', '0')")
	q2 := mustQuery(t, db, "SELECT * FROM t0 WHERE NOT t0.c0 = REPLACE('1', ' ', '0')")
	if len(q1.Rows)+len(q2.Rows) != 2 {
		t.Fatalf("REPLACE fault: want row in both partitions, got %d+%d",
			len(q1.Rows), len(q2.Rows))
	}
}

func TestFaultFuncWrongVal(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.FuncWrongVal, Class: faults.Logic, Param: "ABS"})
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (5)")
	// ABS(5) perturbs to 6 under a filter-root comparison.
	res := mustQuery(t, db, "SELECT * FROM t WHERE a = ABS(5)")
	if len(res.Rows) != 0 {
		t.Fatal("perturbed ABS should break the equality")
	}
	// Clean in projections.
	res = mustQuery(t, db, "SELECT ABS(5) FROM t")
	if res.Rows[0][0].I != 5 {
		t.Fatal("projection ABS must stay clean")
	}
}

func TestFaultJoinOnToWhere(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.JoinOnToWhere, Class: faults.Logic, Param: "LEFT JOIN"})
	mustExec(t, db, "CREATE TABLE l (a INTEGER)")
	mustExec(t, db, "CREATE TABLE r (b INTEGER)")
	mustExec(t, db, "INSERT INTO l (a) VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO r (b) VALUES (2)")
	// Without WHERE the join is correct: 2 rows (one NULL-extended).
	res := mustQuery(t, db, "SELECT * FROM l LEFT JOIN r ON l.a = r.b")
	if len(res.Rows) != 2 {
		t.Fatalf("un-flattened join wrong: %v", res.RenderRows())
	}
	// With WHERE present the flattener degrades it to an inner join.
	res = mustQuery(t, db, "SELECT * FROM l LEFT JOIN r ON l.a = r.b WHERE TRUE")
	if len(res.Rows) != 1 {
		t.Fatalf("flattener fault should drop the NULL-extended row: %v", res.RenderRows())
	}
}

func TestFaultNotElim(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.NotElim, Class: faults.Logic, Param: "<"})
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (2)")
	// NOT (a < 2) should keep a = 2; the wrong complement (a > 2) drops it.
	res := mustQuery(t, db, "SELECT * FROM t WHERE NOT a < 2")
	if len(res.Rows) != 0 {
		t.Fatal("NotElim fault should drop the equal row")
	}
}

func TestFaultNotInNullTrue(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.NotInNullTrue, Class: faults.Logic})
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (5)")
	// 5 NOT IN (1, NULL) is NULL; the fault turns it TRUE.
	res := mustQuery(t, db, "SELECT * FROM t WHERE a NOT IN (1, NULL)")
	if len(res.Rows) != 1 {
		t.Fatal("NOT IN fault should keep the row")
	}
	// Plain IN stays clean.
	res = mustQuery(t, db, "SELECT * FROM t WHERE a IN (1, NULL)")
	if len(res.Rows) != 0 {
		t.Fatal("IN must stay clean")
	}
}

func TestFaultBetweenExclusive(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.BetweenExclusive, Class: faults.Logic})
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1), (2), (3)")
	res := mustQuery(t, db, "SELECT * FROM t WHERE a BETWEEN 1 AND 3")
	if len(res.Rows) != 1 {
		t.Fatalf("exclusive BETWEEN should keep only the middle row, got %d", len(res.Rows))
	}
}

func TestFaultLikeUnderscore(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.LikeUnderscore, Class: faults.Logic})
	mustExec(t, db, "CREATE TABLE t (s TEXT)")
	mustExec(t, db, "INSERT INTO t (s) VALUES ('ab')")
	res := mustQuery(t, db, "SELECT * FROM t WHERE s LIKE 'a_'")
	if len(res.Rows) != 0 {
		t.Fatal("broken underscore should fail to match")
	}
	res = mustQuery(t, db, "SELECT * FROM t WHERE s LIKE 'a%'")
	if len(res.Rows) != 1 {
		t.Fatal("% wildcard must stay clean")
	}
}

func TestFaultCaseNullTrue(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.CaseNullTrue, Class: faults.Logic})
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1)")
	// The WHEN condition is NULL; the faulty CASE takes that branch.
	res := mustQuery(t, db,
		"SELECT * FROM t WHERE CASE WHEN NULL THEN TRUE ELSE FALSE END")
	if len(res.Rows) != 1 {
		t.Fatal("CASE fault should take the NULL branch")
	}
}

func TestFaultDistinctFromNull(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.DistinctFromNull, Class: faults.Logic})
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1)")
	res := mustQuery(t, db, "SELECT * FROM t WHERE NULL IS DISTINCT FROM NULL")
	if len(res.Rows) != 1 {
		t.Fatal("IS DISTINCT FROM fault should treat two NULLs as distinct")
	}
}

func TestFaultPartialIndexScan(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.PartialIndexScan, Class: faults.Logic})
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 10), (1, 0)")
	mustExec(t, db, "CREATE INDEX i ON t (a) WHERE b > 5")
	// The equality filter on the partial index's leading column reads
	// only the index, dropping the uncovered row.
	res := mustQuery(t, db, "SELECT * FROM t WHERE a = 1")
	if len(res.Rows) != 1 {
		t.Fatalf("partial-index fault should drop uncovered rows, got %d", len(res.Rows))
	}
}

func TestFaultCrashAndInternal(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "c1", Kind: faults.CrashOnFeature, Class: faults.Crash, Param: "XOR"},
		faults.Fault{ID: "e1", Kind: faults.InternalErrorOnFeature, Class: faults.Error, Param: "HEX"},
	)
	// XOR is unsupported on sqlite, so use a dialect that has it.
	db2 := faultedDB(t, "mysql",
		faults.Fault{ID: "c1", Kind: faults.CrashOnFeature, Class: faults.Crash, Param: "XOR"})
	err := db2.Exec("SELECT TRUE XOR FALSE")
	if !IsCrash(err) {
		t.Fatalf("want crash on XOR, got %v", err)
	}
	err = db.Exec("SELECT HEX('a')")
	if !IsInternal(err) {
		t.Fatalf("want internal error on HEX, got %v", err)
	}
	// Crash fires only for statements that pass validation.
	db3 := faultedDB(t, "sqlite",
		faults.Fault{ID: "c2", Kind: faults.CrashOnFeature, Class: faults.Crash, Param: "GCD"})
	err = db3.Exec("SELECT GCD(1, 2)") // GCD unsupported on sqlite
	if IsCrash(err) {
		t.Fatal("unsupported-feature statements must not reach the crash fault")
	}
}

func TestFaultCrashOnDeepExpr(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "d1", Kind: faults.CrashOnDeepExpr, Class: faults.Crash})
	mustExec(t, db, "SELECT 1 + 1")
	err := db.Exec("SELECT ((((((1 + 1) + 1) + 1) + 1) + 1) + 1) + 1")
	if !IsCrash(err) {
		t.Fatalf("want crash on deep expression, got %v", err)
	}
}

func TestFaultPerf(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "p1", Kind: faults.PerfOnFeature, Class: faults.Perf, Param: "IN"})
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1)")
	mustExec(t, db, "SELECT * FROM t WHERE a IN (1, 2)")
	if db.LastCost() < 1_000_000 {
		t.Fatalf("perf fault should inflate cost, got %d", db.LastCost())
	}
	mustExec(t, db, "SELECT * FROM t WHERE a = 1")
	if db.LastCost() >= 1_000_000 {
		t.Fatal("cost must reset for unaffected statements")
	}
}

// TestFaultTriggerPrecision: the ground-truth trigger fires only when the
// faulty result actually differs from the reference result.
func TestFaultTriggerPrecision(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.CmpNullTrue, Class: faults.Logic, Param: "="})
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1)")
	// No NULLs involved: the comparison is clean, no trigger.
	mustExec(t, db, "SELECT * FROM t WHERE a = 1")
	if len(db.TriggeredFaults()) != 0 {
		t.Fatal("fault must not trigger for non-NULL comparisons")
	}
	mustExec(t, db, "SELECT * FROM t WHERE a = NULL")
	if len(db.TriggeredFaults()) != 1 {
		t.Fatal("fault must trigger for NULL comparisons")
	}
}

// TestFaultCatalogueShape checks the catalogue totals against the
// documented half-scale Table 2 distribution.
func TestFaultCatalogueShape(t *testing.T) {
	total, logic := 0, 0
	perDialect := map[string]int{}
	for _, name := range dialect.PaperDBMSs {
		fs := faults.ForDialect(name)
		perDialect[name] = len(fs)
		for _, f := range fs {
			total++
			if f.Class == faults.Logic {
				logic++
			}
		}
	}
	if total != 130 {
		t.Errorf("catalogue total = %d, want 130", total)
	}
	if logic != 98 {
		t.Errorf("logic faults = %d, want 98", logic)
	}
	// Shape: Umbra > MonetDB > Dolt ≈ CrateDB > the rest (paper Table 2).
	if !(perDialect["umbra"] > perDialect["monetdb"] &&
		perDialect["monetdb"] > perDialect["dolt"] &&
		perDialect["dolt"] >= perDialect["cratedb"] &&
		perDialect["cratedb"] > perDialect["firebird"]) {
		t.Errorf("catalogue shape broken: %v", perDialect)
	}
	if len(faults.ForDialect("postgresql")) != 0 {
		t.Error("postgresql must be a clean reference system")
	}
}
