package engine_test

import (
	"testing"

	"sqlancerpp/internal/engine"
)

func shapeOf(t *testing.T, q string) engine.PlanShapeKey {
	t.Helper()
	return engine.PlanShape(parseSel(t, q))
}

// TestPlanShapeNormalization: the shape half of the fingerprint ignores
// literal values and concrete identifier spellings (they hash into the
// ident half instead), while structural differences — operators, extra
// conjuncts, join types, DISTINCT, LIMIT presence — change it.
func TestPlanShapeNormalization(t *testing.T) {
	base := shapeOf(t, "SELECT t.a FROM t WHERE t.a = 1 AND t.b < 10")

	// Same skeleton, different literals: same shape AND same ident.
	relit := shapeOf(t, "SELECT t.a FROM t WHERE t.a = 99 AND t.b < 7")
	if relit != base {
		t.Fatal("literal values leaked into the fingerprint")
	}

	// Same skeleton, renamed identifiers: same shape, different ident.
	renamed := shapeOf(t, "SELECT u.x FROM u WHERE u.x = 1 AND u.y < 10")
	if renamed.Shape != base.Shape {
		t.Fatal("identifier names leaked into the shape half")
	}
	if renamed.Ident == base.Ident {
		t.Fatal("ident half ignores identifier names")
	}

	// Identifier case never matters (SQL identifiers are case-insensitive).
	if upper := shapeOf(t, "SELECT T.A FROM T WHERE T.A = 1 AND T.B < 10"); upper != base {
		t.Fatal("identifier case leaked into the fingerprint")
	}

	// A literal of a different *kind* is a different shape.
	if kind := shapeOf(t, "SELECT t.a FROM t WHERE t.a = 'x' AND t.b < 10"); kind.Shape == base.Shape {
		t.Fatal("literal kind must be structural")
	}

	// Structural changes move the shape.
	for _, q := range []string{
		"SELECT t.a FROM t WHERE t.a = 1 OR t.b < 10",
		"SELECT t.a FROM t WHERE t.a = 1",
		"SELECT DISTINCT t.a FROM t WHERE t.a = 1 AND t.b < 10",
		"SELECT t.a FROM t WHERE t.a = 1 AND t.b < 10 LIMIT 5",
		"SELECT t.a, t.b FROM t WHERE t.a = 1 AND t.b < 10",
		"SELECT t.a FROM t INNER JOIN s ON t.a = s.a WHERE t.a = 1 AND t.b < 10",
	} {
		if shapeOf(t, q).Shape == base.Shape {
			t.Fatalf("%q must differ structurally from the base query", q)
		}
	}

	// LIMIT is presence-only: two different limit values share a shape.
	l5 := shapeOf(t, "SELECT t.a FROM t LIMIT 5")
	l9 := shapeOf(t, "SELECT t.a FROM t LIMIT 9")
	if l5 != l9 {
		t.Fatal("LIMIT value leaked into the fingerprint")
	}

	// Column positions are normalized per first use: the same positional
	// pattern over different columns of one table collapses to one shape.
	p1 := shapeOf(t, "SELECT t.a FROM t WHERE t.a = 1")
	p2 := shapeOf(t, "SELECT t.b FROM t WHERE t.b = 1")
	if p1.Shape != p2.Shape {
		t.Fatal("positional normalization broken for single-column queries")
	}
	// ...but *repetition structure* is preserved: referencing two distinct
	// columns differs from referencing one column twice.
	two := shapeOf(t, "SELECT t.a FROM t WHERE t.b = 1")
	if two.Shape == p1.Shape {
		t.Fatal("distinct-column reference pattern must differ from repeated-column")
	}
}

// TestPlanShapeDeterministic: the fingerprint is a pure function of the
// statement — repeated hashing and a re-parse agree.
func TestPlanShapeDeterministic(t *testing.T) {
	const q = "SELECT t.a, COUNT(*) FROM t INNER JOIN s ON t.a = s.b WHERE t.c > 3 GROUP BY t.a HAVING COUNT(*) > 1 ORDER BY t.a DESC LIMIT 7"
	first := shapeOf(t, q)
	for i := 0; i < 3; i++ {
		if shapeOf(t, q) != first {
			t.Fatal("fingerprint not deterministic")
		}
	}
}
