package engine

import (
	"testing"
	"testing/quick"
)

func TestValueRender(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(0), "0"},
		{Int(-42), "-42"},
		{Text(""), "''"},
		{Text("a'b"), "'a'b'"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.Render(); got != c.want {
			t.Errorf("Render(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestTriLogic(t *testing.T) {
	// Kleene truth tables.
	if TriTrue.And(TriNull) != TriNull {
		t.Error("TRUE AND NULL must be NULL")
	}
	if TriFalse.And(TriNull) != TriFalse {
		t.Error("FALSE AND NULL must be FALSE")
	}
	if TriTrue.Or(TriNull) != TriTrue {
		t.Error("TRUE OR NULL must be TRUE")
	}
	if TriFalse.Or(TriNull) != TriNull {
		t.Error("FALSE OR NULL must be NULL")
	}
	if TriNull.Not() != TriNull {
		t.Error("NOT NULL must be NULL")
	}
	if TriTrue.Xor(TriNull) != TriNull {
		t.Error("TRUE XOR NULL must be NULL")
	}
	if TriTrue.Xor(TriFalse) != TriTrue || TriTrue.Xor(TriTrue) != TriFalse {
		t.Error("XOR truth table broken")
	}
}

func TestTriLogicProperties(t *testing.T) {
	tri := func(b byte) Tri { return Tri(int8(b % 3)) }
	// De Morgan: NOT(a AND b) == NOT a OR NOT b.
	deMorgan := func(a, b byte) bool {
		x, y := tri(a), tri(b)
		return x.And(y).Not() == x.Not().Or(y.Not())
	}
	if err := quick.Check(deMorgan, nil); err != nil {
		t.Error(err)
	}
	// Commutativity.
	comm := func(a, b byte) bool {
		x, y := tri(a), tri(b)
		return x.And(y) == y.And(x) && x.Or(y) == y.Or(x) && x.Xor(y) == y.Xor(x)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	// Double negation.
	dn := func(a byte) bool { return tri(a).Not().Not() == tri(a) }
	if err := quick.Check(dn, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareStorageClasses(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Text("a"), Text("b"), -1},
		{Text("b"), Text("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Int(1), 0},  // booleans compare numerically
		{Int(999), Text(""), -1}, // numerics order before text
		{Text("0"), Int(999), 1}, // ... symmetrically
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareProperties(t *testing.T) {
	gen := func(kind byte, i int64, s string) Value {
		switch kind % 3 {
		case 0:
			return Int(i)
		case 1:
			return Text(s)
		default:
			return Bool(i%2 == 0)
		}
	}
	// Antisymmetry: Compare(a,b) == -Compare(b,a).
	anti := func(k1, k2 byte, i1, i2 int64, s1, s2 string) bool {
		a, b := gen(k1, i1, s1), gen(k2, i2, s2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(anti, nil); err != nil {
		t.Error(err)
	}
	// Reflexivity: Compare(a,a) == 0.
	refl := func(k byte, i int64, s string) bool {
		a := gen(k, i, s)
		return Compare(a, a) == 0
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
	// Transitivity over a fixed triple sample.
	trans := func(k1, k2, k3 byte, i1, i2, i3 int64, s1, s2, s3 string) bool {
		a, b, c := gen(k1, i1, s1), gen(k2, i2, s2), gen(k3, i3, s3)
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 {
			return Compare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Error(err)
	}
}

func TestCoercions(t *testing.T) {
	if toInt(Text("42abc")) != 42 {
		t.Error("leading-integer parse failed")
	}
	if toInt(Text("  -7x")) != -7 {
		t.Error("signed leading-integer parse failed")
	}
	if toInt(Text("abc")) != 0 {
		t.Error("non-numeric text must coerce to 0")
	}
	if toInt(Bool(true)) != 1 || toInt(Bool(false)) != 0 {
		t.Error("bool coercion broken")
	}
	if toText(Int(-3)) != "-3" {
		t.Error("int→text coercion broken")
	}
	if truthiness(Text("1x")) != TriTrue || truthiness(Text("x")) != TriFalse {
		t.Error("text truthiness broken")
	}
	if truthiness(Null()) != TriNull {
		t.Error("NULL truthiness broken")
	}
}

func TestParseFullInt(t *testing.T) {
	if v, ok := parseFullInt(" 42 "); !ok || v != 42 {
		t.Error("parseFullInt should trim spaces")
	}
	if v, ok := parseFullInt("-7"); !ok || v != -7 {
		t.Error("parseFullInt should handle signs")
	}
	if _, ok := parseFullInt("42x"); ok {
		t.Error("parseFullInt must reject trailing garbage")
	}
	if _, ok := parseFullInt(""); ok {
		t.Error("parseFullInt must reject empty")
	}
	if _, ok := parseFullInt("-"); ok {
		t.Error("parseFullInt must reject bare sign")
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if !Equal(Null(), Null()) {
		t.Error("grouping equality treats NULLs as equal")
	}
	if Equal(Null(), Int(0)) {
		t.Error("NULL must not equal 0")
	}
	if Equal(Int(1), Text("1")) {
		t.Error("cross-class values are not equal")
	}
	if !Equal(Bool(true), Int(1)) {
		t.Error("bool and int share the numeric class")
	}
}
