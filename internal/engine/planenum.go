package engine

// QPG-style plan enumeration. EnumeratePlans yields the deterministic,
// bounded set of PlanSpecs that are semantically equivalent to the auto
// plan for one query on one instance — the plan space the PlanDiff
// oracle diffs the baseline execution against. Widening this set is what
// raises the oracle's discrimination: a plan-dependent defect is
// observable exactly when some pair of equivalent plans disagrees, and
// the legacy index-on/off pair covers only one axis of the space.

import (
	"strings"

	"sqlancerpp/internal/sqlast"
)

// EnumeratePlans returns the equivalent-plan specs for a SELECT on db's
// current catalog, in canonical order: the planner-off spec (the legacy
// pair) first, then the first relation's force-scan and per-index
// forcing variants (each matched index, plus every strictly narrower
// equality-prefix width — the composite-vs-leading axis), then the
// covering-off plan when some matched index could serve the statement
// index-only, then per-join probe suppression, then every non-identity
// permutation of the leading inner-join chain. The list is a
// pure function of (statement, catalog), so equal seeds enumerate equal
// plan spaces; callers that cap it (Config.MaxPlansPerQuery) truncate
// the tail, keeping the earlier, coarser plans.
//
// Every returned spec is semantically equivalent to the auto plan by
// construction: forcing only widens candidate sets or reorders rows in
// ways the unchanged WHERE/ON re-evaluation and multiset comparison
// cannot observe on a clean engine, and inapplicable forcing degrades to
// a scan.
func EnumeratePlans(db *DB, sel *sqlast.Select) []PlanSpec {
	specs := []PlanSpec{{DisableIndexPaths: true}}
	if sel == nil || len(sel.Compound) > 0 || len(sel.From) == 0 {
		return specs
	}
	var conjs []sqlast.Expr
	if sel.Where != nil {
		conjs = splitAnd(sel.Where, nil)
	}

	// First-relation access-path variants.
	if tn, ok := sel.From[0].Ref.(*sqlast.TableName); ok {
		alias := tn.RefName()
		t := db.store.table(tn.Name)
		if t != nil && len(t.indexes) > 0 && len(conjs) > 0 &&
			indexPlannable(sel.From) && indexOrderSafe(sel) {
			var probes []indexProbe
			var conjIdx []int
			for ci, conj := range conjs {
				if p, ok := matchProbe(conj, alias, t); ok {
					probes = append(probes, p)
					conjIdx = append(conjIdx, ci)
				}
			}
			var idxSpecs []PlanSpec
			var arena []Value
			coverable := false
			for _, ix := range t.indexes {
				if len(probes) == 0 {
					break
				}
				if ix.Where != nil {
					continue
				}
				probe, pok := matchComposite(ix, probes, conjIdx, &arena, 0)
				if !pok {
					continue
				}
				idxSpecs = append(idxSpecs, relPlan(alias, RelSpec{
					Force: ForceIndex, Index: ix.Name}))
				for w := 1; w < len(probe.eq); w++ {
					idxSpecs = append(idxSpecs, relPlan(alias, RelSpec{
						Force: ForceIndex, Index: ix.Name, PrefixWidth: w}))
				}
				// The nocover axis applies when some probe-matched index
				// could serve the statement index-only: the auto plan may
				// serve the projection from the index key, and the nocover
				// plan pins the heap projection against it.
				if len(sel.From) == 1 && buildCoverPlan(sel, alias, t, ix) != nil {
					coverable = true
				}
			}
			if len(idxSpecs) > 0 {
				specs = append(specs, relPlan(alias, RelSpec{Force: ForceScan}))
				specs = append(specs, idxSpecs...)
				if coverable {
					specs = append(specs, PlanSpec{CoveringOff: true})
				}
			}
		}
	}

	// Per-join probe suppression, for steps where a probe would apply.
	rels := []matRel{staticRel(db, sel.From[0])}
	for step, item := range sel.From[1:] {
		right := staticRel(db, item)
		switch item.Join {
		case sqlast.JoinComma, sqlast.JoinCross, sqlast.JoinInner, sqlast.JoinNatural:
			if item.On != nil && right.table != nil {
				onConjs := splitAnd(item.On, nil)
				if db.matchJoinProbe(sel, rels, right, onConjs) != nil {
					specs = append(specs, PlanSpec{
						Joins: map[int]JoinSpec{step: {ProbeOff: true}}})
				}
			}
		}
		rels = append(rels, right)
	}

	// Join order of the leading inner-join chain: every non-identity
	// permutation of its first k relations (k capped at 4 to bound the
	// axis at 23 specs). Positions beyond k keep their place, and their
	// ON conditions still see every earlier relation bound.
	if m := permPrefixLen(sel); m >= 2 {
		k := m
		if k > maxPermRels {
			k = maxPermRels
		}
		permuteLex(k, func(perm []int) {
			if p := CanonicalPerm(perm); p != nil {
				specs = append(specs, PlanSpec{
					JoinPerm: append([]int(nil), p...)})
			}
		})
	}
	return specs
}

// maxPermRels caps the permuted prefix length: 4 relations already
// yield 23 non-identity orders, and the generator never emits more.
const maxPermRels = 4

// permuteLex visits every permutation of [0..k) in lexicographic order.
// The callback's slice is reused across calls.
func permuteLex(k int, visit func([]int)) {
	perm := make([]int, k)
	used := make([]bool, k)
	var rec func(depth int)
	rec = func(depth int) {
		if depth == k {
			visit(perm)
			return
		}
		for v := 0; v < k; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			perm[depth] = v
			rec(depth + 1)
			used[v] = false
		}
	}
	rec(0)
}

// relPlan builds a single-relation forcing spec.
func relPlan(alias string, rs RelSpec) PlanSpec {
	return PlanSpec{Relations: map[string]RelSpec{alias: rs}}
}

// staticRel resolves a FROM item to a planning-only matRel (alias and
// table; no rows) — enough for matchJoinProbe's eligibility matching.
func staticRel(db *DB, item sqlast.FromItem) matRel {
	switch r := item.Ref.(type) {
	case *sqlast.TableName:
		return matRel{alias: r.RefName(), table: db.store.table(r.Name)}
	case *sqlast.DerivedTable:
		return matRel{alias: r.Alias}
	default:
		return matRel{}
	}
}

// permPrefixLen returns the length of the leading FROM prefix whose
// relations may be freely reordered (0 or 1 when none may): every join
// in the prefix is inner-like (comma, cross, explicit INNER — outer
// joins are side-sensitive), every prefix ON conjunct references only
// table-qualified columns of prefix relations and contains no subquery
// (relocation changes when a correlated subquery's bindings exist),
// prefix aliases are pairwise distinct so qualified references stay
// unambiguous after reordering, no later join is NATURAL (naturalOn
// binds shared columns against the *first* earlier relation, which
// reordering rebinds), and the statement is order-safe (the same gate
// every candidate-reordering plan uses). SELECT * does not block the
// permutation: the executor restores the original relation order in
// star expansion. An unsafe permutation is ignored, not an error.
func permPrefixLen(sel *sqlast.Select) int {
	if len(sel.Compound) > 0 || len(sel.From) < 2 || !indexOrderSafe(sel) {
		return 0
	}
	for _, item := range sel.From[1:] {
		if item.Join == sqlast.JoinNatural {
			return 0
		}
	}
	m := 1
	for m < len(sel.From) {
		switch sel.From[m].Join {
		case sqlast.JoinComma, sqlast.JoinCross, sqlast.JoinInner:
			m++
		default:
			goto sized
		}
	}
sized:
	if m < 2 {
		return 0
	}
	aliases := make([]string, m)
	for i := 0; i < m; i++ {
		aliases[i] = refAlias(sel.From[i].Ref)
		if aliases[i] == "" {
			return 0
		}
		for j := 0; j < i; j++ {
			if strings.EqualFold(aliases[i], aliases[j]) {
				return 0
			}
		}
	}
	for i := 1; i < m; i++ {
		if sel.From[i].On == nil {
			continue
		}
		for _, conj := range splitAnd(sel.From[i].On, nil) {
			if !permConjSafe(conj, aliases) {
				return 0
			}
		}
	}
	return m
}

// refAlias returns the reference name of a FROM item's relation.
func refAlias(ref sqlast.TableRef) string {
	switch r := ref.(type) {
	case *sqlast.TableName:
		return r.RefName()
	case *sqlast.DerivedTable:
		return r.Alias
	default:
		return ""
	}
}

// permConjSafe reports whether an ON conjunct can be re-attached at a
// different join step: every column reference is qualified with a
// prefix alias (so the binding step is computable and unambiguous) and
// no subquery appears.
func permConjSafe(e sqlast.Expr, aliases []string) bool {
	ok := true
	walkExpr(e, func(x sqlast.Expr) bool {
		switch n := x.(type) {
		case *sqlast.ColumnRef:
			if n.Table == "" {
				ok = false
				return false
			}
			found := false
			for _, a := range aliases {
				if strings.EqualFold(n.Table, a) {
					found = true
					break
				}
			}
			if !found {
				ok = false
				return false
			}
		case *sqlast.Subquery, *sqlast.Exists:
			ok = false
			return false
		}
		return ok
	})
	return ok
}

// walkExpr visits e and its sub-expressions (not descending into
// subquery SELECTs) until visit returns false.
func walkExpr(e sqlast.Expr, visit func(sqlast.Expr) bool) bool {
	if e == nil {
		return true
	}
	if !visit(e) {
		return false
	}
	switch x := e.(type) {
	case *sqlast.Unary:
		return walkExpr(x.X, visit)
	case *sqlast.Binary:
		return walkExpr(x.L, visit) && walkExpr(x.R, visit)
	case *sqlast.Func:
		for _, a := range x.Args {
			if !walkExpr(a, visit) {
				return false
			}
		}
	case *sqlast.Case:
		if !walkExpr(x.Operand, visit) {
			return false
		}
		for i := range x.Whens {
			if !walkExpr(x.Whens[i].Cond, visit) ||
				!walkExpr(x.Whens[i].Then, visit) {
				return false
			}
		}
		return walkExpr(x.Else, visit)
	case *sqlast.Cast:
		return walkExpr(x.X, visit)
	case *sqlast.Between:
		return walkExpr(x.X, visit) && walkExpr(x.Lo, visit) &&
			walkExpr(x.Hi, visit)
	case *sqlast.InList:
		if !walkExpr(x.X, visit) {
			return false
		}
		for _, le := range x.List {
			if !walkExpr(le, visit) {
				return false
			}
		}
	case *sqlast.IsNull:
		return walkExpr(x.X, visit)
	case *sqlast.IsBool:
		return walkExpr(x.X, visit)
	case *sqlast.Like:
		return walkExpr(x.X, visit) && walkExpr(x.Pattern, visit)
	}
	return true
}

// permutedFrom returns the FROM list reordered by perm — new position j
// holds original relation perm[j], positions beyond len(perm) keep
// their place — with every prefix ON conjunct re-attached at the
// earliest permuted step that binds all relations it references
// (permuted steps join as explicit INNER). The second result marks the
// conjuncts whose set of joined-in relations at their new step differs
// from the original — the "relocated" conjuncts a join-reorderer defect
// can mishandle; a plain two-relation swap relocates nothing.
func permutedFrom(from []sqlast.FromItem, perm []int) ([]sqlast.FromItem, map[sqlast.Expr]bool) {
	k := len(perm)
	out := make([]sqlast.FromItem, len(from))
	copy(out, from)

	aliases := make([]string, k)
	for i := 0; i < k; i++ {
		aliases[i] = refAlias(from[i].Ref)
	}

	// Pool the prefix ON conjuncts with the original relation set each
	// one joined under.
	var conjs []sqlast.Expr
	var origStep []int
	for i := 1; i < k; i++ {
		if from[i].On != nil {
			for _, c := range splitAnd(from[i].On, nil) {
				conjs = append(conjs, c)
				origStep = append(origStep, i)
			}
		}
	}

	// bound[o] is the new step at which original relation o joins in.
	bound := make([]int, k)
	for j := 0; j < k; j++ {
		out[j] = sqlast.FromItem{Ref: from[perm[j]].Ref}
		if j > 0 {
			out[j].Join = sqlast.JoinInner
		}
		bound[perm[j]] = j
	}

	var moved map[sqlast.Expr]bool
	ons := make([]sqlast.Expr, k)
	for ci, conj := range conjs {
		// The conjunct becomes evaluable at the latest new step among
		// the relations it references (step 1 when it references none).
		at := 1
		walkExpr(conj, func(x sqlast.Expr) bool {
			if cr, ok := x.(*sqlast.ColumnRef); ok {
				for o := 0; o < k; o++ {
					if strings.EqualFold(cr.Table, aliases[o]) {
						if bound[o] > at {
							at = bound[o]
						}
						break
					}
				}
			}
			return true
		})
		if ons[at] == nil {
			ons[at] = conj
		} else {
			ons[at] = &sqlast.Binary{Op: sqlast.OpAnd, L: ons[at], R: conj}
		}
		// Relocated: the relations already joined when the conjunct now
		// applies differ from those joined at its original step.
		if !samePrefixSet(perm, at, origStep[ci]) {
			if moved == nil {
				moved = map[sqlast.Expr]bool{}
			}
			moved[conj] = true
		}
	}
	for j := 1; j < k; j++ {
		out[j].On = ons[j]
	}
	return out, moved
}

// samePrefixSet reports whether {perm[0..at]} equals {0..orig}.
func samePrefixSet(perm []int, at, orig int) bool {
	if at != orig {
		return false
	}
	for j := 0; j <= at; j++ {
		if perm[j] > orig {
			return false
		}
	}
	return true
}
