package engine

// QPG-style plan enumeration. EnumeratePlans yields the deterministic,
// bounded set of PlanSpecs that are semantically equivalent to the auto
// plan for one query on one instance — the plan space the PlanDiff
// oracle diffs the baseline execution against. Widening this set is what
// raises the oracle's discrimination: a plan-dependent defect is
// observable exactly when some pair of equivalent plans disagrees, and
// the legacy index-on/off pair covers only one axis of the space.

import (
	"sqlancerpp/internal/sqlast"
)

// EnumeratePlans returns the equivalent-plan specs for a SELECT on db's
// current catalog, in canonical order: the planner-off spec (the legacy
// pair) first, then the first relation's force-scan and per-index
// forcing variants (each matched index, plus every strictly narrower
// equality-prefix width — the composite-vs-leading axis), then the
// covering-off plan when some matched index could serve the statement
// index-only, then per-join probe suppression, then the swapped join
// input order. The list is a
// pure function of (statement, catalog), so equal seeds enumerate equal
// plan spaces; callers that cap it (Config.MaxPlansPerQuery) truncate
// the tail, keeping the earlier, coarser plans.
//
// Every returned spec is semantically equivalent to the auto plan by
// construction: forcing only widens candidate sets or reorders rows in
// ways the unchanged WHERE/ON re-evaluation and multiset comparison
// cannot observe on a clean engine, and inapplicable forcing degrades to
// a scan.
func EnumeratePlans(db *DB, sel *sqlast.Select) []PlanSpec {
	specs := []PlanSpec{{DisableIndexPaths: true}}
	if sel == nil || len(sel.Compound) > 0 || len(sel.From) == 0 {
		return specs
	}
	var conjs []sqlast.Expr
	if sel.Where != nil {
		conjs = splitAnd(sel.Where, nil)
	}

	// First-relation access-path variants.
	if tn, ok := sel.From[0].Ref.(*sqlast.TableName); ok {
		alias := tn.RefName()
		t := db.store.table(tn.Name)
		if t != nil && len(t.indexes) > 0 && len(conjs) > 0 &&
			indexPlannable(sel.From) && indexOrderSafe(sel) {
			var probes []indexProbe
			var conjIdx []int
			for ci, conj := range conjs {
				if p, ok := matchProbe(conj, alias, t); ok {
					probes = append(probes, p)
					conjIdx = append(conjIdx, ci)
				}
			}
			var idxSpecs []PlanSpec
			var arena []Value
			coverable := false
			for _, ix := range t.indexes {
				if len(probes) == 0 {
					break
				}
				if ix.Where != nil {
					continue
				}
				probe, pok := matchComposite(ix, probes, conjIdx, &arena, 0)
				if !pok {
					continue
				}
				idxSpecs = append(idxSpecs, relPlan(alias, RelSpec{
					Force: ForceIndex, Index: ix.Name}))
				for w := 1; w < len(probe.eq); w++ {
					idxSpecs = append(idxSpecs, relPlan(alias, RelSpec{
						Force: ForceIndex, Index: ix.Name, PrefixWidth: w}))
				}
				// The nocover axis applies when some probe-matched index
				// could serve the statement index-only: the auto plan may
				// serve the projection from the index key, and the nocover
				// plan pins the heap projection against it.
				if len(sel.From) == 1 && buildCoverPlan(sel, alias, t, ix) != nil {
					coverable = true
				}
			}
			if len(idxSpecs) > 0 {
				specs = append(specs, relPlan(alias, RelSpec{Force: ForceScan}))
				specs = append(specs, idxSpecs...)
				if coverable {
					specs = append(specs, PlanSpec{CoveringOff: true})
				}
			}
		}
	}

	// Per-join probe suppression, for steps where a probe would apply.
	rels := []matRel{staticRel(db, sel.From[0])}
	for step, item := range sel.From[1:] {
		right := staticRel(db, item)
		switch item.Join {
		case sqlast.JoinComma, sqlast.JoinCross, sqlast.JoinInner, sqlast.JoinNatural:
			if item.On != nil && right.table != nil {
				onConjs := splitAnd(item.On, nil)
				if db.matchJoinProbe(sel, rels, right, onConjs) != nil {
					specs = append(specs, PlanSpec{
						Joins: map[int]JoinSpec{step: {ProbeOff: true}}})
				}
			}
		}
		rels = append(rels, right)
	}

	// Join input order of the first two relations.
	if swapInputsSafe(sel) {
		specs = append(specs, PlanSpec{SwapInputs: true})
	}
	return specs
}

// relPlan builds a single-relation forcing spec.
func relPlan(alias string, rs RelSpec) PlanSpec {
	return PlanSpec{Relations: map[string]RelSpec{alias: rs}}
}

// staticRel resolves a FROM item to a planning-only matRel (alias and
// table; no rows) — enough for matchJoinProbe's eligibility matching.
func staticRel(db *DB, item sqlast.FromItem) matRel {
	switch r := item.Ref.(type) {
	case *sqlast.TableName:
		return matRel{alias: r.RefName(), table: db.store.table(r.Name)}
	case *sqlast.DerivedTable:
		return matRel{alias: r.Alias}
	default:
		return matRel{}
	}
}

// swapInputsSafe reports whether exchanging the first two FROM relations
// preserves the statement's semantics up to row order: the first join
// must be inner-like with an order-symmetric condition (comma, cross,
// explicit INNER — outer joins are side-sensitive), the projection must
// not expand a * (relation order dictates its column order), and the
// statement must be order-safe (the same gate every candidate-reordering
// plan uses). An unsafe swap is ignored, not an error.
func swapInputsSafe(sel *sqlast.Select) bool {
	if len(sel.Compound) > 0 || len(sel.From) < 2 {
		return false
	}
	switch sel.From[1].Join {
	case sqlast.JoinComma, sqlast.JoinCross, sqlast.JoinInner:
	default:
		return false
	}
	// A later NATURAL join synthesizes its ON against the *first* earlier
	// relation sharing each column name (naturalOn walks rels in order);
	// swapping the first two relations can rebind those columns, so the
	// swap is only safe when every later join's condition is explicit.
	for _, item := range sel.From[2:] {
		if item.Join == sqlast.JoinNatural {
			return false
		}
	}
	for i := range sel.Items {
		if sel.Items[i].Star {
			return false
		}
	}
	return indexOrderSafe(sel)
}

// swappedFrom returns a copy of the FROM list with the first two
// relations exchanged: the second item's ref leads, the first item's ref
// joins onto it under the original join type and ON condition (symmetric
// for inner-like joins), and later items are untouched.
func swappedFrom(from []sqlast.FromItem) []sqlast.FromItem {
	out := make([]sqlast.FromItem, len(from))
	copy(out, from)
	out[0] = sqlast.FromItem{Ref: from[1].Ref}
	out[1] = sqlast.FromItem{Ref: from[0].Ref, Join: from[1].Join, On: from[1].On}
	return out
}
