package engine

import (
	"sqlancerpp/internal/feature"
	"sqlancerpp/internal/sqlast"
)

// validateExpr checks feature support and name resolution for an
// expression, and infers its type. On dynamically typed dialects the
// returned type is advisory (TypeUnknown unless structurally known); on
// static dialects mismatches are semantic errors.
// allowAggr permits aggregate calls (projections, HAVING, ORDER BY).
func (s *DB) validateExpr(e sqlast.Expr, sc *scope, allowAggr bool) (sqlast.Type, error) {
	switch x := e.(type) {
	case *sqlast.Literal:
		switch x.Kind {
		case sqlast.LitNull:
			return sqlast.TypeUnknown, nil
		case sqlast.LitInt:
			return sqlast.TypeInt, nil
		case sqlast.LitText:
			return sqlast.TypeText, nil
		case sqlast.LitBool:
			if !s.dialect.SupportsType(feature.TypeBoolean) {
				return sqlast.TypeUnknown, unsupported(feature.TypeBoolean)
			}
			return sqlast.TypeBool, nil
		}
		return sqlast.TypeUnknown, nil

	case *sqlast.ColumnRef:
		typ, err := sc.resolve(x.Table, x.Column)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		return typ, nil

	case *sqlast.Unary:
		switch x.Op {
		case sqlast.UBitNot:
			if !s.dialect.SupportsOperator("~") {
				return sqlast.TypeUnknown, unsupported("~")
			}
		case sqlast.UNot:
			if !s.dialect.SupportsOperator(feature.ExprNot) {
				return sqlast.TypeUnknown, unsupported(feature.ExprNot)
			}
		}
		typ, err := s.validateExpr(x.X, sc, allowAggr)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		if s.static() {
			want := sqlast.TypeInt
			if x.Op == sqlast.UNot {
				want = sqlast.TypeBool
			}
			if _, ok := unify(typ, want); !ok {
				return sqlast.TypeUnknown, errf(ErrSemantic, "operator %s requires %s operand", x.Op, want)
			}
			return want, nil
		}
		if x.Op == sqlast.UNot {
			return sqlast.TypeBool, nil
		}
		return sqlast.TypeInt, nil

	case *sqlast.Binary:
		return s.validateBinary(x, sc, allowAggr)

	case *sqlast.Func:
		return s.validateFunc(x, sc, allowAggr)

	case *sqlast.Case:
		return s.validateCase(x, sc, allowAggr)

	case *sqlast.Cast:
		if !s.dialect.SupportsOperator(feature.ExprCast) {
			return sqlast.TypeUnknown, unsupported(feature.ExprCast)
		}
		if !s.dialect.SupportsType(x.To.String()) {
			return sqlast.TypeUnknown, unsupported(x.To.String())
		}
		if _, err := s.validateExpr(x.X, sc, allowAggr); err != nil {
			return sqlast.TypeUnknown, err
		}
		return x.To, nil

	case *sqlast.Between:
		if !s.dialect.SupportsOperator(feature.ExprBetween) {
			return sqlast.TypeUnknown, unsupported(feature.ExprBetween)
		}
		tx, err := s.validateExpr(x.X, sc, allowAggr)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		tl, err := s.validateExpr(x.Lo, sc, allowAggr)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		th, err := s.validateExpr(x.Hi, sc, allowAggr)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		if s.static() {
			t, ok := unify(tx, tl)
			if ok {
				_, ok = unify(t, th)
			}
			if !ok {
				return sqlast.TypeUnknown, errf(ErrSemantic, "BETWEEN operands must have compatible types")
			}
		}
		return sqlast.TypeBool, nil

	case *sqlast.InList:
		featName := feature.ExprIn
		if x.Not {
			featName = feature.ExprNotIn
		}
		if !s.dialect.SupportsOperator(featName) {
			return sqlast.TypeUnknown, unsupported(featName)
		}
		tx, err := s.validateExpr(x.X, sc, allowAggr)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		for _, item := range x.List {
			ti, err := s.validateExpr(item, sc, allowAggr)
			if err != nil {
				return sqlast.TypeUnknown, err
			}
			if s.static() {
				if _, ok := unify(tx, ti); !ok {
					return sqlast.TypeUnknown, errf(ErrSemantic, "IN list operands must have compatible types")
				}
			}
		}
		return sqlast.TypeBool, nil

	case *sqlast.IsNull:
		if !s.dialect.SupportsOperator(feature.ExprIsNull) {
			return sqlast.TypeUnknown, unsupported(feature.ExprIsNull)
		}
		if _, err := s.validateExpr(x.X, sc, allowAggr); err != nil {
			return sqlast.TypeUnknown, err
		}
		return sqlast.TypeBool, nil

	case *sqlast.IsBool:
		if !s.dialect.SupportsOperator(feature.ExprIsBool) {
			return sqlast.TypeUnknown, unsupported(feature.ExprIsBool)
		}
		typ, err := s.validateExpr(x.X, sc, allowAggr)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		if s.static() {
			if _, ok := unify(typ, sqlast.TypeBool); !ok {
				return sqlast.TypeUnknown, errf(ErrSemantic, "IS TRUE/FALSE requires a boolean operand")
			}
		}
		return sqlast.TypeBool, nil

	case *sqlast.Like:
		featName := feature.ExprLike
		if x.Kind == sqlast.LikeGlob {
			featName = feature.ExprGlob
		}
		if !s.dialect.SupportsOperator(featName) {
			return sqlast.TypeUnknown, unsupported(featName)
		}
		tx, err := s.validateExpr(x.X, sc, allowAggr)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		tp, err := s.validateExpr(x.Pattern, sc, allowAggr)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		if s.static() {
			if _, ok := unify(tx, sqlast.TypeText); !ok {
				return sqlast.TypeUnknown, errf(ErrSemantic, "LIKE requires TEXT operands")
			}
			if _, ok := unify(tp, sqlast.TypeText); !ok {
				return sqlast.TypeUnknown, errf(ErrSemantic, "LIKE requires a TEXT pattern")
			}
		}
		return sqlast.TypeBool, nil

	case *sqlast.Subquery:
		if !s.dialect.SupportsClause(feature.Subquery) {
			return sqlast.TypeUnknown, unsupported(feature.Subquery)
		}
		cols, err := s.validateSelect(x.Select, sc)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		if len(cols) != 1 {
			return sqlast.TypeUnknown, errf(ErrSemantic, "scalar subquery must return exactly one column")
		}
		return cols[0].Type, nil

	case *sqlast.Exists:
		if !s.dialect.SupportsOperator(feature.ExprExists) {
			return sqlast.TypeUnknown, unsupported(feature.ExprExists)
		}
		if _, err := s.validateSelect(x.Select, sc); err != nil {
			return sqlast.TypeUnknown, err
		}
		return sqlast.TypeBool, nil

	default:
		return sqlast.TypeUnknown, errf(ErrSemantic, "unhandled expression kind")
	}
}

func (s *DB) validateBinary(x *sqlast.Binary, sc *scope, allowAggr bool) (sqlast.Type, error) {
	op := x.Op.String()
	if !s.dialect.SupportsOperator(op) {
		return sqlast.TypeUnknown, unsupported(op)
	}
	lt, err := s.validateExpr(x.L, sc, allowAggr)
	if err != nil {
		return sqlast.TypeUnknown, err
	}
	rt, err := s.validateExpr(x.R, sc, allowAggr)
	if err != nil {
		return sqlast.TypeUnknown, err
	}
	if !s.static() {
		switch {
		case x.Op.IsComparison(), x.Op.IsLogical():
			return sqlast.TypeBool, nil
		case x.Op == sqlast.OpConcat:
			return sqlast.TypeText, nil
		default:
			return sqlast.TypeInt, nil
		}
	}
	switch {
	case x.Op == sqlast.OpConcat:
		if _, ok := unify(lt, sqlast.TypeText); !ok {
			return sqlast.TypeUnknown, errf(ErrSemantic, "|| requires TEXT operands")
		}
		if _, ok := unify(rt, sqlast.TypeText); !ok {
			return sqlast.TypeUnknown, errf(ErrSemantic, "|| requires TEXT operands")
		}
		return sqlast.TypeText, nil
	case x.Op.IsArithmetic():
		if _, ok := unify(lt, sqlast.TypeInt); !ok {
			return sqlast.TypeUnknown, errf(ErrSemantic, "operator %s requires INTEGER operands", op)
		}
		if _, ok := unify(rt, sqlast.TypeInt); !ok {
			return sqlast.TypeUnknown, errf(ErrSemantic, "operator %s requires INTEGER operands", op)
		}
		return sqlast.TypeInt, nil
	case x.Op.IsComparison():
		if _, ok := unify(lt, rt); !ok {
			return sqlast.TypeUnknown, errf(ErrSemantic, "operator %s requires compatible operand types", op)
		}
		return sqlast.TypeBool, nil
	case x.Op.IsLogical():
		if _, ok := unify(lt, sqlast.TypeBool); !ok {
			return sqlast.TypeUnknown, errf(ErrSemantic, "operator %s requires BOOLEAN operands", op)
		}
		if _, ok := unify(rt, sqlast.TypeBool); !ok {
			return sqlast.TypeUnknown, errf(ErrSemantic, "operator %s requires BOOLEAN operands", op)
		}
		return sqlast.TypeBool, nil
	default:
		return sqlast.TypeUnknown, errf(ErrSemantic, "unhandled operator %s", op)
	}
}

// validateCase checks a CASE expression: an operand CASE compares the
// operand with each WHEN; a searched CASE requires boolean WHENs. All
// THEN/ELSE results must share a type family.
func (s *DB) validateCase(x *sqlast.Case, sc *scope, allowAggr bool) (sqlast.Type, error) {
	if !s.dialect.SupportsOperator(feature.ExprCase) {
		return sqlast.TypeUnknown, unsupported(feature.ExprCase)
	}
	var opType sqlast.Type = sqlast.TypeUnknown
	if x.Operand != nil {
		t, err := s.validateExpr(x.Operand, sc, allowAggr)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		opType = t
	}
	var resType sqlast.Type = sqlast.TypeUnknown
	for i := range x.Whens {
		ct, err := s.validateExpr(x.Whens[i].Cond, sc, allowAggr)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		if s.static() {
			if x.Operand != nil {
				if _, ok := unify(opType, ct); !ok {
					return sqlast.TypeUnknown, errf(ErrSemantic, "CASE operand and WHEN types are incompatible")
				}
			} else if _, ok := unify(ct, sqlast.TypeBool); !ok {
				return sqlast.TypeUnknown, errf(ErrSemantic, "searched CASE requires boolean WHEN conditions")
			}
		}
		tt, err := s.validateExpr(x.Whens[i].Then, sc, allowAggr)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		if s.static() {
			u, ok := unify(resType, tt)
			if !ok {
				return sqlast.TypeUnknown, errf(ErrSemantic, "CASE branches have incompatible types")
			}
			resType = u
		}
	}
	if x.Else != nil {
		et, err := s.validateExpr(x.Else, sc, allowAggr)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		if s.static() {
			u, ok := unify(resType, et)
			if !ok {
				return sqlast.TypeUnknown, errf(ErrSemantic, "CASE branches have incompatible types")
			}
			resType = u
		}
	}
	return resType, nil
}

func kindToType(k Kind) sqlast.Type {
	switch k {
	case KindInt:
		return sqlast.TypeInt
	case KindText:
		return sqlast.TypeText
	case KindBool:
		return sqlast.TypeBool
	default:
		return sqlast.TypeUnknown
	}
}

func (s *DB) validateFunc(x *sqlast.Func, sc *scope, allowAggr bool) (sqlast.Type, error) {
	if isAggregate(x) {
		return s.validateAggregate(x, sc, allowAggr)
	}
	// Scalar MIN/MAX: two or more arguments of one comparable family
	// (SQLite-style).
	if (x.Name == "MIN" || x.Name == "MAX") && len(x.Args) >= 2 {
		if !s.dialect.SupportsFunction(x.Name) {
			return sqlast.TypeUnknown, unsupported(x.Name)
		}
		var res sqlast.Type = sqlast.TypeUnknown
		for _, a := range x.Args {
			at, err := s.validateExpr(a, sc, allowAggr)
			if err != nil {
				return sqlast.TypeUnknown, err
			}
			if s.static() {
				u, ok := unify(res, at)
				if !ok {
					return sqlast.TypeUnknown, errf(ErrSemantic, "%s arguments must have compatible types", x.Name)
				}
				res = u
			}
		}
		return res, nil
	}
	def := LookupFunc(x.Name)
	if def == nil {
		return sqlast.TypeUnknown, errf(ErrSemantic, "no such function %s", x.Name)
	}
	if !s.dialect.SupportsFunction(x.Name) {
		return sqlast.TypeUnknown, unsupported(x.Name)
	}
	if x.Star || x.Distinct {
		return sqlast.TypeUnknown, errf(ErrSemantic, "%s is not an aggregate function", x.Name)
	}
	if len(x.Args) < def.MinArgs || (def.MaxArgs >= 0 && len(x.Args) > def.MaxArgs) {
		return sqlast.TypeUnknown, errf(ErrSemantic, "wrong number of arguments to %s", x.Name)
	}
	var firstArg sqlast.Type = sqlast.TypeUnknown
	for i, a := range x.Args {
		at, err := s.validateExpr(a, sc, allowAggr)
		if err != nil {
			return sqlast.TypeUnknown, err
		}
		if i == 0 {
			firstArg = at
		}
		if s.static() && len(def.ArgKinds) > 0 {
			want := def.ArgKinds[min(i, len(def.ArgKinds)-1)]
			if want != KindNull {
				if _, ok := unify(at, kindToType(want)); !ok {
					return sqlast.TypeUnknown, errf(ErrSemantic,
						"argument %d of %s must be %s", i+1, x.Name, want)
				}
			}
		}
	}
	if def.Result == KindNull {
		return firstArg, nil
	}
	return kindToType(def.Result), nil
}

func (s *DB) validateAggregate(x *sqlast.Func, sc *scope, allowAggr bool) (sqlast.Type, error) {
	if !allowAggr {
		return sqlast.TypeUnknown, errf(ErrSemantic, "aggregate %s is not allowed here", x.Name)
	}
	if !s.dialect.SupportsFunction(x.Name) {
		return sqlast.TypeUnknown, unsupported(x.Name)
	}
	if x.Star {
		if x.Name != "COUNT" {
			return sqlast.TypeUnknown, errf(ErrSemantic, "%s(*) is not valid", x.Name)
		}
		return sqlast.TypeInt, nil
	}
	if len(x.Args) != 1 {
		return sqlast.TypeUnknown, errf(ErrSemantic, "aggregate %s takes one argument", x.Name)
	}
	// Aggregates must not nest.
	if hasAggregate(x.Args[0]) {
		return sqlast.TypeUnknown, errf(ErrSemantic, "aggregates cannot be nested")
	}
	at, err := s.validateExpr(x.Args[0], sc, false)
	if err != nil {
		return sqlast.TypeUnknown, err
	}
	switch x.Name {
	case "COUNT":
		return sqlast.TypeInt, nil
	case "SUM", "AVG":
		if s.static() {
			if _, ok := unify(at, sqlast.TypeInt); !ok {
				return sqlast.TypeUnknown, errf(ErrSemantic, "%s requires an INTEGER argument", x.Name)
			}
		}
		return sqlast.TypeInt, nil
	default: // MIN, MAX
		return at, nil
	}
}
