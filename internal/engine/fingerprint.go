package engine

// Deterministic query-shape fingerprinting for the plan-pair novelty
// scheduler. PlanShape reduces a SELECT to the skeleton the plan
// enumerator can see — structure, join types, clause presence, operator
// identities — while normalizing away the parts that recur with fresh
// values every generation: literal constants and (for the Shape half)
// the concrete relation/column names. Two recurrences of "the same
// query with different literals" therefore hash identically, which is
// what lets the scheduler recognize a repeated shape and spend the plan
// budget on pairs it has not diffed yet.
//
// The key has two halves:
//
//   - Shape normalizes identifiers positionally (relations by FROM
//     order, columns by first use), so it is stable across renamed
//     tables. The pair tracker keys on Shape alone.
//   - Ident hashes the same skeleton with the lower-cased concrete
//     names kept. The enumeration memo keys on the full key, because
//     the normalized shape does NOT determine the enumerated plan set:
//     the same shape over differently-indexed tables enumerates
//     different specs.
//
// The walk is allocation-lean (two FNV-1a accumulators, small slices
// for the positional identifier maps) because it runs once per oracle
// case on the campaign hot path.

import (
	"strings"

	"sqlancerpp/internal/sqlast"
)

// PlanShapeKey identifies a query's plan-relevant skeleton.
type PlanShapeKey struct {
	// Shape is the literal- and identifier-normalized skeleton hash.
	Shape uint64
	// Ident additionally pins the lower-cased relation/column/function
	// identities (still literal-normalized).
	Ident uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// shaper carries the two running hashes and the positional identifier
// tables of one PlanShape walk.
type shaper struct {
	shape uint64
	ident uint64
	// rels and cols map lower-cased concrete names to first-use order;
	// linear scans over small slices beat map allocations at the sizes
	// the generator produces (≤ 4 relations, a handful of columns).
	rels []string
	cols []string
}

// PlanShape fingerprints a SELECT's plan-relevant skeleton. It is a
// pure function of the statement: equal ASTs (up to literal values and,
// for the Shape half, identifier names) produce equal keys on every
// platform and run.
func PlanShape(sel *sqlast.Select) PlanShapeKey {
	sh := shaper{shape: fnvOffset64, ident: fnvOffset64}
	sh.selectStmt(sel)
	return PlanShapeKey{Shape: sh.shape, Ident: sh.ident}
}

// byteTok feeds one structural byte to both hashes.
func (sh *shaper) byteTok(b byte) {
	sh.shape = (sh.shape ^ uint64(b)) * fnvPrime64
	sh.ident = (sh.ident ^ uint64(b)) * fnvPrime64
}

// num feeds a small structural integer (node tags, arities, operator
// codes) to both hashes.
func (sh *shaper) num(v int) {
	sh.byteTok(byte(v))
	sh.byteTok(byte(v >> 8))
}

// identTok feeds a lower-cased identifier to the ident hash only; the
// shape hash gets the positional index resolved by the caller.
func (sh *shaper) identTok(lower string) {
	for i := 0; i < len(lower); i++ {
		sh.ident = (sh.ident ^ uint64(lower[i])) * fnvPrime64
	}
	sh.ident = (sh.ident ^ 0xff) * fnvPrime64 // terminator
}

// shapePos feeds a positional identifier index to the shape hash only.
func (sh *shaper) shapePos(kind byte, pos int) {
	sh.shape = (sh.shape ^ uint64(kind)) * fnvPrime64
	sh.shape = (sh.shape ^ uint64(byte(pos))) * fnvPrime64
	sh.shape = (sh.shape ^ uint64(byte(pos>>8))) * fnvPrime64
}

// pos returns the first-use position of lower in tab, appending it when
// new.
func pos(tab *[]string, lower string) int {
	for i, s := range *tab {
		if s == lower {
			return i
		}
	}
	*tab = append(*tab, lower)
	return len(*tab) - 1
}

// rel records a relation identifier (table name or alias as referenced).
func (sh *shaper) rel(name string) {
	lower := strings.ToLower(name)
	sh.shapePos('r', pos(&sh.rels, lower))
	sh.identTok(lower)
}

// col records a column identifier, keyed by its qualified lower-case
// form so the same column referenced twice resolves to one position.
func (sh *shaper) col(table, column string) {
	lower := strings.ToLower(table) + "." + strings.ToLower(column)
	sh.shapePos('c', pos(&sh.cols, lower))
	sh.identTok(lower)
}

// name records an identifier that is part of the shape itself (function
// names): both hashes get the concrete lower-cased spelling.
func (sh *shaper) name(s string) {
	lower := strings.ToLower(s)
	for i := 0; i < len(lower); i++ {
		sh.shape = (sh.shape ^ uint64(lower[i])) * fnvPrime64
	}
	sh.shape = (sh.shape ^ 0xff) * fnvPrime64
	sh.identTok(lower)
}

// Structural tags. Values are arbitrary but frozen: changing one
// changes every fingerprint, which resets learned pair-coverage state.
const (
	tagSelect = iota + 1
	tagDistinct
	tagItemStar
	tagItemExpr
	tagFrom
	tagTableName
	tagDerived
	tagOn
	tagWhere
	tagGroupBy
	tagHaving
	tagCompound
	tagOrderBy
	tagLimit
	tagOffset
	tagLiteral
	tagColumnRef
	tagUnary
	tagBinary
	tagFunc
	tagCase
	tagWhen
	tagElse
	tagCast
	tagBetween
	tagInList
	tagIsNull
	tagIsBool
	tagLike
	tagSubquery
	tagExists
	tagOperand
	tagNil
)

func (sh *shaper) selectStmt(sel *sqlast.Select) {
	if sel == nil {
		sh.num(tagNil)
		return
	}
	sh.num(tagSelect)
	if sel.Distinct {
		sh.num(tagDistinct)
	}
	sh.num(len(sel.Items))
	for i := range sel.Items {
		it := &sel.Items[i]
		if it.Star {
			sh.num(tagItemStar)
			continue
		}
		sh.num(tagItemExpr)
		sh.expr(it.Expr)
		// Aliases rename output columns without touching planning; they
		// are not part of the shape.
	}
	sh.num(tagFrom)
	sh.num(len(sel.From))
	for i := range sel.From {
		item := &sel.From[i]
		sh.num(int(item.Join))
		switch r := item.Ref.(type) {
		case *sqlast.TableName:
			sh.num(tagTableName)
			sh.rel(r.Name)
			if r.Alias != "" {
				sh.rel(r.Alias)
			}
		case *sqlast.DerivedTable:
			sh.num(tagDerived)
			sh.selectStmt(r.Select)
			sh.rel(r.Alias)
		default:
			sh.num(tagNil)
		}
		if item.On != nil {
			sh.num(tagOn)
			sh.expr(item.On)
		}
	}
	if sel.Where != nil {
		sh.num(tagWhere)
		sh.expr(sel.Where)
	}
	if len(sel.GroupBy) > 0 {
		sh.num(tagGroupBy)
		sh.num(len(sel.GroupBy))
		for _, e := range sel.GroupBy {
			sh.expr(e)
		}
	}
	if sel.Having != nil {
		sh.num(tagHaving)
		sh.expr(sel.Having)
	}
	for i := range sel.Compound {
		sh.num(tagCompound)
		sh.num(int(sel.Compound[i].Op))
		sh.selectStmt(sel.Compound[i].Select)
	}
	if len(sel.OrderBy) > 0 {
		sh.num(tagOrderBy)
		sh.num(len(sel.OrderBy))
		for i := range sel.OrderBy {
			sh.expr(sel.OrderBy[i].Expr)
			if sel.OrderBy[i].Desc {
				sh.byteTok('d')
			}
		}
	}
	// LIMIT/OFFSET values are literals in disguise: presence matters to
	// the plan space, the constants do not.
	if sel.Limit != nil {
		sh.num(tagLimit)
	}
	if sel.Offset != nil {
		sh.num(tagOffset)
	}
}

func (sh *shaper) expr(e sqlast.Expr) {
	switch x := e.(type) {
	case nil:
		sh.num(tagNil)
	case *sqlast.Literal:
		// Literal values are the noise the fingerprint exists to remove;
		// the kind stays because NULL vs non-NULL changes sargability.
		sh.num(tagLiteral)
		sh.num(int(x.Kind))
	case *sqlast.ColumnRef:
		sh.num(tagColumnRef)
		sh.col(x.Table, x.Column)
	case *sqlast.Unary:
		sh.num(tagUnary)
		sh.num(int(x.Op))
		sh.expr(x.X)
	case *sqlast.Binary:
		sh.num(tagBinary)
		sh.num(int(x.Op))
		sh.expr(x.L)
		sh.expr(x.R)
	case *sqlast.Func:
		sh.num(tagFunc)
		sh.name(x.Name)
		if x.Star {
			sh.byteTok('*')
		}
		if x.Distinct {
			sh.byteTok('D')
		}
		sh.num(len(x.Args))
		for _, a := range x.Args {
			sh.expr(a)
		}
	case *sqlast.Case:
		sh.num(tagCase)
		if x.Operand != nil {
			sh.num(tagOperand)
			sh.expr(x.Operand)
		}
		sh.num(len(x.Whens))
		for i := range x.Whens {
			sh.num(tagWhen)
			sh.expr(x.Whens[i].Cond)
			sh.expr(x.Whens[i].Then)
		}
		if x.Else != nil {
			sh.num(tagElse)
			sh.expr(x.Else)
		}
	case *sqlast.Cast:
		sh.num(tagCast)
		sh.num(int(x.To))
		sh.expr(x.X)
	case *sqlast.Between:
		sh.num(tagBetween)
		if x.Not {
			sh.byteTok('!')
		}
		sh.expr(x.X)
		sh.expr(x.Lo)
		sh.expr(x.Hi)
	case *sqlast.InList:
		sh.num(tagInList)
		if x.Not {
			sh.byteTok('!')
		}
		sh.expr(x.X)
		sh.num(len(x.List))
		for _, e := range x.List {
			sh.expr(e)
		}
	case *sqlast.IsNull:
		sh.num(tagIsNull)
		if x.Not {
			sh.byteTok('!')
		}
		sh.expr(x.X)
	case *sqlast.IsBool:
		sh.num(tagIsBool)
		if x.Not {
			sh.byteTok('!')
		}
		if x.Val {
			sh.byteTok('t')
		}
		sh.expr(x.X)
	case *sqlast.Like:
		sh.num(tagLike)
		sh.num(int(x.Kind))
		if x.Not {
			sh.byteTok('!')
		}
		sh.expr(x.X)
		sh.expr(x.Pattern)
	case *sqlast.Subquery:
		sh.num(tagSubquery)
		sh.selectStmt(x.Select)
	case *sqlast.Exists:
		sh.num(tagExists)
		if x.Not {
			sh.byteTok('!')
		}
		sh.selectStmt(x.Select)
	default:
		sh.num(tagNil)
	}
}
