package engine

// Tests for the composite-key ordered store: lexicographic span
// boundaries (NULL prefixes, mixed types, empty trailing ranges),
// multi-column probe planning, index-assisted DML (including the
// snapshot-before-mutate invariant), the composite join probe, and the
// two composite fault sites' trigger precision.

import (
	"fmt"
	"testing"

	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/sqlast"
)

// spanRows renders the rows of an entry span for comparison.
func spanRows(ix *Index, lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for _, row := range ix.entries[lo:hi] {
		out = append(out, renderRow(row))
	}
	return out
}

// TestCompositeSpanBoundaries drives ix.span directly over a store with
// NULLs and mixed storage classes in both key columns.
func TestCompositeSpanBoundaries(t *testing.T) {
	db := openPlanDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "CREATE INDEX i ON t (a, b)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES "+
		"(1, NULL), (1, 2), (1, 5), (1, 9), (1, 'x'), "+
		"(2, 0), (2, 7), (NULL, 3), (NULL, NULL), ('s', 1)")
	ix := db.store.index("i")
	if ix == nil || len(ix.entries) != 10 {
		t.Fatalf("store not built: %+v", ix)
	}

	// Equality prefix spans.
	lo, hi := ix.eqSpan([]Value{Int(1)})
	if hi-lo != 5 {
		t.Fatalf("eqSpan(1) = %v", spanRows(ix, lo, hi))
	}
	// NULL prefix value: the span is empty (a = NULL is never TRUE), even
	// though rows with a NULL key exist in the store.
	if lo, hi := ix.eqSpan([]Value{Null()}); lo != hi {
		t.Fatalf("eqSpan(NULL) must be empty, got %v", spanRows(ix, lo, hi))
	}
	if lo, hi := ix.span([]Value{Null()}, sqlastOpLt(), Int(5)); lo != hi {
		t.Fatalf("span with NULL prefix must be empty, got %v", spanRows(ix, lo, hi))
	}

	// Trailing range within the prefix group: NULL trailing keys are
	// outside every range, mixed-type keys follow storage-class order
	// (numeric before text), so 'x' satisfies b > 5 but not b < 5.
	lo, hi = ix.span([]Value{Int(1)}, sqlastOpLt(), Int(5))
	if got := spanRows(ix, lo, hi); len(got) != 1 || got[0] != "1|2" {
		t.Fatalf("span(a=1, b<5) = %v", got)
	}
	lo, hi = ix.span([]Value{Int(1)}, sqlastOpGe(), Int(5))
	if got := spanRows(ix, lo, hi); len(got) != 3 {
		t.Fatalf("span(a=1, b>=5) = %v, want 5, 9, x", got)
	}
	// Empty trailing range: below every key of the group.
	if lo, hi := ix.span([]Value{Int(2)}, sqlastOpLt(), Int(0)); lo != hi {
		t.Fatalf("empty trailing range not empty: %v", spanRows(ix, lo, hi))
	}
	// NULL range value: never TRUE.
	if lo, hi := ix.span([]Value{Int(1)}, sqlastOpLe(), Null()); lo != hi {
		t.Fatalf("NULL range bound must yield the empty span")
	}
	// Mixed-type prefix: the TEXT key 's' has its own group.
	lo, hi = ix.eqSpan([]Value{Text("s")})
	if got := spanRows(ix, lo, hi); len(got) != 1 || got[0] != "'s'|1" {
		t.Fatalf("eqSpan('s') = %v", got)
	}
}

// TestCompositeProbeCostsFewerRows: a two-conjunct filter over a
// composite index must touch far fewer rows than the same filter over a
// leading-column-only index on identical data.
func TestCompositeProbeCostsFewerRows(t *testing.T) {
	load := func(db *DB, index string) {
		mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
		for i := 0; i < 256; i += 8 {
			sql := "INSERT INTO t (a, b) VALUES "
			for j := i; j < i+8; j++ {
				if j > i {
					sql += ", "
				}
				sql += fmt.Sprintf("(%d, %d)", j%4, j/4)
			}
			mustExec(t, db, sql)
		}
		mustExec(t, db, index)
	}
	comp := openPlanDB(t)
	lead := openPlanDB(t)
	load(comp, "CREATE INDEX i ON t (a, b)")
	load(lead, "CREATE INDEX i ON t (a)")

	const q = "SELECT * FROM t WHERE a = 1 AND b < 8"
	rComp := mustQuery(t, comp, q)
	costComp := comp.LastCost()
	rLead := mustQuery(t, lead, q)
	costLead := lead.LastCost()
	if len(rComp.Rows) != len(rLead.Rows) || len(rComp.Rows) == 0 {
		t.Fatalf("row counts diverged: %d vs %d", len(rComp.Rows), len(rLead.Rows))
	}
	if costComp*4 > costLead {
		t.Fatalf("composite span cost %d not clearly below leading-only cost %d",
			costComp, costLead)
	}

	// An equality prefix over both columns narrows to a single row (the
	// cost model charges the WHERE loop plus its expression nodes, ~7
	// work units per candidate row).
	mustQuery(t, comp, "SELECT * FROM t WHERE a = 1 AND b = 5")
	if c := comp.LastCost(); c > 10 {
		t.Fatalf("full equality prefix cost %d, want a single candidate's worth", c)
	}
}

// TestIndexedDMLMatchesFullScan is the differential half of the DML
// satellite on a deterministic state: the same UPDATE/DELETE statements
// with index paths on vs off must leave byte-identical tables, while the
// indexed arm touches fewer rows. The key-shifting UPDATE moves rows
// into the span it probes — the snapshot-before-mutate invariant keeps
// the mutation set fixed while maintenance rewrites the store.
func TestIndexedDMLMatchesFullScan(t *testing.T) {
	idx := openPlanDB(t)
	full := openPlanDB(t, WithPlanSpec(PlanSpec{DisableIndexPaths: true}))
	for _, db := range []*DB{idx, full} {
		mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER, c TEXT)")
		for i := 0; i < 128; i += 8 {
			sql := "INSERT INTO t (a, b, c) VALUES "
			for j := i; j < i+8; j++ {
				if j > i {
					sql += ", "
				}
				sql += fmt.Sprintf("(%d, %d, 'r%d')", j%8, j%16, j)
			}
			mustExec(t, db, sql)
		}
		mustExec(t, db, "CREATE INDEX i ON t (a, b)")
	}
	sameTable := func(stmt string) {
		t.Helper()
		ra := mustQuery(t, idx, "SELECT * FROM t")
		rb := mustQuery(t, full, "SELECT * FROM t")
		a, b := ra.RenderRows(), rb.RenderRows()
		if len(a) != len(b) {
			t.Fatalf("after %q: %d vs %d rows", stmt, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("after %q: row %d diverged: %q vs %q", stmt, i, a[i], b[i])
			}
		}
	}
	steps := []string{
		"UPDATE t SET c = 'hit' WHERE a = 3 AND b < 12",
		// Key shift INTO the probed span: rows with a = 4 move to a = 5
		// while the statement's span covers a = 5.
		"UPDATE t SET a = 5 WHERE a = 5 AND b >= 0",
		"UPDATE t SET a = a + 1 WHERE a = 4",
		"DELETE FROM t WHERE a = 6 AND b <= 6",
		"UPDATE t SET b = b - 1 WHERE a = 1",
		"DELETE FROM t WHERE a = 2",
		// Non-sargable WHERE falls back to the full scan on both arms.
		"DELETE FROM t WHERE b % 7 = 3",
	}
	for _, stmt := range steps {
		mustExec(t, idx, stmt)
		costIdx := idx.LastCost()
		mustExec(t, full, stmt)
		costFull := full.LastCost()
		sameTable(stmt)
		checkIndexConsistent(t, idx, "i")
		checkIndexConsistent(t, full, "i")
		if costIdx > costFull {
			t.Fatalf("%q: indexed DML cost %d exceeds full-scan cost %d", stmt, costIdx, costFull)
		}
	}
	// The sargable mutations must actually have probed: spot-check one.
	mustExec(t, idx, "UPDATE t SET c = 'x' WHERE a = 3 AND b = 11")
	costIdx := idx.LastCost()
	mustExec(t, full, "UPDATE t SET c = 'x' WHERE a = 3 AND b = 11")
	if costFull := full.LastCost(); costIdx*4 > costFull {
		t.Fatalf("indexed UPDATE cost %d not clearly below full scan %d", costIdx, costFull)
	}
}

// TestIndexedDMLErrorParity: the full-scan WHERE loop evaluates every
// conjunct on every row, so a conjunct that errors on an *excluded* row
// (division by zero on an error-raising dialect) aborts the statement —
// and the indexed arm must abort identically, not skip the row and
// commit. The DML planner refuses the index path for WHERE clauses
// whose conjuncts are not provably error-free (rowLocalTotal).
func TestIndexedDMLErrorParity(t *testing.T) {
	open := func(opts ...Option) *DB {
		db := Open(dialect.MustGet("postgresql"), append([]Option{WithoutFaults()}, opts...)...)
		mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER, c TEXT)")
		mustExec(t, db, "INSERT INTO t (a, b, c) VALUES (5, 1, 'x'), (3, 0, 'y')")
		mustExec(t, db, "CREATE INDEX i ON t (a)")
		return db
	}
	idx := open()
	full := open(WithPlanSpec(PlanSpec{DisableIndexPaths: true}))
	const stmt = "UPDATE t SET c = 'hit' WHERE a = 5 AND 1 / b = 1"
	errIdx := idx.Exec(stmt)
	errFull := full.Exec(stmt)
	if errFull == nil {
		t.Fatal("full scan must hit 1/0 on the excluded row")
	}
	if errIdx == nil {
		t.Fatalf("indexed UPDATE committed where the full scan errored (%v)", errFull)
	}
	a := mustQuery(t, idx, "SELECT * FROM t").RenderRows()
	b := mustQuery(t, full, "SELECT * FROM t").RenderRows()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tables diverged after error: %q vs %q", a[i], b[i])
		}
	}
	// On a dialect where division yields NULL instead of an error, the
	// same WHERE is total and keeps the index path.
	dyn := openPlanDB(t)
	mustExec(t, dyn, "CREATE TABLE t (a INTEGER, b INTEGER, c TEXT)")
	for i := 0; i < 64; i++ {
		mustExec(t, dyn, fmt.Sprintf("INSERT INTO t (a, b, c) VALUES (%d, %d, 'r%d')", i%8, i%2, i))
	}
	mustExec(t, dyn, "CREATE INDEX i ON t (a)")
	mustExec(t, dyn, "UPDATE t SET c = 'hit' WHERE a = 5 AND 1 / b = 1")
	if c := dyn.LastCost(); c > 100 {
		t.Fatalf("total-WHERE UPDATE cost %d, want an index-assisted fraction of 64 rows", c)
	}
}

// TestIndexedDMLStaleStoreFallsBack: a stale store must not feed a
// mutation set — the DML planner falls back to the full scan, so the
// mutation still follows clean semantics.
func TestIndexedDMLStaleStoreFallsBack(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.StaleIndexAfterUpdate, Class: faults.Logic})
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "CREATE INDEX i ON t (a)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 1), (2, 2), (3, 3)")
	mustExec(t, db, "UPDATE t SET a = 9 WHERE a = 2") // store now stale
	// A DELETE probing a = 9 through the stale store would find nothing;
	// the fallback full scan must delete the updated row.
	mustExec(t, db, "DELETE FROM t WHERE a = 9")
	res := mustQuery(t, db, "SELECT COUNT(*) FROM t")
	if res.RenderRows()[0] != "2" {
		t.Fatalf("stale-store DELETE missed the row: %v", res.RenderRows())
	}
}

// TestCompositeJoinProbe: a two-conjunct equality ON binds a two-column
// prefix of the right table's composite index, touching fewer rows than
// the single-column probe while returning the identical multiset.
func TestCompositeJoinProbe(t *testing.T) {
	build := func(db *DB, index string) {
		mustExec(t, db, "CREATE TABLE l (x INTEGER, y INTEGER)")
		mustExec(t, db, "CREATE TABLE r (a INTEGER, b INTEGER, c TEXT)")
		for i := 0; i < 16; i++ {
			mustExec(t, db, fmt.Sprintf("INSERT INTO l VALUES (%d, %d)", i%4, i%8))
		}
		for i := 0; i < 256; i += 8 {
			sql := "INSERT INTO r VALUES "
			for j := i; j < i+8; j++ {
				if j > i {
					sql += ", "
				}
				sql += fmt.Sprintf("(%d, %d, 'r%d')", j%4, j%8, j)
			}
			mustExec(t, db, sql)
		}
		if index != "" {
			mustExec(t, db, index)
		}
	}
	comp := openPlanDB(t)
	lead := openPlanDB(t)
	quad := openPlanDB(t, WithPlanSpec(PlanSpec{DisableIndexPaths: true}))
	build(comp, "CREATE INDEX ir ON r (a, b)")
	build(lead, "CREATE INDEX ir ON r (a)")
	build(quad, "")

	const q = "SELECT l.x, r.c FROM l INNER JOIN r ON l.x = r.a AND l.y = r.b"
	rComp := mustQuery(t, comp, q)
	costComp := comp.LastCost()
	rLead := mustQuery(t, lead, q)
	costLead := lead.LastCost()
	rQuad := mustQuery(t, quad, q)
	costQuad := quad.LastCost()

	ms := func(r *Result) map[string]int {
		m := map[string]int{}
		for _, row := range r.RenderRows() {
			m[row]++
		}
		return m
	}
	a, b, c := ms(rComp), ms(rLead), ms(rQuad)
	for k, n := range c {
		if a[k] != n || b[k] != n {
			t.Fatalf("join multisets diverged at %q: comp=%d lead=%d quad=%d", k, a[k], b[k], n)
		}
	}
	if len(a) != len(c) || len(b) != len(c) {
		t.Fatalf("join multisets diverged in size: %d/%d/%d", len(a), len(b), len(c))
	}
	if !(costComp < costLead && costLead < costQuad) {
		t.Fatalf("cost ordering violated: composite %d, leading %d, quadratic %d",
			costComp, costLead, costQuad)
	}
}

// TestFaultCompositeSpanBoundary: the trailing strict range of a
// composite span drops its boundary-adjacent entry — and the ground
// truth triggers only when the dropped row would have survived the WHERE.
func TestFaultCompositeSpanBoundary(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.CompositeSpanBoundary, Class: faults.Logic})
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "CREATE INDEX i ON t (a, b)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 1), (1, 3), (1, 5), (1, 7), (2, 1), (2, 3)")

	// b < 6 within a = 1 spans {1, 3, 5}; the defect drops the last
	// entry (5) — observable, so the fault triggers.
	res := mustQuery(t, db, "SELECT * FROM t WHERE a = 1 AND b < 6")
	if len(res.Rows) != 2 {
		t.Fatalf("faulty strict range kept %d rows, want 2", len(res.Rows))
	}
	if len(db.TriggeredFaults()) != 1 {
		t.Fatalf("observable drop must trigger, got %v", db.TriggeredFaults())
	}

	// b > 2 within a = 2 spans {3}; the defect drops the first entry,
	// leaving nothing — still observable.
	res = mustQuery(t, db, "SELECT * FROM t WHERE a = 2 AND b > 2")
	if len(res.Rows) != 0 || len(db.TriggeredFaults()) != 1 {
		t.Fatalf("b > 2: %d rows, triggered %v", len(res.Rows), db.TriggeredFaults())
	}

	// Inclusive operators are not this defect's territory.
	res = mustQuery(t, db, "SELECT * FROM t WHERE a = 1 AND b <= 5")
	if len(res.Rows) != 3 || len(db.TriggeredFaults()) != 0 {
		t.Fatalf("<= must stay clean: %d rows, triggered %v", len(res.Rows), db.TriggeredFaults())
	}
	// Single-column ranges (no equality prefix) are not either.
	res = mustQuery(t, db, "SELECT * FROM t WHERE b < 4")
	if len(res.Rows) != 4 || len(db.TriggeredFaults()) != 0 {
		t.Fatalf("prefix-free range must stay clean: %d rows, triggered %v",
			len(res.Rows), db.TriggeredFaults())
	}
	// A second conjunct that excludes the dropped row anyway: the result
	// matches the clean scan, so no trigger.
	res = mustQuery(t, db, "SELECT * FROM t WHERE a = 1 AND b < 6 AND b != 5")
	if len(res.Rows) != 2 || len(db.TriggeredFaults()) != 0 {
		t.Fatalf("masked drop must not trigger: %d rows, triggered %v",
			len(res.Rows), db.TriggeredFaults())
	}
}

// TestFaultCompositeProbePrefixSkip: the probe returns the whole
// equality-prefix span and skips re-checking the trailing range
// conjunct, surfacing extra rows — with trigger precision.
func TestFaultCompositeProbePrefixSkip(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.CompositeProbePrefixSkip, Class: faults.Logic})
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "CREATE INDEX i ON t (a, b)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 1), (1, 3), (1, 5), (2, 1)")

	// a = 1 AND b < 4 should return {(1,1),(1,3)}; the defect returns the
	// whole a = 1 group, including (1,5) — an extra row, triggered.
	res := mustQuery(t, db, "SELECT * FROM t WHERE a = 1 AND b < 4")
	if len(res.Rows) != 3 {
		t.Fatalf("prefix-skip should surface 3 rows, got %d", len(res.Rows))
	}
	if len(db.TriggeredFaults()) != 1 {
		t.Fatalf("extra row must trigger, got %v", db.TriggeredFaults())
	}

	// Every prefix row satisfies the range: no divergence, no trigger.
	res = mustQuery(t, db, "SELECT * FROM t WHERE a = 1 AND b < 9")
	if len(res.Rows) != 3 || len(db.TriggeredFaults()) != 0 {
		t.Fatalf("covered range must stay clean: %d rows, triggered %v",
			len(res.Rows), db.TriggeredFaults())
	}

	// A further conjunct that rejects the extra row re-checks normally:
	// result matches clean, no trigger.
	res = mustQuery(t, db, "SELECT * FROM t WHERE a = 1 AND b < 4 AND b != 5")
	if len(res.Rows) != 2 || len(db.TriggeredFaults()) != 0 {
		t.Fatalf("masked extra row must not trigger: %d rows, triggered %v",
			len(res.Rows), db.TriggeredFaults())
	}

	// Equality-only probes carry no trailing conjunct to skip.
	res = mustQuery(t, db, "SELECT * FROM t WHERE a = 2")
	if len(res.Rows) != 1 || len(db.TriggeredFaults()) != 0 {
		t.Fatalf("eq-only probe must stay clean: %d rows, triggered %v",
			len(res.Rows), db.TriggeredFaults())
	}
}

// TestIndexedDMLIgnoresPlanFaults: the composite fault sites perturb
// queries, never mutations — an UPDATE whose WHERE matches a faulty
// span shape still mutates the clean row set.
func TestIndexedDMLIgnoresPlanFaults(t *testing.T) {
	db := faultedDB(t, "sqlite",
		faults.Fault{ID: "f1", Kind: faults.CompositeSpanBoundary, Class: faults.Logic},
		faults.Fault{ID: "f2", Kind: faults.CompositeProbePrefixSkip, Class: faults.Logic})
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "CREATE INDEX i ON t (a, b)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 1), (1, 3), (1, 5), (2, 1)")
	mustExec(t, db, "UPDATE t SET b = 100 WHERE a = 1 AND b < 6")
	if len(db.TriggeredFaults()) != 0 {
		t.Fatalf("DML must not trigger plan faults, got %v", db.TriggeredFaults())
	}
	// All three a = 1 rows mutated (clean semantics), none skipped or
	// spuriously included.
	res := mustQuery(t, db, "SELECT COUNT(*) FROM t WHERE b = 100")
	db.triggered = map[string]bool{} // the count query may probe faultily; ignore
	if res.RenderRows()[0] != "3" {
		t.Fatalf("UPDATE mutated %s rows, want 3", res.RenderRows()[0])
	}
}

// sqlast op shims keep the span unit test terse.
func sqlastOpLt() sqlast.BinaryOp { return sqlast.OpLt }
func sqlastOpLe() sqlast.BinaryOp { return sqlast.OpLe }
func sqlastOpGe() sqlast.BinaryOp { return sqlast.OpGe }
