package engine_test

// Property tests for the plan-control API on a fault-free engine:
// (1) every PlanSpec EnumeratePlans yields for a query returns the same
// row multiset as the baseline auto plan over randomly generated,
// index-rich database states, and (2) DML executed under forced plans
// leaves byte-identical table state (the mutation set must be
// plan-independent). Together these are the soundness argument for the
// PlanDiff oracle: any divergence between enumerated plans on a real
// campaign instance is an injected defect, never an engine artifact.

import (
	"fmt"
	"testing"

	"sqlancerpp/internal/core/gen"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/sqlast"
)

// buildPlanState generates a database state on db, returning the
// successfully executed statements so the state can be replayed
// verbatim on fresh instances. Every table gets a single-column and (on
// wide-enough tables) a composite index so enumeration has plans to
// yield.
func buildPlanState(t *testing.T, db *engine.DB, g *gen.Generator) []string {
	t.Helper()
	var setup []string
	exec := func(sql string) bool {
		if err := db.Exec(sql); err != nil {
			return false
		}
		setup = append(setup, sql)
		return true
	}
	for i := 0; i < 30; i++ {
		st := g.GenSetup()
		if exec(st.SQL) && st.OnSuccess != nil {
			st.OnSuccess()
		}
	}
	for ti, tbl := range g.Model().Tables() {
		c0 := tbl.Columns[0].Name
		exec(fmt.Sprintf("CREATE INDEX zp%d ON %s (%s)", ti, tbl.Name, c0))
		if len(tbl.Columns) > 1 {
			c1 := tbl.Columns[1].Name
			exec(fmt.Sprintf("CREATE INDEX zc%d ON %s (%s, %s)", ti, tbl.Name, c0, c1))
		}
	}
	return setup
}

// TestEnumeratedPlansPairwiseEquivalent: on a clean engine, the baseline
// and every enumerated plan of every generated oracle query return the
// same multiset with the same execution status.
func TestEnumeratedPlansPairwiseEquivalent(t *testing.T) {
	for _, seed := range []int64{21, 22, 23} {
		d := dialect.MustGet("sqlite")
		db := engine.Open(d, engine.WithoutFaults())
		g := gen.New(gen.Config{Seed: seed, StartDepth: 2, MaxDepth: 3, DepthInterval: 200})
		buildPlanState(t, db, g)

		checked := 0
		for i := 0; i < 400; i++ {
			oc := g.GenOracleCase()
			if oc == nil {
				continue
			}
			sel := sqlast.CloneSelect(oc.Base)
			sel.Where = sqlast.CloneExpr(oc.Pred)
			q := sel.SQL()

			db.SetPlanSpec(engine.PlanSpec{})
			base, baseErr := db.Query(q)
			specs := engine.EnumeratePlans(db, sel)
			for _, spec := range specs {
				db.SetPlanSpec(spec)
				res, err := db.Query(q)
				if (err == nil) != (baseErr == nil) {
					t.Fatalf("seed %d: status diverged under [%s] for %q: %v vs %v",
						seed, spec.String(), q, err, baseErr)
				}
				if err != nil {
					continue
				}
				if !sameMultiset(rowMultiset(base), rowMultiset(res)) {
					t.Fatalf("seed %d: plan [%s] diverged for %q:\nbase: %v\nplan: %v",
						seed, spec.String(), q, base.RenderRows(), res.RenderRows())
				}
				checked++
			}
			db.SetPlanSpec(engine.PlanSpec{})
		}
		if checked < 200 {
			t.Fatalf("seed %d: only %d plan pairs checked — enumeration starved", seed, checked)
		}
	}
}

// dumpTables renders every table's full contents in deterministic
// (name, row) order — the DML state-parity fingerprint.
func dumpTables(t *testing.T, db *engine.DB, tables []string) string {
	t.Helper()
	out := ""
	for _, name := range tables {
		res, err := db.Query("SELECT * FROM " + name)
		if err != nil {
			t.Fatalf("dump %s: %v", name, err)
		}
		out += name + ":"
		for _, r := range res.RenderRows() {
			out += r + ";"
		}
		out += "\n"
	}
	return out
}

// TestForcedPlanDMLStateParity: replaying the same state and running the
// same sargable UPDATE/DELETE under different forced plans (planner off,
// forced composite index, width-capped index, unknown index) must end in
// byte-identical table contents.
func TestForcedPlanDMLStateParity(t *testing.T) {
	for _, seed := range []int64{31, 32} {
		d := dialect.MustGet("sqlite")
		ref := engine.Open(d, engine.WithoutFaults())
		g := gen.New(gen.Config{Seed: seed, StartDepth: 2, MaxDepth: 3, DepthInterval: 200})
		setup := buildPlanState(t, ref, g)

		var tables []string
		var dml []string
		for ti, tbl := range g.Model().Tables() {
			tables = append(tables, tbl.Name)
			if len(tbl.Columns) < 2 || tbl.Columns[0].Type != sqlast.TypeInt {
				continue
			}
			c0, c1 := tbl.Columns[0].Name, tbl.Columns[1].Name
			dml = append(dml,
				fmt.Sprintf("UPDATE %s SET %s = %s + 1 WHERE %s = 1 AND %s IS NOT NULL", tbl.Name, c0, c0, c0, c1),
				fmt.Sprintf("DELETE FROM %s WHERE %s >= 2 AND %s <= 3", tbl.Name, c0, c0),
			)
			_ = ti
		}
		if len(dml) == 0 {
			continue
		}

		runUnder := func(spec engine.PlanSpec) string {
			db := engine.Open(d, engine.WithoutFaults())
			for _, sql := range setup {
				if err := db.Exec(sql); err != nil {
					t.Fatalf("replay %q: %v", sql, err)
				}
			}
			db.SetPlanSpec(spec)
			for _, sql := range dml {
				if err := db.Exec(sql); err != nil {
					t.Fatalf("dml %q under [%s]: %v", sql, spec.String(), err)
				}
			}
			db.SetPlanSpec(engine.PlanSpec{})
			return dumpTables(t, db, tables)
		}

		baseline := runUnder(engine.PlanSpec{})
		specs := []engine.PlanSpec{
			{DisableIndexPaths: true},
		}
		for _, name := range tables {
			specs = append(specs,
				engine.PlanSpec{Relations: map[string]engine.RelSpec{
					name: {Force: engine.ForceScan}}},
				engine.PlanSpec{Relations: map[string]engine.RelSpec{
					name: {Force: engine.ForceIndex, Index: "zc0"}}},
				engine.PlanSpec{Relations: map[string]engine.RelSpec{
					name: {Force: engine.ForceIndex, Index: "zc0", PrefixWidth: 1}}},
				engine.PlanSpec{Relations: map[string]engine.RelSpec{
					name: {Force: engine.ForceIndex, Index: "nosuch"}}},
			)
		}
		for _, spec := range specs {
			if got := runUnder(spec); got != baseline {
				t.Fatalf("seed %d: DML state diverged under [%s]:\nbase:\n%s\ngot:\n%s",
					seed, spec.String(), baseline, got)
			}
		}
	}
}
