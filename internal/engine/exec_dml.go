package engine

import (
	"strings"

	"sqlancerpp/internal/sqlast"
)

// execStmt dispatches an already-validated statement.
func (s *DB) execStmt(stmt sqlast.Stmt) (*Result, error) {
	switch st := stmt.(type) {
	case *sqlast.Select:
		res, err := s.execSelectEnv(st, nil)
		if err != nil {
			return nil, err
		}
		return res, nil
	case *sqlast.CreateTable:
		return nil, s.execCreateTable(st)
	case *sqlast.CreateIndex:
		return nil, s.execCreateIndex(st)
	case *sqlast.CreateView:
		return nil, s.execCreateView(st)
	case *sqlast.Insert:
		return nil, s.execInsert(st)
	case *sqlast.Update:
		return nil, s.execUpdate(st)
	case *sqlast.Delete:
		return nil, s.execDelete(st)
	case *sqlast.AlterTable:
		return nil, s.execAlter(st)
	case *sqlast.DropTable:
		s.cov.Hit("exec.droptable")
		if s.store.table(st.Name) == nil {
			return nil, errf(ErrSemantic, "no such table %q", st.Name)
		}
		s.store.dropTable(st.Name)
		return nil, nil
	case *sqlast.DropView:
		s.cov.Hit("exec.dropview")
		if s.store.view(st.Name) == nil {
			return nil, errf(ErrSemantic, "no such view %q", st.Name)
		}
		delete(s.store.views, key(st.Name))
		return nil, nil
	case *sqlast.DropIndex:
		s.cov.Hit("exec.dropindex")
		ix := s.store.index(st.Name)
		if ix == nil {
			return nil, errf(ErrSemantic, "no such index %q", st.Name)
		}
		s.store.detachIndex(ix)
		return nil, nil
	case *sqlast.Reindex:
		s.cov.Hit("exec.reindex")
		if st.Name == "" {
			// The composite-rebuild panic fault fires before any rebuild
			// starts, leaving every index exactly as the statement found
			// it (consistent, possibly still stale — REINDEX simply never
			// happened).
			if f := s.faultSet().PanicRebuild(); f != nil && s.storeHasCompositeIndex() {
				s.trigger(f)
				panic("engine: composite index rebuild overran the key arena")
			}
			for _, name := range s.store.tableNames() {
				s.rebuildIndexes(s.store.table(name))
			}
			return nil, nil
		}
		ix := s.store.index(st.Name)
		if ix == nil {
			return nil, errf(ErrSemantic, "no such index %q", st.Name)
		}
		if f := s.faultSet().PanicRebuild(); f != nil && len(ix.Columns) >= 2 {
			s.trigger(f)
			panic("engine: composite index rebuild overran the key arena")
		}
		// buildIndex re-derives every entry from the table's visible rows
		// and resets staleness: REINDEX is the repair for the stale-index
		// fault path.
		s.buildIndex(s.store.table(ix.Table), ix)
		return nil, nil
	case *sqlast.Analyze:
		s.cov.Hit("exec.analyze")
		if st.Table != "" {
			t := s.store.table(st.Table)
			if t == nil {
				return nil, errf(ErrSemantic, "no such table %q", st.Table)
			}
			t.Analyzed = true
			return nil, nil
		}
		for _, t := range s.store.tables {
			t.Analyzed = true
		}
		return nil, nil
	case *sqlast.Refresh:
		s.cov.Hit("exec.refresh")
		t := s.store.table(st.Table)
		if t == nil {
			return nil, errf(ErrSemantic, "no such table %q", st.Table)
		}
		t.Rows = append(t.Rows, t.Pending...)
		if len(t.indexes) > 0 {
			s.indexInsertRows(t, t.Pending)
		}
		t.Pending = nil
		return nil, nil
	default:
		return nil, errf(ErrSemantic, "unhandled statement kind")
	}
}

func (s *DB) execCreateTable(st *sqlast.CreateTable) error {
	s.cov.Hit("exec.createtable")
	if s.store.relationExists(st.Name) {
		if st.IfNotExists {
			return nil
		}
		return errf(ErrSemantic, "table or view %q already exists", st.Name)
	}
	cols := make([]Column, len(st.Columns))
	for i, c := range st.Columns {
		cols[i] = Column{
			Name:       c.Name,
			Type:       c.Type,
			NotNull:    c.NotNull || c.PrimaryKey,
			Unique:     c.Unique,
			PrimaryKey: c.PrimaryKey,
		}
	}
	s.store.tables[key(st.Name)] = &Table{Name: st.Name, Columns: cols}
	return nil
}

func (s *DB) execCreateIndex(st *sqlast.CreateIndex) error {
	s.cov.Hit("exec.createindex")
	if s.store.index(st.Name) != nil {
		return errf(ErrSemantic, "index %q already exists", st.Name)
	}
	t := s.store.table(st.Table)
	if t == nil {
		return errf(ErrSemantic, "no such table %q", st.Table)
	}
	// The composite-rebuild panic fault fires before the index attaches:
	// a recovered instance must hold either the whole index or none of
	// it, never an attached-but-empty shell that probes would trust.
	if f := s.faultSet().PanicRebuild(); f != nil && len(st.Columns) >= 2 {
		s.trigger(f)
		panic("engine: composite index rebuild overran the key arena")
	}
	ix := &Index{
		Name:    st.Name,
		Table:   t.Name,
		Columns: append([]string(nil), st.Columns...),
		Unique:  st.Unique,
		Where:   st.Where,
	}
	if ix.Unique {
		// Enforce uniqueness over existing visible rows.
		seen := map[string]bool{}
		for _, row := range t.Rows {
			covered, keyStr, err := s.indexEntry(t, ix, row)
			if err != nil {
				return err
			}
			if !covered || keyStr == "" {
				continue
			}
			if seen[keyStr] {
				return errf(ErrConstraint, "cannot create unique index %q: duplicate key", st.Name)
			}
			seen[keyStr] = true
		}
	}
	s.store.attachIndex(t, ix)
	s.buildIndex(t, ix)
	return nil
}

// indexEntry returns whether a row is covered by a (partial) index and
// its rendered key; an empty key means a NULL participates (no conflict).
func (s *DB) indexEntry(t *Table, ix *Index, row []Value) (bool, string, *Error) {
	if ix.Where != nil {
		env := &rowEnv{rels: []rowRel{tableRowRel(t, row)}}
		tri, err := s.newEvalCtx(env).evalTri(ix.Where)
		if err != nil {
			return false, "", err
		}
		if tri != TriTrue {
			return false, "", nil
		}
	}
	var parts []string
	for _, c := range ix.Columns {
		i := t.ColumnIndex(c)
		if i < 0 {
			return false, "", nil
		}
		v := row[i]
		if v.IsNull() {
			return true, "", nil // NULLs never conflict
		}
		parts = append(parts, v.Render())
	}
	return true, strings.Join(parts, "|"), nil
}

func tableRowRel(t *Table, row []Value) rowRel {
	return rowRel{alias: t.Name, cols: t.colNames(), vals: row}
}

func (s *DB) execCreateView(st *sqlast.CreateView) error {
	s.cov.Hit("exec.createview")
	if s.store.relationExists(st.Name) {
		return errf(ErrSemantic, "table or view %q already exists", st.Name)
	}
	cols, err := s.validateSelect(st.Select, nil)
	if err != nil {
		return err
	}
	s.cov.HitBranch("view.named", len(st.Columns) > 0)
	v := &View{Name: st.Name, Def: st.Select}
	for i, c := range cols {
		name := c.Name
		if i < len(st.Columns) {
			name = st.Columns[i]
		}
		v.Columns = append(v.Columns, name)
		v.Types = append(v.Types, c.Type)
	}
	s.store.views[key(st.Name)] = v
	return nil
}

func (s *DB) execInsert(st *sqlast.Insert) error {
	s.cov.Hit("exec.insert")
	t := s.store.table(st.Table)
	targets, err := insertTargets(t, st.Columns)
	if err != nil {
		return err
	}
	ctx := s.newEvalCtx(&rowEnv{})
	var newRows [][]Value
	for _, exprRow := range st.Rows {
		row := nullRow(len(t.Columns))
		for i, e := range exprRow {
			v, err := ctx.eval(e)
			if err != nil {
				return err
			}
			if s.static() && !v.IsNull() {
				cv, err := ctx.evalCast(v, t.Columns[targets[i]].Type)
				if err != nil {
					return err
				}
				v = cv
			}
			row[targets[i]] = v
		}
		cerr := s.checkRowConstraints(t, row, newRows, -1)
		s.cov.HitBranch("constraint.violation", cerr != nil)
		if cerr != nil {
			if st.OrIgnore {
				s.cov.Hit("exec.insert.ignored")
				continue
			}
			return cerr
		}
		newRows = append(newRows, row)
	}
	s.cov.HitBranch("insert.pending", s.dialect.RequiresRefresh)
	if s.dialect.RequiresRefresh {
		t.Pending = append(t.Pending, newRows...)
	} else {
		t.Rows = append(t.Rows, newRows...)
		if len(t.indexes) > 0 {
			s.indexInsertRows(t, newRows)
		}
	}
	return nil
}

// checkRowConstraints validates NOT NULL, PRIMARY KEY, UNIQUE columns and
// unique indexes for a candidate row. pending holds rows being inserted in
// the same statement; skipRow is the row index being replaced by an
// UPDATE (-1 for inserts).
func (s *DB) checkRowConstraints(t *Table, row []Value, pending [][]Value, skipRow int) *Error {
	var pkCols []int
	for i, c := range t.Columns {
		if c.NotNull && row[i].IsNull() {
			return errf(ErrConstraint, "NOT NULL constraint failed: %s.%s", t.Name, c.Name)
		}
		if c.PrimaryKey {
			pkCols = append(pkCols, i)
		}
	}
	others := make([][]Value, 0, len(t.Rows)+len(t.Pending)+len(pending))
	for i, r := range t.Rows {
		if i == skipRow {
			continue
		}
		others = append(others, r)
	}
	others = append(others, t.Pending...)
	others = append(others, pending...)

	if len(pkCols) > 0 {
		keyOf := func(r []Value) string {
			var parts []string
			for _, i := range pkCols {
				parts = append(parts, r[i].Render())
			}
			return strings.Join(parts, "|")
		}
		k := keyOf(row)
		for _, r := range others {
			if keyOf(r) == k {
				return errf(ErrConstraint, "PRIMARY KEY constraint failed: %s", t.Name)
			}
		}
	}
	for i, c := range t.Columns {
		if !c.Unique || row[i].IsNull() {
			continue
		}
		for _, r := range others {
			if !r[i].IsNull() && nullSafeEqual(r[i], row[i]) {
				return errf(ErrConstraint, "UNIQUE constraint failed: %s.%s", t.Name, c.Name)
			}
		}
	}
	for _, ix := range t.indexes {
		if !ix.Unique {
			continue
		}
		covered, keyStr, err := s.indexEntry(t, ix, row)
		if err != nil || !covered || keyStr == "" {
			continue
		}
		// UniqueIndexFalseConflict defect: the uniqueness probe of a
		// multi-column unique index compares only the leading key column,
		// so rows that differ in a later column spuriously conflict.
		falseConflict := s.faultSet().UniqueConflict()
		for _, r := range others {
			c2, k2, err := s.indexEntry(t, ix, r)
			if err != nil || !c2 || k2 == "" {
				continue
			}
			if k2 == keyStr {
				return errf(ErrConstraint, "UNIQUE index constraint failed: %s", ix.Name)
			}
			if falseConflict != nil && len(ix.Columns) > 1 &&
				!row[ix.leads[0]].IsNull() && !r[ix.leads[0]].IsNull() &&
				nullSafeEqual(row[ix.leads[0]], r[ix.leads[0]]) {
				s.trigger(falseConflict)
				return errf(ErrInternal,
					"internal error: duplicate key in unique index %s (truncated key comparison)", ix.Name)
			}
		}
	}
	return nil
}

func (s *DB) execUpdate(st *sqlast.Update) error {
	s.cov.Hit("exec.update")
	t := s.store.table(st.Table)
	// Compute the post-image first; apply only if all constraints hold.
	newRows := make([][]Value, len(t.Rows))
	updated := make([]bool, len(t.Rows))
	env := &rowEnv{rels: []rowRel{tableRowRel(t, nil)}}
	ctx := s.newEvalCtx(env)
	var conjs []sqlast.Expr
	if st.Where != nil {
		conjs = splitAnd(st.Where, nil)
	}
	// Index-assisted mutation set: the clean composite span over the WHERE
	// conjuncts, snapshotted as a row-identity set before any mutation
	// rewrites the ordered store. Rows outside it cannot satisfy the probe
	// conjunct, so the WHERE loop — and the cost it charges — covers only
	// the rows actually probed.
	cand, planned := s.planDMLAccess(t, conjs)
	s.cov.HitBranch("dml.index", planned)
	// The WHERE collection runs batch-at-a-time like the SELECT filter
	// (batch.go): lane verdicts are precomputed per chunk — wasted work on
	// rows the candidate set then skips, but pure and unobservable — and
	// each visited row commits with the DML site's own precedence: budget
	// exhaustion outranks an evaluation error on the same row.
	fp := s.buildFilterPlan(conjs, []matRel{{alias: t.Name, cols: t.colNames(), table: t}})
	useVec := s.batch > 0 && len(fp.vecs) > 0
	var b Batch
	for ri, row := range t.Rows {
		if useVec && ri%s.batch == 0 {
			n := len(t.Rows) - ri
			if n > s.batch {
				n = s.batch
			}
			fp.vectorPassRows(&b, t.Rows, ri, n)
		}
		if planned && (len(row) == 0 || !cand[&row[0]]) {
			newRows[ri] = row
			continue
		}
		env.rels[0].vals = row
		if st.Where != nil {
			bp, lane := (*Batch)(nil), 0
			if useVec {
				bp, lane = &b, ri%s.batch
			}
			pass, err := s.commitFilterRow(&fp, bp, lane, ctx)
			if cerr := s.chargeRow(); cerr != nil {
				return cerr
			}
			if err != nil {
				return err
			}
			if !pass {
				newRows[ri] = row
				continue
			}
		}
		nr := append([]Value(nil), row...)
		for _, a := range st.Sets {
			v, err := ctx.eval(a.Value)
			if err != nil {
				return err
			}
			idx := t.ColumnIndex(a.Column)
			if s.static() && !v.IsNull() {
				cv, err := ctx.evalCast(v, t.Columns[idx].Type)
				if err != nil {
					return err
				}
				v = cv
			}
			nr[idx] = v
		}
		newRows[ri] = nr
		updated[ri] = true
	}
	// Constraint validation of the post-image.
	saved := t.Rows
	t.Rows = newRows
	for ri, up := range updated {
		if !up {
			continue
		}
		if err := s.checkRowConstraints(t, newRows[ri], nil, ri); err != nil {
			t.Rows = saved
			return err
		}
	}
	// Index maintenance: swap entries of the updated rows. The
	// StaleIndexAfterUpdate defect skips this step, leaving the old
	// entries behind (triggered at probe time, when observable).
	if len(t.indexes) > 0 {
		skip := s.faultSet().StaleIndex() != nil
		for ri, up := range updated {
			if up {
				s.indexUpdateRow(t, saved[ri], newRows[ri], skip)
			}
		}
	}
	return nil
}

func (s *DB) execDelete(st *sqlast.Delete) error {
	s.cov.Hit("exec.delete")
	t := s.store.table(st.Table)
	if st.Where == nil {
		t.Rows = nil // unconditional DELETE removes everything
		indexClear(t)
		return nil
	}
	var kept, removed [][]Value
	env := &rowEnv{rels: []rowRel{tableRowRel(t, nil)}}
	ctx := s.newEvalCtx(env)
	conjs := splitAnd(st.Where, nil)
	// Index-assisted mutation set, snapshotted before the store mutates
	// (see execUpdate): rows outside the clean span cannot match the WHERE
	// and are kept without touching them.
	cand, planned := s.planDMLAccess(t, conjs)
	s.cov.HitBranch("dml.index", planned)
	// Batched WHERE collection, mirroring execUpdate (see there).
	fp := s.buildFilterPlan(conjs, []matRel{{alias: t.Name, cols: t.colNames(), table: t}})
	useVec := s.batch > 0 && len(fp.vecs) > 0
	var b Batch
	for ri, row := range t.Rows {
		if useVec && ri%s.batch == 0 {
			n := len(t.Rows) - ri
			if n > s.batch {
				n = s.batch
			}
			fp.vectorPassRows(&b, t.Rows, ri, n)
		}
		if planned && (len(row) == 0 || !cand[&row[0]]) {
			kept = append(kept, row)
			continue
		}
		env.rels[0].vals = row
		bp, lane := (*Batch)(nil), 0
		if useVec {
			bp, lane = &b, ri%s.batch
		}
		pass, err := s.commitFilterRow(&fp, bp, lane, ctx)
		if cerr := s.chargeRow(); cerr != nil {
			return cerr
		}
		if err != nil {
			return err
		}
		if pass {
			if len(t.indexes) > 0 {
				removed = append(removed, row)
			}
			continue
		}
		kept = append(kept, row)
	}
	t.Rows = kept
	for _, row := range removed {
		s.indexRemoveRow(t, row)
	}
	return nil
}

func (s *DB) execAlter(st *sqlast.AlterTable) error {
	s.cov.Hit("exec.alter")
	t := s.store.table(st.Table)
	if t == nil {
		return errf(ErrSemantic, "no such table %q", st.Table)
	}
	if st.AddColumn != nil {
		if t.ColumnIndex(st.AddColumn.Name) >= 0 {
			return errf(ErrSemantic, "column %q already exists", st.AddColumn.Name)
		}
		if st.AddColumn.NotNull && (len(t.Rows) > 0 || len(t.Pending) > 0) {
			return errf(ErrConstraint, "cannot add NOT NULL column %q to a non-empty table", st.AddColumn.Name)
		}
		t.Columns = append(t.Columns, Column{
			Name:    st.AddColumn.Name,
			Type:    st.AddColumn.Type,
			NotNull: st.AddColumn.NotNull,
			Unique:  st.AddColumn.Unique,
		})
		t.names = nil
		for i := range t.Rows {
			t.Rows[i] = append(t.Rows[i], Null())
		}
		for i := range t.Pending {
			t.Pending[i] = append(t.Pending[i], Null())
		}
		s.rebuildIndexes(t)
		return nil
	}
	idx := t.ColumnIndex(st.DropColumn)
	if idx < 0 {
		return errf(ErrSemantic, "no such column %q", st.DropColumn)
	}
	if len(t.Columns) == 1 {
		return errf(ErrSemantic, "cannot drop the only column of %q", t.Name)
	}
	for _, ix := range t.indexes {
		for _, c := range ix.Columns {
			if strings.EqualFold(c, st.DropColumn) {
				return errf(ErrSemantic, "cannot drop column %q: used by index %q", st.DropColumn, ix.Name)
			}
		}
	}
	t.Columns = append(t.Columns[:idx], t.Columns[idx+1:]...)
	t.names = nil
	for i := range t.Rows {
		t.Rows[i] = append(t.Rows[i][:idx], t.Rows[i][idx+1:]...)
	}
	for i := range t.Pending {
		t.Pending[i] = append(t.Pending[i][:idx], t.Pending[i][idx+1:]...)
	}
	s.rebuildIndexes(t)
	return nil
}

// storeHasCompositeIndex reports whether any table carries a
// multi-column index (the bare-REINDEX panic-fault precondition).
func (s *DB) storeHasCompositeIndex() bool {
	for _, name := range s.store.tableNames() {
		for _, ix := range s.store.table(name).indexes {
			if len(ix.Columns) >= 2 {
				return true
			}
		}
	}
	return false
}

// rebuildIndexes rebuilds every index on a table after a schema change:
// ALTER TABLE shifts column positions and re-slices rows in place, so
// both the lead position and the row identities must be recaptured.
func (s *DB) rebuildIndexes(t *Table) {
	for _, ix := range t.indexes {
		s.buildIndex(t, ix)
	}
}
