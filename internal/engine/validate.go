package engine

import (
	"strings"

	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/feature"
	"sqlancerpp/internal/sqlast"
)

// scope is a name-resolution environment: the relations visible to an
// expression, with a link to the enclosing query's scope for correlated
// subqueries.
type scope struct {
	rels  []scopeRel
	outer *scope
}

type scopeRel struct {
	alias string
	cols  []Column
}

// resolve finds a column's type. Unqualified names must be unambiguous.
func (sc *scope) resolve(table, col string) (sqlast.Type, *Error) {
	for s := sc; s != nil; s = s.outer {
		var found *Column
		matches := 0
		for i := range s.rels {
			rel := &s.rels[i]
			if table != "" && !strings.EqualFold(rel.alias, table) {
				continue
			}
			for j := range rel.cols {
				if strings.EqualFold(rel.cols[j].Name, col) {
					found = &rel.cols[j]
					matches++
				}
			}
		}
		if matches > 1 {
			return sqlast.TypeUnknown, errf(ErrSemantic, "ambiguous column reference %q", col)
		}
		if matches == 1 {
			return found.Type, nil
		}
	}
	if table != "" {
		return sqlast.TypeUnknown, errf(ErrSemantic, "no such column %s.%s", table, col)
	}
	return sqlast.TypeUnknown, errf(ErrSemantic, "no such column %s", col)
}

// typeFamily collapses Unknown-compatible typing: Unknown unifies with
// anything (it arises from NULL literals and polymorphic functions).
func unify(a, b sqlast.Type) (sqlast.Type, bool) {
	if a == sqlast.TypeUnknown {
		return b, true
	}
	if b == sqlast.TypeUnknown || a == b {
		return a, true
	}
	return sqlast.TypeUnknown, false
}

func (s *DB) static() bool { return s.dialect.TypeSystem == dialect.Static }

// validateStmt checks dialect feature support, resolves names, and (for
// statically typed dialects) type-checks the statement.
func (s *DB) validateStmt(stmt sqlast.Stmt) error {
	switch st := stmt.(type) {
	case *sqlast.Select:
		if !s.dialect.SupportsStatement(feature.StmtSelect) {
			return unsupported(feature.StmtSelect)
		}
		_, err := s.validateSelect(st, nil)
		return err
	case *sqlast.CreateTable:
		return s.validateCreateTable(st)
	case *sqlast.CreateIndex:
		return s.validateCreateIndex(st)
	case *sqlast.CreateView:
		return s.validateCreateView(st)
	case *sqlast.Insert:
		return s.validateInsert(st)
	case *sqlast.Update:
		return s.validateUpdate(st)
	case *sqlast.Delete:
		return s.validateDelete(st)
	case *sqlast.AlterTable:
		if !s.dialect.SupportsStatement(feature.StmtAlterTable) {
			return unsupported(feature.StmtAlterTable)
		}
		if st.AddColumn != nil && !s.dialect.SupportsType(st.AddColumn.Type.String()) {
			return unsupported(st.AddColumn.Type.String())
		}
		return nil
	case *sqlast.DropTable:
		if !s.dialect.SupportsStatement(feature.StmtDropTable) {
			return unsupported(feature.StmtDropTable)
		}
		return nil
	case *sqlast.DropView:
		if !s.dialect.SupportsStatement(feature.StmtDropView) {
			return unsupported(feature.StmtDropView)
		}
		return nil
	case *sqlast.DropIndex:
		if !s.dialect.SupportsStatement(feature.StmtDropIndex) {
			return unsupported(feature.StmtDropIndex)
		}
		return nil
	case *sqlast.Reindex:
		if !s.dialect.SupportsStatement(feature.StmtReindex) {
			return unsupported(feature.StmtReindex)
		}
		return nil
	case *sqlast.Analyze:
		if !s.dialect.SupportsStatement(feature.StmtAnalyze) {
			return unsupported(feature.StmtAnalyze)
		}
		return nil
	case *sqlast.Refresh:
		if !s.dialect.SupportsStatement(feature.StmtRefresh) {
			return unsupported(feature.StmtRefresh)
		}
		return nil
	default:
		return errf(ErrSemantic, "unhandled statement kind")
	}
}

func (s *DB) validateCreateTable(st *sqlast.CreateTable) error {
	if !s.dialect.SupportsStatement(feature.StmtCreateTable) {
		return unsupported(feature.StmtCreateTable)
	}
	if len(st.Columns) == 0 {
		return errf(ErrSemantic, "table %s has no columns", st.Name)
	}
	seen := map[string]bool{}
	for _, c := range st.Columns {
		if !s.dialect.SupportsType(c.Type.String()) {
			return unsupported(c.Type.String())
		}
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return errf(ErrSemantic, "duplicate column name %q", c.Name)
		}
		seen[lc] = true
		if c.NotNull && !s.dialect.SupportsClause(feature.NotNullColumn) {
			return unsupported(feature.NotNullColumn)
		}
		if c.Unique && !s.dialect.SupportsClause(feature.UniqueColumn) {
			return unsupported(feature.UniqueColumn)
		}
		if c.PrimaryKey && !s.dialect.SupportsClause(feature.PrimaryKey) {
			return unsupported(feature.PrimaryKey)
		}
	}
	return nil
}

func (s *DB) validateCreateIndex(st *sqlast.CreateIndex) error {
	if !s.dialect.SupportsStatement(feature.StmtCreateIndex) {
		return unsupported(feature.StmtCreateIndex)
	}
	if st.Unique && !s.dialect.SupportsClause(feature.UniqueIndex) {
		return unsupported(feature.UniqueIndex)
	}
	if st.Where != nil && !s.dialect.SupportsClause(feature.PartialIndex) {
		return unsupported(feature.PartialIndex)
	}
	if len(st.Columns) > 1 && !s.dialect.SupportsClause(feature.CompositeIndex) {
		return unsupported(feature.CompositeIndex)
	}
	if max := s.dialect.MaxIndexColumns; max > 0 && len(st.Columns) > max {
		return errf(ErrSemantic, "index %q has %d columns, dialect allows at most %d",
			st.Name, len(st.Columns), max)
	}
	t := s.store.table(st.Table)
	if t == nil {
		return errf(ErrSemantic, "no such table %q", st.Table)
	}
	seen := map[string]bool{}
	for _, c := range st.Columns {
		if t.ColumnIndex(c) < 0 {
			return errf(ErrSemantic, "no such column %q in table %q", c, st.Table)
		}
		lc := strings.ToLower(c)
		if seen[lc] {
			return errf(ErrSemantic, "duplicate column %q in index %q", c, st.Name)
		}
		seen[lc] = true
	}
	if st.Where != nil {
		sc := &scope{rels: []scopeRel{{alias: t.Name, cols: t.Columns}}}
		typ, err := s.validateExpr(st.Where, sc, false)
		if err != nil {
			return err
		}
		if s.static() {
			if _, ok := unify(typ, sqlast.TypeBool); !ok {
				return errf(ErrSemantic, "partial index predicate must be boolean")
			}
		}
	}
	return nil
}

func (s *DB) validateCreateView(st *sqlast.CreateView) error {
	if !s.dialect.SupportsStatement(feature.StmtCreateView) {
		return unsupported(feature.StmtCreateView)
	}
	if len(st.Columns) > 0 && !s.dialect.SupportsClause(feature.ViewColumnNames) {
		return unsupported(feature.ViewColumnNames)
	}
	cols, err := s.validateSelect(st.Select, nil)
	if err != nil {
		return err
	}
	if len(st.Columns) > 0 && len(st.Columns) != len(cols) {
		return errf(ErrSemantic, "view %s: column list length mismatch", st.Name)
	}
	return nil
}

func (s *DB) validateInsert(st *sqlast.Insert) error {
	if !s.dialect.SupportsStatement(feature.StmtInsert) {
		return unsupported(feature.StmtInsert)
	}
	if st.OrIgnore && !s.dialect.SupportsClause(feature.InsertOrIgnore) {
		return unsupported(feature.InsertOrIgnore)
	}
	if len(st.Rows) > 1 && !s.dialect.SupportsClause(feature.InsertMultiRow) {
		return unsupported(feature.InsertMultiRow)
	}
	t := s.store.table(st.Table)
	if t == nil {
		return errf(ErrSemantic, "no such table %q", st.Table)
	}
	targets, err := insertTargets(t, st.Columns)
	if err != nil {
		return err
	}
	for _, row := range st.Rows {
		if len(row) != len(targets) {
			return errf(ErrSemantic, "INSERT value count %d does not match column count %d", len(row), len(targets))
		}
		for i, e := range row {
			typ, err := s.validateExpr(e, &scope{}, false)
			if err != nil {
				return err
			}
			if s.static() {
				if _, ok := unify(typ, t.Columns[targets[i]].Type); !ok {
					return errf(ErrSemantic, "INSERT: type mismatch for column %q", t.Columns[targets[i]].Name)
				}
			}
		}
	}
	return nil
}

// insertTargets maps an INSERT column list to column positions.
func insertTargets(t *Table, cols []string) ([]int, *Error) {
	if len(cols) == 0 {
		out := make([]int, len(t.Columns))
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	out := make([]int, len(cols))
	for i, c := range cols {
		idx := t.ColumnIndex(c)
		if idx < 0 {
			return nil, errf(ErrSemantic, "no such column %q in table %q", c, t.Name)
		}
		out[i] = idx
	}
	return out, nil
}

func (s *DB) validateUpdate(st *sqlast.Update) error {
	if !s.dialect.SupportsStatement(feature.StmtUpdate) {
		return unsupported(feature.StmtUpdate)
	}
	t := s.store.table(st.Table)
	if t == nil {
		return errf(ErrSemantic, "no such table %q", st.Table)
	}
	sc := &scope{rels: []scopeRel{{alias: t.Name, cols: t.Columns}}}
	for _, a := range st.Sets {
		idx := t.ColumnIndex(a.Column)
		if idx < 0 {
			return errf(ErrSemantic, "no such column %q in table %q", a.Column, t.Name)
		}
		typ, err := s.validateExpr(a.Value, sc, false)
		if err != nil {
			return err
		}
		if s.static() {
			if _, ok := unify(typ, t.Columns[idx].Type); !ok {
				return errf(ErrSemantic, "UPDATE: type mismatch for column %q", a.Column)
			}
		}
	}
	return s.validateBoolClause(st.Where, sc)
}

func (s *DB) validateDelete(st *sqlast.Delete) error {
	if !s.dialect.SupportsStatement(feature.StmtDelete) {
		return unsupported(feature.StmtDelete)
	}
	t := s.store.table(st.Table)
	if t == nil {
		return errf(ErrSemantic, "no such table %q", st.Table)
	}
	sc := &scope{rels: []scopeRel{{alias: t.Name, cols: t.Columns}}}
	return s.validateBoolClause(st.Where, sc)
}

func (s *DB) validateBoolClause(e sqlast.Expr, sc *scope) error {
	if e == nil {
		return nil
	}
	typ, err := s.validateExpr(e, sc, false)
	if err != nil {
		return err
	}
	if s.static() {
		if _, ok := unify(typ, sqlast.TypeBool); !ok {
			return errf(ErrSemantic, "predicate must be boolean")
		}
	}
	return nil
}

// validateSelect resolves and checks a SELECT, returning its output
// columns.
func (s *DB) validateSelect(sel *sqlast.Select, outer *scope) ([]Column, error) {
	if len(sel.Compound) > 0 {
		return s.validateCompound(sel, outer)
	}
	if sel.Distinct && !s.dialect.SupportsClause(feature.Distinct) {
		return nil, unsupported(feature.Distinct)
	}
	sc := &scope{outer: outer}
	seenAlias := map[string]bool{}
	for i, f := range sel.From {
		if i > 0 {
			jf := joinFeature(f.Join)
			if jf != "" && !s.dialect.SupportsClause(jf) {
				return nil, unsupported(jf)
			}
		}
		var rel scopeRel
		switch r := f.Ref.(type) {
		case *sqlast.TableName:
			cols, err := s.relationColumns(r.Name)
			if err != nil {
				return nil, err
			}
			rel = scopeRel{alias: r.RefName(), cols: cols}
		case *sqlast.DerivedTable:
			if !s.dialect.SupportsClause(feature.DerivedTable) {
				return nil, unsupported(feature.DerivedTable)
			}
			cols, err := s.validateSelect(r.Select, outer)
			if err != nil {
				return nil, err
			}
			rel = scopeRel{alias: r.Alias, cols: cols}
		}
		la := strings.ToLower(rel.alias)
		if seenAlias[la] {
			return nil, errf(ErrSemantic, "duplicate table alias %q", rel.alias)
		}
		seenAlias[la] = true
		sc.rels = append(sc.rels, rel)
		if f.On != nil {
			if err := s.validateBoolClause(f.On, sc); err != nil {
				return nil, err
			}
			if hasAggregate(f.On) {
				return nil, errf(ErrSemantic, "aggregates are not allowed in ON")
			}
		}
	}
	if sel.Where != nil {
		if !s.dialect.SupportsClause(feature.ClauseWhere) {
			return nil, unsupported(feature.ClauseWhere)
		}
		if err := s.validateBoolClause(sel.Where, sc); err != nil {
			return nil, err
		}
		if hasAggregate(sel.Where) {
			return nil, errf(ErrSemantic, "aggregates are not allowed in WHERE")
		}
	}
	if len(sel.GroupBy) > 0 {
		if !s.dialect.SupportsClause(feature.GroupBy) {
			return nil, unsupported(feature.GroupBy)
		}
		for _, g := range sel.GroupBy {
			if _, err := s.validateExpr(g, sc, false); err != nil {
				return nil, err
			}
		}
	}
	if sel.Having != nil {
		if !s.dialect.SupportsClause(feature.Having) {
			return nil, unsupported(feature.Having)
		}
		if len(sel.GroupBy) == 0 {
			return nil, errf(ErrSemantic, "HAVING requires GROUP BY")
		}
		typ, err := s.validateExpr(sel.Having, sc, true) // aggregates allowed
		if err != nil {
			return nil, err
		}
		if s.static() {
			if _, ok := unify(typ, sqlast.TypeBool); !ok {
				return nil, errf(ErrSemantic, "HAVING predicate must be boolean")
			}
		}
	}
	if len(sel.OrderBy) > 0 {
		if !s.dialect.SupportsClause(feature.OrderBy) {
			return nil, unsupported(feature.OrderBy)
		}
		for _, o := range sel.OrderBy {
			if _, err := s.validateExpr(o.Expr, sc, true); err != nil {
				return nil, err
			}
		}
	}
	if sel.Limit != nil && !s.dialect.SupportsClause(feature.Limit) {
		return nil, unsupported(feature.Limit)
	}
	if sel.Offset != nil && !s.dialect.SupportsClause(feature.Offset) {
		return nil, unsupported(feature.Offset)
	}

	var out []Column
	for i := range sel.Items {
		item := &sel.Items[i]
		if item.Star {
			if len(sc.rels) == 0 {
				return nil, errf(ErrSemantic, "SELECT * requires a FROM clause")
			}
			for _, rel := range sc.rels {
				out = append(out, rel.cols...)
			}
			continue
		}
		typ, err := s.validateExpr(item.Expr, sc, true)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*sqlast.ColumnRef); ok {
				name = cr.Column
			} else {
				name = "col" + itoa(len(out)+1)
			}
		}
		out = append(out, Column{Name: name, Type: typ})
	}
	if len(out) == 0 {
		return nil, errf(ErrSemantic, "SELECT list is empty")
	}
	return out, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// relationColumns returns the output columns of a table or view.
func (s *DB) relationColumns(name string) ([]Column, *Error) {
	if t := s.store.table(name); t != nil {
		return t.Columns, nil
	}
	if v := s.store.view(name); v != nil {
		cols := make([]Column, len(v.Columns))
		for i := range v.Columns {
			cols[i] = Column{Name: v.Columns[i], Type: v.Types[i]}
		}
		return cols, nil
	}
	return nil, errf(ErrSemantic, "no such table or view %q", name)
}

// hasAggregate reports whether an expression contains an aggregate call
// outside of subqueries.
func hasAggregate(e sqlast.Expr) bool {
	found := false
	sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
		switch n := x.(type) {
		case *sqlast.Subquery, *sqlast.Exists:
			return false // aggregates inside subqueries are theirs
		case *sqlast.Func:
			if isAggregate(n) {
				found = true
			}
		}
		return true
	})
	return found
}

// isAggregate reports whether a call is an aggregate. MIN/MAX with two or
// more arguments are scalar functions (SQLite-style).
func isAggregate(f *sqlast.Func) bool {
	switch f.Name {
	case "COUNT", "SUM", "AVG":
		return true
	case "MIN", "MAX":
		return f.Star || len(f.Args) == 1
	default:
		return false
	}
}
