package engine

// End-to-end replays of the paper's two SQLite case studies (Listings 2
// and 3) against the fault-injected SQLite dialect, using the exact SQL
// shapes the paper prints (adapted to this engine's grammar).

import (
	"testing"

	"sqlancerpp/internal/dialect"
)

// TestPaperListing2 replays the REPLACE bug: the paper's query
//
//	CREATE TABLE t0(c0 TEXT, PRIMARY KEY(c0));
//	INSERT INTO t0(c0) VALUES (1);
//	SELECT * FROM t0 WHERE t0.c0 = REPLACE(1, ' ', 0);      -- 1 row
//	SELECT * FROM t0 WHERE NOT t0.c0 = REPLACE(1, ' ', 0);  -- 1 row (bug!)
//
// The TLP partitions overlap: the same row satisfies both the predicate
// and its negation, because the filter path compares REPLACE's result
// numerically while the negated form evaluates cleanly.
func TestPaperListing2(t *testing.T) {
	db := Open(dialect.MustGet("sqlite")) // faults on
	mustExec(t, db, "CREATE TABLE t0 (c0 TEXT, PRIMARY KEY (c0))")
	// The paper inserts integer 1 into a TEXT column; SQLite's dynamic
	// typing stores it as given. Insert a value whose textual and numeric
	// comparisons diverge.
	mustExec(t, db, "INSERT INTO t0 (c0) VALUES ('01')")

	direct := mustQuery(t, db, "SELECT * FROM t0 WHERE t0.c0 = REPLACE('1', ' ', '0')")
	negated := mustQuery(t, db, "SELECT * FROM t0 WHERE NOT t0.c0 = REPLACE('1', ' ', '0')")
	if len(direct.Rows)+len(negated.Rows) != 2 {
		t.Fatalf("paper Listing 2: want the row in both partitions, got %d + %d",
			len(direct.Rows), len(negated.Rows))
	}
	mustQuery(t, db, "SELECT * FROM t0 WHERE t0.c0 = REPLACE('1', ' ', '0')")
	trig := db.TriggeredFaults()
	if len(trig) != 1 || trig[0] != "sqlite-1" {
		t.Fatalf("Listing 2 must attribute to sqlite-1 (REPLACE), got %v", trig)
	}

	// On a pristine instance the partitions are disjoint and complete.
	clean := Open(dialect.MustGet("sqlite"), WithoutFaults())
	mustExec(t, clean, "CREATE TABLE t0 (c0 TEXT, PRIMARY KEY (c0))")
	mustExec(t, clean, "INSERT INTO t0 (c0) VALUES ('01')")
	d := mustQuery(t, clean, "SELECT * FROM t0 WHERE t0.c0 = REPLACE('1', ' ', '0')")
	n := mustQuery(t, clean, "SELECT * FROM t0 WHERE NOT t0.c0 = REPLACE('1', ' ', '0')")
	u := mustQuery(t, clean, "SELECT * FROM t0 WHERE (t0.c0 = REPLACE('1', ' ', '0')) IS NULL")
	if len(d.Rows)+len(n.Rows)+len(u.Rows) != 1 {
		t.Fatalf("clean engine must partition exactly: %d/%d/%d",
			len(d.Rows), len(n.Rows), len(u.Rows))
	}
}

// TestPaperListing3 replays the flattener bug's shape: an outer join
// whose ON term is wrongly moved into WHERE once a WHERE clause exists,
// dropping NULL-extended rows. The paper's case uses a view over a RIGHT
// JOIN and a WHERE predicate (SQLite fault sqlite-2 targets RIGHT JOIN).
func TestPaperListing3(t *testing.T) {
	db := Open(dialect.MustGet("sqlite")) // faults on
	mustExec(t, db, "CREATE TABLE t0 (c0 INTEGER)")
	mustExec(t, db, "CREATE TABLE t1 (c0 INTEGER)")
	mustExec(t, db, "INSERT INTO t0 (c0) VALUES (1)")
	// t1 is empty, so every t0 row is NULL-extended by the RIGHT JOIN.
	mustExec(t, db, "CREATE VIEW v0 (c0) AS SELECT 0 FROM t1 RIGHT JOIN t0 ON TRUE")

	// Without WHERE: the view yields one row (paper: "-- 1 row").
	noWhere := mustQuery(t, db, "SELECT * FROM t1 RIGHT JOIN t0 ON t1.c0 = t0.c0")
	if len(noWhere.Rows) != 1 {
		t.Fatalf("un-flattened RIGHT JOIN must keep the NULL-extended row, got %d",
			len(noWhere.Rows))
	}
	// With WHERE: the flattener degrades the join and the row vanishes
	// (paper: "-- {} (bug!)").
	withWhere := mustQuery(t, db,
		"SELECT * FROM t1 RIGHT JOIN t0 ON t1.c0 = t0.c0 WHERE t0.c0 = 1")
	if len(withWhere.Rows) != 0 {
		t.Fatalf("flattener fault must drop the NULL-extended row, got %d",
			len(withWhere.Rows))
	}
	trig := db.TriggeredFaults()
	if len(trig) != 1 || trig[0] != "sqlite-2" {
		t.Fatalf("Listing 3 must attribute to sqlite-2 (flattener), got %v", trig)
	}

	// Clean engine: the WHERE keeps the row.
	clean := Open(dialect.MustGet("sqlite"), WithoutFaults())
	mustExec(t, clean, "CREATE TABLE t0 (c0 INTEGER)")
	mustExec(t, clean, "CREATE TABLE t1 (c0 INTEGER)")
	mustExec(t, clean, "INSERT INTO t0 (c0) VALUES (1)")
	res := mustQuery(t, clean,
		"SELECT * FROM t1 RIGHT JOIN t0 ON t1.c0 = t0.c0 WHERE t0.c0 = 1")
	if len(res.Rows) != 1 {
		t.Fatalf("clean engine must keep the row, got %d", len(res.Rows))
	}
}

// TestPaperFigure3ViewOverJoin checks the Listing 3 view indirection:
// querying through the view exercises the same fault.
func TestPaperFigure3ViewOverJoin(t *testing.T) {
	db := Open(dialect.MustGet("sqlite"))
	mustExec(t, db, "CREATE TABLE t0 (c0 INTEGER)")
	mustExec(t, db, "CREATE TABLE t1 (c0 INTEGER)")
	mustExec(t, db, "INSERT INTO t0 (c0) VALUES (1)")
	mustExec(t, db, "CREATE VIEW v0 (c0) AS SELECT 0 FROM t1 RIGHT JOIN t0 ON TRUE")
	res := mustQuery(t, db, "SELECT * FROM v0")
	if len(res.Rows) != 1 {
		t.Fatalf("view over RIGHT JOIN (no WHERE anywhere) must keep the row, got %d",
			len(res.Rows))
	}
}

// TestPaperASINExample checks the §4 context-dependent failure example:
// ASIN(1) succeeds while ASIN(2) fails on a statically typed system
// (fixed-point scale: 1000 ≙ 1.0).
func TestPaperASINExample(t *testing.T) {
	pg := openClean(t, "postgresql")
	if err := pg.Exec("SELECT ASIN(1000)"); err != nil {
		t.Fatalf("ASIN(1) must succeed: %v", err)
	}
	if err := pg.Exec("SELECT ASIN(2000)"); err == nil {
		t.Fatal("ASIN(2) must fail on PostgreSQL (paper §4)")
	}
	// SQLite's dynamic profile yields NULL instead.
	lite := openClean(t, "sqlite")
	res := mustQuery(t, lite, "SELECT ASIN(2000)")
	if !res.Rows[0][0].IsNull() {
		t.Fatal("ASIN(2) must yield NULL on SQLite")
	}
}
