package engine

import (
	"testing"

	"sqlancerpp/internal/dialect"
)

// openClean returns a fault-free instance of a dialect for testing.
func openClean(t *testing.T, name string) *DB {
	t.Helper()
	d, err := dialect.Get(name)
	if err != nil {
		t.Fatalf("dialect %q: %v", name, err)
	}
	return Open(d, WithoutFaults())
}

func mustExec(t *testing.T, db *DB, sql string) {
	t.Helper()
	if err := db.Exec(sql); err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
}

func mustQuery(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res
}

func TestSmokeBasicFlow(t *testing.T) {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE t0 (c0 INTEGER, c1 TEXT, PRIMARY KEY (c0))")
	mustExec(t, db, "INSERT INTO t0 (c0, c1) VALUES (1, 'a'), (2, 'b'), (3, NULL)")
	mustExec(t, db, "CREATE INDEX i0 ON t0 (c1)")
	mustExec(t, db, "CREATE VIEW v0 (x) AS SELECT c0 + 1 FROM t0")
	mustExec(t, db, "ANALYZE")

	res := mustQuery(t, db, "SELECT * FROM t0 WHERE c0 >= 2")
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d: %v", len(res.Rows), res.RenderRows())
	}
	res = mustQuery(t, db, "SELECT x FROM v0 ORDER BY x DESC LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 4 {
		t.Fatalf("view query wrong: %v", res.RenderRows())
	}
	res = mustQuery(t, db, "SELECT COUNT(*) FROM t0 WHERE c1 IS NOT NULL")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("count wrong: %v", res.RenderRows())
	}
	res = mustQuery(t, db, "SELECT t0.c0 FROM t0 LEFT JOIN v0 ON v0.x = t0.c0")
	if len(res.Rows) != 3 {
		t.Fatalf("left join wrong: %v", res.RenderRows())
	}
}

func TestSmokeStaticTyping(t *testing.T) {
	db := openClean(t, "postgresql")
	mustExec(t, db, "CREATE TABLE t0 (c0 INTEGER, c1 TEXT)")
	if err := db.Exec("SELECT c0 + c1 FROM t0"); err == nil {
		t.Fatal("expected type error for INT + TEXT on a static dialect")
	}
	if err := db.Exec("SELECT c0 FROM t0 WHERE c0"); err == nil {
		t.Fatal("expected type error for non-boolean WHERE on a static dialect")
	}
	// Dynamic dialect accepts both.
	db2 := openClean(t, "sqlite")
	mustExec(t, db2, "CREATE TABLE t0 (c0 INTEGER, c1 TEXT)")
	mustExec(t, db2, "SELECT c0 + c1 FROM t0")
	mustExec(t, db2, "SELECT c0 FROM t0 WHERE c0")
}

func TestSmokeUnsupportedFeature(t *testing.T) {
	db := openClean(t, "postgresql")
	mustExec(t, db, "CREATE TABLE t0 (c0 INTEGER)")
	err := db.Exec("SELECT 1 FROM t0 WHERE c0 <=> 1")
	if err == nil {
		t.Fatal("expected unsupported-operator error for <=> on postgresql")
	}
	if ClassOf(err) != ErrUnsupported {
		t.Fatalf("want unsupported, got %v", err)
	}
	// CrateDB lacks CREATE INDEX entirely (paper Appendix A.1).
	crate := openClean(t, "cratedb")
	mustExec(t, crate, "CREATE TABLE t0 (c0 INTEGER)")
	err = crate.Exec("CREATE INDEX i0 ON t0 (c0)")
	if ClassOf(err) != ErrUnsupported {
		t.Fatalf("want unsupported CREATE INDEX on cratedb, got %v", err)
	}
}

func TestSmokeRefreshSemantics(t *testing.T) {
	db := openClean(t, "cratedb")
	mustExec(t, db, "CREATE TABLE t0 (c0 INTEGER)")
	mustExec(t, db, "INSERT INTO t0 (c0) VALUES (1)")
	res := mustQuery(t, db, "SELECT * FROM t0")
	if len(res.Rows) != 0 {
		t.Fatalf("rows visible before REFRESH: %v", res.RenderRows())
	}
	mustExec(t, db, "REFRESH TABLE t0")
	res = mustQuery(t, db, "SELECT * FROM t0")
	if len(res.Rows) != 1 {
		t.Fatalf("rows not visible after REFRESH: %v", res.RenderRows())
	}
}

func TestSmokeInjectedFaultListing2(t *testing.T) {
	// The SQLite REPLACE fault (paper Listing 2): the filter-root
	// comparison against REPLACE(...) compares numerically.
	d := dialect.MustGet("sqlite")
	db := Open(d)
	mustExec(t, db, "CREATE TABLE t0 (c0 TEXT, PRIMARY KEY (c0))")
	mustExec(t, db, "INSERT INTO t0 (c0) VALUES ('1')")
	q1 := mustQuery(t, db, "SELECT * FROM t0 WHERE t0.c0 = REPLACE('1', ' ', '0')")
	q2 := mustQuery(t, db, "SELECT * FROM t0 WHERE NOT t0.c0 = REPLACE('1', ' ', '0')")
	q3 := mustQuery(t, db, "SELECT * FROM t0 WHERE (t0.c0 = REPLACE('1', ' ', '0')) IS NULL")
	total := len(q1.Rows) + len(q2.Rows) + len(q3.Rows)
	base := mustQuery(t, db, "SELECT * FROM t0")
	_ = total
	_ = base
	// With faults enabled the partitions may disagree with the base; with
	// faults disabled they must agree.
	clean := Open(d, WithoutFaults())
	mustExec(t, clean, "CREATE TABLE t0 (c0 TEXT, PRIMARY KEY (c0))")
	mustExec(t, clean, "INSERT INTO t0 (c0) VALUES ('1')")
	c1 := mustQuery(t, clean, "SELECT * FROM t0 WHERE t0.c0 = REPLACE('1', ' ', '0')")
	c2 := mustQuery(t, clean, "SELECT * FROM t0 WHERE NOT t0.c0 = REPLACE('1', ' ', '0')")
	c3 := mustQuery(t, clean, "SELECT * FROM t0 WHERE (t0.c0 = REPLACE('1', ' ', '0')) IS NULL")
	if len(c1.Rows)+len(c2.Rows)+len(c3.Rows) != 1 {
		t.Fatalf("clean TLP partition broken: %d/%d/%d", len(c1.Rows), len(c2.Rows), len(c3.Rows))
	}
}

// mustDialect fetches a dialect for tests that need fault injection on.
func mustDialect(t *testing.T, name string) *dialect.Dialect {
	t.Helper()
	d, err := dialect.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
