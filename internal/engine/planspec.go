package engine

// First-class per-query plan control. A PlanSpec forces access-path and
// join-strategy choices the planner (plan.go) would otherwise make by
// cost: per-relation scan/index forcing with an optional composite
// equality-prefix width cap, per-join-step probe suppression, and the
// join order of the leading inner-join chain. The PlanDiff oracle
// drives it: EnumeratePlans (planenum.go) yields the deterministic set
// of semantically-equivalent specs for a query, and the oracle diffs the
// auto plan against each of them.
//
// Forcing never changes statement semantics on a clean engine: every
// forced plan returns candidate supersets or reorderings that the
// unchanged WHERE/ON re-evaluation filters identically, and a forced
// choice that is inapplicable (unknown index, partial index, no sargable
// conjunct for the index, unsafe swap) degrades to the full scan — it
// never errors. This mirrors how real plan hints (USE INDEX, join-order
// pragmas) behave, and is what lets the oracle treat any divergence
// between two plans of the same query as a bug.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// RelForce selects the forced access path of one FROM relation.
type RelForce int

// Relation forcing kinds.
const (
	// ForceAuto keeps the planner's own cost-based choice.
	ForceAuto RelForce = iota
	// ForceScan forces the full scan (no index probe).
	ForceScan
	// ForceIndex forces a probe through the named index; inapplicable
	// forcing (unknown/partial index, no sargable conjunct on its leading
	// column) degrades to the full scan.
	ForceIndex
)

// RelSpec forces the access path of one FROM relation, matched by its
// case-insensitive alias (the table name when unaliased).
type RelSpec struct {
	Force RelForce
	// Index names the forced index (ForceIndex only).
	Index string
	// PrefixWidth caps the composite equality-prefix width the probe may
	// consume (0 = no cap): width 1 turns a composite span into a
	// leading-column span, leaving the remaining conjuncts to the WHERE
	// loop. Applies to both forced and auto-chosen indexes.
	PrefixWidth int
}

// JoinSpec forces one join step; step i combines FROM item i+1 with the
// relations accumulated before it.
type JoinSpec struct {
	// ProbeOff forces the quadratic candidate loop even where an
	// index-nested-loop probe applies.
	ProbeOff bool
}

// PlanSpec is a per-query plan-forcing specification. The zero value
// means fully automatic planning. Specs are applied with DB.SetPlanSpec
// and stay in effect until replaced — exactly like the session-scoped
// planner pragmas of a real DBMS.
type PlanSpec struct {
	// DisableIndexPaths suppresses the access-path planner wholesale:
	// every scan — base-table and join probe alike — is a full scan,
	// while index maintenance continues. This is the plan the legacy
	// SetIndexPaths(false) toggle selected.
	DisableIndexPaths bool
	// JoinPerm reorders the leading inner-join chain of the FROM list
	// before planning: relation j of the permuted FROM is original
	// relation JoinPerm[j], with positions beyond len(JoinPerm) left in
	// place. The canonical form trims trailing fixed points, so the
	// identity is nil and the legacy two-relation swap is [1, 0]. ON
	// conjuncts are re-attached at the earliest permuted step that binds
	// their relations, and SELECT * output is restored to the original
	// relation order, so the permutation is invisible to results. It is
	// applied only when semantically safe (inner-like chain, explicit
	// qualified ON conditions, order-safe statement); otherwise it is
	// ignored.
	JoinPerm []int
	// CoveringOff suppresses covering-index projection: even when every
	// referenced column is in the chosen index's key, the executor
	// materializes heap rows and evaluates the projection normally. The
	// candidate rows, WHERE evaluation, and results are unchanged — only
	// the serving path (and its cost accounting) differs, which is
	// exactly the axis PlanDiff wants to diff.
	CoveringOff bool
	// Relations maps a relation alias to its access-path forcing.
	Relations map[string]RelSpec
	// Joins maps a join-step index to its forcing.
	Joins map[int]JoinSpec
}

// relSpec returns the forcing for a relation alias (zero value if none).
func (p *PlanSpec) relSpec(alias string) RelSpec {
	for a, rs := range p.Relations {
		if strings.EqualFold(a, alias) {
			return rs
		}
	}
	return RelSpec{}
}

// joinProbeOff reports whether the spec forces the quadratic loop for a
// join step.
func (p *PlanSpec) joinProbeOff(step int) bool {
	return p.Joins[step].ProbeOff
}

// String renders the spec in its canonical serialized form: "auto" for
// the zero spec, otherwise space-separated tokens — "noindex",
// "perm:<i,j,...>", "nocover", "rel:<alias>=scan",
// "rel:<alias>=index(<name>)[/w<k>]", "rel:<alias>=auto/w<k>",
// "join:<step>=probeoff" — with relations sorted by alias and joins by
// step, so equal specs render identically. ParsePlanSpec inverts it
// (and still accepts the legacy "swap" spelling of "perm:1,0"); bug
// reports carry the losing spec in this form and the reducer replays
// it verbatim.
func (p PlanSpec) String() string {
	var toks []string
	if p.DisableIndexPaths {
		toks = append(toks, "noindex")
	}
	if len(p.JoinPerm) > 0 {
		ps := make([]string, len(p.JoinPerm))
		for i, v := range p.JoinPerm {
			ps[i] = strconv.Itoa(v)
		}
		toks = append(toks, "perm:"+strings.Join(ps, ","))
	}
	if p.CoveringOff {
		toks = append(toks, "nocover")
	}
	aliases := make([]string, 0, len(p.Relations))
	for a := range p.Relations {
		aliases = append(aliases, a)
	}
	sort.Strings(aliases)
	for _, a := range aliases {
		rs := p.Relations[a]
		var body string
		switch rs.Force {
		case ForceScan:
			body = "scan"
		case ForceIndex:
			body = "index(" + rs.Index + ")"
		default:
			body = "auto"
		}
		if rs.PrefixWidth > 0 && rs.Force != ForceScan {
			body += "/w" + strconv.Itoa(rs.PrefixWidth)
		}
		toks = append(toks, "rel:"+a+"="+body)
	}
	steps := make([]int, 0, len(p.Joins))
	for s := range p.Joins {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	for _, s := range steps {
		if p.Joins[s].ProbeOff {
			toks = append(toks, "join:"+strconv.Itoa(s)+"=probeoff")
		}
	}
	if len(toks) == 0 {
		return "auto"
	}
	return strings.Join(toks, " ")
}

// CanonicalPerm trims trailing fixed points from a permutation and
// returns nil for the identity, so equal join orders compare and render
// identically regardless of how many fixed tail positions the caller
// spelled out.
func CanonicalPerm(perm []int) []int {
	n := len(perm)
	for n > 0 && perm[n-1] == n-1 {
		n--
	}
	if n == 0 {
		return nil
	}
	return perm[:n]
}

// ParsePlanSpec parses the String form back into a PlanSpec.
func ParsePlanSpec(s string) (PlanSpec, error) {
	var p PlanSpec
	s = strings.TrimSpace(s)
	if s == "" || s == "auto" {
		return p, nil
	}
	for _, tok := range strings.Fields(s) {
		switch {
		case tok == "noindex":
			p.DisableIndexPaths = true
		case tok == "swap":
			// Legacy spelling from pre-permutation reports.
			p.JoinPerm = []int{1, 0}
		case strings.HasPrefix(tok, "perm:"):
			parts := strings.Split(tok[len("perm:"):], ",")
			perm := make([]int, len(parts))
			seen := make([]bool, len(parts))
			for i, part := range parts {
				v, err := strconv.Atoi(part)
				if err != nil || v < 0 || v >= len(parts) || seen[v] {
					return PlanSpec{}, fmt.Errorf("planspec: bad permutation %q", tok)
				}
				perm[i] = v
				seen[v] = true
			}
			if perm = CanonicalPerm(perm); perm == nil {
				return PlanSpec{}, fmt.Errorf("planspec: identity permutation %q", tok)
			}
			p.JoinPerm = perm
		case tok == "nocover":
			p.CoveringOff = true
		case strings.HasPrefix(tok, "rel:"):
			body := tok[len("rel:"):]
			eq := strings.IndexByte(body, '=')
			if eq <= 0 {
				return PlanSpec{}, fmt.Errorf("planspec: malformed token %q", tok)
			}
			alias, val := body[:eq], body[eq+1:]
			var rs RelSpec
			if i := strings.LastIndex(val, "/w"); i >= 0 {
				w, err := strconv.Atoi(val[i+2:])
				if err != nil || w < 1 {
					return PlanSpec{}, fmt.Errorf("planspec: bad prefix width in %q", tok)
				}
				rs.PrefixWidth = w
				val = val[:i]
			}
			switch {
			case val == "scan":
				rs.Force = ForceScan
			case val == "auto":
				rs.Force = ForceAuto
			case strings.HasPrefix(val, "index(") && strings.HasSuffix(val, ")"):
				rs.Force = ForceIndex
				rs.Index = val[len("index(") : len(val)-1]
				if rs.Index == "" {
					return PlanSpec{}, fmt.Errorf("planspec: empty index name in %q", tok)
				}
			default:
				return PlanSpec{}, fmt.Errorf("planspec: unknown forcing %q", tok)
			}
			if p.Relations == nil {
				p.Relations = map[string]RelSpec{}
			}
			p.Relations[alias] = rs
		case strings.HasPrefix(tok, "join:"):
			body := tok[len("join:"):]
			eq := strings.IndexByte(body, '=')
			if eq <= 0 || body[eq+1:] != "probeoff" {
				return PlanSpec{}, fmt.Errorf("planspec: malformed token %q", tok)
			}
			step, err := strconv.Atoi(body[:eq])
			if err != nil || step < 0 {
				return PlanSpec{}, fmt.Errorf("planspec: bad join step in %q", tok)
			}
			if p.Joins == nil {
				p.Joins = map[int]JoinSpec{}
			}
			p.Joins[step] = JoinSpec{ProbeOff: true}
		default:
			return PlanSpec{}, fmt.Errorf("planspec: unknown token %q", tok)
		}
	}
	return p, nil
}
