package engine

import (
	"sync/atomic"
	"testing"

	"sqlancerpp/internal/dialect"
)

// TestCancelFlagTimesOutStatements: a set cancel flag fails statements
// with ErrTimeout — immediately in the RunStmt prologue, and at the
// per-row checkpoint mid-scan — and clearing it restores the instance.
func TestCancelFlagTimesOutStatements(t *testing.T) {
	cancel := new(atomic.Bool)
	db := Open(dialect.MustGet("sqlite"), WithoutFaults(), WithCancel(cancel))
	mustExec := func(sql string) {
		t.Helper()
		if err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE t0 (c0 INTEGER)")
	for i := 0; i < 8; i++ {
		mustExec("INSERT INTO t0 VALUES (1)")
	}

	cancel.Store(true)
	err := db.Exec("SELECT * FROM t0")
	if !IsTimeout(err) {
		t.Fatalf("with cancel set, got %v, want ErrTimeout", err)
	}
	if IsBudgetExceeded(err) || ClassOf(err) != ErrTimeout {
		t.Fatalf("timeout misclassified: %v", err)
	}

	cancel.Store(false)
	if err := db.Exec("SELECT * FROM t0"); err != nil {
		t.Fatalf("after clearing the flag: %v", err)
	}
}

// TestBudgetOutranksTimeout: when a statement exhausts its deterministic
// row budget and the cancel flag is set, the deterministic failure wins
// — replays without a watchdog must fail the same way.
func TestBudgetOutranksTimeout(t *testing.T) {
	cancel := new(atomic.Bool)
	db := Open(dialect.MustGet("sqlite"), WithoutFaults(),
		WithCancel(cancel), WithRowBudget(1))
	if err := db.Exec("CREATE TABLE t0 (c0 INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := db.Exec("INSERT INTO t0 VALUES (1)"); err != nil {
			t.Fatal(err)
		}
	}
	// The flag is checked per row too, but the budget (1 row) trips on
	// the same row the flag would — budget must be reported.
	// RunStmt's prologue would reject first, so exercise the per-row
	// path: clear the flag, start the scan via a fresh statement where
	// the flag is set only after the prologue. Simplest deterministic
	// equivalent: both conditions true from the start of the row loop.
	cancel.Store(true)
	err := db.Exec("SELECT * FROM t0")
	if !IsTimeout(err) && !IsBudgetExceeded(err) {
		t.Fatalf("got %v, want timeout (prologue) or budget", err)
	}

	// Per-row precedence directly: with the prologue bypassed (flag set
	// mid-statement is not reproducible in a unit test), assert the
	// documented ordering on chargeRow itself.
	db2 := Open(dialect.MustGet("sqlite"), WithoutFaults(),
		WithCancel(cancel), WithRowBudget(0))
	db2.budget = 0 // next charged row exceeds
	cancel.Store(true)
	if cerr := db2.chargeRow(); !IsBudgetExceeded(cerr) {
		t.Fatalf("chargeRow with budget exhausted and flag set returned %v, want budget class", cerr)
	}
}
