package engine

import (
	"strings"

	"sqlancerpp/internal/feature"
	"sqlancerpp/internal/sqlast"
)

// setOpFeature maps a set operator to its feature name.
func setOpFeature(op sqlast.SetOp) string {
	switch op {
	case sqlast.SetUnion:
		return feature.Union
	case sqlast.SetUnionAll:
		return feature.UnionAll
	case sqlast.SetIntersect:
		return feature.Intersect
	case sqlast.SetExcept:
		return feature.Except
	default:
		return ""
	}
}

// coreOf strips the compound arms and trailing clauses, leaving one
// executable SELECT core (shallow copy).
func coreOf(sel *sqlast.Select) *sqlast.Select {
	core := *sel
	core.Compound = nil
	core.OrderBy = nil
	core.Limit = nil
	core.Offset = nil
	return &core
}

// validateCompound checks a compound query: each arm must be supported by
// the dialect, produce the same column count, and (static dialects) have
// unifiable column types. ORDER BY terms must name output columns.
func (s *DB) validateCompound(sel *sqlast.Select, outer *scope) ([]Column, error) {
	cols, err := s.validateSelect(coreOf(sel), outer)
	if err != nil {
		return nil, err
	}
	for _, part := range sel.Compound {
		featName := setOpFeature(part.Op)
		if !s.dialect.SupportsClause(featName) {
			return nil, unsupported(featName)
		}
		armCols, err := s.validateSelect(part.Select, outer)
		if err != nil {
			return nil, err
		}
		if len(armCols) != len(cols) {
			return nil, errf(ErrSemantic,
				"%s arms have different column counts (%d vs %d)",
				featName, len(cols), len(armCols))
		}
		if s.static() {
			for i := range cols {
				u, ok := unify(cols[i].Type, armCols[i].Type)
				if !ok {
					return nil, errf(ErrSemantic,
						"%s arm column %d has incompatible type", featName, i+1)
				}
				cols[i].Type = u
			}
		}
	}
	for _, o := range sel.OrderBy {
		cr, ok := o.Expr.(*sqlast.ColumnRef)
		if !ok || cr.Table != "" {
			return nil, errf(ErrSemantic,
				"ORDER BY in a compound query must name an output column")
		}
		if compoundOrderIndex(cols, cr.Column) < 0 {
			return nil, errf(ErrSemantic, "no such output column %q", cr.Column)
		}
	}
	if sel.Limit != nil && !s.dialect.SupportsClause(feature.Limit) {
		return nil, unsupported(feature.Limit)
	}
	if sel.Offset != nil && !s.dialect.SupportsClause(feature.Offset) {
		return nil, unsupported(feature.Offset)
	}
	return cols, nil
}

func compoundOrderIndex(cols []Column, name string) int {
	for i := range cols {
		if strings.EqualFold(cols[i].Name, name) {
			return i
		}
	}
	return -1
}

// execCompound executes a compound query.
func (s *DB) execCompound(sel *sqlast.Select, outer *rowEnv) (*Result, *Error) {
	s.cov.Hit("exec.compound")
	// A compound-level LIMIT/OFFSET cuts the concatenated arm rows by
	// position, so the arms' scan order becomes observable: keep every
	// arm on the order-preserving full scan (see indexOrderSafe).
	if sel.Limit != nil || sel.Offset != nil {
		restore := s.planSpec
		s.planSpec = PlanSpec{DisableIndexPaths: true}
		defer func() { s.planSpec = restore }()
	}
	left, err := s.execSelectEnv(coreOf(sel), outer)
	if err != nil {
		return nil, err
	}
	rows := left.Rows
	for _, part := range sel.Compound {
		s.cov.Hit("exec.setop." + setOpFeature(part.Op))
		right, err := s.execSelectEnv(part.Select, outer)
		if err != nil {
			return nil, err
		}
		rows = s.applySetOp(part.Op, rows, right.Rows)
	}

	// ORDER BY over output columns, then LIMIT / OFFSET.
	if len(sel.OrderBy) > 0 {
		s.cov.Hit("exec.orderby")
		keys := make([][]Value, len(rows))
		for i, row := range rows {
			key := make([]Value, len(sel.OrderBy))
			for j, o := range sel.OrderBy {
				cr := o.Expr.(*sqlast.ColumnRef)
				idx := compoundOrderIndex(columnsOf(left.Columns), cr.Column)
				key[j] = row[idx]
			}
			keys[i] = key
		}
		sortRows(rows, keys, sel.OrderBy)
	}
	if sel.Offset != nil {
		off := int(*sel.Offset)
		if off < 0 {
			off = 0
		}
		if off > len(rows) {
			off = len(rows)
		}
		rows = rows[off:]
	}
	if sel.Limit != nil {
		lim := int(*sel.Limit)
		if lim < 0 {
			lim = 0
		}
		if lim < len(rows) {
			rows = rows[:lim]
		}
	}
	return &Result{Columns: left.Columns, Rows: rows}, nil
}

func columnsOf(names []string) []Column {
	out := make([]Column, len(names))
	for i, n := range names {
		out[i] = Column{Name: n}
	}
	return out
}

// applySetOp combines two row multisets. Non-ALL operators use set
// semantics. The UnionAllDedup fault makes UNION ALL behave like UNION.
func (s *DB) applySetOp(op sqlast.SetOp, left, right [][]Value) [][]Value {
	switch op {
	case sqlast.SetUnionAll:
		combined := append(append([][]Value{}, left...), right...)
		if f := s.faultSet().UnionDedup(); f != nil {
			deduped := dedupeRows(combined)
			if len(deduped) != len(combined) {
				s.trigger(f)
			}
			return deduped
		}
		return combined
	case sqlast.SetUnion:
		return dedupeRows(append(append([][]Value{}, left...), right...))
	case sqlast.SetIntersect:
		inRight := map[string]bool{}
		for _, r := range right {
			inRight[renderRow(r)] = true
		}
		var out [][]Value
		for _, r := range dedupeRows(left) {
			if inRight[renderRow(r)] {
				out = append(out, r)
			}
		}
		return out
	case sqlast.SetExcept:
		inRight := map[string]bool{}
		for _, r := range right {
			inRight[renderRow(r)] = true
		}
		var out [][]Value
		for _, r := range dedupeRows(left) {
			if !inRight[renderRow(r)] {
				out = append(out, r)
			}
		}
		return out
	default:
		return left
	}
}

func dedupeRows(rows [][]Value) [][]Value {
	seen := map[string]bool{}
	var out [][]Value
	for _, r := range rows {
		k := renderRow(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}
