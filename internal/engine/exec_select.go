package engine

import (
	"sort"
	"strings"

	"sqlancerpp/internal/sqlast"
)

// matRel is a materialized FROM relation.
type matRel struct {
	alias string
	cols  []string
	rows  [][]Value
	table *Table // set when the relation is a direct table reference
}

// jrow is one combined join row: one value slice per relation.
type jrow [][]Value

// buildEnv exposes a combined row to the evaluator. It allocates a fresh
// environment and is reserved for rows that must be retained (the grouped
// path keeps one environment per group member); transient per-row
// evaluation uses a scratch environment instead.
func buildEnv(rels []matRel, row jrow, outer *rowEnv) *rowEnv {
	env := &rowEnv{outer: outer, rels: make([]rowRel, len(rels))}
	for i := range rels {
		env.rels[i] = rowRel{alias: rels[i].alias, cols: rels[i].cols, vals: row[i]}
	}
	return env
}

// newScratchEnv builds a reusable environment over a fixed relation list.
// Callers point it at successive rows with bindRow, so a statement that
// scans a million rows allocates one environment, not a million.
func newScratchEnv(rels []matRel, outer *rowEnv) *rowEnv {
	env := &rowEnv{outer: outer, rels: make([]rowRel, len(rels))}
	for i := range rels {
		env.rels[i] = rowRel{alias: rels[i].alias, cols: rels[i].cols}
	}
	return env
}

// scratchExec bundles the per-statement scratch environment, its
// relation slots, and the evaluation context into one allocation; all
// three live exactly as long as one statement execution, and the
// execution hot paths build them in lockstep.
type scratchExec struct {
	env  rowEnv
	ctx  evalCtx
	rels [4]rowRel
}

// newScratchExec is newScratchEnv plus newEvalCtx fused into a single
// allocation (the inline relation array covers every generated query
// shape; wider joins fall back to a heap slice).
func (s *DB) newScratchExec(rels []matRel, outer *rowEnv) (*rowEnv, *evalCtx) {
	sc := &scratchExec{}
	sc.env.outer = outer
	if len(rels) <= len(sc.rels) {
		sc.env.rels = sc.rels[:len(rels)]
	} else {
		sc.env.rels = make([]rowRel, len(rels))
	}
	for i := range rels {
		sc.env.rels[i] = rowRel{alias: rels[i].alias, cols: rels[i].cols}
	}
	sc.ctx = evalCtx{
		s:   s,
		env: &sc.env,
		dialect: dialectFlags{
			DivZeroError:    s.dialect.DivZeroError,
			CastTextError:   s.dialect.CastTextError,
			MathDomainError: s.dialect.MathDomainError,
		},
	}
	return &sc.env, &sc.ctx
}

// bindRow points a scratch environment at one combined row.
func (env *rowEnv) bindRow(row jrow) {
	for i := range row {
		env.rels[i].vals = row[i]
	}
}

// jrowArena hands out combined join rows from chunked backing storage,
// replacing one slice allocation per output row with one per chunk.
type jrowArena struct {
	buf [][]Value
}

func (a *jrowArena) row(lrow jrow, rrow []Value) jrow {
	n := len(lrow) + 1
	if len(a.buf) < n {
		size := 1024
		if n > size {
			size = n
		}
		a.buf = make([][]Value, size)
	}
	out := a.buf[:n:n]
	a.buf = a.buf[n:]
	copy(out, lrow)
	out[n-1] = rrow
	return out
}

func nullRow(n int) []Value {
	out := make([]Value, n)
	for i := range out {
		out[i] = Null()
	}
	return out
}

// materializeRef produces the rows of a FROM item.
func (s *DB) materializeRef(ref sqlast.TableRef, outer *rowEnv) (matRel, *Error) {
	switch r := ref.(type) {
	case *sqlast.TableName:
		if t := s.store.table(r.Name); t != nil {
			s.cov.Hit("exec.scan.table")
			// The scan shares the table's row slice: rows are immutable for
			// the duration of a statement (DML replaces slices, it never
			// writes through them), and projection copies values out.
			return matRel{alias: r.RefName(), cols: t.colNames(), rows: t.Rows, table: t}, nil
		}
		if v := s.store.view(r.Name); v != nil {
			s.cov.Hit("exec.scan.view")
			res, err := s.execSelectEnv(v.Def, nil)
			if err != nil {
				return matRel{}, err
			}
			return matRel{alias: r.RefName(), cols: v.Columns, rows: res.Rows}, nil
		}
		return matRel{}, errf(ErrSemantic, "no such table or view %q", r.Name)
	case *sqlast.DerivedTable:
		s.cov.Hit("exec.scan.derived")
		res, err := s.execSelectEnv(r.Select, outer)
		if err != nil {
			return matRel{}, err
		}
		return matRel{alias: r.Alias, cols: res.Columns, rows: res.Rows}, nil
	default:
		return matRel{}, errf(ErrSemantic, "unhandled table reference")
	}
}

// execSelectEnv executes a SELECT with an optional outer environment for
// correlated subqueries. Errors use the engine's *Error type.
func (s *DB) execSelectEnv(sel *sqlast.Select, outer *rowEnv) (*Result, *Error) {
	if len(sel.Compound) > 0 {
		return s.execCompound(sel, outer)
	}
	s.cov.Hit("exec.select")
	var rels []matRel
	var rows []jrow
	// Filter conjuncts are split once per statement; the access-path
	// planner and the WHERE loop share them.
	var conjs []sqlast.Expr
	if sel.Where != nil {
		conjs = splitAnd(sel.Where, nil)
	}

	// skipConj is the WHERE-conjunct position consumed by a faulty index
	// probe (CompositeProbePrefixSkip); -1 keeps every conjunct.
	skipConj := -1
	// cover, when non-nil, serves the projection from the chosen index's
	// key columns instead of evaluating projection expressions (cover.go).
	var cover *coverPlan
	// starOrder, when non-nil, maps original relation positions to their
	// permuted indexes so * projection keeps the original column order
	// under a JoinPerm plan; moved marks the ON conjuncts the reorder
	// re-attached at a later step (the JoinPermConjDrop fault's site).
	var starOrder []int
	var moved map[sqlast.Expr]bool
	if len(sel.From) > 0 {
		// PlanSpec join-order forcing: reorder the leading inner-join
		// chain where the permutation is semantically safe; an unsafe
		// permutation is ignored (forcing degrades, never errors).
		from := sel.From
		if perm := s.planSpec.JoinPerm; len(perm) > 0 {
			if m := permPrefixLen(sel); len(perm) <= m {
				from, moved = permutedFrom(from, perm)
				starOrder = make([]int, len(from))
				for j := range starOrder {
					starOrder[j] = j
				}
				for j, o := range perm {
					starOrder[o] = j
				}
				s.cov.Hit("plan.perm")
			}
		}
		first, err := s.materializeRef(from[0].Ref, outer)
		if err != nil {
			return nil, err
		}
		if len(conjs) > 0 && first.table != nil && indexPlannable(from) && indexOrderSafe(sel) {
			if idxRows, ix, skip, ok := s.planIndexAccess(first.table, first.alias, conjs); ok {
				first.rows = idxRows
				skipConj = skip
				s.cov.Hit("exec.scan.index")
				// Covering projection applies only to a single-table probe:
				// the candidate rows already come from the index's ordered
				// store, so an index-only statement never reads the heap.
				if len(from) == 1 {
					cover = s.coveringPlan(sel, first.alias, first.table, ix)
				}
			}
		}
		rels = []matRel{first}
		rows = make([]jrow, len(first.rows))
		for i := range first.rows {
			// Slice into the materialized row list: one allocation for the
			// whole scan instead of one jrow header per row.
			rows[i] = first.rows[i : i+1 : i+1]
		}
		for step, item := range from[1:] {
			right, err := s.materializeRef(item.Ref, outer)
			if err != nil {
				return nil, err
			}
			rows, err = s.joinStep(sel, rels, rows, right, item, step, moved, outer)
			if err != nil {
				return nil, err
			}
			rels = append(rels, right)
		}
	} else {
		rows = []jrow{{}} // SELECT without FROM: one empty row
	}

	// One scratch environment and evaluation context serve every row of
	// the WHERE and projection loops.
	env, ctx := s.newScratchExec(rels, outer)

	s.cov.HitBranch("where.present", sel.Where != nil)
	// WHERE: the optimized filter path. When the planner chose an index
	// probe, rows already holds only the candidate span, so the filter —
	// and the cost it charges — covers just the rows actually touched.
	// With the CompositeProbePrefixSkip defect active, the conjunct the
	// probe claims to have consumed is excised from the predicate. The
	// filter itself runs batch-at-a-time over column vectors (batch.go),
	// observationally identical to row-at-a-time at every batch size.
	if sel.Where != nil {
		filterConjs := conjs
		if skipConj >= 0 {
			filterConjs = append(conjs[:skipConj:skipConj], conjs[skipConj+1:]...)
		}
		fp := s.buildFilterPlan(filterConjs, rels)
		var err *Error
		rows, err = s.filterSelectRows(&fp, rows, env, ctx)
		if err != nil {
			return nil, err
		}
	}

	colNames := s.outputColumns(sel, rels, starOrder)

	grouped := len(sel.GroupBy) > 0 || selHasAggregates(sel)
	var outRows [][]Value
	var sortKeys [][]Value
	if grouped {
		var err *Error
		outRows, sortKeys, err = s.execGrouped(sel, rels, rows, outer)
		if err != nil {
			return nil, err
		}
	} else if cover != nil {
		outRows, sortKeys = s.coveringProject(cover, rows)
	} else {
		// Heap projection. Output rows and sort keys subslice two
		// exactly-sized backing arrays: one allocation each per statement
		// instead of one per row, with every subslice capacity-bounded so
		// an append could never bleed into its neighbor.
		width := projWidth(sel, rels)
		n := len(rows)
		klen := len(sel.OrderBy)
		outRows = make([][]Value, 0, n)
		sortKeys = make([][]Value, 0, n)
		flat := make([]Value, n*width)
		var kflat []Value
		if klen > 0 {
			kflat = make([]Value, n*klen)
		}
		for i, row := range rows {
			env.bindRow(row)
			var kbuf []Value
			if klen > 0 {
				kbuf = kflat[i*klen : (i+1)*klen : (i+1)*klen]
			}
			out, keys, err := s.projectRow(sel, rels, row, starOrder, ctx, flat[i*width:i*width:(i+1)*width], kbuf)
			if err != nil {
				return nil, err
			}
			outRows = append(outRows, out)
			sortKeys = append(sortKeys, keys)
		}
	}

	if sel.Distinct {
		s.cov.Hit("exec.distinct")
		seen := map[string]bool{}
		var dr [][]Value
		var dk [][]Value
		for i, r := range outRows {
			k := renderRow(r)
			s.cov.HitBranch("distinct.dup", seen[k])
			if !seen[k] {
				seen[k] = true
				dr = append(dr, r)
				dk = append(dk, sortKeys[i])
			}
		}
		outRows, sortKeys = dr, dk
	}

	if len(sel.OrderBy) > 0 {
		s.cov.Hit("exec.orderby")
		sortRows(outRows, sortKeys, sel.OrderBy)
	}

	if sel.Offset != nil {
		s.cov.Hit("exec.offset")
		off := int(*sel.Offset)
		if off < 0 {
			off = 0
		}
		if off > len(outRows) {
			off = len(outRows)
		}
		outRows = outRows[off:]
	}
	if sel.Limit != nil {
		s.cov.Hit("exec.limit")
		lim := int(*sel.Limit)
		if lim < 0 {
			lim = 0
		}
		if lim < len(outRows) {
			outRows = outRows[:lim]
		}
	}

	return &Result{Columns: colNames, Rows: outRows}, nil
}

// joinStep combines the accumulated rows with one new relation. step is
// the join-step ordinal (0 joins the second FROM item), which the plan
// spec's per-join forcing keys on. moved marks ON conjuncts a JoinPerm
// reorder re-attached at a later step — the JoinPermConjDrop defect
// loses exactly those.
func (s *DB) joinStep(sel *sqlast.Select, rels []matRel, left []jrow, right matRel, item sqlast.FromItem, step int, moved map[sqlast.Expr]bool, outer *rowEnv) ([]jrow, *Error) {
	jf := joinFeature(item.Join)
	s.cov.Hit("exec.join." + jf)

	on := item.On
	if item.Join == sqlast.JoinNatural {
		on = naturalOn(rels, right)
	}

	// The ON→WHERE flattener defect degrades an outer join to inner when
	// a WHERE clause is present (paper Listing 3's shape).
	flatten := s.faultSet().JoinFlatten(jf)
	degraded := flatten != nil && sel.Where != nil

	// One scratch environment covers every candidate pair, the ON
	// conjuncts are split once per join step, and combined output rows
	// come from a chunked arena — the candidate loop itself is
	// allocation-free.
	jrels := make([]matRel, len(rels)+1)
	copy(jrels, rels)
	jrels[len(rels)] = right
	env, ctx := s.newScratchExec(jrels, outer)
	var onConjs []sqlast.Expr
	if on != nil {
		onConjs = splitAnd(on, nil)
	}
	match := func(lrow jrow, rrow []Value) (bool, *Error) {
		if on == nil {
			return true, nil
		}
		env.bindRow(lrow)
		env.rels[len(lrow)].vals = rrow
		ok, err := s.evalFilterConjs(onConjs, ctx)
		s.cov.HitBranch("join.match."+jf, ok)
		return ok, err
	}

	// NULL-extension rows are immutable, so every NULL-extended output row
	// shares the same backing slices.
	var arena jrowArena
	rightNull := nullRow(len(right.cols))
	leftNull := make(jrow, len(rels))
	for i := range rels {
		leftNull[i] = nullRow(len(rels[i].cols))
	}

	var out []jrow
	switch item.Join {
	case sqlast.JoinComma, sqlast.JoinCross, sqlast.JoinInner, sqlast.JoinNatural:
		// The join-reorderer conjunct-drop defect loses the ON conjuncts
		// a permutation relocated past their original step: the step
		// evaluates only the conjuncts that stayed put, so candidate
		// pairs a relocated conjunct would have rejected leak through.
		// It can fire only under a non-identity JoinPerm plan — the auto
		// plan relocates nothing — which makes it observable exactly to
		// a plan-diffing oracle.
		dropFault := s.faultSet().PermConjDrop()
		var kept, dropped []sqlast.Expr
		if dropFault != nil && len(moved) > 0 {
			for _, c := range onConjs {
				if moved[c] {
					dropped = append(dropped, c)
				} else {
					kept = append(kept, c)
				}
			}
		}
		if len(dropped) == 0 {
			dropFault = nil
			if probe := s.planJoinProbe(sel, rels, right, onConjs, step); probe != nil {
				return s.joinProbeStep(probe, left, jf, env, ctx, onConjs, &arena)
			}
		}
		for _, lrow := range left {
			for _, rrow := range right.rows {
				if dropFault != nil {
					env.bindRow(lrow)
					env.rels[len(lrow)].vals = rrow
					ok, err := s.evalFilterConjs(kept, ctx)
					if err != nil {
						return nil, err
					}
					if ok {
						// The defect emits the row; trigger only when a
						// dropped conjunct would have rejected it, so the
						// ground truth marks observable divergence.
						if s.permDropRejects(ctx, dropped) {
							s.trigger(dropFault)
						}
						out = append(out, arena.row(lrow, rrow))
					}
					if cerr := s.chargeRow(); cerr != nil {
						return nil, cerr
					}
					continue
				}
				ok, err := match(lrow, rrow)
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, arena.row(lrow, rrow))
				}
				if cerr := s.chargeRow(); cerr != nil {
					return nil, cerr
				}
			}
		}
	case sqlast.JoinLeft, sqlast.JoinFull:
		matchedRight := make([]bool, len(right.rows))
		for _, lrow := range left {
			any := false
			for ri, rrow := range right.rows {
				ok, err := match(lrow, rrow)
				if err != nil {
					return nil, err
				}
				if ok {
					any = true
					matchedRight[ri] = true
					out = append(out, arena.row(lrow, rrow))
				}
				if cerr := s.chargeRow(); cerr != nil {
					return nil, cerr
				}
			}
			if !any {
				if degraded {
					s.trigger(flatten)
					continue
				}
				out = append(out, arena.row(lrow, rightNull))
			}
		}
		if item.Join == sqlast.JoinFull {
			for ri, rrow := range right.rows {
				if matchedRight[ri] {
					continue
				}
				if degraded {
					s.trigger(flatten)
					continue
				}
				out = append(out, arena.row(leftNull, rrow))
			}
		}
	case sqlast.JoinRight:
		for _, rrow := range right.rows {
			any := false
			for _, lrow := range left {
				ok, err := match(lrow, rrow)
				if err != nil {
					return nil, err
				}
				if ok {
					any = true
					out = append(out, arena.row(lrow, rrow))
				}
				if cerr := s.chargeRow(); cerr != nil {
					return nil, cerr
				}
			}
			if !any {
				if degraded {
					s.trigger(flatten)
					continue
				}
				out = append(out, arena.row(leftNull, rrow))
			}
		}
	default:
		return nil, errf(ErrSemantic, "unhandled join type")
	}
	return out, nil
}

// joinProbeStep runs one inner-like join step as an index-nested-loop:
// per left row, the composite probe key is evaluated once and
// binary-searched in the index's ordered store; only the candidate span
// is re-checked against the full ON condition (fault hooks included), so
// with faults disabled the output multiset is identical to the quadratic
// loop while the cost charges only the rows actually probed.
//
// The JoinIndexResidual defect skips the re-check: it treats the probe's
// equality key as covering the entire ON condition, emitting every span
// candidate — extra join rows appear whenever a residual conjunct would
// have rejected a probed pair. Because the plan (and thus the defect) is
// a function of FROM/ON alone, every query of a TLP or NoREC case sees
// the same extra rows; only a plan-diffing oracle can observe them.
func (s *DB) joinProbeStep(probe *joinProbe, left []jrow, jf string,
	env *rowEnv, ctx *evalCtx, onConjs []sqlast.Expr, arena *jrowArena) ([]jrow, *Error) {
	s.cov.Hit("exec.join.probe")
	// The probe-step panic fault kills the process mid-SELECT — a
	// read-only path, so a recovered instance is consistent. Triggered
	// first: the recovered ClassHarness report needs the ground truth.
	if f := s.faultSet().PanicProbe(); f != nil {
		s.trigger(f)
		panic("engine: join probe dereferenced a detached index entry")
	}
	residual := s.faultSet().JoinResidual()
	if residual != nil && len(onConjs) <= len(probe.conjIdx) {
		residual = nil // the probe key is the entire ON: no defect
	}
	var out []jrow
	rslot := len(env.rels) - 1
	// One key buffer serves every left row.
	key := make([]Value, len(probe.leftExprs))
	for _, lrow := range left {
		env.bindRow(lrow)
		for i, le := range probe.leftExprs {
			v, err := ctx.eval(le)
			if err != nil {
				return nil, err
			}
			key[i] = v
		}
		lo, hi := probe.ix.eqSpan(key)
		for _, rrow := range probe.ix.entries[lo:hi] {
			env.rels[rslot].vals = rrow
			if residual != nil {
				if s.joinResidualRejects(ctx, onConjs, probe) {
					s.trigger(residual)
				}
				out = append(out, arena.row(lrow, rrow))
				if cerr := s.chargeRow(); cerr != nil {
					return nil, cerr
				}
				continue
			}
			ok, err := s.evalFilterConjs(onConjs, ctx)
			s.cov.HitBranch("join.match."+jf, ok)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, arena.row(lrow, rrow))
			}
			if cerr := s.chargeRow(); cerr != nil {
				return nil, cerr
			}
		}
	}
	return out, nil
}

// naturalOn synthesizes the NATURAL JOIN condition: equality on every
// column name the new relation shares with an earlier relation.
func naturalOn(rels []matRel, right matRel) sqlast.Expr {
	var on sqlast.Expr
	for _, rc := range right.cols {
		for _, rel := range rels {
			shared := false
			for _, lc := range rel.cols {
				if strings.EqualFold(lc, rc) {
					shared = true
					break
				}
			}
			if !shared {
				continue
			}
			eq := &sqlast.Binary{
				Op: sqlast.OpEq,
				L:  &sqlast.ColumnRef{Table: rel.alias, Column: rc},
				R:  &sqlast.ColumnRef{Table: right.alias, Column: rc},
			}
			if on == nil {
				on = eq
			} else {
				on = &sqlast.Binary{Op: sqlast.OpAnd, L: on, R: eq}
			}
			break
		}
	}
	return on
}

// permDropRejects reports whether any relocated-then-dropped ON
// conjunct would have rejected the candidate pair ctx is bound to — the
// ground-truth observability check of JoinPermConjDrop. Evaluation cost
// is excluded: the check is bookkeeping, not execution.
func (s *DB) permDropRejects(ctx *evalCtx, dropped []sqlast.Expr) bool {
	saved := s.cost
	defer func() { s.cost = saved }()
	for _, c := range dropped {
		t, err := ctx.evalTri(c)
		if err != nil || t != TriTrue {
			return true
		}
	}
	return false
}

// outputColumns computes the result column names. starOrder, when
// non-nil, restores * expansion to the original relation order under a
// permuted join plan.
func (s *DB) outputColumns(sel *sqlast.Select, rels []matRel, starOrder []int) []string {
	var out []string
	for i := range sel.Items {
		item := &sel.Items[i]
		if item.Star {
			if starOrder != nil {
				for _, ri := range starOrder {
					out = append(out, rels[ri].cols...)
				}
				continue
			}
			for _, rel := range rels {
				out = append(out, rel.cols...)
			}
			continue
		}
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*sqlast.ColumnRef); ok {
				name = cr.Column
			} else {
				name = "col" + itoa(len(out)+1)
			}
		}
		out = append(out, name)
	}
	return out
}

// projWidth computes the output width of a projection (stars expand to
// every visible column), so row buffers can be sized exactly once per
// statement.
func projWidth(sel *sqlast.Select, rels []matRel) int {
	w := 0
	for i := range sel.Items {
		if sel.Items[i].Star {
			for _, rel := range rels {
				w += len(rel.cols)
			}
			continue
		}
		w++
	}
	return w
}

// projectRow evaluates the projections and ORDER BY keys for one row.
// ctx is the statement's reused evaluation context, already bound to the
// row. out is an empty, capacity-bounded projection buffer; keys is a
// full-length ORDER BY key buffer (nil when the statement has none) —
// both are caller-provided slices of per-statement backing arrays.
func (s *DB) projectRow(sel *sqlast.Select, rels []matRel, row jrow, starOrder []int, ctx *evalCtx, out, keys []Value) ([]Value, []Value, *Error) {
	for i := range sel.Items {
		item := &sel.Items[i]
		if item.Star {
			if starOrder != nil {
				for _, ri := range starOrder {
					out = append(out, row[ri]...)
				}
				continue
			}
			for ri := range rels {
				out = append(out, row[ri]...)
			}
			continue
		}
		v, err := ctx.eval(item.Expr)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, v)
	}
	for i := range sel.OrderBy {
		v, err := ctx.eval(sel.OrderBy[i].Expr)
		if err != nil {
			return nil, nil, err
		}
		keys[i] = v
	}
	return out, keys, nil
}

// orderKeys evaluates the ORDER BY expressions in ctx.
func (s *DB) orderKeys(sel *sqlast.Select, ctx *evalCtx) ([]Value, *Error) {
	if len(sel.OrderBy) == 0 {
		return nil, nil
	}
	keys := make([]Value, len(sel.OrderBy))
	for i := range sel.OrderBy {
		v, err := ctx.eval(sel.OrderBy[i].Expr)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// renderRow builds the canonical dedup/compare key of a row.
func renderRow(row []Value) string {
	var sb strings.Builder
	for i, v := range row {
		if i > 0 {
			sb.WriteByte('|')
		}
		sb.WriteString(v.Render())
	}
	return sb.String()
}

// sortRows orders output rows by their sort keys (stable; NULLs first).
func sortRows(rows [][]Value, keys [][]Value, order []sqlast.OrderItem) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i := range order {
			va, vb := ka[i], kb[i]
			c := compareForSort(va, vb)
			if c == 0 {
				continue
			}
			if order[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	outR := make([][]Value, len(rows))
	for i, j := range idx {
		outR[i] = rows[j]
	}
	copy(rows, outR)
}

// compareForSort orders values with NULLs first.
func compareForSort(a, b Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	default:
		return Compare(a, b)
	}
}

// selHasAggregates reports whether the projection, HAVING, or ORDER BY
// contains aggregate calls.
func selHasAggregates(sel *sqlast.Select) bool {
	for i := range sel.Items {
		if sel.Items[i].Expr != nil && hasAggregate(sel.Items[i].Expr) {
			return true
		}
	}
	if sel.Having != nil && hasAggregate(sel.Having) {
		return true
	}
	for _, o := range sel.OrderBy {
		if hasAggregate(o.Expr) {
			return true
		}
	}
	return false
}

// execGrouped executes the GROUP BY / aggregate path.
func (s *DB) execGrouped(sel *sqlast.Select, rels []matRel, rows []jrow, outer *rowEnv) ([][]Value, [][]Value, *Error) {
	s.cov.Hit("exec.groupby")
	type group struct {
		envs []*rowEnv
	}
	var order []string
	groups := map[string]*group{}
	kctx := s.newEvalCtx(nil)
	var keyb strings.Builder
	for _, row := range rows {
		env := buildEnv(rels, row, outer)
		key := ""
		if len(sel.GroupBy) > 0 {
			kctx.env = env
			keyb.Reset()
			for gi, g := range sel.GroupBy {
				v, err := kctx.eval(g)
				if err != nil {
					return nil, nil, err
				}
				if gi > 0 {
					keyb.WriteByte('|')
				}
				keyb.WriteString(v.Render())
			}
			key = keyb.String()
		}
		gr := groups[key]
		if gr == nil {
			gr = &group{}
			groups[key] = gr
			order = append(order, key)
		}
		gr.envs = append(gr.envs, env)
	}
	// A global aggregate over zero rows still produces one group.
	if len(groups) == 0 && len(sel.GroupBy) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	emptyEnv := buildEnv(rels, func() jrow {
		r := make(jrow, len(rels))
		for i := range rels {
			r[i] = nullRow(len(rels[i].cols))
		}
		return r
	}(), outer)

	var outRows [][]Value
	var sortKeys [][]Value
	ctx := s.newEvalCtx(nil)
	for _, key := range order {
		gr := groups[key]
		rep := emptyEnv
		if len(gr.envs) > 0 {
			rep = gr.envs[0]
		}
		ctx.env = rep
		ctx.group = gr.envs
		if ctx.group == nil {
			ctx.group = []*rowEnv{} // empty group, still an aggregate context
		}
		if sel.Having != nil {
			t, err := ctx.evalTri(sel.Having)
			if err != nil {
				return nil, nil, err
			}
			if t != TriTrue {
				continue
			}
		}
		var out []Value
		for i := range sel.Items {
			item := &sel.Items[i]
			if item.Star {
				return nil, nil, errf(ErrSemantic, "SELECT * is not valid with GROUP BY")
			}
			v, err := ctx.eval(item.Expr)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, v)
		}
		keys, err := s.orderKeys(sel, ctx)
		if err != nil {
			return nil, nil, err
		}
		outRows = append(outRows, out)
		sortKeys = append(sortKeys, keys)
	}
	return outRows, sortKeys, nil
}
