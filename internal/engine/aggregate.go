package engine

import "sqlancerpp/internal/sqlast"

// evalAggregate computes an aggregate call over the current group.
func (ctx *evalCtx) evalAggregate(x *sqlast.Func) (Value, *Error) {
	ctx.s.cov.Hit("eval.aggregate." + x.Name)
	ctx.s.cov.HitBranch("agg.empty", len(ctx.group) == 0)
	ctx.s.cov.HitBranch("agg.distinct."+x.Name, x.Distinct)
	if x.Star { // COUNT(*)
		return Int(int64(len(ctx.group))), nil
	}
	// Collect the argument's values over the group, fault-free: aggregate
	// inputs are reference-path evaluations. One context is rebound per
	// member instead of allocated per member.
	vals := make([]Value, 0, len(ctx.group))
	mctx := ctx.s.newEvalCtx(nil)
	for _, env := range ctx.group {
		mctx.env = env
		v, err := mctx.eval(x.Args[0])
		if err != nil {
			return Null(), err
		}
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	if x.Distinct {
		seen := map[string]bool{}
		var dv []Value
		for _, v := range vals {
			k := v.Render()
			if !seen[k] {
				seen[k] = true
				dv = append(dv, v)
			}
		}
		vals = dv
	}
	switch x.Name {
	case "COUNT":
		return Int(int64(len(vals))), nil
	case "SUM":
		if len(vals) == 0 {
			return Null(), nil
		}
		var sum int64
		for _, v := range vals {
			sum += toInt(v)
		}
		return Int(sum), nil
	case "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		var sum int64
		for _, v := range vals {
			sum += toInt(v)
		}
		return Int(sum / int64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := Compare(v, best)
			if (x.Name == "MAX" && c > 0) || (x.Name == "MIN" && c < 0) {
				best = v
			}
		}
		return best, nil
	default:
		return Null(), errf(ErrSemantic, "unhandled aggregate %s", x.Name)
	}
}
