package engine

import (
	"sort"
	"sync/atomic"

	"sqlancerpp/internal/coverage"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/sqlast"
	"sqlancerpp/internal/sqlparse"
)

// Result is a query result: column names and a row multiset in
// deterministic execution order.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// RenderRows returns the canonical textual form of each row, used by the
// oracles' multiset comparison. Each row renders through a strings.Builder
// (linear in the row's width, unlike naive += concatenation).
func (r *Result) RenderRows() []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = renderRow(row)
	}
	return out
}

// DB is one simulated DBMS instance: a dialect configuration, a catalog,
// and (optionally) injected faults and coverage instrumentation.
//
// DB is the only interface the tester has to the system under test:
// statements go in as SQL text; execution status, rows, and error
// messages come out — exactly the black-box view SQLancer++ has of a real
// DBMS.
type DB struct {
	dialect *dialect.Dialect
	store   *database
	cov     *coverage.Recorder

	faultsEnabled bool
	crashed       bool
	// planSpec is the instance's per-query plan-forcing specification
	// (planspec.go). The zero value plans automatically; the PlanDiff
	// oracle swaps specs between executions of the same query to run it
	// under every enumerated plan on one instance. Index *maintenance*
	// stays on regardless of the spec.
	planSpec PlanSpec

	// triggered holds the fault IDs fired by the last statement
	// (ground truth for the evaluation harness only).
	triggered map[string]bool
	// cost accumulates executor work units for the last statement
	// (the campaign's performance-bug watchdog reads it).
	cost int64
	// rows counts the rows the current statement's exec loops touched;
	// budget is the per-statement ceiling (maxBudget = unlimited). rows
	// is separate from cost so the PerfOnFeature cliff — a simulated
	// *symptom*, not real work — cannot consume the budget, and so the
	// ground-truth precision helpers' save/restore of cost never skews
	// budget accounting.
	rows   int64
	budget int64
	// cancel, when non-nil, is the campaign watchdog's cooperative
	// cancellation flag: the per-row budget check polls it and fails the
	// statement with ErrTimeout once set. nil (the default, and always
	// nil on replay instances) costs one never-taken branch per row.
	cancel *atomic.Bool
	// totalCost is the sum of cost over every finished statement on this
	// instance (never reset) — the denominator for work-normalized
	// metrics like novel plan pairs per rows touched.
	totalCost int64
	// batch is the scan filter's columnar batch width (rows per selection
	// bitmap chunk); <= 0 selects the row-at-a-time reference executor.
	// Execution is observationally identical at every width — the knob
	// exists for the differential tests and for cache-footprint tuning.
	batch int
	// scratch holds the access-path planner's reusable buffers (plan.go):
	// sargable-probe lists and the composite-key arena, reset per planned
	// scan so planning itself allocates nothing on the hot path.
	scratch planScratch
}

// Option configures a DB.
type Option func(*DB)

// WithCoverage attaches a coverage recorder.
func WithCoverage(rec *coverage.Recorder) Option {
	return func(s *DB) { s.cov = rec }
}

// WithoutFaults opens a pristine instance of the dialect (used by tests
// and the engine's own differential validation).
func WithoutFaults() Option {
	return func(s *DB) { s.faultsEnabled = false }
}

// WithRowBudget bounds every statement to touching at most n rows in
// the engine's exec loops (scan filtering, join pairing and probing,
// DML collection); exceeding it fails the statement with
// ErrBudgetExceeded. n <= 0 leaves the instance unbounded. The budget is
// deterministic — a pure function of the statement and the stored data —
// which is what lets budget-bounded campaigns keep the byte-identical
// report contract at any worker count.
func WithRowBudget(n int64) Option {
	return func(s *DB) {
		if n > 0 {
			s.budget = n
		}
	}
}

// WithBatchSize sets the scan filter's columnar batch width: how many
// candidate rows each vectorized filter chunk covers (default
// DefaultBatchSize). n <= 0 selects the row-at-a-time reference
// executor — the pre-batch engine the differential tests pin against.
// Results, cost, coverage, errors, and fault triggers are identical at
// every width by construction (see batch.go), so campaign reports stay
// byte-identical when the width changes.
func WithBatchSize(n int) Option {
	return func(s *DB) { s.batch = n }
}

// DefaultBatchSize is the scan filter's default columnar batch width.
const DefaultBatchSize = 64

// WithCancel attaches a cooperative cancellation flag. When the flag is
// set (by the campaign's per-case watchdog, from its own goroutine), the
// instance fails the current statement with ErrTimeout at the next
// per-row budget checkpoint and rejects further statements until the
// flag clears. The engine only ever Loads the flag; arming and clearing
// are the watchdog's business.
func WithCancel(c *atomic.Bool) Option {
	return func(s *DB) { s.cancel = c }
}

// WithPlanSpec opens the instance with a plan-forcing specification
// already applied — the open-time spelling of SetPlanSpec. The
// differential tests and benchmark baselines use it with
// PlanSpec{DisableIndexPaths: true} to pin the pre-planner full-scan
// engine.
func WithPlanSpec(spec PlanSpec) Option {
	return func(s *DB) { s.SetPlanSpec(spec) }
}

// WithoutIndexPaths disables index-backed access paths: every scan is a
// full scan, as in the pre-planner engine.
//
// Deprecated: thin shim over the PlanSpec API; use
// WithPlanSpec(PlanSpec{DisableIndexPaths: true}).
func WithoutIndexPaths() Option {
	return WithPlanSpec(PlanSpec{DisableIndexPaths: true})
}

// Open creates an empty database for the dialect.
// maxBudget disables budget enforcement: the per-row check compares
// against it unconditionally, so "no budget" costs one never-taken
// branch instead of a second flag test.
const maxBudget = int64(1) << 62

func Open(d *dialect.Dialect, opts ...Option) *DB {
	s := &DB{
		dialect:       d,
		store:         newDatabase(),
		faultsEnabled: true,
		triggered:     map[string]bool{},
		budget:        maxBudget,
		batch:         DefaultBatchSize,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Dialect returns the dialect under test.
func (s *DB) Dialect() *dialect.Dialect { return s.dialect }

// faultSet returns the active fault set (nil when disabled).
func (s *DB) faultSet() *faults.Set {
	if !s.faultsEnabled {
		return nil
	}
	return s.dialect.Faults
}

// trigger records a fired fault (ground truth).
func (s *DB) trigger(f *faults.Fault) {
	if f != nil {
		s.triggered[f.ID] = true
	}
}

// TriggeredFaults returns the IDs of faults fired by the last statement,
// sorted. This is evaluation-only ground truth.
func (s *DB) TriggeredFaults() []string {
	out := make([]string, 0, len(s.triggered))
	for id := range s.triggered {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// LastCost returns the executor work units of the last statement.
func (s *DB) LastCost() int64 { return s.cost }

// TotalCost returns the cumulative executor work units charged across
// every statement on this instance. Unlike LastCost it is never reset,
// so campaign-level metrics can normalize by total rows touched.
func (s *DB) TotalCost() int64 { return s.totalCost }

// chargeRow charges one row of executor work against the statement's
// cost and its rows-touched budget, returning the shared errBudget on
// exhaustion or the shared errTimeout when the watchdog's cancel flag is
// set (budget outranks timeout when both hold, keeping the deterministic
// failure deterministic). It is the only place budgeted loops account
// work, so cost, budget, and cancellation can never drift apart — and it
// returns preallocated errors only, keeping the per-row path zero-alloc.
func (s *DB) chargeRow() *Error {
	s.cost++
	s.rows++
	if s.rows > s.budget {
		return errBudget
	}
	if s.cancel != nil && s.cancel.Load() {
		return errTimeout
	}
	return nil
}

// SetPlanSpec installs a per-query plan-forcing specification
// (planspec.go): it stays in effect for every subsequent statement until
// replaced, like a session-scoped planner pragma. The PlanDiff oracle
// uses it to execute the same query under each enumerated plan on one
// instance. This is an oracle/test control surface, not SQL: the
// black-box contract (SQL text in, status and rows out) is unchanged,
// and a forced-but-inapplicable choice degrades to a scan, never errors.
func (s *DB) SetPlanSpec(spec PlanSpec) { s.planSpec = spec }

// PlanSpec returns the active plan-forcing specification.
func (s *DB) PlanSpec() PlanSpec { return s.planSpec }

// SetIndexPaths toggles the access-path planner per query.
//
// Deprecated: thin shim over the PlanSpec API; SetIndexPaths(false) is
// SetPlanSpec(PlanSpec{DisableIndexPaths: true}) and SetIndexPaths(true)
// resets to the automatic plan (discarding any other forcing).
func (s *DB) SetIndexPaths(on bool) {
	s.SetPlanSpec(PlanSpec{DisableIndexPaths: !on})
}

// IndexPathsEnabled reports whether the access-path planner is active
// (i.e. the current spec does not suppress it wholesale).
func (s *DB) IndexPathsEnabled() bool { return !s.planSpec.DisableIndexPaths }

// Crashed reports whether the simulated server is down.
func (s *DB) Crashed() bool { return s.crashed }

// Restart brings a crashed server back up (storage survives, as with a
// durable DBMS restarted by the harness).
func (s *DB) Restart() { s.crashed = false }

// Exec parses, validates, and executes a statement. For SELECT it
// discards the rows; use Query to retrieve them.
func (s *DB) Exec(sql string) error {
	_, err := s.run(sql)
	return err
}

// Query parses, validates, and executes a statement, returning rows for
// SELECT (and an empty result for other statements).
func (s *DB) Query(sql string) (*Result, error) {
	return s.run(sql)
}

func (s *DB) run(sql string) (*Result, error) {
	s.triggered = map[string]bool{}
	s.cost = 0
	s.rows = 0
	// Fold each statement's final cost into the instance-lifetime total:
	// TotalCost is exactly the sum of LastCost over every statement.
	defer func() { s.totalCost += s.cost }()
	if s.crashed {
		return nil, errf(ErrCrash, "server is not running (restart required)")
	}
	// The process-wide LRU fronts the parser; the cached AST is shared
	// and immutable. Execution never mutates an AST, so most statements
	// run on the shared copy directly; the exceptions are cloned below.
	// The black-box contract is unchanged: SQL text in, status and rows
	// out.
	stmt, perr := sqlparse.Shared().Parse(sql)
	if perr != nil {
		s.cov.Hit("parse.error")
		return nil, &Error{Class: ErrSyntax, Msg: perr.Error()}
	}
	s.cov.Hit("parse.ok")
	switch stmt.(type) {
	case *sqlast.CreateView, *sqlast.CreateIndex:
		// These retain sub-ASTs in catalog state beyond this statement
		// (the view definition, the partial-index predicate); give the
		// instance its own copy so no live state aliases the cache.
		stmt = sqlast.CloneStmt(stmt)
	}
	return s.RunStmt(stmt)
}

// RunStmt validates and executes an already-parsed statement. Callers
// that hold an AST (tests, the reducer) can bypass re-parsing; the
// generator always goes through SQL text.
func (s *DB) RunStmt(stmt sqlast.Stmt) (*Result, error) {
	if s.crashed {
		return nil, errf(ErrCrash, "server is not running (restart required)")
	}
	// A set cancel flag rejects the statement up front: once the watchdog
	// fires, the whole case is timed out, including statements that would
	// never reach a per-row checkpoint (DDL, empty scans).
	if s.cancel != nil && s.cancel.Load() {
		return nil, errTimeout
	}
	if err := s.validateStmt(stmt); err != nil {
		return nil, err
	}
	// Injected crash / internal-error / perf faults fire only for
	// statements that passed validation: the defect is in the executor,
	// not the parser.
	if err := s.checkFeatureFaults(stmt); err != nil {
		return nil, err
	}
	res, err := s.execStmt(stmt)
	if err != nil {
		if ee, ok := err.(*Error); ok && ee.Class == ErrCrash {
			s.crashed = true
		}
		return nil, err
	}
	return res, nil
}

// checkFeatureFaults fires CrashOnFeature / CrashOnDeepExpr /
// InternalErrorOnFeature faults and arms PerfOnFeature.
func (s *DB) checkFeatureFaults(stmt sqlast.Stmt) error {
	fs := s.faultSet()
	if fs == nil {
		return nil
	}
	feats := ScanFeatures(stmt)
	for _, ft := range feats {
		if f := fs.CrashFeature(ft); f != nil {
			s.trigger(f)
			s.crashed = true
			return &Error{Class: ErrCrash, Msg: "server crashed while executing " + ft, Feature: ft, FaultID: f.ID}
		}
	}
	for _, ft := range feats {
		if f := fs.ErrFeature(ft); f != nil {
			s.trigger(f)
			return &Error{Class: ErrInternal, Msg: "internal error: unexpected state in " + ft + " execution", Feature: ft, FaultID: f.ID}
		}
	}
	if f := fs.CrashDeep(); f != nil && maxExprDepth(stmt) > 6 {
		s.trigger(f)
		s.crashed = true
		return &Error{Class: ErrCrash, Msg: "server crashed: expression nesting overflow", FaultID: f.ID}
	}
	for _, ft := range feats {
		if f := fs.PerfFeature(ft); f != nil {
			s.trigger(f)
			s.cost += 1_000_000 // simulated performance cliff
		}
	}
	return nil
}
