package engine_test

// Differential and oracle-soundness tests for the index-backed access
// paths: on a fault-free engine, (1) the index path and the full scan
// must return the same row multiset for every query, and (2) TLP and
// NoREC remain invariants over database states that contain plain,
// unique, and partial indexes — including after post-index UPDATE and
// DELETE churn, which exercises the incremental store maintenance.

import (
	"fmt"
	"testing"

	"sqlancerpp/internal/core/gen"
	"sqlancerpp/internal/core/oracle"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/sqlast"
)

// execTwin runs one statement on both instances, requiring the same
// success status, and reports whether it succeeded.
func execTwin(t *testing.T, idx, full *engine.DB, sql string) bool {
	t.Helper()
	errA := idx.Exec(sql)
	errB := full.Exec(sql)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("status diverged for %q: indexed %v vs full-scan %v", sql, errA, errB)
	}
	return errA == nil
}

func rowMultiset(res *engine.Result) map[string]int {
	m := map[string]int{}
	for _, r := range res.RenderRows() {
		m[r]++
	}
	return m
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// sargableLit returns a literal of the column's type usable as a probe
// bound (matchProbe requires column-vs-literal comparisons).
func sargableLit(t sqlast.Type) string {
	switch t {
	case sqlast.TypeText:
		return "'a'"
	case sqlast.TypeBool:
		return "FALSE"
	default:
		return "1"
	}
}

// buildIndexedState drives the adaptive generator on twin instances and
// then forces the index shapes the satellite requires: a plain, a
// unique, and a partial index per table, followed by UPDATE and DELETE
// churn over the indexed tables.
func buildIndexedState(t *testing.T, idx, full *engine.DB, g *gen.Generator) {
	t.Helper()
	for i := 0; i < 30; i++ {
		st := g.GenSetup()
		if execTwin(t, idx, full, st.SQL) && st.OnSuccess != nil {
			st.OnSuccess()
		}
	}
	for ti, tbl := range g.Model().Tables() {
		c0 := tbl.Columns[0].Name
		cLast := tbl.Columns[len(tbl.Columns)-1].Name
		// Creation may fail (e.g. duplicate keys for the unique index);
		// the twins must just fail identically.
		execTwin(t, idx, full, fmt.Sprintf("CREATE INDEX zzp%d ON %s (%s)", ti, tbl.Name, c0))
		execTwin(t, idx, full, fmt.Sprintf("CREATE UNIQUE INDEX zzu%d ON %s (%s, %s)", ti, tbl.Name, c0, cLast))
		execTwin(t, idx, full, fmt.Sprintf("CREATE INDEX zzw%d ON %s (%s) WHERE %s IS NOT NULL", ti, tbl.Name, c0, cLast))
		if len(tbl.Columns) > 1 {
			// Composite store over the first two columns, probed by the
			// sargable oracle predicates and the index-assisted DML below.
			c1 := tbl.Columns[1].Name
			execTwin(t, idx, full, fmt.Sprintf("CREATE INDEX zzc%d ON %s (%s, %s)", ti, tbl.Name, c0, c1))
			// Genuinely sargable DML (literal comparisons, which matchProbe
			// accepts) drives the index-assisted mutation path; on integer
			// key columns the SET shifts keys into the span the statement
			// probed, exercising snapshot-before-mutate.
			lit0 := sargableLit(tbl.Columns[0].Type)
			set := c0
			if tbl.Columns[0].Type == sqlast.TypeInt {
				set = c0 + " + 1"
			}
			execTwin(t, idx, full, fmt.Sprintf("UPDATE %s SET %s = %s WHERE %s >= %s AND %s IS NOT NULL",
				tbl.Name, c0, set, c0, lit0, c1))
			execTwin(t, idx, full, fmt.Sprintf("DELETE FROM %s WHERE %s = %s AND %s < %s",
				tbl.Name, c0, lit0, c1, sargableLit(tbl.Columns[1].Type)))
		}
		// Post-index churn: identity UPDATE (swaps row identities through
		// the store) and a NULL-key DELETE.
		execTwin(t, idx, full, fmt.Sprintf("UPDATE %s SET %s = %s", tbl.Name, c0, c0))
		execTwin(t, idx, full, fmt.Sprintf("DELETE FROM %s WHERE %s IS NULL", tbl.Name, cLast))
	}
}

// TestIndexPathMatchesFullScanOnRandomStates is the differential half of
// the acceptance criterion: same dialect, same statements, planner on vs
// off — every query must agree as a row multiset.
func TestIndexPathMatchesFullScanOnRandomStates(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		d := dialect.MustGet("sqlite")
		idx := engine.Open(d, engine.WithoutFaults())
		full := engine.Open(d, engine.WithoutFaults(), engine.WithPlanSpec(engine.PlanSpec{DisableIndexPaths: true}))
		g := gen.New(gen.Config{Seed: seed, StartDepth: 2, MaxDepth: 3, DepthInterval: 200})
		buildIndexedState(t, idx, full, g)

		check := func(sql string) {
			rA, errA := idx.Query(sql)
			rB, errB := full.Query(sql)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("seed %d: status diverged for %q: %v vs %v", seed, sql, errA, errB)
			}
			if errA != nil {
				return
			}
			if !sameMultiset(rowMultiset(rA), rowMultiset(rB)) {
				t.Fatalf("seed %d: index path diverged from full scan for %q:\nindexed: %v\nfull:    %v",
					seed, sql, rA.RenderRows(), rB.RenderRows())
			}
		}
		for i := 0; i < 500; i++ {
			oc := g.GenOracleCase()
			if oc == nil {
				continue
			}
			sel := sqlast.CloneSelect(oc.Base)
			sel.Where = sqlast.CloneExpr(oc.Pred)
			check(sel.SQL())
			if i%4 == 0 {
				// Free-form queries carry the order-sensitive shapes
				// (LIMIT/OFFSET, GROUP BY, aggregates, DISTINCT) that the
				// planner must refuse or handle order-independently.
				check(g.GenQuery().SQL)
			}
		}
	}
}

// TestOracleInvariantsOnIndexedStates is the soundness half: with faults
// disabled, TLP and NoREC must report zero bugs over states whose scans
// go through unique, partial, and post-churn indexes.
func TestOracleInvariantsOnIndexedStates(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		d := dialect.MustGet("sqlite")
		idx := engine.Open(d, engine.WithoutFaults())
		full := engine.Open(d, engine.WithoutFaults(), engine.WithPlanSpec(engine.PlanSpec{DisableIndexPaths: true}))
		g := gen.New(gen.Config{Seed: seed, StartDepth: 2, MaxDepth: 3, DepthInterval: 200})
		buildIndexedState(t, idx, full, g)

		for i := 0; i < 500; i++ {
			oc := g.GenOracleCase()
			if oc == nil {
				continue
			}
			var res oracle.Result
			switch i % 3 {
			case 0:
				res = oracle.TLP(idx, oc.Base, oc.Pred)
			case 1:
				res = oracle.NoREC(idx, oc.Base, oc.Pred)
			default:
				res = oracle.TLPAggregate(idx, oc.Base, oc.Pred, i)
			}
			if res.Outcome == oracle.Bug {
				t.Fatalf("seed %d: %s reported a bug on a clean indexed engine: %s\nqueries:\n  %s\n  %s",
					seed, res.Oracle, res.Detail, res.Queries[0], res.Queries[len(res.Queries)-1])
			}
		}
	}
}
