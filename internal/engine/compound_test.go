package engine

import (
	"testing"

	"sqlancerpp/internal/faults"
)

func compoundFixture(t *testing.T) *DB {
	db := openClean(t, "sqlite")
	mustExec(t, db, "CREATE TABLE a (x INTEGER)")
	mustExec(t, db, "CREATE TABLE b (x INTEGER)")
	mustExec(t, db, "INSERT INTO a (x) VALUES (1), (2), (2)")
	mustExec(t, db, "INSERT INTO b (x) VALUES (2), (3)")
	return db
}

func TestSetOperations(t *testing.T) {
	db := compoundFixture(t)
	expectRows(t, db, "SELECT x FROM a UNION SELECT x FROM b ORDER BY x",
		"1", "2", "3")
	expectRows(t, db, "SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY x",
		"1", "2", "2", "2", "3")
	expectRows(t, db, "SELECT x FROM a INTERSECT SELECT x FROM b", "2")
	expectRows(t, db, "SELECT x FROM a EXCEPT SELECT x FROM b", "1")
	expectRows(t, db, "SELECT x FROM b EXCEPT SELECT x FROM a", "3")
	// Three-arm chains evaluate left to right.
	expectRows(t, db,
		"SELECT x FROM a UNION SELECT x FROM b EXCEPT SELECT x FROM b ORDER BY x",
		"1")
	// LIMIT applies to the whole compound.
	expectRows(t, db, "SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY x LIMIT 2",
		"1", "2")
	// Compound arms with WHERE.
	expectRows(t, db,
		"SELECT x FROM a WHERE x = 1 UNION ALL SELECT x FROM b WHERE x = 3 ORDER BY x",
		"1", "3")
}

func TestCompoundValidation(t *testing.T) {
	db := compoundFixture(t)
	if err := db.Exec("SELECT x FROM a UNION SELECT x, x FROM b"); err == nil {
		t.Fatal("column-count mismatch must be rejected")
	}
	if err := db.Exec("SELECT x FROM a UNION SELECT x FROM a ORDER BY y"); err == nil {
		t.Fatal("ORDER BY over a non-output column must be rejected")
	}
	// MySQL-family dialects lack INTERSECT/EXCEPT.
	my := openClean(t, "mysql")
	mustExec(t, my, "CREATE TABLE a (x INTEGER)")
	if err := my.Exec("SELECT x FROM a INTERSECT SELECT x FROM a"); ClassOf(err) != ErrUnsupported {
		t.Fatalf("INTERSECT on mysql must be unsupported, got %v", err)
	}
	mustExec(t, my, "SELECT x FROM a UNION SELECT x FROM a")
	// Static dialects require unifiable arm types.
	pg := openClean(t, "postgresql")
	mustExec(t, pg, "CREATE TABLE a (x INTEGER, s TEXT)")
	if err := pg.Exec("SELECT x FROM a UNION SELECT s FROM a"); err == nil {
		t.Fatal("type mismatch across arms must be rejected on static dialects")
	}
	mustExec(t, pg, "SELECT x FROM a UNION SELECT NULL FROM a")
}

func TestFaultUnionAllDedup(t *testing.T) {
	d := mustDialect(t, "sqlite").Clone()
	d.Name = "union-fault-test"
	d.Faults = faults.NewSet([]faults.Fault{
		{ID: "u1", Kind: faults.UnionAllDedup, Class: faults.Logic},
	})
	db := Open(d)
	mustExec(t, db, "CREATE TABLE a (x INTEGER)")
	mustExec(t, db, "INSERT INTO a (x) VALUES (1), (1)")
	res := mustQuery(t, db, "SELECT x FROM a UNION ALL SELECT x FROM a")
	if len(res.Rows) != 1 {
		t.Fatalf("dedup fault should collapse duplicates, got %d rows", len(res.Rows))
	}
	if len(db.TriggeredFaults()) == 0 {
		t.Fatal("fault not recorded")
	}
	// UNION is unaffected (it dedupes anyway — same result, no trigger).
	mustQuery(t, db, "SELECT x FROM a UNION SELECT x FROM a")
	if len(db.TriggeredFaults()) != 0 {
		t.Fatal("UNION must not trigger the UNION ALL fault")
	}
}

func TestCompoundInViewsAndSubqueries(t *testing.T) {
	db := compoundFixture(t)
	mustExec(t, db, "CREATE VIEW v AS SELECT x FROM a UNION SELECT x FROM b")
	expectRows(t, db, "SELECT COUNT(*) FROM v", "3")
	expectRows(t, db,
		"SELECT COUNT(*) FROM (SELECT x FROM a INTERSECT SELECT x FROM b) AS s", "1")
}
