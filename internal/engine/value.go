// Package engine implements the in-memory SQL engine that stands in for
// the paper's DBMSs under test. It parses SQL text, validates it against
// a dialect configuration, executes it over an in-memory catalog, and —
// when the dialect carries injected faults — misbehaves in exactly the
// optimized code paths where real logic bugs live.
package engine

import (
	"strconv"
	"strings"
)

// Kind is a runtime value kind.
type Kind uint8

// Value kinds. The engine supports the paper's three data types plus NULL.
const (
	KindNull Kind = iota
	KindInt
	KindText
	KindBool
)

// String returns the kind name (matches the dialect type feature names).
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	default:
		return "?"
	}
}

// Value is a runtime SQL value.
type Value struct {
	K Kind
	I int64
	S string
	B bool
}

// Constructors.
func Null() Value         { return Value{K: KindNull} }
func Int(v int64) Value   { return Value{K: KindInt, I: v} }
func Text(s string) Value { return Value{K: KindText, S: s} }
func Bool(b bool) Value   { return Value{K: KindBool, B: b} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Render returns the canonical textual form used for result comparison
// (oracles compare row multisets of rendered values).
func (v Value) Render() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindText:
		return "'" + v.S + "'"
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// Tri is a three-valued logic truth value.
type Tri int8

// Three-valued logic constants.
const (
	TriFalse Tri = iota
	TriTrue
	TriNull
)

// TriOf converts a Go bool to Tri.
func TriOf(b bool) Tri {
	if b {
		return TriTrue
	}
	return TriFalse
}

// Not negates with SQL NULL semantics.
func (t Tri) Not() Tri {
	switch t {
	case TriTrue:
		return TriFalse
	case TriFalse:
		return TriTrue
	default:
		return TriNull
	}
}

// And combines with SQL NULL semantics.
func (t Tri) And(o Tri) Tri {
	if t == TriFalse || o == TriFalse {
		return TriFalse
	}
	if t == TriNull || o == TriNull {
		return TriNull
	}
	return TriTrue
}

// Or combines with SQL NULL semantics.
func (t Tri) Or(o Tri) Tri {
	if t == TriTrue || o == TriTrue {
		return TriTrue
	}
	if t == TriNull || o == TriNull {
		return TriNull
	}
	return TriFalse
}

// Xor combines with SQL NULL semantics (NULL if either side is NULL).
func (t Tri) Xor(o Tri) Tri {
	if t == TriNull || o == TriNull {
		return TriNull
	}
	return TriOf((t == TriTrue) != (o == TriTrue))
}

// Value converts the Tri back into a SQL value.
func (t Tri) Value() Value {
	switch t {
	case TriTrue:
		return Bool(true)
	case TriFalse:
		return Bool(false)
	default:
		return Null()
	}
}

// truthiness converts a value to Tri under dynamic-typing coercion rules:
// NULL is NULL; booleans are themselves; integers are v != 0; text parses
// its leading integer.
func truthiness(v Value) Tri {
	switch v.K {
	case KindNull:
		return TriNull
	case KindBool:
		return TriOf(v.B)
	case KindInt:
		return TriOf(v.I != 0)
	case KindText:
		return TriOf(parseLeadingInt(v.S) != 0)
	default:
		return TriNull
	}
}

// parseLeadingInt parses an optional sign and leading digits of s
// (SQLite-style numeric coercion); no digits yields 0.
func parseLeadingInt(s string) int64 {
	s = strings.TrimLeft(s, " \t")
	i := 0
	neg := false
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		neg = s[i] == '-'
		i++
	}
	var n int64
	any := false
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		n = n*10 + int64(s[i]-'0')
		any = true
		i++
	}
	if !any {
		return 0
	}
	if neg {
		return -n
	}
	return n
}

// toInt coerces a value to an integer (dynamic typing).
func toInt(v Value) int64 {
	switch v.K {
	case KindInt:
		return v.I
	case KindBool:
		if v.B {
			return 1
		}
		return 0
	case KindText:
		return parseLeadingInt(v.S)
	default:
		return 0
	}
}

// toText coerces a value to text (dynamic typing).
func toText(v Value) string {
	switch v.K {
	case KindText:
		return v.S
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

// numericKind reports whether a kind participates in numeric comparison.
func numericKind(k Kind) bool { return k == KindInt || k == KindBool }

// Compare orders two non-NULL values using storage-class rules: numeric
// values (integers and booleans) order before text; within a class,
// integers order numerically and text orders bytewise. It returns
// -1, 0, or +1. Callers must handle NULL before calling.
func Compare(a, b Value) int {
	an, bn := numericKind(a.K), numericKind(b.K)
	switch {
	case an && bn:
		ai, bi := toInt(a), toInt(b)
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		default:
			return 0
		}
	case an && !bn:
		return -1 // numeric storage class sorts first
	case !an && bn:
		return 1
	default:
		return strings.Compare(a.S, b.S)
	}
}

// CompareText compares the textual coercions of two values (used by the
// CmpMixedText fault and by text-context functions).
func CompareText(a, b Value) int {
	return strings.Compare(toText(a), toText(b))
}

// Equal reports SQL equality for grouping/DISTINCT purposes, where NULLs
// compare equal to each other.
func Equal(a, b Value) bool {
	if a.K == KindNull || b.K == KindNull {
		return a.K == b.K
	}
	if numericKind(a.K) != numericKind(b.K) {
		return false
	}
	return Compare(a, b) == 0
}
