package engine

import (
	"reflect"
	"testing"

	"sqlancerpp/internal/dialect"
)

// TestCachedParseCloneIsolation exercises the parse cache through the
// engine: the same SQL text executed on two instances must yield
// independent state, because each execution clones the shared AST. A
// stored view definition is the sharpest probe — it is retained by the
// instance long after the statement finished.
func TestCachedParseCloneIsolation(t *testing.T) {
	d := dialect.MustGet("sqlite")
	setup := []string{
		"CREATE TABLE t0 (c0 INTEGER)",
		"INSERT INTO t0 VALUES (1), (2), (3)",
		"CREATE VIEW v0 AS SELECT c0 FROM t0 WHERE c0 > 1",
	}
	run := func() *DB {
		db := Open(d, WithoutFaults())
		for _, s := range setup {
			if err := db.Exec(s); err != nil {
				t.Fatalf("%s: %v", s, err)
			}
		}
		return db
	}
	db1, db2 := run(), run()

	// Diverge the underlying tables; each view must see only its own DB.
	if err := db1.Exec("INSERT INTO t0 VALUES (10)"); err != nil {
		t.Fatal(err)
	}
	r1, err := db1.Query("SELECT c0 FROM v0")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db2.Query("SELECT c0 FROM v0")
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 3 || len(r2.Rows) != 2 {
		t.Fatalf("view row counts = %d, %d; want 3, 2", len(r1.Rows), len(r2.Rows))
	}
}

// TestCachedParseRepeatableResults re-executes identical text (cache hits
// after the first run) and checks results stay identical.
func TestCachedParseRepeatableResults(t *testing.T) {
	d := dialect.MustGet("sqlite")
	db := Open(d, WithoutFaults())
	for _, s := range []string{
		"CREATE TABLE t0 (c0 INTEGER, c1 TEXT)",
		"INSERT INTO t0 VALUES (1, 'a'), (2, 'b'), (3, 'c')",
	} {
		if err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	const q = "SELECT c1 FROM t0 WHERE c0 % 2 = 1 ORDER BY c0 DESC"
	first, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.RenderRows(), first.RenderRows()) {
			t.Fatalf("run %d: %v != %v", i, res.RenderRows(), first.RenderRows())
		}
	}
}
