package engine

import (
	"strings"

	"sqlancerpp/internal/sqlast"
)

// rowRel binds one FROM relation's current row.
type rowRel struct {
	alias string
	cols  []string
	vals  []Value
}

// rowEnv is the evaluation environment: the current row of each visible
// relation, with a link to the enclosing query's environment for
// correlated subqueries.
type rowEnv struct {
	rels  []rowRel
	outer *rowEnv
}

// lookup resolves a column reference to its current value. Validation has
// already established existence and unambiguity.
func (env *rowEnv) lookup(table, col string) (Value, bool) {
	for e := env; e != nil; e = e.outer {
		for i := range e.rels {
			rel := &e.rels[i]
			if table != "" && !strings.EqualFold(rel.alias, table) {
				continue
			}
			for j, c := range rel.cols {
				if strings.EqualFold(c, col) {
					return rel.vals[j], true
				}
			}
		}
	}
	return Null(), false
}

// evalCtx carries everything expression evaluation needs.
type evalCtx struct {
	s       *DB
	env     *rowEnv
	dialect dialectFlags
	// group, when non-nil, holds the member rows of the current group;
	// aggregate calls compute over it.
	group []*rowEnv
}

// dialectFlags caches the dialect behaviors the evaluator consults.
type dialectFlags struct {
	DivZeroError    bool
	CastTextError   bool
	MathDomainError bool
}

func (s *DB) newEvalCtx(env *rowEnv) *evalCtx {
	return &evalCtx{
		s:   s,
		env: env,
		dialect: dialectFlags{
			DivZeroError:    s.dialect.DivZeroError,
			CastTextError:   s.dialect.CastTextError,
			MathDomainError: s.dialect.MathDomainError,
		},
	}
}

// eval computes the reference (fault-free) value of an expression.
func (ctx *evalCtx) eval(e sqlast.Expr) (Value, *Error) {
	ctx.s.cost++
	switch x := e.(type) {
	case *sqlast.Literal:
		switch x.Kind {
		case sqlast.LitNull:
			return Null(), nil
		case sqlast.LitInt:
			return Int(x.Int), nil
		case sqlast.LitText:
			return Text(x.Text), nil
		default:
			return Bool(x.Bool), nil
		}

	case *sqlast.ColumnRef:
		v, ok := ctx.env.lookup(x.Table, x.Column)
		if !ok {
			return Null(), errf(ErrSemantic, "no such column %s", x.SQL())
		}
		return v, nil

	case *sqlast.Unary:
		return ctx.evalUnary(x)

	case *sqlast.Binary:
		return ctx.evalBinary(x)

	case *sqlast.Func:
		return ctx.evalFunc(x)

	case *sqlast.Case:
		return ctx.evalCase(x)

	case *sqlast.Cast:
		v, err := ctx.eval(x.X)
		if err != nil {
			return Null(), err
		}
		return ctx.evalCast(v, x.To)

	case *sqlast.Between:
		t, err := ctx.evalBetween(x, false)
		if err != nil {
			return Null(), err
		}
		return t.Value(), nil

	case *sqlast.InList:
		t, err := ctx.evalIn(x, false)
		if err != nil {
			return Null(), err
		}
		return t.Value(), nil

	case *sqlast.IsNull:
		v, err := ctx.eval(x.X)
		if err != nil {
			return Null(), err
		}
		res := v.IsNull()
		if x.Not {
			res = !res
		}
		return Bool(res), nil

	case *sqlast.IsBool:
		v, err := ctx.eval(x.X)
		if err != nil {
			return Null(), err
		}
		t := truthiness(v)
		var res bool
		if x.Val {
			res = t == TriTrue
		} else {
			res = t == TriFalse
		}
		if x.Not {
			res = !res
		}
		return Bool(res), nil

	case *sqlast.Like:
		t, err := ctx.evalLike(x, false)
		if err != nil {
			return Null(), err
		}
		return t.Value(), nil

	case *sqlast.Subquery:
		rows, err := ctx.s.execSelectEnv(x.Select, ctx.env)
		if err != nil {
			return Null(), err
		}
		if len(rows.Rows) == 0 {
			return Null(), nil
		}
		if len(rows.Rows) > 1 {
			return Null(), errf(ErrRuntime, "scalar subquery returned %d rows", len(rows.Rows))
		}
		return rows.Rows[0][0], nil

	case *sqlast.Exists:
		rows, err := ctx.s.execSelectEnv(x.Select, ctx.env)
		if err != nil {
			return Null(), err
		}
		res := len(rows.Rows) > 0
		if x.Not {
			res = !res
		}
		return Bool(res), nil

	default:
		return Null(), errf(ErrSemantic, "unhandled expression kind")
	}
}

// evalTri evaluates an expression as a predicate.
func (ctx *evalCtx) evalTri(e sqlast.Expr) (Tri, *Error) {
	v, err := ctx.eval(e)
	if err != nil {
		return TriNull, err
	}
	return truthiness(v), nil
}

func (ctx *evalCtx) evalUnary(x *sqlast.Unary) (Value, *Error) {
	v, err := ctx.eval(x.X)
	if err != nil {
		return Null(), err
	}
	switch x.Op {
	case sqlast.UNot:
		ctx.s.cov.Hit("eval.unary.not")
		return truthiness(v).Not().Value(), nil
	case sqlast.UMinus:
		ctx.s.cov.Hit("eval.unary.minus")
		if v.IsNull() {
			return Null(), nil
		}
		return Int(-toInt(v)), nil
	case sqlast.UPlus:
		ctx.s.cov.Hit("eval.unary.plus")
		if v.IsNull() {
			return Null(), nil
		}
		return Int(toInt(v)), nil
	default: // UBitNot
		ctx.s.cov.Hit("eval.unary.bitnot")
		if v.IsNull() {
			return Null(), nil
		}
		return Int(^toInt(v)), nil
	}
}

func (ctx *evalCtx) evalBinary(x *sqlast.Binary) (Value, *Error) {
	op := x.Op
	l, err := ctx.eval(x.L)
	if err != nil {
		return Null(), err
	}
	r, err := ctx.eval(x.R)
	if err != nil {
		return Null(), err
	}
	ctx.s.cov.Hit(binCovKeys[op].hit)
	switch {
	case op.IsLogical():
		lt, rt := truthiness(l), truthiness(r)
		switch op {
		case sqlast.OpAnd:
			return lt.And(rt).Value(), nil
		case sqlast.OpOr:
			return lt.Or(rt).Value(), nil
		default:
			return lt.Xor(rt).Value(), nil
		}
	case op.IsComparison():
		ctx.s.cov.HitBranch(binCovKeys[op].null, l.IsNull() || r.IsNull())
		return ctx.evalCompare(op, l, r).Value(), nil
	case op == sqlast.OpConcat:
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Text(toText(l) + toText(r)), nil
	default:
		return ctx.evalArith(op, l, r)
	}
}

// binCovKeys caches each operator's coverage-key spellings
// ("eval.binary.<op>", "cmp.null.<op>"). The binary evaluator hits these
// on every node; building them by concatenation allocated two strings
// per evaluation — even with no recorder attached — and dominated the
// SELECT hot path's allocation profile.
var binCovKeys = func() (keys [sqlast.OpIsNotDistinct + 1]struct{ hit, null string }) {
	for op := range keys {
		o := sqlast.BinaryOp(op)
		keys[op].hit = "eval.binary." + o.String()
		keys[op].null = "cmp.null." + o.String()
	}
	return
}()

// evalCompare implements the reference comparison semantics.
func (ctx *evalCtx) evalCompare(op sqlast.BinaryOp, l, r Value) Tri {
	return compareValues(op, l, r)
}

// compareValues is the context-free comparison kernel: the scalar
// evaluator and the batch filter's lane kernels share it.
func compareValues(op sqlast.BinaryOp, l, r Value) Tri {
	switch op {
	case sqlast.OpNullSafeEq: // <=>
		if l.IsNull() || r.IsNull() {
			return TriOf(l.IsNull() && r.IsNull())
		}
		return TriOf(nullSafeEqual(l, r))
	case sqlast.OpIsDistinct:
		if l.IsNull() || r.IsNull() {
			return TriOf(l.IsNull() != r.IsNull())
		}
		return TriOf(!nullSafeEqual(l, r))
	case sqlast.OpIsNotDistinct:
		if l.IsNull() || r.IsNull() {
			return TriOf(l.IsNull() == r.IsNull())
		}
		return TriOf(nullSafeEqual(l, r))
	}
	if l.IsNull() || r.IsNull() {
		return TriNull
	}
	c := Compare(l, r)
	switch op {
	case sqlast.OpEq:
		return TriOf(c == 0)
	case sqlast.OpNeq, sqlast.OpNeq2:
		return TriOf(c != 0)
	case sqlast.OpLt:
		return TriOf(c < 0)
	case sqlast.OpLe:
		return TriOf(c <= 0)
	case sqlast.OpGt:
		return TriOf(c > 0)
	default: // OpGe
		return TriOf(c >= 0)
	}
}

// nullSafeEqual compares two non-NULL values for (null-safe) equality.
func nullSafeEqual(l, r Value) bool {
	if numericKind(l.K) != numericKind(r.K) {
		return false
	}
	return Compare(l, r) == 0
}

func (ctx *evalCtx) evalArith(op sqlast.BinaryOp, l, r Value) (Value, *Error) {
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}
	a, b := toInt(l), toInt(r)
	switch op {
	case sqlast.OpAdd:
		return Int(a + b), nil
	case sqlast.OpSub:
		return Int(a - b), nil
	case sqlast.OpMul:
		return Int(a * b), nil
	case sqlast.OpDiv:
		if b == 0 {
			if ctx.dialect.DivZeroError {
				return Null(), errf(ErrRuntime, "division by zero")
			}
			return Null(), nil
		}
		return Int(a / b), nil
	case sqlast.OpMod:
		if b == 0 {
			if ctx.dialect.DivZeroError {
				return Null(), errf(ErrRuntime, "division by zero")
			}
			return Null(), nil
		}
		return Int(a % b), nil
	case sqlast.OpBitAnd:
		return Int(a & b), nil
	case sqlast.OpBitOr:
		return Int(a | b), nil
	case sqlast.OpBitXor:
		return Int(a ^ b), nil
	case sqlast.OpShl:
		if b < 0 || b > 63 {
			return Int(0), nil
		}
		return Int(a << uint(b)), nil
	default: // OpShr
		if b < 0 || b > 63 {
			return Int(0), nil
		}
		return Int(a >> uint(b)), nil
	}
}

func (ctx *evalCtx) evalFunc(x *sqlast.Func) (Value, *Error) {
	if isAggregate(x) {
		if ctx.group == nil {
			return Null(), errf(ErrSemantic, "aggregate %s is not allowed here", x.Name)
		}
		return ctx.evalAggregate(x)
	}
	// Scalar MIN/MAX (two or more arguments, SQLite-style).
	if (x.Name == "MIN" || x.Name == "MAX") && len(x.Args) >= 2 {
		ctx.s.cov.Hit("eval.func.scalar-minmax")
		var best Value
		for i, a := range x.Args {
			v, err := ctx.eval(a)
			if err != nil {
				return Null(), err
			}
			if v.IsNull() {
				return Null(), nil
			}
			if i == 0 {
				best = v
				continue
			}
			c := Compare(v, best)
			if (x.Name == "MAX" && c > 0) || (x.Name == "MIN" && c < 0) {
				best = v
			}
		}
		return best, nil
	}
	def := LookupFunc(x.Name)
	if def == nil {
		return Null(), errf(ErrSemantic, "no such function %s", x.Name)
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ctx.eval(a)
		if err != nil {
			return Null(), err
		}
		args[i] = v
	}
	ctx.s.cov.Hit("eval.func." + x.Name)
	ctx.s.cov.HitBranch("func.null."+x.Name, anyNull(args) >= 0)
	return def.Impl(ctx, args)
}

func (ctx *evalCtx) evalCase(x *sqlast.Case) (Value, *Error) {
	ctx.s.cov.Hit("eval.case")
	ctx.s.cov.HitBranch("case.searched", x.Operand == nil)
	if x.Operand != nil {
		op, err := ctx.eval(x.Operand)
		if err != nil {
			return Null(), err
		}
		for i := range x.Whens {
			w, err := ctx.eval(x.Whens[i].Cond)
			if err != nil {
				return Null(), err
			}
			if !op.IsNull() && !w.IsNull() && nullSafeEqual(op, w) {
				return ctx.eval(x.Whens[i].Then)
			}
		}
	} else {
		for i := range x.Whens {
			t, err := ctx.evalTri(x.Whens[i].Cond)
			if err != nil {
				return Null(), err
			}
			if t == TriTrue {
				return ctx.eval(x.Whens[i].Then)
			}
		}
	}
	if x.Else != nil {
		return ctx.eval(x.Else)
	}
	return Null(), nil
}

func (ctx *evalCtx) evalCast(v Value, to sqlast.Type) (Value, *Error) {
	ctx.s.cov.Hit("eval.cast." + to.String())
	if v.IsNull() {
		return Null(), nil
	}
	switch to {
	case sqlast.TypeInt:
		if v.K == KindText {
			if n, ok := parseFullInt(v.S); ok {
				return Int(n), nil
			}
			if ctx.dialect.CastTextError {
				return Null(), errf(ErrRuntime, "invalid input for CAST to INTEGER: %q", v.S)
			}
			return Int(parseLeadingInt(v.S)), nil
		}
		return Int(toInt(v)), nil
	case sqlast.TypeText:
		return Text(toText(v)), nil
	case sqlast.TypeBool:
		switch v.K {
		case KindBool:
			return v, nil
		case KindInt:
			return Bool(v.I != 0), nil
		default:
			s := strings.ToLower(strings.TrimSpace(v.S))
			switch s {
			case "true", "t", "1":
				return Bool(true), nil
			case "false", "f", "0":
				return Bool(false), nil
			}
			if ctx.dialect.CastTextError {
				return Null(), errf(ErrRuntime, "invalid input for CAST to BOOLEAN: %q", v.S)
			}
			return Bool(parseLeadingInt(v.S) != 0), nil
		}
	default:
		return Null(), errf(ErrSemantic, "CAST to unknown type")
	}
}

// parseFullInt parses s as a complete integer literal.
func parseFullInt(s string) (int64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	i := 0
	neg := false
	if s[i] == '+' || s[i] == '-' {
		neg = s[i] == '-'
		i++
	}
	if i == len(s) {
		return 0, false
	}
	var n int64
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int64(s[i]-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// evalBetween computes x BETWEEN lo AND hi with three-valued logic.
// exclusive is set by the BetweenExclusive fault.
func (ctx *evalCtx) evalBetween(x *sqlast.Between, exclusive bool) (Tri, *Error) {
	ctx.s.cov.Hit("eval.between")
	v, err := ctx.eval(x.X)
	if err != nil {
		return TriNull, err
	}
	lo, err := ctx.eval(x.Lo)
	if err != nil {
		return TriNull, err
	}
	hi, err := ctx.eval(x.Hi)
	if err != nil {
		return TriNull, err
	}
	opLo, opHi := sqlast.OpGe, sqlast.OpLe
	if exclusive {
		opLo, opHi = sqlast.OpGt, sqlast.OpLt
	}
	t := ctx.evalCompare(opLo, v, lo).And(ctx.evalCompare(opHi, v, hi))
	if x.Not {
		t = t.Not()
	}
	return t, nil
}

// evalIn computes x IN (...) with three-valued logic. If notInNullTrue is
// set (injected fault), a non-matching NOT IN with a NULL element yields
// TRUE instead of NULL.
func (ctx *evalCtx) evalIn(x *sqlast.InList, notInNullTrue bool) (Tri, *Error) {
	ctx.s.cov.Hit("eval.in")
	v, err := ctx.eval(x.X)
	if err != nil {
		return TriNull, err
	}
	sawNull := v.IsNull()
	matched := false
	for _, item := range x.List {
		iv, err := ctx.eval(item)
		if err != nil {
			return TriNull, err
		}
		if iv.IsNull() || v.IsNull() {
			sawNull = true
			continue
		}
		if nullSafeEqual(v, iv) {
			matched = true
		}
	}
	var t Tri
	switch {
	case matched:
		t = TriTrue
	case sawNull:
		t = TriNull
	default:
		t = TriFalse
	}
	if x.Not {
		t = t.Not()
		if notInNullTrue && t == TriNull {
			t = TriTrue
		}
	}
	return t, nil
}

// evalLike computes x LIKE/GLOB pattern. If underscoreBroken is set
// (injected fault), the '_' wildcard matches nothing.
func (ctx *evalCtx) evalLike(x *sqlast.Like, underscoreBroken bool) (Tri, *Error) {
	ctx.s.cov.Hit("eval.like")
	v, err := ctx.eval(x.X)
	if err != nil {
		return TriNull, err
	}
	p, err := ctx.eval(x.Pattern)
	if err != nil {
		return TriNull, err
	}
	if v.IsNull() || p.IsNull() {
		return TriNull, nil
	}
	var m bool
	if x.Kind == sqlast.LikeGlob {
		m = globMatch(toText(p), toText(v))
	} else {
		m = likeMatch(toText(p), toText(v), underscoreBroken)
	}
	if x.Not {
		m = !m
	}
	return TriOf(m), nil
}

// likeMatch implements LIKE with % and _ wildcards over ASCII,
// case-insensitively.
func likeMatch(pattern, s string, underscoreBroken bool) bool {
	pattern = strings.ToLower(pattern)
	s = strings.ToLower(s)
	return wildMatch(pattern, s, '%', '_', underscoreBroken)
}

// globMatch implements GLOB with * and ? wildcards, case-sensitively.
func globMatch(pattern, s string) bool {
	return wildMatch(pattern, s, '*', '?', false)
}

// wildMatch is a linear-space wildcard matcher (iterative, no
// backtracking blowup).
func wildMatch(p, s string, many, one byte, oneBroken bool) bool {
	var pi, si int
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && p[pi] == many:
			star, mark = pi, si
			pi++
		case pi < len(p) && p[pi] == one && !oneBroken:
			pi++
			si++
		case pi < len(p) && p[pi] != one && p[pi] == s[si]:
			pi++
			si++
		case star >= 0:
			mark++
			si = mark
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == many {
		pi++
	}
	return pi == len(p)
}
