package campaign

import (
	"bytes"
	"strings"
	"testing"

	"sqlancerpp/internal/core/oracle"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/faults"
)

// permDropDialect carries only the JoinPermConjDrop fault: a join
// reorderer that drops a relocated ON conjunct when the permuted join
// order defers it past its original step. The defect is observable only
// under a permuted plan of a 3+-relation inner-join chain — the
// canonical order relocates nothing — so it is invisible to every
// oracle except PlanDiff's join-order axis.
func permDropDialect(name string) *dialect.Dialect {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = name
	d.Faults = faults.NewSet([]faults.Fault{{
		ID: name + "-drop", Dialect: name, Class: faults.Logic,
		Kind: faults.JoinPermConjDrop,
	}})
	return d
}

// TestJoinPermOnlyFaultCampaignAttribution: a seeded campaign on the
// permutation-only fault dialect must attribute the fault through a
// recorded "perm:" losing spec with zero false positives — the
// join-order axis finds a defect class no other plan axis reaches —
// and the sharded runs must stay byte-identical at worker counts
// {1, 3, 8} with the pair scheduler on.
func TestJoinPermOnlyFaultCampaignAttribution(t *testing.T) {
	cfg := func() Config {
		return Config{
			Dialect:   permDropDialect("permdrop-1"),
			Mode:      Adaptive,
			TestCases: 3000,
			Seed:      7,
			Oracles:   []oracle.Name{oracle.PlanDiffName},
		}
	}
	r, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FalsePositives != 0 {
		t.Fatalf("%d false positives — the permutation machinery is unsound", rep.FalsePositives)
	}
	permBugs := 0
	for _, b := range rep.Bugs {
		if b.Oracle != oracle.PlanDiffName || b.Class != ClassLogic {
			continue
		}
		if !strings.Contains(b.PlanSpec, "perm:") {
			continue
		}
		permBugs++
		attributed := false
		for _, id := range b.Triggered {
			if id == "permdrop-1-drop" {
				attributed = true
			}
		}
		if !attributed {
			t.Errorf("perm bug #%d not attributed to the injected fault: %v", b.ID, b.Triggered)
		}
	}
	if permBugs == 0 {
		t.Fatalf("no bug recorded a permutation losing spec (detected=%d)", rep.Detected)
	}
	if rep.PlanPairsNovel == 0 {
		t.Fatal("scheduler recorded no novel pairs")
	}

	// Determinism: byte-identical merged reports at every worker count
	// with the pair scheduler on (the default).
	serial, err := RunSharded(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 8} {
		par, err := RunSharded(cfg(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, serial), marshalReport(t, par)) {
			t.Fatalf("workers=%d report differs from workers=1", workers)
		}
	}
}
