package campaign

import (
	"bytes"
	"testing"

	"sqlancerpp/internal/core/oracle"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/faults"
)

// compositeFaultDialect is a SQLite-family dialect carrying one
// composite-span fault site, so attribution is unambiguous. The two
// sites live on the same planner path (the prefix-skip defect replaces
// the span the boundary defect would perturb), so — like the real
// catalogue, where no dialect carries both — each gets its own dialect.
func compositeFaultDialect(name string, kind faults.Kind) *dialect.Dialect {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = name
	d.Faults = faults.NewSet([]faults.Fault{
		{ID: name + "-f", Dialect: name, Class: faults.Logic, Kind: kind},
	})
	return d
}

// TestCompositeFaultSitesFound is the acceptance criterion for the new
// fault sites: a seeded campaign over a dialect carrying a composite
// defect reports at least one logic bug attributed to it — the
// generator's composite CREATE INDEX and sargable multi-conjunct WHERE
// shapes must therefore actually reach the composite span planner —
// with zero false positives.
func TestCompositeFaultSitesFound(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind faults.Kind
	}{
		{"composite-accept-boundary", faults.CompositeSpanBoundary},
		{"composite-accept-prefixskip", faults.CompositeProbePrefixSkip},
	} {
		r, err := New(Config{
			Dialect:      compositeFaultDialect(tc.name, tc.kind),
			Mode:         Adaptive,
			TestCases:    6000,
			Seed:         2,
			KeepAllCases: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.FalsePositives != 0 {
			t.Fatalf("%s: %d false positives — a composite span path is unsound",
				tc.name, rep.FalsePositives)
		}
		attributed := 0
		for _, b := range rep.AllCases {
			if b.Class != ClassLogic {
				continue
			}
			for _, id := range b.Triggered {
				if id == tc.name+"-f" {
					attributed++
				}
			}
		}
		if attributed == 0 {
			t.Errorf("%s: no logic bug attributed (detected=%d)", tc.name, rep.Detected)
		}
		t.Logf("%s: attributed=%d detected=%d validity=%.1f%%",
			tc.name, attributed, rep.Detected, 100*rep.ValidityRate())
	}
}

// TestCompositeOracleMixDeterministicAcrossWorkers extends the sharded
// determinism guarantee to an oracle mix over a composite-fault dialect:
// byte-identical reports for every worker count must survive campaigns
// whose cases probe composite spans, index-assisted DML, and plan-diffed
// executions.
func TestCompositeOracleMixDeterministicAcrossWorkers(t *testing.T) {
	cfg := func() Config {
		return Config{
			Dialect: compositeFaultDialect("composite-detrm-1",
				faults.CompositeProbePrefixSkip),
			Mode:      Adaptive,
			TestCases: 2000,
			Seed:      3,
			Oracles: []oracle.Name{oracle.TLPName, oracle.NoRECName,
				oracle.PlanDiffName},
			KeepAllCases: true,
		}
	}
	serial, err := RunSharded(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		par, err := RunSharded(cfg(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, serial), marshalReport(t, par)) {
			t.Fatalf("workers=%d report differs from the serial run", workers)
		}
	}
	if serial.Detected == 0 {
		t.Fatal("composite campaign detected nothing; the determinism check is vacuous")
	}
}
