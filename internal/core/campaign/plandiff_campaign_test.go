package campaign

import (
	"bytes"
	"testing"

	"sqlancerpp/internal/core/oracle"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/faults"
)

// indexFaultDialect is a SQLite-family dialect carrying only the
// index-path fault family — the bugs the PlanDiff oracle exists for.
func indexFaultDialect(name string) *dialect.Dialect {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = name
	d.Faults = faults.NewSet([]faults.Fault{
		{ID: name + "-stale", Dialect: name, Class: faults.Logic,
			Kind: faults.StaleIndexAfterUpdate},
		{ID: name + "-range", Dialect: name, Class: faults.Logic,
			Kind: faults.IndexRangeBoundary, Param: "<="},
		{ID: name + "-partial", Dialect: name, Class: faults.Logic,
			Kind: faults.PartialIndexScan},
		{ID: name + "-residual", Dialect: name, Class: faults.Logic,
			Kind: faults.JoinIndexResidual},
	})
	return d
}

// TestPlanDiffFindsIndexFaultFamily is the tentpole acceptance
// criterion: with PlanDiff in the default rotation, a seeded campaign
// over a dialect with index-path faults reports logic bugs *attributed
// to PlanDiff*, with zero false positives.
func TestPlanDiffFindsIndexFaultFamily(t *testing.T) {
	r, err := New(Config{
		Dialect:   indexFaultDialect("plandiff-accept-1"),
		Mode:      Adaptive,
		TestCases: 3000,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FalsePositives != 0 {
		t.Fatalf("%d false positives — PlanDiff or the INL path is unsound", rep.FalsePositives)
	}
	planDiffLogic := 0
	for _, b := range rep.Bugs {
		if b.Oracle == oracle.PlanDiffName && b.Class == ClassLogic {
			planDiffLogic++
		}
	}
	if planDiffLogic == 0 {
		t.Fatalf("no logic bug attributed to PlanDiff (detected=%d by-class=%v)",
			rep.Detected, rep.DetectedByClass)
	}
	t.Logf("PlanDiff logic bugs=%d detected=%d unique=%d validity=%.1f%%",
		planDiffLogic, rep.Detected, rep.UniqueGroundTruth, 100*rep.ValidityRate())
}

// TestOracleRotationDeterministicAcrossWorkers is the registry
// determinism property: the same seed and explicit oracle set produce a
// byte-identical report for every worker count — the rotation is a
// function of (configuration, seed) only.
func TestOracleRotationDeterministicAcrossWorkers(t *testing.T) {
	cfg := func() Config {
		return Config{
			Dialect:   dialect.MustGet("sqlite"),
			Mode:      Adaptive,
			TestCases: 800,
			Seed:      19,
			Oracles: []oracle.Name{oracle.TLPName, oracle.NoRECName,
				oracle.PlanDiffName},
			KeepAllCases: true,
		}
	}
	serial, err := RunSharded(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 8} {
		par, err := RunSharded(cfg(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, serial), marshalReport(t, par)) {
			t.Fatalf("workers=%d report differs from the serial run", workers)
		}
	}
	// The selection must actually have rotated: bugs attributed to more
	// than one oracle name.
	names := map[oracle.Name]bool{}
	for _, b := range serial.Bugs {
		if b.Oracle != "" {
			names[b.Oracle] = true
		}
	}
	if len(names) < 2 {
		t.Logf("only %d oracle name(s) among prioritized bugs: %v (rotation still exercised)", len(names), names)
	}
}

// TestUnknownOracleRejected: Config.Oracles with an unregistered name
// must fail loudly at construction, not dispatch.
func TestUnknownOracleRejected(t *testing.T) {
	_, err := New(Config{
		Dialect: dialect.MustGet("sqlite"),
		Oracles: []oracle.Name{"NoSuchOracle"},
	})
	if err == nil {
		t.Fatal("unknown oracle name must be rejected")
	}
}
