package campaign

import (
	"reflect"
	"testing"
	"time"

	"sqlancerpp/internal/chaos"
	"sqlancerpp/internal/core/gen"
	"sqlancerpp/internal/coverage"
	"sqlancerpp/internal/dialect"
)

// TestFingerprintExclusionsAreRealFields is the runtime half of the
// exclusion list's guard (the keyed Config literal in checkpoint.go is
// the compile-time half, and the sqlint fingerprint analyzer closes the
// exhaustiveness direction): every fingerprintExcluded key must name an
// actual Config field, and every reason must be non-empty.
func TestFingerprintExclusionsAreRealFields(t *testing.T) {
	ct := reflect.TypeOf(Config{})
	for name, reason := range fingerprintExcluded {
		if _, ok := ct.FieldByName(name); !ok {
			t.Errorf("fingerprintExcluded names %q, which is not a Config field", name)
		}
		if reason == "" {
			t.Errorf("fingerprintExcluded[%q] has no reason", name)
		}
	}
}

// TestFingerprintInsensitiveToExcludedFields proves each exclusion is
// behaviorally real: perturbing an excluded field must not change the
// fingerprint (that is what lets a chaos-free, timeout-free -resume
// recover a chaos-interrupted run), while perturbing a rendered field
// must change it.
func TestFingerprintInsensitiveToExcludedFields(t *testing.T) {
	base := Config{Dialect: dialect.MustGet("sqlite"), Seed: 7}.withDefaults()
	fp := fingerprint(base)

	perturb := map[string]func(*Config){
		"Policy":      func(c *Config) { c.Policy = gen.AllowAll{} },
		"UseTLP":      func(c *Config) { c.UseTLP = true },
		"UseNoREC":    func(c *Config) { c.UseNoREC = true },
		"BatchSize":   func(c *Config) { c.BatchSize = base.BatchSize + 33 },
		"CaseTimeout": func(c *Config) { c.CaseTimeout = 5 * time.Second },
		"Chaos": func(c *Config) {
			in, err := chaos.Parse("shard-error=1", 1)
			if err != nil {
				t.Fatalf("chaos.Parse: %v", err)
			}
			c.Chaos = in
		},
		"Coverage": func(c *Config) { c.Coverage = coverage.NewRecorder() },
	}
	for name := range fingerprintExcluded {
		f, ok := perturb[name]
		if !ok {
			t.Errorf("no perturbation for excluded field %s: extend this test", name)
			continue
		}
		cfg := base
		f(&cfg)
		if got := fingerprint(cfg); got != fp {
			t.Errorf("fingerprint is sensitive to excluded field %s:\n  base %s\n  got  %s",
				name, fp, got)
		}
	}
	for name := range perturb {
		if _, ok := fingerprintExcluded[name]; !ok {
			t.Errorf("perturbation for %s has no matching exclusion", name)
		}
	}

	cfg := base
	cfg.Seed = 8
	if fingerprint(cfg) == fp {
		t.Error("fingerprint is insensitive to Seed, a rendered field")
	}
}
