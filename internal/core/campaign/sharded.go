package campaign

import (
	"fmt"

	"sqlancerpp/internal/core/feedback"
	"sqlancerpp/internal/core/prioritize"
)

// splitmix64 advances a seed sequence and returns the new state plus the
// derived value (Steele et al., "Fast splittable pseudorandom number
// generators"). Shard seeds come from this sequence so that shard i's
// generator stream is a pure function of (Config.Seed, i).
func splitmix64(x uint64) (next uint64, value int64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return x, int64(z)
}

// ShardCount returns the number of logical shards RunSharded partitions
// a configuration into: one shard per database epoch (CasesPerDB oracle
// checks). The partition depends on the configuration only — never on
// the worker count — which is what makes the merged report reproducible
// on any machine.
func ShardCount(cfg Config) int {
	cfg = cfg.withDefaults()
	n := (cfg.TestCases + cfg.CasesPerDB - 1) / cfg.CasesPerDB
	if n < 1 {
		n = 1
	}
	return n
}

// RunSharded executes a campaign as deterministic parallel shards and
// merges the results.
//
// The test-case budget splits into ShardCount logical shards; workers
// only bounds how many execute concurrently. Each shard runs a complete
// Runner — its own engine instance, generator, prioritizer, and Bayesian
// tracker (seeded from Config.FeedbackState) — under a per-shard seed
// derived from Config.Seed via splitmix64. Because shards never share
// mutable state and the merge is a fold in shard-index order, the same
// seed yields a byte-identical report for every worker count, including
// the serial workers == 1 run.
//
// Semantically the difference from Run is that validity feedback does not
// flow across database epochs during the campaign; the merged
// FeedbackState still pools every shard's evidence for reuse in later
// runs (paper Figure 5).
func RunSharded(cfg Config, workers int) (*Report, error) {
	return RunShardedOpts(cfg, ShardedOptions{Workers: workers})
}

// shardConfigs partitions a resolved configuration into per-shard
// configurations: one shard per database epoch, each with a seed derived
// from Config.Seed via splitmix64.
func shardConfigs(cfg Config) []Config {
	nShards := ShardCount(cfg)
	shards := make([]Config, nShards)
	seq := uint64(cfg.Seed)
	for i := range shards {
		sc := cfg
		sc.TestCases = cfg.CasesPerDB
		if i == nShards-1 {
			sc.TestCases = cfg.TestCases - cfg.CasesPerDB*(nShards-1)
		}
		seq, sc.Seed = splitmix64(seq)
		shards[i] = sc
	}
	return shards
}

// mergeReports folds per-shard reports, in shard-index order, into one.
//
// Counters add; bug IDs shift by the preceding shards' detected-case
// counts (preserving "ID = position among detected cases"); bugs
// prioritized within their shard replay through a fresh global
// prioritizer so feature-subsumed duplicates across shards are dropped
// exactly as a serial prioritizer would drop them; feedback states merge
// via Tracker.MergeState followed by one posterior update over the
// pooled evidence. Ground-truth fault sets union. Every step is a
// deterministic function of the shard reports, which are themselves
// deterministic per shard seed.
//
// A quarantined shard's placeholder contributes only its retry count and
// a QuarantinedShards entry (shard ordinal, derived seed, case count —
// the full recipe for offline replay); everything else about the merge
// is computed exactly as if the shard were absent, so the degraded
// report is still a deterministic function of which shards survived.
func mergeReports(cfg Config, reps []*Report) (*Report, error) {
	merged := &Report{
		Dialect:            cfg.Dialect.Name,
		Mode:               cfg.Mode.String(),
		DetectedByClass:    map[BugClass]int{},
		PrioritizedByClass: map[BugClass]int{},
	}
	// The merged tracker starts empty: each shard already loaded
	// Config.FeedbackState, so its saved state carries those priors
	// (deduplicated below before the posterior update).
	tracker := newTracker(cfg)
	// Plan-pair union: shards record their own pairs (and, on resume,
	// re-include the warm-start snapshot every shard was seeded with);
	// union is idempotent, so no warm-start discount is needed.
	pairs := feedback.NewPairTracker()
	pri := prioritize.New()
	faults := map[string]bool{}
	priFaults := map[string]bool{}
	shards := shardConfigs(cfg)
	// nLive counts the shards whose feedback state made it into the pool
	// — the divisor for the warm-start discount below. Quarantined shards
	// contributed nothing, so counting len(reps) would over-discount.
	nLive := 0

	for i, rep := range reps {
		merged.ShardRetries += rep.ShardRetries
		if rep.Quarantined {
			merged.ShardsQuarantined++
			merged.QuarantinedShards = append(merged.QuarantinedShards, QuarantinedShard{
				Shard:     i,
				Seed:      shards[i].Seed,
				TestCases: shards[i].TestCases,
				Err:       rep.QuarantineErr,
			})
			continue
		}
		idOffset := merged.Detected
		merged.TestCases += rep.TestCases
		merged.ValidCases += rep.ValidCases
		merged.SetupTotal += rep.SetupTotal
		merged.SetupOK += rep.SetupOK
		merged.Detected += rep.Detected
		merged.FalsePositives += rep.FalsePositives
		merged.PlanPairsNovel += rep.PlanPairsNovel
		merged.PlanPairsRepeated += rep.PlanPairsRepeated
		merged.HarnessCrashes += rep.HarnessCrashes
		merged.BudgetExceeded += rep.BudgetExceeded
		merged.Hangs += rep.Hangs
		merged.CheckpointWriteFailures += rep.CheckpointWriteFailures
		for c, n := range rep.DetectedByClass {
			merged.DetectedByClass[c] += n
		}
		for _, id := range rep.GroundTruthFaults {
			faults[id] = true
		}
		for _, b := range rep.Bugs {
			nb := *b
			nb.ID += idOffset
			if !pri.Report(prioritizerFeatures(nb.Features)) {
				continue
			}
			merged.Prioritized++
			merged.PrioritizedByClass[nb.Class]++
			for _, id := range nb.Triggered {
				priFaults[id] = true
			}
			merged.Bugs = append(merged.Bugs, &nb)
		}
		for _, c := range rep.AllCases {
			nc := *c
			nc.ID += idOffset
			merged.AllCases = append(merged.AllCases, &nc)
		}
		if rep.FeedbackState != nil {
			if err := tracker.MergeState(rep.FeedbackState); err != nil {
				return nil, fmt.Errorf("campaign: merging shard feedback: %w", err)
			}
			nLive++
		}
		if rep.PlanPairState != nil {
			if err := pairs.MergeState(rep.PlanPairState); err != nil {
				return nil, fmt.Errorf("campaign: merging shard plan pairs: %w", err)
			}
		}
	}

	merged.UniqueGroundTruth = len(faults)
	merged.GroundTruthFaults = sortedKeys(faults)
	merged.UniquePrioritized = len(priFaults)

	// Every live shard's saved state re-includes the warm-start prior it
	// was seeded with; keep exactly one copy of that prior in the pooled
	// evidence. The divisor is the live shard count, not len(reps):
	// quarantined shards never contributed their copy. With no live
	// shards at all, merge the prior in directly so a fully-degraded run
	// still hands the warm start forward.
	if cfg.FeedbackState != nil {
		if nLive > 1 {
			if err := tracker.DiscountState(cfg.FeedbackState, nLive-1); err != nil {
				return nil, fmt.Errorf("campaign: discounting warm-start prior: %w", err)
			}
		} else if nLive == 0 {
			if err := tracker.MergeState(cfg.FeedbackState); err != nil {
				return nil, fmt.Errorf("campaign: preserving warm-start prior: %w", err)
			}
		}
	}
	tracker.Update()
	// A state that fails to serialize is lost feedback, not a cosmetic
	// miss: fail the merge loudly instead of silently dropping it.
	state, err := tracker.Save()
	if err != nil {
		return nil, fmt.Errorf("campaign: saving merged feedback state: %w", err)
	}
	merged.FeedbackState = state
	if !cfg.NoPlanPairSched {
		state, err := pairs.SaveState()
		if err != nil {
			return nil, fmt.Errorf("campaign: saving merged plan-pair state: %w", err)
		}
		merged.PlanPairState = state
	}
	merged.Unsupported = tracker.Unsupported()
	return merged, nil
}
