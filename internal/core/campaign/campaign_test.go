package campaign

import (
	"testing"

	"sqlancerpp/internal/dialect"
)

// TestCleanDialectNoFalsePositives is the platform's soundness anchor: on
// a fault-free dialect, the TLP partition property and the NoREC
// equivalence are invariants of the engine, so a campaign must report
// zero bugs. Any detection here is a bug in this repository.
func TestCleanDialectNoFalsePositives(t *testing.T) {
	for _, name := range []string{"postgresql", "sqlite", "mysql", "cratedb"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			d := dialect.MustGet(name).Clone()
			d.Faults = nil // pristine system
			r, err := New(Config{
				Dialect:   d,
				Mode:      Adaptive,
				TestCases: 600,
				Seed:      7,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Detected != 0 {
				var detail string
				if len(rep.Bugs) > 0 {
					detail = rep.Bugs[0].Detail + " | " + join(rep.Bugs[0].Queries)
				}
				t.Fatalf("clean %s produced %d bug reports (false positives): %s",
					name, rep.Detected, detail)
			}
			if rep.TestCases == 0 || rep.ValidCases == 0 {
				t.Fatalf("campaign made no progress: %+v", rep)
			}
		})
	}
}

func join(qs []string) string {
	out := ""
	for _, q := range qs {
		out += q + "; "
	}
	return out
}

// TestFaultedDialectFindsBugs checks the whole pipeline end to end: on a
// dialect with injected faults the campaign must detect bugs, attribute
// them to ground-truth faults, and produce zero false positives.
func TestFaultedDialectFindsBugs(t *testing.T) {
	d := dialect.MustGet("cratedb")
	r, err := New(Config{
		Dialect:   d,
		Mode:      Adaptive,
		TestCases: 1500,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected == 0 {
		t.Fatal("no bugs detected on the fault-injected CrateDB dialect")
	}
	if rep.FalsePositives != 0 {
		t.Fatalf("%d false positives (bug cases without ground-truth fault)", rep.FalsePositives)
	}
	if rep.UniqueGroundTruth == 0 {
		t.Fatal("no ground-truth faults attributed")
	}
	if rep.Prioritized == 0 || rep.Prioritized > rep.Detected {
		t.Fatalf("prioritizer out of range: %d of %d", rep.Prioritized, rep.Detected)
	}
	t.Logf("detected=%d prioritized=%d unique=%d validity=%.1f%%",
		rep.Detected, rep.Prioritized, rep.UniqueGroundTruth, 100*rep.ValidityRate())
}
