package campaign

import (
	"bytes"
	"strings"
	"testing"

	"sqlancerpp/internal/core/oracle"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/faults"
)

// prefixTruncDialect carries only the PrefixSpanTruncate fault: a defect
// that fires on short-prefix composite spans. When the generated query
// constrains the full composite key, the auto plan consumes the whole
// key, the defect stays silent on both halves of the legacy
// index-on/off pair, and only a width-capped forced plan from the
// enumerator reaches the defective span.
func prefixTruncDialect(name string) *dialect.Dialect {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = name
	d.Faults = faults.NewSet([]faults.Fault{{
		ID: name + "-trunc", Dialect: name, Class: faults.Logic,
		Kind: faults.PrefixSpanTruncate,
	}})
	return d
}

// TestPlanDiffEnumerationBeatsLegacyTogglePair is the tentpole
// acceptance criterion: a seeded campaign on a plan-dependent fault
// dialect attributes at least one logic bug to a PlanDiff plan pair the
// old index-on/off toggle cannot distinguish — the recorded losing spec
// is a forced plan, and since the enumerator diffs the planner-off spec
// *first*, a forced losing spec proves the legacy pair agreed for that
// query. FalsePositives must stay zero and the sharded reports
// byte-identical across worker counts.
func TestPlanDiffEnumerationBeatsLegacyTogglePair(t *testing.T) {
	cfg := func() Config {
		return Config{
			Dialect:    prefixTruncDialect("planspec-accept-1"),
			Mode:       Adaptive,
			TestCases:  3000,
			Seed:       10,
			Oracles:    []oracle.Name{oracle.PlanDiffName},
			ReduceBugs: true,
		}
	}
	r, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FalsePositives != 0 {
		t.Fatalf("%d false positives — plan forcing or the enumerator is unsound", rep.FalsePositives)
	}
	forced := 0
	reduced := 0
	for _, b := range rep.Bugs {
		if b.Oracle != oracle.PlanDiffName || b.Class != ClassLogic {
			continue
		}
		if b.PlanSpec == "" {
			t.Errorf("PlanDiff bug #%d lacks a recorded losing spec", b.ID)
			continue
		}
		if !strings.Contains(b.Detail, "["+b.PlanSpec+"]") {
			t.Errorf("bug #%d Detail %q must embed the losing spec %q", b.ID, b.Detail, b.PlanSpec)
		}
		// A forced-index losing spec means every earlier spec in the
		// canonical enumeration order — the planner-off plan included —
		// agreed with the baseline: the legacy pair was blind here.
		if strings.Contains(b.PlanSpec, "index(") {
			forced++
			if len(b.Reduced) > 0 {
				reduced++
			}
		}
	}
	if forced == 0 {
		t.Fatalf("no PlanDiff bug attributed to a forced plan pair (detected=%d by-class=%v)",
			rep.Detected, rep.DetectedByClass)
	}
	if reduced == 0 {
		t.Fatal("no forced-pair bug survived reduction — the reducer is not replaying the recorded spec")
	}
	t.Logf("forced-pair PlanDiff bugs=%d (reduced=%d) detected=%d validity=%.1f%%",
		forced, reduced, rep.Detected, 100*rep.ValidityRate())

	// Byte-identical sharded reports for every worker count.
	serial, err := RunSharded(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 8} {
		par, err := RunSharded(cfg(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, serial), marshalReport(t, par)) {
			t.Fatalf("workers=%d report differs from the serial run", workers)
		}
	}
}

// TestPlanPairCountersAndShardMerge: a campaign with a tight -plans cap
// must account for every executed plan spec as a novel or repeated
// (shape, spec) pair, persist the pair tracker's state in the report,
// and preserve both across shard merging. The serial runner keeps one
// tracker across database epochs, so recurring query shapes must show
// up as repeated pairs; disabling the scheduler zeroes the accounting.
func TestPlanPairCountersAndShardMerge(t *testing.T) {
	cfg := func(sched bool) Config {
		return Config{
			Dialect:          dialect.MustGet("sqlite"),
			Mode:             Adaptive,
			TestCases:        600,
			Seed:             11,
			Oracles:          []oracle.Name{oracle.PlanDiffName},
			MaxPlansPerQuery: 1,
			NoPlanPairSched:  !sched,
		}
	}
	r, err := New(cfg(true))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PlanPairsNovel == 0 {
		t.Fatal("campaign executed no novel plan pairs on index-bearing states")
	}
	if rep.PlanPairsRepeated == 0 {
		t.Fatal("recurring shapes under cap 1 must eventually repeat pairs")
	}
	if rep.PlanPairState == nil {
		t.Fatal("report must carry the pair tracker's state")
	}

	shardedRep, err := RunSharded(cfg(true), 4)
	if err != nil {
		t.Fatal(err)
	}
	if shardedRep.PlanPairsNovel == 0 {
		t.Fatal("shard merge lost the novel-pair tally")
	}
	if shardedRep.PlanPairState == nil {
		t.Fatal("shard merge lost the pair tracker state")
	}

	off, err := New(cfg(false))
	if err != nil {
		t.Fatal(err)
	}
	offRep, err := off.Run()
	if err != nil {
		t.Fatal(err)
	}
	if offRep.PlanPairsNovel != 0 || offRep.PlanPairsRepeated != 0 || offRep.PlanPairState != nil {
		t.Fatalf("scheduler off must not track pairs: novel=%d repeated=%d state=%v",
			offRep.PlanPairsNovel, offRep.PlanPairsRepeated, offRep.PlanPairState != nil)
	}
}
