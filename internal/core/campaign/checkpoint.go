package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"sqlancerpp/internal/par"
)

// ErrInterrupted reports that RunShardedOpts stopped at a shard boundary
// because the Interrupt channel closed. Completed shards are already
// checkpointed (when a checkpoint path is configured); a later Resume
// run continues exactly where this one stopped and produces a final
// report byte-identical to an uninterrupted run.
var ErrInterrupted = errors.New("campaign: interrupted")

// ShardedOptions parameterizes RunShardedOpts.
type ShardedOptions struct {
	// Workers bounds concurrent shard execution (minimum 1). The worker
	// count never affects the merged report, only wall-clock time.
	Workers int
	// CheckpointPath, when set, persists campaign progress: after every
	// completed shard the per-shard reports (each carrying its tracker's
	// feedback state) and the shard seed table are written atomically
	// (temp file + rename) to this path. The file is removed once the
	// campaign completes.
	CheckpointPath string
	// Resume loads CheckpointPath before running and skips the shards it
	// already holds. The checkpoint's configuration fingerprint must
	// match the resolved configuration; a missing file starts fresh.
	Resume bool
	// Interrupt, when closed, stops the run at the next shard boundary
	// with ErrInterrupted. Shards already in flight finish and are
	// checkpointed; shards not yet started never start.
	Interrupt <-chan struct{}
}

// checkpointVersion is bumped whenever the checkpoint layout or the
// shard partitioning scheme changes incompatibly.
const checkpointVersion = 1

// checkpointFile is the serialized campaign progress: which shards have
// completed and their full reports. Reports round-trip losslessly
// through JSON (every field is exported; FeedbackState is base64), which
// is what makes a resumed merge byte-identical to an uninterrupted one.
type checkpointFile struct {
	Version int
	// Fingerprint pins the resolved configuration (including an FNV-1a
	// hash of the warm-start feedback state) so a checkpoint cannot be
	// resumed under a different campaign setup.
	Fingerprint string
	TotalShards int
	// Seeds holds each shard's derived seed — the next-seed cursor in
	// table form, doubling as a guard against partitioning drift.
	Seeds []int64
	// Shards is indexed by shard ordinal; nil marks an incomplete shard.
	Shards []*Report
}

// fingerprint renders the resolved configuration fields that determine a
// campaign's behavior. Policy is a function value and cannot be
// fingerprinted; checkpointed runs must configure via Mode.
func fingerprint(cfg Config) string {
	h := fnv.New64a()
	h.Write(cfg.FeedbackState)
	ph := fnv.New64a()
	ph.Write(cfg.PlanPairState)
	return fmt.Sprintf("d=%s m=%d tc=%d ss=%d cpd=%d se=%d seed=%d or=%v tco=%t rp=%g ef=%v th=%g cf=%g ui=%d df=%d sd=%d md=%d di=%d mp=%d nps=%t rb=%t pcl=%d budget=%d kac=%t fs=%x pps=%x",
		cfg.Dialect.Name, cfg.Mode, cfg.TestCases, cfg.SetupStmts,
		cfg.CasesPerDB, cfg.SmokeEvery, cfg.Seed, cfg.Oracles,
		cfg.TypeCorrect, cfg.RiskyProb, cfg.ExtraFunctions,
		cfg.Threshold, cfg.Confidence, cfg.UpdateInterval,
		cfg.DDLMaxFailures, cfg.StartDepth, cfg.MaxDepth,
		cfg.DepthInterval, cfg.MaxPlansPerQuery, cfg.NoPlanPairSched,
		cfg.ReduceBugs, cfg.PerfCostLimit, cfg.RowBudget,
		cfg.KeepAllCases, h.Sum64(), ph.Sum64())
}

// RunShardedOpts is RunSharded with checkpoint/resume and interruption
// support. Progress is saved at shard granularity: each completed
// shard's report is written to the checkpoint before the next one is
// merged in, so an interrupted campaign loses at most the shards that
// were in flight.
func RunShardedOpts(cfg Config, opts ShardedOptions) (*Report, error) {
	if cfg.Dialect == nil {
		return nil, fmt.Errorf("campaign: no dialect configured")
	}
	cfg = cfg.withDefaults()
	shards := shardConfigs(cfg)
	nShards := len(shards)
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > nShards {
		workers = nShards
	}

	cp := &checkpointFile{
		Version:     checkpointVersion,
		Fingerprint: fingerprint(cfg),
		TotalShards: nShards,
		Seeds:       make([]int64, nShards),
		Shards:      make([]*Report, nShards),
	}
	for i, sc := range shards {
		cp.Seeds[i] = sc.Seed
	}
	if opts.Resume && opts.CheckpointPath != "" {
		if err := loadCheckpoint(opts.CheckpointPath, cp); err != nil {
			return nil, err
		}
	}

	var mu sync.Mutex
	err := par.ForEach(nShards, workers, func(i int) error {
		if cp.Shards[i] != nil {
			return nil // restored from the checkpoint
		}
		select {
		case <-opts.Interrupt:
			return ErrInterrupted
		default:
		}
		runner, err := New(shards[i])
		if err != nil {
			return err
		}
		rep, err := runner.Run()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		cp.Shards[i] = rep
		if opts.CheckpointPath != "" {
			return saveCheckpoint(opts.CheckpointPath, cp)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged, err := mergeReports(cfg, cp.Shards)
	if err != nil {
		return nil, err
	}
	if opts.CheckpointPath != "" {
		os.Remove(opts.CheckpointPath) // campaign complete; nothing to resume
	}
	return merged, nil
}

// loadCheckpoint restores completed shards from path into cp after
// validating that the checkpoint belongs to this exact campaign. A
// missing file is not an error: the run simply starts from scratch.
func loadCheckpoint(path string, cp *checkpointFile) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("campaign: reading checkpoint: %w", err)
	}
	var old checkpointFile
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("campaign: parsing checkpoint %s: %w", path, err)
	}
	if old.Version != cp.Version {
		return fmt.Errorf("campaign: checkpoint %s has version %d, want %d",
			path, old.Version, cp.Version)
	}
	if old.Fingerprint != cp.Fingerprint {
		return fmt.Errorf("campaign: checkpoint %s was recorded for a different configuration", path)
	}
	if old.TotalShards != cp.TotalShards ||
		len(old.Shards) != cp.TotalShards || len(old.Seeds) != cp.TotalShards {
		return fmt.Errorf("campaign: checkpoint %s shard layout does not match", path)
	}
	for i, s := range old.Seeds {
		if s != cp.Seeds[i] {
			return fmt.Errorf("campaign: checkpoint %s shard %d seed mismatch", path, i)
		}
	}
	copy(cp.Shards, old.Shards)
	return nil
}

// saveCheckpoint writes cp to path atomically: the JSON goes to a temp
// file first and replaces the checkpoint via rename, so a crash during
// the write can never leave a torn checkpoint behind.
func saveCheckpoint(path string, cp *checkpointFile) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("campaign: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("campaign: committing checkpoint: %w", err)
	}
	return nil
}
