package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sqlancerpp/internal/chaos"
	"sqlancerpp/internal/par"
)

// ErrInterrupted reports that RunShardedOpts stopped at a shard boundary
// because the Interrupt channel closed. Completed shards are already
// checkpointed (when a checkpoint path is configured); a later Resume
// run continues exactly where this one stopped and produces a final
// report byte-identical to an uninterrupted run.
var ErrInterrupted = errors.New("campaign: interrupted")

// Supervisor defaults: a transient shard failure gets two more chances,
// spaced by a doubling backoff capped at 8x the base.
const (
	DefaultShardRetries = 2
	DefaultRetryBackoff = 50 * time.Millisecond
	maxBackoffFactor    = 8
)

// ShardedOptions parameterizes RunShardedOpts.
type ShardedOptions struct {
	// Workers bounds concurrent shard execution (minimum 1). The worker
	// count never affects the merged report, only wall-clock time.
	Workers int
	// CheckpointPath, when set, persists campaign progress: after every
	// completed shard the per-shard reports (each carrying its tracker's
	// feedback state) and the shard seed table are written atomically
	// (unique temp file + fsync + rename, with the previous generation
	// rotated to CheckpointPath+".bak") to this path. Write failures
	// degrade the campaign (counted in Report.CheckpointWriteFailures)
	// instead of aborting it. Both generations are removed once the
	// campaign completes.
	CheckpointPath string
	// Resume loads CheckpointPath before running and skips the shards it
	// already holds. The checkpoint's configuration fingerprint must
	// match the resolved configuration; a missing file starts fresh, and
	// a corrupt file falls back to the ".bak" last-known-good generation
	// (or a fresh start) instead of refusing to resume.
	Resume bool
	// Interrupt, when closed, stops the run at the next shard boundary
	// with ErrInterrupted. Shards already in flight finish and are
	// checkpointed; shards not yet started never start.
	Interrupt <-chan struct{}
	// MaxShardRetries is how many times the supervisor re-runs a shard
	// whose attempt failed (error or recovered panic) before
	// quarantining it: 0 selects DefaultShardRetries, negative disables
	// retries. A quarantined shard contributes an explicit placeholder
	// to the merge — the campaign completes degraded, never aborts on a
	// shard failure.
	MaxShardRetries int
	// RetryBackoff is the base delay between attempts of one shard
	// (doubling per retry, capped at 8x): 0 selects DefaultRetryBackoff,
	// negative disables the delay (tests).
	RetryBackoff time.Duration
}

// checkpointVersion is bumped whenever the checkpoint layout or the
// shard partitioning scheme changes incompatibly. Version 2 wraps the
// payload in a checksummed envelope and adds the ".bak" generation.
const checkpointVersion = 2

// checkpointEnvelope is the on-disk frame around the checkpoint payload:
// a version and an FNV-1a content checksum that makes every checkpoint
// self-verifying. A torn or bit-flipped file fails the checksum and is
// treated as corrupt (salvageable), while a version or fingerprint
// mismatch inside an *intact* file stays a hard error — corruption and
// misuse must not be confused.
type checkpointEnvelope struct {
	Version  int
	Checksum string
	Payload  json.RawMessage
}

// checkpointFile is the serialized campaign progress: which shards have
// completed and their full reports. Reports round-trip losslessly
// through JSON (every field is exported; FeedbackState is base64), which
// is what makes a resumed merge byte-identical to an uninterrupted one.
type checkpointFile struct {
	// Fingerprint pins the resolved configuration (including an FNV-1a
	// hash of the warm-start feedback state) so a checkpoint cannot be
	// resumed under a different campaign setup.
	Fingerprint string
	TotalShards int
	// Seeds holds each shard's derived seed — the next-seed cursor in
	// table form, doubling as a guard against partitioning drift.
	Seeds []int64
	// Shards is indexed by shard ordinal; nil marks an incomplete shard.
	Shards []*Report
}

// errCkptCorrupt marks a checkpoint generation that cannot be trusted:
// unreadable, unparseable, or failing its checksum. loadCheckpoint
// responds by salvaging the previous generation, never by aborting.
var errCkptCorrupt = errors.New("campaign: checkpoint corrupt")

// errInjected is the error chaos-injected infrastructure faults surface.
var errInjected = errors.New("injected chaos fault")

// fingerprintExcluded declares, next to the code it governs, the Config
// fields deliberately NOT rendered by fingerprint(), keyed by field name
// with the reason each exclusion is sound. The sqlint fingerprint
// analyzer (internal/analysis) reads this declaration and fails `go vet`
// whenever a Config field is neither rendered in fingerprint() nor
// listed here — so a new knob can skew -resume only after being argued
// about in review, never by being forgotten.
var fingerprintExcluded = map[string]string{
	"Policy":      "behavior value, unrenderable: checkpointed runs must configure via Mode (which is fingerprinted)",
	"UseTLP":      "legacy toggle: withDefaults resolves it into Oracles (fingerprinted) before fingerprint runs",
	"UseNoREC":    "legacy toggle: withDefaults resolves it into Oracles (fingerprinted) before fingerprint runs",
	"BatchSize":   "execution is observationally identical at every batch width (columnar parity contract)",
	"CaseTimeout": "wall-clock watchdog is host-dependent infrastructure; hangs never feed reports or validity",
	"Chaos":       "injected infrastructure faults must be survivable — including by a chaos-free -resume",
	"Coverage":    "observer sink: records engine coverage and never feeds generation or the report",
}

// Compile-time guard for the exclusion list: every excluded field must
// still exist on Config under exactly these names, so a rename breaks
// this keyed literal before the analyzer even runs. (The analyzer
// separately rejects stale or contradictory entries.)
var _ = Config{
	Policy:      nil,
	UseTLP:      false,
	UseNoREC:    false,
	BatchSize:   0,
	CaseTimeout: 0,
	Chaos:       nil,
	Coverage:    nil,
}

// fingerprint renders the resolved configuration fields that determine a
// campaign's behavior; fingerprintExcluded declares (with reasons) the
// fields deliberately left out, and the sqlint fingerprint analyzer
// holds the two views exhaustive over Config.
func fingerprint(cfg Config) string {
	h := fnv.New64a()
	h.Write(cfg.FeedbackState)
	ph := fnv.New64a()
	ph.Write(cfg.PlanPairState)
	return fmt.Sprintf("d=%s m=%d tc=%d ss=%d cpd=%d se=%d seed=%d or=%v tco=%t rp=%g ef=%v th=%g cf=%g ui=%d df=%d sd=%d md=%d di=%d mp=%d nps=%t rb=%t pcl=%d budget=%d kac=%t fs=%x pps=%x",
		cfg.Dialect.Name, cfg.Mode, cfg.TestCases, cfg.SetupStmts,
		cfg.CasesPerDB, cfg.SmokeEvery, cfg.Seed, cfg.Oracles,
		cfg.TypeCorrect, cfg.RiskyProb, cfg.ExtraFunctions,
		cfg.Threshold, cfg.Confidence, cfg.UpdateInterval,
		cfg.DDLMaxFailures, cfg.StartDepth, cfg.MaxDepth,
		cfg.DepthInterval, cfg.MaxPlansPerQuery, cfg.NoPlanPairSched,
		cfg.ReduceBugs, cfg.PerfCostLimit, cfg.RowBudget,
		cfg.KeepAllCases, h.Sum64(), ph.Sum64())
}

// RunShardedOpts is RunSharded with supervision, checkpoint/resume, and
// interruption support. Progress is saved at shard granularity: each
// completed shard's report is written to the checkpoint before the next
// one is merged in, so an interrupted campaign loses at most the shards
// that were in flight. Shard failures are retried and then quarantined
// (see ShardedOptions.MaxShardRetries); checkpoint write failures are
// counted, not fatal. Only configuration errors and interruption abort
// the run.
func RunShardedOpts(cfg Config, opts ShardedOptions) (*Report, error) {
	if cfg.Dialect == nil {
		return nil, fmt.Errorf("campaign: no dialect configured")
	}
	cfg = cfg.withDefaults()
	shards := shardConfigs(cfg)
	nShards := len(shards)
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > nShards {
		workers = nShards
	}
	maxRetries := opts.MaxShardRetries
	if maxRetries == 0 {
		maxRetries = DefaultShardRetries
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	backoff := opts.RetryBackoff
	if backoff == 0 {
		backoff = DefaultRetryBackoff
	} else if backoff < 0 {
		backoff = 0
	}

	cp := &checkpointFile{
		Fingerprint: fingerprint(cfg),
		TotalShards: nShards,
		Seeds:       make([]int64, nShards),
		Shards:      make([]*Report, nShards),
	}
	for i, sc := range shards {
		cp.Seeds[i] = sc.Seed
	}
	if opts.Resume && opts.CheckpointPath != "" {
		if err := loadCheckpoint(opts.CheckpointPath, cp); err != nil {
			return nil, err
		}
	}

	var mu sync.Mutex
	ckptFailures := 0
	err := par.ForEach(nShards, workers, func(i int) error {
		if cp.Shards[i] != nil {
			return nil // restored from the checkpoint
		}
		select {
		case <-opts.Interrupt:
			return ErrInterrupted
		default:
		}
		rep, err := runShardSupervised(shards[i], i, maxRetries, backoff)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		cp.Shards[i] = rep
		if opts.CheckpointPath != "" {
			if serr := saveCheckpoint(opts.CheckpointPath, cp, cfg.Chaos); serr != nil {
				// Degrade, don't abort: the campaign keeps running and
				// only risks redoing this generation's shards on a crash.
				ckptFailures++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged, err := mergeReports(cfg, cp.Shards)
	if err != nil {
		return nil, err
	}
	merged.CheckpointWriteFailures += ckptFailures
	if opts.CheckpointPath != "" {
		// Campaign complete; nothing to resume. A failed removal is a real
		// error — a stale checkpoint would resurrect this run's shards
		// into the next campaign that reuses the path.
		for _, p := range []string{opts.CheckpointPath, opts.CheckpointPath + ".bak"} {
			if rerr := os.Remove(p); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
				return nil, fmt.Errorf("campaign: removing completed checkpoint: %w", rerr)
			}
		}
	}
	return merged, nil
}

// runShardSupervised runs one shard under the supervisor's retry policy:
// a failed attempt (error or recovered panic) is retried with doubling
// capped backoff; when every attempt fails the shard is quarantined —
// the returned placeholder report carries the failure and contributes
// nothing else to the merge. Configuration errors are fatal immediately:
// they would fail identically on every retry and on every other shard.
func runShardSupervised(sc Config, shard, maxRetries int, backoff time.Duration) (*Report, error) {
	var lastErr error
	for attempt := 1; attempt <= maxRetries+1; attempt++ {
		if attempt > 1 && backoff > 0 {
			d := backoff << (attempt - 2)
			if d > maxBackoffFactor*backoff {
				d = maxBackoffFactor * backoff
			}
			time.Sleep(d)
		}
		rep, fatal, err := runShardAttempt(sc, shard, attempt)
		if err == nil {
			rep.ShardRetries = attempt - 1
			return rep, nil
		}
		if fatal {
			return nil, err
		}
		lastErr = err
	}
	return &Report{
		Quarantined:   true,
		QuarantineErr: lastErr.Error(),
		ShardRetries:  maxRetries,
	}, nil
}

// runShardAttempt executes one attempt at one shard behind a recovery
// boundary: a panic anywhere in the shard's runner becomes a retryable
// error with a deterministic message (no stack — retry accounting must
// not vary with scheduling). fatal marks configuration errors, which
// retrying cannot fix.
func runShardAttempt(sc Config, shard, attempt int) (rep *Report, fatal bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			rep, fatal, err = nil, false,
				fmt.Errorf("campaign: shard %d attempt %d panicked: %v", shard, attempt, p)
		}
	}()
	switch sc.Chaos.ShardFault(shard, attempt) {
	case chaos.ShardFailError:
		return nil, false, fmt.Errorf("campaign: shard %d attempt %d: %w", shard, attempt, errInjected)
	case chaos.ShardFailPanic:
		panic(fmt.Sprintf("%v (shard %d attempt %d)", errInjected, shard, attempt))
	}
	runner, err := New(sc)
	if err != nil {
		return nil, true, err
	}
	rep, err = runner.Run()
	if err != nil {
		return nil, false, err
	}
	return rep, false, nil
}

// loadCheckpoint restores completed shards from path into cp after
// validating that the checkpoint belongs to this exact campaign. A
// missing file is not an error (the run starts from scratch), and a
// corrupt primary falls back to the ".bak" last-known-good generation —
// then to a fresh start — instead of refusing to resume. Version,
// fingerprint, and shard-layout mismatches in an intact file remain hard
// errors: they mean the checkpoint is someone else's, not that it is
// damaged.
func loadCheckpoint(path string, cp *checkpointFile) error {
	old, err := loadCheckpointFile(path)
	switch {
	case err == nil:
	case errors.Is(err, os.ErrNotExist):
		return nil
	case errors.Is(err, errCkptCorrupt):
		bak, bakErr := loadCheckpointFile(path + ".bak")
		switch {
		case bakErr == nil:
			old = bak
		case errors.Is(bakErr, os.ErrNotExist), errors.Is(bakErr, errCkptCorrupt):
			return nil // both generations unusable: start fresh
		default:
			return bakErr
		}
	default:
		return err
	}
	if old.Fingerprint != cp.Fingerprint {
		return fmt.Errorf("campaign: checkpoint %s was recorded for a different configuration", path)
	}
	if old.TotalShards != cp.TotalShards ||
		len(old.Shards) != cp.TotalShards || len(old.Seeds) != cp.TotalShards {
		return fmt.Errorf("campaign: checkpoint %s shard layout does not match", path)
	}
	for i, s := range old.Seeds {
		if s != cp.Seeds[i] {
			return fmt.Errorf("campaign: checkpoint %s shard %d seed mismatch", path, i)
		}
	}
	copy(cp.Shards, old.Shards)
	return nil
}

// loadCheckpointFile reads and verifies one checkpoint generation.
// Unreadable bytes, a broken envelope, a failed checksum, or an
// undecodable payload all report errCkptCorrupt (salvageable); an intact
// envelope with the wrong version is a hard error.
func loadCheckpointFile(path string) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: reading %s: %v", errCkptCorrupt, path, err)
	}
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: parsing %s: %v", errCkptCorrupt, path, err)
	}
	if env.Version != checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d",
			path, env.Version, checkpointVersion)
	}
	if env.Checksum != ckptChecksum(env.Payload) {
		return nil, fmt.Errorf("%w: %s checksum mismatch", errCkptCorrupt, path)
	}
	var cf checkpointFile
	if err := json.Unmarshal(env.Payload, &cf); err != nil {
		return nil, fmt.Errorf("%w: decoding %s payload: %v", errCkptCorrupt, path, err)
	}
	return &cf, nil
}

// ckptChecksum is the envelope's content checksum: FNV-1a-64 over the
// payload bytes, hex-rendered. Not cryptographic — it defends against
// torn writes and bit rot, not adversaries.
func ckptChecksum(payload []byte) string {
	h := fnv.New64a()
	h.Write(payload)
	return fmt.Sprintf("%016x", h.Sum64())
}

// saveCheckpoint writes cp to path atomically and durably: the
// checksummed envelope goes to a unique O_EXCL temp file in the same
// directory (concurrent campaigns sharing a path can no longer clobber
// each other's temp), is fsynced, and replaces the checkpoint via
// rename — with the previous generation first rotated to path+".bak" as
// the salvage target for torn-write recovery. The inj sites fault each
// stage deterministically under chaos testing; inj is nil in production.
func saveCheckpoint(path string, cp *checkpointFile, inj *chaos.Injector) error {
	if inj.CheckpointFault(chaos.CheckpointMarshal) {
		return fmt.Errorf("campaign: encoding checkpoint: %w", errInjected)
	}
	payload, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint: %w", err)
	}
	data, err := json.Marshal(checkpointEnvelope{
		Version:  checkpointVersion,
		Checksum: ckptChecksum(payload),
		Payload:  payload,
	})
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint envelope: %w", err)
	}
	if inj.CheckpointFault(chaos.CheckpointTorn) {
		// A torn write that still commits: half the bytes reach the final
		// rename. The checksum catches it on load and the .bak generation
		// salvages the resume.
		data = data[:len(data)/2]
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: creating checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil && inj.CheckpointFault(chaos.CheckpointWrite) {
		err = errInjected
	}
	if err == nil {
		// fsync before rename: the rename must never become visible ahead
		// of the data it points at.
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: writing checkpoint: %w", err)
	}
	// Rotate the current generation to last-known-good. Between this
	// rename and the next, path does not exist — a crash in that window
	// resumes from .bak, which is exactly what .bak is for.
	if err := os.Rename(path, path+".bak"); err != nil && !errors.Is(err, os.ErrNotExist) {
		os.Remove(tmp)
		return fmt.Errorf("campaign: rotating checkpoint generation: %w", err)
	}
	if inj.CheckpointFault(chaos.CheckpointRename) {
		os.Remove(tmp)
		return fmt.Errorf("campaign: committing checkpoint: %w", errInjected)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: committing checkpoint: %w", err)
	}
	return nil
}
