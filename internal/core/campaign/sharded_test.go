package campaign

import (
	"bytes"
	"encoding/json"
	"testing"

	"sqlancerpp/internal/core/feedback"
	"sqlancerpp/internal/dialect"
)

func shardedCfg(t *testing.T, cases int, seed int64) Config {
	t.Helper()
	return Config{
		Dialect:      dialect.MustGet("sqlite"),
		Mode:         Adaptive,
		TestCases:    cases,
		Seed:         seed,
		KeepAllCases: true,
	}
}

// marshalReport canonicalizes a report for byte-wise comparison.
func marshalReport(t *testing.T, rep *Report) []byte {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunShardedDeterministicAcrossWorkers is the tentpole guarantee:
// the same seed yields a byte-identical report for every worker count.
// The workers == 1 run executes the shards serially, so this is also the
// serial-vs-parallel equivalence check; go test -race guards the
// parallel run's memory safety.
func TestRunShardedDeterministicAcrossWorkers(t *testing.T) {
	serial, err := RunSharded(shardedCfg(t, 800, 7), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, err := RunSharded(shardedCfg(t, 800, 7), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, serial), marshalReport(t, par)) {
			t.Fatalf("workers=%d report differs from the serial run", workers)
		}
	}
}

// TestRunShardedBugSetMatchesSerial spells the acceptance criterion out
// on the bug set and feedback state specifically: identical bug IDs,
// ground truth, and learned state between the serial run and workers=4.
func TestRunShardedBugSetMatchesSerial(t *testing.T) {
	serial, err := RunSharded(shardedCfg(t, 600, 42), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSharded(shardedCfg(t, 600, 42), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Bugs) == 0 {
		t.Fatal("campaign found no bugs; the comparison is vacuous")
	}
	if len(serial.Bugs) != len(par.Bugs) {
		t.Fatalf("bug counts differ: serial %d vs parallel %d", len(serial.Bugs), len(par.Bugs))
	}
	for i := range serial.Bugs {
		a, b := serial.Bugs[i], par.Bugs[i]
		if a.ID != b.ID || a.Class != b.Class || a.Detail != b.Detail {
			t.Fatalf("bug %d differs: %+v vs %+v", i, a, b)
		}
	}
	if !equalStrings(serial.GroundTruthFaults, par.GroundTruthFaults) {
		t.Fatalf("ground-truth fault sets differ: %v vs %v",
			serial.GroundTruthFaults, par.GroundTruthFaults)
	}
	if !bytes.Equal(serial.FeedbackState, par.FeedbackState) {
		t.Fatal("merged feedback states differ")
	}
	if serial.UniqueGroundTruth != len(serial.GroundTruthFaults) {
		t.Fatalf("UniqueGroundTruth %d != len(GroundTruthFaults) %d",
			serial.UniqueGroundTruth, len(serial.GroundTruthFaults))
	}
}

// TestRunShardedSeedSensitivity guards against a degenerate splitmix64
// wiring (all shards running the same stream): different seeds must
// change the outcome.
func TestRunShardedSeedSensitivity(t *testing.T) {
	a, err := RunSharded(shardedCfg(t, 400, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSharded(shardedCfg(t, 400, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(marshalReport(t, a), marshalReport(t, b)) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestRunShardedAccounting checks the merged counters add up.
func TestRunShardedAccounting(t *testing.T) {
	rep, err := RunSharded(shardedCfg(t, 500, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestCases != 500 {
		t.Fatalf("TestCases = %d, want 500", rep.TestCases)
	}
	if rep.FalsePositives != 0 {
		t.Fatalf("false positives: %d", rep.FalsePositives)
	}
	if rep.Prioritized != len(rep.Bugs) {
		t.Fatalf("Prioritized = %d but %d bugs kept", rep.Prioritized, len(rep.Bugs))
	}
	if rep.Detected != len(rep.AllCases) {
		t.Fatalf("Detected = %d but %d cases kept", rep.Detected, len(rep.AllCases))
	}
	byClass := 0
	for _, n := range rep.DetectedByClass {
		byClass += n
	}
	if byClass != rep.Detected {
		t.Fatalf("DetectedByClass sums to %d, want %d", byClass, rep.Detected)
	}
	// Bug IDs must be strictly increasing positions among detected cases.
	last := 0
	for _, b := range rep.Bugs {
		if b.ID <= last || b.ID > rep.Detected {
			t.Fatalf("bug ID %d out of order (prev %d, detected %d)", b.ID, last, rep.Detected)
		}
		last = b.ID
	}
}

func TestShardCount(t *testing.T) {
	base := Config{Dialect: dialect.MustGet("sqlite")}
	for _, tc := range []struct {
		cases, casesPerDB, want int
	}{
		{cases: 800, want: 4}, // default CasesPerDB = 200
		{cases: 801, want: 5}, // remainder gets its own shard
		{cases: 1, want: 1},   // tiny budget
		{cases: 0, want: 5},   // defaults: 1000 cases / 200 per DB
		{cases: 100, casesPerDB: 30, want: 4},
	} {
		cfg := base
		cfg.TestCases = tc.cases
		cfg.CasesPerDB = tc.casesPerDB
		if got := ShardCount(cfg); got != tc.want {
			t.Errorf("ShardCount(cases=%d, perDB=%d) = %d, want %d",
				tc.cases, tc.casesPerDB, got, tc.want)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRunShardedWarmStartCountsPriorOnce is the regression test for the
// prior-multiplication defect: every shard is seeded with the same
// warm-start FeedbackState, so the merged state must contain the prior's
// evidence exactly once, not once per shard.
func TestRunShardedWarmStartCountsPriorOnce(t *testing.T) {
	// Build a prior whose synthetic feature no campaign can observe.
	prior := feedback.New()
	for i := 0; i < 12; i++ {
		prior.RecordQuery([]string{"zz-synthetic-feature"}, i%2 == 0)
	}
	state, err := prior.Save()
	if err != nil {
		t.Fatal(err)
	}

	cfg := shardedCfg(t, 600, 9) // 3 shards
	cfg.FeedbackState = state
	rep, err := RunSharded(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}

	merged := feedback.New()
	if err := merged.Load(rep.FeedbackState); err != nil {
		t.Fatal(err)
	}
	n, y := merged.Stats("zz-synthetic-feature")
	if n != 12 || y != 6 {
		t.Fatalf("merged prior stats N=%d y=%d, want 12/6 (counted once, not per shard)", n, y)
	}
}
