package campaign

import (
	"bytes"
	"testing"

	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/faults"
)

// batchFaultDialect is a SQLite-family dialect carrying exactly one
// batch/covering-path fault site, so attribution is unambiguous.
func batchFaultDialect(name string, kind faults.Kind, param string) *dialect.Dialect {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = name
	d.Faults = faults.NewSet([]faults.Fault{
		{ID: name + "-f", Dialect: name, Class: faults.Logic, Kind: kind, Param: param},
	})
	return d
}

// TestReportBytesIdenticalAcrossBatchSizes is the batch executor's
// campaign-level determinism contract: the same configuration produces a
// byte-identical report at every batch width, including the
// row-at-a-time reference executor — the filter's results, cost,
// coverage, errors, and fault triggers cannot depend on how candidates
// are chunked.
func TestReportBytesIdenticalAcrossBatchSizes(t *testing.T) {
	run := func(batch int) []byte {
		r, err := New(Config{
			Dialect:      dialect.MustGet("sqlite"),
			Mode:         Adaptive,
			TestCases:    1500,
			Seed:         9,
			BatchSize:    batch,
			KeepAllCases: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Detected == 0 {
			t.Fatalf("batch=%d: campaign detected nothing; the determinism check is vacuous", batch)
		}
		return marshalReport(t, rep)
	}
	ref := run(-1) // row-at-a-time reference executor
	for _, batch := range []int{1, 7, 64, 1024} {
		if got := run(batch); !bytes.Equal(got, ref) {
			t.Fatalf("batch=%d report differs from the row-at-a-time reference", batch)
		}
	}
}

// TestShardedReportBytesIdenticalAcrossBatchSizes crosses the two
// determinism axes: sharded reports must stay byte-identical across
// worker counts AND batch widths simultaneously.
func TestShardedReportBytesIdenticalAcrossBatchSizes(t *testing.T) {
	run := func(workers, batch int) []byte {
		cfg := Config{
			Dialect:      dialect.MustGet("sqlite"),
			Mode:         Adaptive,
			TestCases:    800,
			Seed:         7,
			BatchSize:    batch,
			KeepAllCases: true,
		}
		rep, err := RunSharded(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		return marshalReport(t, rep)
	}
	ref := run(1, -1)
	for _, workers := range []int{1, 3} {
		for _, batch := range []int{-1, 7, 64, 1024} {
			if workers == 1 && batch == -1 {
				continue
			}
			if got := run(workers, batch); !bytes.Equal(got, ref) {
				t.Fatalf("workers=%d batch=%d report differs from serial row-at-a-time",
					workers, batch)
			}
		}
	}
}

// TestBatchFaultSitesFound is the acceptance criterion for the
// vectorized-filter and covering-projection fault families: a seeded
// campaign over a dialect carrying one of the new defects reports at
// least one logic bug attributed to it — the generator's sargable
// predicates and composite indexes must therefore reach the lane
// kernels and the index-only serving path — with zero false positives.
func TestBatchFaultSitesFound(t *testing.T) {
	for _, tc := range []struct {
		name  string
		kind  faults.Kind
		param string
		cases int
		setup int // 0 = default; BatchTailDrop needs joined candidate streams >64 rows
	}{
		{"batch-accept-vecnull", faults.VecCompareNullTrue, "=", 4000, 0},
		{"batch-accept-coverswap", faults.CoveringIndexProjSwap, "", 6000, 0},
		{"batch-accept-taildrop", faults.BatchTailDrop, "", 4000, 40},
	} {
		r, err := New(Config{
			Dialect:      batchFaultDialect(tc.name, tc.kind, tc.param),
			Mode:         Adaptive,
			TestCases:    tc.cases,
			Seed:         2,
			SetupStmts:   tc.setup,
			KeepAllCases: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.FalsePositives != 0 {
			t.Fatalf("%s: %d false positives — a batch execution path is unsound",
				tc.name, rep.FalsePositives)
		}
		attributed := 0
		for _, b := range rep.AllCases {
			if b.Class != ClassLogic {
				continue
			}
			for _, id := range b.Triggered {
				if id == tc.name+"-f" {
					attributed++
				}
			}
		}
		if attributed == 0 {
			t.Errorf("%s: no logic bug attributed (detected=%d)", tc.name, rep.Detected)
		}
		t.Logf("%s: attributed=%d detected=%d validity=%.1f%%",
			tc.name, attributed, rep.Detected, 100*rep.ValidityRate())
	}
}
