// Package campaign orchestrates a SQLancer++ testing run (paper Figure
// 2): the adaptive statement generator builds a database state while
// maintaining the schema model, issues oracle-checked queries, feeds
// execution statuses back into the Bayesian tracker, prioritizes
// bug-inducing cases by feature-set subsumption, and reduces the
// prioritized ones.
package campaign

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"sqlancerpp/internal/chaos"
	"sqlancerpp/internal/core/feedback"
	"sqlancerpp/internal/core/gen"
	"sqlancerpp/internal/core/oracle"
	"sqlancerpp/internal/core/prioritize"
	"sqlancerpp/internal/core/reduce"
	"sqlancerpp/internal/coverage"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/sqlast"
)

// Mode selects the generator policy, matching the paper's configurations.
type Mode int

// Modes.
const (
	// Adaptive is SQLancer++ with validity feedback enabled.
	Adaptive Mode = iota
	// Rand is SQLancer++ without feedback ("SQLancer++ Rand").
	Rand
	// Baseline is the hand-written per-DBMS generator stand-in
	// ("SQLancer"): it knows the dialect's exact feature matrix.
	Baseline
)

// String returns the paper's label for the mode.
func (m Mode) String() string {
	switch m {
	case Adaptive:
		return "SQLancer++"
	case Rand:
		return "SQLancer++ Rand"
	default:
		return "SQLancer"
	}
}

// Config parameterizes a campaign run.
type Config struct {
	Dialect *dialect.Dialect
	Mode    Mode
	// Policy overrides the mode's default policy (used by the baseline
	// package and by tests).
	Policy gen.Policy
	// ExtraFunctions extends the generator grammar (baseline mode).
	ExtraFunctions []string
	// TypeCorrect forces type-correct generation (baseline mode on
	// statically typed dialects).
	TypeCorrect bool
	// RiskyProb forwards to the generator (baseline mode sets it high).
	RiskyProb float64

	// TestCases is the number of oracle checks to run (the time-budget
	// stand-in; the paper uses wall-clock hours).
	TestCases int
	// SetupStmts is the number of DDL/DML statements per database state.
	SetupStmts int
	// CasesPerDB re-creates the database state every N test cases.
	CasesPerDB int
	// SmokeEvery issues one free-form (non-oracle) query every N cases,
	// exercising the full clause grammar.
	SmokeEvery int

	Seed int64
	// Oracles selects oracles by registry name; empty derives from the
	// legacy UseTLP/UseNoREC flags, and with those unset too, every
	// registered oracle runs (TLP, TLPComposed, TLPAggregate, NoREC,
	// PlanDiff). Dispatch rotates deterministically over the selection,
	// weighted by each oracle's registered rotation weight.
	Oracles []oracle.Name
	// UseTLP / UseNoREC are the legacy oracle toggles: UseTLP selects the
	// TLP family, UseNoREC selects NoREC, both selects both (never
	// PlanDiff — legacy callers get exactly what they configured).
	// Ignored when Oracles is set.
	UseTLP   bool
	UseNoREC bool

	// Threshold, Confidence, UpdateInterval, DDLMaxFailures configure the
	// Bayesian tracker (zero selects the paper defaults).
	Threshold      float64
	Confidence     float64
	UpdateInterval int
	DDLMaxFailures int

	// Depth schedule overrides (zero selects 1→3, the paper's setting).
	StartDepth    int
	MaxDepth      int
	DepthInterval int

	// MaxPlansPerQuery caps the plan specs the PlanDiff oracle diffs per
	// query (the -plans flag): 0 selects oracle.DefaultMaxPlans, negative
	// is unlimited. With the plan-pair scheduler on (the default), the
	// cap buys unseen (shape, spec) pairs first; Report.PlanPairsNovel /
	// PlanPairsRepeated show the split.
	MaxPlansPerQuery int
	// NoPlanPairSched disables the plan-pair novelty scheduler: PlanDiff
	// falls back to truncating the canonical enumeration order, with no
	// pair tracking or enumeration memo. The zero value keeps the
	// scheduler on.
	NoPlanPairSched bool

	// ReduceBugs runs the reducer on prioritized logic and harness bugs.
	ReduceBugs bool
	// RowBudget caps the rows any single statement may touch (scans, join
	// probes, DML collection) before the engine aborts it with
	// ErrBudgetExceeded. The budget is counted in rows, not wall-clock
	// time, so budget-exceeded cases skip identically at any worker count;
	// they are tallied in Report.BudgetExceeded and never reported as
	// bugs. 0 disables the budget.
	RowBudget int64
	// BatchSize sets the engine's columnar batch width (the -batch flag):
	// 0 selects engine.DefaultBatchSize, negative selects the
	// row-at-a-time reference executor. Execution is observationally
	// identical at every width, so campaign reports are byte-identical
	// across batch sizes.
	BatchSize int
	// PerfCostLimit flags queries whose executor cost exceeds the limit
	// as performance bugs (0 disables).
	PerfCostLimit int64
	// CaseTimeout bounds each contained execution unit's wall-clock time
	// (the -timeout flag): a watchdog timer armed per oracle case (and
	// per setup/smoke statement) sets a cooperative cancel flag that the
	// engine polls at its zero-alloc row-budget sites, failing the case
	// with ErrTimeout. Timed-out cases are tallied in Report.Hangs and
	// recorded as ClassHang bugs with their seed for offline replay; they
	// are never logic bugs and never false positives. 0 disables the
	// watchdog. Unlike RowBudget this is wall-clock and therefore
	// host-dependent; it is excluded from the checkpoint fingerprint.
	CaseTimeout time.Duration
	// Chaos, when set, injects *infrastructure* faults (checkpoint
	// write/corruption failures, shard errors and panics, case stalls) to
	// exercise the supervisor's recovery paths — see internal/chaos. It
	// is entirely separate from the dialect's DBMS logic-fault catalog:
	// chaos faults must be survived, never reported as bugs. nil (the
	// default) injects nothing; excluded from the checkpoint fingerprint
	// so a chaos-free resume can recover a chaos-interrupted run.
	Chaos *chaos.Injector

	// Coverage, when set, records engine coverage.
	Coverage *coverage.Recorder
	// KeepAllCases retains every detected case (features + ground truth
	// only) in Report.AllCases — used by the prioritizer ablation.
	KeepAllCases bool
	// FeedbackState, when set, seeds the tracker (paper Figure 5: the
	// learned probabilities can be persisted and reloaded).
	FeedbackState []byte
	// PlanPairState, when set, seeds the plan-pair tracker with a prior
	// run's Report.PlanPairState — the resume path that keeps a restarted
	// campaign from re-diffing pairs it already covered.
	PlanPairState []byte
}

// BugClass labels a bug-inducing case.
type BugClass string

// Bug classes (paper §6).
const (
	ClassLogic BugClass = "logic"
	ClassCrash BugClass = "crash"
	ClassError BugClass = "error"
	ClassPerf  BugClass = "perf"
	// ClassHarness marks a Go panic recovered at the campaign's
	// containment boundary: the engine (or an oracle) panicked instead of
	// returning an error. The report carries the statement trace and a
	// sanitized stack; the poisoned instance is restarted and the
	// campaign continues.
	ClassHarness BugClass = "harness"
	// ClassHang marks a case aborted by the per-case wall-clock watchdog
	// (Config.CaseTimeout): execution exceeded its time bound and was
	// cooperatively canceled. The report carries the case's seed and
	// ordinal so the hang can be replayed offline without a timeout.
	// Hangs carry no ground-truth fault by construction and are exempt
	// from false-positive accounting.
	ClassHang BugClass = "hang"
)

// BugCase is one bug-inducing test case.
type BugCase struct {
	ID     int
	Class  BugClass
	Oracle oracle.Name
	// Seq is the originating test case's campaign ordinal (logic bugs
	// only): oracles that derive internal choices from the ordinal
	// (TLPAggregate) are replayed with it during reduction.
	Seq      int
	Setup    []string // DDL/DML statements that built the database state
	Queries  []string // the oracle's queries (or the failing statement)
	Features []string
	Detail   string
	// PlanSpec is the serialized losing plan spec of a PlanDiff bug (the
	// enumerated plan whose result diverged from the baseline); the
	// reducer replays the case against exactly this plan pair.
	PlanSpec string
	// Triggered is ground truth: the injected fault IDs that fired.
	Triggered []string
	// Duplicate marks cases the prioritizer deprioritized.
	Duplicate bool
	// Reduced holds the reduced statement sequence (prioritized logic
	// bugs only, when reduction is enabled).
	Reduced []string
}

// Report summarizes a campaign.
type Report struct {
	Dialect string
	Mode    string

	// Detected counts all bug-inducing test cases; Prioritized those the
	// prioritizer reported; UniqueGroundTruth the distinct injected
	// faults among the detected cases (the paper's "unique bugs",
	// determined there by fix commits).
	Detected           int
	Prioritized        int
	UniqueGroundTruth  int
	UniquePrioritized  int
	DetectedByClass    map[BugClass]int
	PrioritizedByClass map[BugClass]int

	// FalsePositives counts bug reports with no ground-truth fault — any
	// non-zero value indicates a defect in this engine, not a found bug.
	FalsePositives int

	// PlanPairsNovel and PlanPairsRepeated count the plan specs PlanDiff
	// executed whose (query shape, spec) pair its tracker had not / had
	// already diffed. Summed across shards; the ratio is the scheduler's
	// effectiveness ("observations per unit of budget").
	PlanPairsNovel    int
	PlanPairsRepeated int

	// HarnessCrashes counts Go panics recovered at the containment
	// boundary and converted into ClassHarness bug cases. Summed across
	// shards like the plan-pair counters.
	HarnessCrashes int
	// BudgetExceeded counts statements aborted by the deterministic
	// rows-touched budget (Config.RowBudget). Budget-exceeded cases are
	// skipped — no validity feedback, never a bug report.
	BudgetExceeded int

	// The robustness counters below are zero on fault-free runs and
	// tagged omitempty, so a chaos-free report's JSON stays byte-identical
	// to reports from builds that predate them.

	// Hangs counts cases aborted by the per-case wall-clock watchdog
	// (Config.CaseTimeout); each also appears as a ClassHang bug case.
	Hangs int `json:",omitempty"`
	// ShardRetries counts shard attempts that failed and were retried by
	// the supervisor (summed across shards in a merged report).
	ShardRetries int `json:",omitempty"`
	// ShardsQuarantined counts shards whose every attempt failed; the
	// campaign completed degraded without their results. QuarantinedShards
	// records their seed ranges for offline replay.
	ShardsQuarantined int                `json:",omitempty"`
	QuarantinedShards []QuarantinedShard `json:",omitempty"`
	// CheckpointWriteFailures counts checkpoint saves that failed and
	// were degraded to a warning (the campaign keeps running; it just
	// loses that checkpoint generation's progress on a crash).
	CheckpointWriteFailures int `json:",omitempty"`

	// Quarantined marks a per-shard placeholder report: the shard's
	// supervisor exhausted its retries and this report carries no results,
	// only QuarantineErr. Merged reports never set it; they count such
	// placeholders in ShardsQuarantined instead.
	Quarantined   bool   `json:",omitempty"`
	QuarantineErr string `json:",omitempty"`

	// Validity statistics (paper Table 4): a test case is valid when all
	// its oracle queries executed.
	TestCases  int
	ValidCases int
	// Setup statement statistics.
	SetupTotal int
	SetupOK    int

	// Bugs holds the prioritized cases (duplicates are counted, not kept).
	Bugs []*BugCase
	// AllCases holds every detected case when Config.KeepAllCases is set.
	AllCases []*BugCase

	// FeedbackState is the tracker's final state for persistence.
	FeedbackState []byte
	// PlanPairState is the plan-pair tracker's final state (nil with the
	// scheduler disabled). It rides shard checkpoints losslessly and
	// merges by union, so resumed and sharded campaigns schedule — and
	// count — identically to uninterrupted serial ones.
	PlanPairState []byte
	// Unsupported lists the features learned to be unsupported.
	Unsupported []string
	// GroundTruthFaults lists the distinct injected fault IDs among all
	// detected cases, sorted (len == UniqueGroundTruth). Shard merging
	// unions these sets.
	GroundTruthFaults []string
}

// QuarantinedShard records one quarantined shard's seed range so the
// lost work can be replayed offline (the shard's derived seed plus its
// test-case count fully determine what it would have run).
type QuarantinedShard struct {
	Shard     int
	Seed      int64
	TestCases int
	Err       string
}

// ValidityRate returns valid/total test cases.
func (r *Report) ValidityRate() float64 {
	if r.TestCases == 0 {
		return 0
	}
	return float64(r.ValidCases) / float64(r.TestCases)
}

// Runner executes a campaign.
type Runner struct {
	cfg     Config
	tracker *feedback.Tracker
	g       *gen.Generator
	pri     *prioritize.Prioritizer
	report  *Report
	// sched is one cycle of the deterministic weighted oracle rotation;
	// test case n dispatches to sched[(n-1) % len(sched)].
	sched []oracle.Oracle

	// pairs and planMemo are the plan-pair novelty scheduler's state:
	// pairs persists across database epochs (shapes recur across states),
	// planMemo is reset with each epoch (it caches against the catalog).
	// Both nil with Config.NoPlanPairSched.
	pairs    *feedback.PairTracker
	planMemo *oracle.PlanEnumMemo

	// cancel is the per-case watchdog's cooperative cancellation flag,
	// shared with the main engine instance via WithCancel. nil when
	// Config.CaseTimeout is unset; replay instances never get it.
	cancel *atomic.Bool

	db    *engine.DB
	setup []*gen.Statement // successfully executed setup statements
	bugID int
	// allFaults accumulates every ground-truth fault triggered by a
	// detected bug case (unique-bug accounting).
	allFaults map[string]bool
}

// withDefaults resolves the zero-value configuration knobs. RunSharded
// applies it before partitioning so the shard layout is a function of the
// resolved configuration only.
func (cfg Config) withDefaults() Config {
	if cfg.TestCases == 0 {
		cfg.TestCases = 1000
	}
	if cfg.SetupStmts == 0 {
		cfg.SetupStmts = 14
	}
	if cfg.CasesPerDB == 0 {
		cfg.CasesPerDB = 200
	}
	if cfg.SmokeEvery == 0 {
		cfg.SmokeEvery = 5
	}
	if len(cfg.Oracles) == 0 {
		switch {
		case cfg.UseTLP && cfg.UseNoREC:
			cfg.Oracles = append(oracle.TLPFamily(), oracle.NoRECName)
		case cfg.UseTLP:
			cfg.Oracles = oracle.TLPFamily()
		case cfg.UseNoREC:
			cfg.Oracles = []oracle.Name{oracle.NoRECName}
		default:
			cfg.Oracles = oracle.DefaultNames()
		}
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = engine.DefaultBatchSize
	}
	if cfg.Threshold == 0 {
		// The paper's p = 1% needs ~300 zero-success observations per
		// feature — proportionate to its 100K-statement update windows.
		// Scaled-down budgets use 5% so the posterior concludes after
		// ~60 observations; see EXPERIMENTS.md.
		cfg.Threshold = 0.05
	}
	return cfg
}

// newTracker builds the Bayesian tracker for a resolved configuration
// (shared by New and the shard merger).
func newTracker(cfg Config) *feedback.Tracker {
	var topts []feedback.Option
	if cfg.Threshold > 0 {
		topts = append(topts, feedback.WithThreshold(cfg.Threshold))
	}
	if cfg.Confidence > 0 {
		topts = append(topts, feedback.WithConfidence(cfg.Confidence))
	}
	if cfg.UpdateInterval > 0 {
		topts = append(topts, feedback.WithUpdateInterval(cfg.UpdateInterval))
	}
	if cfg.DDLMaxFailures > 0 {
		topts = append(topts, feedback.WithDDLMaxFailures(cfg.DDLMaxFailures))
	}
	if cfg.Mode != Adaptive {
		topts = append(topts, feedback.Disabled())
	}
	return feedback.New(topts...)
}

// New prepares a campaign runner.
func New(cfg Config) (*Runner, error) {
	if cfg.Dialect == nil {
		return nil, fmt.Errorf("campaign: no dialect configured")
	}
	cfg = cfg.withDefaults()

	tracker := newTracker(cfg)
	if cfg.FeedbackState != nil {
		if err := tracker.Load(cfg.FeedbackState); err != nil {
			return nil, fmt.Errorf("campaign: loading feedback state: %w", err)
		}
	}

	policy := cfg.Policy
	if policy == nil {
		switch cfg.Mode {
		case Adaptive:
			policy = tracker
		default:
			policy = gen.AllowAll{}
		}
	}

	selected, err := oracle.Select(cfg.Oracles)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}

	var pairs *feedback.PairTracker
	var planMemo *oracle.PlanEnumMemo
	if !cfg.NoPlanPairSched {
		pairs = feedback.NewPairTracker()
		if cfg.PlanPairState != nil {
			if err := pairs.LoadState(cfg.PlanPairState); err != nil {
				return nil, fmt.Errorf("campaign: loading plan-pair state: %w", err)
			}
		}
		planMemo = oracle.NewPlanEnumMemo()
	}

	g := gen.New(gen.Config{
		Seed:           cfg.Seed,
		Policy:         policy,
		StartDepth:     cfg.StartDepth,
		MaxDepth:       cfg.MaxDepth,
		DepthInterval:  cfg.DepthInterval,
		ExtraFunctions: cfg.ExtraFunctions,
		TypeCorrect:    cfg.TypeCorrect,
		RiskyProb:      cfg.RiskyProb,
	})

	var cancel *atomic.Bool
	if cfg.CaseTimeout > 0 {
		cancel = new(atomic.Bool)
	}

	return &Runner{
		sched:    oracle.Schedule(selected),
		cfg:      cfg,
		tracker:  tracker,
		g:        g,
		pri:      prioritize.New(),
		pairs:    pairs,
		planMemo: planMemo,
		cancel:   cancel,
		report: &Report{
			Dialect:            cfg.Dialect.Name,
			Mode:               cfg.Mode.String(),
			DetectedByClass:    map[BugClass]int{},
			PrioritizedByClass: map[BugClass]int{},
		},
	}, nil
}

// Tracker exposes the feedback tracker (tests and experiments).
func (r *Runner) Tracker() *feedback.Tracker { return r.tracker }

// Run executes the campaign and returns its report.
func (r *Runner) Run() (*Report, error) {
	casesInDB := r.cfg.CasesPerDB // force a fresh DB on the first case
	for i := 0; i < r.cfg.TestCases; i++ {
		if casesInDB >= r.cfg.CasesPerDB {
			r.newDatabase()
			casesInDB = 0
		}
		if r.cfg.SmokeEvery > 0 && i%r.cfg.SmokeEvery == 0 {
			r.runSmokeQuery()
		}
		r.runOracleCase()
		casesInDB++
	}
	r.finishReport()
	return r.report, nil
}

// replayOpts assembles the engine options reduction replays run with:
// the execution budget but not coverage, so reducer replays skip the
// same statements the campaign skipped without polluting coverage
// counts.
func (r *Runner) replayOpts() []engine.Option {
	var opts []engine.Option
	if r.cfg.RowBudget > 0 {
		opts = append(opts, engine.WithRowBudget(r.cfg.RowBudget))
	}
	if r.cfg.BatchSize != 0 {
		opts = append(opts, engine.WithBatchSize(r.cfg.BatchSize))
	}
	return opts
}

// engineOpts assembles the engine options for the campaign's main
// instances: the replay set plus coverage recording and the watchdog's
// cancel flag. Replay instances deliberately get neither — reduction
// must shrink against deterministic failures only.
func (r *Runner) engineOpts() []engine.Option {
	opts := r.replayOpts()
	if r.cfg.Coverage != nil {
		opts = append(opts, engine.WithCoverage(r.cfg.Coverage))
	}
	if r.cancel != nil {
		opts = append(opts, engine.WithCancel(r.cancel))
	}
	return opts
}

// armWatchdog starts the per-case wall-clock watchdog: after
// Config.CaseTimeout the timer sets the shared cancel flag and the
// engine fails the running statement with ErrTimeout at its next
// per-row checkpoint. Returns nil (nothing to disarm) when no timeout
// is configured.
func (r *Runner) armWatchdog() *time.Timer {
	if r.cancel == nil {
		return nil
	}
	c := r.cancel
	// The canonical sanctioned wall-clock site: timed-out cases are
	// reported as hangs (never logic bugs, exempt from false-positive
	// accounting) and replays never arm the watchdog, so the clock cannot
	// leak into a deterministic report.
	//lint:allow nondeterminism watchdog timer is hang-detection infrastructure; ErrTimeout never feeds reports or validity
	return time.AfterFunc(r.cfg.CaseTimeout, func() { c.Store(true) })
}

// disarmWatchdog stops the case's timer and clears the cancel flag so
// the next case starts with a clean slate. It runs before the panic
// containment handler (deferred after it, LIFO), so even a recovered
// crash's reduction replays never observe a set flag.
func (r *Runner) disarmWatchdog(t *time.Timer) {
	if t == nil {
		return
	}
	t.Stop()
	r.cancel.Store(false)
}

// stallUntilCanceled simulates a hung case (the chaos case-stall site):
// it burns wall-clock until the watchdog fires, making timeout tests
// deterministic — the stall cannot outlive the timer.
func (r *Runner) stallUntilCanceled() {
	for !r.cancel.Load() {
		time.Sleep(50 * time.Microsecond)
	}
}

// newDatabase opens a fresh DBMS instance and generates a database state
// (Figure 2 step 1), keeping the learned feedback across states.
func (r *Runner) newDatabase() {
	r.db = engine.Open(r.cfg.Dialect, r.engineOpts()...)
	if r.planMemo != nil {
		// The memo caches enumerations against the old instance's catalog;
		// the pair tracker survives (shapes recur across states).
		r.planMemo.Reset()
	}
	r.g.ResetModel()
	r.setup = nil
	for i := 0; i < r.cfg.SetupStmts; i++ {
		st := r.g.GenSetup()
		r.execSetup(st)
	}
	// Guarantee at least one table with rows so oracle cases exist.
	if len(r.g.Model().Tables()) == 0 {
		for i := 0; i < 10 && len(r.g.Model().Tables()) == 0; i++ {
			st := r.g.GenSetup()
			r.execSetup(st)
		}
	}
}

// execSetup runs one setup statement, records feedback, updates the
// model on success, and issues the dialect's REFRESH adapter statement
// after inserts (paper §6, "Manual effort": ~16 LOC per DBMS).
func (r *Runner) execSetup(st *gen.Statement) {
	err, crashed := r.execContained(st)
	if crashed {
		return
	}
	r.report.SetupTotal++
	if engine.IsBudgetExceeded(err) {
		// The statement was aborted by the deterministic execution
		// budget, not rejected by the dialect: skip it without teaching
		// the tracker anything.
		r.report.BudgetExceeded++
		return
	}
	if engine.IsTimeout(err) {
		r.recordHang("", []string{st.SQL}, st.Features)
		return
	}
	ok := err == nil
	if ok {
		r.report.SetupOK++
		if st.OnSuccess != nil {
			st.OnSuccess()
		}
		r.setup = append(r.setup, st)
	}
	// The paper's simple consecutive-failure rule applies to the DDL/DML
	// *statement* features; expression features inside DML statements are
	// judged by the Bayesian query model, so that, say, a streak of
	// failing UPDATEs cannot condemn AND or CASE.
	ddlFeats, exprFeats := splitSetupFeatures(st.Features)
	r.tracker.RecordDDL(ddlFeats, ok)
	if len(exprFeats) > 0 {
		r.tracker.RecordQuery(exprFeats, ok)
	}
	r.handleExecError(st, err)

	if ok {
		if ins, isInsert := st.Stmt.(*sqlast.Insert); isInsert && r.cfg.Dialect.RequiresRefresh {
			ref := r.g.GenRefresh(ins.Table)
			if rerr, rcrashed := r.execContained(ref); !rcrashed && rerr == nil {
				r.setup = append(r.setup, ref)
			}
		}
	}
}

// execContained runs one generated statement under the harness recovery
// boundary: a panic in the engine is converted into a ClassHarness bug
// and the poisoned instance restarted, instead of killing the campaign.
func (r *Runner) execContained(st *gen.Statement) (err error, crashed bool) {
	defer r.containStmt(st, &crashed)
	wd := r.armWatchdog()
	defer r.disarmWatchdog(wd)
	return r.db.Exec(st.SQL), false
}

// containStmt is the deferred recovery boundary for a single generated
// statement.
func (r *Runner) containStmt(st *gen.Statement, crashed *bool) {
	if p := recover(); p != nil {
		*crashed = true
		r.recordHarnessCrash(p, "", st.Stmt, st.Features)
	}
}

// runSmokeQuery issues one free-form query for feedback and coverage —
// every third one a compound (set-operation) query.
func (r *Runner) runSmokeQuery() {
	st := r.g.GenQuery()
	if r.report.TestCases%3 == 0 {
		if cq := r.g.GenCompoundQuery(); cq != nil {
			st = cq
		}
	}
	err, crashed := r.execContained(st)
	if crashed {
		return
	}
	if engine.IsBudgetExceeded(err) {
		r.report.BudgetExceeded++
		return
	}
	if engine.IsTimeout(err) {
		r.recordHang("", []string{st.SQL}, st.Features)
		return
	}
	r.tracker.RecordQuery(st.Features, err == nil)
	r.handleExecError(st, err)
}

// runOracleCase runs one oracle check (Figure 2 steps 2–5), dispatching
// through the deterministic weighted rotation over the selected oracle
// registrations.
func (r *Runner) runOracleCase() {
	oc := r.g.GenOracleCase()
	r.report.TestCases++
	if oc == nil {
		return
	}
	c := &oracle.Case{Base: oc.Base, Pred: oc.Pred, Seq: r.report.TestCases,
		MaxPlans: r.cfg.MaxPlansPerQuery, Pairs: pairsOrNil(r.pairs), Enum: r.planMemo}
	res, crashed := r.checkContained(r.pickOracle(c), c, oc)
	if crashed {
		return
	}
	r.report.PlanPairsNovel += res.PairsNovel
	r.report.PlanPairsRepeated += res.PairsRepeated

	switch res.Outcome {
	case oracle.OK:
		r.report.ValidCases++
		r.tracker.RecordQuery(oc.Features, true)
		if r.cfg.PerfCostLimit > 0 && res.MaxCost > r.cfg.PerfCostLimit {
			r.recordBug(&BugCase{
				Class:     ClassPerf,
				Oracle:    res.Oracle,
				Queries:   res.Queries,
				Features:  oc.Features,
				Triggered: res.Triggered,
				Detail:    fmt.Sprintf("executor cost %d exceeds limit %d", res.MaxCost, r.cfg.PerfCostLimit),
			}, nil)
		}
	case oracle.Invalid:
		if engine.IsBudgetExceeded(res.Err) {
			r.report.BudgetExceeded++
			return
		}
		if engine.IsTimeout(res.Err) {
			// The watchdog canceled the case: report the hang, but teach
			// the tracker nothing — a timeout says the case was slow on
			// this host, not that its features are unsupported.
			r.recordHang(res.Oracle, res.Queries, oc.Features)
			return
		}
		r.tracker.RecordQuery(oc.Features, false)
		if res.Err != nil {
			if engine.IsCrash(res.Err) {
				r.recordErrorBug(ClassCrash, res, oc.Features)
				r.db.Restart()
			} else if engine.IsInternal(res.Err) {
				r.recordErrorBug(ClassError, res, oc.Features)
			}
		}
	case oracle.Bug:
		r.report.ValidCases++
		r.tracker.RecordQuery(oc.Features, true)
		r.recordBug(&BugCase{
			Class:     ClassLogic,
			Oracle:    res.Oracle,
			Seq:       c.Seq,
			Queries:   res.Queries,
			Features:  oc.Features,
			Triggered: res.Triggered,
			Detail:    res.Detail,
			PlanSpec:  res.PlanSpec,
		}, oc)
	}
}

// pickOracle returns the test case's oracle: the rotation slot, or —
// when that oracle is inapplicable here (e.g. PlanDiff with index paths
// suppressed) — the next applicable one in rotation order.
func (r *Runner) pickOracle(c *oracle.Case) oracle.Oracle {
	n := len(r.sched)
	start := (r.report.TestCases - 1) % n
	for i := 0; i < n; i++ {
		if o := r.sched[(start+i)%n]; o.Applicable(r.db, c) {
			return o
		}
	}
	return r.sched[start]
}

// checkContained runs one oracle check under the harness recovery
// boundary. On panic the recovered crash is attributed to the oracle and
// the case's carrier query (base plus predicate), mirroring what the
// oracle was executing when the engine went down.
func (r *Runner) checkContained(orc oracle.Oracle, c *oracle.Case, oc *gen.OracleCase) (res oracle.Result, crashed bool) {
	defer func() {
		if p := recover(); p != nil {
			crashed = true
			carrier := sqlast.CloneSelect(oc.Base)
			carrier.Where = sqlast.CloneExpr(oc.Pred)
			r.recordHarnessCrash(p, orc.Name(), carrier, oc.Features)
		}
	}()
	wd := r.armWatchdog()
	defer r.disarmWatchdog(wd)
	// The chaos stall site hangs this case until the watchdog cancels it
	// — the deterministic stand-in for a genuinely wedged execution. It
	// is a no-op unless a watchdog is armed: a stall with no timeout
	// would hang the campaign, which is the failure mode under test, not
	// a test of it.
	if r.cancel != nil && r.cfg.Chaos.StallCase(c.Seq) {
		r.stallUntilCanceled()
	}
	return orc.Check(r.db, c), false
}

// recordHang converts a watchdog cancellation into a ClassHang bug case
// carrying the case's seed and ordinal — everything needed to replay the
// hang offline without a timeout. Hangs have no ground-truth fault by
// construction (wall-clock is not in the fault catalog), so recordBug
// exempts them from false-positive accounting.
func (r *Runner) recordHang(orc oracle.Name, queries, features []string) {
	r.report.Hangs++
	r.recordBug(&BugCase{
		Class:    ClassHang,
		Oracle:   orc,
		Seq:      r.report.TestCases,
		Queries:  queries,
		Features: features,
		Detail: fmt.Sprintf("case exceeded wall-clock timeout %s (seed %d, case %d)",
			r.cfg.CaseTimeout, r.cfg.Seed, r.report.TestCases),
	}, nil)
}

// recordHarnessCrash converts a recovered panic into a ClassHarness bug
// report carrying the triggering statement and a sanitized stack, then
// restarts the poisoned instance so the campaign continues. Ground truth
// still attributes: the panic fault sites trigger before panicking, so
// TriggeredFaults reflects the injected fault even though the statement
// never completed.
func (r *Runner) recordHarnessCrash(p any, orc oracle.Name, trigger sqlast.Stmt, features []string) {
	r.report.HarnessCrashes++
	bug := &BugCase{
		Class:     ClassHarness,
		Oracle:    orc,
		Seq:       r.report.TestCases,
		Queries:   []string{trigger.SQL()},
		Features:  features,
		Triggered: r.db.TriggeredFaults(),
		Detail:    fmt.Sprintf("harness panic: %v\n%s", p, sanitizeStack(debug.Stack())),
	}
	r.recordBug(bug, nil)
	if r.cfg.ReduceBugs && !bug.Duplicate {
		bug.Reduced = r.reduceHarnessBug(trigger)
	}
	r.db.Restart()
}

// handleExecError turns crashes and internal errors of non-oracle
// statements into bug cases.
func (r *Runner) handleExecError(st *gen.Statement, err error) {
	if err == nil {
		return
	}
	if engine.IsCrash(err) {
		r.recordBug(&BugCase{
			Class:     ClassCrash,
			Queries:   []string{st.SQL},
			Features:  st.Features,
			Triggered: r.db.TriggeredFaults(),
			Detail:    err.Error(),
		}, nil)
		r.db.Restart()
		return
	}
	if engine.IsInternal(err) {
		r.recordBug(&BugCase{
			Class:     ClassError,
			Queries:   []string{st.SQL},
			Features:  st.Features,
			Triggered: r.db.TriggeredFaults(),
			Detail:    err.Error(),
		}, nil)
	}
}

func (r *Runner) recordErrorBug(class BugClass, res oracle.Result, features []string) {
	r.recordBug(&BugCase{
		Class:     class,
		Oracle:    res.Oracle,
		Queries:   res.Queries,
		Features:  features,
		Triggered: res.Triggered,
		Detail:    fmt.Sprint(res.Err),
	}, nil)
}

// recordBug runs the prioritizer and stores prioritized cases.
func (r *Runner) recordBug(bug *BugCase, oc *gen.OracleCase) {
	r.bugID++
	bug.ID = r.bugID
	r.report.Detected++
	r.report.DetectedByClass[bug.Class]++
	// Hangs are exempt: a wall-clock timeout never has a ground-truth
	// fault, and counting it as a false positive would make the
	// "FalsePositives == 0" invariant unsatisfiable under a watchdog.
	if len(bug.Triggered) == 0 && bug.Class != ClassHang {
		r.report.FalsePositives++
	}
	r.noteFaults(bug.Triggered)
	if r.cfg.KeepAllCases {
		r.report.AllCases = append(r.report.AllCases, &BugCase{
			ID: bug.ID, Class: bug.Class, Features: bug.Features,
			Triggered: bug.Triggered,
		})
	}

	if !r.pri.Report(prioritizerFeatures(bug.Features)) {
		bug.Duplicate = true
		return
	}
	r.report.Prioritized++
	r.report.PrioritizedByClass[bug.Class]++
	for _, s := range r.setup {
		bug.Setup = append(bug.Setup, s.SQL)
	}
	if r.cfg.ReduceBugs && bug.Class == ClassLogic && oc != nil {
		bug.Reduced = r.reduceLogicBug(bug, oc)
	}
	r.report.Bugs = append(r.report.Bugs, bug)
}

// reduceLogicBug shrinks the setup+query sequence while the *same*
// oracle — looked up by the bug's attributed registry name — keeps
// failing, replaying on fresh pristine instances.
func (r *Runner) reduceLogicBug(bug *BugCase, oc *gen.OracleCase) []string {
	orc, ok := oracle.Get(bug.Oracle)
	if !ok {
		return nil
	}
	var stmts []sqlast.Stmt
	for _, s := range r.setup {
		stmts = append(stmts, sqlast.CloneStmt(s.Stmt))
	}
	base := sqlast.CloneSelect(oc.Base)
	pred := sqlast.CloneExpr(oc.Pred)

	// The query under reduction is carried as a SELECT statement holding
	// the predicate in WHERE; the property re-splits it.
	carrier := sqlast.CloneSelect(base)
	carrier.Where = pred
	stmts = append(stmts, carrier)

	prop := func(cand []sqlast.Stmt) bool {
		if len(cand) == 0 {
			return false
		}
		carrier, ok := cand[len(cand)-1].(*sqlast.Select)
		if !ok || carrier.Where == nil {
			return false
		}
		db := engine.Open(r.cfg.Dialect, r.replayOpts()...)
		replayStmts(db, cand[:len(cand)-1])
		cb := sqlast.CloneSelect(carrier)
		cp := cb.Where
		cb.Where = nil
		// The bug's recorded losing plan spec rides along verbatim, so a
		// PlanDiff replay re-executes the exact plan pair that diverged
		// instead of re-enumerating a (possibly different) plan space for
		// the shrunken statement.
		res, panicked := checkNoPanic(orc, db, &oracle.Case{Base: cb, Pred: cp, Seq: bug.Seq,
			MaxPlans: r.cfg.MaxPlansPerQuery, PlanSpec: bug.PlanSpec})
		// A shrunken candidate that panics the engine does not exhibit
		// the logic bug under reduction.
		return !panicked && res.Outcome == oracle.Bug
	}
	if !prop(stmts) {
		return nil // not reproducible from a pristine state
	}
	reduced := reduce.Reduce(stmts, prop)
	out := make([]string, len(reduced))
	for i, st := range reduced {
		out[i] = st.SQL()
	}
	return out
}

// checkNoPanic runs an oracle check on a replay instance under a
// recovery boundary, reporting panics instead of propagating them into
// the reducer.
func checkNoPanic(orc oracle.Oracle, db *engine.DB, c *oracle.Case) (res oracle.Result, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	return orc.Check(db, c), false
}

// reduceHarnessBug shrinks the setup-plus-trigger sequence to the
// smallest one whose replay still panics the engine, replaying on fresh
// instances with the same dialect faults and execution budget. The
// property recovers per statement, so each shrink step stays inside the
// containment boundary.
func (r *Runner) reduceHarnessBug(trigger sqlast.Stmt) []string {
	var stmts []sqlast.Stmt
	for _, s := range r.setup {
		stmts = append(stmts, sqlast.CloneStmt(s.Stmt))
	}
	stmts = append(stmts, sqlast.CloneStmt(trigger))
	prop := func(cand []sqlast.Stmt) bool {
		db := engine.Open(r.cfg.Dialect, r.replayOpts()...)
		for _, st := range cand {
			if execPanics(db, st) {
				return true
			}
		}
		return false
	}
	if !prop(stmts) {
		return nil // not reproducible from a pristine state
	}
	reduced := reduce.Reduce(stmts, prop)
	out := make([]string, len(reduced))
	for i, st := range reduced {
		out[i] = st.SQL()
	}
	return out
}

// execPanics executes one statement under a recovery boundary,
// restarting on simulated crashes as the campaign loop does, and reports
// whether the statement panicked the engine.
func execPanics(db *engine.DB, st sqlast.Stmt) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	if err := db.Exec(st.SQL()); err != nil && engine.IsCrash(err) {
		db.Restart()
	}
	return false
}

// replayStmts replays setup statements on a pristine instance. Ordinary
// failures are fine during replay, but a simulated crash latches the
// engine's crashed flag and would fail every subsequent statement —
// poisoning the rest of the sequence and blocking reduction — so the
// replay restarts the server exactly as the campaign loop does. A panic
// during replay is contained the same way: the instance restarts and the
// replay moves on.
func replayStmts(db *engine.DB, stmts []sqlast.Stmt) {
	for _, st := range stmts {
		if execPanics(db, st) {
			db.Restart()
		}
	}
}

// sanitizeStack reduces a debug.Stack dump to a deterministic trace: the
// frames between the panic site and the campaign's recovery boundary,
// with the goroutine header, argument values, code offsets, and runtime
// internals stripped. Scheduling-dependent content (goroutine IDs, heap
// addresses, worker-pool frames below the boundary) never appears, so
// harness-crash reports stay byte-identical across worker counts.
func sanitizeStack(stack []byte) string {
	var out []string
	seenPanic := false
	for _, line := range strings.Split(string(stack), "\n") {
		if line == "" || line[0] == '\t' || strings.HasPrefix(line, "goroutine ") {
			continue // source locations and the goroutine header
		}
		fn := line
		if j := strings.LastIndexByte(fn, '('); j >= 0 {
			fn = fn[:j] // drop argument values
		}
		if !seenPanic {
			seenPanic = fn == "panic"
			continue // recovery machinery above the panic frame
		}
		if strings.HasPrefix(fn, "runtime.") {
			continue
		}
		if strings.Contains(fn, "campaign.(*Runner)") {
			break // everything below the boundary is scheduling-dependent
		}
		out = append(out, fn)
	}
	return strings.Join(out, "\n")
}

// finishReport computes the ground-truth uniqueness statistics.
func (r *Runner) finishReport() {
	state, err := r.tracker.Save()
	if err == nil {
		r.report.FeedbackState = state
	}
	if r.pairs != nil {
		if ps, err := r.pairs.SaveState(); err == nil {
			r.report.PlanPairState = ps
		}
	}
	r.report.Unsupported = r.tracker.Unsupported()

	// UniquePrioritized counts distinct injected faults among the
	// prioritized cases; UniqueGroundTruth among all detected ones is
	// tracked incrementally via allFaults.
	pri := map[string]bool{}
	for _, b := range r.report.Bugs {
		for _, id := range b.Triggered {
			pri[id] = true
		}
	}
	r.report.UniquePrioritized = len(pri)
	r.report.UniqueGroundTruth = len(r.allFaults)
	r.report.GroundTruthFaults = sortedKeys(r.allFaults)
}

// pairsOrNil converts the runner's tracker pointer to the oracle-facing
// interface without the typed-nil pitfall: a nil *PairTracker must reach
// the oracle as a nil interface, not a non-nil interface wrapping nil.
func pairsOrNil(p *feedback.PairTracker) oracle.PlanPairs {
	if p == nil {
		return nil
	}
	return p
}

// sortedKeys returns the keys of a string set, sorted.
func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// noteFaults records triggered ground-truth faults for unique-bug
// accounting.
func (r *Runner) noteFaults(ids []string) {
	if r.allFaults == nil {
		r.allFaults = map[string]bool{}
	}
	for _, id := range ids {
		r.allFaults[id] = true
	}
}
