package campaign

import (
	"testing"

	"sqlancerpp/internal/coverage"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/sqlast"
	"sqlancerpp/internal/sqlparse"
)

// crashDialect builds a dialect whose only fault crashes on LIKE.
func crashDialect(name string) *dialect.Dialect {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = name
	d.Faults = faults.NewSet([]faults.Fault{
		{ID: name + "-crash", Dialect: name, Class: faults.Crash,
			Kind: faults.CrashOnFeature, Param: "LIKE"},
	})
	return d
}

func TestCampaignSurvivesCrashes(t *testing.T) {
	r, err := New(Config{
		Dialect:   crashDialect("crash-test-1"),
		Mode:      Adaptive,
		TestCases: 800,
		Seed:      13,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectedByClass[ClassCrash] == 0 {
		t.Fatal("campaign never hit the crash fault")
	}
	if rep.FalsePositives != 0 {
		t.Fatalf("crash cases without ground truth: %d", rep.FalsePositives)
	}
	// The campaign must keep making progress after crashes (restart).
	if rep.ValidCases == 0 {
		t.Fatal("no valid cases after crashes — restart handling broken")
	}
	// The crash bug is attributed.
	if rep.UniqueGroundTruth != 1 {
		t.Fatalf("unique ground truth = %d, want 1", rep.UniqueGroundTruth)
	}
}

func TestCampaignPerfWatchdog(t *testing.T) {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = "perf-test-1"
	d.Faults = faults.NewSet([]faults.Fault{
		{ID: "perf-test-1-p", Dialect: d.Name, Class: faults.Perf,
			Kind: faults.PerfOnFeature, Param: "BETWEEN"},
	})
	r, err := New(Config{
		Dialect:       d,
		Mode:          Adaptive,
		TestCases:     800,
		Seed:          17,
		PerfCostLimit: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectedByClass[ClassPerf] == 0 {
		t.Fatal("perf watchdog never fired")
	}
	if rep.FalsePositives != 0 {
		t.Fatalf("perf cases without ground truth: %d", rep.FalsePositives)
	}
}

func TestCampaignInternalErrors(t *testing.T) {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = "interr-test-1"
	d.Faults = faults.NewSet([]faults.Fault{
		{ID: "interr-test-1-e", Dialect: d.Name, Class: faults.Error,
			Kind: faults.InternalErrorOnFeature, Param: "COALESCE"},
	})
	r, err := New(Config{
		Dialect: d, Mode: Adaptive, TestCases: 800, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectedByClass[ClassError] == 0 {
		t.Fatal("internal-error fault never detected")
	}
}

func TestPrioritizerFeatureProjection(t *testing.T) {
	got := prioritizerFeatures([]string{
		"NULLIF", "!=", "SELECT", "WHERE", "CONSTANT", "COLUMN",
		"SIN#1=INTEGER", "INTEGER", "LEFT JOIN", "CASE", "IMPLICIT CAST",
	})
	want := map[string]bool{"NULLIF": true, "!=": true, "LEFT JOIN": true, "CASE": true}
	if len(got) != len(want) {
		t.Fatalf("projected set %v, want keys %v", got, want)
	}
	for _, f := range got {
		if !want[f] {
			t.Fatalf("unexpected feature %q in projection", f)
		}
	}
}

func TestRefreshDialectCampaign(t *testing.T) {
	// CrateDB-style visibility: the campaign's adapter issues REFRESH
	// after inserts, so oracle queries see rows and bugs are findable.
	d := dialect.MustGet("cratedb")
	r, err := New(Config{Dialect: d, Mode: Adaptive, TestCases: 1200, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected == 0 {
		t.Fatal("no bugs found — inserted rows may be invisible (REFRESH adapter broken)")
	}
}

func TestKeepAllCases(t *testing.T) {
	d := dialect.MustGet("cratedb")
	r, err := New(Config{
		Dialect: d, Mode: Adaptive, TestCases: 1200, Seed: 29, KeepAllCases: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AllCases) != rep.Detected {
		t.Fatalf("AllCases %d != Detected %d", len(rep.AllCases), rep.Detected)
	}
}

func TestModeLabels(t *testing.T) {
	if Adaptive.String() != "SQLancer++" || Rand.String() != "SQLancer++ Rand" ||
		Baseline.String() != "SQLancer" {
		t.Fatal("mode labels must match the paper's")
	}
}

// TestCampaignExercisesIndexPath: with the raised CREATE INDEX weight,
// a modest campaign must reach database states whose oracle queries go
// through the engine's index-backed access path — otherwise the whole
// index fault family is dead weight.
func TestCampaignExercisesIndexPath(t *testing.T) {
	rec := coverage.NewRecorder()
	r, err := New(Config{
		Dialect: dialect.MustGet("sqlite"), Mode: Adaptive,
		TestCases: 2000, Seed: 5, Coverage: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	hit := map[string]bool{}
	for _, p := range rec.HitPoints() {
		hit[p] = true
	}
	if !hit["exec.createindex"] {
		t.Fatal("campaign never created an index")
	}
	if !hit["exec.scan.index"] {
		t.Fatal("campaign never took the index-backed access path")
	}
}

// TestReplayRestartsAfterCrash is the regression test for the reducer's
// replay loop: a crashing setup statement latches the engine's crashed
// flag, and without a restart every subsequent statement fails — one
// crash would poison the whole replay and block reduction.
func TestReplayRestartsAfterCrash(t *testing.T) {
	d := crashDialect("crash-replay-test")
	stmts := parseStmts(t,
		"CREATE TABLE t0 (c0 TEXT)",
		"INSERT INTO t0 (c0) VALUES ('a')",
		"SELECT * FROM t0 WHERE c0 LIKE 'a%'", // crashes the server
		"INSERT INTO t0 (c0) VALUES ('b')",    // must still execute
	)
	db := engine.Open(d)
	replayStmts(db, stmts)
	res, err := db.Query("SELECT * FROM t0")
	if err != nil {
		t.Fatalf("post-replay query failed (replay poisoned by the crash): %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("replay after crash executed %d of 2 inserts", len(res.Rows))
	}
}

func parseStmts(t *testing.T, sqls ...string) []sqlast.Stmt {
	t.Helper()
	out := make([]sqlast.Stmt, len(sqls))
	for i, s := range sqls {
		st, err := sqlparse.Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		out[i] = st
	}
	return out
}
