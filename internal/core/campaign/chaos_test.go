package campaign

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sqlancerpp/internal/chaos"
)

func mustChaos(t *testing.T, spec string, seed int64) *chaos.Injector {
	t.Helper()
	in, err := chaos.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// stripChaosCounters zeroes the infrastructure-fault counters on a copy
// of a report, leaving every campaign *finding* intact — the comparison
// that proves chaos only exercised the harness, never the results.
func stripChaosCounters(rep *Report) *Report {
	c := *rep
	c.ShardRetries = 0
	c.CheckpointWriteFailures = 0
	return &c
}

// TestChaosAcceptanceCampaign is the PR's acceptance scenario: with
// injected checkpoint write failures, one torn checkpoint, and a
// twice-failing shard, the campaign completes (not aborts), the retries
// are counted, nothing is quarantined (the shard recovered on its third
// attempt), no finding is lost or invented (FalsePositives == 0, report
// findings identical to the chaos-free run), and the whole scenario is
// byte-deterministic at workers 1, 3, and 8.
func TestChaosAcceptanceCampaign(t *testing.T) {
	ref, err := RunSharded(shardedCfg(t, 800, 7), 1) // chaos-free baseline, 4 shards
	if err != nil {
		t.Fatal(err)
	}
	refJSON := marshalReport(t, ref)

	for _, workers := range []int{1, 3, 8} {
		cfg := shardedCfg(t, 800, 7)
		cfg.Chaos = mustChaos(t, "ckpt-write=2;ckpt-torn=3;shard-error=1x2", cfg.Seed)
		path := filepath.Join(t.TempDir(), "run.ckpt")
		rep, err := RunShardedOpts(cfg, ShardedOptions{
			Workers: workers, CheckpointPath: path, RetryBackoff: -1,
		})
		if err != nil {
			t.Fatalf("workers=%d: chaos campaign aborted: %v", workers, err)
		}
		if rep.ShardRetries != 2 {
			t.Fatalf("workers=%d: ShardRetries = %d, want 2 (shard 1 failed twice, then recovered)",
				workers, rep.ShardRetries)
		}
		if rep.ShardsQuarantined != 0 || len(rep.QuarantinedShards) != 0 {
			t.Fatalf("workers=%d: quarantined %d shards; the failing shard should have recovered",
				workers, rep.ShardsQuarantined)
		}
		if rep.CheckpointWriteFailures != 1 {
			t.Fatalf("workers=%d: CheckpointWriteFailures = %d, want 1 (ckpt-write=2 fires once)",
				workers, rep.CheckpointWriteFailures)
		}
		if rep.FalsePositives != 0 {
			t.Fatalf("workers=%d: FalsePositives = %d: an infrastructure fault leaked into the findings",
				workers, rep.FalsePositives)
		}
		if !bytes.Equal(refJSON, marshalReport(t, stripChaosCounters(rep))) {
			t.Fatalf("workers=%d: chaos campaign findings differ from the chaos-free run", workers)
		}
		for _, p := range []string{path, path + ".bak"} {
			if _, serr := os.Stat(p); !errors.Is(serr, os.ErrNotExist) {
				t.Fatalf("workers=%d: %s not cleaned up after completion", workers, p)
			}
		}
	}
}

// TestShardQuarantineDeterministic: a shard that fails every attempt is
// quarantined — the campaign completes degraded, records the shard's
// seed range for offline replay, and the degraded report is still
// byte-identical at every worker count.
func TestShardQuarantineDeterministic(t *testing.T) {
	run := func(workers int) *Report {
		cfg := shardedCfg(t, 800, 7) // 4 shards
		cfg.Chaos = mustChaos(t, "shard-panic=1x99", cfg.Seed)
		rep, err := RunShardedOpts(cfg, ShardedOptions{Workers: workers, RetryBackoff: -1})
		if err != nil {
			t.Fatalf("workers=%d: degraded campaign aborted: %v", workers, err)
		}
		return rep
	}
	ref := run(1)
	if ref.ShardsQuarantined != 1 || len(ref.QuarantinedShards) != 1 {
		t.Fatalf("ShardsQuarantined = %d (%d recorded), want 1",
			ref.ShardsQuarantined, len(ref.QuarantinedShards))
	}
	q := ref.QuarantinedShards[0]
	shards := shardConfigs(shardedCfg(t, 800, 7).withDefaults())
	if q.Shard != 1 || q.Seed != shards[1].Seed || q.TestCases != shards[1].TestCases {
		t.Fatalf("quarantine record %+v does not pin shard 1's replay recipe (want seed %d, cases %d)",
			q, shards[1].Seed, shards[1].TestCases)
	}
	if q.Err == "" || !strings.Contains(q.Err, "panicked") {
		t.Fatalf("quarantine error %q does not describe the panic", q.Err)
	}
	if ref.ShardRetries != DefaultShardRetries {
		t.Fatalf("ShardRetries = %d, want %d (every attempt of the quarantined shard failed)",
			ref.ShardRetries, DefaultShardRetries)
	}
	// The other three shards' work survives.
	if want := 3 * shards[0].TestCases; ref.TestCases != want {
		t.Fatalf("TestCases = %d, want %d from the three live shards", ref.TestCases, want)
	}
	if ref.FalsePositives != 0 {
		t.Fatalf("FalsePositives = %d, want 0", ref.FalsePositives)
	}
	for _, workers := range []int{3, 8} {
		if !bytes.Equal(marshalReport(t, ref), marshalReport(t, run(workers))) {
			t.Fatalf("workers=%d: degraded report differs from the serial run", workers)
		}
	}
}

// TestQuarantineSurvivesCheckpointResume: a quarantined shard's
// placeholder rides the checkpoint like any completed shard, so a resume
// neither retries it nor forgets it.
func TestQuarantineSurvivesCheckpointResume(t *testing.T) {
	cfg := shardedCfg(t, 800, 11)
	cfg.Chaos = mustChaos(t, "shard-error=0x99", cfg.Seed)
	ref, err := RunShardedOpts(cfg, ShardedOptions{Workers: 1, RetryBackoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.ShardsQuarantined != 1 {
		t.Fatalf("ShardsQuarantined = %d, want 1", ref.ShardsQuarantined)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	interrupt := make(chan struct{})
	go func() {
		for {
			if _, err := os.Stat(path); err == nil {
				close(interrupt)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	_, err = RunShardedOpts(cfg, ShardedOptions{
		Workers: 1, CheckpointPath: path, Interrupt: interrupt, RetryBackoff: -1,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	// Resume without chaos: shards already checkpointed (including the
	// quarantine placeholder) are kept; the rest run clean.
	resumedCfg := shardedCfg(t, 800, 11)
	resumed, err := RunShardedOpts(resumedCfg, ShardedOptions{
		Workers: 2, CheckpointPath: path, Resume: true, RetryBackoff: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ShardsQuarantined != 1 {
		t.Fatalf("resumed ShardsQuarantined = %d, want 1 (placeholder lost in the checkpoint)",
			resumed.ShardsQuarantined)
	}
	if !bytes.Equal(marshalReport(t, ref), marshalReport(t, resumed)) {
		t.Fatal("resumed degraded report differs from the uninterrupted degraded run")
	}
}

// TestWatchdogHangDetection: with a case timeout configured, a chaos
// stall is detected as a hang — the case is canceled, reported as a
// ClassHang bug with its seed and ordinal, exempted from false-positive
// accounting, and the campaign runs to completion.
func TestWatchdogHangDetection(t *testing.T) {
	cfg := shardedCfg(t, 200, 7) // single shard
	cfg.CaseTimeout = 50 * time.Millisecond
	// A stall window rather than one ordinal: whichever of these ordinals
	// are real oracle cases under this seed, at least one stalls.
	cfg.Chaos = mustChaos(t, "case-stall=3,4,5", cfg.Seed)
	runner, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hangs == 0 {
		t.Fatal("Hangs = 0: the stalled case was never detected")
	}
	if rep.DetectedByClass[ClassHang] != rep.Hangs {
		t.Fatalf("DetectedByClass[hang] = %d but Hangs = %d",
			rep.DetectedByClass[ClassHang], rep.Hangs)
	}
	if rep.FalsePositives != 0 {
		t.Fatalf("FalsePositives = %d: hangs must be exempt (they have no ground-truth fault)",
			rep.FalsePositives)
	}
	if rep.TestCases != 200 {
		t.Fatalf("TestCases = %d, want 200: the campaign did not run to completion after the hang",
			rep.TestCases)
	}
	found := false
	for _, b := range rep.Bugs {
		if b.Class != ClassHang {
			continue
		}
		found = true
		if b.Seq < 3 || b.Seq > 5 {
			t.Fatalf("hang bug ordinal %d outside the stalled window", b.Seq)
		}
		if !strings.Contains(b.Detail, "timeout") || !strings.Contains(b.Detail, "seed 7") {
			t.Fatalf("hang detail %q lacks replay coordinates", b.Detail)
		}
	}
	if !found {
		t.Fatal("no prioritized ClassHang bug in the report")
	}
}

// TestResumeAfterTornWriteViaBak is the salvage property test: when the
// newest checkpoint generation is torn (committed truncated bytes, via
// the real chaos injection site), a resume detects the corruption via
// the content checksum, falls back to the ".bak" last-known-good
// generation, and still completes byte-identically to an uninterrupted
// run.
func TestResumeAfterTornWriteViaBak(t *testing.T) {
	cfg := shardedCfg(t, 800, 11) // 4 shards
	ref, err := RunShardedOpts(cfg, ShardedOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt a checkpointed run so a good generation exists on disk.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	interrupt := make(chan struct{})
	go func() {
		for {
			if _, err := os.Stat(path); err == nil {
				close(interrupt)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	_, err = RunShardedOpts(cfg, ShardedOptions{
		Workers: 1, CheckpointPath: path, Interrupt: interrupt,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}

	// Replay the last save through the torn-write chaos site: the good
	// generation rotates to .bak and truncated bytes commit at path —
	// exactly the on-disk state a torn write leaves behind.
	resolved := cfg.withDefaults()
	shards := shardConfigs(resolved)
	cp := &checkpointFile{
		Fingerprint: fingerprint(resolved),
		TotalShards: len(shards),
		Seeds:       make([]int64, len(shards)),
		Shards:      make([]*Report, len(shards)),
	}
	for i, sc := range shards {
		cp.Seeds[i] = sc.Seed
	}
	if err := loadCheckpoint(path, cp); err != nil {
		t.Fatalf("pre-corruption checkpoint does not load: %v", err)
	}
	if err := saveCheckpoint(path, cp, mustChaos(t, "ckpt-torn=1", 0)); err != nil {
		t.Fatalf("torn save unexpectedly errored: %v", err)
	}
	if _, err := loadCheckpointFile(path); !errors.Is(err, errCkptCorrupt) {
		t.Fatalf("torn generation loaded as %v, want errCkptCorrupt", err)
	}
	if _, err := loadCheckpointFile(path + ".bak"); err != nil {
		t.Fatalf("last-known-good generation unreadable: %v", err)
	}

	resumed, err := RunShardedOpts(cfg, ShardedOptions{
		Workers: 2, CheckpointPath: path, Resume: true,
	})
	if err != nil {
		t.Fatalf("resume refused despite a good .bak generation: %v", err)
	}
	if !bytes.Equal(marshalReport(t, ref), marshalReport(t, resumed)) {
		t.Fatal("salvaged resume differs from the uninterrupted run")
	}
	for _, p := range []string{path, path + ".bak"} {
		if _, serr := os.Stat(p); !errors.Is(serr, os.ErrNotExist) {
			t.Fatalf("%s not cleaned up after completion", p)
		}
	}
}

// TestResumeBothGenerationsCorrupt: when the primary and the .bak are
// both unusable, resume degrades to a fresh start instead of erroring —
// and still produces the uninterrupted report.
func TestResumeBothGenerationsCorrupt(t *testing.T) {
	cfg := shardedCfg(t, 400, 13)
	ref, err := RunSharded(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".bak", []byte(`{"Version":2,"Checksum":"0","Payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := RunShardedOpts(cfg, ShardedOptions{
		Workers: 1, CheckpointPath: path, Resume: true,
	})
	if err != nil {
		t.Fatalf("resume with two corrupt generations errored: %v", err)
	}
	if !bytes.Equal(marshalReport(t, ref), marshalReport(t, rep)) {
		t.Fatal("fresh-start resume differs from a plain run")
	}
}

// TestCheckpointFaultsEverySiteDegrade: the marshal, write, and rename
// chaos sites each fail one checkpoint save; every failure is counted,
// none aborts the campaign, and the findings match the chaos-free run.
func TestCheckpointFaultsEverySiteDegrade(t *testing.T) {
	ref, err := RunSharded(shardedCfg(t, 800, 7), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		cfg := shardedCfg(t, 800, 7)
		cfg.Chaos = mustChaos(t, "ckpt-marshal=1;ckpt-write=1;ckpt-rename=1", cfg.Seed)
		path := filepath.Join(t.TempDir(), "run.ckpt")
		rep, err := RunShardedOpts(cfg, ShardedOptions{Workers: workers, CheckpointPath: path})
		if err != nil {
			t.Fatalf("workers=%d: campaign aborted on checkpoint faults: %v", workers, err)
		}
		if rep.CheckpointWriteFailures != 3 {
			t.Fatalf("workers=%d: CheckpointWriteFailures = %d, want 3", workers, rep.CheckpointWriteFailures)
		}
		if !bytes.Equal(marshalReport(t, ref), marshalReport(t, stripChaosCounters(rep))) {
			t.Fatalf("workers=%d: findings differ from the chaos-free run", workers)
		}
	}
}

// FuzzLoadCheckpoint: loading arbitrary bytes as a checkpoint must never
// panic — it returns an error, salvages, or starts fresh, but a corrupt
// file can never take the campaign down.
func FuzzLoadCheckpoint(f *testing.F) {
	seedDir := f.TempDir()
	seedPath := filepath.Join(seedDir, "seed.ckpt")
	cp := &checkpointFile{
		Fingerprint: "fp", TotalShards: 2,
		Seeds: []int64{3, 9}, Shards: make([]*Report, 2),
	}
	cp.Shards[0] = &Report{Dialect: "sqlite", TestCases: 5}
	if err := saveCheckpoint(seedPath, cp, nil); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[len(valid)/3:])
	f.Add([]byte(`{"Version":2,"Checksum":"cbf29ce484222325","Payload":null}`))
	f.Add([]byte(`{"Version":1}`))
	f.Add([]byte("{"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		tgt := &checkpointFile{
			Fingerprint: "fp", TotalShards: 2,
			Seeds: []int64{3, 9}, Shards: make([]*Report, 2),
		}
		// Errors (hard mismatches) and fresh starts are both fine;
		// panics are not.
		_ = loadCheckpoint(path, tgt)
	})
}
