package campaign

import (
	"strings"

	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/feature"
)

// coreFeature reports whether a feature participates in bug
// prioritization. The paper's feature sets (Figure 4: {NULLIF, !=}) are
// the *language elements* of the bug-inducing case — operators,
// functions, expression forms, and join kinds — not the bookkeeping
// features the generator also tracks (composite argument types, column/
// constant leaves, statement kinds), whose inclusion would make every
// set nearly unique and defeat the subset rule.
var coreFeatureSet = buildCoreFeatureSet()

func buildCoreFeatureSet() map[string]bool {
	m := map[string]bool{}
	for _, f := range feature.BinaryOperators {
		m[f] = true
	}
	m["~"] = true
	for _, f := range feature.ExprForms {
		m[f] = true
	}
	for _, f := range feature.Joins {
		m[f] = true
	}
	for _, f := range feature.Aggregates {
		m[f] = true
	}
	m[feature.Subquery] = true
	m[feature.DerivedTable] = true
	m[feature.Distinct] = true
	m[feature.GroupBy] = true
	m[feature.Having] = true
	m[feature.PartialIndex] = true
	return m
}

// prioritizerFeatures projects a generated feature set onto the core
// grammar features used for deduplication.
func prioritizerFeatures(features []string) []string {
	var out []string
	for _, f := range features {
		if strings.ContainsRune(f, '#') {
			continue
		}
		if coreFeatureSet[f] || engine.LookupFunc(f) != nil {
			out = append(out, f)
		}
	}
	return out
}

// setupStatementFeatures are the features the DDL/DML consecutive-
// failure rule applies to: statement kinds and DDL-only clauses.
var setupStatementFeatures = buildSetupFeatureSet()

func buildSetupFeatureSet() map[string]bool {
	m := map[string]bool{}
	for _, f := range feature.Statements {
		m[f] = true
	}
	m[feature.StmtDropTable] = true
	m[feature.StmtDropView] = true
	m[feature.StmtDropIndex] = true
	m[feature.StmtReindex] = true
	m[feature.UniqueIndex] = true
	m[feature.PartialIndex] = true
	m[feature.PrimaryKey] = true
	m[feature.NotNullColumn] = true
	m[feature.UniqueColumn] = true
	m[feature.InsertOrIgnore] = true
	m[feature.InsertMultiRow] = true
	m[feature.ViewColumnNames] = true
	return m
}

// splitSetupFeatures separates a setup statement's features into the
// DDL-rule set and the Bayesian query set.
func splitSetupFeatures(features []string) (ddl, expr []string) {
	for _, f := range features {
		if setupStatementFeatures[f] {
			ddl = append(ddl, f)
		} else {
			expr = append(expr, f)
		}
	}
	return ddl, expr
}
