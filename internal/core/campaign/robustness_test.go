package campaign

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sqlancerpp/internal/core/feedback"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/faults"
)

// panicDialect builds the synthetic "panicdb" dialect: SQLite's grammar
// with the two panic-class fault sites injected (and nothing else), so a
// seeded campaign proves Go panics are contained, attributed to ground
// truth, and reduced. The dialect is constructed locally — it is never
// registered globally, keeping the paper-catalogue tests untouched.
func panicDialect(t *testing.T) *dialect.Dialect {
	t.Helper()
	d := dialect.MustGet("sqlite").Clone()
	d.Name = "panicdb"
	d.Faults = faults.NewSet(faults.ForDialect("panicdb"))
	return d
}

func panicCfg(t *testing.T, cases int, seed int64) Config {
	t.Helper()
	return Config{
		Dialect:    panicDialect(t),
		Mode:       Adaptive,
		TestCases:  cases,
		Seed:       seed,
		ReduceBugs: true,
	}
}

// TestHarnessCrashContainmentDeterministic is the tentpole acceptance
// test: a seeded campaign over the panic-fault dialect survives to
// completion with every panic converted into an attributed ClassHarness
// report, no false positives, every prioritized harness crash reduced —
// and the report is byte-identical at 1, 3, and 8 workers.
func TestHarnessCrashContainmentDeterministic(t *testing.T) {
	ref, err := RunSharded(panicCfg(t, 800, 7), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ref.HarnessCrashes == 0 {
		t.Fatal("no harness crashes: the panic fault sites never fired and the test is vacuous")
	}
	if ref.FalsePositives != 0 {
		t.Fatalf("FalsePositives = %d, want 0: a contained panic lost its ground-truth attribution", ref.FalsePositives)
	}
	if ref.DetectedByClass[ClassHarness] != ref.HarnessCrashes {
		t.Fatalf("DetectedByClass[harness] = %d but HarnessCrashes = %d",
			ref.DetectedByClass[ClassHarness], ref.HarnessCrashes)
	}
	harnessBugs := 0
	for _, b := range ref.Bugs {
		if b.Class != ClassHarness {
			continue
		}
		harnessBugs++
		if len(b.Triggered) == 0 {
			t.Fatalf("harness bug %d has no ground-truth fault", b.ID)
		}
		if b.Detail == "" || len(b.Queries) == 0 {
			t.Fatalf("harness bug %d lacks a detail or statement trace: %+v", b.ID, b)
		}
		if len(b.Reduced) == 0 {
			t.Fatalf("harness bug %d was not reduced", b.ID)
		}
		if len(b.Reduced) > len(b.Setup)+len(b.Queries) {
			t.Fatalf("harness bug %d grew under reduction: %d stmts from %d",
				b.ID, len(b.Reduced), len(b.Setup)+len(b.Queries))
		}
	}
	if harnessBugs == 0 {
		t.Fatal("no prioritized harness bugs in the report")
	}
	for _, workers := range []int{3, 8} {
		par, err := RunSharded(panicCfg(t, 800, 7), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, ref), marshalReport(t, par)) {
			t.Fatalf("workers=%d report differs from the serial run", workers)
		}
	}
}

// TestHarnessCrashSerialRunner checks the containment boundary in the
// plain serial Runner too (feedback flowing across epochs), not just the
// sharded path.
func TestHarnessCrashSerialRunner(t *testing.T) {
	runner, err := New(panicCfg(t, 400, 3))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.HarnessCrashes == 0 {
		t.Fatal("serial runner recorded no harness crashes")
	}
	if rep.FalsePositives != 0 {
		t.Fatalf("FalsePositives = %d, want 0", rep.FalsePositives)
	}
}

// TestBudgetDeterministicAcrossWorkers: with a rows-touched budget the
// skipped statements are identical at every worker count (the budget is
// deterministic, not wall-clock), budget-exceeded cases are never bugs,
// and the tally is non-zero so the budget actually engaged.
func TestBudgetDeterministicAcrossWorkers(t *testing.T) {
	cfg := shardedCfg(t, 800, 7)
	cfg.RowBudget = 50
	ref, err := RunSharded(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ref.BudgetExceeded == 0 {
		t.Fatal("BudgetExceeded = 0: the budget never engaged and the test is vacuous")
	}
	if ref.FalsePositives != 0 {
		t.Fatalf("FalsePositives = %d, want 0", ref.FalsePositives)
	}
	for _, b := range ref.Bugs {
		if b.Detail == "execution budget exceeded (rows-touched limit)" {
			t.Fatalf("budget-exceeded statement reported as bug %d", b.ID)
		}
	}
	for _, workers := range []int{3, 8} {
		cfg := shardedCfg(t, 800, 7)
		cfg.RowBudget = 50
		par, err := RunSharded(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalReport(t, ref), marshalReport(t, par)) {
			t.Fatalf("workers=%d report differs from the serial run", workers)
		}
		if par.BudgetExceeded != ref.BudgetExceeded {
			t.Fatalf("workers=%d BudgetExceeded = %d, want %d",
				workers, par.BudgetExceeded, ref.BudgetExceeded)
		}
	}
}

// TestBudgetChangesOutcome guards against a budget that is wired up but
// never enforced: a tight budget must change the campaign outcome
// relative to an unlimited run.
func TestBudgetChangesOutcome(t *testing.T) {
	free, err := RunSharded(shardedCfg(t, 400, 5), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shardedCfg(t, 400, 5)
	cfg.RowBudget = 20
	tight, err := RunSharded(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if free.BudgetExceeded != 0 {
		t.Fatalf("unlimited run tallied BudgetExceeded = %d", free.BudgetExceeded)
	}
	if tight.BudgetExceeded == 0 {
		t.Fatal("tight budget never engaged")
	}
	if bytes.Equal(marshalReport(t, free), marshalReport(t, tight)) {
		t.Fatal("budget had no observable effect on the report")
	}
}

// TestCheckpointResume interrupts a checkpointed campaign mid-run and
// resumes it: the final report must be byte-identical to an
// uninterrupted run, and the checkpoint file must be cleaned up once the
// campaign completes.
func TestCheckpointResume(t *testing.T) {
	cfg := shardedCfg(t, 800, 11) // 4 shards
	ref, err := RunShardedOpts(cfg, ShardedOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	interrupt := make(chan struct{})
	go func() {
		// Close the interrupt as soon as the first shard has been
		// checkpointed; with one worker the remaining shards then never
		// start.
		for {
			if _, err := os.Stat(path); err == nil {
				close(interrupt)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	_, err = RunShardedOpts(cfg, ShardedOptions{
		Workers: 1, CheckpointPath: path, Interrupt: interrupt,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint left behind after the interrupt: %v", err)
	}

	resumed, err := RunShardedOpts(cfg, ShardedOptions{
		Workers: 2, CheckpointPath: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalReport(t, ref), marshalReport(t, resumed)) {
		t.Fatal("resumed report differs from the uninterrupted run")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint not removed after completion: %v", err)
	}
}

// TestCheckpointRoundTripsPlanPairState: an interrupted-and-resumed
// campaign must carry the plan-pair tracker state losslessly through
// the checkpoint — same serialized snapshot, same pair set, and the
// same novel/repeated accounting as the uninterrupted run.
func TestCheckpointRoundTripsPlanPairState(t *testing.T) {
	cfg := shardedCfg(t, 800, 17) // 4 shards
	ref, err := RunShardedOpts(cfg, ShardedOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ref.PlanPairState == nil || ref.PlanPairsNovel == 0 {
		t.Fatalf("reference run tracked no pairs (novel=%d)", ref.PlanPairsNovel)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	interrupt := make(chan struct{})
	go func() {
		for {
			if _, err := os.Stat(path); err == nil {
				close(interrupt)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	_, err = RunShardedOpts(cfg, ShardedOptions{
		Workers: 1, CheckpointPath: path, Interrupt: interrupt,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	resumed, err := RunShardedOpts(cfg, ShardedOptions{
		Workers: 2, CheckpointPath: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref.PlanPairState, resumed.PlanPairState) {
		t.Fatal("resumed plan-pair state differs from the uninterrupted run")
	}
	if resumed.PlanPairsNovel != ref.PlanPairsNovel ||
		resumed.PlanPairsRepeated != ref.PlanPairsRepeated {
		t.Fatalf("pair counters drifted across resume: novel %d/%d repeated %d/%d",
			resumed.PlanPairsNovel, ref.PlanPairsNovel,
			resumed.PlanPairsRepeated, ref.PlanPairsRepeated)
	}
	// The snapshot must load back into a tracker with the same pair set.
	tr := feedback.NewPairTracker()
	if err := tr.LoadState(resumed.PlanPairState); err != nil {
		t.Fatalf("resumed state does not load: %v", err)
	}
	if tr.Pairs() == 0 {
		t.Fatal("resumed state loads empty")
	}
	reser, err := tr.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reser, resumed.PlanPairState) {
		t.Fatal("pair state does not round-trip byte-identically through Load/Save")
	}
}

// TestCheckpointFingerprintMismatch: a checkpoint recorded under one
// configuration must refuse to resume under another.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	recorded := shardedCfg(t, 400, 11).withDefaults()
	if err := saveCheckpoint(path, &checkpointFile{
		Fingerprint: fingerprint(recorded),
		TotalShards: 2,
		Seeds:       make([]int64, 2),
		Shards:      make([]*Report, 2),
	}, nil); err != nil {
		t.Fatal(err)
	}

	other := shardedCfg(t, 400, 12) // different seed
	if _, err := RunShardedOpts(other, ShardedOptions{
		Workers: 1, CheckpointPath: path, Resume: true,
	}); err == nil {
		t.Fatal("resume under a different configuration succeeded")
	}
}

// TestCheckpointResumeMissingFile: -resume with no checkpoint on disk is
// a fresh start, not an error.
func TestCheckpointResumeMissingFile(t *testing.T) {
	cfg := shardedCfg(t, 200, 13)
	path := filepath.Join(t.TempDir(), "absent.ckpt")
	rep, err := RunShardedOpts(cfg, ShardedOptions{
		Workers: 1, CheckpointPath: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunSharded(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalReport(t, ref), marshalReport(t, rep)) {
		t.Fatal("resume-from-nothing differs from a plain run")
	}
}
