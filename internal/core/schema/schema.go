// Package schema implements SQLancer++'s internal schema model (paper
// §3, Figure 3). The generator never queries the DBMS's metadata
// catalogs — those interfaces are DBMS-specific (paper challenge C2).
// Instead, it simulates the DDL it issues: a statement's effect is
// applied to the model only after the DBMS confirms successful
// execution.
package schema

import (
	"fmt"
	"strings"

	"sqlancerpp/internal/sqlast"
)

// Column is one column of a modeled relation.
type Column struct {
	Name       string
	Type       sqlast.Type
	NotNull    bool
	Unique     bool
	PrimaryKey bool
}

// Relation is a modeled table or view.
type Relation struct {
	Name    string
	Columns []Column
	IsView  bool
	// RowEstimate counts confirmed inserted rows (tables only).
	RowEstimate int
}

// Column returns a column by name, or nil.
func (r *Relation) Column(name string) *Column {
	for i := range r.Columns {
		if strings.EqualFold(r.Columns[i].Name, name) {
			return &r.Columns[i]
		}
	}
	return nil
}

// Index is a modeled index.
type Index struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
	Partial bool
}

// Model is the internal schema state.
type Model struct {
	relations []*Relation
	indexes   []*Index
	nextTable int
	nextView  int
	nextIndex int
}

// New returns an empty model (paper: initially O = {}).
func New() *Model { return &Model{} }

// Relations returns all modeled relations in creation order.
func (m *Model) Relations() []*Relation { return m.relations }

// Tables returns modeled base tables.
func (m *Model) Tables() []*Relation {
	var out []*Relation
	for _, r := range m.relations {
		if !r.IsView {
			out = append(out, r)
		}
	}
	return out
}

// Views returns modeled views.
func (m *Model) Views() []*Relation {
	var out []*Relation
	for _, r := range m.relations {
		if r.IsView {
			out = append(out, r)
		}
	}
	return out
}

// Indexes returns modeled indexes.
func (m *Model) Indexes() []*Index { return m.indexes }

// Relation returns a relation by name, or nil.
func (m *Model) Relation(name string) *Relation {
	for _, r := range m.relations {
		if strings.EqualFold(r.Name, name) {
			return r
		}
	}
	return nil
}

// FreeTableName returns a table name not present in the model (paper
// Listing 1's getFreeIndexName equivalent).
func (m *Model) FreeTableName() string {
	for {
		name := fmt.Sprintf("t%d", m.nextTable)
		m.nextTable++
		if m.Relation(name) == nil {
			return name
		}
	}
}

// FreeViewName returns an unused view name.
func (m *Model) FreeViewName() string {
	for {
		name := fmt.Sprintf("v%d", m.nextView)
		m.nextView++
		if m.Relation(name) == nil {
			return name
		}
	}
}

// FreeIndexName returns an unused index name.
func (m *Model) FreeIndexName() string {
	for {
		name := fmt.Sprintf("i%d", m.nextIndex)
		m.nextIndex++
		found := false
		for _, ix := range m.indexes {
			if strings.EqualFold(ix.Name, name) {
				found = true
				break
			}
		}
		if !found {
			return name
		}
	}
}

// FreeColumnName returns an unused column name for a relation.
func (m *Model) FreeColumnName(r *Relation) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("c%d", i)
		if r.Column(name) == nil {
			return name
		}
	}
}

// Apply simulates a *successfully executed* statement's effect on the
// schema (Figure 3: the object is added only after the DBMS confirms).
// View creation must go through ApplyView, because output column types
// are known to the generator, not derivable from the statement alone.
func (m *Model) Apply(stmt sqlast.Stmt) {
	switch st := stmt.(type) {
	case *sqlast.CreateTable:
		cols := make([]Column, len(st.Columns))
		for i, c := range st.Columns {
			cols[i] = Column{
				Name:       c.Name,
				Type:       c.Type,
				NotNull:    c.NotNull || c.PrimaryKey,
				Unique:     c.Unique,
				PrimaryKey: c.PrimaryKey,
			}
		}
		m.relations = append(m.relations, &Relation{Name: st.Name, Columns: cols})
	case *sqlast.CreateIndex:
		m.indexes = append(m.indexes, &Index{
			Name:    st.Name,
			Table:   st.Table,
			Columns: append([]string(nil), st.Columns...),
			Unique:  st.Unique,
			Partial: st.Where != nil,
		})
	case *sqlast.Insert:
		if r := m.Relation(st.Table); r != nil {
			r.RowEstimate += len(st.Rows)
		}
	case *sqlast.Delete:
		if r := m.Relation(st.Table); r != nil && st.Where == nil {
			r.RowEstimate = 0
		}
	case *sqlast.AlterTable:
		r := m.Relation(st.Table)
		if r == nil {
			return
		}
		if st.AddColumn != nil {
			r.Columns = append(r.Columns, Column{
				Name:    st.AddColumn.Name,
				Type:    st.AddColumn.Type,
				NotNull: st.AddColumn.NotNull,
				Unique:  st.AddColumn.Unique,
			})
			return
		}
		for i := range r.Columns {
			if strings.EqualFold(r.Columns[i].Name, st.DropColumn) {
				r.Columns = append(r.Columns[:i], r.Columns[i+1:]...)
				return
			}
		}
	case *sqlast.DropTable:
		m.drop(st.Name)
		var kept []*Index
		for _, ix := range m.indexes {
			if !strings.EqualFold(ix.Table, st.Name) {
				kept = append(kept, ix)
			}
		}
		m.indexes = kept
	case *sqlast.DropView:
		m.drop(st.Name)
	case *sqlast.DropIndex:
		for i, ix := range m.indexes {
			if strings.EqualFold(ix.Name, st.Name) {
				m.indexes = append(m.indexes[:i], m.indexes[i+1:]...)
				return
			}
		}
	}
}

// ApplyView records a successfully created view with its output columns.
func (m *Model) ApplyView(name string, cols []Column) {
	m.relations = append(m.relations, &Relation{Name: name, Columns: cols, IsView: true})
}

func (m *Model) drop(name string) {
	for i, r := range m.relations {
		if strings.EqualFold(r.Name, name) {
			m.relations = append(m.relations[:i], m.relations[i+1:]...)
			return
		}
	}
}
