package schema

import (
	"testing"

	"sqlancerpp/internal/sqlast"
)

// TestSchemaModelFigure3 reproduces the paper's Figure 3 scenario:
//
//	① CREATE TABLE t0 (c0 INT, PRIMARY KEY (c0));      -- ok
//	② CREATE VIEW v0 (c0) AS SELECT t0.c0 + 1 FROM t0;  -- ok
//	③ ALTER TABLE t0 DROP COLUMN c0;                    -- fails, no update
//	④ ALTER TABLE t0 ADD COLUMN c1 BOOLEAN;             -- ok
func TestSchemaModelFigure3(t *testing.T) {
	m := New()

	// ① — applied only after confirmed success.
	ct := &sqlast.CreateTable{Name: "t0", Columns: []sqlast.ColumnDef{
		{Name: "c0", Type: sqlast.TypeInt, PrimaryKey: true},
	}}
	m.Apply(ct)
	if r := m.Relation("t0"); r == nil || len(r.Columns) != 1 || !r.Columns[0].PrimaryKey {
		t.Fatal("① table not modeled")
	}

	// ② — the generator knows the view's output columns.
	m.ApplyView("v0", []Column{{Name: "c0", Type: sqlast.TypeInt}})
	if v := m.Relation("v0"); v == nil || !v.IsView {
		t.Fatal("② view not modeled")
	}

	// ③ — the DROP COLUMN failed on the DBMS, so Apply is never called;
	// the model still has c0.
	if m.Relation("t0").Column("c0") == nil {
		t.Fatal("③ model must be unchanged after a failed statement")
	}

	// ④ — ADD COLUMN succeeds.
	m.Apply(&sqlast.AlterTable{Table: "t0", AddColumn: &sqlast.ColumnDef{
		Name: "c1", Type: sqlast.TypeBool,
	}})
	r := m.Relation("t0")
	if len(r.Columns) != 2 || r.Column("c1") == nil || r.Column("c1").Type != sqlast.TypeBool {
		t.Fatal("④ added column not modeled")
	}
	if len(m.Tables()) != 1 || len(m.Views()) != 1 {
		t.Fatalf("relation partition wrong: %d tables, %d views",
			len(m.Tables()), len(m.Views()))
	}
}

func TestFreeNames(t *testing.T) {
	m := New()
	n1 := m.FreeTableName()
	m.Apply(&sqlast.CreateTable{Name: n1, Columns: []sqlast.ColumnDef{{Name: "c0", Type: sqlast.TypeInt}}})
	n2 := m.FreeTableName()
	if n1 == n2 {
		t.Fatalf("FreeTableName repeated %q", n1)
	}
	if m.FreeViewName() == "" || m.FreeIndexName() == "" {
		t.Fatal("free names must be non-empty")
	}
	r := m.Relation(n1)
	c1 := m.FreeColumnName(r)
	if r.Column(c1) != nil {
		t.Fatal("free column name already exists")
	}
}

func TestApplyLifecycle(t *testing.T) {
	m := New()
	m.Apply(&sqlast.CreateTable{Name: "t", Columns: []sqlast.ColumnDef{
		{Name: "a", Type: sqlast.TypeInt},
		{Name: "b", Type: sqlast.TypeText},
	}})
	m.Apply(&sqlast.Insert{Table: "t", Rows: [][]sqlast.Expr{{sqlast.IntLit(1)}, {sqlast.IntLit(2)}}})
	if m.Relation("t").RowEstimate != 2 {
		t.Fatal("insert row estimate not tracked")
	}
	m.Apply(&sqlast.CreateIndex{Name: "i", Table: "t", Columns: []string{"a"}, Unique: true})
	if len(m.Indexes()) != 1 || !m.Indexes()[0].Unique {
		t.Fatal("index not modeled")
	}
	m.Apply(&sqlast.AlterTable{Table: "t", DropColumn: "b"})
	if m.Relation("t").Column("b") != nil {
		t.Fatal("dropped column still modeled")
	}
	m.Apply(&sqlast.Delete{Table: "t"}) // unconditional delete
	if m.Relation("t").RowEstimate != 0 {
		t.Fatal("unconditional delete must reset the row estimate")
	}
	m.Apply(&sqlast.DropTable{Name: "t"})
	if m.Relation("t") != nil || len(m.Indexes()) != 0 {
		t.Fatal("dropped table (and its indexes) still modeled")
	}
}

func TestCaseInsensitiveLookup(t *testing.T) {
	m := New()
	m.Apply(&sqlast.CreateTable{Name: "Orders", Columns: []sqlast.ColumnDef{{Name: "ID", Type: sqlast.TypeInt}}})
	if m.Relation("orders") == nil || m.Relation("ORDERS") == nil {
		t.Fatal("relation lookup must be case-insensitive")
	}
	if m.Relation("Orders").Column("id") == nil {
		t.Fatal("column lookup must be case-insensitive")
	}
}
