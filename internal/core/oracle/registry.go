package oracle

// First-class oracle interface and registry. Each oracle registers
// itself with a name and a rotation weight; campaigns select oracles by
// name and dispatch through Schedule's deterministic weighted rotation.
// The registry is what makes oracles portable across the campaign, the
// reducer (which replays the *same* oracle by its reported name), and
// future oracle additions: a new oracle is one Register call away from
// participating in every campaign.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/sqlast"
)

// Case is one generated oracle test case: a base query (no WHERE) and a
// predicate to partition or filter by.
type Case struct {
	Base *sqlast.Select
	Pred sqlast.Expr
	// Seq is the campaign's test-case ordinal. Oracles that make an
	// internal deterministic choice (TLPAggregate's aggregate function)
	// derive it from Seq, so a reducer replaying the case by Seq makes
	// the same choice.
	Seq int
	// MaxPlans caps the plan specs PlanDiff diffs the baseline against
	// per query (0 selects DefaultMaxPlans; negative is unlimited).
	MaxPlans int
	// PlanSpec, when non-empty, is a serialized engine.PlanSpec: PlanDiff
	// skips enumeration and diffs the baseline against exactly this plan.
	// The reducer sets it from the bug's recorded losing spec, so a
	// replay re-executes the precise plan pair that diverged.
	PlanSpec string
	// Pairs, when non-nil, is the campaign's plan-pair coverage: PlanDiff
	// ranks plan specs whose (shape, spec) pair is unseen ahead of the
	// canonical order before applying MaxPlans, marks every executed
	// pair, and reports the novel/repeated split in the Result.
	Pairs PlanPairs
	// Enum, when non-nil, caches plan enumerations per query shape so
	// repeated shapes skip re-enumeration.
	Enum *PlanEnumMemo
	// CanonicalPlans disables the novelty *ranking* while keeping the
	// pair bookkeeping — the ablation arm benchmarks compare against.
	CanonicalPlans bool
}

// Oracle is a first-class test oracle.
type Oracle interface {
	// Name is the registry key, used for selection and bug attribution.
	Name() Name
	// Applicable reports whether the oracle can produce a meaningful
	// verdict for this case on this instance (e.g. PlanDiff needs the
	// instance's index paths enabled).
	Applicable(db *engine.DB, c *Case) bool
	// Check executes the oracle's queries and compares their results.
	Check(db *engine.DB, c *Case) Result
}

// Registration pairs an oracle with its rotation weight.
type Registration struct {
	Oracle Oracle
	Weight int
}

var (
	regMu sync.RWMutex
	// regs holds registrations in registration order — the registry's
	// canonical, deterministic order.
	regs []Registration
)

// Register adds an oracle to the registry. Weights must be positive;
// names must be unique.
func Register(o Oracle, weight int) error {
	if weight < 1 {
		return fmt.Errorf("oracle: weight %d for %s (want >= 1)", weight, o.Name())
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, r := range regs {
		if r.Oracle.Name() == o.Name() {
			return fmt.Errorf("oracle: %q already registered", o.Name())
		}
	}
	regs = append(regs, Registration{Oracle: o, Weight: weight})
	return nil
}

// Get returns a registered oracle by name.
func Get(name Name) (Oracle, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, r := range regs {
		if r.Oracle.Name() == name {
			return r.Oracle, true
		}
	}
	return nil, false
}

// DefaultNames returns every registered oracle name in registration
// order — the default oracle set of a campaign.
func DefaultNames() []Name {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Name, len(regs))
	for i, r := range regs {
		out[i] = r.Oracle.Name()
	}
	return out
}

// Select resolves oracle names to registrations, preserving registry
// order (so the rotation is a function of the *set*, not the spelling
// order of the selection).
func Select(names []Name) ([]Registration, error) {
	want := map[Name]bool{}
	for _, n := range names {
		want[n] = true
	}
	regMu.RLock()
	defer regMu.RUnlock()
	var out []Registration
	for _, r := range regs {
		if want[r.Oracle.Name()] {
			out = append(out, r)
			delete(want, r.Oracle.Name())
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, string(n))
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("oracle: unknown oracle(s) %s", strings.Join(unknown, ", "))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("oracle: empty oracle selection")
	}
	return out, nil
}

// TLPFamily returns the TLP-variant oracle names (classic, composed,
// aggregate) — the selection the legacy UseTLP toggle and the
// "tlp-family" alias expand to.
func TLPFamily() []Name {
	return []Name{TLPName, TLPComposedName, TLPAggregateName}
}

// ParseNames parses a user-facing oracle selection string: "" / "both" /
// "all" selects every registered oracle, "tlp-family" the TLP variants,
// and otherwise a comma-separated, case-insensitive list of registry
// names ("tlp,plandiff"). Registered names always resolve to themselves
// — "tlp" is the classic TLP oracle alone, "norec" is NoREC.
func ParseNames(s string) ([]Name, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "both", "all":
		return DefaultNames(), nil
	case "tlp-family":
		return TLPFamily(), nil
	}
	var out []Name
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		found := false
		for _, n := range DefaultNames() {
			if strings.EqualFold(string(n), part) {
				out = append(out, n)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("oracle: unknown oracle %q (registered: %s)",
				part, joinNames(DefaultNames()))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("oracle: empty oracle selection %q", s)
	}
	return out, nil
}

func joinNames(names []Name) string {
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = string(n)
	}
	return strings.Join(parts, ", ")
}

// Schedule builds one full cycle of a smooth weighted round-robin over
// the registrations: each oracle appears Weight times per cycle,
// interleaved (ties break toward earlier registration). The schedule is
// a pure function of the selected (oracle, weight) list, so a campaign
// dispatching schedule[case%len] rotates deterministically — the same
// seed and oracle set reproduce the same oracle per test case on any
// machine and worker count.
func Schedule(selected []Registration) []Oracle {
	total := 0
	for _, r := range selected {
		total += r.Weight
	}
	cur := make([]int, len(selected))
	out := make([]Oracle, 0, total)
	for len(out) < total {
		best := 0
		for i := range selected {
			cur[i] += selected[i].Weight
			if cur[i] > cur[best] {
				best = i
			}
		}
		cur[best] -= total
		out = append(out, selected[best].Oracle)
	}
	return out
}

// ---------------------------------------------------------------------
// Registered oracle implementations
// ---------------------------------------------------------------------

type tlpOracle struct{}

func (tlpOracle) Name() Name                          { return TLPName }
func (tlpOracle) Applicable(*engine.DB, *Case) bool   { return true }
func (tlpOracle) Check(db *engine.DB, c *Case) Result { return TLP(db, c.Base, c.Pred) }

type tlpComposedOracle struct{}

func (tlpComposedOracle) Name() Name                          { return TLPComposedName }
func (tlpComposedOracle) Applicable(*engine.DB, *Case) bool   { return true }
func (tlpComposedOracle) Check(db *engine.DB, c *Case) Result { return TLPComposed(db, c.Base, c.Pred) }

type tlpAggregateOracle struct{}

func (tlpAggregateOracle) Name() Name                        { return TLPAggregateName }
func (tlpAggregateOracle) Applicable(*engine.DB, *Case) bool { return true }
func (tlpAggregateOracle) Check(db *engine.DB, c *Case) Result {
	return TLPAggregate(db, c.Base, c.Pred, c.Seq)
}

type norecOracle struct{}

func (norecOracle) Name() Name                          { return NoRECName }
func (norecOracle) Applicable(*engine.DB, *Case) bool   { return true }
func (norecOracle) Check(db *engine.DB, c *Case) Result { return NoREC(db, c.Base, c.Pred) }

type planDiffOracle struct{}

func (planDiffOracle) Name() Name { return PlanDiffName }

// Applicable: PlanDiff needs the instance's index paths on — with the
// planner already suppressed, its two executions are the same plan.
func (planDiffOracle) Applicable(db *engine.DB, _ *Case) bool { return db.IndexPathsEnabled() }

func (planDiffOracle) Check(db *engine.DB, c *Case) Result { return PlanDiffCase(db, c) }

// init registers the built-in oracles. Weights approximate the paper's
// TLP/NoREC alternation while giving the plan-diffing oracle a steady
// share of the rotation.
func init() {
	for _, reg := range []struct {
		o Oracle
		w int
	}{
		{tlpOracle{}, 3},
		{tlpComposedOracle{}, 2},
		{tlpAggregateOracle{}, 1},
		{norecOracle{}, 3},
		{planDiffOracle{}, 2},
	} {
		if err := Register(reg.o, reg.w); err != nil {
			panic(err)
		}
	}
}
