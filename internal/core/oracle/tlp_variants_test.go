package oracle

import (
	"strings"
	"testing"

	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/faults"
)

func TestTLPComposedCleanPasses(t *testing.T) {
	db := cleanDB(t)
	for _, pred := range []string{"a = 1", "a IS NULL", "NOT a = 2"} {
		res := TLPComposed(db, parseSelect(t, "SELECT * FROM t"), parseExpr(t, pred))
		if res.Outcome != OK {
			t.Fatalf("TLPComposed(%s) = %v (%s)", pred, res.Outcome, res.Detail)
		}
		// Server-side composition runs exactly two queries.
		if len(res.Queries) != 2 {
			t.Fatalf("composed TLP must run 2 queries, ran %d", len(res.Queries))
		}
		if !strings.Contains(res.Queries[1], "UNION ALL") {
			t.Fatalf("composed query must use UNION ALL: %s", res.Queries[1])
		}
	}
}

func TestTLPComposedDetectsFilterFault(t *testing.T) {
	db := faultyDB(t)
	res := TLPComposed(db, parseSelect(t, "SELECT * FROM t"), parseExpr(t, "a = 1"))
	if res.Outcome != Bug {
		t.Fatalf("composed TLP must detect the fault, got %v (%s)", res.Outcome, res.Detail)
	}
}

func TestTLPComposedDetectsUnionDedupFault(t *testing.T) {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = "oracle-test-union-fault"
	d.Faults = faults.NewSet([]faults.Fault{
		{ID: "u1", Kind: faults.UnionAllDedup, Class: faults.Logic},
	})
	db := engine.Open(d)
	for _, sql := range []string{
		"CREATE TABLE t (a INTEGER)",
		"INSERT INTO t (a) VALUES (1), (1), (2)", // duplicates matter
	} {
		if err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	res := TLPComposed(db, parseSelect(t, "SELECT * FROM t"), parseExpr(t, "a = 1"))
	if res.Outcome != Bug {
		t.Fatalf("composed TLP must catch the UNION ALL dedup fault, got %v", res.Outcome)
	}
	if len(res.Triggered) == 0 || res.Triggered[0] != "u1" {
		t.Fatalf("ground truth not attributed: %v", res.Triggered)
	}
	// Classic TLP cannot see this fault — it composes client-side.
	res = TLP(db, parseSelect(t, "SELECT * FROM t"), parseExpr(t, "a = 1"))
	if res.Outcome != OK {
		t.Fatalf("client-side TLP should pass here, got %v (%s)", res.Outcome, res.Detail)
	}
}

func TestTLPComposedFallsBackWithoutUnionAll(t *testing.T) {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = "oracle-test-no-union"
	delete(d.Clauses, "UNION ALL")
	db := engine.Open(d, engine.WithoutFaults())
	for _, sql := range []string{
		"CREATE TABLE t (a INTEGER)",
		"INSERT INTO t (a) VALUES (1)",
	} {
		if err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	res := TLPComposed(db, parseSelect(t, "SELECT * FROM t"), parseExpr(t, "a = 1"))
	if res.Outcome != OK {
		t.Fatalf("fallback failed: %v (%s)", res.Outcome, res.Detail)
	}
	if len(res.Queries) != 4 {
		t.Fatalf("fallback must use the 4-query client-side TLP, ran %d", len(res.Queries))
	}
}

func TestTLPAggregateCleanPasses(t *testing.T) {
	db := cleanDB(t)
	for aggIdx := 0; aggIdx < 4; aggIdx++ {
		for _, base := range []string{"SELECT a FROM t", "SELECT * FROM t"} {
			res := TLPAggregate(db, parseSelect(t, base), parseExpr(t, "a = 1"), aggIdx)
			if res.Outcome != OK {
				t.Fatalf("TLPAggregate(%s, idx %d) = %v (%s)",
					base, aggIdx, res.Outcome, res.Detail)
			}
		}
	}
}

func TestTLPAggregateDetectsFault(t *testing.T) {
	db := faultyDB(t)
	found := false
	for aggIdx := 0; aggIdx < 4; aggIdx++ {
		// Predicate over s: the NULL-s row is wrongly kept in the first
		// partition, and its non-NULL a value shifts the recombined
		// aggregate.
		res := TLPAggregate(db, parseSelect(t, "SELECT a FROM t"), parseExpr(t, "s = 'x'"), aggIdx)
		if res.Outcome == Bug {
			found = true
		}
	}
	if !found {
		t.Fatal("no aggregate variant detected the CmpNullTrue fault")
	}
}

func TestCombineAggregates(t *testing.T) {
	vals := []engine.Value{engine.Int(3), engine.Null(), engine.Int(5)}
	if v, ok := combineAggregates("COUNT", vals); !ok || v.I != 8 {
		t.Errorf("COUNT combine = %v", v.Render())
	}
	if v, ok := combineAggregates("SUM", vals); !ok || v.I != 8 {
		t.Errorf("SUM combine = %v", v.Render())
	}
	if v, ok := combineAggregates("MIN", vals); !ok || v.I != 3 {
		t.Errorf("MIN combine = %v", v.Render())
	}
	if v, ok := combineAggregates("MAX", vals); !ok || v.I != 5 {
		t.Errorf("MAX combine = %v", v.Render())
	}
	allNull := []engine.Value{engine.Null(), engine.Null(), engine.Null()}
	if v, ok := combineAggregates("SUM", allNull); !ok || !v.IsNull() {
		t.Error("SUM of all-NULL partitions must be NULL")
	}
	if v, ok := combineAggregates("MAX", allNull); !ok || !v.IsNull() {
		t.Error("MAX of all-NULL partitions must be NULL")
	}
}

// TestCombineAggregatesKindGuard: COUNT/SUM must refuse non-integer
// partition values instead of folding Value.I garbage into the total —
// the system under test is deliberately faulty and may return anything.
func TestCombineAggregatesKindGuard(t *testing.T) {
	vals := []engine.Value{engine.Int(3), engine.Text("boom")}
	if _, ok := combineAggregates("COUNT", vals); ok {
		t.Error("COUNT must reject a TEXT partition value")
	}
	if _, ok := combineAggregates("SUM", vals); ok {
		t.Error("SUM must reject a TEXT partition value")
	}
	// MIN/MAX order any kinds (storage-class order), so they stay ok.
	if v, ok := combineAggregates("MAX", vals); !ok || v.K != engine.KindText {
		t.Errorf("MAX over mixed kinds = %v, %v", v.Render(), ok)
	}
}

// TestTLPAggregateMalformedShapeIsInvalid: a base query whose aggregate
// arm returns zero rows (LIMIT 0 survives the clone) must yield Invalid,
// not a panic that kills the whole campaign.
func TestTLPAggregateMalformedShapeIsInvalid(t *testing.T) {
	db := cleanDB(t)
	base := parseSelect(t, "SELECT a FROM t LIMIT 0")
	for aggIdx := 0; aggIdx < 4; aggIdx++ {
		res := TLPAggregate(db, base, parseExpr(t, "a = 1"), aggIdx)
		if res.Outcome != Invalid {
			t.Fatalf("zero-row aggregate shape: got %v (%s), want Invalid",
				res.Outcome, res.Detail)
		}
	}
}
