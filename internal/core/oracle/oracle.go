// Package oracle implements the DBMS-agnostic test oracles SQLancer++
// applies (paper §3, "Result validator"): Ternary Logic Partitioning
// (TLP, with its UNION-ALL-composed and aggregate variants),
// Non-optimizing Reference Engine Construction (NoREC), and a DQP-style
// plan-diffing oracle (PlanDiff). All detect logic bugs by executing two
// (or more) semantically equivalent queries — or the same query under
// two plans — and comparing their results.
//
// Oracles are first-class: each implements the Oracle interface and is
// registered, with a rotation weight, in the package registry
// (registry.go). Campaigns dispatch through a deterministic weighted
// rotation over the selected registrations and attribute every bug
// report to the oracle's registered name.
package oracle

import (
	"fmt"
	"sort"

	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/sqlast"
)

// Outcome of one oracle check.
type Outcome int

// Outcomes.
const (
	// OK: the queries executed and agreed.
	OK Outcome = iota
	// Bug: the queries executed and disagreed — a logic bug.
	Bug
	// Invalid: at least one query failed to execute (the test case does
	// not count as valid; its error feeds the validity feedback).
	Invalid
)

// Name identifies an oracle.
type Name string

// Oracle names. These are the registry keys: Config/flag oracle
// selection and bug-report attribution use them.
const (
	TLPName          Name = "TLP"
	TLPComposedName  Name = "TLPComposed"
	TLPAggregateName Name = "TLPAggregate"
	NoRECName        Name = "NoREC"
	PlanDiffName     Name = "PlanDiff"
)

// Result is the outcome of applying an oracle to one test case.
type Result struct {
	Oracle  Name
	Outcome Outcome
	// Queries holds the executed SQL (base first).
	Queries []string
	// Err is the first execution error for Invalid outcomes.
	Err error
	// Detail describes the mismatch for Bug outcomes.
	Detail string
	// Triggered is the union of ground-truth fault IDs fired by the
	// executed queries (evaluation only).
	Triggered []string
	// MaxCost is the executor cost the campaign's performance watchdog
	// judges: the highest cost among the queries — except for PlanDiff,
	// which reports the cost of its *baseline* (auto-plan) execution only
	// (the enumerated alternative plans are deliberate, not a performance
	// symptom; both costs of a diverging pair appear in Detail).
	MaxCost int64
	// PlanSpec is the serialized losing engine.PlanSpec of a PlanDiff
	// bug: the enumerated plan whose result diverged from the baseline.
	// The reducer feeds it back through Case.PlanSpec so the replay
	// executes the exact plan pair.
	PlanSpec string
	// PairsNovel and PairsRepeated count the plan specs PlanDiff
	// executed for this case that its pair tracker had not / had already
	// diffed for the query's shape (zero when the case carried no
	// tracker). The campaign sums them into the report, where the ratio
	// shows the novelty scheduler working.
	PairsNovel    int
	PairsRepeated int
}

// multiset builds a count map over rendered rows.
func multiset(res *engine.Result) map[string]int {
	m := map[string]int{}
	for _, r := range res.RenderRows() {
		m[r]++
	}
	return m
}

// diffMultisets describes the difference between two row multisets.
func diffMultisets(a, b map[string]int) string {
	var keys []string
	seen := map[string]bool{}
	for k := range a {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	for k := range b {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if a[k] != b[k] {
			return fmt.Sprintf("row %q: %d vs %d", k, a[k], b[k])
		}
	}
	return ""
}

// runner tracks executed queries, their individual costs, and triggered
// faults.
type runner struct {
	db        *engine.DB
	queries   []string
	costs     []int64 // per-query executor cost, parallel to queries
	triggered map[string]bool
	maxCost   int64
}

func newRunner(db *engine.DB) *runner {
	return &runner{db: db, triggered: map[string]bool{}}
}

func (r *runner) query(sel *sqlast.Select) (*engine.Result, error) {
	sql := sel.SQL()
	r.queries = append(r.queries, sql)
	res, err := r.db.Query(sql)
	for _, id := range r.db.TriggeredFaults() {
		r.triggered[id] = true
	}
	c := r.db.LastCost()
	r.costs = append(r.costs, c)
	if c > r.maxCost {
		r.maxCost = c
	}
	return res, err
}

func (r *runner) result(oracle Name, outcome Outcome, err error, detail string) Result {
	var trig []string
	for id := range r.triggered {
		trig = append(trig, id)
	}
	sort.Strings(trig)
	return Result{
		Oracle:    oracle,
		Outcome:   outcome,
		Queries:   r.queries,
		Err:       err,
		Detail:    detail,
		Triggered: trig,
		MaxCost:   r.maxCost,
	}
}

// TLP applies Ternary Logic Partitioning: the rows of the base query must
// equal the multiset union of the three partitions WHERE p, WHERE NOT p,
// and WHERE p IS NULL (Rigger & Su, OOPSLA 2020).
func TLP(db *engine.DB, base *sqlast.Select, pred sqlast.Expr) Result {
	r := newRunner(db)

	baseRes, err := r.query(base)
	if err != nil {
		return r.result(TLPName, Invalid, err, "")
	}

	mkPart := func(p sqlast.Expr) *sqlast.Select {
		part := sqlast.CloneSelect(base)
		part.Where = p
		return part
	}
	union := map[string]int{}
	parts := []sqlast.Expr{
		sqlast.CloneExpr(pred),
		&sqlast.Unary{Op: sqlast.UNot, X: sqlast.CloneExpr(pred)},
		&sqlast.IsNull{X: sqlast.CloneExpr(pred)},
	}
	for _, p := range parts {
		res, err := r.query(mkPart(p))
		if err != nil {
			return r.result(TLPName, Invalid, err, "")
		}
		for row, n := range multiset(res) {
			union[row] += n
		}
	}
	if d := diffMultisets(multiset(baseRes), union); d != "" {
		return r.result(TLPName, Bug, nil,
			"TLP partition mismatch: "+d)
	}
	return r.result(TLPName, OK, nil, "")
}

// NoREC compares an optimizable query, SELECT COUNT(*) FROM ... WHERE p,
// against its unoptimizable counterpart, SELECT (p) IS TRUE FROM ...,
// whose predicate the engine evaluates in the projection (reference)
// path (Rigger & Su, ESEC/FSE 2020).
func NoREC(db *engine.DB, base *sqlast.Select, pred sqlast.Expr) Result {
	r := newRunner(db)

	opt := sqlast.CloneSelect(base)
	opt.Items = []sqlast.SelectItem{{Expr: &sqlast.Func{Name: "COUNT", Star: true}}}
	opt.Where = sqlast.CloneExpr(pred)
	optRes, err := r.query(opt)
	if err != nil {
		return r.result(NoRECName, Invalid, err, "")
	}
	if len(optRes.Rows) != 1 || optRes.Rows[0][0].K != engine.KindInt {
		return r.result(NoRECName, Invalid,
			fmt.Errorf("NoREC: unexpected COUNT result shape"), "")
	}
	optCount := optRes.Rows[0][0].I

	ref := sqlast.CloneSelect(base)
	ref.Items = []sqlast.SelectItem{{Expr: &sqlast.IsBool{X: sqlast.CloneExpr(pred), Val: true}}}
	refRes, err := r.query(ref)
	if err != nil {
		return r.result(NoRECName, Invalid, err, "")
	}
	var refCount int64
	for _, row := range refRes.Rows {
		if row[0].K == engine.KindBool && row[0].B {
			refCount++
		}
	}
	if optCount != refCount {
		return r.result(NoRECName, Bug, nil, fmt.Sprintf(
			"NoREC count mismatch: optimized %d vs reference %d", optCount, refCount))
	}
	return r.result(NoRECName, OK, nil, "")
}
