package oracle

import (
	"testing"

	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
)

// TestScheduleDeterministicAndWeighted: one schedule cycle contains each
// selected oracle exactly Weight times, interleaved deterministically —
// two computations over the same selection are identical element-wise.
func TestScheduleDeterministicAndWeighted(t *testing.T) {
	sel, err := Select(DefaultNames())
	if err != nil {
		t.Fatal(err)
	}
	a, b := Schedule(sel), Schedule(sel)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	counts := map[Name]int{}
	for i := range a {
		if a[i].Name() != b[i].Name() {
			t.Fatalf("schedule diverges at %d: %s vs %s", i, a[i].Name(), b[i].Name())
		}
		counts[a[i].Name()]++
	}
	for _, r := range sel {
		if counts[r.Oracle.Name()] != r.Weight {
			t.Errorf("%s appears %d times per cycle, want %d",
				r.Oracle.Name(), counts[r.Oracle.Name()], r.Weight)
		}
	}
	// Smooth WRR interleaves: the highest-weight oracles must not all be
	// bunched at the cycle's start. With weights 3,2,1,3,2 the first two
	// slots must be distinct oracles.
	if len(a) >= 2 && a[0].Name() == a[1].Name() {
		t.Errorf("schedule not interleaved: starts %s, %s", a[0].Name(), a[1].Name())
	}
}

// TestSelectIsOrderAndDuplicateInsensitive: the rotation is a function
// of the oracle *set*; spelling order and duplicates must not matter.
func TestSelectIsOrderAndDuplicateInsensitive(t *testing.T) {
	a, err := Select([]Name{PlanDiffName, TLPName, NoRECName})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select([]Name{NoRECName, TLPName, PlanDiffName, TLPName})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("selection sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Oracle.Name() != b[i].Oracle.Name() || a[i].Weight != b[i].Weight {
			t.Fatalf("selection %d differs: %s/%d vs %s/%d", i,
				a[i].Oracle.Name(), a[i].Weight, b[i].Oracle.Name(), b[i].Weight)
		}
	}
	if _, err := Select([]Name{"NoSuchOracle"}); err == nil {
		t.Error("unknown oracle name must be rejected")
	}
	if _, err := Select(nil); err == nil {
		t.Error("empty selection must be rejected")
	}
}

func TestParseNames(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []Name
	}{
		{"", DefaultNames()},
		{"both", DefaultNames()},
		{"all", DefaultNames()},
		{"tlp-family", TLPFamily()},
		{"tlp", []Name{TLPName}}, // registered names resolve to themselves
		{"norec", []Name{NoRECName}},
		{"plandiff", []Name{PlanDiffName}},
		{"TLP, PlanDiff", []Name{TLPName, PlanDiffName}},
	} {
		got, err := ParseNames(tc.in)
		if err != nil {
			t.Errorf("ParseNames(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseNames(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseNames(%q) = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
	if _, err := ParseNames("tlp,bogus"); err == nil {
		t.Error("ParseNames must reject unknown names")
	}
}

// TestRegistryLookupAndApplicability: every registered oracle resolves
// by name, and PlanDiff declares itself inapplicable on an instance
// whose index paths are suppressed.
func TestRegistryLookupAndApplicability(t *testing.T) {
	for _, n := range DefaultNames() {
		o, ok := Get(n)
		if !ok || o.Name() != n {
			t.Fatalf("registry lookup failed for %s", n)
		}
	}
	if _, ok := Get("NoSuchOracle"); ok {
		t.Error("unknown name must not resolve")
	}

	pd, _ := Get(PlanDiffName)
	db := engine.Open(dialect.MustGet("sqlite"), engine.WithoutFaults())
	if !pd.Applicable(db, nil) {
		t.Error("PlanDiff must be applicable with index paths on")
	}
	db.SetPlanSpec(engine.PlanSpec{DisableIndexPaths: true})
	if pd.Applicable(db, nil) {
		t.Error("PlanDiff must be inapplicable with index paths suppressed")
	}
}
