package oracle

// Plan-pair novelty scheduling support. A campaign regenerates the same
// query shapes over and over with fresh literals; PlanDiff's plan
// budget (Case.MaxPlans) re-spent in fixed canonical order keeps
// diffing the same cheap prefix. The campaign threads two pieces of
// state through Case so repeated shapes get cheaper and more
// productive: a PlanPairs tracker that remembers which (shape, spec)
// pairs were already diffed — PlanDiffCase ranks unseen pairs first —
// and a PlanEnumMemo that caches the enumerated plan set per shape so a
// repeated shape skips re-enumeration entirely.

import (
	"sync"

	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/sqlast"
)

// PlanPairs is the per-campaign (query shape, plan spec) coverage the
// novelty scheduler consults; feedback.PairTracker implements it. Seen
// reports whether the pair was already diffed, Mark records a diff.
type PlanPairs interface {
	Seen(shape uint64, spec string) bool
	Mark(shape uint64, spec string)
}

// enumEntry caches one shape's enumerated plan set with the specs'
// canonical serializations pre-rendered (ranking and pair bookkeeping
// key on the strings, so rendering once per shape instead of once per
// case is most of the memo's win).
type enumEntry struct {
	specs []engine.PlanSpec
	keys  []string
}

// PlanEnumMemo caches EnumeratePlans results per query shape. The key
// is the full fingerprint — the identifier-normalized Shape alone does
// not determine the plan set (the same shape over differently-indexed
// tables enumerates differently), so the memo also pins the concrete
// identifier hash. Entries can go stale when mid-epoch DDL changes the
// catalog under an already-memoized shape; that is safe by the plan
// spec contract — inapplicable forcing degrades to a scan, never errors
// — and costs at most a wasted diff, so the campaign only resets the
// memo at database-epoch boundaries.
type PlanEnumMemo struct {
	mu      sync.Mutex
	entries map[engine.PlanShapeKey]*enumEntry
}

// NewPlanEnumMemo returns an empty memo.
func NewPlanEnumMemo() *PlanEnumMemo {
	return &PlanEnumMemo{entries: map[engine.PlanShapeKey]*enumEntry{}}
}

// Reset drops every entry (called at database-epoch boundaries, where
// the catalog the entries were enumerated against is discarded).
func (m *PlanEnumMemo) Reset() {
	m.mu.Lock()
	m.entries = map[engine.PlanShapeKey]*enumEntry{}
	m.mu.Unlock()
}

// lookup returns the cached enumeration for key, computing and caching
// it on first sight.
func (m *PlanEnumMemo) lookup(db *engine.DB, sel *sqlast.Select, key engine.PlanShapeKey) ([]engine.PlanSpec, []string) {
	m.mu.Lock()
	e := m.entries[key]
	m.mu.Unlock()
	if e == nil {
		specs := engine.EnumeratePlans(db, sel)
		keys := make([]string, len(specs))
		for i := range specs {
			keys[i] = specs[i].String()
		}
		e = &enumEntry{specs: specs, keys: keys}
		m.mu.Lock()
		m.entries[key] = e
		m.mu.Unlock()
	}
	return e.specs, e.keys
}
