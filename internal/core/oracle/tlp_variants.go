package oracle

import (
	"fmt"

	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/feature"
	"sqlancerpp/internal/sqlast"
)

// tlpPartitions builds the three partition predicates p, NOT p, p IS NULL.
func tlpPartitions(pred sqlast.Expr) []sqlast.Expr {
	return []sqlast.Expr{
		sqlast.CloneExpr(pred),
		&sqlast.Unary{Op: sqlast.UNot, X: sqlast.CloneExpr(pred)},
		&sqlast.IsNull{X: sqlast.CloneExpr(pred)},
	}
}

// TLPComposed is the server-side variant of TLP: the three partitions are
// combined with UNION ALL in a single compound query, so the set-
// operation machinery of the DBMS is exercised too. Only valid on
// dialects that support UNION ALL.
func TLPComposed(db *engine.DB, base *sqlast.Select, pred sqlast.Expr) Result {
	if !db.Dialect().SupportsClause(feature.UnionAll) {
		res := TLP(db, base, pred)
		res.Oracle = TLPComposedName // attribution follows the registered name
		return res
	}
	r := newRunner(db)

	baseRes, err := r.query(base)
	if err != nil {
		return r.result(TLPComposedName, Invalid, err, "")
	}

	parts := tlpPartitions(pred)
	first := sqlast.CloneSelect(base)
	first.Where = parts[0]
	for _, p := range parts[1:] {
		arm := sqlast.CloneSelect(base)
		arm.Where = p
		first.Compound = append(first.Compound,
			sqlast.CompoundPart{Op: sqlast.SetUnionAll, Select: arm})
	}
	unionRes, err := r.query(first)
	if err != nil {
		return r.result(TLPComposedName, Invalid, err, "")
	}
	if d := diffMultisets(multiset(baseRes), multiset(unionRes)); d != "" {
		return r.result(TLPComposedName, Bug, nil,
			"TLP (UNION ALL composed) partition mismatch: "+d)
	}
	return r.result(TLPComposedName, OK, nil, "")
}

// aggFuncs are the aggregate variants of TLP (Rigger & Su, OOPSLA 2020
// §4.2: TLP generalizes to aggregate queries by recombining per-partition
// aggregates).
var aggFuncs = []string{"COUNT", "SUM", "MIN", "MAX"}

// TLPAggregate checks SELECT AGG(expr) FROM ... against the three
// partitions' aggregates recombined:
//
//	COUNT/SUM: base = p1 + p2 + p3 (NULL-aware)
//	MIN/MAX:   base = MIN/MAX of the partition results
//
// The aggregate argument is the first projected expression of the base
// query (or the first column for star projections). aggIdx selects the
// aggregate function deterministically from the case's seed material.
func TLPAggregate(db *engine.DB, base *sqlast.Select, pred sqlast.Expr, aggIdx int) Result {
	r := newRunner(db)
	agg := aggFuncs[((aggIdx%len(aggFuncs))+len(aggFuncs))%len(aggFuncs)]

	arg := firstProjection(base)
	if arg == nil {
		agg = "COUNT" // star projection: fall back to COUNT(*)
	}
	mkAgg := func(where sqlast.Expr) *sqlast.Select {
		q := sqlast.CloneSelect(base)
		call := &sqlast.Func{Name: agg}
		if arg == nil {
			call.Star = true
		} else {
			call.Args = []sqlast.Expr{sqlast.CloneExpr(arg)}
		}
		q.Items = []sqlast.SelectItem{{Expr: call}}
		q.Where = where
		return q
	}

	baseRes, err := r.query(mkAgg(nil))
	if err != nil {
		return r.result(TLPAggregateName, Invalid, err, "")
	}
	// The system under test is deliberately faulty: a malformed result
	// shape must degrade to Invalid (like NoREC's COUNT shape guard),
	// never panic and kill the campaign.
	baseVal, ok := scalarValue(baseRes)
	if !ok {
		return r.result(TLPAggregateName, Invalid,
			fmt.Errorf("TLP aggregate: unexpected %s result shape", agg), "")
	}

	var partVals []engine.Value
	for _, p := range tlpPartitions(pred) {
		res, err := r.query(mkAgg(p))
		if err != nil {
			return r.result(TLPAggregateName, Invalid, err, "")
		}
		v, ok := scalarValue(res)
		if !ok {
			return r.result(TLPAggregateName, Invalid,
				fmt.Errorf("TLP aggregate: unexpected %s partition result shape", agg), "")
		}
		partVals = append(partVals, v)
	}

	combined, ok := combineAggregates(agg, partVals)
	if !ok {
		return r.result(TLPAggregateName, Invalid,
			fmt.Errorf("TLP aggregate: non-numeric %s partition value", agg), "")
	}
	if !engine.Equal(baseVal, combined) {
		return r.result(TLPAggregateName, Bug, nil, fmt.Sprintf(
			"TLP aggregate (%s) mismatch: base %s vs recombined %s",
			agg, baseVal.Render(), combined.Render()))
	}
	return r.result(TLPAggregateName, OK, nil, "")
}

// scalarValue extracts the single value of a 1×1 result, reporting
// whether the result has that shape.
func scalarValue(res *engine.Result) (engine.Value, bool) {
	if res == nil || len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return engine.Value{}, false
	}
	return res.Rows[0][0], true
}

// firstProjection extracts an expression usable as the aggregate
// argument.
func firstProjection(base *sqlast.Select) sqlast.Expr {
	for i := range base.Items {
		if !base.Items[i].Star && base.Items[i].Expr != nil {
			return base.Items[i].Expr
		}
	}
	return nil // star projection: the caller falls back to COUNT(*)
}

// combineAggregates recombines per-partition aggregate values. For COUNT
// and SUM every non-NULL partition value must be an integer — a faulty
// engine may hand back anything, and blindly reading Value.I would fold
// garbage into the recombination; such shapes report !ok and the check
// degrades to Invalid.
func combineAggregates(agg string, parts []engine.Value) (engine.Value, bool) {
	switch agg {
	case "COUNT":
		var total int64
		for _, v := range parts {
			if v.IsNull() {
				continue
			}
			if v.K != engine.KindInt {
				return engine.Value{}, false
			}
			total += v.I
		}
		return engine.Int(total), true
	case "SUM":
		allNull := true
		var total int64
		for _, v := range parts {
			if v.IsNull() {
				continue
			}
			if v.K != engine.KindInt {
				return engine.Value{}, false
			}
			allNull = false
			total += v.I
		}
		if allNull {
			return engine.Null(), true
		}
		return engine.Int(total), true
	default: // MIN, MAX order values of any kind
		var best engine.Value = engine.Null()
		for _, v := range parts {
			if v.IsNull() {
				continue
			}
			if best.IsNull() {
				best = v
				continue
			}
			c := engine.Compare(v, best)
			if (agg == "MAX" && c > 0) || (agg == "MIN" && c < 0) {
				best = v
			}
		}
		return best, true
	}
}
