package oracle

import (
	"fmt"

	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/feature"
	"sqlancerpp/internal/sqlast"
)

// tlpPartitions builds the three partition predicates p, NOT p, p IS NULL.
func tlpPartitions(pred sqlast.Expr) []sqlast.Expr {
	return []sqlast.Expr{
		sqlast.CloneExpr(pred),
		&sqlast.Unary{Op: sqlast.UNot, X: sqlast.CloneExpr(pred)},
		&sqlast.IsNull{X: sqlast.CloneExpr(pred)},
	}
}

// TLPComposed is the server-side variant of TLP: the three partitions are
// combined with UNION ALL in a single compound query, so the set-
// operation machinery of the DBMS is exercised too. Only valid on
// dialects that support UNION ALL.
func TLPComposed(db *engine.DB, base *sqlast.Select, pred sqlast.Expr) Result {
	if !db.Dialect().SupportsClause(feature.UnionAll) {
		return TLP(db, base, pred)
	}
	r := newRunner(db)

	baseRes, err := r.query(base)
	if err != nil {
		return r.result(TLPName, Invalid, err, "")
	}

	parts := tlpPartitions(pred)
	first := sqlast.CloneSelect(base)
	first.Where = parts[0]
	for _, p := range parts[1:] {
		arm := sqlast.CloneSelect(base)
		arm.Where = p
		first.Compound = append(first.Compound,
			sqlast.CompoundPart{Op: sqlast.SetUnionAll, Select: arm})
	}
	unionRes, err := r.query(first)
	if err != nil {
		return r.result(TLPName, Invalid, err, "")
	}
	if d := diffMultisets(multiset(baseRes), multiset(unionRes)); d != "" {
		return r.result(TLPName, Bug, nil,
			"TLP (UNION ALL composed) partition mismatch: "+d)
	}
	return r.result(TLPName, OK, nil, "")
}

// aggFuncs are the aggregate variants of TLP (Rigger & Su, OOPSLA 2020
// §4.2: TLP generalizes to aggregate queries by recombining per-partition
// aggregates).
var aggFuncs = []string{"COUNT", "SUM", "MIN", "MAX"}

// TLPAggregate checks SELECT AGG(expr) FROM ... against the three
// partitions' aggregates recombined:
//
//	COUNT/SUM: base = p1 + p2 + p3 (NULL-aware)
//	MIN/MAX:   base = MIN/MAX of the partition results
//
// The aggregate argument is the first projected expression of the base
// query (or the first column for star projections). aggIdx selects the
// aggregate function deterministically from the case's seed material.
func TLPAggregate(db *engine.DB, base *sqlast.Select, pred sqlast.Expr, aggIdx int) Result {
	r := newRunner(db)
	agg := aggFuncs[((aggIdx%len(aggFuncs))+len(aggFuncs))%len(aggFuncs)]

	arg := firstProjection(base)
	if arg == nil {
		agg = "COUNT" // star projection: fall back to COUNT(*)
	}
	mkAgg := func(where sqlast.Expr) *sqlast.Select {
		q := sqlast.CloneSelect(base)
		call := &sqlast.Func{Name: agg}
		if arg == nil {
			call.Star = true
		} else {
			call.Args = []sqlast.Expr{sqlast.CloneExpr(arg)}
		}
		q.Items = []sqlast.SelectItem{{Expr: call}}
		q.Where = where
		return q
	}

	baseRes, err := r.query(mkAgg(nil))
	if err != nil {
		return r.result(TLPName, Invalid, err, "")
	}
	baseVal := baseRes.Rows[0][0]

	var partVals []engine.Value
	for _, p := range tlpPartitions(pred) {
		res, err := r.query(mkAgg(p))
		if err != nil {
			return r.result(TLPName, Invalid, err, "")
		}
		partVals = append(partVals, res.Rows[0][0])
	}

	combined := combineAggregates(agg, partVals)
	if !engine.Equal(baseVal, combined) {
		return r.result(TLPName, Bug, nil, fmt.Sprintf(
			"TLP aggregate (%s) mismatch: base %s vs recombined %s",
			agg, baseVal.Render(), combined.Render()))
	}
	return r.result(TLPName, OK, nil, "")
}

// firstProjection extracts an expression usable as the aggregate
// argument.
func firstProjection(base *sqlast.Select) sqlast.Expr {
	for i := range base.Items {
		if !base.Items[i].Star && base.Items[i].Expr != nil {
			return base.Items[i].Expr
		}
	}
	return nil // star projection: the caller falls back to COUNT(*)
}

// combineAggregates recombines per-partition aggregate values.
func combineAggregates(agg string, parts []engine.Value) engine.Value {
	switch agg {
	case "COUNT":
		var total int64
		for _, v := range parts {
			if !v.IsNull() {
				total += v.I
			}
		}
		return engine.Int(total)
	case "SUM":
		allNull := true
		var total int64
		for _, v := range parts {
			if !v.IsNull() {
				allNull = false
				total += v.I
			}
		}
		if allNull {
			return engine.Null()
		}
		return engine.Int(total)
	default: // MIN, MAX
		var best engine.Value = engine.Null()
		for _, v := range parts {
			if v.IsNull() {
				continue
			}
			if best.IsNull() {
				best = v
				continue
			}
			c := engine.Compare(v, best)
			if (agg == "MAX" && c > 0) || (agg == "MIN" && c < 0) {
				best = v
			}
		}
		return best
	}
}
