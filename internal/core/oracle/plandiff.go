package oracle

// PlanDiff is a DQP/QPG-style plan-diffing oracle (cf. "Testing Database
// Engines via Query Plan Guidance", ICSE 2023): it executes the *same*
// query on the same instance under every plan of a deterministic
// equivalent-plan space and reports any multiset divergence from the
// baseline (auto-planned) execution. The space comes from
// engine.EnumeratePlans: the legacy planner-off plan, per-relation
// force-scan and force-index variants (including every narrower
// composite equality-prefix width — the composite-vs-leading axis),
// the covering-off plan where an index could serve the statement
// index-only (the covering-projection axis), per-join probe
// suppression, and the swapped join input order. Because
// all executions share the statement text, the database state, and the
// reference evaluation semantics, any divergence is a plan-dependent
// defect; several members of the injected index-path fault family are
// observable to no other oracle, and some (PrefixSpanTruncate under a
// width-capped forced plan) are invisible even to the legacy
// index-on/off pair this oracle used to flip.

import (
	"fmt"

	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/sqlast"
)

// DefaultMaxPlans is the per-query cap on enumerated plan specs when
// Case.MaxPlans is unset. It covers the typical enumeration of the
// generator's oracle shapes (one or two matched indexes plus a join
// axis) while bounding the oracle's per-case execution count, so the
// default campaign throughput stays within a small factor of the old
// two-execution oracle.
const DefaultMaxPlans = 6

// PlanDiff runs base WHERE pred under the baseline plan and diffs it
// against each enumerated equivalent plan (see PlanDiffCase).
func PlanDiff(db *engine.DB, base *sqlast.Select, pred sqlast.Expr) Result {
	return PlanDiffCase(db, &Case{Base: base, Pred: pred})
}

// PlanDiffCase applies the plan-diffing oracle to one case. The
// instance's plan spec is restored before returning. With c.PlanSpec
// set, enumeration is skipped and the baseline is diffed against exactly
// that plan — the reducer's replay path. Result.MaxCost carries the
// baseline execution's cost only — the alternative plans are deliberate,
// not a performance symptom — and a Bug's Detail reports the serialized
// losing spec with both costs, which Result.PlanSpec repeats verbatim
// for the bug report.
func PlanDiffCase(db *engine.DB, c *Case) Result {
	r := newRunner(db)

	q := sqlast.CloneSelect(c.Base)
	q.Where = sqlast.CloneExpr(c.Pred)

	prev := db.PlanSpec()
	defer db.SetPlanSpec(prev)

	db.SetPlanSpec(engine.PlanSpec{})
	baseRes, err := r.query(q)
	if err != nil {
		return r.result(PlanDiffName, Invalid, err, "")
	}
	baseCost := r.costs[0]
	baseSet := multiset(baseRes)

	var specs []engine.PlanSpec
	dropped := 0
	if c.PlanSpec != "" {
		spec, perr := engine.ParsePlanSpec(c.PlanSpec)
		if perr != nil {
			return r.result(PlanDiffName, Invalid, perr, "")
		}
		specs = []engine.PlanSpec{spec}
	} else {
		specs = engine.EnumeratePlans(db, q)
		max := c.MaxPlans
		if max == 0 {
			max = DefaultMaxPlans
		}
		if max > 0 && len(specs) > max {
			dropped = len(specs) - max
			specs = specs[:max]
		}
	}

	for _, spec := range specs {
		db.SetPlanSpec(spec)
		altRes, err := r.query(q)
		if err != nil {
			return r.result(PlanDiffName, Invalid, err, "")
		}
		if d := diffMultisets(baseSet, multiset(altRes)); d != "" {
			res := r.result(PlanDiffName, Bug, nil, fmt.Sprintf(
				"PlanDiff divergence (auto plan vs plan [%s]): %s [cost auto=%d alt=%d]",
				spec.String(), d, baseCost, r.costs[len(r.costs)-1]))
			res.MaxCost = baseCost
			res.PlanSpec = spec.String()
			res.PlansDropped = dropped
			return res
		}
	}
	res := r.result(PlanDiffName, OK, nil, "")
	res.MaxCost = baseCost
	res.PlansDropped = dropped
	return res
}
