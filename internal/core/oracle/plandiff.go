package oracle

// PlanDiff is a DQP/QPG-style plan-diffing oracle (cf. "Testing Database
// Engines via Query Plan Guidance", ICSE 2023): it executes the *same*
// query twice on the same instance — once with the engine's index-backed
// access paths (base-table probes and index-nested-loop joins) enabled,
// once with them suppressed via the per-query plan toggle — and reports
// any multiset divergence. Because the two executions share the
// statement text, the database state, and the reference evaluation
// semantics, any divergence is a plan-dependent defect: the
// index-path fault family (StaleIndexAfterUpdate, IndexRangeBoundary,
// PartialIndexScan, JoinIndexResidual) is exactly the set of injected
// bugs that perturb one plan's row flow but not the other's — several of
// which no partition-based oracle can see, since every query of a TLP or
// NoREC case runs under the same plan.

import (
	"fmt"

	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/sqlast"
)

// PlanDiff runs base WHERE pred under the indexed and the suppressed
// plan on db and compares the row multisets. The instance's plan toggle
// is restored before returning. Result.MaxCost carries the indexed
// execution's cost only — the full scan is deliberate, not a
// performance symptom — and a Bug's Detail reports both costs.
func PlanDiff(db *engine.DB, base *sqlast.Select, pred sqlast.Expr) Result {
	r := newRunner(db)

	q := sqlast.CloneSelect(base)
	q.Where = sqlast.CloneExpr(pred)

	idxRes, err := r.query(q)
	if err != nil {
		return r.result(PlanDiffName, Invalid, err, "")
	}

	prev := db.IndexPathsEnabled()
	db.SetIndexPaths(false)
	fullRes, err := r.query(q)
	db.SetIndexPaths(prev)
	if err != nil {
		return r.result(PlanDiffName, Invalid, err, "")
	}

	idxCost, fullCost := r.costs[0], r.costs[1]
	if d := diffMultisets(multiset(idxRes), multiset(fullRes)); d != "" {
		res := r.result(PlanDiffName, Bug, nil, fmt.Sprintf(
			"PlanDiff divergence (index paths vs full scan): %s [cost indexed=%d fullscan=%d]",
			d, idxCost, fullCost))
		res.MaxCost = idxCost
		return res
	}
	res := r.result(PlanDiffName, OK, nil, "")
	res.MaxCost = idxCost
	return res
}
