package oracle

// PlanDiff is a DQP/QPG-style plan-diffing oracle (cf. "Testing Database
// Engines via Query Plan Guidance", ICSE 2023): it executes the *same*
// query on the same instance under every plan of a deterministic
// equivalent-plan space and reports any multiset divergence from the
// baseline (auto-planned) execution. The space comes from
// engine.EnumeratePlans: the legacy planner-off plan, per-relation
// force-scan and force-index variants (including every narrower
// composite equality-prefix width — the composite-vs-leading axis),
// the covering-off plan where an index could serve the statement
// index-only (the covering-projection axis), per-join probe
// suppression, and every non-identity permutation of the leading
// inner-join chain (the join-order axis). Because
// all executions share the statement text, the database state, and the
// reference evaluation semantics, any divergence is a plan-dependent
// defect; several members of the injected index-path fault family are
// observable to no other oracle, and some (PrefixSpanTruncate under a
// width-capped forced plan) are invisible even to the legacy
// index-on/off pair this oracle used to flip.

import (
	"fmt"

	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/sqlast"
)

// DefaultMaxPlans is the per-query cap on enumerated plan specs when
// Case.MaxPlans is unset. It covers the typical enumeration of the
// generator's oracle shapes (one or two matched indexes plus a join
// axis) while bounding the oracle's per-case execution count, so the
// default campaign throughput stays within a small factor of the old
// two-execution oracle.
const DefaultMaxPlans = 6

// PlanDiff runs base WHERE pred under the baseline plan and diffs it
// against each enumerated equivalent plan (see PlanDiffCase).
func PlanDiff(db *engine.DB, base *sqlast.Select, pred sqlast.Expr) Result {
	return PlanDiffCase(db, &Case{Base: base, Pred: pred})
}

// PlanDiffCase applies the plan-diffing oracle to one case. The
// instance's plan spec is restored before returning. With c.PlanSpec
// set, enumeration and scheduling are skipped and the baseline is
// diffed against exactly that plan — the reducer's replay path. With
// c.Pairs set, enumerated specs whose (shape, spec) pair the tracker
// has not seen rank ahead of the canonical order before the MaxPlans
// cap applies (canonical order breaks ties), every executed pair is
// marked, and the Result reports the novel/repeated split.
// Result.MaxCost carries the baseline execution's cost only — the
// alternative plans are deliberate, not a performance symptom — and a
// Bug's Detail reports the serialized losing spec with both costs,
// which Result.PlanSpec repeats verbatim for the bug report.
//
// An alternative plan that *errors* where the baseline succeeded is
// itself a plan-dependent divergence and reports a Bug with the losing
// spec — except for two error classes a correct engine produces
// plan-dependently by design, which stay Invalid: the deterministic
// execution budget (a plan touching more rows may exceed it without any
// defect) and runtime evaluation errors (a plan that filters rows
// earlier never evaluates the failing expression — LN(0) behind an
// index probe is reachable only from the scan plan).
func PlanDiffCase(db *engine.DB, c *Case) Result {
	r := newRunner(db)

	q := sqlast.CloneSelect(c.Base)
	q.Where = sqlast.CloneExpr(c.Pred)

	prev := db.PlanSpec()
	defer db.SetPlanSpec(prev)

	db.SetPlanSpec(engine.PlanSpec{})
	baseRes, err := r.query(q)
	if err != nil {
		return r.result(PlanDiffName, Invalid, err, "")
	}
	baseCost := r.costs[0]
	baseSet := multiset(baseRes)

	var specs []engine.PlanSpec
	var keys []string
	var shape engine.PlanShapeKey
	if c.PlanSpec != "" {
		spec, perr := engine.ParsePlanSpec(c.PlanSpec)
		if perr != nil {
			return r.result(PlanDiffName, Invalid, perr, "")
		}
		specs = []engine.PlanSpec{spec}
		keys = []string{c.PlanSpec}
	} else {
		if c.Pairs != nil || c.Enum != nil {
			shape = engine.PlanShape(q)
		}
		if c.Enum != nil {
			specs, keys = c.Enum.lookup(db, q, shape)
		} else {
			specs = engine.EnumeratePlans(db, q)
			keys = make([]string, len(specs))
			for i := range specs {
				keys[i] = specs[i].String()
			}
		}
		if c.Pairs != nil && !c.CanonicalPlans {
			specs, keys = rankNovelFirst(c.Pairs, shape.Shape, specs, keys)
		}
		max := c.MaxPlans
		if max == 0 {
			max = DefaultMaxPlans
		}
		if max > 0 && len(specs) > max {
			specs = specs[:max]
			keys = keys[:max]
		}
	}

	novel, repeated := 0, 0
	for i, spec := range specs {
		if c.Pairs != nil && c.PlanSpec == "" {
			if c.Pairs.Seen(shape.Shape, keys[i]) {
				repeated++
			} else {
				novel++
				c.Pairs.Mark(shape.Shape, keys[i])
			}
		}
		db.SetPlanSpec(spec)
		altRes, err := r.query(q)
		if err != nil {
			if engine.IsBudgetExceeded(err) || engine.IsTimeout(err) ||
				engine.ClassOf(err) == engine.ErrRuntime {
				return r.result(PlanDiffName, Invalid, err, "")
			}
			res := r.result(PlanDiffName, Bug, nil, fmt.Sprintf(
				"PlanDiff divergence (auto plan succeeded, plan [%s] errored): %v [cost auto=%d]",
				keys[i], err, baseCost))
			res.MaxCost = baseCost
			res.PlanSpec = keys[i]
			res.PairsNovel, res.PairsRepeated = novel, repeated
			return res
		}
		if d := diffMultisets(baseSet, multiset(altRes)); d != "" {
			res := r.result(PlanDiffName, Bug, nil, fmt.Sprintf(
				"PlanDiff divergence (auto plan vs plan [%s]): %s [cost auto=%d alt=%d]",
				keys[i], d, baseCost, r.costs[len(r.costs)-1]))
			res.MaxCost = baseCost
			res.PlanSpec = keys[i]
			res.PairsNovel, res.PairsRepeated = novel, repeated
			return res
		}
	}
	res := r.result(PlanDiffName, OK, nil, "")
	res.MaxCost = baseCost
	res.PairsNovel, res.PairsRepeated = novel, repeated
	return res
}

// rankNovelFirst stably partitions the enumerated specs into pairs the
// tracker has not seen for this shape followed by pairs it has,
// preserving canonical enumeration order within each partition — the
// deterministic tie-break that keeps equal campaign states scheduling
// equal plans at every worker count.
func rankNovelFirst(pairs PlanPairs, shape uint64, specs []engine.PlanSpec, keys []string) ([]engine.PlanSpec, []string) {
	outS := make([]engine.PlanSpec, 0, len(specs))
	outK := make([]string, 0, len(keys))
	for i := range specs {
		if !pairs.Seen(shape, keys[i]) {
			outS = append(outS, specs[i])
			outK = append(outK, keys[i])
		}
	}
	if len(outS) == len(specs) {
		return specs, keys
	}
	for i := range specs {
		if pairs.Seen(shape, keys[i]) {
			outS = append(outS, specs[i])
			outK = append(outK, keys[i])
		}
	}
	return outS, outK
}
