package oracle

import (
	"testing"

	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/sqlast"
	"sqlancerpp/internal/sqlparse"
)

func parseSelect(t *testing.T, sql string) *sqlast.Select {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*sqlast.Select)
}

func parseExpr(t *testing.T, sql string) sqlast.Expr {
	t.Helper()
	e, err := sqlparse.ParseExpr(sql)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func cleanDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.Open(dialect.MustGet("sqlite"), engine.WithoutFaults())
	for _, sql := range []string{
		"CREATE TABLE t (a INTEGER, s TEXT)",
		"INSERT INTO t (a, s) VALUES (1, 'x'), (2, NULL), (NULL, 'y')",
	} {
		if err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func faultyDB(t *testing.T) *engine.DB {
	t.Helper()
	d := dialect.MustGet("sqlite").Clone()
	d.Name = "oracle-test-faulted"
	d.Faults = faults.NewSet([]faults.Fault{
		{ID: "f1", Kind: faults.CmpNullTrue, Class: faults.Logic, Param: "="},
	})
	db := engine.Open(d)
	for _, sql := range []string{
		"CREATE TABLE t (a INTEGER, s TEXT)",
		"INSERT INTO t (a, s) VALUES (1, 'x'), (2, NULL), (NULL, 'y')",
	} {
		if err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestTLPCleanPasses(t *testing.T) {
	db := cleanDB(t)
	for _, pred := range []string{
		"a = 1", "a IS NULL", "s LIKE 'x%'", "a BETWEEN 0 AND 5",
		"a IN (1, NULL)", "NOT a = 2", "(a = 1) OR (s = 'y')",
	} {
		res := TLP(db, parseSelect(t, "SELECT * FROM t"), parseExpr(t, pred))
		if res.Outcome != OK {
			t.Fatalf("TLP(%s) = %v (%s), want OK", pred, res.Outcome, res.Detail)
		}
		if len(res.Queries) != 4 {
			t.Fatalf("TLP must run 4 queries, ran %d", len(res.Queries))
		}
	}
}

func TestTLPDetectsFault(t *testing.T) {
	db := faultyDB(t)
	res := TLP(db, parseSelect(t, "SELECT * FROM t"), parseExpr(t, "a = 1"))
	if res.Outcome != Bug {
		t.Fatalf("TLP must detect the CmpNullTrue fault, got %v", res.Outcome)
	}
	if len(res.Triggered) == 0 || res.Triggered[0] != "f1" {
		t.Fatalf("ground truth not propagated: %v", res.Triggered)
	}
	if res.Detail == "" {
		t.Fatal("bug result must carry a detail message")
	}
}

func TestNoRECCleanPasses(t *testing.T) {
	db := cleanDB(t)
	for _, pred := range []string{
		"a = 1", "a IS NOT NULL", "s GLOB '?'", "a NOT IN (2)",
	} {
		res := NoREC(db, parseSelect(t, "SELECT * FROM t"), parseExpr(t, pred))
		if res.Outcome != OK {
			t.Fatalf("NoREC(%s) = %v (%s), want OK", pred, res.Outcome, res.Detail)
		}
	}
}

func TestNoRECDetectsFault(t *testing.T) {
	db := faultyDB(t)
	res := NoREC(db, parseSelect(t, "SELECT * FROM t"), parseExpr(t, "a = 1"))
	if res.Outcome != Bug {
		t.Fatalf("NoREC must detect the CmpNullTrue fault, got %v (%s)", res.Outcome, res.Detail)
	}
}

func TestOracleInvalidOnError(t *testing.T) {
	db := cleanDB(t)
	// GCD is unsupported on sqlite: the test case is invalid, not a bug.
	res := TLP(db, parseSelect(t, "SELECT * FROM t"), parseExpr(t, "GCD(a, 2) = 1"))
	if res.Outcome != Invalid || res.Err == nil {
		t.Fatalf("unsupported feature must yield Invalid, got %v", res.Outcome)
	}
	res = NoREC(db, parseSelect(t, "SELECT * FROM t"), parseExpr(t, "GCD(a, 2) = 1"))
	if res.Outcome != Invalid {
		t.Fatalf("unsupported feature must yield Invalid, got %v", res.Outcome)
	}
}

func TestOracleDoesNotMutateInputs(t *testing.T) {
	db := cleanDB(t)
	base := parseSelect(t, "SELECT * FROM t")
	pred := parseExpr(t, "a = 1")
	before := base.SQL() + "|" + pred.SQL()
	TLP(db, base, pred)
	NoREC(db, base, pred)
	if base.SQL()+"|"+pred.SQL() != before {
		t.Fatal("oracles must not mutate the base query or predicate")
	}
}

func TestTLPJoinBase(t *testing.T) {
	db := cleanDB(t)
	if err := db.Exec("CREATE TABLE u (b INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("INSERT INTO u (b) VALUES (1), (NULL)"); err != nil {
		t.Fatal(err)
	}
	base := parseSelect(t, "SELECT t.a, u.b FROM t LEFT JOIN u ON t.a = u.b")
	res := TLP(db, base, parseExpr(t, "t.a = u.b"))
	if res.Outcome != OK {
		t.Fatalf("clean TLP over join failed: %s", res.Detail)
	}
}
