package oracle

import (
	"fmt"
	"strings"
	"testing"

	"sqlancerpp/internal/core/feedback"
	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/sqlast"
)

func mustExec(t *testing.T, db *engine.DB, stmts ...string) {
	t.Helper()
	for _, s := range stmts {
		if err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

func staleDialect(name string) *dialect.Dialect {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = name
	d.Faults = faults.NewSet([]faults.Fault{{
		ID: name + "-stale", Dialect: name, Class: faults.Logic,
		Kind: faults.StaleIndexAfterUpdate,
	}})
	return d
}

// TestPlanDiffDetectsStaleIndex: with the StaleIndexAfterUpdate fault
// active, the indexed execution returns detached pre-update rows while
// the suppressed (full-scan) execution sees the fresh ones — PlanDiff
// must report the divergence, attribute the ground-truth fault, judge
// the perf watchdog on the indexed cost, and leave the plan toggle on.
func TestPlanDiffDetectsStaleIndex(t *testing.T) {
	db := engine.Open(staleDialect("pd-stale-1"))
	mustExec(t, db,
		"CREATE TABLE t (c0 INTEGER, c1 TEXT)",
		"CREATE INDEX i0 ON t (c0)",
	)
	for i := 0; i < 64; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'r%d')", i%16, i))
	}
	// The fault makes UPDATE skip index maintenance: key 5's entries go
	// stale (the rows now carry c0 = 105).
	mustExec(t, db, "UPDATE t SET c0 = 105 WHERE c0 = 5")

	base := parseSelect(t, "SELECT * FROM t")
	pred := &sqlast.Binary{Op: sqlast.OpEq,
		L: &sqlast.ColumnRef{Column: "c0"}, R: sqlast.IntLit(5)}

	res := PlanDiff(db, base, pred)
	if res.Outcome != Bug {
		t.Fatalf("outcome = %v, want Bug (detail %q)", res.Outcome, res.Detail)
	}
	if res.Oracle != PlanDiffName {
		t.Errorf("oracle = %s, want %s", res.Oracle, PlanDiffName)
	}
	found := false
	for _, id := range res.Triggered {
		if id == "pd-stale-1-stale" {
			found = true
		}
	}
	if !found {
		t.Errorf("ground-truth fault not attributed: %v", res.Triggered)
	}
	if len(res.Queries) != 2 || res.Queries[0] != res.Queries[1] {
		t.Errorf("PlanDiff must execute the same query twice: %v", res.Queries)
	}
	if !strings.Contains(res.Detail, "cost auto=") || !strings.Contains(res.Detail, "alt=") {
		t.Errorf("Detail must report both plans' costs: %q", res.Detail)
	}
	if res.PlanSpec != "noindex" {
		t.Errorf("losing spec = %q, want the planner-off plan", res.PlanSpec)
	}
	if !strings.Contains(res.Detail, "[noindex]") {
		t.Errorf("Detail must serialize the losing plan spec: %q", res.Detail)
	}
	// MaxCost judges the indexed run: it must be far below the full
	// scan's cost, which the deliberate second execution paid.
	if res.MaxCost <= 0 || res.MaxCost >= 64 {
		t.Errorf("MaxCost = %d, want the indexed probe's cost (< 64 rows)", res.MaxCost)
	}
	if !db.IndexPathsEnabled() {
		t.Error("PlanDiff must restore the instance's plan toggle")
	}
}

// TestPlanDiffReplaysRecordedSpecVerbatim: with Case.PlanSpec set, the
// oracle must skip enumeration and diff the baseline against exactly
// that plan — two executions, same verdict — which is how the reducer
// replays the precise plan pair a bug was found under.
func TestPlanDiffReplaysRecordedSpecVerbatim(t *testing.T) {
	db := engine.Open(staleDialect("pd-stale-2"))
	mustExec(t, db,
		"CREATE TABLE t (c0 INTEGER, c1 TEXT)",
		"CREATE INDEX i0 ON t (c0)",
	)
	for i := 0; i < 64; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'r%d')", i%16, i))
	}
	mustExec(t, db, "UPDATE t SET c0 = 105 WHERE c0 = 5")

	base := parseSelect(t, "SELECT * FROM t")
	pred := &sqlast.Binary{Op: sqlast.OpEq,
		L: &sqlast.ColumnRef{Column: "c0"}, R: sqlast.IntLit(5)}

	found := PlanDiffCase(db, &Case{Base: base, Pred: pred})
	if found.Outcome != Bug || found.PlanSpec == "" {
		t.Fatalf("expected a bug with a recorded spec, got %v / %q", found.Outcome, found.PlanSpec)
	}

	replay := PlanDiffCase(db, &Case{Base: base, Pred: pred, PlanSpec: found.PlanSpec})
	if replay.Outcome != Bug {
		t.Fatalf("replay with the recorded spec must reproduce: %v", replay.Outcome)
	}
	if len(replay.Queries) != 2 {
		t.Fatalf("replay must execute exactly the recorded pair, got %d queries", len(replay.Queries))
	}
	if replay.PlanSpec != found.PlanSpec {
		t.Errorf("replay spec %q != recorded %q", replay.PlanSpec, found.PlanSpec)
	}
	if !strings.Contains(replay.Detail, "["+found.PlanSpec+"]") {
		t.Errorf("replay detail must name the spec verbatim: %q", replay.Detail)
	}

	// A malformed recorded spec must fail closed (Invalid), not enumerate.
	bad := PlanDiffCase(db, &Case{Base: base, Pred: pred, PlanSpec: "rel:t"})
	if bad.Outcome != Invalid {
		t.Errorf("malformed spec must be Invalid, got %v", bad.Outcome)
	}
}

// TestPlanDiffCapAndPairScheduling: the MaxPlans cap bounds the executed
// plan pairs; with a pair tracker attached, the budget is re-spent on
// unseen (shape, spec) pairs — a repeated shape diffs the next specs in
// canonical order instead of re-diffing the same prefix — and the
// CanonicalPlans ablation restores the prefix-re-diffing behavior.
func TestPlanDiffCapAndPairScheduling(t *testing.T) {
	db := engine.Open(dialect.MustGet("sqlite"), engine.WithoutFaults())
	mustExec(t, db,
		"CREATE TABLE t (c0 INTEGER, c1 INTEGER)",
		"CREATE INDEX ia ON t (c0)",
		"CREATE INDEX iab ON t (c0, c1)",
	)
	for i := 0; i < 32; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i%4, i%8))
	}
	base := parseSelect(t, "SELECT * FROM t")
	sel := parseSelect(t, "SELECT * FROM t WHERE c0 = 1 AND c1 = 2")

	pairs := feedback.NewPairTracker()
	full := PlanDiffCase(db, &Case{Base: base, Pred: sel.Where, MaxPlans: -1, Pairs: pairs})
	if full.Outcome != OK {
		t.Fatalf("unlimited run: %v (%q)", full.Outcome, full.Detail)
	}
	enumerated := len(full.Queries) - 1
	if enumerated < 4 {
		t.Fatalf("setup enumerates only %d plans, need >= 4", enumerated)
	}
	if full.PairsNovel != enumerated || full.PairsRepeated != 0 {
		t.Fatalf("first sight: novel=%d repeated=%d, want %d/0",
			full.PairsNovel, full.PairsRepeated, enumerated)
	}

	// The identical case again: every pair is covered, none novel.
	again := PlanDiffCase(db, &Case{Base: base, Pred: sel.Where, MaxPlans: -1, Pairs: pairs})
	if again.PairsNovel != 0 || again.PairsRepeated != enumerated {
		t.Errorf("repeat: novel=%d repeated=%d, want 0/%d",
			again.PairsNovel, again.PairsRepeated, enumerated)
	}

	// Capped runs with a fresh tracker: the cap bounds executions, and the
	// second run spends its budget on the *next* unseen pairs, so two runs
	// at cap 2 cover 4 distinct pairs.
	fresh := feedback.NewPairTracker()
	capped := PlanDiffCase(db, &Case{Base: base, Pred: sel.Where, MaxPlans: 2, Pairs: fresh})
	if len(capped.Queries) != 3 {
		t.Fatalf("cap 2 must execute baseline + 2 plans, got %d queries", len(capped.Queries))
	}
	if capped.PairsNovel != 2 || capped.PairsRepeated != 0 {
		t.Errorf("capped first run: novel=%d repeated=%d, want 2/0",
			capped.PairsNovel, capped.PairsRepeated)
	}
	capped2 := PlanDiffCase(db, &Case{Base: base, Pred: sel.Where, MaxPlans: 2, Pairs: fresh})
	if capped2.PairsNovel != 2 || capped2.PairsRepeated != 0 {
		t.Errorf("capped second run must rank unseen pairs first: novel=%d repeated=%d",
			capped2.PairsNovel, capped2.PairsRepeated)
	}
	if fresh.Pairs() != 4 {
		t.Errorf("tracker holds %d pairs, want 4", fresh.Pairs())
	}

	// CanonicalPlans keeps the bookkeeping but disables the ranking: the
	// second run re-diffs the same canonical prefix.
	abl := feedback.NewPairTracker()
	PlanDiffCase(db, &Case{Base: base, Pred: sel.Where, MaxPlans: 2, Pairs: abl, CanonicalPlans: true})
	abl2 := PlanDiffCase(db, &Case{Base: base, Pred: sel.Where, MaxPlans: 2, Pairs: abl, CanonicalPlans: true})
	if abl2.PairsNovel != 0 || abl2.PairsRepeated != 2 {
		t.Errorf("ablation second run: novel=%d repeated=%d, want 0/2",
			abl2.PairsNovel, abl2.PairsRepeated)
	}

	// The enumeration memo must not change what executes: same counters,
	// same queries, one enumeration.
	memo := NewPlanEnumMemo()
	memoPairs := feedback.NewPairTracker()
	m1 := PlanDiffCase(db, &Case{Base: base, Pred: sel.Where, MaxPlans: 2, Pairs: memoPairs, Enum: memo})
	m2 := PlanDiffCase(db, &Case{Base: base, Pred: sel.Where, MaxPlans: 2, Pairs: memoPairs, Enum: memo})
	if m1.PairsNovel != 2 || m2.PairsNovel != 2 {
		t.Errorf("memoized runs: novel %d then %d, want 2/2", m1.PairsNovel, m2.PairsNovel)
	}
	if len(memo.entries) != 1 {
		t.Errorf("memo holds %d entries, want 1", len(memo.entries))
	}
}

// TestPlanDiffCleanEngineNeverFires: on a fault-free engine the two
// plans are observationally identical by construction; PlanDiff must
// return OK (or Invalid for queries that fail) — never Bug.
func TestPlanDiffCleanEngineNeverFires(t *testing.T) {
	d := dialect.MustGet("sqlite")
	db := engine.Open(d, engine.WithoutFaults())
	mustExec(t, db,
		"CREATE TABLE t (c0 INTEGER, c1 TEXT)",
		"CREATE INDEX i0 ON t (c0)",
	)
	for i := 0; i < 48; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'r%d')", i%8, i))
	}
	mustExec(t, db, "UPDATE t SET c0 = 99 WHERE c0 = 3")

	base := parseSelect(t, "SELECT * FROM t")
	for _, predSQL := range []string{"c0 = 3", "c0 <= 4", "c0 >= 99", "c0 = 99 AND c1 = 'r3'"} {
		sel := parseSelect(t, "SELECT * FROM t WHERE "+predSQL)
		res := PlanDiff(db, base, sel.Where)
		if res.Outcome == Bug {
			t.Fatalf("clean engine: PlanDiff fired on %q: %s", predSQL, res.Detail)
		}
	}
}
