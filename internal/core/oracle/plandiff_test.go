package oracle

import (
	"fmt"
	"strings"
	"testing"

	"sqlancerpp/internal/dialect"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/sqlast"
)

func mustExec(t *testing.T, db *engine.DB, stmts ...string) {
	t.Helper()
	for _, s := range stmts {
		if err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

func staleDialect(name string) *dialect.Dialect {
	d := dialect.MustGet("sqlite").Clone()
	d.Name = name
	d.Faults = faults.NewSet([]faults.Fault{{
		ID: name + "-stale", Dialect: name, Class: faults.Logic,
		Kind: faults.StaleIndexAfterUpdate,
	}})
	return d
}

// TestPlanDiffDetectsStaleIndex: with the StaleIndexAfterUpdate fault
// active, the indexed execution returns detached pre-update rows while
// the suppressed (full-scan) execution sees the fresh ones — PlanDiff
// must report the divergence, attribute the ground-truth fault, judge
// the perf watchdog on the indexed cost, and leave the plan toggle on.
func TestPlanDiffDetectsStaleIndex(t *testing.T) {
	db := engine.Open(staleDialect("pd-stale-1"))
	mustExec(t, db,
		"CREATE TABLE t (c0 INTEGER, c1 TEXT)",
		"CREATE INDEX i0 ON t (c0)",
	)
	for i := 0; i < 64; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'r%d')", i%16, i))
	}
	// The fault makes UPDATE skip index maintenance: key 5's entries go
	// stale (the rows now carry c0 = 105).
	mustExec(t, db, "UPDATE t SET c0 = 105 WHERE c0 = 5")

	base := parseSelect(t, "SELECT * FROM t")
	pred := &sqlast.Binary{Op: sqlast.OpEq,
		L: &sqlast.ColumnRef{Column: "c0"}, R: sqlast.IntLit(5)}

	res := PlanDiff(db, base, pred)
	if res.Outcome != Bug {
		t.Fatalf("outcome = %v, want Bug (detail %q)", res.Outcome, res.Detail)
	}
	if res.Oracle != PlanDiffName {
		t.Errorf("oracle = %s, want %s", res.Oracle, PlanDiffName)
	}
	found := false
	for _, id := range res.Triggered {
		if id == "pd-stale-1-stale" {
			found = true
		}
	}
	if !found {
		t.Errorf("ground-truth fault not attributed: %v", res.Triggered)
	}
	if len(res.Queries) != 2 || res.Queries[0] != res.Queries[1] {
		t.Errorf("PlanDiff must execute the same query twice: %v", res.Queries)
	}
	if !strings.Contains(res.Detail, "cost auto=") || !strings.Contains(res.Detail, "alt=") {
		t.Errorf("Detail must report both plans' costs: %q", res.Detail)
	}
	if res.PlanSpec != "noindex" {
		t.Errorf("losing spec = %q, want the planner-off plan", res.PlanSpec)
	}
	if !strings.Contains(res.Detail, "[noindex]") {
		t.Errorf("Detail must serialize the losing plan spec: %q", res.Detail)
	}
	// MaxCost judges the indexed run: it must be far below the full
	// scan's cost, which the deliberate second execution paid.
	if res.MaxCost <= 0 || res.MaxCost >= 64 {
		t.Errorf("MaxCost = %d, want the indexed probe's cost (< 64 rows)", res.MaxCost)
	}
	if !db.IndexPathsEnabled() {
		t.Error("PlanDiff must restore the instance's plan toggle")
	}
}

// TestPlanDiffReplaysRecordedSpecVerbatim: with Case.PlanSpec set, the
// oracle must skip enumeration and diff the baseline against exactly
// that plan — two executions, same verdict — which is how the reducer
// replays the precise plan pair a bug was found under.
func TestPlanDiffReplaysRecordedSpecVerbatim(t *testing.T) {
	db := engine.Open(staleDialect("pd-stale-2"))
	mustExec(t, db,
		"CREATE TABLE t (c0 INTEGER, c1 TEXT)",
		"CREATE INDEX i0 ON t (c0)",
	)
	for i := 0; i < 64; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'r%d')", i%16, i))
	}
	mustExec(t, db, "UPDATE t SET c0 = 105 WHERE c0 = 5")

	base := parseSelect(t, "SELECT * FROM t")
	pred := &sqlast.Binary{Op: sqlast.OpEq,
		L: &sqlast.ColumnRef{Column: "c0"}, R: sqlast.IntLit(5)}

	found := PlanDiffCase(db, &Case{Base: base, Pred: pred})
	if found.Outcome != Bug || found.PlanSpec == "" {
		t.Fatalf("expected a bug with a recorded spec, got %v / %q", found.Outcome, found.PlanSpec)
	}

	replay := PlanDiffCase(db, &Case{Base: base, Pred: pred, PlanSpec: found.PlanSpec})
	if replay.Outcome != Bug {
		t.Fatalf("replay with the recorded spec must reproduce: %v", replay.Outcome)
	}
	if len(replay.Queries) != 2 {
		t.Fatalf("replay must execute exactly the recorded pair, got %d queries", len(replay.Queries))
	}
	if replay.PlanSpec != found.PlanSpec {
		t.Errorf("replay spec %q != recorded %q", replay.PlanSpec, found.PlanSpec)
	}
	if !strings.Contains(replay.Detail, "["+found.PlanSpec+"]") {
		t.Errorf("replay detail must name the spec verbatim: %q", replay.Detail)
	}

	// A malformed recorded spec must fail closed (Invalid), not enumerate.
	bad := PlanDiffCase(db, &Case{Base: base, Pred: pred, PlanSpec: "rel:t"})
	if bad.Outcome != Invalid {
		t.Errorf("malformed spec must be Invalid, got %v", bad.Outcome)
	}
}

// TestPlanDiffCapReportsDroppedPlans: the MaxPlans cap must bound the
// executed plan pairs and account for every spec it drops — silent
// truncation would misrepresent plan-space coverage.
func TestPlanDiffCapReportsDroppedPlans(t *testing.T) {
	db := engine.Open(dialect.MustGet("sqlite"), engine.WithoutFaults())
	mustExec(t, db,
		"CREATE TABLE t (c0 INTEGER, c1 INTEGER)",
		"CREATE INDEX ia ON t (c0)",
		"CREATE INDEX iab ON t (c0, c1)",
	)
	for i := 0; i < 32; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i%4, i%8))
	}
	base := parseSelect(t, "SELECT * FROM t")
	sel := parseSelect(t, "SELECT * FROM t WHERE c0 = 1 AND c1 = 2")

	full := PlanDiffCase(db, &Case{Base: base, Pred: sel.Where, MaxPlans: -1})
	if full.Outcome != OK || full.PlansDropped != 0 {
		t.Fatalf("unlimited run: %v dropped=%d", full.Outcome, full.PlansDropped)
	}
	enumerated := len(full.Queries) - 1

	capped := PlanDiffCase(db, &Case{Base: base, Pred: sel.Where, MaxPlans: 2})
	if len(capped.Queries) != 3 {
		t.Fatalf("cap 2 must execute baseline + 2 plans, got %d queries", len(capped.Queries))
	}
	if capped.PlansDropped != enumerated-2 {
		t.Errorf("dropped = %d, want %d", capped.PlansDropped, enumerated-2)
	}
}

// TestPlanDiffCleanEngineNeverFires: on a fault-free engine the two
// plans are observationally identical by construction; PlanDiff must
// return OK (or Invalid for queries that fail) — never Bug.
func TestPlanDiffCleanEngineNeverFires(t *testing.T) {
	d := dialect.MustGet("sqlite")
	db := engine.Open(d, engine.WithoutFaults())
	mustExec(t, db,
		"CREATE TABLE t (c0 INTEGER, c1 TEXT)",
		"CREATE INDEX i0 ON t (c0)",
	)
	for i := 0; i < 48; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'r%d')", i%8, i))
	}
	mustExec(t, db, "UPDATE t SET c0 = 99 WHERE c0 = 3")

	base := parseSelect(t, "SELECT * FROM t")
	for _, predSQL := range []string{"c0 = 3", "c0 <= 4", "c0 >= 99", "c0 = 99 AND c1 = 'r3'"} {
		sel := parseSelect(t, "SELECT * FROM t WHERE "+predSQL)
		res := PlanDiff(db, base, sel.Where)
		if res.Outcome == Bug {
			t.Fatalf("clean engine: PlanDiff fired on %q: %s", predSQL, res.Detail)
		}
	}
}
