// Package prioritize implements SQLancer++'s bug prioritization (paper
// §3, Figure 4): a newly found bug-inducing test case is a *potential
// duplicate* if the feature set of a previously reported case is a
// subset of the new case's feature set — the intuition being that the
// root cause is the faulty implementation of the features that were
// enabled when the earlier bug triggered.
package prioritize

import "sort"

// Prioritizer stores the feature sets of reported bug-inducing cases.
type Prioritizer struct {
	sets [][]string // each sorted ascending
}

// New returns an empty prioritizer.
func New() *Prioritizer { return &Prioritizer{} }

// normalize sorts and dedupes a feature set.
func normalize(features []string) []string {
	m := map[string]bool{}
	for _, f := range features {
		m[f] = true
	}
	out := make([]string, 0, len(m))
	for f := range m {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// subset reports whether sorted set a ⊆ sorted set b.
func subset(a, b []string) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

// IsDuplicate reports whether a stored feature set is a subset of the
// candidate's — the case would then be deprioritized (analyzed only
// after the earlier bugs are fixed).
func (p *Prioritizer) IsDuplicate(features []string) bool {
	fs := normalize(features)
	for _, s := range p.sets {
		if subset(s, fs) {
			return true
		}
	}
	return false
}

// Add stores a new (prioritized) case's feature set.
func (p *Prioritizer) Add(features []string) {
	p.sets = append(p.sets, normalize(features))
}

// Report combines the check and the update: it returns true (and stores
// the set) when the case should be reported, false when it is a
// potential duplicate.
func (p *Prioritizer) Report(features []string) bool {
	if p.IsDuplicate(features) {
		return false
	}
	p.Add(features)
	return true
}

// Size returns the number of stored feature sets.
func (p *Prioritizer) Size() int { return len(p.sets) }

// Sets returns copies of the stored sets (for inspection and tests).
func (p *Prioritizer) Sets() [][]string {
	out := make([][]string, len(p.sets))
	for i, s := range p.sets {
		out[i] = append([]string(nil), s...)
	}
	return out
}
