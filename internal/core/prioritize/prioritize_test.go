package prioritize

import (
	"testing"
	"testing/quick"
)

// TestPrioritizerFigure4 replays the paper's Figure 4 walk-through.
func TestPrioritizerFigure4(t *testing.T) {
	p := New()

	// ① {NULLIF, !=}: no stored set is a subset — new bug.
	if !p.Report([]string{"NULLIF", "!="}) {
		t.Fatal("① must be reported as new")
	}
	// ② {NULLIF, !=, +}: ① ⊆ ② — potential duplicate.
	if p.Report([]string{"NULLIF", "!=", "+"}) {
		t.Fatal("② must be a potential duplicate")
	}
	// ③ {NULLIF, !=, JOIN}: still a superset of ① — duplicate.
	if p.Report([]string{"NULLIF", "!=", "JOIN"}) {
		t.Fatal("③ must be a potential duplicate")
	}
	// ④ {CASE, !=}: no stored subset — new bug.
	if !p.Report([]string{"CASE", "!="}) {
		t.Fatal("④ must be reported as new")
	}
	if p.Size() != 2 {
		t.Fatalf("stored sets = %d, want 2", p.Size())
	}
}

func TestSubsetEdgeCases(t *testing.T) {
	p := New()
	p.Add([]string{"A", "B"})
	if !p.IsDuplicate([]string{"B", "A"}) {
		t.Fatal("order must not matter")
	}
	if !p.IsDuplicate([]string{"A", "B", "B"}) {
		t.Fatal("duplicated elements must not matter")
	}
	if p.IsDuplicate([]string{"A"}) {
		t.Fatal("a strict subset of a stored set is NOT a duplicate")
	}
	if p.IsDuplicate([]string{"A", "C"}) {
		t.Fatal("overlapping but non-superset is not a duplicate")
	}
	// The empty stored set subsumes everything.
	p2 := New()
	p2.Add(nil)
	if !p2.IsDuplicate([]string{"X"}) {
		t.Fatal("the empty set is a subset of everything")
	}
}

func TestPrioritizerProperties(t *testing.T) {
	// Report(x) then any superset of x is a duplicate.
	prop := func(base []string, extra []string) bool {
		if len(base) == 0 {
			return true
		}
		p := New()
		p.Add(base)
		return p.IsDuplicate(append(append([]string{}, base...), extra...))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Report is idempotent on the exact same set.
	idem := func(set []string) bool {
		if len(set) == 0 {
			return true
		}
		p := New()
		first := p.Report(set)
		second := p.Report(set)
		return first && !second
	}
	if err := quick.Check(idem, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSets(t *testing.T) {
	p := New()
	p.Add([]string{"B", "A"})
	sets := p.Sets()
	if len(sets) != 1 || len(sets[0]) != 2 || sets[0][0] != "A" {
		t.Fatalf("Sets() = %v", sets)
	}
	// Mutating the copy must not affect the prioritizer.
	sets[0][0] = "Z"
	if p.IsDuplicate([]string{"Z", "B"}) {
		t.Fatal("Sets() must return copies")
	}
}
