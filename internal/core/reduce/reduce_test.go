package reduce

import (
	"strings"
	"testing"

	"sqlancerpp/internal/sqlast"
	"sqlancerpp/internal/sqlparse"
)

func parseAll(t *testing.T, stmts ...string) []sqlast.Stmt {
	t.Helper()
	out := make([]sqlast.Stmt, len(stmts))
	for i, s := range stmts {
		st, err := sqlparse.Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		out[i] = st
	}
	return out
}

func render(stmts []sqlast.Stmt) string {
	var parts []string
	for _, s := range stmts {
		parts = append(parts, s.SQL())
	}
	return strings.Join(parts, "; ")
}

func TestReduceRemovesIrrelevantStatements(t *testing.T) {
	stmts := parseAll(t,
		"CREATE TABLE t0 (c0 INTEGER)",
		"CREATE TABLE junk1 (x INTEGER)",
		"INSERT INTO junk1 (x) VALUES (1)",
		"CREATE TABLE junk2 (y TEXT)",
		"INSERT INTO t0 (c0) VALUES (1)",
		"SELECT * FROM t0 WHERE (c0 = 1)",
	)
	// Property: the sequence still contains a SELECT on t0 and mentions
	// no junk (a stand-in for "still triggers the bug").
	prop := func(cand []sqlast.Stmt) bool {
		s := render(cand)
		return strings.Contains(s, "SELECT * FROM t0") &&
			strings.Contains(s, "CREATE TABLE t0")
	}
	got := Reduce(stmts, prop)
	s := render(got)
	if strings.Contains(s, "junk") {
		t.Fatalf("junk statements survived: %s", s)
	}
	if len(got) > 3 {
		t.Fatalf("expected ≤3 statements, got %d: %s", len(got), s)
	}
}

func TestReduceSimplifiesExpressions(t *testing.T) {
	stmts := parseAll(t,
		"SELECT * FROM t0 WHERE ((c0 = 1) AND ((LENGTH('abcdef') + 10) > 2))",
	)
	// Property: the statement keeps the c0 = 1 conjunct.
	prop := func(cand []sqlast.Stmt) bool {
		return strings.Contains(render(cand), "c0 = 1")
	}
	got := Reduce(stmts, prop)
	s := render(got)
	if strings.Contains(s, "LENGTH") {
		t.Fatalf("reducible function call survived: %s", s)
	}
}

func TestReducePreservesProperty(t *testing.T) {
	stmts := parseAll(t,
		"CREATE TABLE t (a INTEGER)",
		"INSERT INTO t (a) VALUES (5)",
		"SELECT * FROM t WHERE (a BETWEEN (1 + 1) AND (10 * 10))",
	)
	calls := 0
	prop := func(cand []sqlast.Stmt) bool {
		calls++
		s := render(cand)
		return strings.Contains(s, "BETWEEN")
	}
	got := Reduce(stmts, prop)
	if !prop(got) {
		t.Fatal("reduction violated its property")
	}
	if calls == 0 {
		t.Fatal("property was never evaluated")
	}
}

// TestReduceExpressionsRecomputesSlots is the regression test for the
// stale-slot defect: after a subtree is successfully replaced, slots
// collected from the detached subtree would silently no-op on set while
// the property replay kept returning true — a spurious "accepted"
// without any AST change. The fixed reducer re-enumerates slots after
// every successful replacement, so a property acceptance must always
// coincide with a real mutation (observable as a changed rendering).
func TestReduceExpressionsRecomputesSlots(t *testing.T) {
	stmts := parseAll(t,
		"SELECT * FROM t WHERE ((c0 = 0) AND (c1 = 1))",
	)
	lastAccepted := render(stmts)
	spurious := 0
	prop := func(cand []sqlast.Stmt) bool {
		ok := strings.Contains(render(cand), "c1 = 1")
		if ok {
			s := render(cand)
			if s == lastAccepted {
				spurious++
			}
			lastAccepted = s
		}
		return ok
	}
	got := reduceExpressions(cloneAll(stmts), prop)
	if spurious != 0 {
		t.Fatalf("%d property acceptances without an AST change (stale slots)", spurious)
	}
	s := render(got)
	if !strings.Contains(s, "c1 = 1") {
		t.Fatalf("reduction violated its property: %s", s)
	}
	if strings.Contains(s, "c0") {
		t.Fatalf("left conjunct should have been replaced by a literal: %s", s)
	}
}

func TestReduceInputUnmodified(t *testing.T) {
	stmts := parseAll(t,
		"SELECT * FROM t WHERE ((a + 1) = 2)",
	)
	before := render(stmts)
	Reduce(stmts, func(cand []sqlast.Stmt) bool {
		return strings.Contains(render(cand), "=")
	})
	if render(stmts) != before {
		t.Fatal("Reduce must not mutate its input")
	}
}

func TestReduceSingleStatementFloor(t *testing.T) {
	stmts := parseAll(t, "SELECT 1")
	got := Reduce(stmts, func(cand []sqlast.Stmt) bool { return len(cand) >= 1 })
	if len(got) != 1 {
		t.Fatalf("cannot reduce below one statement, got %d", len(got))
	}
}
