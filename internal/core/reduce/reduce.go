// Package reduce implements SQLancer++'s bug reducer (paper Figure 2):
// given a bug-inducing statement sequence and a property check ("does
// this sequence still trigger the bug?"), it shrinks the sequence by
// statement-level delta debugging and then simplifies expressions inside
// the remaining statements by replacing subtrees with literals.
package reduce

import (
	"sqlancerpp/internal/sqlast"
)

// Property re-runs a candidate statement sequence and reports whether it
// still exhibits the bug. Implementations must be deterministic.
type Property func(stmts []sqlast.Stmt) bool

// Reduce shrinks stmts while prop keeps holding. The input sequence must
// satisfy prop.
func Reduce(stmts []sqlast.Stmt, prop Property) []sqlast.Stmt {
	cur := cloneAll(stmts)
	cur = reduceStatements(cur, prop)
	cur = reduceExpressions(cur, prop)
	cur = reduceStatements(cur, prop) // expression shrinking may unlock more
	return cur
}

func cloneAll(stmts []sqlast.Stmt) []sqlast.Stmt {
	out := make([]sqlast.Stmt, len(stmts))
	for i, s := range stmts {
		out[i] = sqlast.CloneStmt(s)
	}
	return out
}

// reduceStatements greedily removes chunks of statements (ddmin-style,
// halving chunk sizes).
func reduceStatements(stmts []sqlast.Stmt, prop Property) []sqlast.Stmt {
	chunk := len(stmts) / 2
	for chunk >= 1 {
		removedAny := false
		for start := 0; start+chunk <= len(stmts); {
			candidate := make([]sqlast.Stmt, 0, len(stmts)-chunk)
			candidate = append(candidate, stmts[:start]...)
			candidate = append(candidate, stmts[start+chunk:]...)
			if len(candidate) > 0 && prop(candidate) {
				stmts = candidate
				removedAny = true
				// retry at the same position
			} else {
				start++
			}
		}
		if !removedAny {
			chunk /= 2
		}
	}
	return stmts
}

// replacementCandidates returns the literals a subtree may shrink to.
func replacementCandidates() []sqlast.Expr {
	return []sqlast.Expr{
		sqlast.Null(),
		sqlast.IntLit(0),
		sqlast.IntLit(1),
		sqlast.TextLit(""),
		sqlast.BoolLit(true),
		sqlast.BoolLit(false),
	}
}

// exprSlot is a mutable expression position inside a statement.
type exprSlot struct {
	get func() sqlast.Expr
	set func(sqlast.Expr)
}

// slotsOf enumerates the reducible expression positions of a statement.
func slotsOf(stmt sqlast.Stmt) []exprSlot {
	var slots []exprSlot
	addExprTree := func(get func() sqlast.Expr, set func(sqlast.Expr)) {
		collectSlots(get, set, &slots)
	}
	switch st := stmt.(type) {
	case *sqlast.Select:
		selectSlots(st, addExprTree)
	case *sqlast.CreateView:
		selectSlots(st.Select, addExprTree)
	case *sqlast.CreateIndex:
		if st.Where != nil {
			addExprTree(func() sqlast.Expr { return st.Where }, func(e sqlast.Expr) { st.Where = e })
		}
	case *sqlast.Insert:
		for i := range st.Rows {
			for j := range st.Rows[i] {
				i, j := i, j
				addExprTree(func() sqlast.Expr { return st.Rows[i][j] }, func(e sqlast.Expr) { st.Rows[i][j] = e })
			}
		}
	case *sqlast.Update:
		for i := range st.Sets {
			i := i
			addExprTree(func() sqlast.Expr { return st.Sets[i].Value }, func(e sqlast.Expr) { st.Sets[i].Value = e })
		}
		if st.Where != nil {
			addExprTree(func() sqlast.Expr { return st.Where }, func(e sqlast.Expr) { st.Where = e })
		}
	case *sqlast.Delete:
		if st.Where != nil {
			addExprTree(func() sqlast.Expr { return st.Where }, func(e sqlast.Expr) { st.Where = e })
		}
	}
	return slots
}

func selectSlots(sel *sqlast.Select, add func(func() sqlast.Expr, func(sqlast.Expr))) {
	for i := range sel.Items {
		if sel.Items[i].Expr == nil {
			continue
		}
		i := i
		add(func() sqlast.Expr { return sel.Items[i].Expr }, func(e sqlast.Expr) { sel.Items[i].Expr = e })
	}
	for i := range sel.From {
		i := i
		if sel.From[i].On != nil {
			add(func() sqlast.Expr { return sel.From[i].On }, func(e sqlast.Expr) { sel.From[i].On = e })
		}
		if d, ok := sel.From[i].Ref.(*sqlast.DerivedTable); ok {
			selectSlots(d.Select, add)
		}
	}
	if sel.Where != nil {
		add(func() sqlast.Expr { return sel.Where }, func(e sqlast.Expr) { sel.Where = e })
	}
	for i := range sel.GroupBy {
		i := i
		add(func() sqlast.Expr { return sel.GroupBy[i] }, func(e sqlast.Expr) { sel.GroupBy[i] = e })
	}
	if sel.Having != nil {
		add(func() sqlast.Expr { return sel.Having }, func(e sqlast.Expr) { sel.Having = e })
	}
	for i := range sel.OrderBy {
		i := i
		add(func() sqlast.Expr { return sel.OrderBy[i].Expr }, func(e sqlast.Expr) { sel.OrderBy[i].Expr = e })
	}
}

// collectSlots adds the root slot and recursively the slots of child
// expressions.
func collectSlots(get func() sqlast.Expr, set func(sqlast.Expr), slots *[]exprSlot) {
	*slots = append(*slots, exprSlot{get: get, set: set})
	switch x := get().(type) {
	case *sqlast.Unary:
		collectSlots(func() sqlast.Expr { return x.X }, func(e sqlast.Expr) { x.X = e }, slots)
	case *sqlast.Binary:
		collectSlots(func() sqlast.Expr { return x.L }, func(e sqlast.Expr) { x.L = e }, slots)
		collectSlots(func() sqlast.Expr { return x.R }, func(e sqlast.Expr) { x.R = e }, slots)
	case *sqlast.Func:
		for i := range x.Args {
			i := i
			collectSlots(func() sqlast.Expr { return x.Args[i] }, func(e sqlast.Expr) { x.Args[i] = e }, slots)
		}
	case *sqlast.Case:
		if x.Operand != nil {
			collectSlots(func() sqlast.Expr { return x.Operand }, func(e sqlast.Expr) { x.Operand = e }, slots)
		}
		for i := range x.Whens {
			i := i
			collectSlots(func() sqlast.Expr { return x.Whens[i].Cond }, func(e sqlast.Expr) { x.Whens[i].Cond = e }, slots)
			collectSlots(func() sqlast.Expr { return x.Whens[i].Then }, func(e sqlast.Expr) { x.Whens[i].Then = e }, slots)
		}
		if x.Else != nil {
			collectSlots(func() sqlast.Expr { return x.Else }, func(e sqlast.Expr) { x.Else = e }, slots)
		}
	case *sqlast.Cast:
		collectSlots(func() sqlast.Expr { return x.X }, func(e sqlast.Expr) { x.X = e }, slots)
	case *sqlast.Between:
		collectSlots(func() sqlast.Expr { return x.X }, func(e sqlast.Expr) { x.X = e }, slots)
		collectSlots(func() sqlast.Expr { return x.Lo }, func(e sqlast.Expr) { x.Lo = e }, slots)
		collectSlots(func() sqlast.Expr { return x.Hi }, func(e sqlast.Expr) { x.Hi = e }, slots)
	case *sqlast.InList:
		collectSlots(func() sqlast.Expr { return x.X }, func(e sqlast.Expr) { x.X = e }, slots)
		for i := range x.List {
			i := i
			collectSlots(func() sqlast.Expr { return x.List[i] }, func(e sqlast.Expr) { x.List[i] = e }, slots)
		}
	case *sqlast.IsNull:
		collectSlots(func() sqlast.Expr { return x.X }, func(e sqlast.Expr) { x.X = e }, slots)
	case *sqlast.IsBool:
		collectSlots(func() sqlast.Expr { return x.X }, func(e sqlast.Expr) { x.X = e }, slots)
	case *sqlast.Like:
		collectSlots(func() sqlast.Expr { return x.X }, func(e sqlast.Expr) { x.X = e }, slots)
		collectSlots(func() sqlast.Expr { return x.Pattern }, func(e sqlast.Expr) { x.Pattern = e }, slots)
	}
}

// reduceExpressions tries to replace each expression subtree with a
// literal while the property holds.
func reduceExpressions(stmts []sqlast.Stmt, prop Property) []sqlast.Stmt {
	changed := true
	for rounds := 0; changed && rounds < 4; rounds++ {
		changed = false
		for _, st := range stmts {
			slots := slotsOf(st)
			for si := 0; si < len(slots); si++ {
				slot := slots[si]
				orig := slot.get()
				if _, isLit := orig.(*sqlast.Literal); isLit {
					continue
				}
				for _, cand := range replacementCandidates() {
					slot.set(cand)
					if prop(stmts) {
						changed = true
						// The replacement detached orig's subtree, so the
						// slots collected from it are dangling: their set
						// would silently no-op while prop (a full engine
						// replay) keeps returning true. Re-enumerate from
						// the live tree; slots are collected in pre-order,
						// so positions before si are unaffected.
						slots = slotsOf(st)
						break
					}
					slot.set(orig)
				}
			}
		}
	}
	return stmts
}
