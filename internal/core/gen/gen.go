// Package gen implements SQLancer++'s adaptive statement generator
// (paper §4 and Appendix A).
//
// The generator produces SQL from a universal grammar of common features
// (6 statements, ~10 clauses, 58 functions, ~36 operators, 3 data types).
// Every grammar alternative is a *feature*; before generating one, the
// generator consults its Policy (paper Listing 4's shouldGenerate), and
// each generated statement carries the set of features used, which the
// campaign feeds back into the policy with the execution status.
//
// Three policies reproduce the paper's configurations:
//   - feedback.Tracker — the adaptive generator ("SQLancer++")
//   - AllowAll — no suppression ("SQLancer++ Rand")
//   - a dialect-truth policy (internal/baseline) — the hand-written
//     per-DBMS generator stand-in ("SQLancer")
package gen

import (
	"math/rand"
	"sort"

	"sqlancerpp/internal/core/schema"
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/feature"
	"sqlancerpp/internal/sqlast"
)

// Policy decides whether a feature should still be generated.
type Policy interface {
	Supported(feature string) bool
}

// AllowAll is the no-feedback policy ("SQLancer++ Rand").
type AllowAll struct{}

// Supported always returns true.
func (AllowAll) Supported(string) bool { return true }

// Config parameterizes a Generator. Zero values select the paper's
// standard settings.
type Config struct {
	Seed   int64
	Policy Policy
	// MaxTables and MaxViews bound the database state (paper §5: up to
	// two tables and one view, the standard SQLancer settings).
	MaxTables int
	MaxViews  int
	// StartDepth..MaxDepth with DepthInterval implement the execution
	// strategy of Appendix A.3: expressions start shallow and deepen.
	StartDepth    int
	MaxDepth      int
	DepthInterval int
	// MismatchProb is the probability of deliberately generating an
	// argument or operand of a "wrong" data type, which is how the
	// generator learns the composite type features (SIN#1=INTEGER).
	MismatchProb float64
	// TypeCorrect forces type-correct generation (the hand-written
	// baseline generators know the dialect's typing discipline).
	TypeCorrect bool
	// RiskyProb is the probability of generating a failure-prone
	// construct (division by zero, math domain errors, strict casts).
	// The baseline generators set it high: the paper attributes
	// SQLancer's low validity on PostgreSQL to its complex
	// dialect-specific features.
	RiskyProb float64
	// ExtraFunctions extends the function pool beyond the universal
	// grammar (baseline generators know dialect-specific functions).
	ExtraFunctions []string
}

// Statement is one generated statement with its feature set.
type Statement struct {
	Stmt     sqlast.Stmt
	SQL      string
	Features []string
	IsQuery  bool
	// OnSuccess applies the statement's effect to the schema model; the
	// campaign calls it after the DBMS confirms execution (Figure 3).
	OnSuccess func()
}

// OracleCase is a generated test case for the logic-bug oracles: a base
// query without WHERE and a predicate to partition or filter by.
type OracleCase struct {
	Base     *sqlast.Select
	Pred     sqlast.Expr
	Features []string
}

// PlanSpaceCounters tallies generated shapes that widen the PlanDiff
// oracle's enumerable plan space: only probe-eligible shapes give the
// plan enumerator more than the trivial planner-on/off pair, so these
// counters are the generator-side coverage signal for the plan-control
// API (campaign experiments read them to confirm plan-space traffic).
type PlanSpaceCounters struct {
	// SargableHeads counts oracle predicates led by an index-shaped
	// sargable conjunction (per-relation force-scan/force-index plans).
	SargableHeads int
	// CompositeHeads counts sargable heads spanning >= 2 index key
	// columns — the composite-vs-leading PrefixWidth axis.
	CompositeHeads int
	// ProbeEligibleJoins counts ON conditions led by a probe-eligible
	// equality (the per-join probe-on/probe-off axis).
	ProbeEligibleJoins int
	// MultiKeyJoins counts ON conditions with a two-conjunct equality
	// prefix (composite join-probe keys).
	MultiKeyJoins int
}

// Generator produces random SQL statements adaptively.
type Generator struct {
	rnd       *rand.Rand
	cfg       Config
	model     *schema.Model
	generated int
	planSpace PlanSpaceCounters

	intFuncs  []string
	textFuncs []string
	anyFuncs  []string
}

// New creates a Generator.
func New(cfg Config) *Generator {
	if cfg.Policy == nil {
		cfg.Policy = AllowAll{}
	}
	if cfg.MaxTables == 0 {
		cfg.MaxTables = 2
	}
	if cfg.MaxViews == 0 {
		cfg.MaxViews = 1
	}
	if cfg.StartDepth == 0 {
		cfg.StartDepth = 1
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 3
	}
	if cfg.DepthInterval == 0 {
		cfg.DepthInterval = 2000
	}
	if cfg.MismatchProb == 0 {
		cfg.MismatchProb = 0.12
	}
	if cfg.TypeCorrect {
		cfg.MismatchProb = 0
	}
	if cfg.RiskyProb == 0 {
		cfg.RiskyProb = 0.1
	}
	g := &Generator{
		rnd:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
		model: schema.New(),
	}
	g.indexFunctions()
	return g
}

// indexFunctions buckets the function pool by result kind using the
// engine registry's signatures.
func (g *Generator) indexFunctions() {
	pool := append([]string{}, feature.Functions...)
	pool = append(pool, g.cfg.ExtraFunctions...)
	sort.Strings(pool)
	seen := map[string]bool{}
	for _, fn := range pool {
		if seen[fn] {
			continue
		}
		seen[fn] = true
		def := engine.LookupFunc(fn)
		if def == nil {
			continue
		}
		switch def.Result {
		case engine.KindInt:
			g.intFuncs = append(g.intFuncs, fn)
		case engine.KindText:
			g.textFuncs = append(g.textFuncs, fn)
		default: // result depends on first argument
			g.anyFuncs = append(g.anyFuncs, fn)
		}
	}
}

// Model exposes the internal schema model.
func (g *Generator) Model() *schema.Model { return g.model }

// PlanSpace returns the generator's plan-space coverage counters.
func (g *Generator) PlanSpace() PlanSpaceCounters { return g.planSpace }

// ResetModel clears the schema model (a fresh database state).
func (g *Generator) ResetModel() { g.model = schema.New() }

// depth returns the current expression depth of the ramp-up schedule.
func (g *Generator) depth() int {
	d := g.cfg.StartDepth + g.generated/g.cfg.DepthInterval
	if d > g.cfg.MaxDepth {
		d = g.cfg.MaxDepth
	}
	return d
}

// featSet accumulates the features of one statement.
type featSet map[string]bool

func (fs featSet) add(names ...string) {
	for _, n := range names {
		fs[n] = true
	}
}

func (fs featSet) list() []string {
	out := make([]string, 0, len(fs))
	for f := range fs {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// supported asks the policy (paper Listing 4: shouldGenerate).
func (g *Generator) supported(f string) bool { return g.cfg.Policy.Supported(f) }

// pickFeature selects uniformly among the supported alternatives
// (paper Figure 5 step 4: unsupported alternatives get zero probability,
// the rest are uniform). If everything is suppressed it falls back to
// the full list so generation can still make progress (and re-probe).
func (g *Generator) pickFeature(alts []string) string {
	var ok []string
	for _, a := range alts {
		if g.supported(a) {
			ok = append(ok, a)
		}
	}
	if len(ok) == 0 {
		ok = alts
	}
	return ok[g.rnd.Intn(len(ok))]
}

// prob returns true with probability p.
func (g *Generator) prob(p float64) bool { return g.rnd.Float64() < p }

func (g *Generator) intn(n int) int { return g.rnd.Intn(n) }
