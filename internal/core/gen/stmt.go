package gen

import (
	"fmt"
	"strings"

	"sqlancerpp/internal/core/schema"
	"sqlancerpp/internal/feature"
	"sqlancerpp/internal/sqlast"
)

// finish packages a generated statement.
func (g *Generator) finish(stmt sqlast.Stmt, fs featSet, isQuery bool, onSuccess func()) *Statement {
	g.generated++
	return &Statement{
		Stmt:      stmt,
		SQL:       stmt.SQL(),
		Features:  fs.list(),
		IsQuery:   isQuery,
		OnSuccess: onSuccess,
	}
}

// GenSetup produces one database-state statement (DDL or DML), honoring
// the paper's standard settings (up to MaxTables tables and MaxViews
// views).
func (g *Generator) GenSetup() *Statement {
	tables := g.model.Tables()
	views := g.model.Views()

	var alts []string
	if len(tables) < g.cfg.MaxTables {
		alts = append(alts, feature.StmtCreateTable, feature.StmtCreateTable)
	}
	if len(tables) > 0 {
		// CREATE INDEX weighs double so database states regularly carry
		// indexes: the engine's access-path planner only diverges from a
		// full scan — and the index-maintenance fault sites only fire —
		// on indexed states.
		alts = append(alts, feature.StmtInsert, feature.StmtInsert,
			feature.StmtInsert, feature.StmtInsert,
			feature.StmtCreateIndex, feature.StmtCreateIndex,
			feature.StmtUpdate, feature.StmtDelete,
			feature.StmtAnalyze, feature.StmtAlterTable)
		if len(views) < g.cfg.MaxViews {
			alts = append(alts, feature.StmtCreateView)
		}
		if len(g.model.Indexes()) > 0 {
			// DROP INDEX tears the ordered store down; REINDEX rebuilds it
			// from the visible rows (the natural repair for the
			// stale-index fault path).
			alts = append(alts, feature.StmtDropIndex, feature.StmtReindex)
		}
	}
	if len(alts) == 0 {
		alts = []string{feature.StmtCreateTable}
	}
	switch g.pickFeature(alts) {
	case feature.StmtCreateTable:
		return g.genCreateTable()
	case feature.StmtCreateIndex:
		return g.genCreateIndex()
	case feature.StmtCreateView:
		return g.genCreateView()
	case feature.StmtInsert:
		return g.genInsert()
	case feature.StmtUpdate:
		return g.genUpdate()
	case feature.StmtDelete:
		return g.genDelete()
	case feature.StmtAnalyze:
		return g.genAnalyze()
	case feature.StmtAlterTable:
		return g.genAlter()
	case feature.StmtDropIndex:
		return g.genDropIndex()
	case feature.StmtReindex:
		return g.genReindex()
	default:
		return g.genCreateTable()
	}
}

// columnTypeFeatures lists the data-type features in generation order.
var columnTypes = []string{feature.TypeInteger, feature.TypeText, feature.TypeBoolean}

func (g *Generator) pickColumnType(fs featSet) sqlast.Type {
	tf := g.pickFeature(columnTypes)
	fs.add(tf)
	switch tf {
	case feature.TypeText:
		return sqlast.TypeText
	case feature.TypeBoolean:
		return sqlast.TypeBool
	default:
		return sqlast.TypeInt
	}
}

func (g *Generator) genCreateTable() *Statement {
	fs := featSet{}
	fs.add(feature.StmtCreateTable)
	name := g.model.FreeTableName()
	n := 1 + g.intn(4)
	ct := &sqlast.CreateTable{Name: name}
	pkDone := false
	for i := 0; i < n; i++ {
		col := sqlast.ColumnDef{Name: fmt.Sprintf("c%d", i), Type: g.pickColumnType(fs)}
		if !pkDone && g.prob(0.3) && g.supported(feature.PrimaryKey) {
			col.PrimaryKey = true
			pkDone = true
			fs.add(feature.PrimaryKey)
		} else {
			if g.prob(0.2) && g.supported(feature.NotNullColumn) {
				col.NotNull = true
				fs.add(feature.NotNullColumn)
			}
			if g.prob(0.15) && g.supported(feature.UniqueColumn) {
				col.Unique = true
				fs.add(feature.UniqueColumn)
			}
		}
		ct.Columns = append(ct.Columns, col)
	}
	return g.finish(ct, fs, false, func() { g.model.Apply(ct) })
}

func (g *Generator) randTable() *schema.Relation {
	tables := g.model.Tables()
	return tables[g.intn(len(tables))]
}

// tableScope exposes one table's columns for expression generation.
func (g *Generator) tableScope(t *schema.Relation) *exprScope {
	sc := &exprScope{gen: g}
	for _, c := range t.Columns {
		sc.cols = append(sc.cols, scopeCol{Table: t.Name, Column: c.Name, Type: typOf(c.Type)})
	}
	return sc
}

func (g *Generator) genCreateIndex() *Statement {
	fs := featSet{}
	fs.add(feature.StmtCreateIndex)
	t := g.randTable()
	ci := &sqlast.CreateIndex{Name: g.model.FreeIndexName(), Table: t.Name}
	// Composite width: roughly half the indexes stay single-column (the
	// planner's bread and butter must not starve); the rest span two or
	// three columns, gated on the learned COMPOSITE INDEX clause feature
	// and the per-width CREATE INDEX#n feature, through which dialect
	// column-count limits feed back.
	n := 1
	if len(t.Columns) > 1 && g.supported(feature.CompositeIndex) && g.prob(0.5) {
		n = 2
		if len(t.Columns) > 2 && g.prob(0.35) && g.supported(feature.IndexWidth(3)) {
			n = 3
		}
	}
	perm := g.rnd.Perm(len(t.Columns))
	for i := 0; i < n && i < len(perm); i++ {
		ci.Columns = append(ci.Columns, t.Columns[perm[i]].Name)
	}
	if len(ci.Columns) > 1 {
		fs.add(feature.CompositeIndex, feature.IndexWidth(len(ci.Columns)))
	}
	if g.prob(0.3) && g.supported(feature.UniqueIndex) {
		ci.Unique = true
		fs.add(feature.UniqueIndex)
	}
	if g.prob(0.3) && g.supported(feature.PartialIndex) {
		ci.Where = g.genBool(g.tableScope(t), 1, fs)
		fs.add(feature.PartialIndex)
	}
	return g.finish(ci, fs, false, func() { g.model.Apply(ci) })
}

func (g *Generator) genCreateView() *Statement {
	fs := featSet{}
	fs.add(feature.StmtCreateView)
	t := g.randTable()
	sc := g.tableScope(t)
	name := g.model.FreeViewName()
	n := 1 + g.intn(2)
	sel := &sqlast.Select{From: []sqlast.FromItem{{Ref: &sqlast.TableName{Name: t.Name}}}}
	var cols []schema.Column
	depth := g.depth()
	for i := 0; i < n; i++ {
		want := typ(g.intn(3))
		if want == tBool && !g.supported(feature.TypeBoolean) {
			want = tInt
		}
		alias := fmt.Sprintf("x%d", i)
		sel.Items = append(sel.Items, sqlast.SelectItem{
			Expr:  g.genExpr(sc, want, depth-1, fs),
			Alias: alias,
		})
		cols = append(cols, schema.Column{Name: alias, Type: want.astType()})
	}
	if g.prob(0.4) {
		sel.Where = g.genBool(sc, depth-1, fs)
		fs.add(feature.ClauseWhere)
	}
	cv := &sqlast.CreateView{Name: name, Select: sel}
	if g.prob(0.5) && g.supported(feature.ViewColumnNames) {
		fs.add(feature.ViewColumnNames)
		for _, c := range cols {
			cv.Columns = append(cv.Columns, c.Name)
		}
	}
	return g.finish(cv, fs, false, func() { g.model.ApplyView(name, cols) })
}

func (g *Generator) genInsert() *Statement {
	fs := featSet{}
	fs.add(feature.StmtInsert)
	t := g.randTable()
	ins := &sqlast.Insert{Table: t.Name}
	var targets []schema.Column
	for _, c := range t.Columns {
		if c.NotNull || c.PrimaryKey || g.prob(0.75) {
			ins.Columns = append(ins.Columns, c.Name)
			targets = append(targets, c)
		}
	}
	if len(targets) == 0 {
		ins.Columns = []string{t.Columns[0].Name}
		targets = []schema.Column{t.Columns[0]}
	}
	nRows := 1
	if g.prob(0.4) && g.supported(feature.InsertMultiRow) {
		nRows += 1 + g.intn(2)
		fs.add(feature.InsertMultiRow)
	}
	for r := 0; r < nRows; r++ {
		var row []sqlast.Expr
		for _, c := range targets {
			if !c.NotNull && !c.PrimaryKey && g.prob(0.12) {
				row = append(row, sqlast.Null())
				continue
			}
			want := typOf(c.Type)
			if g.prob(g.cfg.MismatchProb) && g.supported(feature.PropImplicitCast) {
				want = typ(g.intn(3))
				fs.add(feature.PropImplicitCast)
			}
			// PRIMARY KEY columns draw from a wider pool to reduce
			// constraint collisions.
			if c.PrimaryKey && want == tInt {
				row = append(row, sqlast.IntLit(int64(g.intn(1000))))
				continue
			}
			row = append(row, g.genConst(want, fs))
		}
		ins.Rows = append(ins.Rows, row)
	}
	if g.prob(0.25) && g.supported(feature.InsertOrIgnore) {
		ins.OrIgnore = true
		fs.add(feature.InsertOrIgnore)
	}
	return g.finish(ins, fs, false, func() { g.model.Apply(ins) })
}

func (g *Generator) genUpdate() *Statement {
	fs := featSet{}
	fs.add(feature.StmtUpdate)
	t := g.randTable()
	sc := g.tableScope(t)
	up := &sqlast.Update{Table: t.Name}
	n := 1 + g.intn(2)
	perm := g.rnd.Perm(len(t.Columns))
	depth := g.depth()
	for i := 0; i < n && i < len(perm); i++ {
		c := t.Columns[perm[i]]
		up.Sets = append(up.Sets, sqlast.Assignment{
			Column: c.Name,
			Value:  g.genExpr(sc, typOf(c.Type), depth-1, fs),
		})
	}
	if g.prob(0.7) {
		up.Where = g.genBool(sc, depth-1, fs)
		// An index-shaped head exercises the index-assisted UPDATE path
		// (the mutation set collected through a composite span); the
		// random tail stays, feeding the validity feedback.
		if g.prob(0.4) && g.supported("AND") {
			if sp := g.genSargablePred(sc, fs); sp != nil {
				fs.add("AND")
				up.Where = &sqlast.Binary{Op: sqlast.OpAnd, L: sp, R: up.Where}
			}
		}
		fs.add(feature.ClauseWhere)
	}
	return g.finish(up, fs, false, nil)
}

func (g *Generator) genDelete() *Statement {
	fs := featSet{}
	fs.add(feature.StmtDelete)
	t := g.randTable()
	del := &sqlast.Delete{Table: t.Name}
	if g.prob(0.85) {
		sc := g.tableScope(t)
		del.Where = g.genBool(sc, g.depth()-1, fs)
		// An index-shaped head exercises the index-assisted DELETE path;
		// the random tail stays, feeding the validity feedback.
		if g.prob(0.4) && g.supported("AND") {
			if sp := g.genSargablePred(sc, fs); sp != nil {
				fs.add("AND")
				del.Where = &sqlast.Binary{Op: sqlast.OpAnd, L: sp, R: del.Where}
			}
		}
		fs.add(feature.ClauseWhere)
	}
	stmt := del
	return g.finish(stmt, fs, false, func() { g.model.Apply(stmt) })
}

func (g *Generator) genAnalyze() *Statement {
	fs := featSet{}
	fs.add(feature.StmtAnalyze)
	a := &sqlast.Analyze{}
	if g.prob(0.5) {
		a.Table = g.randTable().Name
	}
	return g.finish(a, fs, false, nil)
}

func (g *Generator) genAlter() *Statement {
	fs := featSet{}
	fs.add(feature.StmtAlterTable)
	t := g.randTable()
	at := &sqlast.AlterTable{Table: t.Name}
	if len(t.Columns) > 1 && g.prob(0.4) {
		at.DropColumn = t.Columns[g.intn(len(t.Columns))].Name
	} else {
		at.AddColumn = &sqlast.ColumnDef{
			Name: g.model.FreeColumnName(t),
			Type: g.pickColumnType(fs),
		}
	}
	return g.finish(at, fs, false, func() { g.model.Apply(at) })
}

func (g *Generator) genDropIndex() *Statement {
	fs := featSet{}
	fs.add(feature.StmtDropIndex)
	ixs := g.model.Indexes()
	ix := ixs[g.intn(len(ixs))]
	di := &sqlast.DropIndex{Name: ix.Name}
	return g.finish(di, fs, false, func() { g.model.Apply(di) })
}

func (g *Generator) genReindex() *Statement {
	fs := featSet{}
	fs.add(feature.StmtReindex)
	ixs := g.model.Indexes()
	ri := &sqlast.Reindex{}
	// Mostly target one index; occasionally rebuild everything.
	if !g.prob(0.15) {
		ri.Name = ixs[g.intn(len(ixs))].Name
	}
	return g.finish(ri, fs, false, nil)
}

// rangeOps are the trailing-range operator spellings of a sargable
// conjunction.
var rangeOps = []string{"<", "<=", ">", ">="}

// genSargablePred builds an index-shaped predicate over a modeled index
// whose table is in scope under its own name: an equality run over the
// index's leading columns plus (usually) a range on the next — the
// multi-conjunct WHERE shape planIndexAccess compiles into one composite
// span, and the only shape the composite fault sites fire on. Returns
// nil when no index matches the scope (or the dialect lacks "=").
func (g *Generator) genSargablePred(sc *exprScope, fs featSet) sqlast.Expr {
	if !g.supported("=") {
		return nil
	}
	var cands []*schema.Index
	for _, ix := range g.model.Indexes() {
		for _, c := range sc.cols {
			if strings.EqualFold(c.Table, ix.Table) {
				cands = append(cands, ix)
				break
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	ix := cands[g.intn(len(cands))]
	rel := g.model.Relation(ix.Table)
	if rel == nil {
		return nil
	}
	var pred sqlast.Expr
	nConj := 0
	and := func(e sqlast.Expr) {
		if pred == nil {
			pred = e
		} else {
			fs.add("AND")
			pred = &sqlast.Binary{Op: sqlast.OpAnd, L: pred, R: e}
		}
	}
	conj := func(op string, c *schema.Column) {
		fs.add(op, feature.ExprColumn, feature.ExprConstant)
		nConj++
		and(&sqlast.Binary{Op: cmpOpOf(op),
			L: &sqlast.ColumnRef{Table: ix.Table, Column: c.Name},
			R: g.genConst(typOf(c.Type), fs)})
	}
	eqn := 1 + g.intn(len(ix.Columns))
	for i := 0; i < eqn; i++ {
		c := rel.Column(ix.Columns[i])
		if c == nil {
			return g.noteSargableHead(pred, nConj)
		}
		conj("=", c)
	}
	if eqn < len(ix.Columns) && g.prob(0.75) {
		if c := rel.Column(ix.Columns[eqn]); c != nil {
			var ops []string
			for _, op := range rangeOps {
				if g.supported(op) {
					ops = append(ops, op)
				}
			}
			if len(ops) > 0 {
				conj(ops[g.intn(len(ops))], c)
			}
		}
	}
	return g.noteSargableHead(pred, nConj)
}

// noteSargableHead records a generated sargable head in the plan-space
// counters (nConj key conjuncts; nil predicates count nothing).
func (g *Generator) noteSargableHead(pred sqlast.Expr, nConj int) sqlast.Expr {
	if pred != nil {
		g.planSpace.SargableHeads++
		if nConj >= 2 {
			g.planSpace.CompositeHeads++
		}
	}
	return pred
}

// GenRefresh produces the REFRESH TABLE statement dialect adapters issue
// after inserts (paper §6, CrateDB).
func (g *Generator) GenRefresh(table string) *Statement {
	fs := featSet{}
	fs.add(feature.StmtRefresh)
	return g.finish(&sqlast.Refresh{Table: table}, fs, false, nil)
}

// queryScope builds the FROM clause of a query: relations with join
// types, plus the visible column scope.
func (g *Generator) queryScope(fs featSet, forOracle bool) ([]sqlast.FromItem, *exprScope) {
	rels := g.model.Relations()
	if len(rels) == 0 {
		return nil, nil
	}
	n := 1
	if len(rels) > 1 && g.prob(0.55) {
		n = 2
	}
	if len(rels) > 2 && g.prob(0.2) {
		n = 3
	}
	sc := &exprScope{gen: g}
	var from []sqlast.FromItem
	used := map[string]int{}
	for i := 0; i < n; i++ {
		r := rels[g.intn(len(rels))]
		alias := r.Name
		if used[r.Name] > 0 {
			alias = fmt.Sprintf("a%d", i)
		}
		used[r.Name]++
		var ref sqlast.TableRef
		if forOracle && g.prob(0.12) && g.supported(feature.DerivedTable) && !r.IsView {
			// Derived table: (SELECT * FROM r) AS subN.
			alias = fmt.Sprintf("sub%d", i)
			ref = &sqlast.DerivedTable{
				Select: &sqlast.Select{
					Items: []sqlast.SelectItem{{Star: true}},
					From:  []sqlast.FromItem{{Ref: &sqlast.TableName{Name: r.Name}}},
				},
				Alias: alias,
			}
			fs.add(feature.DerivedTable)
		} else {
			tn := &sqlast.TableName{Name: r.Name}
			if alias != r.Name {
				tn.Alias = alias
			}
			ref = tn
		}
		item := sqlast.FromItem{Ref: ref}
		if i > 0 {
			jf := g.pickFeature(feature.Joins)
			fs.add(jf)
			item.Join = joinTypeOf(jf)
			if item.Join != sqlast.JoinComma && item.Join != sqlast.JoinCross &&
				item.Join != sqlast.JoinNatural {
				// ON over the columns visible so far plus the new ones.
				onScope := &exprScope{gen: g, cols: append([]scopeCol{}, sc.cols...)}
				for _, c := range r.Columns {
					onScope.cols = append(onScope.cols, scopeCol{Table: alias, Column: c.Name, Type: typOf(c.Type)})
				}
				// Half the time, lead the ON condition with a plain,
				// type-aligned equality between an earlier relation's
				// column and one of the new relation's — the probe-eligible
				// shape the engine's index-nested-loop join planner
				// accelerates (and the only shape its fault sites fire on).
				eq := sqlast.Expr(nil)
				if g.prob(0.5) && g.supported("=") {
					eq = g.genJoinEq(sc, r, alias, fs)
					if eq != nil {
						g.planSpace.ProbeEligibleJoins++
					}
					// A second equality key makes the ON multi-conjunct —
					// the shape the composite join probe binds as a
					// two-column equality prefix.
					if eq != nil && g.prob(0.35) && g.supported("AND") {
						if eq2 := g.genJoinEq(sc, r, alias, fs); eq2 != nil {
							fs.add("AND")
							g.planSpace.MultiKeyJoins++
							eq = &sqlast.Binary{Op: sqlast.OpAnd, L: eq, R: eq2}
						}
					}
				}
				switch {
				case eq == nil:
					item.On = g.genBool(onScope, 1, fs)
				case g.prob(0.45) && g.supported("AND"):
					fs.add("AND")
					item.On = &sqlast.Binary{Op: sqlast.OpAnd, L: eq,
						R: g.genBool(onScope, 1, fs)}
				default:
					item.On = eq
				}
			}
		}
		from = append(from, item)
		for _, c := range r.Columns {
			sc.cols = append(sc.cols, scopeCol{Table: alias, Column: c.Name, Type: typOf(c.Type)})
		}
	}
	return from, sc
}

// genJoinEq builds a probe-eligible ON equality: a column already in
// scope compared to a same-typed column of the relation being joined
// (type alignment keeps the conjunct valid on statically typed
// dialects). Returns nil when no type-aligned pair exists.
func (g *Generator) genJoinEq(sc *exprScope, r *schema.Relation, alias string, fs featSet) sqlast.Expr {
	if len(sc.cols) == 0 || len(r.Columns) == 0 {
		return nil
	}
	lc := sc.cols[g.intn(len(sc.cols))]
	var rcs []schema.Column
	for _, c := range r.Columns {
		if typOf(c.Type) == lc.Type {
			rcs = append(rcs, c)
		}
	}
	if len(rcs) == 0 {
		return nil
	}
	rc := rcs[g.intn(len(rcs))]
	fs.add("=", feature.ExprColumn)
	return &sqlast.Binary{Op: sqlast.OpEq,
		L: &sqlast.ColumnRef{Table: lc.Table, Column: lc.Column},
		R: &sqlast.ColumnRef{Table: alias, Column: rc.Name},
	}
}

func joinTypeOf(f string) sqlast.JoinType {
	switch f {
	case feature.JoinComma:
		return sqlast.JoinComma
	case feature.JoinInner:
		return sqlast.JoinInner
	case feature.JoinLeft:
		return sqlast.JoinLeft
	case feature.JoinRight:
		return sqlast.JoinRight
	case feature.JoinFull:
		return sqlast.JoinFull
	case feature.JoinCross:
		return sqlast.JoinCross
	default:
		return sqlast.JoinNatural
	}
}

// GenCompoundQuery produces a compound (set-operation) smoke query: two
// or three simple cores with matching projection types joined by set
// operators. Returns nil when the model has no tables.
func (g *Generator) GenCompoundQuery() *Statement {
	tables := g.model.Tables()
	if len(tables) == 0 {
		return nil
	}
	fs := featSet{}
	fs.add(feature.StmtSelect)
	nCols := 1 + g.intn(2)
	types := make([]typ, nCols)
	for i := range types {
		types[i] = typ(g.intn(2)) // INT or TEXT keeps arms unifiable
	}
	core := func() *sqlast.Select {
		t := tables[g.intn(len(tables))]
		sc := g.tableScope(t)
		sel := &sqlast.Select{From: []sqlast.FromItem{{Ref: &sqlast.TableName{Name: t.Name}}}}
		for _, want := range types {
			sel.Items = append(sel.Items, sqlast.SelectItem{
				Expr: g.genExpr(sc, want, g.depth()-1, fs),
			})
		}
		if g.prob(0.4) {
			sel.Where = g.genBool(sc, g.depth()-1, fs)
			fs.add(feature.ClauseWhere)
		}
		return sel
	}
	sel := core()
	nArms := 1 + g.intn(2)
	ops := []string{feature.Union, feature.UnionAll, feature.UnionAll, feature.Intersect, feature.Except}
	for i := 0; i < nArms; i++ {
		opFeat := g.pickFeature(ops)
		fs.add(opFeat)
		sel.Compound = append(sel.Compound, sqlast.CompoundPart{
			Op: setOpOf(opFeat), Select: core(),
		})
	}
	return g.finish(sel, fs, true, nil)
}

func setOpOf(f string) sqlast.SetOp {
	switch f {
	case feature.Union:
		return sqlast.SetUnion
	case feature.UnionAll:
		return sqlast.SetUnionAll
	case feature.Intersect:
		return sqlast.SetIntersect
	default:
		return sqlast.SetExcept
	}
}

// GenQuery produces a free-form query exercising the full clause grammar
// (used for feedback probing and coverage; not oracle-checked).
func (g *Generator) GenQuery() *Statement {
	fs := featSet{}
	fs.add(feature.StmtSelect)
	from, sc := g.queryScope(fs, false)
	if sc == nil {
		sc = &exprScope{gen: g}
	}
	depth := g.depth()
	sel := &sqlast.Select{From: from}
	nItems := 1 + g.intn(2)
	useAggr := len(from) > 0 && g.prob(0.18)
	for i := 0; i < nItems; i++ {
		if useAggr {
			agg := g.pickFeature(feature.Aggregates)
			fs.add(agg, feature.ExprAggr)
			call := &sqlast.Func{Name: agg}
			if agg == "COUNT" && g.prob(0.5) {
				call.Star = true
			} else {
				call.Args = []sqlast.Expr{g.genExpr(sc, tInt, depth-1, fs)}
				if g.prob(0.2) && g.supported(feature.Distinct) {
					call.Distinct = true
					fs.add(feature.Distinct)
				}
			}
			sel.Items = append(sel.Items, sqlast.SelectItem{Expr: call})
			continue
		}
		if len(from) > 0 && g.prob(0.25) && i == 0 {
			sel.Items = append(sel.Items, sqlast.SelectItem{Star: true})
			continue
		}
		sel.Items = append(sel.Items, sqlast.SelectItem{Expr: g.genExpr(sc, typ(g.intn(3)), depth-1, fs)})
	}
	if len(from) > 0 && g.prob(0.6) {
		sel.Where = g.genBool(sc, depth, fs)
		fs.add(feature.ClauseWhere)
	}
	if useAggr && g.prob(0.4) && g.supported(feature.GroupBy) {
		fs.add(feature.GroupBy)
		sel.GroupBy = []sqlast.Expr{g.genExpr(sc, typ(g.intn(3)), 0, fs)}
		if g.prob(0.4) && g.supported(feature.Having) {
			fs.add(feature.Having)
			sel.Having = g.genBool(sc, 1, fs)
		}
	}
	if g.prob(0.25) && g.supported(feature.Distinct) && !useAggr {
		sel.Distinct = true
		fs.add(feature.Distinct)
	}
	if g.prob(0.3) && g.supported(feature.OrderBy) && !useAggr {
		fs.add(feature.OrderBy)
		sel.OrderBy = []sqlast.OrderItem{{Expr: g.genExpr(sc, typ(g.intn(3)), 1, fs), Desc: g.prob(0.5)}}
	}
	if g.prob(0.25) && g.supported(feature.Limit) {
		fs.add(feature.Limit)
		lim := int64(g.intn(10))
		sel.Limit = &lim
		if g.prob(0.3) && g.supported(feature.Offset) {
			fs.add(feature.Offset)
			off := int64(g.intn(3))
			sel.Offset = &off
		}
	}
	return g.finish(sel, fs, true, nil)
}

// GenOracleCase produces a base query (no WHERE, no aggregates, no
// DISTINCT/ORDER/LIMIT — the shape the TLP partitioning property needs)
// plus a predicate. Returns nil when the model has no relations yet.
func (g *Generator) GenOracleCase() *OracleCase {
	fs := featSet{}
	fs.add(feature.StmtSelect)
	from, sc := g.queryScope(fs, true)
	if from == nil || len(sc.cols) == 0 {
		return nil
	}
	depth := g.depth()
	sel := &sqlast.Select{From: from}
	if g.prob(0.6) {
		sel.Items = []sqlast.SelectItem{{Star: true}}
	} else {
		n := 1 + g.intn(2)
		for i := 0; i < n; i++ {
			c := sc.cols[g.intn(len(sc.cols))]
			sel.Items = append(sel.Items, sqlast.SelectItem{
				Expr: &sqlast.ColumnRef{Table: c.Table, Column: c.Column},
			})
		}
	}
	pred := g.genBool(sc, depth, fs)
	// A third of the predicates lead with an index-shaped sargable
	// conjunction, so composite spans (and their fault sites) see steady
	// oracle traffic. The free-form predicate usually rides along as the
	// tail — replacing it every time would starve the validity feedback
	// of the failure signals (unsupported operators inside random
	// predicates) the Bayesian tracker learns from — but about a third
	// of the sargable cases drop it, giving the span fault sites
	// unmasked, fully index-shaped filters.
	if g.prob(0.33) {
		if sp := g.genSargablePred(sc, fs); sp != nil {
			if g.prob(0.65) && g.supported("AND") {
				fs.add("AND")
				pred = &sqlast.Binary{Op: sqlast.OpAnd, L: sp, R: pred}
			} else {
				pred = sp
			}
		}
	}
	g.generated++
	return &OracleCase{Base: sel, Pred: pred, Features: fs.list()}
}
