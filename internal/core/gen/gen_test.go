package gen

import (
	"strings"
	"testing"

	"sqlancerpp/internal/feature"
	"sqlancerpp/internal/sqlast"
)

// blockPolicy suppresses a fixed feature set.
type blockPolicy map[string]bool

func (p blockPolicy) Supported(f string) bool { return !p[f] }

func TestDeterminism(t *testing.T) {
	run := func() []string {
		g := New(Config{Seed: 123})
		var out []string
		for i := 0; i < 30; i++ {
			st := g.GenSetup()
			if st.OnSuccess != nil {
				st.OnSuccess()
			}
			out = append(out, st.SQL)
		}
		for i := 0; i < 200; i++ {
			out = append(out, g.GenQuery().SQL)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

func TestSuppressionStopsGeneration(t *testing.T) {
	policy := blockPolicy{
		"XOR": true, "<=>": true, feature.ExprGlob: true,
		"SIN": true, feature.JoinFull: true,
	}
	g := New(Config{Seed: 7, Policy: policy, StartDepth: 3, MaxDepth: 3})
	for i := 0; i < 20; i++ {
		st := g.GenSetup()
		if st.OnSuccess != nil {
			st.OnSuccess()
		}
	}
	for i := 0; i < 3000; i++ {
		var sql string
		var features []string
		if i%2 == 0 {
			st := g.GenQuery()
			sql, features = st.SQL, st.Features
		} else {
			oc := g.GenOracleCase()
			if oc == nil {
				continue
			}
			sel := oc.Base
			sel.Where = oc.Pred
			sql, features = sel.SQL(), oc.Features
		}
		for f := range policy {
			for _, have := range features {
				if have == f {
					t.Fatalf("suppressed feature %q in feature set of %s", f, sql)
				}
			}
		}
		if strings.Contains(sql, "XOR") || strings.Contains(sql, "<=>") ||
			strings.Contains(sql, "GLOB") || strings.Contains(sql, " SIN(") ||
			strings.Contains(sql, "(SIN(") || strings.Contains(sql, "FULL JOIN") {
			t.Fatalf("suppressed feature appears in SQL: %s", sql)
		}
	}
}

func TestFeatureSetsRecorded(t *testing.T) {
	g := New(Config{Seed: 3})
	for i := 0; i < 20; i++ {
		st := g.GenSetup()
		if st.OnSuccess != nil {
			st.OnSuccess()
		}
		if len(st.Features) == 0 {
			t.Fatalf("setup statement without features: %s", st.SQL)
		}
	}
	for i := 0; i < 100; i++ {
		oc := g.GenOracleCase()
		if oc == nil {
			continue
		}
		if len(oc.Features) == 0 {
			t.Fatal("oracle case without features")
		}
		found := false
		for _, f := range oc.Features {
			if f == feature.StmtSelect {
				found = true
			}
		}
		if !found {
			t.Fatal("oracle case must record the SELECT feature")
		}
	}
}

func TestOracleCaseShape(t *testing.T) {
	g := New(Config{Seed: 5, StartDepth: 3, MaxDepth: 3})
	for i := 0; i < 25; i++ {
		st := g.GenSetup()
		if st.OnSuccess != nil {
			st.OnSuccess()
		}
	}
	for i := 0; i < 500; i++ {
		oc := g.GenOracleCase()
		if oc == nil {
			continue
		}
		// TLP needs a base without WHERE/DISTINCT/aggregates/ORDER/LIMIT.
		if oc.Base.Where != nil || oc.Base.Distinct || oc.Base.Limit != nil ||
			len(oc.Base.OrderBy) > 0 || len(oc.Base.GroupBy) > 0 {
			t.Fatalf("oracle base has forbidden clauses: %s", oc.Base.SQL())
		}
		for _, item := range oc.Base.Items {
			if item.Expr != nil {
				sqlast.WalkExpr(item.Expr, func(e sqlast.Expr) bool {
					if f, ok := e.(*sqlast.Func); ok &&
						(f.Name == "COUNT" || f.Name == "SUM" || f.Name == "AVG") {
						t.Fatalf("aggregate in oracle base: %s", oc.Base.SQL())
					}
					return true
				})
			}
		}
		if oc.Pred == nil {
			t.Fatal("oracle case without predicate")
		}
	}
}

func TestEmptyModelYieldsNoOracleCase(t *testing.T) {
	g := New(Config{Seed: 1})
	if oc := g.GenOracleCase(); oc != nil {
		t.Fatal("no relations yet — oracle case must be nil")
	}
	// Setup always offers CREATE TABLE on an empty model.
	st := g.GenSetup()
	if _, ok := st.Stmt.(*sqlast.CreateTable); !ok {
		t.Fatalf("first setup statement should create a table, got %T", st.Stmt)
	}
}

func TestDepthSchedule(t *testing.T) {
	g := New(Config{Seed: 2, StartDepth: 1, MaxDepth: 3, DepthInterval: 10})
	if d := g.depth(); d != 1 {
		t.Fatalf("initial depth %d, want 1", d)
	}
	g.generated = 10
	if d := g.depth(); d != 2 {
		t.Fatalf("depth after one interval %d, want 2", d)
	}
	g.generated = 1000
	if d := g.depth(); d != 3 {
		t.Fatalf("depth must cap at MaxDepth, got %d", d)
	}
}

func TestModelTracksOnSuccessOnly(t *testing.T) {
	g := New(Config{Seed: 4})
	st := g.GenSetup() // CREATE TABLE
	if len(g.Model().Tables()) != 0 {
		t.Fatal("model must not change before OnSuccess")
	}
	st.OnSuccess()
	if len(g.Model().Tables()) != 1 {
		t.Fatal("model must reflect the confirmed statement")
	}
	g.ResetModel()
	if len(g.Model().Tables()) != 0 {
		t.Fatal("ResetModel must clear state")
	}
}

func TestMaxTablesRespected(t *testing.T) {
	g := New(Config{Seed: 8, MaxTables: 2, MaxViews: 1})
	for i := 0; i < 300; i++ {
		st := g.GenSetup()
		if st.OnSuccess != nil {
			st.OnSuccess()
		}
	}
	if n := len(g.Model().Tables()); n > 2 {
		t.Fatalf("MaxTables violated: %d tables", n)
	}
	if n := len(g.Model().Views()); n > 1 {
		t.Fatalf("MaxViews violated: %d views", n)
	}
}

func TestGenRefresh(t *testing.T) {
	g := New(Config{Seed: 9})
	st := g.GenRefresh("t0")
	if st.SQL != "REFRESH TABLE t0" {
		t.Fatalf("GenRefresh SQL = %q", st.SQL)
	}
	if len(st.Features) != 1 || st.Features[0] != feature.StmtRefresh {
		t.Fatalf("GenRefresh features = %v", st.Features)
	}
}

// TestCompositeIndexRespectsPolicy: with the COMPOSITE INDEX clause
// suppressed, every generated CREATE INDEX is single-column; with the
// width-3 feature suppressed, no index exceeds two columns — and with
// nothing suppressed, composite indexes actually appear (no starvation
// in either direction).
func TestCompositeIndexRespectsPolicy(t *testing.T) {
	widths := func(policy Policy, seed int64) map[int]int {
		g := New(Config{Seed: seed, Policy: policy, StartDepth: 2, MaxDepth: 3})
		out := map[int]int{}
		for i := 0; i < 600; i++ {
			st := g.GenSetup()
			if ci, ok := st.Stmt.(*sqlast.CreateIndex); ok {
				out[len(ci.Columns)]++
				st.OnSuccess()
			} else if st.OnSuccess != nil {
				st.OnSuccess()
			}
		}
		return out
	}

	all := widths(AllowAll{}, 5)
	if all[1] == 0 || all[2] == 0 {
		t.Fatalf("width mix starved: %v", all)
	}
	noComposite := widths(blockPolicy{feature.CompositeIndex: true}, 5)
	for w, n := range noComposite {
		if w > 1 && n > 0 {
			t.Fatalf("suppressed COMPOSITE INDEX still yields width %d (%v)", w, noComposite)
		}
	}
	noWide := widths(blockPolicy{feature.IndexWidth(3): true}, 5)
	if noWide[3] > 0 {
		t.Fatalf("suppressed CREATE INDEX#3 still yields width 3 (%v)", noWide)
	}
	if noWide[2] == 0 {
		t.Fatalf("width-2 indexes must survive the width-3 suppression (%v)", noWide)
	}
}

// TestSargablePredShape: the sargable predicate generator emits
// conjunctions of column-vs-constant comparisons over a modeled index's
// columns — the composite-span shape — and returns nil without indexes.
func TestSargablePredShape(t *testing.T) {
	g := New(Config{Seed: 11, StartDepth: 2, MaxDepth: 3})
	ct := &sqlast.CreateTable{Name: "t", Columns: []sqlast.ColumnDef{
		{Name: "a", Type: sqlast.TypeInt}, {Name: "b", Type: sqlast.TypeInt}}}
	g.Model().Apply(ct)
	sc := g.tableScope(g.Model().Tables()[0])

	if p := g.genSargablePred(sc, featSet{}); p != nil {
		t.Fatalf("no indexes modeled, want nil, got %s", p.SQL())
	}
	g.Model().Apply(&sqlast.CreateIndex{Name: "i", Table: "t", Columns: []string{"a", "b"}})
	found := false
	for i := 0; i < 50; i++ {
		p := g.genSargablePred(sc, featSet{})
		if p == nil {
			t.Fatal("indexed model must yield a sargable predicate")
		}
		conjs := 1
		for b, ok := p.(*sqlast.Binary); ok && b.Op == sqlast.OpAnd; b, ok = b.L.(*sqlast.Binary) {
			conjs++
		}
		if conjs > 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("sargable predicates never span multiple conjuncts")
	}
}

// TestPlanSpaceCountersTrackProbeShapes: the plan-space counters must
// tally the probe-eligible shapes the generator emits — sargable heads
// (with composite widths) and probe-eligible join keys — since those are
// the shapes that give the PlanDiff enumerator a non-trivial plan space.
func TestPlanSpaceCountersTrackProbeShapes(t *testing.T) {
	g := New(Config{Seed: 9, StartDepth: 2, MaxDepth: 3})
	g.Model().Apply(&sqlast.CreateTable{Name: "t0", Columns: []sqlast.ColumnDef{
		{Name: "a", Type: sqlast.TypeInt}, {Name: "b", Type: sqlast.TypeInt}}})
	g.Model().Apply(&sqlast.CreateTable{Name: "t1", Columns: []sqlast.ColumnDef{
		{Name: "x", Type: sqlast.TypeInt}, {Name: "y", Type: sqlast.TypeInt}}})
	g.Model().Apply(&sqlast.CreateIndex{Name: "i", Table: "t0", Columns: []string{"a", "b"}})

	if g.PlanSpace() != (PlanSpaceCounters{}) {
		t.Fatalf("counters must start zero: %+v", g.PlanSpace())
	}
	for i := 0; i < 2000; i++ {
		g.GenOracleCase()
	}
	ps := g.PlanSpace()
	if ps.SargableHeads == 0 {
		t.Error("no sargable heads counted")
	}
	if ps.CompositeHeads == 0 || ps.CompositeHeads > ps.SargableHeads {
		t.Errorf("composite heads out of range: %+v", ps)
	}
	if ps.ProbeEligibleJoins == 0 {
		t.Error("no probe-eligible joins counted")
	}
	if ps.MultiKeyJoins == 0 || ps.MultiKeyJoins > ps.ProbeEligibleJoins {
		t.Errorf("multi-key joins out of range: %+v", ps)
	}
}
