package gen

import (
	"sqlancerpp/internal/engine"
	"sqlancerpp/internal/feature"
	"sqlancerpp/internal/sqlast"
)

// typ is the generator's intended type of an expression.
type typ int

const (
	tInt typ = iota
	tText
	tBool
)

func (t typ) featureName() string {
	switch t {
	case tInt:
		return feature.TypeInteger
	case tText:
		return feature.TypeText
	default:
		return feature.TypeBoolean
	}
}

func (t typ) astType() sqlast.Type {
	switch t {
	case tInt:
		return sqlast.TypeInt
	case tText:
		return sqlast.TypeText
	default:
		return sqlast.TypeBool
	}
}

// scopeCol is one column visible to expression generation.
type scopeCol struct {
	Table  string
	Column string
	Type   typ
}

// exprScope lists the columns visible to the expression generator.
type exprScope struct {
	cols []scopeCol
	// rels carries the FROM relations, so subqueries can reference other
	// model tables without colliding.
	gen *Generator
}

func typOf(t sqlast.Type) typ {
	switch t {
	case sqlast.TypeText:
		return tText
	case sqlast.TypeBool:
		return tBool
	default:
		return tInt
	}
}

// colsOfType returns the in-scope columns of an intended type.
func (sc *exprScope) colsOfType(t typ) []scopeCol {
	var out []scopeCol
	for _, c := range sc.cols {
		if c.Type == t {
			out = append(out, c)
		}
	}
	return out
}

// genLeaf produces a column reference or constant of the wanted type.
// Deliberate mismatches (probability MismatchProb, gated by the learned
// implicit-cast feature) probe the DBMS's type system.
func (g *Generator) genLeaf(sc *exprScope, want typ, fs featSet) sqlast.Expr {
	actual := want
	if g.prob(g.cfg.MismatchProb) && g.supported(feature.PropImplicitCast) {
		actual = typ(g.intn(3))
		if actual != want {
			fs.add(feature.PropImplicitCast)
		}
	}
	if actual == tBool && !g.supported(feature.TypeBoolean) {
		actual = tInt
	}
	// NULL constants are essential for exercising three-valued logic.
	if g.prob(0.14) {
		fs.add(feature.ExprConstant)
		return sqlast.Null()
	}
	if cols := sc.colsOfType(actual); len(cols) > 0 && g.prob(0.62) {
		c := cols[g.intn(len(cols))]
		fs.add(feature.ExprColumn)
		return &sqlast.ColumnRef{Table: c.Table, Column: c.Column}
	}
	fs.add(feature.ExprConstant)
	return g.genConst(actual, fs)
}

var intConsts = []int64{0, 1, -1, 2, 3, 10, 100, 2000, -2000, 1000000}
var textConsts = []string{"", "a", "b", "A", "0", "1", " a", "asdf", "%", "_", "ab"}

// genConst produces a literal of the given type.
func (g *Generator) genConst(t typ, fs featSet) sqlast.Expr {
	switch t {
	case tInt:
		return sqlast.IntLit(intConsts[g.intn(len(intConsts))])
	case tText:
		return sqlast.TextLit(textConsts[g.intn(len(textConsts))])
	default:
		fs.add(feature.TypeBoolean)
		return sqlast.BoolLit(g.prob(0.5))
	}
}

// operandType picks the type for comparison operands. Mixed-type pairs
// probe implicit conversion and are gated on the learned feature.
func (g *Generator) operandType() typ {
	switch g.intn(5) {
	case 0, 1, 2:
		return tInt
	case 3:
		return tText
	default:
		if g.supported(feature.TypeBoolean) {
			return tBool
		}
		return tInt
	}
}

// genExpr generates an expression with the wanted type and depth budget.
func (g *Generator) genExpr(sc *exprScope, want typ, depth int, fs featSet) sqlast.Expr {
	if depth <= 0 {
		return g.genLeaf(sc, want, fs)
	}
	switch want {
	case tBool:
		return g.genBool(sc, depth, fs)
	case tInt:
		return g.genInt(sc, depth, fs)
	default:
		return g.genText(sc, depth, fs)
	}
}

var cmpAlts = []string{"=", "!=", "<>", "<", "<=", ">", ">=", "<=>",
	"IS DISTINCT FROM", "IS NOT DISTINCT FROM"}

func (g *Generator) genBool(sc *exprScope, depth int, fs featSet) sqlast.Expr {
	alts := []string{"CMP", "CMP", "CMP", "AND", "OR", "XOR", feature.ExprNot,
		feature.ExprIsNull, feature.ExprIsBool, feature.ExprBetween,
		feature.ExprIn, feature.ExprNotIn, feature.ExprLike, feature.ExprGlob,
		feature.ExprCase, feature.ExprExists, "LEAF"}
	switch g.pickChoice(alts) {
	case "CMP":
		op := g.pickFeature(cmpAlts)
		fs.add(op)
		lt := g.operandType()
		rt := lt
		if g.prob(g.cfg.MismatchProb) && g.supported(feature.PropImplicitCast) {
			rt = g.operandType()
			if rt != lt {
				fs.add(feature.PropImplicitCast)
			}
		}
		return &sqlast.Binary{
			Op: cmpOpOf(op),
			L:  g.genCmpOperand(sc, lt, depth, fs),
			R:  g.genCmpOperand(sc, rt, depth, fs),
		}
	case "AND":
		fs.add("AND")
		return &sqlast.Binary{Op: sqlast.OpAnd,
			L: g.genBool(sc, depth-1, fs), R: g.genBool(sc, depth-1, fs)}
	case "OR":
		fs.add("OR")
		return &sqlast.Binary{Op: sqlast.OpOr,
			L: g.genBool(sc, depth-1, fs), R: g.genBool(sc, depth-1, fs)}
	case "XOR":
		fs.add("XOR")
		return &sqlast.Binary{Op: sqlast.OpXor,
			L: g.genBool(sc, depth-1, fs), R: g.genBool(sc, depth-1, fs)}
	case feature.ExprNot:
		fs.add(feature.ExprNot)
		return &sqlast.Unary{Op: sqlast.UNot, X: g.genBool(sc, depth-1, fs)}
	case feature.ExprIsNull:
		fs.add(feature.ExprIsNull)
		return &sqlast.IsNull{X: g.genExpr(sc, g.operandType(), depth-1, fs), Not: g.prob(0.5)}
	case feature.ExprIsBool:
		fs.add(feature.ExprIsBool)
		return &sqlast.IsBool{X: g.genBool(sc, depth-1, fs), Val: g.prob(0.5), Not: g.prob(0.3)}
	case feature.ExprBetween:
		fs.add(feature.ExprBetween)
		t := g.operandType()
		return &sqlast.Between{
			X:   g.genExpr(sc, t, depth-1, fs),
			Lo:  g.genExpr(sc, t, depth-1, fs),
			Hi:  g.genExpr(sc, t, depth-1, fs),
			Not: g.prob(0.3),
		}
	case feature.ExprIn, feature.ExprNotIn:
		not := g.prob(0.5)
		if not {
			fs.add(feature.ExprNotIn)
		} else {
			fs.add(feature.ExprIn)
		}
		t := g.operandType()
		n := 1 + g.intn(3)
		list := make([]sqlast.Expr, n)
		for i := range list {
			list[i] = g.genExpr(sc, t, depth-1, fs)
		}
		return &sqlast.InList{X: g.genExpr(sc, t, depth-1, fs), List: list, Not: not}
	case feature.ExprLike:
		fs.add(feature.ExprLike)
		return &sqlast.Like{
			X:       g.genExpr(sc, tText, depth-1, fs),
			Pattern: g.genLikePattern(sqlast.LikeLike),
			Kind:    sqlast.LikeLike,
			Not:     g.prob(0.3),
		}
	case feature.ExprGlob:
		fs.add(feature.ExprGlob)
		return &sqlast.Like{
			X:       g.genExpr(sc, tText, depth-1, fs),
			Pattern: g.genLikePattern(sqlast.LikeGlob),
			Kind:    sqlast.LikeGlob,
			Not:     g.prob(0.3),
		}
	case feature.ExprCase:
		fs.add(feature.ExprCase)
		return g.genCase(sc, tBool, depth, fs)
	case feature.ExprExists:
		if sub := g.genSubSelect(sc, depth, fs); sub != nil {
			fs.add(feature.ExprExists)
			return &sqlast.Exists{Select: sub, Not: g.prob(0.3)}
		}
		return g.genLeaf(sc, tBool, fs)
	default: // LEAF
		return g.genLeaf(sc, tBool, fs)
	}
}

// pickChoice picks among structural alternatives, filtering those that
// map to features the policy suppresses.
func (g *Generator) pickChoice(alts []string) string {
	var ok []string
	for _, a := range alts {
		switch a {
		// Structural labels are not features; the concrete feature inside
		// them is gated separately.
		case "CMP", "LEAF", "ARITH", "FUNC", "NEG":
			ok = append(ok, a)
		default:
			if g.supported(a) {
				ok = append(ok, a)
			}
		}
	}
	if len(ok) == 0 {
		ok = alts
	}
	return ok[g.intn(len(ok))]
}

func cmpOpOf(spelling string) sqlast.BinaryOp {
	switch spelling {
	case "=":
		return sqlast.OpEq
	case "!=":
		return sqlast.OpNeq
	case "<>":
		return sqlast.OpNeq2
	case "<":
		return sqlast.OpLt
	case "<=":
		return sqlast.OpLe
	case ">":
		return sqlast.OpGt
	case ">=":
		return sqlast.OpGe
	case "<=>":
		return sqlast.OpNullSafeEq
	case "IS DISTINCT FROM":
		return sqlast.OpIsDistinct
	default:
		return sqlast.OpIsNotDistinct
	}
}

var likePatterns = []string{"%", "%a%", "a%", "_", "a_", "%0%", "", "ab"}
var globPatterns = []string{"*", "*a*", "a*", "?", "a?", "*0*", "", "ab"}

func (g *Generator) genLikePattern(kind sqlast.LikeKind) sqlast.Expr {
	if kind == sqlast.LikeGlob {
		return sqlast.TextLit(globPatterns[g.intn(len(globPatterns))])
	}
	return sqlast.TextLit(likePatterns[g.intn(len(likePatterns))])
}

// genCmpOperand produces one comparison operand. Function calls are
// favored — "col = FN(...)" is the canonical oracle-query shape (the
// paper's REPLACE bug) — and exercise the composite type features.
func (g *Generator) genCmpOperand(sc *exprScope, t typ, depth int, fs featSet) sqlast.Expr {
	if t == tInt && g.prob(g.cfg.RiskyProb) {
		d := depth
		if d < 1 {
			d = 1
		}
		return g.genRisky(sc, d, fs)
	}
	if t != tBool && g.prob(0.38) {
		d := depth
		if d < 1 {
			d = 1
		}
		if e := g.genFuncCall(sc, t, d, fs); e != nil {
			return e
		}
	}
	return g.genExpr(sc, t, depth-1, fs)
}

// genRisky produces a failure-prone construct: NULL on dynamic dialects,
// a runtime error on static ones (the paper's context-dependent
// failures).
func (g *Generator) genRisky(sc *exprScope, depth int, fs featSet) sqlast.Expr {
	type risky struct {
		feat  string
		build func() sqlast.Expr
	}
	alts := []risky{
		{"/", func() sqlast.Expr {
			return &sqlast.Binary{Op: sqlast.OpDiv, L: g.genExpr(sc, tInt, depth-1, fs), R: sqlast.IntLit(0)}
		}},
		{"%", func() sqlast.Expr {
			return &sqlast.Binary{Op: sqlast.OpMod, L: g.genExpr(sc, tInt, depth-1, fs), R: sqlast.IntLit(0)}
		}},
		{"ASIN", func() sqlast.Expr {
			fs.add(feature.FuncArg("ASIN", 1, feature.TypeInteger))
			return &sqlast.Func{Name: "ASIN", Args: []sqlast.Expr{sqlast.IntLit(2000)}}
		}},
		{"LN", func() sqlast.Expr {
			fs.add(feature.FuncArg("LN", 1, feature.TypeInteger))
			return &sqlast.Func{Name: "LN", Args: []sqlast.Expr{sqlast.IntLit(0)}}
		}},
		{"SQRT", func() sqlast.Expr {
			fs.add(feature.FuncArg("SQRT", 1, feature.TypeInteger))
			return &sqlast.Func{Name: "SQRT", Args: []sqlast.Expr{sqlast.IntLit(-1)}}
		}},
		{"POWER", func() sqlast.Expr {
			fs.add(feature.FuncArg("POWER", 1, feature.TypeInteger))
			return &sqlast.Func{Name: "POWER", Args: []sqlast.Expr{sqlast.IntLit(2), sqlast.IntLit(70)}}
		}},
		{"EXP", func() sqlast.Expr {
			fs.add(feature.FuncArg("EXP", 1, feature.TypeInteger))
			return &sqlast.Func{Name: "EXP", Args: []sqlast.Expr{sqlast.IntLit(100)}}
		}},
		{feature.ExprCast, func() sqlast.Expr {
			return &sqlast.Cast{X: sqlast.TextLit("abc"), To: sqlast.TypeInt}
		}},
	}
	var ok []risky
	for _, a := range alts {
		if g.supported(a.feat) {
			ok = append(ok, a)
		}
	}
	if len(ok) == 0 {
		return g.genLeaf(sc, tInt, fs)
	}
	pick := ok[g.intn(len(ok))]
	fs.add(pick.feat)
	return pick.build()
}

var arithAlts = []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}

func (g *Generator) genInt(sc *exprScope, depth int, fs featSet) sqlast.Expr {
	if g.prob(g.cfg.RiskyProb) {
		return g.genRisky(sc, depth, fs)
	}
	alts := []string{"ARITH", "ARITH", "NEG", "~", "FUNC", "FUNC",
		feature.ExprCase, feature.ExprCast, feature.Subquery, "LEAF", "LEAF"}
	switch g.pickChoice(alts) {
	case "ARITH":
		op := g.pickFeature(arithAlts)
		fs.add(op)
		return &sqlast.Binary{
			Op: arithOpOf(op),
			L:  g.genExpr(sc, tInt, depth-1, fs),
			R:  g.genExpr(sc, tInt, depth-1, fs),
		}
	case "NEG":
		fs.add("-")
		x := g.genExpr(sc, tInt, depth-1, fs)
		// Fold literals, matching the parser's canonical form.
		if lit, ok := x.(*sqlast.Literal); ok && lit.Kind == sqlast.LitInt {
			return sqlast.IntLit(-lit.Int)
		}
		return &sqlast.Unary{Op: sqlast.UMinus, X: x}
	case "~":
		fs.add("~")
		return &sqlast.Unary{Op: sqlast.UBitNot, X: g.genExpr(sc, tInt, depth-1, fs)}
	case "FUNC":
		if e := g.genFuncCall(sc, tInt, depth, fs); e != nil {
			return e
		}
		return g.genLeaf(sc, tInt, fs)
	case feature.ExprCase:
		fs.add(feature.ExprCase)
		return g.genCase(sc, tInt, depth, fs)
	case feature.ExprCast:
		fs.add(feature.ExprCast)
		return &sqlast.Cast{X: g.genExpr(sc, g.operandType(), depth-1, fs), To: sqlast.TypeInt}
	case feature.Subquery:
		if sub := g.genScalarSubquery(sc, tInt, depth, fs); sub != nil {
			return sub
		}
		return g.genLeaf(sc, tInt, fs)
	default:
		return g.genLeaf(sc, tInt, fs)
	}
}

func arithOpOf(spelling string) sqlast.BinaryOp {
	switch spelling {
	case "+":
		return sqlast.OpAdd
	case "-":
		return sqlast.OpSub
	case "*":
		return sqlast.OpMul
	case "/":
		return sqlast.OpDiv
	case "%":
		return sqlast.OpMod
	case "&":
		return sqlast.OpBitAnd
	case "|":
		return sqlast.OpBitOr
	case "^":
		return sqlast.OpBitXor
	case "<<":
		return sqlast.OpShl
	default:
		return sqlast.OpShr
	}
}

func (g *Generator) genText(sc *exprScope, depth int, fs featSet) sqlast.Expr {
	alts := []string{"||", "FUNC", "FUNC", feature.ExprCase, feature.ExprCast,
		"LEAF", "LEAF"}
	switch g.pickChoice(alts) {
	case "||":
		fs.add("||")
		return &sqlast.Binary{Op: sqlast.OpConcat,
			L: g.genExpr(sc, tText, depth-1, fs), R: g.genExpr(sc, tText, depth-1, fs)}
	case "FUNC":
		if e := g.genFuncCall(sc, tText, depth, fs); e != nil {
			return e
		}
		return g.genLeaf(sc, tText, fs)
	case feature.ExprCase:
		fs.add(feature.ExprCase)
		return g.genCase(sc, tText, depth, fs)
	case feature.ExprCast:
		fs.add(feature.ExprCast)
		return &sqlast.Cast{X: g.genExpr(sc, g.operandType(), depth-1, fs), To: sqlast.TypeText}
	default:
		return g.genLeaf(sc, tText, fs)
	}
}

// genCase generates a searched or operand CASE of the wanted result type.
func (g *Generator) genCase(sc *exprScope, want typ, depth int, fs featSet) sqlast.Expr {
	c := &sqlast.Case{}
	n := 1 + g.intn(2)
	if g.prob(0.3) {
		t := g.operandType()
		c.Operand = g.genExpr(sc, t, depth-1, fs)
		for i := 0; i < n; i++ {
			c.Whens = append(c.Whens, sqlast.When{
				Cond: g.genExpr(sc, t, depth-1, fs),
				Then: g.genExpr(sc, want, depth-1, fs),
			})
		}
	} else {
		for i := 0; i < n; i++ {
			c.Whens = append(c.Whens, sqlast.When{
				Cond: g.genBool(sc, depth-1, fs),
				Then: g.genExpr(sc, want, depth-1, fs),
			})
		}
	}
	if g.prob(0.7) {
		c.Else = g.genExpr(sc, want, depth-1, fs)
	}
	return c
}

// genFuncCall generates a call to a function with the wanted result
// type, tracking the composite per-argument type features (SIN#1=INTEGER
// in the paper's Appendix A.1). Returns nil when no candidate exists.
func (g *Generator) genFuncCall(sc *exprScope, want typ, depth int, fs featSet) sqlast.Expr {
	var pool []string
	switch want {
	case tInt:
		pool = g.intFuncs
	case tText:
		pool = g.textFuncs
	default:
		return nil
	}
	pool = append(pool, g.anyFuncs...)
	var candidates []string
	for _, fn := range pool {
		if g.supported(fn) {
			candidates = append(candidates, fn)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	name := candidates[g.intn(len(candidates))]
	def := engine.LookupFunc(name)
	fs.add(name)
	nArgs := def.MinArgs
	if def.MaxArgs > def.MinArgs {
		nArgs += g.intn(def.MaxArgs - def.MinArgs + 1)
	} else if def.MaxArgs < 0 {
		nArgs += g.intn(2)
	}
	call := &sqlast.Func{Name: name}
	for i := 0; i < nArgs; i++ {
		at := g.argType(def, i, want)
		// Composite type feature: the generator learns per-argument
		// expected types through these.
		argFeat := feature.FuncArg(name, i+1, at.featureName())
		if !g.supported(argFeat) {
			// Pick the declared kind instead.
			at = declaredArgType(def, i, want)
			argFeat = feature.FuncArg(name, i+1, at.featureName())
		}
		fs.add(argFeat)
		call.Args = append(call.Args, g.genExpr(sc, at, depth-1, fs))
	}
	return call
}

// argType picks an argument type: usually the declared kind, sometimes a
// deliberate experiment.
func (g *Generator) argType(def *engine.FuncDef, i int, want typ) typ {
	if g.prob(g.cfg.MismatchProb) && g.supported(feature.PropImplicitCast) {
		return typ(g.intn(3))
	}
	return declaredArgType(def, i, want)
}

func declaredArgType(def *engine.FuncDef, i int, want typ) typ {
	if len(def.ArgKinds) == 0 {
		return want
	}
	k := def.ArgKinds[len(def.ArgKinds)-1]
	if i < len(def.ArgKinds) {
		k = def.ArgKinds[i]
	}
	switch k {
	case engine.KindInt:
		return tInt
	case engine.KindText:
		return tText
	case engine.KindBool:
		return tBool
	default: // KindNull: polymorphic — use the wanted type
		return want
	}
}

// genScalarSubquery produces (SELECT expr FROM t [WHERE p] LIMIT 1) of
// the wanted type, or nil if no table exists.
func (g *Generator) genScalarSubquery(sc *exprScope, want typ, depth int, fs featSet) sqlast.Expr {
	if !g.supported(feature.Subquery) {
		return nil
	}
	sub := g.genSubSelect(sc, depth, fs)
	if sub == nil {
		return nil
	}
	fs.add(feature.Subquery)
	// Exactly one projected column of the wanted type; LIMIT 1 bounds the
	// row count so the scalar subquery cannot fail at runtime.
	inner := sub.From[0].Ref.(*sqlast.TableName)
	rel := g.model.Relation(inner.Name)
	innerScope := &exprScope{gen: g}
	for _, c := range rel.Columns {
		innerScope.cols = append(innerScope.cols, scopeCol{Table: inner.RefName(), Column: c.Name, Type: typOf(c.Type)})
	}
	sub.Items = []sqlast.SelectItem{{Expr: g.genExpr(innerScope, want, depth-1, fs)}}
	one := int64(1)
	if g.supported(feature.Limit) {
		fs.add(feature.Limit)
		sub.Limit = &one
	} else {
		// Without LIMIT, aggregate to guarantee a single row.
		sub.Items = []sqlast.SelectItem{{Expr: &sqlast.Func{Name: "MAX", Args: []sqlast.Expr{sub.Items[0].Expr}}}}
		fs.add("MAX", feature.ExprAggr)
	}
	return &sqlast.Subquery{Select: sub}
}

// genSubSelect builds the skeleton SELECT * FROM t [WHERE pred] over a
// random model table, used by EXISTS and scalar subqueries.
func (g *Generator) genSubSelect(sc *exprScope, depth int, fs featSet) *sqlast.Select {
	tables := g.model.Tables()
	if len(tables) == 0 || !g.supported(feature.Subquery) {
		return nil
	}
	t := tables[g.intn(len(tables))]
	sel := &sqlast.Select{
		Items: []sqlast.SelectItem{{Star: true}},
		From:  []sqlast.FromItem{{Ref: &sqlast.TableName{Name: t.Name}}},
	}
	if g.prob(0.5) {
		innerScope := &exprScope{gen: g}
		for _, c := range t.Columns {
			innerScope.cols = append(innerScope.cols, scopeCol{Table: t.Name, Column: c.Name, Type: typOf(c.Type)})
		}
		// Correlated predicates may also reference the outer scope.
		innerScope.cols = append(innerScope.cols, sc.cols...)
		sel.Where = g.genBool(innerScope, depth-1, fs)
		fs.add(feature.ClauseWhere)
	}
	return sel
}
