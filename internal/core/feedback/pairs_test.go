package feedback

import (
	"bytes"
	"testing"
)

func TestPairTrackerSeenMark(t *testing.T) {
	p := NewPairTracker()
	if p.Seen(1, "noindex") {
		t.Fatal("empty tracker claims a pair")
	}
	p.Mark(1, "noindex")
	p.Mark(1, "perm:1,0")
	p.Mark(2, "noindex")
	if !p.Seen(1, "noindex") || !p.Seen(2, "noindex") || p.Seen(2, "perm:1,0") {
		t.Fatal("Seen does not reflect Mark")
	}
	if p.Pairs() != 3 {
		t.Fatalf("Pairs() = %d, want 3", p.Pairs())
	}
}

// TestPairTrackerStateDeterministic: equal pair sets serialize to
// byte-identical snapshots regardless of insertion order — the property
// shard-merged reports rely on.
func TestPairTrackerStateDeterministic(t *testing.T) {
	a, b := NewPairTracker(), NewPairTracker()
	pairs := []struct {
		shape uint64
		spec  string
	}{{7, "noindex"}, {7, "perm:1,0"}, {3, "rel:t=scan"}, {0xffffffffffffffff, "swap"}}
	for _, pr := range pairs {
		a.Mark(pr.shape, pr.spec)
	}
	for i := len(pairs) - 1; i >= 0; i-- {
		b.Mark(pairs[i].shape, pairs[i].spec)
	}
	sa, err := a.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatalf("insertion order leaked into the snapshot:\n%s\n%s", sa, sb)
	}

	back := NewPairTracker()
	if err := back.LoadState(sa); err != nil {
		t.Fatal(err)
	}
	rt, err := back.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rt, sa) {
		t.Fatal("Load/Save round trip not byte-identical")
	}
}

// TestPairTrackerMergeUnion: merging shard snapshots in any order yields
// the same union state, and merging is idempotent.
func TestPairTrackerMergeUnion(t *testing.T) {
	s1, s2 := NewPairTracker(), NewPairTracker()
	s1.Mark(1, "noindex")
	s1.Mark(1, "perm:1,0")
	s2.Mark(1, "noindex") // overlap
	s2.Mark(2, "rel:t=scan")
	b1, _ := s1.SaveState()
	b2, _ := s2.SaveState()

	m12, m21 := NewPairTracker(), NewPairTracker()
	for _, data := range [][]byte{b1, b2} {
		if err := m12.MergeState(data); err != nil {
			t.Fatal(err)
		}
	}
	for _, data := range [][]byte{b2, b1, b1} { // reversed, plus a repeat
		if err := m21.MergeState(data); err != nil {
			t.Fatal(err)
		}
	}
	o12, _ := m12.SaveState()
	o21, _ := m21.SaveState()
	if !bytes.Equal(o12, o21) {
		t.Fatalf("merge not order-independent/idempotent:\n%s\n%s", o12, o21)
	}
	if m12.Pairs() != 3 {
		t.Fatalf("union holds %d pairs, want 3", m12.Pairs())
	}

	if err := NewPairTracker().MergeState([]byte("{bad")); err == nil {
		t.Fatal("malformed snapshot must fail to merge")
	}
	if err := NewPairTracker().LoadState([]byte(`{"pairs":{"zz":["x"]}}`)); err == nil {
		t.Fatal("malformed shape key must fail to load")
	}
}
