package feedback

import "math"

// BetaCDF returns the regularized incomplete beta function I_x(a, b):
// the CDF of a Beta(a, b) distribution at x. It is the quantity the
// paper's statistical model needs: with posterior θ|y ~ Beta(y+1, N−y+1),
// BetaCDF(p, y+1, N−y+1) is the posterior mass below the threshold p.
//
// Implementation: continued-fraction expansion (Lentz's algorithm), the
// standard numerical approach; pure math stdlib.
func BetaCDF(x, a, b float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// ln B(a,b) via lgamma.
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	lnBeta := lga + lgb - lgab
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lnBeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(x, a, b) / a
	}
	return 1 - front*betaCF(1-x, b, a)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function (Numerical Recipes §6.4, Lentz's method).
func betaCF(x, a, b float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
