// Package feedback implements the validity-feedback mechanism of the
// adaptive statement generator (paper §4).
//
// For every SQL feature it tracks the number of executions N and
// successes y of statements containing the feature. Query features are
// judged by Bayesian inference: with a uniform prior, θ|y ~ Beta(y+1,
// N−y+1); a feature is unsupported if at least `confidence` of the
// posterior mass lies below the user threshold p. DDL/DML features use
// the paper's simpler rule: a feature that fails `ddlMaxFailures` times
// consecutively (without a success) is unsupported.
package feedback

import (
	"encoding/json"
	"sort"
	"sync"
)

// Defaults match the paper's description (§4: p = 1%, 95% credible mass;
// probabilities updated after a fixed number of executions).
const (
	DefaultThreshold      = 0.01
	DefaultConfidence     = 0.95
	DefaultDDLMaxFailures = 25
	DefaultUpdateInterval = 400
)

// featureStats holds per-feature counters.
type featureStats struct {
	N int `json:"n"` // executions
	Y int `json:"y"` // successes
	// ConsecFail counts consecutive failures (DDL/DML rule).
	ConsecFail int  `json:"consecFail"`
	DDL        bool `json:"ddl"`
}

// Tracker accumulates per-feature execution feedback and classifies
// features as supported or unsupported.
type Tracker struct {
	mu sync.Mutex

	threshold   float64
	confidence  float64
	ddlMax      int
	updateEvery int

	// enabled=false gives the paper's "SQLancer++ Rand" configuration:
	// feedback is recorded but never suppresses anything.
	enabled bool

	stats       map[string]*featureStats
	unsupported map[string]bool
	sinceUpdate int
	updates     int
}

// Option configures a Tracker.
type Option func(*Tracker)

// WithThreshold sets the minimum success probability p.
func WithThreshold(p float64) Option {
	return func(t *Tracker) { t.threshold = p }
}

// WithConfidence sets the posterior mass required to deem a feature
// unsupported.
func WithConfidence(c float64) Option {
	return func(t *Tracker) { t.confidence = c }
}

// WithDDLMaxFailures sets the consecutive-failure cutoff for DDL/DML.
func WithDDLMaxFailures(n int) Option {
	return func(t *Tracker) { t.ddlMax = n }
}

// WithUpdateInterval sets how many recorded executions trigger a
// posterior update (the paper's iteration count I).
func WithUpdateInterval(n int) Option {
	return func(t *Tracker) { t.updateEvery = n }
}

// Disabled turns off suppression ("SQLancer++ Rand").
func Disabled() Option {
	return func(t *Tracker) { t.enabled = false }
}

// New returns a Tracker with the paper's default parameters.
func New(opts ...Option) *Tracker {
	t := &Tracker{
		threshold:   DefaultThreshold,
		confidence:  DefaultConfidence,
		ddlMax:      DefaultDDLMaxFailures,
		updateEvery: DefaultUpdateInterval,
		enabled:     true,
		stats:       map[string]*featureStats{},
		unsupported: map[string]bool{},
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Enabled reports whether suppression is active.
func (t *Tracker) Enabled() bool { return t.enabled }

func (t *Tracker) stat(f string) *featureStats {
	st := t.stats[f]
	if st == nil {
		st = &featureStats{}
		t.stats[f] = st
	}
	return st
}

// RecordQuery records the outcome of a query containing the features.
func (t *Tracker) RecordQuery(features []string, ok bool) {
	t.record(features, ok, false)
}

// RecordDDL records the outcome of a DDL/DML statement.
func (t *Tracker) RecordDDL(features []string, ok bool) {
	t.record(features, ok, true)
}

func (t *Tracker) record(features []string, ok bool, ddl bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, f := range features {
		st := t.stat(f)
		st.N++
		st.DDL = st.DDL || ddl
		if ok {
			st.Y++
			st.ConsecFail = 0
		} else {
			st.ConsecFail++
		}
	}
	t.sinceUpdate++
	if t.sinceUpdate >= t.updateEvery {
		t.updateLocked()
	}
}

// Update forces a posterior update (step 3 of Figure 5).
func (t *Tracker) Update() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.updateLocked()
}

func (t *Tracker) updateLocked() {
	t.sinceUpdate = 0
	t.updates++
	for f, st := range t.stats {
		if st.DDL {
			// DDL/DML rule: repeated consecutive failures ⇒ unsupported.
			if st.ConsecFail >= t.ddlMax {
				t.unsupported[f] = true
			}
			continue
		}
		if st.N < 20 {
			continue // not enough evidence yet
		}
		// P(θ < threshold | y, N) with θ|y ~ Beta(y+1, N−y+1).
		mass := BetaCDF(t.threshold, float64(st.Y+1), float64(st.N-st.Y+1))
		if mass >= t.confidence {
			t.unsupported[f] = true
		} else {
			delete(t.unsupported, f)
		}
	}
}

// Updates returns how many posterior updates have run.
func (t *Tracker) Updates() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.updates
}

// Supported reports whether the generator should keep producing the
// feature (paper Listing 4's shouldGenerate).
func (t *Tracker) Supported(f string) bool {
	if !t.enabled {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.unsupported[f]
}

// Unsupported returns the sorted list of suppressed features.
func (t *Tracker) Unsupported() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.unsupported))
	for f := range t.unsupported {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Stats returns (N, y) for a feature.
func (t *Tracker) Stats(f string) (n, y int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats[f]
	if st == nil {
		return 0, 0
	}
	return st.N, st.Y
}

// snapshot is the persisted form (paper Figure 5: probabilities can be
// persisted and loaded by future executions).
type snapshot struct {
	Stats       map[string]*featureStats `json:"stats"`
	Unsupported []string                 `json:"unsupported"`
}

// Save serializes the tracker state.
func (t *Tracker) Save() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := snapshot{Stats: t.stats}
	for f := range t.unsupported {
		snap.Unsupported = append(snap.Unsupported, f)
	}
	sort.Strings(snap.Unsupported)
	return json.MarshalIndent(snap, "", "  ")
}

// MergeState folds another tracker's saved state into t: execution
// counts add, the DDL flag ORs, consecutive-failure streaks take their
// maximum (streams cannot be interleaved after the fact), and features
// either side deemed unsupported start out unsupported. Callers merging
// several states should finish with Update() so the Bayesian
// classifications reflect the pooled evidence; the DDL consecutive-
// failure rule is monotone, so union is its exact merge.
func (t *Tracker) MergeState(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for f, st := range snap.Stats {
		dst := t.stat(f)
		dst.N += st.N
		dst.Y += st.Y
		dst.DDL = dst.DDL || st.DDL
		if st.ConsecFail > dst.ConsecFail {
			dst.ConsecFail = st.ConsecFail
		}
	}
	for _, f := range snap.Unsupported {
		t.unsupported[f] = true
	}
	return nil
}

// DiscountState subtracts times copies of a saved state's execution
// counts from t (flooring at zero). A shard merge uses it to remove the
// shared warm-start prior that every shard's saved state re-includes, so
// the pooled evidence counts the prior exactly once. DDL flags,
// failure streaks, and unsupported markings are left alone — they are
// monotone under the merge, not additive.
func (t *Tracker) DiscountState(data []byte, times int) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return err
	}
	if times <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for f, st := range snap.Stats {
		dst := t.stats[f]
		if dst == nil {
			continue
		}
		dst.N -= times * st.N
		dst.Y -= times * st.Y
		if dst.N < 0 {
			dst.N = 0
		}
		if dst.Y < 0 {
			dst.Y = 0
		}
	}
	return nil
}

// Load restores tracker state saved by Save.
func (t *Tracker) Load(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats = snap.Stats
	if t.stats == nil {
		t.stats = map[string]*featureStats{}
	}
	t.unsupported = map[string]bool{}
	for _, f := range snap.Unsupported {
		t.unsupported[f] = true
	}
	return nil
}
