package feedback

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBetaCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, a, b float64
		want    float64
	}{
		// Beta(1, b): CDF(x) = 1 - (1-x)^b.
		{0.01, 1, 401, 1 - math.Pow(0.99, 401)},
		{0.5, 1, 1, 0.5}, // uniform
		{0.25, 1, 2, 1 - math.Pow(0.75, 2)},
		// Symmetric distribution at the midpoint.
		{0.5, 5, 5, 0.5},
		// Degenerate edges.
		{0, 3, 3, 0},
		{1, 3, 3, 1},
	}
	for _, c := range cases {
		got := BetaCDF(c.x, c.a, c.b)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("BetaCDF(%v, %v, %v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestBetaCDFPaperExample(t *testing.T) {
	// Paper §4: y=0, N=400 with p=0.01 — the posterior Beta(1, 401) has
	// more than 95% of its mass below 0.01, so the feature is deemed
	// unsupported.
	mass := BetaCDF(0.01, 1, 401)
	if mass < 0.95 {
		t.Fatalf("paper example: mass %v, want ≥ 0.95", mass)
	}
	// With only 100 zero-success executions, confidence is insufficient.
	if BetaCDF(0.01, 1, 101) >= 0.95 {
		t.Fatal("100 executions must not reach 95% confidence at p=0.01")
	}
}

func TestBetaCDFProperties(t *testing.T) {
	// Monotone in x.
	mono := func(x1, x2 float64, ai, bi uint8) bool {
		a, b := float64(ai%50)+1, float64(bi%50)+1
		x1 = math.Abs(math.Mod(x1, 1))
		x2 = math.Abs(math.Mod(x2, 1))
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return BetaCDF(x1, a, b) <= BetaCDF(x2, a, b)+1e-12
	}
	if err := quick.Check(mono, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Bounded in [0, 1].
	bounded := func(x float64, ai, bi uint8) bool {
		a, b := float64(ai%50)+1, float64(bi%50)+1
		x = math.Abs(math.Mod(x, 1))
		v := BetaCDF(x, a, b)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(bounded, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	sym := func(x float64, ai, bi uint8) bool {
		a, b := float64(ai%50)+1, float64(bi%50)+1
		x = math.Abs(math.Mod(x, 1))
		return math.Abs(BetaCDF(x, a, b)-(1-BetaCDF(1-x, b, a))) < 1e-9
	}
	if err := quick.Check(sym, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTrackerLearnsUnsupportedQueryFeature(t *testing.T) {
	tr := New(WithThreshold(0.05), WithUpdateInterval(50))
	for i := 0; i < 100; i++ {
		tr.RecordQuery([]string{"XOR", "="}, false)
		tr.RecordQuery([]string{"="}, true)
	}
	if tr.Supported("XOR") {
		t.Fatal("always-failing feature must become unsupported")
	}
	if !tr.Supported("=") {
		t.Fatal("mixed-outcome feature must stay supported")
	}
	if !tr.Supported("NEVER-SEEN") {
		t.Fatal("unknown features default to supported")
	}
}

func TestTrackerRecovery(t *testing.T) {
	// A feature suppressed by early bad luck recovers when evidence
	// improves (the posterior update removes it from the unsupported set).
	tr := New(WithThreshold(0.5), WithUpdateInterval(10))
	for i := 0; i < 30; i++ {
		tr.RecordQuery([]string{"F"}, false)
	}
	tr.Update()
	if tr.Supported("F") {
		t.Fatal("feature should be suppressed")
	}
	for i := 0; i < 500; i++ {
		tr.RecordQuery([]string{"F"}, true)
	}
	tr.Update()
	if !tr.Supported("F") {
		t.Fatal("feature should recover with overwhelming success evidence")
	}
}

func TestTrackerDDLRule(t *testing.T) {
	tr := New(WithDDLMaxFailures(5), WithUpdateInterval(1))
	for i := 0; i < 4; i++ {
		tr.RecordDDL([]string{"CREATE INDEX"}, false)
	}
	if !tr.Supported("CREATE INDEX") {
		t.Fatal("below the cutoff the feature must stay supported")
	}
	tr.RecordDDL([]string{"CREATE INDEX"}, true) // success resets the streak
	for i := 0; i < 4; i++ {
		tr.RecordDDL([]string{"CREATE INDEX"}, false)
	}
	if !tr.Supported("CREATE INDEX") {
		t.Fatal("the success must have reset the failure streak")
	}
	for i := 0; i < 5; i++ {
		tr.RecordDDL([]string{"CREATE INDEX"}, false)
	}
	if tr.Supported("CREATE INDEX") {
		t.Fatal("five consecutive failures must suppress the feature")
	}
}

func TestTrackerDisabled(t *testing.T) {
	tr := New(Disabled(), WithUpdateInterval(10))
	for i := 0; i < 200; i++ {
		tr.RecordQuery([]string{"XOR"}, false)
	}
	if !tr.Supported("XOR") {
		t.Fatal("a disabled tracker must never suppress")
	}
}

func TestTrackerSaveLoad(t *testing.T) {
	tr := New(WithThreshold(0.05), WithUpdateInterval(10))
	for i := 0; i < 100; i++ {
		tr.RecordQuery([]string{"XOR"}, false)
		tr.RecordQuery([]string{"="}, true)
	}
	tr.Update()
	data, err := tr.Save()
	if err != nil {
		t.Fatal(err)
	}
	tr2 := New(WithThreshold(0.05))
	if err := tr2.Load(data); err != nil {
		t.Fatal(err)
	}
	if tr2.Supported("XOR") {
		t.Fatal("loaded state must keep XOR unsupported")
	}
	n, y := tr2.Stats("=")
	if n != 100 || y != 100 {
		t.Fatalf("loaded stats wrong: N=%d y=%d", n, y)
	}
	if err := tr2.Load([]byte("{broken")); err == nil {
		t.Fatal("corrupt state must be rejected")
	}
}

func TestTrackerUpdateCadence(t *testing.T) {
	tr := New(WithUpdateInterval(25))
	for i := 0; i < 100; i++ {
		tr.RecordQuery([]string{"A"}, true)
	}
	if got := tr.Updates(); got != 4 {
		t.Fatalf("want 4 updates after 100 records at interval 25, got %d", got)
	}
}

func TestTrackerMergeState(t *testing.T) {
	mk := func(feat string, n, fails int) []byte {
		tr := New(WithThreshold(0.05))
		for i := 0; i < n; i++ {
			tr.RecordQuery([]string{feat}, i >= fails)
		}
		data, err := tr.Save()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	merged := New(WithThreshold(0.05))
	// Two shards: one saw XOR fail 40/40 times, one 30/30 — pooled
	// evidence must condemn it; "=" succeeded everywhere and must stay.
	if err := merged.MergeState(mk("XOR", 40, 40)); err != nil {
		t.Fatal(err)
	}
	if err := merged.MergeState(mk("XOR", 30, 30)); err != nil {
		t.Fatal(err)
	}
	if err := merged.MergeState(mk("=", 50, 0)); err != nil {
		t.Fatal(err)
	}
	merged.Update()
	if n, y := merged.Stats("XOR"); n != 70 || y != 0 {
		t.Fatalf("merged XOR stats: N=%d y=%d, want 70/0", n, y)
	}
	if merged.Supported("XOR") {
		t.Fatal("pooled evidence must mark XOR unsupported")
	}
	if !merged.Supported("=") {
		t.Fatal("= must stay supported after merge")
	}
	if err := merged.MergeState([]byte("{broken")); err == nil {
		t.Fatal("corrupt state must be rejected")
	}
}

func TestTrackerMergeStateKeepsDDLRule(t *testing.T) {
	shard := New()
	for i := 0; i < DefaultDDLMaxFailures; i++ {
		shard.RecordDDL([]string{"CREATE VIEW"}, false)
	}
	shard.Update()
	data, err := shard.Save()
	if err != nil {
		t.Fatal(err)
	}
	merged := New()
	if err := merged.MergeState(data); err != nil {
		t.Fatal(err)
	}
	merged.Update()
	if merged.Supported("CREATE VIEW") {
		t.Fatal("DDL condemnation must survive the merge")
	}
}
