package feedback

// Plan-pair coverage. The PlanDiff oracle diffs a query's baseline plan
// against enumerated equivalent plans, and a campaign regenerates the
// same query *shapes* over and over with fresh literals; without
// memory, a capped plan budget re-diffs the same canonical prefix every
// time. PairTracker remembers which (query shape, plan spec) pairs a
// campaign has already diffed so the scheduler can spend the budget on
// pairs that can still find something — QPG's "mutate toward unseen
// plans" signal, keyed on engine.PlanShape fingerprints.
//
// Like Tracker, the state is mergeable: shards start empty, record
// their own pairs, and MergeState unions shard snapshots in shard
// order, so the merged campaign state — and every counter derived from
// per-shard tracker decisions — is byte-identical at any worker count.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// PairTracker records the (query shape, plan spec) pairs a campaign has
// diffed. The zero value is not ready; use NewPairTracker. Methods are
// safe for concurrent use.
type PairTracker struct {
	mu   sync.Mutex
	seen map[uint64]map[string]struct{}
}

// NewPairTracker returns an empty tracker.
func NewPairTracker() *PairTracker {
	return &PairTracker{seen: map[uint64]map[string]struct{}{}}
}

// Seen reports whether the (shape, spec) pair was already recorded.
func (p *PairTracker) Seen(shape uint64, spec string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.seen[shape][spec]
	return ok
}

// Mark records a diffed (shape, spec) pair.
func (p *PairTracker) Mark(shape uint64, spec string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.seen[shape]
	if m == nil {
		m = map[string]struct{}{}
		p.seen[shape] = m
	}
	m[spec] = struct{}{}
}

// Pairs returns the total number of recorded pairs.
func (p *PairTracker) Pairs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, m := range p.seen {
		n += len(m)
	}
	return n
}

// pairSnapshot is the serialized form: shape keys as fixed-width hex
// strings (encoding/json sorts map keys, so equal states serialize
// byte-identically) and spec lists sorted.
type pairSnapshot struct {
	Pairs map[string][]string `json:"pairs"`
}

// SaveState serializes the tracker deterministically.
func (p *PairTracker) SaveState() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := pairSnapshot{Pairs: make(map[string][]string, len(p.seen))}
	for shape, m := range p.seen {
		specs := make([]string, 0, len(m))
		for s := range m {
			specs = append(specs, s)
		}
		sort.Strings(specs)
		snap.Pairs[fmt.Sprintf("%016x", shape)] = specs
	}
	return json.MarshalIndent(snap, "", "  ")
}

// LoadState replaces the tracker contents with a saved snapshot.
func (p *PairTracker) LoadState(data []byte) error {
	var snap pairSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("pair state: %w", err)
	}
	seen := make(map[uint64]map[string]struct{}, len(snap.Pairs))
	for key, specs := range snap.Pairs {
		shape, err := strconv.ParseUint(key, 16, 64)
		if err != nil {
			return fmt.Errorf("pair state: bad shape key %q", key)
		}
		m := make(map[string]struct{}, len(specs))
		for _, s := range specs {
			m[s] = struct{}{}
		}
		seen[shape] = m
	}
	p.mu.Lock()
	p.seen = seen
	p.mu.Unlock()
	return nil
}

// MergeState unions a saved snapshot into the tracker. Union is
// commutative and idempotent, so merging shard states in shard order
// yields the same result as any interleaved single-process run.
func (p *PairTracker) MergeState(data []byte) error {
	var snap pairSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("pair state: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, specs := range snap.Pairs {
		shape, err := strconv.ParseUint(key, 16, 64)
		if err != nil {
			return fmt.Errorf("pair state: bad shape key %q", key)
		}
		m := p.seen[shape]
		if m == nil {
			m = make(map[string]struct{}, len(specs))
			p.seen[shape] = m
		}
		for _, s := range specs {
			m[s] = struct{}{}
		}
	}
	return nil
}
