package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// vetConfig is the JSON compilation-unit description the go command
// writes for a -vettool (the unitchecker protocol). Field names and
// semantics match x/tools' unitchecker.Config, which is the contract
// cmd/go programs against.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string // import path → canonical package path
	PackageFile               map[string]string // package path → export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/sqlint. It speaks the `go vet
// -vettool` protocol (-V=full, -flags, unit.cfg) and, when given package
// patterns instead of a .cfg file, re-executes itself through `go vet
// -vettool=<self> <patterns>` so standalone runs use the exact same
// modular pipeline and type information as the build.
func Main(analyzers []*Analyzer) {
	args := os.Args[1:]
	jsonOut := false
	var rest []string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			printFlags(analyzers)
			return
		case arg == "-json" || arg == "--json":
			jsonOut = true
		case strings.HasPrefix(arg, "-"):
			// Analyzer selection and context flags are accepted and
			// ignored: the suite always runs whole (every analyzer guards
			// a merge contract; there is no partial invariant).
		default:
			rest = append(rest, arg)
		}
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(runUnit(rest[0], analyzers, jsonOut))
	}
	os.Exit(runStandalone(rest))
}

// printVersion implements -V=full: the go command caches vet results
// keyed on this line, so it must change exactly when the binary does —
// a content hash of the executable.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h.Sum(nil))
}

// printFlags implements -flags: the go command queries the tool for its
// flag set before parsing the vet command line.
func printFlags(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	flags := []jsonFlag{
		{"json", true, "emit JSON output"},
		{"c", false, "display offending line with this many lines of context"},
	}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{a.Name, true, a.Doc})
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(append(data, '\n'))
}

// runStandalone re-invokes the suite through go vet so package loading,
// test-variant expansion, and export data come from the real build.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fatal(err)
	}
	return 0
}

// runUnit analyzes one compilation unit described by a vet.cfg file and
// returns the process exit code.
func runUnit(cfgFile string, analyzers []*Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err))
	}

	// The go command always wants the facts output file; the suite has no
	// cross-package facts, so it is empty — but writing it enables vet
	// result caching.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency analyzed only for facts: nothing to do.
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		GoVersion: cfg.GoVersion,
	}
	info := newInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fatal(err)
	}

	diags, err := Run(fset, files, pkg, info, analyzers)
	if err != nil {
		fatal(err)
	}
	writeVetx()

	if jsonOut {
		printJSONDiagnostics(fset, cfg.ID, diags)
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printJSONDiagnostics emits the go-vet JSON tree shape:
// {pkgID: {analyzer: [{posn, message}, …]}}.
func printJSONDiagnostics(fset *token.FileSet, pkgID string, diags []Diagnostic) {
	type jd struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jd{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer],
			jd{fset.Position(d.Pos).String(), d.Message})
	}
	tree := map[string]map[string][]jd{pkgID: byAnalyzer}
	data, err := json.MarshalIndent(tree, "", "\t")
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(append(data, '\n'))
}

// newInfo allocates a fully populated types.Info, shared by the
// unitchecker and the checktest loader so analyzers always see the same
// fields filled.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sqlint: %v\n", err)
	os.Exit(1)
}
