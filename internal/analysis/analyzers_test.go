package analysis_test

import (
	"testing"

	"sqlancerpp/internal/analysis"
	"sqlancerpp/internal/analysis/checktest"
)

const srcRoot = "testdata/src"

// Each test drives one analyzer over its fixture packages. The positive
// packages seed true violations (matched by `// want` comments) and the
// negative packages prove the scoping rules: deterministic-set
// membership, the internal/par exemption, _test.go skipping, and the
// //lint:allow suppression path.

func TestNondeterminism(t *testing.T) {
	checktest.Run(t, srcRoot, analysis.Nondeterminism,
		"nondet/engine", "nondet/other")
}

func TestContainment(t *testing.T) {
	checktest.Run(t, srcRoot, analysis.Containment,
		"contain/a", "contain/par")
}

func TestErrSentinel(t *testing.T) {
	checktest.Run(t, srcRoot, analysis.ErrSentinel,
		"errsentinel/a")
}

func TestFingerprint(t *testing.T) {
	checktest.Run(t, srcRoot, analysis.Fingerprint,
		"fingerprint/good", "fingerprint/bad")
}

func TestFaultSite(t *testing.T) {
	checktest.Run(t, srcRoot, analysis.FaultSite,
		"faultsite/faults", "faultsite/dialect")
}
