// Package analysis is sqlint: a project-specific static-analysis suite
// that enforces the load-bearing invariants of this reproduction as
// compiler-grade checks — determinism of the report-producing packages
// (same seed ⇒ byte-identical reports at any worker count), goroutine
// crash containment, sentinel-error comparison discipline, checkpoint
// fingerprint exhaustiveness, and fault-catalogue hygiene.
//
// The package mirrors the core of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) on the standard library only, because
// this build environment has no module proxy. cmd/sqlint wraps the suite
// in the `go vet -vettool` unitchecker protocol, so the checks run with
// the exact type information of the real build.
//
// A finding is suppressed by annotating the offending line (or the line
// directly above it) with
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory: an allow without one is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow annotations.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// Run executes the check and reports findings through the Pass.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The
// determinism and containment analyzers skip test files: tests may
// legitimately sleep, spawn helper goroutines, and race timers — the
// invariants guard the report-producing production code.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PkgBaseName returns the package's clause name with any external-test
// suffix stripped ("engine_test" → "engine"), the key the analyzers
// match their package scopes against. Matching on the clause name (not
// the import path) keeps the analyzers working identically under `go
// vet`, the standalone driver, and the checktest fixtures.
func (p *Pass) PkgBaseName() string {
	return strings.TrimSuffix(p.Pkg.Name(), "_test")
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// allowRe matches the suppression annotation. The reason group is
// validated separately so a bare "//lint:allow name" can be reported as
// malformed instead of silently ignored.
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_-]+)\s*(.*)$`)

// allowSite is one parsed //lint:allow annotation.
type allowSite struct {
	line     int
	analyzer string
	reason   string
	pos      token.Pos
}

// collectAllows parses every //lint:allow annotation in the files.
func collectAllows(fset *token.FileSet, files []*ast.File) []allowSite {
	var sites []allowSite
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				sites = append(sites, allowSite{
					line:     fset.Position(c.Pos()).Line,
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
					pos:      c.Pos(),
				})
			}
		}
	}
	return sites
}

// Run executes the analyzers over one type-checked package and returns
// the surviving diagnostics in file/line order: findings covered by a
// well-formed //lint:allow on the same or the directly preceding line
// are dropped, and malformed allows (no reason) are reported themselves.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {

	allows := collectAllows(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range diags {
			if !suppressed(fset, allows, d) {
				out = append(out, d)
			}
		}
	}
	for _, site := range allows {
		if site.reason == "" {
			out = append(out, Diagnostic{
				Pos:      site.pos,
				Analyzer: "lint",
				Message: fmt.Sprintf("lint:allow %s needs a reason: "+
					"every suppression must say why the invariant does not apply", site.analyzer),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out, nil
}

// suppressed reports whether a well-formed allow annotation for the
// diagnostic's analyzer sits on the same line or the line directly above.
func suppressed(fset *token.FileSet, allows []allowSite, d Diagnostic) bool {
	p := fset.Position(d.Pos)
	for _, site := range allows {
		if site.analyzer != d.Analyzer || site.reason == "" {
			continue
		}
		sp := fset.PositionFor(site.pos, false)
		if sp.Filename != p.Filename {
			continue
		}
		if site.line == p.Line || site.line == p.Line-1 {
			return true
		}
	}
	return false
}

// Suite returns the five sqlint analyzers in deterministic order.
func Suite() []*Analyzer {
	return []*Analyzer{
		Nondeterminism,
		Containment,
		ErrSentinel,
		Fingerprint,
		FaultSite,
	}
}

// pkgNameOf resolves a selector base expression to the package it names,
// returning the imported package path ("time", "math/rand") or "".
func pkgNameOf(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
