package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// check type-checks one synthetic file (package clause chooses the
// analyzer scoping) and runs the given analyzers through Run, returning
// the surviving diagnostics.
func check(t *testing.T, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := newInfo()
	pkg, err := (&types.Config{}).Check(f.Name.Name, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	diags, err := Run(fset, []*ast.File{f}, pkg, info, analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

// TestAllowWithoutReasonIsItselfADiagnostic pins the suppression
// contract: a bare "//lint:allow <analyzer>" does NOT suppress the
// finding, and additionally surfaces a "lint" diagnostic of its own.
func TestAllowWithoutReasonIsItselfADiagnostic(t *testing.T) {
	src := `package a

func spawn(work func()) {
	//lint:allow containment
	go func() { work() }()
}
`
	diags := check(t, src, []*Analyzer{Containment})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (unsuppressed finding + malformed allow):\n%+v",
			len(diags), diags)
	}
	var sawFinding, sawMalformed bool
	for _, d := range diags {
		switch d.Analyzer {
		case "containment":
			sawFinding = true
		case "lint":
			sawMalformed = true
			if !strings.Contains(d.Message, "needs a reason") {
				t.Errorf("malformed-allow message = %q", d.Message)
			}
		}
	}
	if !sawFinding || !sawMalformed {
		t.Errorf("diagnostics = %+v; want one containment finding and one lint finding", diags)
	}
}

// TestAllowOnlySuppressesItsOwnAnalyzer: an allow naming a different
// analyzer leaves the finding standing.
func TestAllowOnlySuppressesItsOwnAnalyzer(t *testing.T) {
	src := `package a

func spawn(work func()) {
	//lint:allow nondeterminism wrong analyzer name
	go func() { work() }()
}
`
	diags := check(t, src, []*Analyzer{Containment})
	if len(diags) != 1 || diags[0].Analyzer != "containment" {
		t.Fatalf("diagnostics = %+v; want exactly the containment finding", diags)
	}
}

// TestAllowOnSameLineSuppresses covers the trailing-comment placement.
func TestAllowOnSameLineSuppresses(t *testing.T) {
	src := `package a

func spawn(work func()) {
	go func() { work() }() //lint:allow containment fixture reason
}
`
	if diags := check(t, src, []*Analyzer{Containment}); len(diags) != 0 {
		t.Fatalf("diagnostics = %+v; want none", diags)
	}
}

// TestSuiteNamesAreUnique guards the //lint:allow namespace.
func TestSuiteNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if !seen["nondeterminism"] || !seen["containment"] || !seen["errsentinel"] ||
		!seen["fingerprint"] || !seen["faultsite"] {
		t.Errorf("suite = %v; want all five sqlint analyzers", seen)
	}
}
