package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// FaultSite keeps the injected-fault catalogue honest. Every fault is
// ground truth for the "campaign-attributed with zero false positives"
// bar, which only holds if (a) the catalogue key is a dialect that
// actually registers — a typo silently drops the whole fault list on the
// floor (faults.ForDialect returns nil for unknown names) — and (b) each
// fault kind is exercised by at least one test, so an attribution
// regression cannot land unnoticed.
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc: "fault catalogue keys must name registered dialects and every " +
		"fault kind must be referenced by a _test.go file",
	Run: runFaultSite,
}

func runFaultSite(pass *Pass) error {
	if pass.PkgBaseName() != "faults" {
		return nil
	}
	var catalog *ast.CompositeLit
	var catalogFile string
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name == "catalog" && i < len(vs.Values) {
						if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
							catalog = cl
							catalogFile = pass.Fset.Position(cl.Pos()).Filename
						}
					}
				}
			}
		}
	}
	if catalog == nil {
		return nil
	}

	pkgDir := filepath.Dir(catalogFile)
	dialects, err := registeredDialects(filepath.Join(pkgDir, "..", "dialect"))
	if err != nil {
		return err
	}

	// kindPos records the first catalogue entry using each fault kind, so
	// an unreferenced kind is reported once, at a stable position.
	kindPos := map[string]token.Pos{}
	var kinds []string
	for _, elt := range catalog.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if lit, ok := kv.Key.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			name, err := strconv.Unquote(lit.Value)
			if err == nil && len(dialects) > 0 && !dialects[name] {
				pass.Reportf(kv.Key.Pos(),
					"fault catalogue key %q is not a registered dialect: "+
						"faults.ForDialect would return nil and every fault under it "+
						"would silently never be injected", name)
			}
		}
		entries, ok := kv.Value.(*ast.CompositeLit)
		if !ok {
			continue // e.g. an explicit nil for a clean reference system
		}
		for _, entry := range entries.Elts {
			kind, pos, ok := entryKind(entry)
			if !ok {
				continue
			}
			if _, seen := kindPos[kind]; !seen {
				kindPos[kind] = pos
				kinds = append(kinds, kind)
			}
		}
	}

	root := testScanRoot(pkgDir)
	if root == "" {
		return nil
	}
	referenced, err := kindsReferencedInTests(root, kinds)
	if err != nil {
		return err
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		if !referenced[kind] {
			pass.Reportf(kindPos[kind],
				"fault kind %s appears in the catalogue but no _test.go file "+
					"references it: its campaign attribution is unguarded", kind)
		}
	}
	return nil
}

// entryKind extracts the fault-kind identifier from one catalogue entry
// literal, accepting both positional ({Logic, CmpNullTrue, …}) and keyed
// ({kind: CmpNullTrue}) forms.
func entryKind(entry ast.Expr) (string, token.Pos, bool) {
	lit, ok := entry.(*ast.CompositeLit)
	if !ok {
		return "", token.NoPos, false
	}
	for i, e := range lit.Elts {
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "kind" {
				if id, ok := kv.Value.(*ast.Ident); ok {
					return id.Name, id.Pos(), true
				}
			}
			continue
		}
		if i == 1 {
			if id, ok := e.(*ast.Ident); ok {
				return id.Name, id.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// registeredDialects parses the sibling dialect package (syntax only; no
// type information needed) and collects every name a dialect can register
// under: `Name: "x"` struct fields, `.Name = "x"` assignments, and the
// first string argument of the profileXxx constructor family.
func registeredDialects(dir string) (map[string]bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // fixture without a dialect package: skip the check
		}
		return nil, err
	}
	names := map[string]bool{}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") ||
			strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			return nil, fmt.Errorf("parsing dialect package: %w", err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok && id.Name == "Name" {
					addStringLit(names, n.Value)
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if ok && sel.Sel.Name == "Name" && i < len(n.Rhs) {
						addStringLit(names, n.Rhs[i])
					}
				}
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if ok && strings.HasPrefix(id.Name, "profile") && len(n.Args) > 0 {
					addStringLit(names, n.Args[0])
				}
			}
			return true
		})
	}
	return names, nil
}

func addStringLit(set map[string]bool, e ast.Expr) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	if s, err := strconv.Unquote(lit.Value); err == nil {
		set[s] = true
	}
}

// testScanRoot finds the directory whose _test.go files count as the
// catalogue's guard suite: the fixture root when the package lives under
// a testdata/src tree (so analyzer tests never scan the enclosing real
// repository), otherwise the module root (nearest ancestor with go.mod).
func testScanRoot(dir string) string {
	d := dir
	for {
		parent := filepath.Dir(d)
		if filepath.Base(parent) == "src" &&
			filepath.Base(filepath.Dir(parent)) == "testdata" {
			return d
		}
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		if parent == d {
			return ""
		}
		d = parent
	}
}

// kindsReferencedInTests scans every *_test.go under root for word-level
// references to the fault kinds.
func kindsReferencedInTests(root string, kinds []string) (map[string]bool, error) {
	if len(kinds) == 0 {
		return nil, nil
	}
	pattern := `\b(` + strings.Join(kinds, "|") + `)\b`
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	referenced := map[string]bool{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") || len(referenced) == len(kinds) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range re.FindAll(data, -1) {
			referenced[string(m)] = true
		}
		return nil
	})
	return referenced, err
}
