package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// ErrSentinel forbids identity comparison against error sentinels.
// Containment boundaries wrap engine errors (fmt.Errorf "%w", recovered
// panics, chaos injection), so `err == engine.ErrX` silently stops
// matching the moment anything on the path wraps the error — the class
// checks (engine.ClassOf, engine.IsBudgetExceeded, …) and errors.Is
// survive wrapping. This is the PR 6/9 attribution contract: a
// misclassified error becomes a false positive or a lost bug.
var ErrSentinel = &Analyzer{
	Name: "errsentinel",
	Doc: "error sentinels (Err*/err* package vars) must be matched with " +
		"errors.Is or engine.ClassOf, never ==/!=",
	Run: runErrSentinel,
}

// sentinelName matches the conventional sentinel spellings: exported
// ErrFoo and unexported errFoo package vars. A bare local `err` never
// matches.
var sentinelName = regexp.MustCompile(`^(Err|err)[A-Z0-9_]`)

func runErrSentinel(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if name, ok := sentinelErrorVar(pass.TypesInfo, side); ok {
						pass.Reportf(n.OpPos,
							"identity comparison against error sentinel %s breaks once the "+
								"error is wrapped; use errors.Is (or the engine.ClassOf/Is* "+
								"class checks)", name)
						break
					}
				}
			case *ast.SwitchStmt:
				// switch err { case errBudget: } is the same identity
				// comparison in disguise.
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := sentinelErrorVar(pass.TypesInfo, e); ok {
							pass.Reportf(e.Pos(),
								"switch case matches error sentinel %s by identity; "+
									"use errors.Is (or the engine class checks)", name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelErrorVar reports whether the expression names a package-level
// error-typed variable with a sentinel name (ErrFoo / errFoo), in this
// package or selected from another.
func sentinelErrorVar(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !sentinelName.MatchString(v.Name()) {
		return "", false
	}
	if !implementsError(v.Type()) {
		return "", false
	}
	return v.Name(), true
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if errIface == nil {
		return false
	}
	return types.Implements(t, errIface)
}
