// Package checktest is a stdlib-only analogue of x/tools'
// analysistest: it loads fixture packages from a testdata/src tree,
// type-checks them (resolving fixture-local imports from the same tree
// and everything else from GOROOT source), runs one analyzer through the
// same analysis.Run pipeline the vettool uses — including //lint:allow
// suppression — and matches the diagnostics against `// want "regexp"`
// expectations in the fixture source.
package checktest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"sqlancerpp/internal/analysis"
)

// wantRe extracts the expectation comment: one or more quoted or
// backquoted regexps after "want".
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)$")

var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run loads each fixture package under srcRoot, applies the analyzer,
// and reports any mismatch between diagnostics and want expectations as
// test errors.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		fset:     fset,
		srcRoot:  srcRoot,
		cache:    map[string]*loaded{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	for _, path := range pkgPaths {
		lp, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := analysis.Run(fset, lp.files, lp.pkg, lp.info, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkExpectations(t, fset, lp.files, diags)
	}
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader type-checks fixture packages, resolving imports that exist
// under srcRoot recursively and delegating the rest (stdlib) to the
// GOROOT source importer.
type loader struct {
	fset     *token.FileSet
	srcRoot  string
	cache    map[string]*loaded
	fallback types.Importer
}

func (l *loader) load(path string) (*loaded, error) {
	if lp, ok := l.cache[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s has no Go files", path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{Importer: importerFunc(l.importPkg)}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loaded{pkg: pkg, files: files, info: info}
	l.cache[path] = lp
	return lp, nil
}

func (l *loader) importPkg(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.fallback.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one parsed `// want` regexp.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// checkExpectations compares diagnostics against want comments: every
// diagnostic must match an expectation on its line, and every
// expectation must be consumed by exactly one diagnostic.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllString(m[1], -1) {
					pattern := arg[1 : len(arg)-1]
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", pos, arg, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", p, d.Message, d.Analyzer)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q was not reported", w.file, w.line, w.re)
		}
	}
}
