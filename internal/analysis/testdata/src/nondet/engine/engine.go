// Package engine is a fixture: its package clause name puts it in the
// deterministic set, so every construct below is exactly what the
// nondeterminism analyzer must (or must not) flag.
package engine

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func wallClock() int64 {
	return time.Now().Unix() // want `wall-clock time\.Now in deterministic package engine`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock time\.Since`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are fine
	return r.Intn(10)
}

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration appends to a slice with no following sort`
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // collect-then-sort: fine
	}
	sort.Strings(out)
	return out
}

func unsortedHash(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(k)) // want `order-committed write`
	}
	return h.Sum64()
}

func unsortedReport(m map[string]int, sb *strings.Builder) {
	for k := range m {
		fmt.Fprintf(sb, "%s\n", k) // want `order-committed write`
	}
}

func indexWrite(m map[string]int, out []string) {
	i := 0
	for k := range m {
		out[i] = k // want `map iteration appends to a slice with no following sort`
		i++
	}
}

func allowedClock() int64 {
	//lint:allow nondeterminism fixture: sanctioned wall-clock site
	return time.Now().Unix()
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs { // ranging a slice is already ordered
		out = append(out, x)
	}
	return out
}
