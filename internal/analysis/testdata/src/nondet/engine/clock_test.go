package engine

import (
	"testing"
	"time"
)

// Test files are exempt: tests may legitimately read the clock.
func TestClockIsFine(t *testing.T) {
	_ = time.Now()
}
