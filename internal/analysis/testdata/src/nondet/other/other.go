// Package other is outside the deterministic set: nothing here is
// flagged even though it mirrors the positive fixture.
package other

import (
	"math/rand"
	"time"
)

func wallClock() int64 { return time.Now().Unix() }

func globalRand() int { return rand.Intn(10) }

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
