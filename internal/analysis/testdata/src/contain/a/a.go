// Package a is the containment fixture: bare `go func` literals must
// recover, carry an allow annotation, or be rewritten.
package a

func spawnBare(work func()) {
	go func() { // want `goroutine body has no recover`
		work()
	}()
}

func spawnContained(work func()) {
	go func() {
		defer func() {
			if p := recover(); p != nil {
				_ = p
			}
		}()
		work()
	}()
}

func spawnNested(work func()) {
	// The inner goroutine recovers; that does not contain the outer one.
	go func() { // want `goroutine body has no recover`
		go func() {
			defer func() { recover() }()
			work()
		}()
		work()
	}()
}

func spawnAllowed(work func()) {
	//lint:allow containment fixture: body cannot panic
	go func() { work() }()
}

func spawnNamed() {
	go helper() // a named function, not a bare literal: out of scope
}

func helper() {}
