// Package par is exempt by name: it is the blessed worker pool whose
// goroutines recover per item at the pool layer.
package par

func spawn(work func()) {
	go func() {
		work()
	}()
}
