package faults

import "testing"

// TestKinds references KnownKind and KeyedKind (textually, which is all
// the analyzer requires); the third fixture kind is deliberately never
// named in any test file.
func TestKinds(t *testing.T) {
	if KnownKind == KeyedKind {
		t.Fatal("distinct kinds collided")
	}
}
