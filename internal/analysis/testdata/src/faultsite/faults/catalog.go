// Package faults is the catalogue side of the faultsite fixture. The
// sibling ../dialect package registers realdb, assigneddb, and
// literaldb; guard_test.go references KnownKind but not GhostKind.
package faults

// Class labels what a fault breaks.
type Class int

// Logic faults corrupt results silently.
const Logic Class = iota

// Kind identifies one injected defect.
type Kind int

// The fixture's fault kinds.
const (
	KnownKind Kind = iota
	KeyedKind
	GhostKind
)

type spec struct {
	class Class
	kind  Kind
	param string
	desc  string
}

var catalog = map[string][]spec{
	"realdb": {
		{Logic, KnownKind, "", "guarded by guard_test.go"},
		{Logic, GhostKind, "", "no test references this kind"}, // want `fault kind GhostKind appears in the catalogue but no _test\.go file references it`
	},
	"assigneddb": {
		{class: Logic, kind: KeyedKind, desc: "keyed form, guarded"},
	},
	"literaldb": nil, // a clean reference system: an explicit empty list
	"nosuchdb": { // want `fault catalogue key "nosuchdb" is not a registered dialect`
		{Logic, KnownKind, "", "typo'd dialect name"},
	},
	//lint:allow faultsite fixture: synthetic profile, deliberately unregistered
	"syntheticdb": {
		{Logic, KnownKind, "", "allowed synthetic profile"},
	},
}
