// Package dialect is the registration side of the faultsite fixture:
// the analyzer parses it syntactically, exactly as it parses the real
// internal/dialect package.
package dialect

// Dialect mirrors the real registry's value type.
type Dialect struct {
	Name    string
	Display string
}

func profileReal(name, display string) *Dialect {
	return &Dialect{Name: name, Display: display}
}

var registry = map[string]*Dialect{}

func init() {
	d := profileReal("realdb", "RealDB")
	registry[d.Name] = d

	other := &Dialect{}
	other.Name = "assigneddb"
	registry[other.Name] = other

	registry["literaldb"] = &Dialect{Name: "literaldb", Display: "LiteralDB"}
}
