// Package campaign (good fixture): every Config field is either
// rendered by fingerprint() or declared in fingerprintExcluded, so the
// analyzer stays silent.
package campaign

import "fmt"

type Config struct {
	Seed    int64
	Cases   int
	Dialect string
	Verbose bool
}

var fingerprintExcluded = map[string]string{
	"Verbose": "printing detail never changes which shards produced what",
}

func fingerprint(cfg Config) string {
	return fmt.Sprintf("%d|%d|%s", cfg.Seed, cfg.Cases, cfg.Dialect)
}
