// Package campaign (bad fixture): one field escapes the fingerprint
// entirely, one is both rendered and excluded, and one exclusion is
// stale.
package campaign

import "fmt"

type Config struct {
	Seed  int64
	Cases int // want `campaign\.Config field Cases is rendered in fingerprint\(\) AND listed in fingerprintExcluded`
	Skew  int // want `campaign\.Config field Skew is neither rendered in fingerprint\(\) nor declared in fingerprintExcluded`
}

var fingerprintExcluded = map[string]string{
	"Cases": "wrongly excluded: fingerprint renders it too",
	"Gone":  "renamed away long ago", // want `fingerprintExcluded entry "Gone" names no campaign\.Config field`
}

func fingerprint(cfg Config) string {
	return fmt.Sprintf("%d|%d", cfg.Seed, cfg.Cases)
}
