// Package sent exports an error sentinel so the fixture in ../a can
// exercise the cross-package comparison case.
package sent

import "errors"

// ErrBudget mirrors an engine sentinel.
var ErrBudget = errors.New("budget exceeded")
