// Package a is the errsentinel fixture: identity comparisons against
// Err*/err* package-level error vars are flagged; errors.Is, nil checks,
// and non-sentinel spellings are not.
package a

import (
	"errors"

	"errsentinel/sent"
)

var errLocal = errors.New("local sentinel")

var plainErr = errors.New("name does not match the sentinel convention")

func cmpImported(err error) bool {
	return err == sent.ErrBudget // want `identity comparison against error sentinel ErrBudget`
}

func cmpLocal(err error) bool {
	if err != errLocal { // want `identity comparison against error sentinel errLocal`
		return false
	}
	return true
}

func cmpIs(err error) bool {
	return errors.Is(err, sent.ErrBudget) // the survivable form
}

func cmpNil(err error) bool {
	return err == nil
}

func cmpNonSentinelName(err error) bool {
	return err == plainErr
}

func swSentinel(err error) string {
	switch err {
	case errLocal: // want `switch case matches error sentinel errLocal`
		return "local"
	case nil:
		return "ok"
	}
	return ""
}

func cmpAllowed(err error) bool {
	//lint:allow errsentinel fixture: identity is intended here
	return err == sent.ErrBudget
}

// Class constants named Err* are not error sentinels: no diagnostics.
type Class int

const ErrClassBudget Class = 1

func classify(c Class) bool {
	return c == ErrClassBudget
}
