package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// deterministicPkgs names the packages whose outputs must be a pure
// function of the campaign seed: everything that feeds a Report, a
// tracker snapshot, or a checkpoint. One wall-clock read or one unsorted
// map iteration in any of them breaks the scaling contract — same seed ⇒
// byte-identical reports at any worker count.
var deterministicPkgs = map[string]bool{
	"engine":   true,
	"campaign": true,
	"feedback": true,
	"oracle":   true,
	"gen":      true,
	"chaos":    true,
	"faults":   true,
}

// wallClockFuncs are the time package functions that read (or schedule
// against) the wall clock. time.Sleep is deliberately absent: a sleep
// delays execution but never feeds a value into a report.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// globalRandOK lists the math/rand selectors that do NOT touch the
// process-global generator: constructors and type names. Everything else
// (rand.Intn, rand.Shuffle, …) draws from the shared source, whose
// sequence depends on what every other goroutine consumed.
var globalRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
	"PCG": true, "ChaCha8": true,
}

// Nondeterminism flags wall-clock reads, global math/rand use, and
// order-committing map iterations inside the deterministic packages.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc: "flag wall-clock, global rand, and unsorted map iteration in the " +
		"deterministic packages (same seed must give byte-identical reports)",
	Run: runNondeterminism,
}

func runNondeterminism(pass *Pass) error {
	if !deterministicPkgs[pass.PkgBaseName()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkNondetSelector(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// checkNondetSelector reports time.<wallclock> and global math/rand
// selectors, whether called or merely referenced as a value.
func checkNondetSelector(pass *Pass, sel *ast.SelectorExpr) {
	switch pkgNameOf(pass.TypesInfo, sel.X) {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(),
				"wall-clock time.%s in deterministic package %s: report-affecting "+
					"values must be pure functions of the seed (derive ordinals, not timestamps)",
				sel.Sel.Name, pass.PkgBaseName())
		}
	case "math/rand", "math/rand/v2":
		if !globalRandOK[sel.Sel.Name] {
			pass.Reportf(sel.Pos(),
				"global math/rand.%s in deterministic package %s: the shared source "+
					"is scheduling-dependent; thread a seeded *rand.Rand instead",
				sel.Sel.Name, pass.PkgBaseName())
		}
	}
}

// checkMapRange flags a `range` over a map whose body commits iteration
// order to an output: feeding a hash or writer (order is committed
// immediately — no later sort can repair it), or appending/index-writing
// into a slice that is not sorted afterwards in the same function.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	var hashWrite, sliceWrite ast.Node
	var sortedInBody bool
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isOrderCommittingWrite(pass.TypesInfo, n) && hashWrite == nil {
				hashWrite = n
			}
			if isBuiltin(pass.TypesInfo, n, "append") && sliceWrite == nil {
				sliceWrite = n
			}
			if isSortCall(pass.TypesInfo, n) {
				// Sorting inside the body (e.g. of a freshly collected
				// sub-slice) re-establishes a deterministic order.
				sortedInBody = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if xt := pass.TypesInfo.TypeOf(ix.X); xt != nil {
					if _, isSlice := xt.Underlying().(*types.Slice); isSlice && sliceWrite == nil {
						sliceWrite = n
					}
				}
			}
		}
		return true
	})

	if hashWrite != nil && !sortedInBody {
		pass.Reportf(hashWrite.Pos(),
			"map iteration feeds an order-committed write (hash/writer) in "+
				"deterministic package %s: sort the keys and range over the slice instead",
			pass.PkgBaseName())
		return
	}
	if sliceWrite == nil || sortedInBody {
		return
	}
	if sortAfter(pass, file, rng.End()) {
		return // collect-then-sort: the canonical deterministic pattern
	}
	pass.Reportf(sliceWrite.Pos(),
		"map iteration appends to a slice with no following sort in "+
			"deterministic package %s: the element order depends on map hashing",
		pass.PkgBaseName())
}

// isOrderCommittingWrite reports calls that serialize data in iteration
// order with no way to sort afterwards: hash/io/builder Write methods and
// the fmt.Fprint family.
func isOrderCommittingWrite(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch pkgNameOf(info, sel.X) {
	case "fmt":
		switch sel.Sel.Name {
		case "Fprint", "Fprintf", "Fprintln":
			return true
		}
		return false
	case "":
		// Method call: Write-family methods commit bytes in call order.
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}

// isSortCall recognizes the sort and slices package entry points that
// impose a deterministic order.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch pkgNameOf(info, sel.X) {
	case "sort":
		return true
	case "slices":
		switch sel.Sel.Name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// sortAfter reports whether any sort call appears after pos inside the
// function enclosing it (the collect-keys / sort / range-sorted idiom, or
// append-everything / sort-once-at-the-end).
func sortAfter(pass *Pass, file *ast.File, pos token.Pos) bool {
	fn := enclosingFuncBody(file, pos)
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if ok && call.Pos() >= pos && isSortCall(pass.TypesInfo, call) {
			found = true
		}
		return true
	})
	return found
}

// enclosingFuncBody returns the body of the innermost function literal or
// declaration containing pos.
func enclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return n == file
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				best = n.Body
			}
		case *ast.FuncLit:
			best = n.Body
		}
		return true
	})
	return best
}
