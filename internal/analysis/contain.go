package analysis

import (
	"go/ast"
)

// Containment enforces the crash-containment contract (DESIGN.md §7/§10):
// a panic anywhere in the harness must become an attributed error, never
// a process death. Worker fan-out goes through internal/par (whose pool
// recovers per item); any other goroutine launched with a bare `go func`
// literal must carry its own recover() boundary, because a panic on a
// goroutine with no recover kills the whole process regardless of the
// campaign's containment boundaries.
var Containment = &Analyzer{
	Name: "containment",
	Doc: "bare `go func` literals outside internal/par must contain a " +
		"recover() boundary (a goroutine panic kills the process)",
	Run: runContainment,
}

func runContainment(pass *Pass) error {
	if pass.PkgBaseName() == "par" {
		return nil // the blessed pool: its workers recover per item
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !containsRecover(pass, lit) {
				pass.Reportf(g.Pos(),
					"goroutine body has no recover() boundary: a panic here kills "+
						"the process and defeats crash containment; recover inside the "+
						"goroutine, route the work through par.ForEach, or annotate "+
						"//lint:allow containment <reason>")
			}
			return true
		})
	}
	return nil
}

// containsRecover reports whether the goroutine literal's body calls
// recover() on this goroutine: nested function literals count (the
// conventional `defer func() { recover() }()` boundary), but the bodies
// of further `go` statements do not — those run on their own goroutines
// and are checked separately.
func containsRecover(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			// Skip the nested goroutine's own literal body, but still
			// inspect the call's arguments (evaluated on this goroutine).
			for _, arg := range g.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(pass.TypesInfo, call, "recover") {
			found = true
			return false
		}
		return true
	}
	ast.Inspect(lit.Body, walk)
	return found
}
