package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Fingerprint enforces checkpoint-fingerprint exhaustiveness in package
// campaign: every field of campaign.Config must either be rendered by
// fingerprint() or be declared (with a reason) in the package's
// fingerprintExcluded list. A knob that is neither would let -resume
// merge shards produced under a different configuration — silently, and
// only detectably as a byte-level report divergence much later.
var Fingerprint = &Analyzer{
	Name: "fingerprint",
	Doc: "every campaign.Config field must be rendered in fingerprint() " +
		"or declared in fingerprintExcluded",
	Run: runFingerprint,
}

func runFingerprint(pass *Pass) error {
	if pass.PkgBaseName() != "campaign" {
		return nil
	}

	var (
		configStruct *ast.StructType
		fpFunc       *ast.FuncDecl
		exclLit      *ast.CompositeLit
	)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.Name == "Config" {
							if st, ok := s.Type.(*ast.StructType); ok {
								configStruct = st
							}
						}
					case *ast.ValueSpec:
						for i, name := range s.Names {
							if name.Name == "fingerprintExcluded" && i < len(s.Values) {
								if cl, ok := s.Values[i].(*ast.CompositeLit); ok {
									exclLit = cl
								}
							}
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name == "fingerprint" && d.Recv == nil {
					fpFunc = d
				}
			}
		}
	}
	if configStruct == nil || fpFunc == nil {
		return nil // not the real campaign package (or mid-refactor)
	}

	rendered := renderedConfigFields(pass, fpFunc)
	excluded := map[string]ast.Expr{}
	if exclLit != nil {
		for _, elt := range exclLit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if lit, ok := kv.Key.(*ast.BasicLit); ok {
				if name, err := strconv.Unquote(lit.Value); err == nil {
					excluded[name] = kv.Key
				}
			}
		}
	}

	fields := map[string]bool{}
	for _, field := range configStruct.Fields.List {
		for _, name := range field.Names {
			fields[name.Name] = true
			switch {
			case rendered[name.Name] && excluded[name.Name] != nil:
				pass.Reportf(name.Pos(),
					"campaign.Config field %s is rendered in fingerprint() AND listed "+
						"in fingerprintExcluded; keep exactly one", name.Name)
			case !rendered[name.Name] && excluded[name.Name] == nil:
				pass.Reportf(name.Pos(),
					"campaign.Config field %s is neither rendered in fingerprint() nor "+
						"declared in fingerprintExcluded: a checkpoint could be resumed "+
						"under a different %s and still pass the fingerprint check",
					name.Name, name.Name)
			}
		}
	}
	for name, key := range excluded {
		if !fields[name] {
			pass.Reportf(key.Pos(),
				"fingerprintExcluded entry %q names no campaign.Config field "+
					"(stale after a rename?)", name)
		}
	}
	return nil
}

// renderedConfigFields collects the Config fields the fingerprint
// function reads: any selector whose base expression has type Config (or
// *Config), at any depth (cfg.Dialect.Name counts as Dialect).
func renderedConfigFields(pass *Pass, fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(sel.X)
		if t == nil {
			return true
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "Config" || named.Obj().Pkg() != pass.Pkg {
			return true
		}
		out[sel.Sel.Name] = true
		return true
	})
	return out
}
