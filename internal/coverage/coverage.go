// Package coverage provides lightweight instrumentation for the SQL
// engine. Engine code registers named points (≈ lines) and branches at
// init time; a Recorder accumulates hits during a testing run.
//
// This is the stand-in for the gcov line/branch coverage the paper
// collects on C/C++ DBMSs (Table 3): the ratio of exercised points to
// registered points measures how much of the engine a testing approach
// reaches.
package coverage

import (
	"sort"
	"sync"
)

var (
	regMu       sync.Mutex
	regPoints   = map[string]bool{}
	regBranches = map[string]bool{}
)

// RegisterPoint declares a coverage point. Idempotent.
func RegisterPoint(name string) {
	regMu.Lock()
	regPoints[name] = true
	regMu.Unlock()
}

// RegisterBranch declares a two-way branch point. Idempotent.
func RegisterBranch(name string) {
	regMu.Lock()
	regBranches[name] = true
	regMu.Unlock()
}

// RegisteredPoints returns the number of registered points.
func RegisteredPoints() int {
	regMu.Lock()
	defer regMu.Unlock()
	return len(regPoints)
}

// RegisteredBranches returns the number of registered branch sides
// (each branch has two sides).
func RegisteredBranches() int {
	regMu.Lock()
	defer regMu.Unlock()
	return 2 * len(regBranches)
}

// Recorder accumulates coverage over a run. The zero value is not usable;
// use NewRecorder. A nil *Recorder is a valid no-op sink, so the engine
// can be run uninstrumented.
type Recorder struct {
	mu       sync.Mutex
	points   map[string]bool
	branches map[string][2]bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{points: map[string]bool{}, branches: map[string][2]bool{}}
}

// Hit records that point name executed.
func (r *Recorder) Hit(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.points[name] = true
	r.mu.Unlock()
}

// HitBranch records one side of branch name.
func (r *Recorder) HitBranch(name string, taken bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	sides := r.branches[name]
	if taken {
		sides[0] = true
	} else {
		sides[1] = true
	}
	r.branches[name] = sides
	r.mu.Unlock()
}

// LineCoverage returns hit and total point counts.
func (r *Recorder) LineCoverage() (hit, total int) {
	total = RegisteredPoints()
	if r == nil {
		return 0, total
	}
	r.mu.Lock()
	hit = len(r.points)
	r.mu.Unlock()
	return hit, total
}

// BranchCoverage returns hit and total branch-side counts.
func (r *Recorder) BranchCoverage() (hit, total int) {
	total = RegisteredBranches()
	if r == nil {
		return 0, total
	}
	r.mu.Lock()
	for _, sides := range r.branches {
		if sides[0] {
			hit++
		}
		if sides[1] {
			hit++
		}
	}
	r.mu.Unlock()
	return hit, total
}

// LinePercent returns point coverage in percent.
func (r *Recorder) LinePercent() float64 {
	hit, total := r.LineCoverage()
	if total == 0 {
		return 0
	}
	return 100 * float64(hit) / float64(total)
}

// BranchPercent returns branch coverage in percent.
func (r *Recorder) BranchPercent() float64 {
	hit, total := r.BranchCoverage()
	if total == 0 {
		return 0
	}
	return 100 * float64(hit) / float64(total)
}

// Merge adds all hits from other into r.
func (r *Recorder) Merge(other *Recorder) {
	if r == nil || other == nil {
		return
	}
	other.mu.Lock()
	pts := make([]string, 0, len(other.points))
	for p := range other.points {
		pts = append(pts, p)
	}
	type bs struct {
		name  string
		sides [2]bool
	}
	brs := make([]bs, 0, len(other.branches))
	for n, s := range other.branches {
		brs = append(brs, bs{n, s})
	}
	other.mu.Unlock()

	r.mu.Lock()
	for _, p := range pts {
		r.points[p] = true
	}
	for _, b := range brs {
		sides := r.branches[b.name]
		sides[0] = sides[0] || b.sides[0]
		sides[1] = sides[1] || b.sides[1]
		r.branches[b.name] = sides
	}
	r.mu.Unlock()
}

// HitPoints returns the sorted list of hit point names (for tests).
func (r *Recorder) HitPoints() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]string, 0, len(r.points))
	for p := range r.points {
		out = append(out, p)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}
