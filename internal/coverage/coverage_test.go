package coverage

import (
	"strings"
	"sync"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	RegisterPoint("cov-test-p1")
	RegisterPoint("cov-test-p2")
	RegisterPoint("cov-test-p1") // idempotent
	RegisterBranch("cov-test-b1")

	r := NewRecorder()
	r.Hit("cov-test-p1")
	r.Hit("cov-test-p1")
	hit, total := r.LineCoverage()
	if hit != 1 {
		t.Fatalf("hit = %d, want 1", hit)
	}
	if total < 2 {
		t.Fatalf("total = %d, want ≥ 2", total)
	}

	r.HitBranch("cov-test-b1", true)
	bh, _ := r.BranchCoverage()
	if bh != 1 {
		t.Fatalf("branch hits = %d, want 1 (one side)", bh)
	}
	r.HitBranch("cov-test-b1", false)
	bh, _ = r.BranchCoverage()
	if bh != 2 {
		t.Fatalf("branch hits = %d, want 2 (both sides)", bh)
	}
	if r.LinePercent() <= 0 || r.BranchPercent() <= 0 {
		t.Fatal("percentages must be positive")
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Hit("anything")
	r.HitBranch("anything", true)
	if p := r.LinePercent(); p != 0 {
		t.Fatalf("nil recorder percent = %v", p)
	}
}

func TestMerge(t *testing.T) {
	RegisterPoint("cov-merge-a")
	RegisterPoint("cov-merge-b")
	RegisterBranch("cov-merge-br")
	a := NewRecorder()
	b := NewRecorder()
	a.Hit("cov-merge-a")
	b.Hit("cov-merge-b")
	a.HitBranch("cov-merge-br", true)
	b.HitBranch("cov-merge-br", false)
	a.Merge(b)
	pts := strings.Join(a.HitPoints(), ",")
	if !strings.Contains(pts, "cov-merge-a") || !strings.Contains(pts, "cov-merge-b") {
		t.Fatalf("merge lost points: %s", pts)
	}
	hit, _ := a.BranchCoverage()
	if hit != 2 {
		t.Fatalf("merged branch sides = %d, want 2", hit)
	}
}

func TestConcurrentRecording(t *testing.T) {
	RegisterPoint("cov-conc")
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Hit("cov-conc")
				r.HitBranch("cov-merge-br", j%2 == 0)
			}
		}(i)
	}
	wg.Wait()
	hit, _ := r.LineCoverage()
	if hit != 1 {
		t.Fatalf("hit = %d, want 1", hit)
	}
}
