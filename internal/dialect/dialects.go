package dialect

import (
	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/feature"
)

// Function groups used to carve per-dialect gaps out of the universal set.
var (
	grpTrig        = []string{"SIN", "COS", "TAN", "COT", "ASIN", "ACOS", "ATAN", "ATAN2", "DEGREES", "RADIANS", "PI"}
	grpLogExp      = []string{"EXP", "LN", "LOG", "LOG10", "LOG2", "POWER", "POW", "SQRT"}
	grpStrPad      = []string{"LPAD", "RPAD", "SPACE", "REVERSE"}
	grpStrAdv      = []string{"INITCAP", "STRPOS", "SPLIT_PART", "TRANSLATE"}
	grpLenVariants = []string{"CHAR_LENGTH", "BIT_LENGTH", "OCTET_LENGTH"}
	grpNumMisc     = []string{"TRUNC", "GCD", "LCM"}
	grpBitwiseOps  = []string{"&", "|", "^", "<<", ">>", "~"}
)

// Dialect-specific extra functions, outside the adaptive generator's
// universal grammar: only the per-DBMS baseline generators know about
// them (Figure 7's baseline-only Venn regions; Table 3's coverage gap).
var (
	extrasPG     = []string{"GREATEST", "LEAST", "CONCAT", "CONCAT_WS", "TO_HEX"}
	extrasMySQL  = []string{"GREATEST", "LEAST", "CONCAT", "CONCAT_WS", "REPEAT", "ELT", "FIELD", "BIN", "OCT"}
	extrasSQLite = []string{"PRINTF", "LIKELY", "UNLIKELY", "CONCAT"}
	extrasDuck   = []string{"GREATEST", "LEAST", "CONCAT", "REPEAT", "BIN"}
)

func allTypes() map[string]bool {
	return set([]string{feature.TypeInteger, feature.TypeText, feature.TypeBoolean})
}

// profilePG is the statically typed PostgreSQL-family base.
func profilePG(name, display string) *Dialect {
	return &Dialect{
		Name:        name,
		DisplayName: display,
		TypeSystem:  Static,
		Statements:  universalStatements(),
		Clauses:     universalClauses(),
		Operators: without(universalOperators(),
			"<=>", "XOR", feature.ExprGlob),
		Functions: without(universalFunctions(),
			"IFNULL", "IIF", "INSTR", "HEX", "QUOTE", "TYPEOF", "UNICODE",
			"SPACE", "LOG2"),
		Types:           allTypes(),
		DivZeroError:    true,
		CastTextError:   true,
		MathDomainError: true,
	}
}

// profileMySQL is the dynamically typed MySQL-family base.
func profileMySQL(name, display string) *Dialect {
	d := &Dialect{
		Name:        name,
		DisplayName: display,
		TypeSystem:  Dynamic,
		// MySQL-family systems have no REINDEX (index rebuilds go through
		// OPTIMIZE/ALTER) — one more intentionally divergent statement for
		// the adaptive generator to learn.
		Statements: without(universalStatements(), feature.StmtReindex),
		Clauses: without(universalClauses(),
			feature.JoinFull, feature.InsertOrIgnore, feature.PartialIndex,
			feature.Intersect, feature.Except),
		Operators: without(universalOperators(),
			"||", "IS DISTINCT FROM", "IS NOT DISTINCT FROM", feature.ExprGlob),
		Functions: without(universalFunctions(),
			"IIF", "TYPEOF", "INITCAP", "SPLIT_PART", "TRANSLATE", "CHR",
			"UNICODE", "TRUNC", "GCD", "LCM"),
		Types: allTypes(),
	}
	with(d.Functions, extrasMySQL...)
	return d
}

// profileSQLite is the dynamically typed SQLite base: the most permissive
// dialect (the paper's §5.2 notes SQLite is the only system that executes
// test cases from more than half of the other systems).
func profileSQLite(name, display string) *Dialect {
	d := &Dialect{
		Name:        name,
		DisplayName: display,
		TypeSystem:  Dynamic,
		Statements:  universalStatements(),
		Clauses:     universalClauses(),
		Operators:   without(universalOperators(), "<=>", "XOR"),
		Functions: without(universalFunctions(),
			"INITCAP", "STRPOS", "SPLIT_PART", "TRANSLATE", "LPAD", "RPAD",
			"SPACE", "REVERSE", "CHAR_LENGTH", "BIT_LENGTH", "OCTET_LENGTH",
			"ASCII", "CHR", "GCD", "LCM"),
		Types: allTypes(),
	}
	with(d.Functions, extrasSQLite...)
	return d
}

func withFaults(d *Dialect) *Dialect {
	d.Faults = faults.NewSet(faults.ForDialect(d.Name))
	return d
}

func mustRegister(d *Dialect) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

func init() {
	// --- dynamically typed systems ---------------------------------------

	mustRegister(withFaults(profileSQLite("sqlite", "SQLite")))

	mustRegister(withFaults(profileMySQL("mysql", "MySQL")))
	mustRegister(withFaults(profileMySQL("mariadb", "MariaDB")))
	mustRegister(withFaults(profileMySQL("percona", "Percona MySQL")))

	tidb := profileMySQL("tidb", "TiDB")
	with(tidb.Clauses, feature.Intersect, feature.Except) // TiDB ≥ v5
	without(tidb.Clauses, feature.JoinNatural)
	without(tidb.Functions, "COT", "ELT", "FIELD")
	mustRegister(withFaults(tidb))

	dolt := profileMySQL("dolt", "Dolt")
	without(dolt.Statements, feature.StmtAnalyze)
	without(dolt.Functions, "BIN", "OCT", "ATAN2", "COT")
	mustRegister(withFaults(dolt))

	vitess := profileMySQL("vitess", "Vitess")
	// Vitess secondary indexes route scatter queries by a single column
	// here: no composite keys — a learnable gap for the generator.
	without(vitess.Clauses, feature.JoinNatural, feature.Subquery, feature.DerivedTable,
		feature.CompositeIndex)
	without(vitess.Operators, feature.Subquery, feature.ExprExists)
	without(vitess.Functions, "ELT", "FIELD", "BIN", "OCT", "COT", "ATAN2", "LOG2")
	mustRegister(withFaults(vitess))

	cubrid := profileMySQL("cubrid", "Cubrid")
	with(cubrid.Operators, "||")
	without(cubrid.Operators, "<=>")
	without(cubrid.Functions, "REPEAT", "CONCAT_WS", "LOG2", "ATAN2")
	mustRegister(withFaults(cubrid))

	// --- statically typed systems ----------------------------------------

	pg := profilePG("postgresql", "PostgreSQL")
	with(pg.Functions, extrasPG...)
	mustRegister(withFaults(pg)) // clean: no catalogue entry

	crate := profilePG("cratedb", "CrateDB")
	// CrateDB does not support CREATE INDEX (paper Appendix A.1) and
	// requires REFRESH TABLE before reads see inserted rows (paper §6).
	without(crate.Statements, feature.StmtCreateIndex,
		feature.StmtDropIndex, feature.StmtReindex)
	without(crate.Clauses, feature.UniqueIndex, feature.PartialIndex)
	without(crate.Functions, "GCD", "LCM", "COT", "IIF")
	with(crate.Functions, "GREATEST", "LEAST", "CONCAT")
	crate.RequiresRefresh = true
	mustRegister(withFaults(crate))

	duck := profilePG("duckdb", "DuckDB")
	with(duck.Operators, feature.ExprGlob)
	with(duck.Functions, extrasDuck...)
	with(duck.Functions, "INSTR", "HEX", "TYPEOF", "IFNULL")
	mustRegister(withFaults(duck))

	umbra := profilePG("umbra", "Umbra")
	without(umbra.Functions, "GCD", "LCM", "TRANSLATE")
	with(umbra.Functions, "GREATEST", "LEAST", "HEX")
	mustRegister(withFaults(umbra))

	cedar := profilePG("cedardb", "CedarDB")
	without(cedar.Functions, "GCD", "LCM", "TRANSLATE", "COT")
	with(cedar.Functions, "GREATEST", "LEAST")
	mustRegister(withFaults(cedar))

	rw := profilePG("risingwave", "RisingWave")
	without(rw.Statements, feature.StmtAnalyze)
	without(rw.Clauses, feature.PartialIndex)
	without(rw.Functions, "GCD", "LCM", "COT", "ATAN2")
	rw.RequiresRefresh = true
	mustRegister(withFaults(rw))

	monet := profilePG("monetdb", "MonetDB")
	without(monet.Operators, "IS DISTINCT FROM", "IS NOT DISTINCT FROM")
	without(monet.Functions, "INITCAP", "SPLIT_PART", "GCD", "LCM", "TO_HEX")
	mustRegister(withFaults(monet))

	h2 := profilePG("h2", "H2")
	h2.MaxIndexColumns = 2 // column-count limit: wider CREATE INDEX fails
	with(h2.Functions, "IFNULL", "INSTR", "SPACE")
	without(h2.Functions, "SPLIT_PART", "TO_HEX", "GCD", "LCM")
	mustRegister(withFaults(h2))

	fb := profilePG("firebird", "Firebird")
	without(fb.Clauses, feature.Intersect, feature.Except)
	without(fb.Operators, grpBitwiseOps...)
	without(fb.Operators, "IS DISTINCT FROM", "IS NOT DISTINCT FROM")
	without(fb.Functions, "INITCAP", "SPLIT_PART", "TRANSLATE", "TO_HEX",
		"GCD", "LCM", "LOG10", "CHR", "ATAN2", "COT")
	without(fb.Clauses, feature.JoinFull)
	mustRegister(withFaults(fb))

	oracle := profilePG("oracle", "Oracle")
	without(oracle.Operators, grpBitwiseOps...)
	without(oracle.Clauses, feature.Limit, feature.Offset)
	without(oracle.Types, feature.TypeBoolean)
	without(oracle.Functions, "IFNULL", "SPLIT_PART", "TO_HEX", "GCD",
		"LCM", "LOG2", "LOG10", "DEGREES", "RADIANS", "PI")
	with(oracle.Functions, "GREATEST", "LEAST", "CONCAT")
	mustRegister(withFaults(oracle))

	virt := profilePG("virtuoso", "Virtuoso")
	without(virt.Clauses, feature.JoinNatural, feature.JoinFull,
		feature.CompositeIndex)
	without(virt.Operators, "IS DISTINCT FROM", "IS NOT DISTINCT FROM")
	without(virt.Functions, "INITCAP", "STRPOS", "SPLIT_PART", "TRANSLATE",
		"TO_HEX", "GCD", "LCM", "TRUNC", "COT", "ATAN2", "UNICODE")
	mustRegister(withFaults(virt))
}

// PaperDBMSs lists the 18 systems of the paper's Table 2 (sorted as in
// the paper: alphabetically by display name).
var PaperDBMSs = []string{
	"cedardb", "cratedb", "cubrid", "dolt", "duckdb", "firebird", "h2",
	"mariadb", "monetdb", "mysql", "oracle", "percona", "risingwave",
	"sqlite", "tidb", "umbra", "virtuoso", "vitess",
}
