package dialect

import (
	"testing"

	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/feature"
)

func TestPaperDBMSsRegistered(t *testing.T) {
	if len(PaperDBMSs) != 18 {
		t.Fatalf("paper lists 18 DBMSs, registry names %d", len(PaperDBMSs))
	}
	for _, name := range PaperDBMSs {
		d, err := Get(name)
		if err != nil {
			t.Fatalf("paper DBMS %q not registered: %v", name, err)
		}
		if d.DisplayName == "" {
			t.Errorf("%s: missing display name", name)
		}
	}
	if _, err := Get("postgresql"); err != nil {
		t.Fatal("postgresql (experiment baseline) must be registered")
	}
}

// TestFaultParamsAreSupportedFeatures guards the catalogue: a fault keyed
// on a feature its own dialect does not support would be unreachable.
func TestFaultParamsAreSupportedFeatures(t *testing.T) {
	for _, name := range PaperDBMSs {
		d := MustGet(name)
		for _, f := range faults.ForDialect(name) {
			if f.Param == "" {
				continue
			}
			supported := d.SupportsOperator(f.Param) ||
				d.SupportsFunction(f.Param) ||
				d.SupportsClause(f.Param) ||
				d.SupportsStatement(f.Param)
			if !supported {
				t.Errorf("%s: fault %s targets unsupported feature %q",
					name, f.ID, f.Param)
			}
		}
	}
}

// TestCrashFaultsDoNotShadowLogicFaults: a crash fault on the same
// feature as a logic fault would fire first and make the logic fault
// unfindable.
func TestCrashFaultsDoNotShadowLogicFaults(t *testing.T) {
	for _, name := range PaperDBMSs {
		byParam := map[string]faults.Class{}
		for _, f := range faults.ForDialect(name) {
			if f.Class == faults.Crash || f.Class == faults.Error {
				byParam[f.Param] = f.Class
			}
		}
		for _, f := range faults.ForDialect(name) {
			if f.Class != faults.Logic || f.Param == "" {
				continue
			}
			if c, clash := byParam[f.Param]; clash {
				t.Errorf("%s: logic fault %s shadowed by %s fault on %q",
					name, f.ID, c, f.Param)
			}
		}
	}
}

func TestDialectDivergence(t *testing.T) {
	// The paper's §5.2 premise: feature sets differ meaningfully.
	sqlite := MustGet("sqlite")
	pg := MustGet("postgresql")
	mysql := MustGet("mysql")
	if pg.SupportsOperator("<=>") {
		t.Error("postgresql must not support <=>")
	}
	if !mysql.SupportsOperator("<=>") {
		t.Error("mysql must support <=>")
	}
	if mysql.SupportsOperator("||") {
		t.Error("mysql must not support ||")
	}
	if !sqlite.SupportsOperator(feature.ExprGlob) {
		t.Error("sqlite must support GLOB")
	}
	if pg.SupportsOperator(feature.ExprGlob) {
		t.Error("postgresql must not support GLOB")
	}
	if mysql.SupportsClause(feature.JoinFull) {
		t.Error("mysql must not support FULL JOIN")
	}
	crate := MustGet("cratedb")
	if crate.SupportsStatement(feature.StmtCreateIndex) {
		t.Error("cratedb must not support CREATE INDEX (paper Appendix A.1)")
	}
	if !crate.RequiresRefresh {
		t.Error("cratedb requires REFRESH TABLE (paper §6)")
	}
	oracle := MustGet("oracle")
	if oracle.SupportsType(feature.TypeBoolean) {
		t.Error("oracle must not support BOOLEAN")
	}
	if oracle.SupportsClause(feature.Limit) {
		t.Error("oracle must not support LIMIT")
	}
}

func TestTypeSystemSplit(t *testing.T) {
	dynamic := []string{"sqlite", "mysql", "mariadb", "percona", "tidb", "dolt", "vitess", "cubrid"}
	static := []string{"postgresql", "cratedb", "duckdb", "umbra", "cedardb",
		"risingwave", "monetdb", "h2", "firebird", "oracle", "virtuoso"}
	for _, n := range dynamic {
		if MustGet(n).TypeSystem != Dynamic {
			t.Errorf("%s must be dynamically typed", n)
		}
	}
	for _, n := range static {
		if MustGet(n).TypeSystem != Static {
			t.Errorf("%s must be statically typed", n)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := MustGet("sqlite")
	c := d.Clone()
	c.Functions["BOGUS"] = true
	c.Operators["@@@"] = true
	if d.SupportsFunction("BOGUS") || d.SupportsOperator("@@@") {
		t.Fatal("Clone must copy the feature maps")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	d := MustGet("sqlite").Clone()
	d.Name = "dup-test-dialect"
	if err := Register(d); err != nil {
		t.Fatal(err)
	}
	if err := Register(d); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if _, err := Get("no-such-dialect"); err == nil {
		t.Fatal("unknown dialect lookup must fail")
	}
}

func TestUniversalGrammarGaps(t *testing.T) {
	// Every paper dialect must miss at least a few universal features —
	// otherwise the adaptive generator would have nothing to learn.
	for _, name := range PaperDBMSs {
		d := MustGet(name)
		missing := 0
		for _, f := range feature.Functions {
			if !d.SupportsFunction(f) {
				missing++
			}
		}
		for _, op := range feature.BinaryOperators {
			if !d.SupportsOperator(op) {
				missing++
			}
		}
		if missing < 3 {
			t.Errorf("%s misses only %d universal features — too permissive", name, missing)
		}
	}
}
