// Package dialect defines per-DBMS SQL dialect configurations: which
// features each simulated system supports, its type system, its quirks,
// and its injected faults. These configurations are the stand-ins for the
// paper's 18 production DBMSs (plus PostgreSQL, used by the coverage and
// validity experiments).
//
// The feature matrices are intentionally *divergent*: the paper's §5.2
// finding is that even mostly-common SQL features are unsupported on more
// than half of the systems, which is exactly what makes a per-DBMS
// generator necessary — or an adaptive one valuable.
package dialect

import (
	"fmt"
	"sort"
	"sync"

	"sqlancerpp/internal/faults"
	"sqlancerpp/internal/feature"
)

// TypeSystem distinguishes dynamically and statically typed dialects
// (paper Appendix A.1, "abstract properties").
type TypeSystem int

// Type systems.
const (
	// Dynamic: SQLite-like. Values coerce at runtime; almost no statement
	// is ill-typed.
	Dynamic TypeSystem = iota
	// Static: PostgreSQL-like. Expressions are type-checked during
	// validation; mismatches are semantic errors.
	Static
)

// String returns a label for the type system.
func (t TypeSystem) String() string {
	if t == Dynamic {
		return "dynamic"
	}
	return "static"
}

// Dialect is one simulated DBMS configuration.
type Dialect struct {
	// Name is the registry key, e.g. "sqlite".
	Name string
	// DisplayName is the human-readable name, e.g. "SQLite".
	DisplayName string
	// TypeSystem selects runtime coercion vs. validation-time checking.
	TypeSystem TypeSystem

	// Statements, Clauses, Operators, Functions, and Types are the
	// supported feature sets, keyed by canonical feature names.
	Statements map[string]bool
	Clauses    map[string]bool
	Operators  map[string]bool
	Functions  map[string]bool
	Types      map[string]bool

	// MaxIndexColumns caps the number of columns per index (0 means
	// unlimited). Statements exceeding it fail validation, which is how
	// the adaptive generator learns a dialect's composite-index limits.
	MaxIndexColumns int
	// RequiresRefresh: inserted rows are invisible to queries until a
	// REFRESH TABLE statement runs (CrateDB-style; paper §6).
	RequiresRefresh bool
	// DivZeroError: x/0 raises a runtime error instead of yielding NULL.
	DivZeroError bool
	// CastTextError: CAST of a non-numeric TEXT to INTEGER raises a
	// runtime error instead of yielding 0.
	CastTextError bool
	// MathDomainError: ASIN/ACOS/SQRT/LN out-of-domain arguments raise a
	// runtime error instead of yielding NULL (the paper's ASIN(2)
	// example of a context-dependent failure).
	MathDomainError bool

	// Faults are the injected defects (ground truth for evaluation).
	Faults *faults.Set
}

// SupportsStatement reports whether the statement feature is supported.
func (d *Dialect) SupportsStatement(name string) bool { return d.Statements[name] }

// SupportsClause reports whether the clause feature is supported.
func (d *Dialect) SupportsClause(name string) bool { return d.Clauses[name] }

// SupportsOperator reports whether the operator spelling is supported.
func (d *Dialect) SupportsOperator(op string) bool { return d.Operators[op] }

// SupportsFunction reports whether the function is supported.
func (d *Dialect) SupportsFunction(name string) bool { return d.Functions[name] }

// SupportsType reports whether the data type is supported.
func (d *Dialect) SupportsType(name string) bool { return d.Types[name] }

// FunctionList returns the sorted supported function names.
func (d *Dialect) FunctionList() []string {
	out := make([]string, 0, len(d.Functions))
	for f, ok := range d.Functions {
		if ok {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// OperatorList returns the sorted supported operator spellings.
func (d *Dialect) OperatorList() []string {
	out := make([]string, 0, len(d.Operators))
	for o, ok := range d.Operators {
		if ok {
			out = append(out, o)
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy, so callers can derive custom dialects.
func (d *Dialect) Clone() *Dialect {
	c := *d
	c.Statements = copySet(d.Statements)
	c.Clauses = copySet(d.Clauses)
	c.Operators = copySet(d.Operators)
	c.Functions = copySet(d.Functions)
	c.Types = copySet(d.Types)
	return &c
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Dialect{}
)

// Register adds a dialect to the registry. It returns an error if the
// name is already taken.
func Register(d *Dialect) error {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[d.Name]; ok {
		return fmt.Errorf("dialect: %q already registered", d.Name)
	}
	registry[d.Name] = d
	return nil
}

// Get returns a registered dialect by name.
func Get(name string) (*Dialect, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("dialect: unknown dialect %q", name)
	}
	return d, nil
}

// MustGet returns a registered dialect or panics; for tests and tables.
func MustGet(name string) *Dialect {
	d, err := Get(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Names returns all registered dialect names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// set builds a feature set from lists.
func set(lists ...[]string) map[string]bool {
	m := map[string]bool{}
	for _, l := range lists {
		for _, f := range l {
			m[f] = true
		}
	}
	return m
}

// without removes features from a set (in place) and returns it.
func without(m map[string]bool, items ...string) map[string]bool {
	for _, it := range items {
		delete(m, it)
	}
	return m
}

// with adds features to a set (in place) and returns it.
func with(m map[string]bool, items ...string) map[string]bool {
	for _, it := range items {
		m[it] = true
	}
	return m
}

// universalStatements returns the statements every base profile starts
// from (the paper's six core statements plus the DML/DDL extensions).
func universalStatements() map[string]bool {
	return set(feature.Statements, []string{feature.StmtDropTable,
		feature.StmtDropView, feature.StmtDropIndex, feature.StmtReindex})
}

func universalClauses() map[string]bool {
	return set(feature.Clauses, []string{feature.ClauseWhere,
		feature.PrimaryKey, feature.NotNullColumn, feature.UniqueColumn,
		feature.ViewColumnNames})
}

func universalOperators() map[string]bool {
	return set(feature.BinaryOperators, []string{"~"}, feature.ExprForms,
		[]string{feature.ExprIsNull, feature.ExprIsBool, feature.ExprNot})
}

func universalFunctions() map[string]bool {
	return set(feature.Functions, feature.Aggregates)
}
