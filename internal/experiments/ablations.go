package experiments

import (
	"fmt"

	"sqlancerpp/internal/core/campaign"
	"sqlancerpp/internal/dialect"
)

// AblationRow is one configuration of a design-choice ablation.
type AblationRow struct {
	Config      string
	Validity    float64
	Detected    int
	UniqueBugs  int
	Prioritized int
}

func runAblation(cfg campaign.Config) (AblationRow, error) {
	cfg.KeepAllCases = true
	runner, err := campaign.New(cfg)
	if err != nil {
		return AblationRow{}, err
	}
	rep, err := runner.Run()
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Validity:    rep.ValidityRate(),
		Detected:    rep.Detected,
		UniqueBugs:  rep.UniqueGroundTruth,
		Prioritized: rep.Prioritized,
	}, nil
}

func renderAblation(title string, rows []AblationRow) string {
	t := &table{header: []string{"Configuration", "Validity", "Detected", "Prioritized", "Unique"}}
	for _, r := range rows {
		t.add(r.Config, pct(r.Validity), itoa(r.Detected), itoa(r.Prioritized), itoa(r.UniqueBugs))
	}
	return t.render(title)
}

// AblationThreshold sweeps the Bayesian minimum-success threshold p
// (paper §4: lowering p needs more executions for the same confidence).
func AblationThreshold(scale Scale, seed int64) ([]AblationRow, string, error) {
	d := dialect.MustGet("cratedb")
	var rows []AblationRow
	for _, p := range []float64{0.01, 0.05, 0.2} {
		row, err := runAblation(campaign.Config{
			Dialect: d, Mode: campaign.Adaptive,
			TestCases: scale.AblationCases, Seed: seed, Threshold: p,
		})
		if err != nil {
			return nil, "", err
		}
		row.Config = fmt.Sprintf("threshold p=%.2f", p)
		rows = append(rows, row)
	}
	return rows, renderAblation("Ablation — Bayesian threshold p (CrateDB)", rows), nil
}

// AblationDepthSchedule compares the paper's 1→3 depth ramp (Appendix
// A.3) against starting at full depth.
func AblationDepthSchedule(scale Scale, seed int64) ([]AblationRow, string, error) {
	d := dialect.MustGet("cratedb")
	var rows []AblationRow
	configs := []struct {
		name             string
		start, max, step int
	}{
		{"ramp 1→3 (paper)", 1, 3, 0},
		{"fixed depth 3", 3, 3, 0},
		{"fixed depth 1", 1, 1, 0},
	}
	for _, c := range configs {
		row, err := runAblation(campaign.Config{
			Dialect: d, Mode: campaign.Adaptive,
			TestCases: scale.AblationCases, Seed: seed,
			StartDepth: c.start, MaxDepth: c.max,
		})
		if err != nil {
			return nil, "", err
		}
		row.Config = c.name
		rows = append(rows, row)
	}
	return rows, renderAblation("Ablation — expression depth schedule (CrateDB)", rows), nil
}

// AblationUpdateInterval sweeps the feedback update interval I
// (Appendix A.3: the paper updates every 100K statements).
func AblationUpdateInterval(scale Scale, seed int64) ([]AblationRow, string, error) {
	d := dialect.MustGet("postgresql")
	var rows []AblationRow
	for _, interval := range []int{100, 400, 2000} {
		row, err := runAblation(campaign.Config{
			Dialect: d, Mode: campaign.Adaptive,
			TestCases: scale.AblationCases, Seed: seed,
			UpdateInterval: interval,
		})
		if err != nil {
			return nil, "", err
		}
		row.Config = fmt.Sprintf("update every %d", interval)
		rows = append(rows, row)
	}
	return rows, renderAblation("Ablation — feedback update interval (PostgreSQL validity)", rows), nil
}

// ValiditySeries measures validity over consecutive windows, showing the
// convergence the paper reports ("the validity rate converged in less
// than one minute", §5.4).
func ValiditySeries(dbms string, windows, casesPerWindow int, seed int64) ([]float64, string, error) {
	d := dialect.MustGet(dbms)
	var state []byte
	var series []float64
	for w := 0; w < windows; w++ {
		runner, err := campaign.New(campaign.Config{
			Dialect: d, Mode: campaign.Adaptive,
			TestCases: casesPerWindow, Seed: seed + int64(w),
			FeedbackState: state,
		})
		if err != nil {
			return nil, "", err
		}
		rep, err := runner.Run()
		if err != nil {
			return nil, "", err
		}
		state = rep.FeedbackState
		series = append(series, rep.ValidityRate())
	}
	out := fmt.Sprintf("Validity convergence on %s (windows of %d cases): ", dbms, casesPerWindow)
	for i, v := range series {
		if i > 0 {
			out += " → "
		}
		out += fmt.Sprintf("%.1f%%", 100*v)
	}
	return series, out + "\n", nil
}
